module github.com/securemem/morphtree

go 1.22
