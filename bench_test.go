package morphtree

// One benchmark per table and figure of the paper's evaluation (DESIGN.md,
// per-experiment index). Each bench regenerates its experiment at reduced
// scale and reports the figure's headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation's shape. cmd/experiments runs the same
// experiments at full scale with per-workload tables.

import (
	"math"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/sim"
	"github.com/securemem/morphtree/internal/workloads"
)

// benchOpts keeps benchmark runs short; cmd/experiments uses full runs.
func benchOpts() sim.RunOptions {
	return sim.RunOptions{
		WarmupAccesses:  60_000,
		MeasureAccesses: 60_000,
		FootprintScale:  1.0 / 128,
		Seed:            1,
	}
}

// benchWorkloads is a representative slice of the 28-workload set: two
// random-access (Morph's best case), two streaming (SC-128's worst case),
// the paper's outlier, and one mix.
func benchWorkloads(b *testing.B) []workloads.Workload {
	b.Helper()
	names := []string{"mcf", "pr-twit", "libquantum", "gcc", "GemsFDTD"}
	var out []workloads.Workload
	for _, n := range names {
		bench, err := workloads.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, workloads.Rate(bench, 4))
	}
	out = append(out, workloads.Mixes()[0])
	return out
}

// runSet simulates one config over the bench workloads, returning gmean
// IPC, mean traffic per data access, and mean overflows per million.
func runSet(b *testing.B, cfg sim.Config, opt sim.RunOptions) (ipc, traffic, ovf float64) {
	b.Helper()
	ws := benchWorkloads(b)
	logIPC := 0.0
	for _, w := range ws {
		res, err := sim.Run(cfg, w, opt)
		if err != nil {
			b.Fatal(err)
		}
		logIPC += math.Log(res.IPC)
		traffic += res.MemAccessPerDataAccess()
		ovf += res.OverflowsPerMillion()
	}
	n := float64(len(ws))
	return math.Exp(logIPC / n), traffic / n, ovf / n
}

// BenchmarkFig01TreeGeometry regenerates Figure 1: tree sizes and heights
// at 16 GB for VAULT, SC-64 and MorphCtr-128.
func BenchmarkFig01TreeGeometry(b *testing.B) {
	var morphMB, baseMB float64
	var morphLevels int
	for i := 0; i < b.N; i++ {
		vault, err := Geometry(16<<30, 64, []int{32, 16})
		if err != nil {
			b.Fatal(err)
		}
		sc64, _ := Geometry(16<<30, 64, []int{64})
		morph, _ := Geometry(16<<30, 128, []int{128})
		morphMB = float64(morph.TreeBytes()) / (1 << 20)
		baseMB = float64(sc64.TreeBytes()) / (1 << 20)
		morphLevels = morph.NumLevels()
		if vault.NumLevels() != 6 || sc64.NumLevels() != 4 || morph.NumLevels() != 3 {
			b.Fatal("tree heights diverge from the paper")
		}
	}
	b.ReportMetric(morphMB, "morph-tree-MB")
	b.ReportMetric(baseMB, "sc64-tree-MB")
	b.ReportMetric(float64(morphLevels), "morph-levels")
}

// BenchmarkFig05AritySweep regenerates Figure 5: the performance and
// traffic impact of scaling split-counter arity (VAULT vs SC-64 vs SC-128).
func BenchmarkFig05AritySweep(b *testing.B) {
	opt := benchOpts()
	var vaultRel, sc128Rel float64
	for i := 0; i < b.N; i++ {
		baseIPC, _, _ := runSet(b, sim.SC64(), opt)
		vaultIPC, _, _ := runSet(b, sim.VAULT(), opt)
		sc128IPC, _, _ := runSet(b, sim.SC128(), opt)
		vaultRel = vaultIPC / baseIPC
		sc128Rel = sc128IPC / baseIPC
	}
	b.ReportMetric(vaultRel, "vault-vs-sc64")
	b.ReportMetric(sc128Rel, "sc128-vs-sc64")
}

// BenchmarkFig06WritesToOverflow regenerates Figure 6's analytic curves.
func BenchmarkFig06WritesToOverflow(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		c64 := counters.SplitOverflowCurve(64)
		c128 := counters.SplitOverflowCurve(128)
		gap = float64(c64[0].WritesToOverflow) / float64(c128[0].WritesToOverflow)
	}
	b.ReportMetric(gap, "sc64/sc128-worst-case")
}

// BenchmarkFig07OverflowHistogram regenerates Figure 7: the fraction of a
// counter line in use when SC-64 overflows (bimodal: <25% and ~100%).
func BenchmarkFig07OverflowHistogram(b *testing.B) {
	opt := benchOpts()
	var low, high float64
	for i := 0; i < b.N; i++ {
		var hist [sim.HistBuckets]uint64
		for _, w := range benchWorkloads(b) {
			res, err := sim.Run(sim.SC64(), w, opt)
			if err != nil {
				b.Fatal(err)
			}
			for j, v := range res.Stats.OverflowHist {
				hist[j] += v
			}
		}
		var total uint64
		for _, v := range hist {
			total += v
		}
		if total == 0 {
			b.Fatal("no overflows observed")
		}
		low = float64(hist[0]+hist[1]+hist[2]) / float64(total)
		high = float64(hist[sim.HistBuckets-1]) / float64(total)
	}
	b.ReportMetric(low, "frac-below-25pct")
	b.ReportMetric(high, "frac-at-100pct")
}

// BenchmarkFig10ZCCWritesToOverflow regenerates Figure 10: ZCC's
// time-to-overflow advantage in the sparse regime, plus the Section V
// anchors (MCR uniform tolerance, the 67-write adversarial pattern).
func BenchmarkFig10ZCCWritesToOverflow(b *testing.B) {
	var sparseAdvantage, mcr, adversary float64
	for i := 0; i < b.N; i++ {
		sparseAdvantage = float64(counters.ZCCWritesToOverflow(16)) /
			float64(counters.SplitWritesToOverflow(64, 8))
		mcr = float64(counters.MCRWritesToOverflow())
		adversary = float64(counters.PathologicalZCCWrites())
	}
	b.ReportMetric(sparseAdvantage, "zcc-sparse-advantage")
	b.ReportMetric(mcr, "mcr-uniform-writes")
	b.ReportMetric(adversary, "adversarial-writes")
}

// BenchmarkFig11OverflowRates regenerates Figure 11: overflows per million
// accesses for SC-64, SC-128 and MorphCtr-128 (ZCC-only).
func BenchmarkFig11OverflowRates(b *testing.B) {
	opt := benchOpts()
	var sc64, sc128, zcc float64
	for i := 0; i < b.N; i++ {
		_, _, sc64 = runSet(b, sim.SC64(), opt)
		_, _, sc128 = runSet(b, sim.SC128(), opt)
		_, _, zcc = runSet(b, sim.MorphCtr128ZCC(), opt)
	}
	b.ReportMetric(sc64, "sc64-ovf/M")
	b.ReportMetric(sc128, "sc128-ovf/M")
	b.ReportMetric(zcc, "morph-zcc-ovf/M")
}

// BenchmarkFig14RebasingOverflowRates regenerates Figure 14: rebasing's
// effect on the streaming workloads that defeat ZCC alone.
func BenchmarkFig14RebasingOverflowRates(b *testing.B) {
	opt := benchOpts()
	opt.MeasureAccesses = 150_000
	stream := workloads.Rate(mustBench(b, "libquantum"), 4)
	var zccOnly, rebased float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.Run(sim.MorphCtr128ZCC(), stream, opt)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(sim.MorphCtr128(), stream, opt)
		if err != nil {
			b.Fatal(err)
		}
		zccOnly = r1.OverflowsPerMillion()
		rebased = r2.OverflowsPerMillion()
	}
	b.ReportMetric(zccOnly, "zcc-only-ovf/M")
	b.ReportMetric(rebased, "rebased-ovf/M")
}

// BenchmarkFig15Performance regenerates Figure 15's headline: MorphCtr-128
// and VAULT IPC relative to the SC-64 baseline.
func BenchmarkFig15Performance(b *testing.B) {
	opt := benchOpts()
	var morphRel, vaultRel float64
	for i := 0; i < b.N; i++ {
		baseIPC, _, _ := runSet(b, sim.SC64(), opt)
		morphIPC, _, _ := runSet(b, sim.MorphCtr128(), opt)
		vaultIPC, _, _ := runSet(b, sim.VAULT(), opt)
		morphRel = morphIPC / baseIPC
		vaultRel = vaultIPC / baseIPC
	}
	b.ReportMetric(morphRel, "morph-vs-sc64")
	b.ReportMetric(vaultRel, "vault-vs-sc64")
}

// BenchmarkFig16Traffic regenerates Figure 16: memory accesses per data
// access for the three designs.
func BenchmarkFig16Traffic(b *testing.B) {
	opt := benchOpts()
	var vault, sc64, morph float64
	for i := 0; i < b.N; i++ {
		_, vault, _ = runSet(b, sim.VAULT(), opt)
		_, sc64, _ = runSet(b, sim.SC64(), opt)
		_, morph, _ = runSet(b, sim.MorphCtr128(), opt)
	}
	b.ReportMetric(vault, "vault-traffic/DA")
	b.ReportMetric(sc64, "sc64-traffic/DA")
	b.ReportMetric(morph, "morph-traffic/DA")
}

// BenchmarkFig17TreeLevels regenerates Figure 17: per-level footprints.
func BenchmarkFig17TreeLevels(b *testing.B) {
	var l1Ratio float64
	for i := 0; i < b.N; i++ {
		sc64, err := Geometry(16<<30, 64, []int{64})
		if err != nil {
			b.Fatal(err)
		}
		morph, _ := Geometry(16<<30, 128, []int{128})
		l1Ratio = float64(sc64.Levels[0].Bytes) / float64(morph.Levels[0].Bytes)
	}
	b.ReportMetric(l1Ratio, "sc64/morph-L1-size")
}

// BenchmarkFig18Energy regenerates Figure 18: EDP relative to SC-64.
func BenchmarkFig18Energy(b *testing.B) {
	opt := benchOpts()
	w := workloads.Rate(mustBench(b, "mcf"), 4)
	var morphEDP, vaultEDP float64
	for i := 0; i < b.N; i++ {
		base, err := sim.Run(sim.SC64(), w, opt)
		if err != nil {
			b.Fatal(err)
		}
		morph, err := sim.Run(sim.MorphCtr128(), w, opt)
		if err != nil {
			b.Fatal(err)
		}
		vault, err := sim.Run(sim.VAULT(), w, opt)
		if err != nil {
			b.Fatal(err)
		}
		morphEDP = morph.Energy.EDP / base.Energy.EDP
		vaultEDP = vault.Energy.EDP / base.Energy.EDP
	}
	b.ReportMetric(morphEDP, "morph-EDP-vs-sc64")
	b.ReportMetric(vaultEDP, "vault-EDP-vs-sc64")
}

// BenchmarkFig19CacheSensitivity regenerates Figure 19: the MorphTree's
// speedup at small vs large metadata caches.
func BenchmarkFig19CacheSensitivity(b *testing.B) {
	opt := benchOpts()
	w := workloads.Rate(mustBench(b, "mcf"), 4)
	var smallGain, largeGain float64
	for i := 0; i < b.N; i++ {
		gain := func(size uint64) float64 {
			sc := sim.SC64()
			sc.MetaCacheBytes = size
			mo := sim.MorphCtr128()
			mo.MetaCacheBytes = size
			rb, err := sim.Run(sc, w, opt)
			if err != nil {
				b.Fatal(err)
			}
			rm, err := sim.Run(mo, w, opt)
			if err != nil {
				b.Fatal(err)
			}
			return rm.IPC / rb.IPC
		}
		smallGain = gain(sim.DefaultMetaCacheBytes)
		largeGain = gain(sim.DefaultMetaCacheBytes * 4)
	}
	b.ReportMetric(smallGain, "speedup-small-cache")
	b.ReportMetric(largeGain, "speedup-large-cache")
}

// BenchmarkFig20MACOrganization regenerates Figure 20: in-line (Synergy)
// vs separate MACs.
func BenchmarkFig20MACOrganization(b *testing.B) {
	opt := benchOpts()
	w := workloads.Rate(mustBench(b, "omnetpp"), 4)
	var sepRel float64
	for i := 0; i < b.N; i++ {
		inline, err := sim.Run(sim.SC64(), w, opt)
		if err != nil {
			b.Fatal(err)
		}
		sep := sim.SC64()
		sep.Name = "SC-64-sepmac"
		sep.SeparateMAC = true
		r, err := sim.Run(sep, w, opt)
		if err != nil {
			b.Fatal(err)
		}
		sepRel = r.IPC / inline.IPC
	}
	b.ReportMetric(sepRel, "separate-vs-inline")
}

// BenchmarkTable3Storage regenerates Table III: storage overheads at 16 GB.
func BenchmarkTable3Storage(b *testing.B) {
	var morphEncPct, morphTreePct float64
	for i := 0; i < b.N; i++ {
		morph, err := Geometry(16<<30, 128, []int{128})
		if err != nil {
			b.Fatal(err)
		}
		morphEncPct = morph.EncOverheadPercent()
		morphTreePct = morph.TreeOverheadPercent()
	}
	b.ReportMetric(morphEncPct, "morph-enc-pct")
	b.ReportMetric(morphTreePct, "morph-tree-pct")
}

func mustBench(b *testing.B, name string) workloads.Benchmark {
	b.Helper()
	bench, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return bench
}
