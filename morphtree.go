// Package morphtree is a library implementation of "Morphable Counters:
// Enabling Compact Integrity Trees For Low-Overhead Secure Memories"
// (Saileshwar et al., MICRO 2018).
//
// It provides, behind one public API:
//
//   - Morphable Counters (MorphCtr-128) — the paper's storage-efficient
//     counter cacheline representation with Zero Counter Compression and
//     Minor Counter Rebasing — alongside the split-counter baselines
//     (SC-8/16/32/64/128) and VAULT's variable-arity schedule.
//   - A functional secure-memory engine (New/Memory): counter-mode
//     encryption, truncated MACs and a Bonsai-style counter integrity tree
//     over an untrusted store, with real tamper/splice/replay detection.
//   - A performance simulator (Simulate): a USIMM-style 4-core model with a
//     shared metadata cache and DDR3 timing that reproduces the paper's
//     evaluation (IPC, traffic breakdown, overflow rates, energy).
//   - Tree geometry analysis (Geometry): per-level sizes, heights and
//     storage overheads for any capacity and counter organization.
//
// Quick start:
//
//	mem, err := morphtree.New(morphtree.Config{
//		MemoryBytes: 1 << 30,
//		Enc:         morphtree.MorphableCounters(true),
//		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
//		Key:         key,
//	})
//	err = mem.Write(0x1000, line)     // encrypt + MAC + tree update
//	data, err := mem.Read(0x1000)     // verify chain to the root, decrypt
//
// See examples/ for runnable programs and cmd/experiments for the paper's
// full evaluation harness.
package morphtree

import (
	"io"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/sim"
	"github.com/securemem/morphtree/internal/trace"
	"github.com/securemem/morphtree/internal/tree"
	"github.com/securemem/morphtree/internal/workloads"
)

// CounterSpec describes a counter cacheline organization: its name, its
// arity (counters per 64-byte line, which sets the tree fan-in), and
// constructors for blocks of it.
type CounterSpec = counters.Spec

// SplitCounters returns the conventional split-counter organization with
// the given arity (one of 8, 16, 32, 64, 128). SplitCounters(64) is the
// paper's SC-64 baseline.
func SplitCounters(arity int) CounterSpec { return counters.SplitSpec(arity) }

// MorphableCounters returns the paper's MorphCtr-128 organization: 128
// counters per cacheline, morphing between Zero Counter Compression and a
// dense 3-bit format. rebasing enables Minor Counter Rebasing (the full
// design); disable it for the ZCC-only ablation.
func MorphableCounters(rebasing bool) CounterSpec { return counters.MorphSpec(rebasing) }

// DeltaCounters returns the delta-encoded counter organization of the
// paper's concurrent work (Yitbarek & Austin, DAC 2018): 64 counters per
// line stored as a shared base plus 5-bit deltas, with rebasing.
func DeltaCounters() CounterSpec { return counters.DeltaSpec() }

// Config configures a functional secure memory.
type Config = secmem.Config

// Memory is a functional secure memory: counter-mode encryption, MACs, and
// a counter integrity tree over an untrusted store, with tamper and replay
// detection on every read.
type Memory = secmem.Memory

// IntegrityError reports a failed verification — evidence of tampering,
// splicing, or replay.
type IntegrityError = secmem.IntegrityError

// New constructs a functional secure memory.
func New(cfg Config) (*Memory, error) { return secmem.New(cfg) }

// TreeGeometry describes a metadata layout: encryption-counter footprint
// and every integrity-tree level down to the on-chip root.
type TreeGeometry = tree.Geometry

// Geometry computes the metadata layout for a memory of memoryBytes with
// the given encryption-counter arity and per-level tree arity schedule
// (last element repeats). For the paper's 16 GB examples:
//
//	Geometry(16<<30, 64, []int{64})      // SC-64: 4 MB tree, 4 levels
//	Geometry(16<<30, 64, []int{32, 16})  // VAULT: 8.5 MB tree, 6 levels
//	Geometry(16<<30, 128, []int{128})    // MorphCtr-128: 1 MB, 3 levels
func Geometry(memoryBytes uint64, encArity int, treeArities []int) (*TreeGeometry, error) {
	return tree.New(memoryBytes, encArity, treeArities)
}

// SimConfig configures a performance-simulation system (Table I).
type SimConfig = sim.Config

// SimOptions controls a simulation run's warmup, length and scaling.
type SimOptions = sim.RunOptions

// SimResult reports a simulation's IPC, traffic breakdown, overflow
// statistics, and energy.
type SimResult = sim.Result

// Workload is one evaluation workload (one benchmark per core).
type Workload = workloads.Workload

// Benchmark is one Table II program with its PKI rates, footprint and
// access-pattern class.
type Benchmark = workloads.Benchmark

// Simulate runs one workload under one system configuration.
func Simulate(cfg SimConfig, w Workload, opt SimOptions) (*SimResult, error) {
	return sim.Run(cfg, w, opt)
}

// SimPreset returns a named system configuration: "nonsecure", "sgx",
// "vault", "sc64", "sc128", "morph", "morph-zcc", "bmt" (Bonsai Merkle),
// "morph-spec" (speculative verification), or "delta64" (delta-encoded
// encryption counters).
func SimPreset(name string) (SimConfig, error) { return sim.Preset(name) }

// DefaultSimOptions returns the run options used by cmd/experiments.
func DefaultSimOptions() SimOptions { return sim.DefaultRunOptions() }

// Benchmarks returns the Table II catalog (16 SPEC 2006 + 6 GAP programs).
func Benchmarks() []Benchmark { return workloads.Table2 }

// BenchmarkByName looks up one Table II program.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// EvaluationWorkloads returns the paper's 28-workload evaluation set
// (16 SPEC rate-mode + 6 mixes + 6 GAP rate-mode) for the given core count.
func EvaluationWorkloads(cores int) []Workload { return workloads.All(cores) }

// RateWorkload replicates one benchmark across n cores (rate mode).
func RateWorkload(b Benchmark, n int) Workload { return workloads.Rate(b, n) }

// Load reconstructs a secure memory previously serialized with
// Memory.Save. cfg must describe the same organization and key; the
// untrusted contents are self-protecting, so tampering with the saved
// state surfaces as an *IntegrityError on read.
func Load(cfg Config, r io.Reader) (*Memory, error) { return secmem.Load(cfg, r) }

// AdversaryWorkload pairs Section V's pathological overflow-forcing writer
// with victim copies of a benchmark, for denial-of-service studies
// (see cmd/experiments -exp dos).
func AdversaryWorkload(victim Benchmark, cores int) Workload {
	return workloads.AttackMix(victim, cores)
}

// TraceAccess is one record of a memory-access trace: Gap non-memory
// instructions, then a read or writeback of a 64-byte line.
type TraceAccess = trace.Access

// ParseTrace reads a trace file ("<gap> R|W <line>" per record, '#'
// comments) for use with TraceBenchmark.
func ParseTrace(r io.Reader) ([]TraceAccess, error) { return trace.ParseFile(r) }

// WriteTrace dumps n accesses of a benchmark's synthetic generator in trace
// file format, e.g. to inspect or hand-edit a workload.
func WriteTrace(w io.Writer, b Benchmark, footprintScale float64, cores int, seed uint64, n int) error {
	return trace.WriteFile(w, b.Generator(footprintScale, cores, seed), n)
}

// TraceBenchmark builds a benchmark replaying a recorded trace (looping
// when exhausted) instead of a synthetic pattern; combine with RateWorkload
// or custom Workload composition to simulate it.
func TraceBenchmark(name string, accesses []TraceAccess) (Benchmark, error) {
	return workloads.FromTrace(name, accesses)
}
