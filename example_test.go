package morphtree_test

import (
	"fmt"

	"github.com/securemem/morphtree"
)

// The functional engine protects data end to end: writes encrypt and
// update the integrity tree, reads verify the chain to the on-chip root.
func Example() {
	mem, err := morphtree.New(morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.MorphableCounters(true),
		Tree:        []morphtree.CounterSpec{morphtree.MorphableCounters(true)},
		Key:         []byte("0123456789abcdef"),
	})
	if err != nil {
		panic(err)
	}
	if err := mem.WriteAt([]byte("hello, secure world"), 0x1000); err != nil {
		panic(err)
	}
	buf := make([]byte, 19)
	if err := mem.ReadAt(buf, 0x1000); err != nil {
		panic(err)
	}
	fmt.Println(string(buf))
	// Output: hello, secure world
}

// Geometry reproduces the paper's headline size comparison (Figure 1).
func ExampleGeometry() {
	for _, cfg := range []struct {
		name     string
		encArity int
		tree     []int
	}{
		{"VAULT", 64, []int{32, 16}},
		{"SC-64", 64, []int{64}},
		{"MorphCtr-128", 128, []int{128}},
	} {
		g, err := morphtree.Geometry(16<<30, cfg.encArity, cfg.tree)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-13s %d levels, %.1f MB\n", cfg.name, g.NumLevels(),
			float64(g.TreeBytes())/(1<<20))
	}
	// Output:
	// VAULT         6 levels, 8.5 MB
	// SC-64         4 levels, 4.1 MB
	// MorphCtr-128  3 levels, 1.0 MB
}

// Tampering with the untrusted store is detected on the next read.
func ExampleIntegrityError() {
	mem, _ := morphtree.New(morphtree.Config{
		MemoryBytes: 1 << 20,
		Enc:         morphtree.SplitCounters(64),
		Tree:        []morphtree.CounterSpec{morphtree.SplitCounters(64)},
		Key:         []byte("0123456789abcdef"),
	})
	line := make([]byte, 64)
	mem.Write(0, line)
	mem.Store().FlipBit(0, 0, 0) // adversary with physical access
	_, err := mem.Read(0)
	fmt.Println(err)
	// Output: secmem: integrity violation at data line 0: MAC mismatch
}
