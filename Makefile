GO ?= go

.PHONY: build test race morphdebug vet morphlint bench verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the test suite with internal/invariant assertions compiled in.
morphdebug:
	$(GO) test -tags morphdebug ./...

vet:
	$(GO) vet ./...

bin/morphlint: $(shell find cmd/morphlint internal/analysis internal/lint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	$(GO) build -o bin/morphlint ./cmd/morphlint

morphlint: bin/morphlint
	$(GO) vet -vettool=bin/morphlint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

verify: build vet morphlint morphdebug race

clean:
	rm -rf bin
