GO ?= go

.PHONY: build test race morphdebug vet morphlint lint-baseline bench serve-smoke crash-smoke ckpt-smoke chaos-smoke cluster-smoke obs-smoke proof-smoke tenant-smoke verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the test suite with internal/invariant assertions compiled in.
morphdebug:
	$(GO) test -tags morphdebug ./...

vet:
	$(GO) vet ./...

bin/morphlint: $(shell find cmd/morphlint internal/analysis internal/lint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	$(GO) build -o bin/morphlint ./cmd/morphlint

# Full eight-analyzer suite with the checked-in baseline enforced: new
# findings fail, baselined ones are reported as suppressed.
morphlint: bin/morphlint
	bin/morphlint -baseline lint.baseline ./...

# Refresh lint.baseline from the current findings. Every entry kept here
# must be justified in DESIGN.md section 13.
lint-baseline: bin/morphlint
	bin/morphlint -baseline lint.baseline -write-baseline ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

bin/morphserve: $(shell find cmd/morphserve internal/server internal/shard internal/wire internal/secmem internal/tenant -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -o bin/morphserve ./cmd/morphserve

bin/morphload: $(shell find cmd/morphload internal/wire internal/secmem internal/tenant -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -o bin/morphload ./cmd/morphload

# Loopback smoke test of the serving layer: morphload drives a local
# morphserve, verifies integrity end to end (including an injected tamper),
# and writes BENCH_serve.json.
serve-smoke: bin/morphserve bin/morphload
	bin/morphserve -addr 127.0.0.1:7443 -shards 4 -org morph128 -tamper & \
	SERVE_PID=$$!; sleep 1; \
	bin/morphload -addr 127.0.0.1:7443 -clients 8 -duration 3s -tamper -out BENCH_serve.json; \
	STATUS=$$?; kill $$SERVE_PID; exit $$STATUS

bin/morphcrash: $(shell find cmd/morphcrash internal/durable internal/wal internal/shard internal/secmem -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -o bin/morphcrash ./cmd/morphcrash

# Reduced crash-injection matrix: kill-point surgery on the WAL, the
# snapshot rename, and the epoch truncation, each recovered and checked
# against a shadow model. The full matrix is `bin/morphcrash` with
# defaults; this keeps CI fast.
crash-smoke: bin/morphcrash
	bin/morphcrash -points 9 -writes 300 -out BENCH_durable.json

# Incremental-checkpoint smoke test, race-built: the delta/compaction
# crash windows and delta tamper probe, crash recovery measured at two
# state sizes (failing if the delta path's replay scales with total
# history instead of the dirty tail, or the wall-clock win at a small
# dirty fraction drops below 5x), and the background-checkpointer
# write-p99 stall gate.
ckpt-smoke:
	$(GO) build -race -o bin/morphcrash.race ./cmd/morphcrash
	bin/morphcrash.race -points 16 -writes 300 -out BENCH_durable.json

bin/morphchaos: $(shell find cmd/morphchaos internal/fault internal/server internal/shard internal/wire internal/secmem internal/cluster internal/durable internal/obs -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -race -o bin/morphchaos ./cmd/morphchaos

# Reduced seeded fault matrix under the race detector: client-proxy-server
# through cuts, stalls, and admission sheds, asserting zero lost
# acknowledged writes and zero spurious integrity errors. The full matrix
# is `bin/morphchaos` with defaults; this keeps CI fast.
chaos-smoke: bin/morphchaos
	bin/morphchaos -smoke -out BENCH_fault.json

# Reduced node-kill matrix under the race detector: a three-node loopback
# cluster (primary + two replicas) with a node killed mid-load, followed
# by a lease-expiry failover. Asserts zero lost acknowledged writes and
# zero spurious integrity errors, and writes failover latency plus
# replication lag percentiles. The full matrix is `bin/morphchaos
# -cluster` with defaults; this keeps CI fast.
cluster-smoke: bin/morphchaos
	bin/morphchaos -cluster -smoke -out BENCH_cluster.json

bin/morphscope: $(shell find cmd/morphscope internal/obs internal/wire -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -o bin/morphscope ./cmd/morphscope

# Observability smoke test: a race-built morphserve with the admin plane
# on, morphload driving it (with live -report lines), morphscope polling
# per-op quantiles and event rates into BENCH_obs.json, then a -check
# probe asserting the telemetry is live (healthz, op samples, events).
obs-smoke: bin/morphload bin/morphscope
	$(GO) build -race -o bin/morphserve.race ./cmd/morphserve
	bin/morphserve.race -addr 127.0.0.1:7543 -admin 127.0.0.1:7544 -shards 4 -org morph128 & \
	SERVE_PID=$$!; sleep 1; \
	bin/morphload -addr 127.0.0.1:7543 -clients 4 -duration 5s -report 2s -out BENCH_obs_load.json & \
	LOAD_PID=$$!; sleep 1; \
	bin/morphscope -admin 127.0.0.1:7544 -interval 1s -samples 3 -json BENCH_obs.json; \
	SCOPE=$$?; wait $$LOAD_PID; LOAD=$$?; \
	bin/morphscope -admin 127.0.0.1:7544 -check; CHECK=$$?; \
	kill $$SERVE_PID; wait $$SERVE_PID 2>/dev/null; \
	exit $$(( SCOPE + LOAD + CHECK ))

bin/morphaudit: $(shell find cmd/morphaudit internal/wire internal/proof -name '*.go' -not -name '*_test.go' 2>/dev/null)
	$(GO) build -o bin/morphaudit ./cmd/morphaudit

# Verified-read smoke test: a race-built morphserve publishes signed epoch
# roots; morphload -audit interleaves client-verified PROOF reads with
# plain ones and reports the overhead in BENCH_serve.json; morphaudit then
# passes a clean audit, must exit 1 when a backing-store byte is flipped
# (spot verification), and must exit 1 again when the transparency log is
# forged through the demo /rootz/tamper endpoint (equivocation).
proof-smoke: bin/morphload bin/morphaudit
	$(GO) build -race -o bin/morphserve.race ./cmd/morphserve
	rm -f bin/audit.state
	bin/morphserve.race -addr 127.0.0.1:7643 -admin 127.0.0.1:7644 -shards 4 -org morph128 -tamper & \
	SERVE_PID=$$!; sleep 1; STATUS=0; \
	bin/morphload -addr 127.0.0.1:7643 -clients 4 -duration 3s -audit -out BENCH_serve.json || STATUS=1; \
	bin/morphaudit -addr 127.0.0.1:7643 -once -state bin/audit.state || STATUS=1; \
	bin/morphload -addr 127.0.0.1:7643 -clients 1 -duration 1s -writes 1 -tamper -out bin/tamper_load.json || STATUS=1; \
	bin/morphaudit -addr 127.0.0.1:7643 -once -state bin/audit.state; RC=$$?; \
	if [ $$RC -ne 1 ]; then echo "proof-smoke: tampered store: want exit 1, got $$RC"; STATUS=1; fi; \
	curl -fsS -X POST http://127.0.0.1:7644/rootz/tamper || STATUS=1; \
	bin/morphaudit -addr 127.0.0.1:7643 -once -state bin/audit.state; RC=$$?; \
	if [ $$RC -ne 1 ]; then echo "proof-smoke: forged root log: want exit 1, got $$RC"; STATUS=1; fi; \
	kill $$SERVE_PID; wait $$SERVE_PID 2>/dev/null; exit $$STATUS

# Multi-tenant isolation smoke test: a race-built morphserve with per-tenant
# key domains and quotas, then morphload -mix runs the protected victim solo
# and against a greedy rate-capped aggressor. Passes only if the victim's
# p99 stays under 2x its solo baseline while the aggressor is shed, and a
# cross-tenant read is denied with a typed integrity error. Writes
# BENCH_tenant.json.
tenant-smoke: bin/morphload
	$(GO) build -race -o bin/morphserve.race ./cmd/morphserve
	printf '[{"id":"victim","secret":"vs","weight":4},{"id":"greedy","secret":"gs","weight":1,"ops_per_sec":400,"max_inflight":8}]\n' > bin/tenants.json
	bin/morphserve.race -addr 127.0.0.1:7743 -shards 4 -org morph128 -tenants bin/tenants.json & \
	SERVE_PID=$$!; sleep 1; \
	bin/morphload -addr 127.0.0.1:7743 -clients 4 -duration 3s -mix bin/tenants.json -out BENCH_tenant.json; \
	STATUS=$$?; kill $$SERVE_PID; wait $$SERVE_PID 2>/dev/null; exit $$STATUS

verify: build vet morphlint morphdebug race

clean:
	rm -rf bin
