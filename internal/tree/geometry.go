// Package tree models Bonsai-style counter integrity trees: their geometry
// (per-level sizes and arities, Figures 1 and 17, Table III) and the index
// arithmetic connecting data lines, encryption-counter lines, and tree
// levels. The functional engine (internal/secmem) and the performance
// simulator (internal/sim) both build on this package.
//
// Terminology follows the paper: the tree is constructed over the footprint
// of the encryption counters ("level 0"); tree level 1 protects the
// encryption-counter lines, level 2 protects level 1, and so on up to a
// single-line root that is held on-chip. Arity is the number of counters per
// cacheline-sized entry, which is the ratio by which each level shrinks.
package tree

import (
	"fmt"

	"github.com/securemem/morphtree/internal/counters"
)

// LineBytes is the cacheline size used throughout (64 bytes).
const LineBytes = counters.LineBytes

// maxTreeLevels bounds the level count during construction. An arity-2 tree
// over a 64-bit address space has at most 64 levels, so exceeding this means
// the arity schedule failed to shrink the footprint.
const maxTreeLevels = 64

// Level describes one level of the integrity tree.
type Level struct {
	// Level is 1-based: level 1 protects the encryption counters.
	Level int
	// Arity is the fan-in of entries at this level.
	Arity int
	// Entries is the number of cacheline-sized entries in the level.
	Entries uint64
	// Bytes is the storage footprint of the level.
	Bytes uint64
}

// Geometry is the complete shape of a secure-memory metadata layout: the
// encryption-counter region plus every integrity-tree level down to the
// on-chip root.
type Geometry struct {
	// MemoryBytes is the protected data capacity.
	MemoryBytes uint64
	// DataLines is the number of 64-byte data cachelines protected.
	DataLines uint64
	// EncArity is the encryption-counter organization's counters/line.
	EncArity int
	// EncCounterLines is the number of encryption-counter cachelines
	// (the base the tree is constructed over).
	EncCounterLines uint64
	// Levels lists tree levels from level 1 up to and including the
	// single-line root.
	Levels []Level
}

// New computes the geometry for a memory of memoryBytes protected with
// encArity encryption counters per line and the given tree arity schedule:
// treeArities[0] is level 1's arity, treeArities[1] level 2's, with the last
// element repeating for all deeper levels (VAULT uses [32, 16]; uniform
// designs pass a single element).
func New(memoryBytes uint64, encArity int, treeArities []int) (*Geometry, error) {
	if memoryBytes == 0 || memoryBytes%LineBytes != 0 {
		return nil, fmt.Errorf("tree: memory size %d is not a positive multiple of %d", memoryBytes, LineBytes)
	}
	if encArity <= 0 {
		return nil, fmt.Errorf("tree: encryption arity %d must be positive", encArity)
	}
	if len(treeArities) == 0 {
		return nil, fmt.Errorf("tree: at least one tree arity is required")
	}
	for _, a := range treeArities {
		if a < 2 {
			return nil, fmt.Errorf("tree: arity %d must be at least 2", a)
		}
	}
	g := &Geometry{
		MemoryBytes: memoryBytes,
		DataLines:   memoryBytes / LineBytes,
		EncArity:    encArity,
	}
	g.EncCounterLines = ceilDiv(g.DataLines, uint64(encArity))
	entries := g.EncCounterLines
	for lvl := 1; ; lvl++ {
		arity := treeArities[min(lvl-1, len(treeArities)-1)]
		entries = ceilDiv(entries, uint64(arity))
		g.Levels = append(g.Levels, Level{
			Level:   lvl,
			Arity:   arity,
			Entries: entries,
			Bytes:   entries * LineBytes,
		})
		if entries <= 1 {
			break
		}
		if lvl > maxTreeLevels {
			return nil, fmt.Errorf("tree: runaway level count (arity schedule %v)", treeArities)
		}
	}
	return g, nil
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// NumLevels returns the number of tree levels, counting the root line
// (paper convention: SC-64 at 16 GB has 4 levels, MorphCtr-128 has 3).
func (g *Geometry) NumLevels() int { return len(g.Levels) }

// EncCounterBytes returns the encryption-counter region's footprint.
func (g *Geometry) EncCounterBytes() uint64 { return g.EncCounterLines * LineBytes }

// TreeBytes returns the total integrity-tree footprint (all levels,
// including the root line).
func (g *Geometry) TreeBytes() uint64 {
	var total uint64
	for _, l := range g.Levels {
		total += l.Bytes
	}
	return total
}

// EncOverheadPercent returns encryption-counter storage as a percentage of
// protected memory (Table III).
func (g *Geometry) EncOverheadPercent() float64 {
	return 100 * float64(g.EncCounterBytes()) / float64(g.MemoryBytes)
}

// TreeOverheadPercent returns integrity-tree storage as a percentage of
// protected memory (Table III).
func (g *Geometry) TreeOverheadPercent() float64 {
	return 100 * float64(g.TreeBytes()) / float64(g.MemoryBytes)
}

// LevelEntries returns the number of entries at a level, where level 0 is
// the encryption-counter region and levels 1..NumLevels() are tree levels.
func (g *Geometry) LevelEntries(level int) uint64 {
	if level == 0 {
		return g.EncCounterLines
	}
	return g.Levels[level-1].Entries
}

// LevelArity returns the counter arity at a level (level 0 = encryption).
func (g *Geometry) LevelArity(level int) int {
	if level == 0 {
		return g.EncArity
	}
	return g.Levels[level-1].Arity
}

// EncSlot maps a data line index to its encryption-counter line and the
// minor-counter slot within it.
func (g *Geometry) EncSlot(dataLine uint64) (block uint64, slot int) {
	return dataLine / uint64(g.EncArity), int(dataLine % uint64(g.EncArity))
}

// ParentSlot maps an entry at `level` (0 = encryption-counter line,
// 1..NumLevels()-1 = tree line) to its protecting entry at level+1 and the
// minor-counter slot within it.
func (g *Geometry) ParentSlot(level int, index uint64) (parent uint64, slot int) {
	arity := uint64(g.LevelArity(level + 1))
	return index / arity, int(index % arity)
}

// RootLevel returns the level number of the single-line root.
func (g *Geometry) RootLevel() int { return g.NumLevels() }

// CacheResidentLevel returns the lowest tree level whose entire footprint,
// together with everything above it, fits within cacheBytes. Writes do not
// propagate above this level once the cache warms (Section II-C). Returns
// NumLevels()+1 if not even the root fits (cacheBytes == 0).
func (g *Geometry) CacheResidentLevel(cacheBytes uint64) int {
	var cum uint64
	// Walk from the root downwards, accumulating level footprints.
	for i := len(g.Levels) - 1; i >= 0; i-- {
		cum += g.Levels[i].Bytes
		if cum > cacheBytes {
			return g.Levels[i].Level + 1
		}
	}
	return 1
}

// String renders the geometry as a compact per-level table.
func (g *Geometry) String() string {
	s := fmt.Sprintf("memory %s: enc ctrs (%d-ary) %s; tree %s, %d levels:",
		FormatBytes(g.MemoryBytes), g.EncArity, FormatBytes(g.EncCounterBytes()),
		FormatBytes(g.TreeBytes()), g.NumLevels())
	for _, l := range g.Levels {
		s += fmt.Sprintf(" L%d(%d-ary)=%s", l.Level, l.Arity, FormatBytes(l.Bytes))
	}
	return s
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b uint64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		if b%(1<<20) == 0 {
			return fmt.Sprintf("%dMB", b>>20)
		}
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		if b%(1<<10) == 0 {
			return fmt.Sprintf("%dKB", b>>10)
		}
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
