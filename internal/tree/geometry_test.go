package tree

import (
	"strings"
	"testing"
	"testing/quick"
)

const gb = 1 << 30

// TestPaperGeometry16GB pins the exact tree shapes of Figure 17 and the
// storage overheads of Table III for a 16 GB memory.
func TestPaperGeometry16GB(t *testing.T) {
	cases := []struct {
		name       string
		encArity   int
		treeArity  []int
		encBytes   uint64
		levels     int
		levelBytes []uint64 // level 1 upward
	}{
		{
			// SGX-like: 8 counters per line for encryption and tree.
			name: "SGX", encArity: 8, treeArity: []int{8},
			encBytes: 2 * gb, levels: 9,
			levelBytes: []uint64{256 << 20, 32 << 20, 4 << 20, 512 << 10, 64 << 10, 8 << 10, 1 << 10, 128, 64},
		},
		{
			// VAULT: 64-ary encryption, 32-ary level 1, 16-ary above.
			name: "VAULT", encArity: 64, treeArity: []int{32, 16},
			encBytes: 256 << 20, levels: 6,
			levelBytes: []uint64{8 << 20, 512 << 10, 32 << 10, 2 << 10, 128, 64},
		},
		{
			// SC-64 baseline: 64-ary throughout.
			name: "SC-64", encArity: 64, treeArity: []int{64},
			encBytes: 256 << 20, levels: 4,
			levelBytes: []uint64{4 << 20, 64 << 10, 1 << 10, 64},
		},
		{
			// MorphCtr-128: 128-ary throughout.
			name: "MorphCtr-128", encArity: 128, treeArity: []int{128},
			encBytes: 128 << 20, levels: 3,
			levelBytes: []uint64{1 << 20, 8 << 10, 64},
		},
	}
	for _, c := range cases {
		g, err := New(16*gb, c.encArity, c.treeArity)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := g.EncCounterBytes(); got != c.encBytes {
			t.Errorf("%s: enc counters %s, want %s", c.name, FormatBytes(got), FormatBytes(c.encBytes))
		}
		if got := g.NumLevels(); got != c.levels {
			t.Errorf("%s: %d levels, want %d (%v)", c.name, got, c.levels, g)
		}
		for i, want := range c.levelBytes {
			if i >= len(g.Levels) {
				break
			}
			if g.Levels[i].Bytes != want {
				t.Errorf("%s: level %d = %s, want %s", c.name, i+1,
					FormatBytes(g.Levels[i].Bytes), FormatBytes(want))
			}
		}
	}
}

// TestTableIIITreeSizes pins Table III's headline tree sizes: VAULT 8.5 MB,
// SC-64 4 MB, MorphCtr-128 1 MB (within the paper's rounding).
func TestTableIIITreeSizes(t *testing.T) {
	vault, _ := New(16*gb, 64, []int{32, 16})
	sc64, _ := New(16*gb, 64, []int{64})
	morph, _ := New(16*gb, 128, []int{128})
	sgx, _ := New(16*gb, 8, []int{8})

	approx := func(got uint64, wantMB float64) bool {
		gotMB := float64(got) / (1 << 20)
		return gotMB >= wantMB*0.97 && gotMB <= wantMB*1.07
	}
	if !approx(vault.TreeBytes(), 8.5) {
		t.Errorf("VAULT tree = %s, want ~8.5MB", FormatBytes(vault.TreeBytes()))
	}
	if !approx(sc64.TreeBytes(), 4.0) {
		t.Errorf("SC-64 tree = %s, want ~4MB", FormatBytes(sc64.TreeBytes()))
	}
	if !approx(morph.TreeBytes(), 1.0) {
		t.Errorf("MorphCtr tree = %s, want ~1MB", FormatBytes(morph.TreeBytes()))
	}
	if !approx(sgx.TreeBytes(), 292.6) {
		t.Errorf("SGX tree = %s, want ~292MB", FormatBytes(sgx.TreeBytes()))
	}

	// Relative claims: MorphTree is 4x smaller than baseline, 8.5x
	// smaller than VAULT.
	if r := float64(sc64.TreeBytes()) / float64(morph.TreeBytes()); r < 3.9 || r > 4.1 {
		t.Errorf("SC-64/MorphCtr tree ratio = %.2f, want ~4", r)
	}
	if r := float64(vault.TreeBytes()) / float64(morph.TreeBytes()); r < 8.2 || r > 8.8 {
		t.Errorf("VAULT/MorphCtr tree ratio = %.2f, want ~8.5", r)
	}

	// Table III overhead percentages.
	if p := sc64.EncOverheadPercent(); p < 1.5 || p > 1.7 {
		t.Errorf("SC-64 enc overhead = %.3f%%, want ~1.6%%", p)
	}
	if p := morph.EncOverheadPercent(); p < 0.7 || p > 0.9 {
		t.Errorf("MorphCtr enc overhead = %.3f%%, want ~0.8%%", p)
	}
	if p := sgx.EncOverheadPercent(); p < 12.4 || p > 12.6 {
		t.Errorf("SGX enc overhead = %.2f%%, want 12.5%%", p)
	}
	if p := morph.TreeOverheadPercent(); p > 0.0070 {
		t.Errorf("MorphCtr tree overhead = %.4f%%, want ~0.006%%", p)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 64, []int{64}); err == nil {
		t.Error("zero memory must fail")
	}
	if _, err := New(100, 64, []int{64}); err == nil {
		t.Error("non-multiple memory must fail")
	}
	if _, err := New(gb, 0, []int{64}); err == nil {
		t.Error("zero enc arity must fail")
	}
	if _, err := New(gb, 64, nil); err == nil {
		t.Error("empty arity schedule must fail")
	}
	if _, err := New(gb, 64, []int{1}); err == nil {
		t.Error("arity 1 must fail")
	}
}

func TestIndexMath(t *testing.T) {
	g, err := New(gb, 64, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	block, slot := g.EncSlot(0)
	if block != 0 || slot != 0 {
		t.Errorf("EncSlot(0) = %d,%d", block, slot)
	}
	block, slot = g.EncSlot(64*5 + 17)
	if block != 5 || slot != 17 {
		t.Errorf("EncSlot = %d,%d, want 5,17", block, slot)
	}
	parent, slot := g.ParentSlot(0, 64*3+9)
	if parent != 3 || slot != 9 {
		t.Errorf("ParentSlot(0) = %d,%d, want 3,9", parent, slot)
	}
}

func TestIndexMathVariableArity(t *testing.T) {
	g, err := New(gb, 64, []int{32, 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.LevelArity(1) != 32 || g.LevelArity(2) != 16 || g.LevelArity(3) != 16 {
		t.Fatalf("arity schedule wrong: %d %d %d", g.LevelArity(1), g.LevelArity(2), g.LevelArity(3))
	}
	parent, slot := g.ParentSlot(0, 32*7+3)
	if parent != 7 || slot != 3 {
		t.Errorf("level-1 parent = %d,%d, want 7,3", parent, slot)
	}
	parent, slot = g.ParentSlot(1, 16*2+15)
	if parent != 2 || slot != 15 {
		t.Errorf("level-2 parent = %d,%d, want 2,15", parent, slot)
	}
}

func TestCacheResidentLevel(t *testing.T) {
	g, err := New(16*gb, 64, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	// Levels: L1 4MB, L2 64KB, L3 1KB, L4 64B.
	if lvl := g.CacheResidentLevel(128 << 10); lvl != 2 {
		t.Errorf("128KB cache holds levels >= %d, want 2", lvl)
	}
	if lvl := g.CacheResidentLevel(8 << 20); lvl != 1 {
		t.Errorf("8MB cache holds levels >= %d, want 1", lvl)
	}
	if lvl := g.CacheResidentLevel(0); lvl != g.NumLevels()+1 {
		t.Errorf("0B cache = %d, want %d", lvl, g.NumLevels()+1)
	}
	if lvl := g.CacheResidentLevel(512); lvl != 4 {
		t.Errorf("512B cache holds levels >= %d, want 4 (root+L3 is 1088B)", lvl)
	}
}

// Property: parent/child index math is a bijection — walking any data line
// up to the root visits exactly one slot per level, and siblings sharing a
// parent agree on the parent index.
func TestQuickIndexAlgebra(t *testing.T) {
	g, err := New(16*gb, 128, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	f := func(line uint64) bool {
		line %= g.DataLines
		block, slot := g.EncSlot(line)
		if block*uint64(g.EncArity)+uint64(slot) != line {
			return false
		}
		idx := block
		for lvl := 0; lvl < g.NumLevels(); lvl++ {
			parent, s := g.ParentSlot(lvl, idx)
			if parent*uint64(g.LevelArity(lvl+1))+uint64(s) != idx {
				return false
			}
			if parent >= g.LevelEntries(lvl+1) {
				return false
			}
			idx = parent
		}
		return idx == 0 // the root is a single line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{64, "64B"}, {1 << 10, "1KB"}, {1 << 20, "1MB"}, {4 << 20, "4MB"},
		{16 << 30, "16GB"}, {1536, "1.5KB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g, err := New(16*gb, 128, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	for _, want := range []string{"16GB", "128-ary", "3 levels", "1MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestScalingMonotonicity(t *testing.T) {
	// Larger memories never shrink the tree, and MorphCtr stays at least
	// 3.9x smaller than SC-64 at every capacity.
	var prevMorph uint64
	for _, gbs := range []uint64{1, 4, 16, 64, 256, 1024} {
		morph, err := New(gbs<<30, 128, []int{128})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := New(gbs<<30, 64, []int{64})
		if err != nil {
			t.Fatal(err)
		}
		if morph.TreeBytes() < prevMorph {
			t.Fatalf("tree shrank at %dGB", gbs)
		}
		prevMorph = morph.TreeBytes()
		if r := float64(sc.TreeBytes()) / float64(morph.TreeBytes()); r < 3.9 {
			t.Errorf("at %dGB the SC-64/MorphCtr ratio fell to %.2f", gbs, r)
		}
	}
}
