package tree

import "testing"

// TestOneLevelTree covers the degenerate geometry where level 1 is already
// the root: a memory small enough that all encryption counters fit one line.
func TestOneLevelTree(t *testing.T) {
	// 64 data lines, 64-ary counters: one encryption-counter line, so the
	// tree is a single root line protecting it.
	g, err := New(64*LineBytes, 64, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if g.EncCounterLines != 1 {
		t.Fatalf("enc counter lines = %d, want 1", g.EncCounterLines)
	}
	if g.NumLevels() != 1 {
		t.Fatalf("levels = %d, want 1", g.NumLevels())
	}
	if g.Levels[0].Entries != 1 || g.Levels[0].Bytes != LineBytes {
		t.Errorf("root level = %d entries / %d bytes, want 1 / %d", g.Levels[0].Entries, g.Levels[0].Bytes, LineBytes)
	}
	if g.RootLevel() != 1 {
		t.Errorf("root level = %d, want 1", g.RootLevel())
	}
	parent, slot := g.ParentSlot(0, 63)
	if parent != 0 || slot != 63 {
		t.Errorf("ParentSlot(0, 63) = %d,%d, want 0,63", parent, slot)
	}
}

// TestSingleLineMemory is the smallest legal geometry: one data line.
func TestSingleLineMemory(t *testing.T) {
	g, err := New(LineBytes, 64, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if g.DataLines != 1 || g.EncCounterLines != 1 {
		t.Fatalf("data/enc lines = %d/%d, want 1/1", g.DataLines, g.EncCounterLines)
	}
	if g.NumLevels() != 1 {
		t.Fatalf("levels = %d, want 1", g.NumLevels())
	}
}

// TestNonPowerOfTwoSizes checks ceil-division behavior: partial lines and
// partial levels round up, and every level still shrinks to a single root.
func TestNonPowerOfTwoSizes(t *testing.T) {
	cases := []struct {
		name     string
		lines    uint64
		encArity int
		arities  []int
		encLines uint64
	}{
		// 100 lines / 64-ary = 2 partially-used counter lines.
		{"100-lines", 100, 64, []int{64}, 2},
		// 3 GB is not a power of two; 50331648 lines / 64 = 786432.
		{"3GB", 3 * gb / LineBytes, 64, []int{64}, 786432},
		// A prime line count with a mixed arity schedule.
		{"prime", 65537, 128, []int{32, 16}, 513},
	}
	for _, c := range cases {
		g, err := New(c.lines*LineBytes, c.encArity, c.arities)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if g.EncCounterLines != c.encLines {
			t.Errorf("%s: enc counter lines = %d, want %d", c.name, g.EncCounterLines, c.encLines)
		}
		// Levels must shrink strictly and end in a single-line root.
		prev := g.EncCounterLines
		for _, l := range g.Levels {
			if l.Entries >= prev && prev > 1 {
				t.Errorf("%s: level %d has %d entries, not smaller than %d", c.name, l.Level, l.Entries, prev)
			}
			want := ceilDiv(prev, uint64(l.Arity))
			if l.Entries != want {
				t.Errorf("%s: level %d entries = %d, want ceil(%d/%d) = %d", c.name, l.Level, l.Entries, prev, l.Arity, want)
			}
			prev = l.Entries
		}
		if root := g.Levels[len(g.Levels)-1]; root.Entries != 1 {
			t.Errorf("%s: root has %d entries, want 1", c.name, root.Entries)
		}
		// Every entry at every level must map to a valid parent slot.
		for lvl := 0; lvl < g.NumLevels(); lvl++ {
			entries := g.LevelEntries(lvl)
			for _, idx := range []uint64{0, entries - 1} {
				parent, slot := g.ParentSlot(lvl, idx)
				if parent >= g.LevelEntries(lvl+1) {
					t.Errorf("%s: level %d index %d maps to parent %d beyond level %d's %d entries",
						c.name, lvl, idx, parent, lvl+1, g.LevelEntries(lvl+1))
				}
				if slot < 0 || slot >= g.LevelArity(lvl+1) {
					t.Errorf("%s: level %d index %d maps to slot %d beyond arity %d",
						c.name, lvl, idx, slot, g.LevelArity(lvl+1))
				}
			}
		}
	}
}

// TestRunawaySchedule exercises the maxTreeLevels guard indirectly: arity 2
// over a large memory is legal and deep, but must still terminate.
func TestRunawaySchedule(t *testing.T) {
	g, err := New(16*gb, 64, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() < 20 {
		t.Errorf("binary tree over 16GB has %d levels, expected >= 20", g.NumLevels())
	}
	if g.Levels[len(g.Levels)-1].Entries != 1 {
		t.Error("binary tree did not converge to a single root line")
	}
}
