// Package mac computes the truncated keyed message authentication codes
// used by the secure-memory engine. The paper's designs use Carter-Wegman
// (SGX) or AES-GCM (Yan et al.) hardware MACs truncated to 54-64 bits; we
// substitute a keyed SHA-256 construction with the same interface and
// truncation, which preserves the forgery-resistance property the system
// depends on (DESIGN.md, substitutions).
package mac

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Width is a MAC truncation width in bits.
type Width int

// Truncation widths referenced in the paper.
const (
	// Width54 is Synergy's in-line organization: a 54-bit MAC shares the
	// ECC chip with a 10-bit SEC code (Section II-A3).
	Width54 Width = 54
	// Width56 is SGX's MAC width.
	Width56 Width = 56
	// Width64 fills the full MAC field of a counter cacheline.
	Width64 Width = 64
)

// Keyer computes truncated MACs under a fixed secret key.
type Keyer struct {
	//morph:secret
	key   []byte
	width Width
}

// New returns a Keyer for the given secret key and truncation width.
func New(key []byte, width Width) (*Keyer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("mac: empty key")
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("mac: width %d out of range [1,64]", width)
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Keyer{key: k, width: width}, nil
}

// Width returns the truncation width in bits.
func (k *Keyer) Width() Width { return k.width }

// mask returns the truncation mask.
func (k *Keyer) mask() uint64 {
	if k.width == 64 {
		return ^uint64(0)
	}
	return 1<<uint(k.width) - 1
}

// Line MACs bind {content, counter, address, domain}: the counter defeats
// replay of stale tuples once the counter itself is protected by the tree,
// the address defeats splicing lines across locations, and the domain
// separates data MACs from each tree level's MACs.

// Data computes the MAC protecting a data cacheline.
func (k *Keyer) Data(ciphertext []byte, counter uint64, addr uint64) uint64 {
	return k.compute(0xFFFF, addr, counter, ciphertext)
}

// Counter computes the MAC protecting a counter cacheline at a tree level
// (0 = encryption counters), authenticated by its parent counter's value.
func (k *Keyer) Counter(encoded []byte, parentCounter uint64, level int, index uint64) uint64 {
	return k.compute(uint64(level), index, parentCounter, encoded)
}

func (k *Keyer) compute(domain, addr, counter uint64, content []byte) uint64 {
	h := hmac.New(sha256.New, k.key)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], domain)
	binary.LittleEndian.PutUint64(hdr[8:], addr)
	binary.LittleEndian.PutUint64(hdr[16:], counter)
	h.Write(hdr[:])
	h.Write(content)
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8]) & k.mask()
}
