package mac

import (
	"testing"
	"testing/quick"
)

func keyer(t *testing.T, w Width) *Keyer {
	t.Helper()
	k, err := New([]byte("test-key-0123456"), w)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Width64); err == nil {
		t.Error("empty key must fail")
	}
	if _, err := New([]byte("k"), 0); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := New([]byte("k"), 65); err == nil {
		t.Error("width 65 must fail")
	}
}

func TestDeterministic(t *testing.T) {
	k := keyer(t, Width64)
	data := make([]byte, 64)
	if k.Data(data, 1, 2) != k.Data(data, 1, 2) {
		t.Fatal("MAC not deterministic")
	}
}

func TestTruncation(t *testing.T) {
	k54 := keyer(t, Width54)
	data := make([]byte, 64)
	for i := 0; i < 100; i++ {
		m := k54.Data(data, uint64(i), 0)
		if m >= 1<<54 {
			t.Fatalf("54-bit MAC %#x exceeds range", m)
		}
	}
	if k54.Width() != Width54 {
		t.Fatal("width accessor wrong")
	}
}

func TestBindings(t *testing.T) {
	k := keyer(t, Width64)
	data := make([]byte, 64)
	base := k.Data(data, 7, 0x1000)

	// Different counter (replay of stale tuple).
	if k.Data(data, 8, 0x1000) == base {
		t.Error("MAC did not bind the counter")
	}
	// Different address (splice).
	if k.Data(data, 7, 0x2000) == base {
		t.Error("MAC did not bind the address")
	}
	// Different content (tamper).
	mod := make([]byte, 64)
	mod[13] = 1
	if k.Data(mod, 7, 0x1000) == base {
		t.Error("MAC did not bind the content")
	}
	// Different key.
	k2, _ := New([]byte("other-key-012345"), Width64)
	if k2.Data(data, 7, 0x1000) == base {
		t.Error("MAC did not bind the key")
	}
}

func TestDomainSeparation(t *testing.T) {
	k := keyer(t, Width64)
	content := make([]byte, 64)
	d := k.Data(content, 5, 3)
	c0 := k.Counter(content, 5, 0, 3)
	c1 := k.Counter(content, 5, 1, 3)
	if d == c0 || d == c1 || c0 == c1 {
		t.Fatalf("domains collide: data=%#x l0=%#x l1=%#x", d, c0, c1)
	}
}

// Property: flipping any single content byte changes the MAC.
func TestQuickContentSensitivity(t *testing.T) {
	k := keyer(t, Width64)
	f := func(content [64]byte, pos uint8, bit uint8) bool {
		orig := k.Data(content[:], 1, 1)
		content[pos%64] ^= 1 << (bit % 8)
		return k.Data(content[:], 1, 1) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
