package sim

import "github.com/securemem/morphtree/internal/trace"

// core is the trace-driven processor model: a FetchWidth-wide in-order
// front end with an out-of-order window of ROBSize instructions. Loads
// issue as soon as they are fetched and overlap freely within the window
// (memory-level parallelism); retirement — and therefore forward progress —
// blocks when the oldest outstanding load is more than ROBSize instructions
// behind the fetch point. Writebacks are posted.
type core struct {
	id  int
	gen trace.Generator
	// mapper translates the workload's virtual line index to a physical
	// byte address (random page placement, Table I).
	mapper func(line uint64) uint64

	time    uint64 // CPU cycles
	instret uint64

	// outstanding is a FIFO of in-flight loads (bounded by ROB size /
	// minimum instruction spacing).
	outstanding []load
	// writes is a FIFO of in-flight writeback drain times; a full write
	// buffer stalls the core until the oldest drains.
	writes []uint64
	// accesses counts trace records consumed.
	accesses uint64
}

type load struct {
	completeAt uint64
	fetchedAt  uint64 // instruction count at issue
}

// step consumes one trace record, advancing the core's local clock and
// issuing its memory access through the system.
func (c *core) step(sys *system) {
	a := c.gen.Next()
	cfg := sys.cfg

	// Front end: retire the non-memory gap at FetchWidth per cycle.
	c.time += (uint64(a.Gap) + cfg.FetchWidth - 1) / cfg.FetchWidth
	c.instret += uint64(a.Gap)

	// Drain completed loads, then enforce the ROB window: if the oldest
	// outstanding load is ROBSize instructions behind, stall until it
	// returns.
	for len(c.outstanding) > 0 {
		head := c.outstanding[0]
		if head.completeAt <= c.time {
			c.outstanding = c.outstanding[1:]
			continue
		}
		if c.instret-head.fetchedAt >= cfg.ROBSize {
			c.time = head.completeAt
			c.outstanding = c.outstanding[1:]
			continue
		}
		break
	}

	// Drain completed writes; a full write buffer applies backpressure.
	for len(c.writes) > 0 && c.writes[0] <= c.time {
		c.writes = c.writes[1:]
	}
	for len(c.writes) >= cfg.WriteBufferEntries {
		c.time = c.writes[0]
		c.writes = c.writes[1:]
	}

	addr := c.mapper(a.Line)
	if a.Write {
		lat := sys.dataWrite(c.time, addr)
		c.writes = append(c.writes, c.time+lat)
	} else {
		lat := sys.dataRead(c.time, addr)
		c.outstanding = append(c.outstanding, load{
			completeAt: c.time + lat,
			fetchedAt:  c.instret,
		})
	}
	c.instret++
	c.time++ // the access instruction itself occupies a fetch slot
	c.accesses++
}
