package sim

import (
	"github.com/securemem/morphtree/internal/cache"
	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/dram"
	"github.com/securemem/morphtree/internal/invariant"
	"github.com/securemem/morphtree/internal/tree"
)

// engine is the secure memory controller's metadata machinery: per-level
// counter state, the shared metadata cache, tree traversal on misses, write
// propagation on dirty evictions, and overflow handling.
type engine struct {
	cfg    Config
	geom   *tree.Geometry
	mcache *cache.Cache
	dram   *dram.DRAM
	stats  *Stats

	// blocks holds lazily allocated counter state per level
	// (index 0 = encryption counters, last = root).
	blocks []map[uint64]counters.Block
	// levelBase maps each metadata level to its physical address region,
	// laid out after the data region.
	levelBase []uint64
	macBase   uint64
	rootLevel int
}

// newEngine builds the metadata engine; returns nil for non-secure configs.
func newEngine(cfg Config, d *dram.DRAM, st *Stats) (*engine, error) {
	if cfg.NonSecure {
		st.Overflows = make([]uint64, 1)
		st.Rebases = make([]uint64, 1)
		st.Increments = make([]uint64, 1)
		return nil, nil
	}
	var arities []int
	if cfg.MACTree {
		arities = []int{macTreeArity}
	} else {
		arities = make([]int, len(cfg.Tree))
		for i, s := range cfg.Tree {
			arities[i] = s.Arity
		}
	}
	geom, err := tree.New(cfg.MemoryBytes, cfg.Enc.Arity, arities)
	if err != nil {
		return nil, err
	}
	mc, err := cache.New(cfg.MetaCacheBytes, cfg.MetaCacheWays, 64)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:       cfg,
		geom:      geom,
		mcache:    mc,
		dram:      d,
		stats:     st,
		rootLevel: geom.RootLevel(),
	}
	levels := e.rootLevel + 1
	e.blocks = make([]map[uint64]counters.Block, levels)
	for i := range e.blocks {
		e.blocks[i] = make(map[uint64]counters.Block)
	}
	// Physical layout: data, MAC region, then metadata levels.
	e.macBase = cfg.MemoryBytes
	base := cfg.MemoryBytes + cfg.MemoryBytes/8
	e.levelBase = make([]uint64, levels)
	e.levelBase[0] = base
	base += geom.EncCounterBytes()
	for lvl := 1; lvl <= e.rootLevel; lvl++ {
		e.levelBase[lvl] = base
		base += geom.LevelEntries(lvl) * 64
	}
	st.Overflows = make([]uint64, levels)
	st.Rebases = make([]uint64, levels)
	st.Increments = make([]uint64, levels)
	return e, nil
}

// macTreeArity is the fixed fan-in of a MAC tree: 8 x 64-bit MACs per
// 64-byte node (Section VIII-B1).
const macTreeArity = 8

// specAt returns the counter organization of a level.
func (e *engine) specAt(level int) counters.Spec {
	if level == 0 {
		return e.cfg.Enc
	}
	if e.cfg.MACTree {
		panic(invariant.Violationf("sim: MAC-tree levels hold no counters"))
	}
	i := level - 1
	if i >= len(e.cfg.Tree) {
		i = len(e.cfg.Tree) - 1
	}
	return e.cfg.Tree[i]
}

// block returns the (lazily allocated) counter state of a line.
func (e *engine) block(level int, idx uint64) counters.Block {
	if b, ok := e.blocks[level][idx]; ok {
		return b
	}
	b := e.specAt(level).New()
	e.blocks[level][idx] = b
	return b
}

// metaAddr returns the physical address of a metadata line.
func (e *engine) metaAddr(level int, idx uint64) uint64 {
	return e.levelBase[level] + idx*64
}

// decodeMeta inverts metaAddr for victim writeback handling.
func (e *engine) decodeMeta(addr uint64) (level int, idx uint64) {
	for lvl := e.rootLevel; lvl >= 0; lvl-- {
		if addr >= e.levelBase[lvl] {
			return lvl, (addr - e.levelBase[lvl]) / 64
		}
	}
	panic(invariant.Violationf("sim: address %#x is not metadata", addr))
}

// dramAccess issues one memory access at CPU time `at`, records it under a
// category, and returns its latency in CPU cycles.
func (e *engine) dramAccess(at uint64, addr uint64, write bool, cat Category) uint64 {
	return dramAccess(e.dram, e.cfg, e.stats, at, addr, write, cat)
}

// dramBackground issues a low-priority access (throttled overflow
// handling): it counts as traffic and occupies its bank, but does not
// block demand traffic on the data bus.
func (e *engine) dramBackground(at uint64, addr uint64, write bool, cat Category) {
	e.stats.MemAccesses[cat]++
	e.dram.AccessBackground(at/e.cfg.CPUPerMemCycle, addr, write)
}

// dramAccess is the shared (engine-less) DRAM issue path, usable by the
// non-secure system too.
func dramAccess(d *dram.DRAM, cfg Config, st *Stats, at uint64, addr uint64, write bool, cat Category) uint64 {
	st.MemAccesses[cat]++
	memAt := at / cfg.CPUPerMemCycle
	done := d.Access(memAt, addr, write)
	lat := (done-memAt)*cfg.CPUPerMemCycle + cfg.MemCtrlLatencyCPU
	return lat
}

// touchMeta brings the metadata line (level, idx) into the metadata cache,
// walking up the tree on a miss until a level hits (or the on-chip root),
// exactly the traversal of Section II-B. It returns the walk's latency and
// the latency of this level's own fetch alone (zero on a hit), in CPU
// cycles. write marks the line dirty (a counter update).
func (e *engine) touchMeta(at uint64, level int, idx uint64, write bool) (walk, own uint64) {
	if level >= e.rootLevel {
		return 0, 0 // the root is registered on-chip
	}
	addr := e.metaAddr(level, idx)
	if e.mcache.Access(addr, write) {
		return 0, 0
	}
	// Miss: the parent chain must be verified too. All missing levels'
	// addresses are computable up front, so their fetches issue in
	// parallel and verification completes bottom-up as lines arrive; the
	// walk's latency is the slowest fetch, while every fetch still
	// consumes bandwidth.
	parent, _ := e.geom.ParentSlot(level, idx)
	walk, _ = e.touchMeta(at, level+1, parent, false)
	own = e.dramAccess(at, addr, false, levelCategory(level))
	if own > walk {
		walk = own
	}
	var victim cache.Victim
	var evicted bool
	if e.cfg.TypeAwareCache && level == 0 {
		// Type-aware policy: leaf (encryption-counter) lines insert
		// cold so tree lines, each covering arity times more memory,
		// survive longer.
		victim, evicted = e.mcache.FillLowPriority(addr, write)
	} else {
		victim, evicted = e.mcache.Fill(addr, write)
	}
	if evicted && victim.Dirty {
		e.writebackMeta(at+walk, victim.Addr)
	}
	return walk, own
}

// writebackMeta handles a dirty metadata line leaving the cache: the line
// is written to memory and — because a modified counter line needs a fresh
// MAC under a fresh parent counter — its parent counter is incremented.
// This is how writes propagate up the tree, and why they stop at the level
// that stays resident in the cache. Under a MAC tree the parent node's MAC
// slot is rewritten instead: the parent is dirtied but nothing overflows.
func (e *engine) writebackMeta(at uint64, addr uint64) {
	level, idx := e.decodeMeta(addr)
	e.dramAccess(at, addr, true, levelCategory(level))
	if level+1 > e.rootLevel {
		return
	}
	parent, slot := e.geom.ParentSlot(level, idx)
	if e.cfg.MACTree {
		e.touchMeta(at, level+1, parent, true)
		e.stats.Increments[level+1]++
		return
	}
	e.bumpCounter(at, level+1, parent, slot)
}

// bumpCounter increments one minor counter, bringing its line into the
// cache (dirty) and handling an overflow by issuing the re-encryption /
// re-hash traffic for the affected children (Section II-B: extra accesses
// proportional to arity).
func (e *engine) bumpCounter(at uint64, level int, idx uint64, slot int) {
	if level < e.rootLevel {
		e.touchMeta(at, level, idx, true)
	}
	blk := e.block(level, idx)
	used := blk.NonZero()
	ev := blk.Increment(slot)
	e.stats.Increments[level]++
	if ev.Rebased {
		e.stats.Rebases[level]++
	}
	if !ev.Overflow {
		return
	}
	e.stats.Overflows[level]++
	bucket := used * HistBuckets / blk.Arity()
	if bucket >= HistBuckets {
		bucket = HistBuckets - 1
	}
	e.stats.OverflowHist[bucket]++
	if level == 0 {
		e.stats.OverflowHistEnc[bucket]++
	}
	// Overflow handling: read and rewrite every affected child (data
	// lines under level 0, child counter lines above), re-encrypting or
	// re-hashing under the new counter values.
	arity := uint64(blk.Arity())
	first := idx * arity
	if ev.Reencrypt < int(arity) {
		// MCR set reset: only the saturated counter's set is affected.
		set := uint64(slot) / uint64(ev.Reencrypt)
		first += set * uint64(ev.Reencrypt)
	}
	for i := 0; i < ev.Reencrypt; i++ {
		var childAddr uint64
		if level == 0 {
			childAddr = (first + uint64(i)) * 64 % e.cfg.MemoryBytes
		} else {
			childAddr = e.metaAddr(level-1, first+uint64(i))
		}
		if e.cfg.FairOverflowThrottle {
			// Fairness-driven scheduling (Section V): overflow
			// handling is spread out and drains at low priority
			// through idle bus slots, so co-running applications
			// keep their bandwidth.
			issueAt := at + uint64(i)*overflowThrottleSpacing
			e.dramBackground(issueAt, childAddr, false, CatOverflow)
			e.dramBackground(issueAt, childAddr, true, CatOverflow)
			continue
		}
		e.dramAccess(at, childAddr, false, CatOverflow)
		e.dramAccess(at, childAddr, true, CatOverflow)
	}
}

// overflowThrottleSpacing is the per-request stagger (CPU cycles) the
// fairness throttle applies to overflow-handling traffic.
const overflowThrottleSpacing = 128

// dataRead services a demand read: the data fetch proceeds in parallel with
// the counter fetch / tree walk (the OTP is precomputed), so the load
// latency is the maximum of the two paths, plus the separate-MAC fetch when
// configured. With speculative verification the walk's latency is hidden
// entirely; only its bandwidth remains.
func (e *engine) dataRead(at uint64, addr uint64) uint64 {
	e.stats.DataReads++
	lat := e.dramAccess(at, addr, false, CatData)
	encIdx, _ := e.geom.EncSlot(addr / 64)
	walkLat, ctrLat := e.touchMeta(at, 0, encIdx, false)
	if e.cfg.SpeculativeVerify {
		// The counter is still needed to decrypt; only the
		// verification above it leaves the critical path.
		walkLat = ctrLat
	}
	if walkLat > lat {
		lat = walkLat
	}
	if e.cfg.SeparateMAC {
		if macLat := e.dramAccess(at, e.macBase+addr/64*8/64*64, false, CatMAC); macLat > lat {
			lat = macLat
		}
	}
	return lat
}

// dataWrite services a writeback: the line is written to memory, its
// encryption counter increments (possibly overflowing), and with separate
// MACs the MAC line is written too. Writes are posted, but the returned
// drain latency feeds the core's write-buffer backpressure.
func (e *engine) dataWrite(at uint64, addr uint64) uint64 {
	e.stats.DataWrites++
	lat := e.dramAccess(at, addr, true, CatData)
	encIdx, slot := e.geom.EncSlot(addr / 64)
	e.bumpCounter(at, 0, encIdx, slot)
	if e.cfg.SeparateMAC {
		if macLat := e.dramAccess(at, e.macBase+addr/64*8/64*64, true, CatMAC); macLat > lat {
			lat = macLat
		}
	}
	return lat
}
