package sim

import (
	"testing"

	"github.com/securemem/morphtree/internal/workloads"
)

func TestBonsaiMerklePreset(t *testing.T) {
	cfg := BonsaiMerkle()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	w := workloads.Rate(bench(t, "mcf"), 4)
	res, err := Run(cfg, w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// MAC-tree levels never overflow: only encryption counters can.
	for lvl := 1; lvl < len(res.Stats.Overflows); lvl++ {
		if res.Stats.Overflows[lvl] != 0 {
			t.Fatalf("MAC-tree level %d overflowed %d times", lvl, res.Stats.Overflows[lvl])
		}
	}
	// The 8-ary tree is tall: upper-level traffic must exceed the 64-ary
	// counter tree's.
	base, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	bmtUpper := res.Stats.MemAccesses[CatCtr1] + res.Stats.MemAccesses[CatCtr2] + res.Stats.MemAccesses[CatCtr3Up]
	scUpper := base.Stats.MemAccesses[CatCtr1] + base.Stats.MemAccesses[CatCtr2] + base.Stats.MemAccesses[CatCtr3Up]
	if bmtUpper <= scUpper {
		t.Errorf("8-ary MAC tree upper traffic %d <= 64-ary counter tree's %d", bmtUpper, scUpper)
	}
	if res.IPC >= base.IPC {
		t.Errorf("Bonsai Merkle IPC %v >= SC-64's %v", res.IPC, base.IPC)
	}
}

func TestSpeculativeVerifyHidesWalkLatency(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 4)
	opts := quickOpts()
	opts.FootprintScale = 1.0 / 16
	plain, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Run(MorphSpeculative(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// With parallel tree traversal, the walk rarely exceeds the counter
	// fetch it runs alongside, so speculation's gain is small — it must
	// simply never hurt (beyond interleaving noise).
	if spec.IPC < plain.IPC*0.99 {
		t.Errorf("speculative IPC %v < non-speculative %v", spec.IPC, plain.IPC)
	}
	// Bandwidth cost is unchanged: same traffic, only latency hidden.
	pt := plain.MemAccessPerDataAccess()
	st := spec.MemAccessPerDataAccess()
	if st < pt*0.95 || st > pt*1.05 {
		t.Errorf("speculation changed traffic: %v vs %v", st, pt)
	}
}

func TestAdversaryForcesOverflowStorms(t *testing.T) {
	w := workloads.AttackMix(bench(t, "omnetpp"), 4)
	opts := quickOpts()
	res, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemAccesses[CatOverflow] == 0 {
		t.Fatal("adversary produced no overflow traffic")
	}
	// The attack should push overflow rates far beyond the benign run.
	benign, err := Run(MorphCtr128(), workloads.Rate(bench(t, "omnetpp"), 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowsPerMillion() < 3*benign.OverflowsPerMillion() {
		t.Errorf("attack overflow rate %v not >> benign %v",
			res.OverflowsPerMillion(), benign.OverflowsPerMillion())
	}
}

func TestFairThrottleShieldsVictims(t *testing.T) {
	w := workloads.AttackMix(bench(t, "omnetpp"), 4)
	opts := quickOpts()
	opts.MeasureAccesses = 100_000
	unfair, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	fair := MorphCtr128()
	fair.Name = "MorphCtr-128+fair"
	fair.FairOverflowThrottle = true
	shielded, err := Run(fair, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	victimIPC := func(r *Result) float64 {
		sum := 0.0
		for _, v := range r.PerCoreIPC[1:] {
			sum += v
		}
		return sum / float64(len(r.PerCoreIPC)-1)
	}
	if victimIPC(shielded) <= victimIPC(unfair) {
		t.Errorf("throttle did not help victims: %v vs %v",
			victimIPC(shielded), victimIPC(unfair))
	}
}

func TestNewPresetsResolvable(t *testing.T) {
	for _, name := range []string{"bmt", "morph-spec"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestReadLatencyHistogram(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 4)
	res, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, v := range res.Stats.ReadLatency {
		total += v
	}
	if total != res.Stats.DataReads {
		t.Fatalf("latency histogram holds %d reads, want %d", total, res.Stats.DataReads)
	}
	p50 := res.Stats.LatencyPercentile(50)
	p99 := res.Stats.LatencyPercentile(99)
	if p50 == 0 || p99 < p50 {
		t.Fatalf("percentiles inconsistent: p50=%d p99=%d", p50, p99)
	}
	// Memory reads cost at least the unloaded DRAM latency.
	if p50 < 64 {
		t.Fatalf("p50 = %d cycles, implausibly low", p50)
	}
}

func TestLatencyPercentileEdgeCases(t *testing.T) {
	var st Stats
	if st.LatencyPercentile(50) != 0 {
		t.Fatal("empty histogram must return 0")
	}
	st.recordReadLatency(100) // bucket 6 ([64,128))
	if got := st.LatencyPercentile(100); got != 128 {
		t.Fatalf("single-sample percentile = %d, want 128", got)
	}
	st.recordReadLatency(0)
	st.recordReadLatency(1)
	if st.ReadLatency[0] != 2 {
		t.Fatalf("tiny latencies bucket = %d", st.ReadLatency[0])
	}
}

func TestTypeAwareCachePolicy(t *testing.T) {
	// With type-aware insertion, tree lines displace leaf lines less
	// often: upper-level traffic must drop for a walk-heavy workload.
	w := workloads.Rate(bench(t, "mcf"), 4)
	opts := quickOpts()
	plain, err := Run(SC64(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	ta := SC64()
	ta.Name = "SC-64+TA"
	ta.TypeAwareCache = true
	aware, err := Run(ta, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	plainUpper := plain.Stats.MemAccesses[CatCtr1] + plain.Stats.MemAccesses[CatCtr2] + plain.Stats.MemAccesses[CatCtr3Up]
	awareUpper := aware.Stats.MemAccesses[CatCtr1] + aware.Stats.MemAccesses[CatCtr2] + aware.Stats.MemAccesses[CatCtr3Up]
	if awareUpper >= plainUpper {
		t.Errorf("type-aware policy did not reduce upper-tree traffic: %d vs %d", awareUpper, plainUpper)
	}
}

func TestOptionalLLCFiltersTraffic(t *testing.T) {
	// A cache-sized working set through an LLC must produce far less
	// memory traffic than the same accesses without one.
	w := workloads.Rate(bench(t, "sphinx"), 4) // small footprint
	opts := quickOpts()
	withLLC := MorphCtr128()
	withLLC.Name = "MorphCtr-128+LLC"
	withLLC.DataCacheBytes = 8 << 20
	withLLC.LLCHitLatencyCPU = 30
	rc, err := Run(withLLC, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	llcMem := rc.Stats.DataReads + rc.Stats.DataWrites
	rawMem := rn.Stats.DataReads + rn.Stats.DataWrites
	if llcMem*2 > rawMem {
		t.Errorf("LLC filtered little: %d vs %d memory data accesses", llcMem, rawMem)
	}
	if rc.IPC <= rn.IPC {
		t.Errorf("LLC did not help IPC: %v vs %v", rc.IPC, rn.IPC)
	}
	// Latency histogram still covers every demand read.
	var total uint64
	for _, v := range rc.Stats.ReadLatency {
		total += v
	}
	if total == 0 {
		t.Fatal("no read latencies recorded with LLC")
	}
}

func TestLLCBadGeometryRejected(t *testing.T) {
	cfg := MorphCtr128()
	cfg.DataCacheBytes = 1000 // not a valid cache geometry
	w := workloads.Rate(bench(t, "sphinx"), 4)
	if _, err := Run(cfg, w, quickOpts()); err == nil {
		t.Fatal("invalid LLC geometry must fail")
	}
}

func TestTableIConstants(t *testing.T) {
	// Table I of the paper, as encoded by the presets.
	cfg := SC64()
	if cfg.Cores != 4 {
		t.Errorf("cores = %d, want 4", cfg.Cores)
	}
	if cfg.CPUHz != 3.2e9 {
		t.Errorf("clock = %v, want 3.2GHz", cfg.CPUHz)
	}
	if cfg.ROBSize != 192 {
		t.Errorf("ROB = %d, want 192", cfg.ROBSize)
	}
	if cfg.FetchWidth != 4 {
		t.Errorf("fetch width = %d, want 4", cfg.FetchWidth)
	}
	if cfg.DRAM.Banks != 8 || cfg.DRAM.Ranks != 2 || cfg.DRAM.Channels != 2 {
		t.Errorf("banks x ranks x channels = %dx%dx%d, want 8x2x2",
			cfg.DRAM.Banks, cfg.DRAM.Ranks, cfg.DRAM.Channels)
	}
	if cfg.DRAM.RowsPerBank != 64<<10 {
		t.Errorf("rows per bank = %d, want 64K", cfg.DRAM.RowsPerBank)
	}
	if cfg.DRAM.ColumnsPerRow != 128 {
		t.Errorf("columns per row = %d, want 128", cfg.DRAM.ColumnsPerRow)
	}
	if cfg.MetaCacheWays != 8 {
		t.Errorf("metadata cache ways = %d, want 8", cfg.MetaCacheWays)
	}
	// The paper's 3.2GHz cores over an 800MHz bus.
	if cfg.CPUPerMemCycle != 4 {
		t.Errorf("CPU:mem clock ratio = %d, want 4", cfg.CPUPerMemCycle)
	}
	// Scaled parameters are documented constants, not magic numbers.
	if cfg.MemoryBytes != DefaultMemoryBytes || cfg.MetaCacheBytes != DefaultMetaCacheBytes {
		t.Error("presets diverge from documented scaled defaults")
	}
	if PaperMemoryBytes != 16<<30 {
		t.Error("paper capacity constant wrong")
	}
}
