// Package sim is the performance simulator: a USIMM-style trace-driven
// model of the 4-core secure-memory system of Table I. Cores issue
// memory-level accesses from synthetic workload traces; a secure metadata
// engine interposes the encryption-counter fetch, the integrity-tree walk
// through a shared metadata cache, write propagation via dirty evictions,
// and counter-overflow handling; a DDR3 timing model arbitrates everything
// and feeds the energy model.
//
// Outputs mirror the paper's evaluation: IPC (Figures 5a, 15, 19, 20),
// memory accesses per data access split by stream (Figures 5b, 16),
// overflow rates (Figures 11, 14), fraction-used-at-overflow histograms
// (Figure 7), and power/energy/EDP (Figure 18).
package sim

import (
	"fmt"

	"github.com/securemem/morphtree/internal/cache"
	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/dram"
	"github.com/securemem/morphtree/internal/energy"
)

// Config describes one simulated system (Table I plus the secure-memory
// organization under test).
type Config struct {
	// Name labels the configuration in reports ("SC-64", "VAULT", ...).
	Name string
	// MemoryBytes is the installed (protected) memory capacity.
	MemoryBytes uint64
	// MetaCacheBytes and MetaCacheWays shape the shared metadata cache.
	MetaCacheBytes uint64
	MetaCacheWays  int
	// DataCacheBytes/DataCacheWays optionally model the shared LLC
	// (Table I: 8 MB, 8-way). The bundled Table II workloads are
	// memory-level (post-LLC) traces, so the presets leave this off;
	// enable it when feeding CPU-level traces (TraceBenchmark) so reads
	// and writebacks filter through the LLC first.
	DataCacheBytes uint64
	DataCacheWays  int
	// LLCHitLatencyCPU is the load-to-use latency of an LLC hit.
	LLCHitLatencyCPU uint64
	// NonSecure disables all metadata work (the non-secure baseline).
	NonSecure bool
	// Enc is the encryption-counter organization.
	Enc counters.Spec
	// Tree is the per-level tree schedule (last element repeats).
	Tree []counters.Spec
	// SeparateMAC charges one extra memory access per data access for
	// MACs instead of the Synergy in-line organization (Figure 20).
	SeparateMAC bool
	// MACTree replaces the counter tree with a Bonsai-style MAC tree
	// (Section VIII-B1): 8-ary nodes of MACs over the encryption
	// counters. Tree nodes hold no counters, so tree levels never
	// overflow — but the arity is pinned at 8 and the tree is tall.
	// Tree specs are ignored; encryption counters still come from Enc.
	MACTree bool
	// SpeculativeVerify models PoisonIvy-style safe speculation
	// (Section VIII-B2): loads consume data before verification
	// completes, taking tree-walk latency off the critical path while
	// its bandwidth cost remains.
	SpeculativeVerify bool
	// TypeAwareCache enables metadata-type-aware insertion in the
	// metadata cache (the caching-policy line of work the paper cites as
	// orthogonal, [12][46]): encryption-counter lines insert at low
	// priority so the higher-coverage tree lines stay resident.
	TypeAwareCache bool
	// FairOverflowThrottle spreads overflow-handling traffic out in time
	// instead of bursting it, modeling the fairness-driven scheduling
	// that Section V proposes to shield co-runners from a pathological
	// application's overflow storms.
	FairOverflowThrottle bool
	// Cores, ROBSize and FetchWidth shape the core model.
	Cores      int
	ROBSize    uint64
	FetchWidth uint64
	// WriteBufferEntries bounds a core's in-flight writebacks; a full
	// buffer stalls the core until the oldest write drains (memory-side
	// backpressure on write-heavy phases).
	WriteBufferEntries int
	// CPUPerMemCycle is the CPU:memory clock ratio (3.2 GHz / 800 MHz).
	CPUPerMemCycle uint64
	// MemCtrlLatencyCPU is the fixed on-chip latency added to every
	// memory access, in CPU cycles.
	MemCtrlLatencyCPU uint64
	// CPUHz converts cycles to seconds for energy accounting.
	CPUHz float64
	// DRAM is the memory timing model configuration.
	DRAM dram.Config
	// Energy holds the power-model coefficients.
	Energy energy.Params
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.MemoryBytes == 0 || c.MemoryBytes&(c.MemoryBytes-1) != 0 {
		return fmt.Errorf("sim: memory size %d must be a power of two", c.MemoryBytes)
	}
	if c.Cores <= 0 || c.ROBSize == 0 || c.FetchWidth == 0 || c.CPUPerMemCycle == 0 ||
		c.WriteBufferEntries <= 0 {
		return fmt.Errorf("sim: invalid core model in %q", c.Name)
	}
	if !c.NonSecure {
		if c.Enc.New == nil || (len(c.Tree) == 0 && !c.MACTree) {
			return fmt.Errorf("sim: secure config %q needs counter specs", c.Name)
		}
		if c.MetaCacheBytes == 0 || c.MetaCacheWays == 0 {
			return fmt.Errorf("sim: secure config %q needs a metadata cache", c.Name)
		}
	}
	return nil
}

// Category classifies a memory access by what it fetches, matching the
// stacked-bar split of Figures 5b and 16.
type Category int

// Access categories.
const (
	CatData Category = iota
	CatCtrEncr
	CatCtr1
	CatCtr2
	CatCtr3Up
	CatOverflow
	CatMAC
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatData:
		return "Data"
	case CatCtrEncr:
		return "Ctr_Encr"
	case CatCtr1:
		return "Ctr_1"
	case CatCtr2:
		return "Ctr_2"
	case CatCtr3Up:
		return "Ctr_3&Up"
	case CatOverflow:
		return "Overflow"
	case CatMAC:
		return "MAC"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// levelCategory maps a metadata level to its traffic category.
func levelCategory(level int) Category {
	switch level {
	case 0:
		return CatCtrEncr
	case 1:
		return CatCtr1
	case 2:
		return CatCtr2
	default:
		return CatCtr3Up
	}
}

// HistBuckets is the number of fraction-used buckets in the overflow
// histogram (Figure 7 plots 0..1 in steps).
const HistBuckets = 10

// Stats accumulates simulator activity.
type Stats struct {
	// MemAccesses counts DRAM accesses by category.
	MemAccesses [numCategories]uint64
	// DataReads/DataWrites split CatData for traffic normalization.
	DataReads, DataWrites uint64
	// Instructions and Cycles are summed over cores (cycles taken from
	// the slowest core for time).
	Instructions uint64
	Cycles       uint64
	// Overflows, Rebases and Increments are per metadata level.
	Overflows  []uint64
	Rebases    []uint64
	Increments []uint64
	// OverflowHist buckets the fraction of a counter cacheline in use
	// when it overflowed (all levels combined).
	OverflowHist [HistBuckets]uint64
	// OverflowHistEnc restricts the histogram to encryption counters.
	OverflowHistEnc [HistBuckets]uint64
	// ReadLatency buckets demand-read latencies by log2(CPU cycles):
	// bucket i holds reads with latency in [2^i, 2^(i+1)).
	ReadLatency [32]uint64
	// MetaCache snapshots the metadata cache counters.
	MetaCache cache.Stats
	// DRAM snapshots the memory model counters.
	DRAM dram.Stats
}

// recordReadLatency files one demand-read latency into the histogram.
func (s *Stats) recordReadLatency(cycles uint64) {
	b := 0
	for v := cycles; v > 1 && b < len(s.ReadLatency)-1; v >>= 1 {
		b++
	}
	s.ReadLatency[b]++
}

// LatencyPercentile returns the upper bound (CPU cycles) of the bucket
// containing the p-th percentile read, for p in (0, 100].
func (s *Stats) LatencyPercentile(p float64) uint64 {
	var total uint64
	for _, v := range s.ReadLatency {
		total += v
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * p / 100)
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, v := range s.ReadLatency {
		cum += v
		if cum >= target {
			return 1 << uint(i+1)
		}
	}
	return 1 << uint(len(s.ReadLatency))
}

// TotalMemAccesses sums all DRAM traffic.
func (s *Stats) TotalMemAccesses() uint64 {
	var t uint64
	for _, v := range s.MemAccesses {
		t += v
	}
	return t
}

// TotalOverflows sums overflow events across levels.
func (s *Stats) TotalOverflows() uint64 {
	var t uint64
	for _, v := range s.Overflows {
		t += v
	}
	return t
}

// sub returns s - b, for extracting measurement-window deltas after warmup.
func (s *Stats) sub(b *Stats) Stats {
	d := Stats{
		DataReads:    s.DataReads - b.DataReads,
		DataWrites:   s.DataWrites - b.DataWrites,
		Instructions: s.Instructions - b.Instructions,
		Cycles:       s.Cycles - b.Cycles,
	}
	for i := range s.MemAccesses {
		d.MemAccesses[i] = s.MemAccesses[i] - b.MemAccesses[i]
	}
	d.Overflows = subSlice(s.Overflows, b.Overflows)
	d.Rebases = subSlice(s.Rebases, b.Rebases)
	d.Increments = subSlice(s.Increments, b.Increments)
	for i := range s.OverflowHist {
		d.OverflowHist[i] = s.OverflowHist[i] - b.OverflowHist[i]
		d.OverflowHistEnc[i] = s.OverflowHistEnc[i] - b.OverflowHistEnc[i]
	}
	for i := range s.ReadLatency {
		d.ReadLatency[i] = s.ReadLatency[i] - b.ReadLatency[i]
	}
	d.MetaCache = cache.Stats{
		Hits:           s.MetaCache.Hits - b.MetaCache.Hits,
		Misses:         s.MetaCache.Misses - b.MetaCache.Misses,
		Evictions:      s.MetaCache.Evictions - b.MetaCache.Evictions,
		DirtyEvictions: s.MetaCache.DirtyEvictions - b.MetaCache.DirtyEvictions,
	}
	d.DRAM = dram.Stats{
		Reads:         s.DRAM.Reads - b.DRAM.Reads,
		Writes:        s.DRAM.Writes - b.DRAM.Writes,
		Activations:   s.DRAM.Activations - b.DRAM.Activations,
		RowHits:       s.DRAM.RowHits - b.DRAM.RowHits,
		RowMisses:     s.DRAM.RowMisses - b.DRAM.RowMisses,
		BusBusyCycles: s.DRAM.BusBusyCycles - b.DRAM.BusBusyCycles,
	}
	return d
}

func subSlice(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i]
		if i < len(b) {
			out[i] -= b[i]
		}
	}
	return out
}

// Result is the outcome of one simulation run.
type Result struct {
	Config   string
	Workload string
	// IPC is the system throughput: total instructions over the longest
	// core's cycles, divided by core count (per-core average IPC).
	IPC float64
	// PerCoreIPC lists each core's IPC.
	PerCoreIPC []float64
	// Seconds is the measured-window execution time.
	Seconds float64
	// Stats holds the measurement-window activity.
	Stats Stats
	// Energy is the power/energy/EDP breakdown.
	Energy energy.Breakdown
}

// MemAccessPerDataAccess returns total memory accesses normalized to data
// accesses — the y-axis of Figures 5b and 16.
func (r *Result) MemAccessPerDataAccess() float64 {
	data := r.Stats.DataReads + r.Stats.DataWrites
	if data == 0 {
		return 0
	}
	return float64(r.Stats.TotalMemAccesses()) / float64(data)
}

// CategoryPerDataAccess returns one category's accesses per data access.
func (r *Result) CategoryPerDataAccess(c Category) float64 {
	data := r.Stats.DataReads + r.Stats.DataWrites
	if data == 0 {
		return 0
	}
	return float64(r.Stats.MemAccesses[c]) / float64(data)
}

// OverflowsPerMillion returns counter overflows per million memory
// accesses — the y-axis of Figures 11 and 14.
func (r *Result) OverflowsPerMillion() float64 {
	total := r.Stats.TotalMemAccesses()
	if total == 0 {
		return 0
	}
	return float64(r.Stats.TotalOverflows()) / float64(total) * 1e6
}
