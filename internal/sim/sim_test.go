package sim

import (
	"testing"

	"github.com/securemem/morphtree/internal/workloads"
)

// quickOpts keeps unit-test runs fast; shape experiments use larger runs in
// bench_test.go and cmd/experiments.
func quickOpts() RunOptions {
	return RunOptions{
		WarmupAccesses:  30_000,
		MeasureAccesses: 30_000,
		FootprintScale:  1.0 / 64,
		Seed:            1,
	}
}

func bench(t *testing.T, name string) workloads.Benchmark {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config must fail")
	}
	bad := SC64()
	bad.MemoryBytes = 3 << 30 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 memory must fail")
	}
	bad = SC64()
	bad.Tree = nil
	if err := bad.Validate(); err == nil {
		t.Error("secure config without tree must fail")
	}
	for _, name := range Presets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("bogus"); err == nil {
		t.Error("unknown preset must fail")
	}
}

func TestRunSmokeAllPresets(t *testing.T) {
	w := workloads.Rate(bench(t, "libquantum"), 4)
	for _, name := range Presets() {
		cfg, _ := Preset(name)
		res, err := Run(cfg, w, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.IPC <= 0 || res.IPC > float64(cfg.FetchWidth) {
			t.Errorf("%s: IPC = %v out of range", name, res.IPC)
		}
		if res.Stats.DataReads == 0 || res.Stats.DataWrites == 0 {
			t.Errorf("%s: no data traffic", name)
		}
		if res.Seconds <= 0 {
			t.Errorf("%s: time = %v", name, res.Seconds)
		}
		if len(res.PerCoreIPC) != 4 {
			t.Errorf("%s: %d cores", name, len(res.PerCoreIPC))
		}
	}
}

func TestNonSecureHasNoMetadataTraffic(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 4)
	res, err := Run(NonSecure(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for cat := CatCtrEncr; cat < numCategories; cat++ {
		if res.Stats.MemAccesses[cat] != 0 {
			t.Errorf("non-secure has %s traffic", cat)
		}
	}
	if got := res.MemAccessPerDataAccess(); got < 0.999 || got > 1.001 {
		t.Errorf("non-secure traffic ratio = %v, want 1", got)
	}
}

func TestSecureHasMetadataTraffic(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 4)
	res, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemAccesses[CatCtrEncr] == 0 {
		t.Error("no encryption-counter traffic")
	}
	if res.MemAccessPerDataAccess() <= 1.1 {
		t.Errorf("secure traffic ratio = %v, want > 1.1", res.MemAccessPerDataAccess())
	}
	// mcf's random accesses over a big footprint miss the metadata cache
	// for encryption counters and walk into level 1.
	if res.Stats.MemAccesses[CatCtr1] == 0 {
		t.Error("no level-1 traffic for a footprint-heavy random workload")
	}
}

func TestSecureSlowerThanNonSecure(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 4)
	ns, err := Run(NonSecure(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sec, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sec.IPC >= ns.IPC {
		t.Errorf("secure IPC %v >= non-secure %v", sec.IPC, ns.IPC)
	}
}

func TestWritePropagationDecaysUpTheTree(t *testing.T) {
	w := workloads.Rate(bench(t, "lbm"), 4)
	res, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	inc := res.Stats.Increments
	if inc[0] == 0 {
		t.Fatal("no encryption-counter increments")
	}
	// Increments must not grow with level (a small tolerance absorbs
	// warmup-window boundary effects: a line dirtied during warmup can be
	// evicted during measurement).
	for lvl := 1; lvl < len(inc); lvl++ {
		if float64(inc[lvl]) > float64(inc[lvl-1])*1.05+16 {
			t.Errorf("level %d increments %d > level %d's %d", lvl, inc[lvl], lvl-1, inc[lvl-1])
		}
	}
	top := inc[len(inc)-1]
	if top*2 > inc[0] {
		t.Errorf("writes reach the root too often: %d vs %d leaf increments", top, inc[0])
	}
}

func TestSC128OverflowsDwarfSC64(t *testing.T) {
	// Figure 11's left side: SC-128 suffers far more overflows than SC-64
	// on a streaming write-heavy workload.
	w := workloads.Rate(bench(t, "libquantum"), 4)
	opts := quickOpts()
	opts.WarmupAccesses = 50_000
	opts.MeasureAccesses = 250_000
	r64, err := Run(SC64(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	r128, err := Run(SC128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r128.OverflowsPerMillion() < 2*r64.OverflowsPerMillion() {
		t.Errorf("SC-128 overflow rate %v not >> SC-64's %v",
			r128.OverflowsPerMillion(), r64.OverflowsPerMillion())
	}
	if r128.Stats.MemAccesses[CatOverflow] == 0 {
		t.Error("SC-128 generated no overflow traffic")
	}
}

func TestRebasingTamesStreamingOverflows(t *testing.T) {
	// Figure 14's mechanism: on streaming workloads the MCR format
	// absorbs dense-counter overflows that the ZCC-only variant suffers.
	w := workloads.Rate(bench(t, "libquantum"), 4)
	// Streaming needs enough writes per line (~10) to saturate the 3-bit
	// dense minors and exercise the rebase path.
	opts := quickOpts()
	opts.WarmupAccesses = 50_000
	opts.MeasureAccesses = 250_000
	full, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	zccOnly, err := Run(MorphCtr128ZCC(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Rebases[0] == 0 {
		t.Error("no rebases on a streaming workload")
	}
	if full.Stats.TotalOverflows() >= zccOnly.Stats.TotalOverflows() {
		t.Errorf("rebasing did not reduce overflows: %d vs %d",
			full.Stats.TotalOverflows(), zccOnly.Stats.TotalOverflows())
	}
}

func TestVaultWalksMoreLevels(t *testing.T) {
	// VAULT's 16/32-ary tree is taller: for a random workload its
	// upper-level traffic must exceed the 64-ary baseline's.
	w := workloads.Rate(bench(t, "mcf"), 4)
	opts := quickOpts()
	opts.FootprintScale = 1.0 / 16 // keep level-1 well above the cache
	rv, err := Run(VAULT(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(SC64(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	vUpper := rv.Stats.MemAccesses[CatCtr1] + rv.Stats.MemAccesses[CatCtr2] + rv.Stats.MemAccesses[CatCtr3Up]
	bUpper := rb.Stats.MemAccesses[CatCtr1] + rb.Stats.MemAccesses[CatCtr2] + rb.Stats.MemAccesses[CatCtr3Up]
	if vUpper <= bUpper {
		t.Errorf("VAULT upper-tree traffic %d <= SC-64's %d", vUpper, bUpper)
	}
	if rv.MemAccessPerDataAccess() <= rb.MemAccessPerDataAccess() {
		t.Errorf("VAULT traffic ratio %v <= SC-64's %v",
			rv.MemAccessPerDataAccess(), rb.MemAccessPerDataAccess())
	}
}

func TestMorphBeatsBaselineOnRandomWorkload(t *testing.T) {
	// The headline effect (Figure 15): on footprint-heavy random-access
	// workloads the compact MorphTree cuts counter traffic versus SC-64.
	w := workloads.Rate(bench(t, "mcf"), 4)
	opts := quickOpts()
	opts.FootprintScale = 1.0 / 16
	rm, err := Run(MorphCtr128(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(SC64(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MemAccessPerDataAccess() >= rb.MemAccessPerDataAccess() {
		t.Errorf("MorphCtr traffic ratio %v >= SC-64's %v",
			rm.MemAccessPerDataAccess(), rb.MemAccessPerDataAccess())
	}
	if rm.IPC <= rb.IPC {
		t.Errorf("MorphCtr IPC %v <= SC-64's %v", rm.IPC, rb.IPC)
	}
}

func TestSeparateMACAddsTraffic(t *testing.T) {
	w := workloads.Rate(bench(t, "omnetpp"), 4)
	inline, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SC64()
	cfg.Name = "SC-64-sepmac"
	cfg.SeparateMAC = true
	sep, err := Run(cfg, w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sep.Stats.MemAccesses[CatMAC] == 0 {
		t.Fatal("separate-MAC config generated no MAC traffic")
	}
	if inline.Stats.MemAccesses[CatMAC] != 0 {
		t.Fatal("in-line MAC config generated MAC traffic")
	}
	if sep.IPC >= inline.IPC {
		t.Errorf("separate MACs IPC %v >= inline %v", sep.IPC, inline.IPC)
	}
}

func TestSmallerMetadataCacheHurts(t *testing.T) {
	w := workloads.Rate(bench(t, "omnetpp"), 4)
	big := SC64()
	big.MetaCacheBytes = 256 << 10
	small := SC64()
	small.MetaCacheBytes = 32 << 10
	rb, err := Run(big, w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(small, w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rs.IPC >= rb.IPC {
		t.Errorf("32KB cache IPC %v >= 256KB cache %v", rs.IPC, rb.IPC)
	}
}

func TestDeterminism(t *testing.T) {
	w := workloads.Rate(bench(t, "GemsFDTD"), 4)
	r1, err := Run(MorphCtr128(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(MorphCtr128(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC != r2.IPC || r1.Stats.TotalMemAccesses() != r2.Stats.TotalMemAccesses() {
		t.Fatal("simulation is not deterministic")
	}
}

func TestPageMapperBijective(t *testing.T) {
	cfg := SC64()
	fps := []uint64{1 << 14, 1 << 14, 1 << 13, 1 << 14}
	mappers := newMappers(cfg, fps)
	seen := map[uint64]bool{}
	for coreID, m := range mappers {
		for line := uint64(0); line < fps[coreID]; line++ {
			addr := m(line)
			if addr >= cfg.MemoryBytes {
				t.Fatalf("core %d line %d mapped out of range: %#x", coreID, line, addr)
			}
			if addr%64 != 0 {
				t.Fatalf("unaligned mapping %#x", addr)
			}
			if seen[addr] {
				t.Fatalf("collision at %#x (core %d line %d)", addr, coreID, line)
			}
			seen[addr] = true
		}
	}
}

func TestPageMapperDenseResidentSet(t *testing.T) {
	// Frames come from a resident set sized to the combined footprint:
	// every physical page below the footprint total is used.
	cfg := SC64()
	fps := []uint64{1 << 12, 1 << 12, 1 << 12, 1 << 12}
	mappers := newMappers(cfg, fps)
	pages := map[uint64]bool{}
	for coreID, m := range mappers {
		for line := uint64(0); line < fps[coreID]; line += 64 {
			pages[m(line)/4096] = true
		}
	}
	want := (1 << 12) / 64 * 4
	if len(pages) != want {
		t.Fatalf("resident pages = %d, want %d", len(pages), want)
	}
	var maxPage uint64
	for p := range pages {
		if p > maxPage {
			maxPage = p
		}
	}
	if maxPage != uint64(want-1) {
		t.Fatalf("resident set not dense: max page %d, want %d", maxPage, want-1)
	}
}

func TestPageMapperPreservesWithinPageLocality(t *testing.T) {
	m := newMappers(SC64(), []uint64{1 << 20, 1 << 20, 1 << 20, 1 << 20})[0]
	base := m(0)
	for i := uint64(1); i < 64; i++ {
		if m(i) != base+i*64 {
			t.Fatalf("line %d not contiguous within page", i)
		}
	}
	// Consecutive virtual pages scatter in physical memory.
	if m(64) == base+64*64 {
		t.Fatal("pages not scattered")
	}
}

func TestMixWorkload(t *testing.T) {
	mixes := workloads.Mixes()
	res, err := Run(MorphCtr128(), mixes[0], quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("mix run produced no progress")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	w := workloads.Rate(bench(t, "mcf"), 2) // wrong core count
	if _, err := Run(SC64(), w, quickOpts()); err == nil {
		t.Error("core-count mismatch must fail")
	}
	w4 := workloads.Rate(bench(t, "mcf"), 4)
	opt := quickOpts()
	opt.MeasureAccesses = 0
	if _, err := Run(SC64(), w4, opt); err == nil {
		t.Error("zero measurement window must fail")
	}
}

func TestOverflowHistogramPopulated(t *testing.T) {
	w := workloads.Rate(bench(t, "gcc"), 4)
	res, err := Run(SC64(), w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, v := range res.Stats.OverflowHist {
		total += v
	}
	if total != res.Stats.TotalOverflows() {
		t.Fatalf("histogram total %d != overflow count %d", total, res.Stats.TotalOverflows())
	}
}
