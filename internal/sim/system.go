package sim

import (
	"fmt"

	"github.com/securemem/morphtree/internal/cache"
	"github.com/securemem/morphtree/internal/dram"
	"github.com/securemem/morphtree/internal/workloads"
)

// RunOptions controls a simulation run's length and scaling.
type RunOptions struct {
	// WarmupAccesses per core are simulated before measurement starts,
	// letting counters, caches and row buffers reach steady state
	// (standing in for the paper's 25B-instruction warmup).
	WarmupAccesses uint64
	// MeasureAccesses per core form the measurement window.
	MeasureAccesses uint64
	// FootprintScale shrinks Table II footprints (DESIGN.md: timing runs
	// scale footprint and memory together to preserve cache-pressure
	// ratios).
	FootprintScale float64
	// Seed perturbs the per-core generators.
	Seed uint64
}

// DefaultRunOptions returns the settings used by cmd/experiments: the
// footprint scale and the (proportionally scaled) metadata cache of the
// presets are chosen together so that per-counter write intensity and
// tree-level-to-cache size ratios both stay in the paper's regimes
// (DESIGN.md, substitutions).
func DefaultRunOptions() RunOptions {
	return RunOptions{
		WarmupAccesses:  500_000,
		MeasureAccesses: 500_000,
		FootprintScale:  1.0 / 128,
		Seed:            1,
	}
}

// system wires cores, the (optional) shared LLC, the metadata engine, and
// DRAM together.
type system struct {
	cfg   Config
	dram  *dram.DRAM
	eng   *engine      // nil when non-secure
	llc   *cache.Cache // nil unless DataCacheBytes is set
	stats Stats
	cores []*core
}

// dataRead routes a demand read through the LLC (if modeled) and the
// security layer (if any).
func (s *system) dataRead(at uint64, addr uint64) uint64 {
	if s.llc != nil {
		if s.llc.Access(addr, false) {
			s.stats.recordReadLatency(s.cfg.LLCHitLatencyCPU)
			return s.cfg.LLCHitLatencyCPU
		}
		lat := s.memRead(at, addr)
		if victim, evicted := s.llc.Fill(addr, false); evicted && victim.Dirty {
			s.memWrite(at+lat, victim.Addr)
		}
		s.stats.recordReadLatency(lat)
		return lat
	}
	lat := s.memRead(at, addr)
	s.stats.recordReadLatency(lat)
	return lat
}

// dataWrite routes a store/writeback. With an LLC it is a write-allocate
// cache write whose memory cost is deferred to the dirty eviction; without
// one it is a memory-level writeback (the bundled traces' semantics).
func (s *system) dataWrite(at uint64, addr uint64) uint64 {
	if s.llc != nil {
		if s.llc.Access(addr, true) {
			return s.cfg.LLCHitLatencyCPU
		}
		lat := s.memRead(at, addr) // write-allocate fill
		if victim, evicted := s.llc.Fill(addr, true); evicted && victim.Dirty {
			s.memWrite(at+lat, victim.Addr)
		}
		return lat
	}
	return s.memWrite(at, addr)
}

// memRead issues a memory-level demand read through the security layer.
func (s *system) memRead(at uint64, addr uint64) uint64 {
	if s.eng != nil {
		return s.eng.dataRead(at, addr)
	}
	s.stats.DataReads++
	return dramAccess(s.dram, s.cfg, &s.stats, at, addr, false, CatData)
}

// memWrite issues a memory-level writeback through the security layer.
func (s *system) memWrite(at uint64, addr uint64) uint64 {
	if s.eng != nil {
		return s.eng.dataWrite(at, addr)
	}
	s.stats.DataWrites++
	return dramAccess(s.dram, s.cfg, &s.stats, at, addr, true, CatData)
}

// newMappers builds per-core virtual-to-physical translations implementing
// the random page-allocation policy of Table I. Physical frames are drawn
// from a dense resident set sized to the combined footprint (as an OS
// hands out frames from its free list), and scattered by an affine
// permutation — so hot and cold pages from all cores intersperse in
// physical memory, the behavior that makes tree-counter usage sparse
// (Section III-A), while neighboring frames still mostly belong to live
// pages.
func newMappers(cfg Config, footprints []uint64) []func(uint64) uint64 {
	maxLines := cfg.MemoryBytes / 64 / uint64(cfg.Cores)
	offsets := make([]uint64, len(footprints))
	var totalPages uint64
	clamped := make([]uint64, len(footprints))
	for i, fp := range footprints {
		if fp > maxLines {
			fp = maxLines
		}
		clamped[i] = fp
		offsets[i] = totalPages
		totalPages += (fp + 63) / 64
	}
	if totalPages == 0 {
		totalPages = 1
	}
	// Affine permutation p = (a*g) mod N is bijective when gcd(a, N) = 1.
	a := uint64(2654435761)
	for gcd(a, totalPages) != 1 {
		a += 2
	}
	mappers := make([]func(uint64) uint64, len(footprints))
	for i := range footprints {
		offset := offsets[i]
		lines := clamped[i]
		mappers[i] = func(line uint64) uint64 {
			line %= lines
			gpage := offset + line/64
			p := (gpage % totalPages) * a % totalPages
			return (p*64 + line%64) * 64
		}
	}
	return mappers
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Run simulates one workload under one configuration.
func Run(cfg Config, w workloads.Workload, opt RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(w.Cores) != cfg.Cores {
		return nil, fmt.Errorf("sim: workload %s has %d cores, config %s expects %d",
			w.Name, len(w.Cores), cfg.Name, cfg.Cores)
	}
	if opt.MeasureAccesses == 0 || opt.FootprintScale <= 0 {
		return nil, fmt.Errorf("sim: invalid run options %+v", opt)
	}

	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	sys := &system{cfg: cfg, dram: d}
	sys.eng, err = newEngine(cfg, d, &sys.stats)
	if err != nil {
		return nil, err
	}
	if cfg.DataCacheBytes > 0 {
		ways := cfg.DataCacheWays
		if ways == 0 {
			ways = 8
		}
		sys.llc, err = cache.New(cfg.DataCacheBytes, ways, 64)
		if err != nil {
			return nil, err
		}
	}
	footprints := make([]uint64, len(w.Cores))
	for i, bench := range w.Cores {
		footprints[i] = bench.FootprintLines(opt.FootprintScale, cfg.Cores)
	}
	mappers := newMappers(cfg, footprints)
	for i, bench := range w.Cores {
		sys.cores = append(sys.cores, &core{
			id:     i,
			gen:    bench.Generator(opt.FootprintScale, cfg.Cores, opt.Seed+uint64(i)*7919),
			mapper: mappers[i],
		})
	}

	total := opt.WarmupAccesses + opt.MeasureAccesses
	var warmBase Stats
	warmCycles := make([]uint64, len(sys.cores))
	warmInstr := make([]uint64, len(sys.cores))
	doneCycles := make([]uint64, len(sys.cores))
	doneInstr := make([]uint64, len(sys.cores))
	warmed := opt.WarmupAccesses == 0
	remaining := len(sys.cores)

	// Event-driven interleaving: always advance the core with the
	// earliest local clock, so DRAM sees requests in near time order.
	// As in USIMM's rate mode, cores that finish their quota keep
	// running (the generators are infinite) so the slowest cores always
	// see full contention; each core's IPC is measured at its own quota
	// boundary.
	// overrunCap bounds how far past its quota a fast core keeps
	// generating contention while slower cores finish.
	overrunCap := 3 * total
	for remaining > 0 {
		var next *core
		for _, c := range sys.cores {
			if c.accesses >= overrunCap && c.accesses >= total {
				continue
			}
			if next == nil || c.time < next.time {
				next = c
			}
		}
		if next == nil {
			// Every unfinished core is already past the overrun
			// cap (cannot happen: unfinished => accesses < total).
			break
		}
		next.step(sys)
		if next.accesses == total {
			doneCycles[next.id] = next.time
			doneInstr[next.id] = next.instret
			remaining--
		}

		if !warmed {
			done := true
			for _, c := range sys.cores {
				if c.accesses < opt.WarmupAccesses {
					done = false
					break
				}
			}
			if done {
				warmed = true
				sys.snapshotInto(&warmBase)
				for i, c := range sys.cores {
					warmCycles[i] = c.time
					warmInstr[i] = c.instret
				}
			}
		}
	}

	var final Stats
	sys.snapshotInto(&final)
	st := final.sub(&warmBase)

	res := &Result{Config: cfg.Name, Workload: w.Name}
	var maxCycles uint64
	for i := range sys.cores {
		cyc := doneCycles[i] - warmCycles[i]
		ins := doneInstr[i] - warmInstr[i]
		st.Instructions += ins
		if cyc > maxCycles {
			maxCycles = cyc
		}
		ipc := 0.0
		if cyc > 0 {
			ipc = float64(ins) / float64(cyc)
		}
		res.PerCoreIPC = append(res.PerCoreIPC, ipc)
	}
	st.Cycles = maxCycles
	var ipcSum float64
	for _, v := range res.PerCoreIPC {
		ipcSum += v
	}
	res.IPC = ipcSum / float64(len(res.PerCoreIPC))
	res.Stats = st
	res.Seconds = float64(maxCycles) / cfg.CPUHz
	res.Energy = cfg.Energy.Compute(st.DRAM, res.Seconds, cfg.Cores)
	return res, nil
}

// snapshotInto copies current cumulative stats (including cache and DRAM
// counters) into dst.
func (s *system) snapshotInto(dst *Stats) {
	*dst = s.stats
	dst.Overflows = append([]uint64(nil), s.stats.Overflows...)
	dst.Rebases = append([]uint64(nil), s.stats.Rebases...)
	dst.Increments = append([]uint64(nil), s.stats.Increments...)
	if s.eng != nil {
		dst.MetaCache = s.eng.mcache.Stats()
	}
	dst.DRAM = s.dram.Stats()
}
