package sim

import (
	"testing"

	"github.com/securemem/morphtree/internal/dram"
)

func testEngine(t *testing.T, cfg Config) *engine {
	t.Helper()
	var st Stats
	d := dram.MustNew(cfg.DRAM)
	e, err := newEngine(cfg, d, &st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMetaAddrDecodeRoundTrip(t *testing.T) {
	e := testEngine(t, SC64())
	for level := 0; level <= e.rootLevel; level++ {
		for _, idx := range []uint64{0, 1, 17, e.geom.LevelEntries(level) - 1} {
			if idx >= e.geom.LevelEntries(level) {
				continue
			}
			addr := e.metaAddr(level, idx)
			gl, gi := e.decodeMeta(addr)
			if gl != level || gi != idx {
				t.Fatalf("level %d idx %d decoded to %d/%d", level, idx, gl, gi)
			}
			if addr < e.cfg.MemoryBytes {
				t.Fatalf("metadata address %#x overlaps the data region", addr)
			}
		}
	}
}

func TestMetadataRegionsDisjoint(t *testing.T) {
	for _, name := range []string{"sc64", "vault", "morph", "sc128", "bmt"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		e := testEngine(t, cfg)
		// Each level's region must end before the next begins.
		for level := 0; level < e.rootLevel; level++ {
			end := e.levelBase[level] + e.geom.LevelEntries(level)*64
			if end > e.levelBase[level+1] {
				t.Fatalf("%s: level %d region [%#x, %#x) overlaps level %d at %#x",
					name, level, e.levelBase[level], end, level+1, e.levelBase[level+1])
			}
		}
		// And the MAC region must not overlap level 0.
		if e.macBase+cfg.MemoryBytes/8 > e.levelBase[0] {
			t.Fatalf("%s: MAC region runs into metadata", name)
		}
	}
}

func TestLevelCategoryMapping(t *testing.T) {
	cases := map[int]Category{0: CatCtrEncr, 1: CatCtr1, 2: CatCtr2, 3: CatCtr3Up, 7: CatCtr3Up}
	for level, want := range cases {
		if got := levelCategory(level); got != want {
			t.Errorf("levelCategory(%d) = %v, want %v", level, got, want)
		}
	}
}

func TestTouchMetaWalkStopsAtCachedLevel(t *testing.T) {
	e := testEngine(t, SC64())
	// Cold touch of a leaf walks every level (root excluded).
	e.touchMeta(0, 0, 5, false)
	first := e.stats.MemAccesses[CatCtrEncr] + e.stats.MemAccesses[CatCtr1] +
		e.stats.MemAccesses[CatCtr2] + e.stats.MemAccesses[CatCtr3Up]
	if first != uint64(e.rootLevel) {
		t.Fatalf("cold walk fetched %d levels, want %d", first, e.rootLevel)
	}
	// A sibling leaf under the same parent only fetches itself.
	e.touchMeta(0, 0, 6, false)
	second := e.stats.MemAccesses[CatCtrEncr] + e.stats.MemAccesses[CatCtr1] +
		e.stats.MemAccesses[CatCtr2] + e.stats.MemAccesses[CatCtr3Up] - first
	if second != 1 {
		t.Fatalf("warm sibling walk fetched %d lines, want 1", second)
	}
	// A cached leaf fetches nothing.
	e.touchMeta(0, 0, 5, false)
	third := e.stats.MemAccesses[CatCtrEncr] + e.stats.MemAccesses[CatCtr1] +
		e.stats.MemAccesses[CatCtr2] + e.stats.MemAccesses[CatCtr3Up] - first - second
	if third != 0 {
		t.Fatalf("cached touch fetched %d lines", third)
	}
}

func TestBumpCounterOverflowTraffic(t *testing.T) {
	e := testEngine(t, SC128())
	// 3-bit minors: the 8th write to one slot overflows, costing
	// 2 x 128 accesses of overflow traffic.
	for i := 0; i < 7; i++ {
		e.bumpCounter(0, 0, 0, 0)
	}
	if e.stats.MemAccesses[CatOverflow] != 0 {
		t.Fatal("premature overflow traffic")
	}
	e.bumpCounter(0, 0, 0, 0)
	if got := e.stats.MemAccesses[CatOverflow]; got != 256 {
		t.Fatalf("overflow traffic = %d accesses, want 256", got)
	}
	if e.stats.Overflows[0] != 1 {
		t.Fatalf("overflow count = %d", e.stats.Overflows[0])
	}
}

func TestDecodeMetaPanicsOnDataAddress(t *testing.T) {
	e := testEngine(t, SC64())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a data address")
		}
	}()
	e.decodeMeta(0)
}
