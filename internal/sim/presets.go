package sim

import (
	"fmt"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/dram"
	"github.com/securemem/morphtree/internal/energy"
)

// Baseline system parameters (Table I). Timing simulations default to a
// 4 GB memory with unscaled cache sizes; tree-size arithmetic is exact at
// any capacity, and DESIGN.md records why the scaled capacity preserves the
// paper's cache-pressure regimes.
const (
	// DefaultMemoryBytes is the simulated capacity for timing runs.
	DefaultMemoryBytes = 4 << 30
	// PaperMemoryBytes is the capacity for storage/geometry results.
	PaperMemoryBytes = 16 << 30
	// DefaultMetaCacheBytes is the shared metadata cache. The paper uses
	// 128 KB against full-size footprints; timing runs scale footprints
	// down (RunOptions.FootprintScale), so the cache scales with them to
	// keep the touched-metadata-to-cache ratios in the same regime.
	DefaultMetaCacheBytes = 16 << 10
)

// baseConfig fills in everything except the counter organization.
func baseConfig(name string) Config {
	return Config{
		Name:               name,
		MemoryBytes:        DefaultMemoryBytes,
		MetaCacheBytes:     DefaultMetaCacheBytes,
		MetaCacheWays:      8,
		Cores:              4,
		ROBSize:            192,
		FetchWidth:         4,
		WriteBufferEntries: 32,
		CPUPerMemCycle:     4, // 3.2 GHz cores, 800 MHz bus
		MemCtrlLatencyCPU:  60,
		CPUHz:              3.2e9,
		DRAM:               dram.DDR3(),
		Energy:             energy.Default(),
	}
}

// NonSecure returns the unprotected baseline (no metadata at all).
func NonSecure() Config {
	c := baseConfig("Non-Secure")
	c.NonSecure = true
	return c
}

// SC64 returns the paper's baseline: 64-ary split counters for both
// encryption and the integrity tree.
func SC64() Config {
	c := baseConfig("SC-64")
	c.Enc = counters.SplitSpec(64)
	c.Tree = []counters.Spec{counters.SplitSpec(64)}
	return c
}

// SC128 returns the naive 128-ary split-counter design whose overflow
// storms Figure 5 dissects.
func SC128() Config {
	c := baseConfig("SC-128")
	c.Enc = counters.SplitSpec(128)
	c.Tree = []counters.Spec{counters.SplitSpec(128)}
	return c
}

// VAULT returns the variable-arity design of Taassori et al.: 64-ary
// encryption counters, 32-ary tree level 1, 16-ary above.
func VAULT() Config {
	c := baseConfig("VAULT")
	c.Enc = counters.SplitSpec(64)
	c.Tree = []counters.Spec{counters.SplitSpec(32), counters.SplitSpec(16)}
	return c
}

// SGX returns the 8-ary commercial-SGX-like organization (Table III row 1).
func SGX() Config {
	c := baseConfig("SGX")
	c.Enc = counters.SplitSpec(8)
	c.Tree = []counters.Spec{counters.SplitSpec(8)}
	return c
}

// MorphCtr128 returns the paper's proposal: MorphCtr-128 (ZCC + Rebasing)
// for encryption and the integrity tree — the 128-ary MorphTree.
func MorphCtr128() Config {
	c := baseConfig("MorphCtr-128")
	c.Enc = counters.MorphSpec(true)
	c.Tree = []counters.Spec{counters.MorphSpec(true)}
	return c
}

// MorphCtr128ZCC returns the ZCC-only ablation (Figure 11).
func MorphCtr128ZCC() Config {
	c := baseConfig("MorphCtr-128-ZCC")
	c.Enc = counters.MorphSpec(false)
	c.Tree = []counters.Spec{counters.MorphSpec(false)}
	return c
}

// BonsaiMerkle returns a Bonsai Merkle (MAC-tree) design: SC-64 encryption
// counters under an 8-ary tree of MACs (Section VIII-B1's alternative
// integrity-tree class).
func BonsaiMerkle() Config {
	c := baseConfig("Bonsai-Merkle")
	c.Enc = counters.SplitSpec(64)
	c.MACTree = true
	return c
}

// MorphSpeculative returns MorphCtr-128 combined with PoisonIvy-style
// speculative verification (Section VIII-B2: "our design ... can be
// combined with these proposals").
func MorphSpeculative() Config {
	c := MorphCtr128()
	c.Name = "MorphCtr-128+Spec"
	c.SpeculativeVerify = true
	return c
}

// Delta64 returns the delta-encoding design of the paper's concurrent work
// (reference [19]): delta-encoded encryption counters under the SC-64
// integrity tree.
func Delta64() Config {
	c := baseConfig("Delta-64")
	c.Enc = counters.DeltaSpec()
	c.Tree = []counters.Spec{counters.SplitSpec(64)}
	return c
}

// Preset returns a named configuration.
func Preset(name string) (Config, error) {
	switch name {
	case "delta64", "Delta-64":
		return Delta64(), nil
	case "bmt", "Bonsai-Merkle":
		return BonsaiMerkle(), nil
	case "morph-spec", "MorphCtr-128+Spec":
		return MorphSpeculative(), nil
	case "nonsecure", "Non-Secure":
		return NonSecure(), nil
	case "sc64", "SC-64":
		return SC64(), nil
	case "sc128", "SC-128":
		return SC128(), nil
	case "vault", "VAULT":
		return VAULT(), nil
	case "sgx", "SGX":
		return SGX(), nil
	case "morph", "MorphCtr-128":
		return MorphCtr128(), nil
	case "morph-zcc", "MorphCtr-128-ZCC":
		return MorphCtr128ZCC(), nil
	}
	return Config{}, fmt.Errorf("sim: unknown preset %q", name)
}

// Presets lists the preset names accepted by Preset.
func Presets() []string {
	return []string{"nonsecure", "sc64", "sc128", "vault", "sgx", "morph", "morph-zcc", "bmt", "morph-spec", "delta64"}
}
