package analysis

// Standalone invocation (`morphlint ./...`): the tool re-executes itself
// through `go vet -vettool=<self>`, letting the go command do package
// loading, export-data compilation, fact-file plumbing and caching, then
// post-processes the captured diagnostics in this parent process:
//
//   - baseline filtering (-baseline): known findings listed in a checked-in
//     file are suppressed so pre-existing debt burns down without blocking
//     CI, while anything new still fails the run;
//   - machine-readable output (-json): diagnostics as a JSON array on
//     stdout for editor and CI integration;
//   - baseline (re)generation (-write-baseline).
//
// Doing the filtering here — rather than inside the per-unit vet callback —
// keeps unit processes byte-identical regardless of flags, so the go
// command's vet result cache stays valid across flag changes.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// StandaloneOptions configures a direct (non-vet-callback) run.
type StandaloneOptions struct {
	// Patterns are package patterns for go vet; defaults to ./...
	Patterns []string
	// JSON emits diagnostics as a JSON array on stdout instead of
	// file:line:col lines on stderr.
	JSON bool
	// BaselinePath names a baseline file of known findings to suppress.
	// Empty means no baseline. A missing file is treated as empty.
	BaselinePath string
	// WriteBaseline rewrites BaselinePath with the current findings
	// (exit 0) instead of reporting them.
	WriteBaseline bool
}

// JSONDiagnostic is the machine-readable form of one finding.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// diagLine matches the unitchecker's stderr format:
// path:line:col: message [analyzer]
var diagLine = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.+) \[([A-Za-z0-9_]+)\]$`)

// RunStandalone handles direct invocation by re-executing the tool through
// `go vet -vettool=<self>` and post-processing its diagnostics. Returns a
// process exit code: 0 clean, 1 tool/build failure, 2 findings remain
// after baseline filtering.
func RunStandalone(opts StandaloneOptions) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "morphlint: cannot locate own executable: %v\n", err)
		return 1
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	diags, other := parseVetOutput(stderr.String())

	// Lines that are not diagnostics are build/tool failures (typecheck
	// errors, bad patterns). Surface them verbatim and fail hard — a run
	// that could not analyze everything must not look clean.
	if len(other) > 0 {
		for _, line := range other {
			fmt.Fprintln(os.Stderr, line)
		}
		return 1
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok && len(diags) > 0 {
			_ = ee // findings produced the non-zero exit; handled below
		} else {
			fmt.Fprintf(os.Stderr, "morphlint: go vet: %v\n", runErr)
			return 1
		}
	}

	if opts.WriteBaseline {
		if opts.BaselinePath == "" {
			fmt.Fprintln(os.Stderr, "morphlint: -write-baseline requires -baseline <file>")
			return 1
		}
		if err := writeBaseline(opts.BaselinePath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "morphlint: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "morphlint: wrote %d baseline entries to %s\n", len(diags), opts.BaselinePath)
		return 0
	}

	if opts.BaselinePath != "" {
		baseline, err := readBaseline(opts.BaselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "morphlint: %v\n", err)
			return 1
		}
		diags = filterBaselined(diags, baseline)
	}

	if opts.JSON {
		out, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "morphlint: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// parseVetOutput splits go vet stderr into parsed diagnostics and
// everything else. Package group headers ("# pkg") are dropped: they only
// annotate the diagnostics that follow.
func parseVetOutput(out string) (diags []JSONDiagnostic, other []string) {
	cwd, _ := os.Getwd()
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			other = append(other, line)
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		file := m[1]
		if cwd != "" && filepath.IsAbs(file) {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		diags = append(diags, JSONDiagnostic{
			File:     file,
			Line:     lineNo,
			Col:      colNo,
			Message:  m[4],
			Analyzer: m[5],
		})
	}
	return diags, other
}

// Baseline format: one entry per line, `file<TAB>message [analyzer]`.
// Entries deliberately omit line/column numbers so unrelated edits higher
// in a file do not invalidate them; an entry suppresses every identical
// (file, message) finding.

// baselineKey is the identity of a finding for baseline matching.
func baselineKey(d JSONDiagnostic) string {
	return d.File + "\t" + d.Message + " [" + d.Analyzer + "]"
}

// readBaseline loads baseline entries; a missing file is an empty baseline.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	entries := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		entries[line] = true
	}
	return entries, nil
}

// filterBaselined drops diagnostics whose key appears in the baseline.
func filterBaselined(diags []JSONDiagnostic, baseline map[string]bool) []JSONDiagnostic {
	var out []JSONDiagnostic
	for _, d := range diags {
		if baseline[baselineKey(d)] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// writeBaseline rewrites the baseline file from the current findings,
// sorted and deduplicated.
func writeBaseline(path string, diags []JSONDiagnostic) error {
	seen := make(map[string]bool)
	var keys []string
	for _, d := range diags {
		k := baselineKey(d)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# morphlint baseline: known findings suppressed by -baseline.\n")
	buf.WriteString("# Format: file<TAB>message [analyzer]; line numbers omitted on purpose.\n")
	buf.WriteString("# Regenerate with: bin/morphlint -baseline <this file> -write-baseline ./...\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
