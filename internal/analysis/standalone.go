package analysis

import (
	"fmt"
	"os"
	"os/exec"
)

// RunStandalone handles direct invocation (`morphlint ./...`) by
// re-executing the tool through `go vet -vettool=<self>`. The go command is
// the package loader: it computes build metadata, compiles dependency
// export data, and calls back into this binary once per package unit with a
// vet.cfg file (see unitchecker.go). This is the same trick the upstream
// unitchecker documentation recommends, and it keeps standalone runs and
// vet runs byte-for-byte identical.
func RunStandalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "morphlint: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "morphlint: go vet: %v\n", err)
		return 1
	}
	return 0
}
