// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest with only the standard
// library.
//
// Fixtures live under <dir>/src/<pkgpath>/ in GOPATH-style layout. Every
// line that should trigger a diagnostic carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// where each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. Lines without a
// want comment must produce no diagnostics. Fixture packages may import
// the standard library (type-checked from GOROOT source, no network) and
// sibling fixture packages by their path under src/.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/securemem/morphtree/internal/analysis"
)

// Run applies the analyzer to each fixture package and reports mismatches
// between diagnostics and want comments through t.
//
// Cross-package facts work the way the unitchecker makes them work in
// production: before the target package is analyzed, the analyzer runs —
// diagnostics suppressed — over every fixture package loaded so far, in
// load order. Loading is recursive, so a target's fixture dependencies are
// always loaded (and analyzed) before it, and their exported facts are
// visible through a session shared across the run.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	for _, pkgpath := range pkgpaths {
		t.Run(pkgpath, func(t *testing.T) {
			t.Helper()
			lp, err := ld.load(pkgpath)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", pkgpath, err)
			}
			sess := analysis.NewSession()
			for _, dep := range ld.order {
				if dep == pkgpath {
					continue
				}
				dlp := ld.cache[dep]
				if _, err := sess.Run([]*analysis.Analyzer{a}, ld.fset, dlp.files, dlp.pkg, dlp.info, false); err != nil {
					t.Fatalf("running %s on fixture dep %s: %v", a.Name, dep, err)
				}
			}
			diags, err := sess.Run([]*analysis.Analyzer{a}, ld.fset, lp.files, lp.pkg, lp.info, true)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
			}
			check(t, ld.fset, lp.files, diags)
		})
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader loads fixture packages, caching them so fixtures can import each
// other (e.g. a fixture invariant package for panicpolicy).
type loader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*loadedPkg
	// order records fixture package paths in the order their loads
	// completed — dependencies first, since loading recurses through
	// imports — giving Run a topological analysis order for facts.
	order  []string
	stdlib types.Importer
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcRoot: srcRoot,
		fset:    fset,
		cache:   make(map[string]*loadedPkg),
		// The "source" importer type-checks dependencies from GOROOT
		// source, so fixtures need no pre-compiled export data and no
		// network access.
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over fixtures-then-stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, path); isDir(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.stdlib.Import(path)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func (l *loader) load(pkgpath string) (*loadedPkg, error) {
	if lp, ok := l.cache[pkgpath]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.srcRoot, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{files: files, pkg: pkg, info: info}
	l.cache[pkgpath] = lp
	l.order = append(l.order, pkgpath)
	return lp, nil
}

// expectation is one want regexp awaiting a diagnostic on its line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts want expectations keyed by "file:line".
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		end := 0
		if quote == '`' {
			end = strings.IndexByte(s[1:], '`') + 1
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
		}
		if end <= 0 {
			t.Fatalf("%s: unterminated want string in %q", pos, s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// check compares diagnostics against want expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.re)
			}
		}
	}
}
