package analysis

// This file implements the `go vet -vettool` protocol with only the
// standard library, mirroring golang.org/x/tools/go/analysis/unitchecker.
//
// The go command drives a vet tool in three steps:
//
//  1. `tool -flags` must print a JSON array describing the tool's flags
//     (cmd/go/internal/vet/vetflag.go).
//  2. `tool -V=full` must print `<name> version devel ... buildID=<hex>` so
//     the go command can derive a cache key for the tool's identity
//     (cmd/go/internal/work/buildid.go toolID).
//  3. `tool <flags> <dir>/vet.cfg` runs the analysis on one package unit.
//     The cfg file is JSON (cmd/go/internal/work/exec.go vetConfig) naming
//     the package's files and the export data of its dependencies.
//
// Diagnostics go to stderr as file:line:col: message lines; exit status 2
// signals findings. The tool must also write the facts file named by
// VetxOutput: the go command caches it and feeds the files back through
// PackageVetx when an importing unit runs. That is the interprocedural
// channel — dependency units run first (VetxOnly=true, diagnostics
// suppressed), export facts about their objects, and importing units see
// them. Standard-library units are skipped with an empty facts file: the
// analyzers define no facts about the stdlib, and type-checking all of it
// would dominate the run time.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake. The output format is
// parsed by the go command: field 1 must be "version", and a "devel"
// version must end in a buildID= field. Hashing the executable makes the
// ID change whenever the tool is rebuilt, invalidating stale vet caches.
func PrintVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	name := filepath.Base(os.Args[0])
	fmt.Fprintf(w, "%s version devel morphlint buildID=%x\n", name, h.Sum(nil))
}

// PrintFlags implements the -flags handshake. morphlint exposes no
// analyzer flags, so the set is empty.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// RunUnit loads, checks and analyzes the single package unit described by
// the vet.cfg file at cfgPath, printing diagnostics to stderr. The returned
// exit code follows the vet convention: 0 clean, 1 tool failure, 2 findings.
func RunUnit(cfgPath string, analyzers []*Analyzer) int {
	code, err := runUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morphlint: %v\n", err)
		return 1
	}
	return code
}

func runUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// writeVetx produces the facts file the go command expects to cache.
	// It must exist on every exit path that reports success, empty or not.
	writeVetx := func(facts []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, facts, 0o666)
	}

	// Standard-library units carry no morphlint facts; skip the (large)
	// type-check and hand back an empty fact set. The cfg's Standard map
	// only classifies the unit's *imports*, so the unit itself is detected
	// by path shape: stdlib import paths have no dot in their first
	// segment, module paths always do (they start with a host name).
	if isStandardImportPath(cfg.ImportPath) {
		return 0, writeVetx(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(nil)
			}
			return 1, err
		}
		files = append(files, f)
	}

	// Type-check against the export data the go command already built for
	// every dependency. The gc importer's lookup hook receives canonical
	// package paths; ImportMap translates source-level import paths first.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcImporter := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  tcImporter,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, "amd64"),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(nil)
		}
		return 1, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	// Seed a session with the facts of every dependency unit. The find
	// hook resolves declaring packages through the same importer the
	// type-checker used, so fact objects are canonical with the ones the
	// analyzers see. Packages outside this unit's import graph resolve to
	// nil and their facts are skipped.
	session := NewSession()
	RegisterFactTypes(analyzers)
	find := func(path string) *types.Package {
		if path == cfg.ImportPath {
			return pkg
		}
		dep, err := compilerImporter.Import(path)
		if err != nil {
			return nil
		}
		return dep
	}
	for depPath, vetxFile := range cfg.PackageVetx {
		raw, err := os.ReadFile(vetxFile)
		if err != nil {
			return 1, fmt.Errorf("reading facts of %s: %v", depPath, err)
		}
		if err := session.Facts().Decode(raw, find); err != nil {
			return 1, fmt.Errorf("facts of %s: %v", depPath, err)
		}
	}

	// VetxOnly units (dependencies of the packages named on the command
	// line) are analyzed for their facts alone; their diagnostics belong
	// to the run that names them directly.
	diags, err := session.Run(analyzers, fset, files, pkg, info, !cfg.VetxOnly)
	if err != nil {
		return 1, err
	}

	// Re-encode the whole store — imported facts included — so importers
	// see transitive facts through their direct dependencies' files.
	facts, err := session.Facts().Encode()
	if err != nil {
		return 1, err
	}
	if err := writeVetx(facts); err != nil {
		return 1, err
	}

	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// isStandardImportPath reports whether path names a standard-library
// package, using the same rule as cmd/go/internal/search: the first path
// element of a module path is a domain name and therefore contains a dot,
// stdlib paths ("fmt", "go/types", "internal/abi") never do.
func isStandardImportPath(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}

// newTypesInfo allocates the full set of type-checker result maps.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
