package analysis

// This file is the intra-procedural value-flow engine: a fixpoint taint
// evaluator over one function body. An analyzer seeds taint (its sources),
// decides how taint crosses call boundaries (usually by consulting
// interprocedural facts), and the engine propagates through assignments,
// conversions, slicing, ranges, closures and builtins until nothing
// changes. The engine is deliberately value-oriented:
//
//   - Taint means "this expression evaluates to the sensitive bytes
//     themselves" — not "this value transitively contains them". A
//     composite literal or struct holding a tainted value is NOT tainted;
//     reading a field yields taint only if the policy's Seed says so
//     (e.g. the field is annotated). This container rule is what keeps a
//     handle type like secmem.Memory — which necessarily holds key
//     material — usable in logs and errors without drowning the analyzer
//     in false positives.
//   - Writing a tainted value INTO a local container (x.f = key,
//     buf[i] = key[0], *p = key) taints the container's base variable:
//     the variable now denotes storage holding raw secret bytes, and
//     passing it onward passes them.
//
// Flow is syntactic and flow-insensitive within the body (a variable once
// tainted stays tainted), which errs on the reporting side — the right
// polarity for a security lint with an explicit escape hatch.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowConfig parameterizes one taint evaluation.
type FlowConfig struct {
	// Info is the enclosing package's type information.
	Info *types.Info

	// Seed reports whether an expression is inherently tainted at its use
	// site — the analyzer's source definition (annotated fields, annotated
	// package variables, parameters under a summary run). May be nil.
	Seed func(e ast.Expr) bool

	// Call decides the taint of a non-builtin, non-conversion call's
	// results. taintOf evaluates any expression (arguments, the receiver)
	// under the current state. Returning nil means no result is tainted.
	// May be nil. The engine handles conversions (taint passes through)
	// and builtins (append merges argument taint, copy taints the
	// destination, len/cap/make/new are clean) itself.
	Call func(call *ast.CallExpr, taintOf func(ast.Expr) bool) []bool
}

// Flow holds the evolving taint state for one function body.
type Flow struct {
	cfg     FlowConfig
	tainted map[types.Object]bool
}

// RunFlow evaluates taint over body (any node containing statements) to a
// fixpoint and returns the final state for querying.
func RunFlow(body ast.Node, cfg FlowConfig) *Flow {
	fl := &Flow{cfg: cfg, tainted: make(map[types.Object]bool)}
	if body == nil {
		return fl
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if fl.assign(s) {
					changed = true
				}
			case *ast.ValueSpec:
				if fl.valueSpec(s) {
					changed = true
				}
			case *ast.RangeStmt:
				if fl.rangeStmt(s) {
					changed = true
				}
			case *ast.CallExpr:
				// copy(dst, src) moves raw bytes: a tainted source taints
				// the destination's base variable.
				if fl.isBuiltin(s, "copy") && len(s.Args) == 2 && fl.Tainted(s.Args[1]) {
					if fl.taintTarget(s.Args[0]) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return fl
}

// Tainted reports whether e evaluates to tainted bytes under the final
// state.
func (fl *Flow) Tainted(e ast.Expr) bool { return fl.taintOf(e) }

// TaintedObjects exposes the set of variables holding tainted values.
func (fl *Flow) TaintedObjects() map[types.Object]bool { return fl.tainted }

// TaintObject force-taints a variable (used to seed parameters for
// summary runs).
func (fl *Flow) TaintObject(obj types.Object) {
	if obj != nil {
		fl.tainted[obj] = true
	}
}

// seed consults the policy's source definition.
func (fl *Flow) seed(e ast.Expr) bool {
	return fl.cfg.Seed != nil && fl.cfg.Seed(e)
}

// objOf resolves an identifier to its object (use or def).
func (fl *Flow) objOf(id *ast.Ident) types.Object {
	if obj := fl.cfg.Info.Uses[id]; obj != nil {
		return obj
	}
	return fl.cfg.Info.Defs[id]
}

// comparisonOps produce booleans, which never carry raw secret bytes even
// when the operands do (hmac.Equal-style checks are the sealed path's
// bread and butter).
var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true, token.LSS: true,
	token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.LAND: true, token.LOR: true,
}

// taintOf evaluates one expression in single-value context.
func (fl *Flow) taintOf(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fl.objOf(e); obj != nil && fl.tainted[obj] {
			return true
		}
		return fl.seed(e)
	case *ast.SelectorExpr:
		// Container rule: a field read is tainted only if the policy says
		// the field itself is a source — never because the base struct
		// holds secrets elsewhere. Qualified package-level vars resolve
		// through the selector's identifier.
		if fl.cfg.Info.Selections[e] == nil {
			if obj := fl.objOf(e.Sel); obj != nil && fl.tainted[obj] {
				return true
			}
		}
		return fl.seed(e)
	case *ast.CallExpr:
		ts := fl.taintsOf(e)
		for _, t := range ts {
			if t {
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		return fl.taintOf(e.X)
	case *ast.SliceExpr:
		return fl.taintOf(e.X)
	case *ast.StarExpr:
		return fl.taintOf(e.X)
	case *ast.UnaryExpr:
		return fl.taintOf(e.X)
	case *ast.BinaryExpr:
		if comparisonOps[e.Op] {
			return false
		}
		return fl.taintOf(e.X) || fl.taintOf(e.Y)
	case *ast.ParenExpr:
		return fl.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return fl.taintOf(e.X)
	}
	// Composite literals (container rule), function literals, basic
	// literals: never tainted as values.
	return false
}

// isBuiltin reports whether call invokes the named predeclared builtin.
func (fl *Flow) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = fl.objOf(id).(*types.Builtin)
	return ok
}

// resultCount reports how many values call produces.
func (fl *Flow) resultCount(call *ast.CallExpr) int {
	tv, ok := fl.cfg.Info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Invalid {
		return 0
	}
	return 1
}

// taintsOf evaluates a call in multi-value context, one bool per result.
func (fl *Flow) taintsOf(call *ast.CallExpr) []bool {
	// Conversion: string(key), []byte(s) — taint passes through.
	if tv, ok := fl.cfg.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []bool{fl.taintOf(call.Args[0])}
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := fl.objOf(id).(*types.Builtin); isB {
			switch id.Name {
			case "append":
				for _, a := range call.Args {
					if fl.taintOf(a) {
						return []bool{true}
					}
				}
				return []bool{false}
			case "min", "max":
				for _, a := range call.Args {
					if fl.taintOf(a) {
						return []bool{true}
					}
				}
				return []bool{false}
			default:
				// len, cap, make, new, copy, delete, clear, panic, ...
				return nil
			}
		}
	}
	if fl.cfg.Call != nil {
		if ts := fl.cfg.Call(call, fl.taintOf); ts != nil {
			return ts
		}
	}
	return make([]bool, fl.resultCount(call))
}

// taintTarget marks the storage an lvalue denotes as tainted: the
// identifier's object directly, or — for field, index, slice and pointer
// targets — the base variable now holding raw secret bytes. Reports
// whether the state changed.
func (fl *Flow) taintTarget(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			// x.f = tainted: x now holds the bytes.
			e = t.X
		case *ast.Ident:
			if t.Name == "_" {
				return false
			}
			obj := fl.objOf(t)
			if obj == nil || fl.tainted[obj] {
				return false
			}
			fl.tainted[obj] = true
			return true
		default:
			return false
		}
	}
}

// assign propagates taint through one assignment or short declaration.
func (fl *Flow) assign(s *ast.AssignStmt) bool {
	changed := false
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		var ts []bool
		switch r := ast.Unparen(s.Rhs[0]).(type) {
		case *ast.CallExpr:
			ts = fl.taintsOf(r)
		case *ast.TypeAssertExpr:
			ts = []bool{fl.taintOf(r.X), false}
		case *ast.IndexExpr:
			ts = []bool{fl.taintOf(r.X), false}
		case *ast.UnaryExpr: // <-ch
			ts = []bool{fl.taintOf(r.X), false}
		}
		for i, lhs := range s.Lhs {
			if i < len(ts) && ts[i] && fl.taintTarget(lhs) {
				changed = true
			}
		}
		return changed
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		if fl.taintOf(s.Rhs[i]) && fl.taintTarget(lhs) {
			changed = true
		}
	}
	return changed
}

// valueSpec propagates taint through `var x = expr` declarations.
func (fl *Flow) valueSpec(s *ast.ValueSpec) bool {
	changed := false
	if len(s.Names) > 1 && len(s.Values) == 1 {
		if call, ok := ast.Unparen(s.Values[0]).(*ast.CallExpr); ok {
			ts := fl.taintsOf(call)
			for i, name := range s.Names {
				if i < len(ts) && ts[i] {
					obj := fl.objOf(name)
					if obj != nil && !fl.tainted[obj] {
						fl.tainted[obj] = true
						changed = true
					}
				}
			}
		}
		return changed
	}
	for i, name := range s.Names {
		if i >= len(s.Values) {
			break
		}
		if fl.taintOf(s.Values[i]) {
			obj := fl.objOf(name)
			if obj != nil && !fl.tainted[obj] {
				fl.tainted[obj] = true
				changed = true
			}
		}
	}
	return changed
}

// rangeStmt taints the per-element variable of a range over a tainted
// collection (ranging a key yields its bytes).
func (fl *Flow) rangeStmt(s *ast.RangeStmt) bool {
	if s.Value == nil || !fl.taintOf(s.X) {
		return false
	}
	return fl.taintTarget(s.Value)
}
