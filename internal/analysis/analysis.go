// Package analysis is a self-contained, stdlib-only reimplementation of the
// core of golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// It exists because morphlint (cmd/morphlint) must run in hermetic build
// environments with no module proxy access, where x/tools cannot be
// downloaded. The surface mirrors the upstream design — an Analyzer holds a
// Run function over a Pass carrying the parsed, type-checked package — so
// analyzers written here port to the real framework mechanically if the
// dependency ever becomes available.
//
// Three entry points drive analyzers:
//
//   - Unitchecker implements the `go vet -vettool` JSON protocol, so the
//     go command loads, type-checks and caches packages (unitchecker.go).
//   - Standalone re-executes the tool under `go vet` (standalone.go).
//   - analysistest runs analyzers over testdata fixtures with `// want`
//     expectations (analysistest/).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis function and its options.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation for the analyzer. The first
	// sentence names the invariant checked and, where applicable, the
	// paper section it guards.
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) error
}

// A Pass provides information to an Analyzer's Run function about the
// single package under analysis and exports diagnostic reporting.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset provides position information for the syntax trees.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for the syntax trees.
	TypesInfo *types.Info

	// report receives diagnostics after directive filtering.
	report func(Diagnostic)

	// allow maps "file:line" to the set of analyzer names suppressed on
	// that line by a `//morphlint:allow <name>` directive.
	allow map[string]map[string]bool
}

// A Diagnostic is a message associated with a source location.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a diagnostic at pos, unless the line carries (or the
// preceding line is) a `//morphlint:allow <analyzer>` directive naming this
// analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowed reports whether a directive suppresses this analyzer at pos.
func (p *Pass) allowed(pos token.Pos) bool {
	if p.allow == nil {
		return false
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if names := p.allow[fmt.Sprintf("%s:%d", position.Filename, line)]; names[p.Analyzer.Name] || names["all"] {
			return true
		}
	}
	return false
}

// directivePrefix introduces a suppression comment. The full form is
// `//morphlint:allow <analyzer> [-- reason]`, placed on the offending line
// or the line directly above it.
const directivePrefix = "morphlint:allow"

// collectDirectives scans every comment in the files for allow directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, _, _ := strings.Cut(rest, " ")
				name = strings.TrimSuffix(name, ":")
				if name == "" {
					continue
				}
				position := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
				if allow[key] == nil {
					allow[key] = make(map[string]bool)
				}
				allow[key][name] = true
			}
		}
	}
	return allow
}

// Run applies each analyzer to one type-checked package and returns the
// collected diagnostics in source order.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	allow := collectDirectives(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			allow:     allow,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			d.Message = fmt.Sprintf("%s [%s]", d.Message, name)
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

// sortDiagnostics orders diagnostics by file position for stable output.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0; j-- {
			a, b := fset.Position(diags[j-1].Pos), fset.Position(diags[j].Pos)
			if a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset <= b.Offset) {
				break
			}
			diags[j-1], diags[j] = diags[j], diags[j-1]
		}
	}
}

// InTestFile reports whether pos lies in a _test.go file. The morphlint
// analyzers enforce production-code invariants and skip test sources.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every non-test file in depth-first order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, fn)
	}
}

// PkgNamed reports whether pkg's name is one of names. morphlint scopes
// package-specific invariants by package name so the same analyzer works on
// the real tree (import path github.com/securemem/morphtree/internal/mac)
// and on analysistest fixtures (import path "mac").
func PkgNamed(pkg *types.Package, names ...string) bool {
	if pkg == nil {
		return false
	}
	for _, n := range names {
		if pkg.Name() == n {
			return true
		}
	}
	return false
}
