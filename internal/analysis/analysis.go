// Package analysis is a self-contained, stdlib-only reimplementation of the
// core of golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// It exists because morphlint (cmd/morphlint) must run in hermetic build
// environments with no module proxy access, where x/tools cannot be
// downloaded. The surface mirrors the upstream design — an Analyzer holds a
// Run function over a Pass carrying the parsed, type-checked package, and
// may declare Fact types that propagate to importing packages — so
// analyzers written here port to the real framework mechanically if the
// dependency ever becomes available.
//
// Three entry points drive analyzers:
//
//   - Unitchecker implements the `go vet -vettool` JSON protocol, so the
//     go command loads, type-checks and caches packages — and carries
//     fact files between dependent units (unitchecker.go).
//   - Standalone re-executes the tool under `go vet`, then post-processes
//     diagnostics (baseline filtering, JSON output) (standalone.go).
//   - analysistest runs analyzers over testdata fixtures with `// want`
//     expectations, analyzing fixture dependencies first so facts flow
//     (analysistest/).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis function and its options.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation for the analyzer. The first
	// sentence names the invariant checked and, where applicable, the
	// paper section it guards.
	Doc string

	// FactTypes lists pointer prototypes of every Fact type the analyzer
	// exports or imports, for gob registration. Analyzers with no entries
	// are purely intra-package.
	FactTypes []Fact

	// Run applies the analyzer to a package.
	Run func(*Pass) error
}

// A Pass provides information to an Analyzer's Run function about the
// single package under analysis and exports diagnostic reporting and
// cross-package fact exchange.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	// Fset provides position information for the syntax trees.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds type information for the syntax trees.
	TypesInfo *types.Info

	// facts is the session-wide fact store.
	facts *FactStore

	// report receives diagnostics after directive filtering.
	report func(Diagnostic)

	// allow maps "file:line" to the set of analyzer names suppressed on
	// that line by a `//morphlint:allow <name>` directive.
	allow map[string]map[string]bool

	// directives maps "file:line" to the set of `//morph:<name>`
	// annotation directives present on that line.
	directives map[string]map[string]bool
}

// A Diagnostic is a message associated with a source location.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a diagnostic at pos, unless the line carries (or the
// preceding line is) a `//morphlint:allow <analyzer>` directive naming this
// analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowed reports whether a directive suppresses this analyzer at pos.
func (p *Pass) allowed(pos token.Pos) bool {
	if p.allow == nil {
		return false
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if names := p.allow[fmt.Sprintf("%s:%d", position.Filename, line)]; names[p.Analyzer.Name] || names["all"] {
			return true
		}
	}
	return false
}

// ExportObjectFact attaches fact to obj (which must belong to this
// package), making it visible to later passes and importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	p.facts.addObject(obj, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one exists. obj may belong to any package in the
// import graph.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.getObject(obj, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.addPackage(p.Pkg, fact)
}

// ImportPackageFact copies the package-level fact of ptr's type attached
// to pkg into ptr, reporting whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if pkg == nil {
		return false
	}
	return p.facts.getPackage(pkg, ptr)
}

// directivePrefix introduces a suppression comment. The full form is
// `//morphlint:allow <analyzer> [-- reason]`, placed on the offending line
// or the line directly above it.
const directivePrefix = "morphlint:allow"

// morphDirectivePrefix introduces an annotation directive. The full form
// is `//morph:<name> [-- reason]` in a declaration's doc comment, on the
// annotated line, or on the line directly above it. The framework
// recognizes three names:
//
//	//morph:secret   this field/variable holds key material, or this
//	                 function returns it (keytaint sources)
//	//morph:sealed   this function or call site is part of the sealed
//	                 path; key material may flow into its writes
//	//morph:hotpath  this function must stay allocation-free (hotalloc)
const morphDirectivePrefix = "morph:"

// HasDirective reports whether a comment group (typically a declaration's
// doc comment) carries the `//morph:<name>` directive.
func HasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if dir, ok := parseMorphDirective(c.Text); ok && dir == name {
			return true
		}
	}
	return false
}

// LineDirective reports whether the `//morph:<name>` directive appears on
// pos's line or the line directly above it.
func (p *Pass) LineDirective(pos token.Pos, name string) bool {
	if p.directives == nil {
		return false
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if p.directives[fmt.Sprintf("%s:%d", position.Filename, line)][name] {
			return true
		}
	}
	return false
}

// FuncDirective reports whether fn is annotated with `//morph:<name>`,
// either in its doc comment or on the line above its declaration.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) bool {
	return HasDirective(fn.Doc, name) || p.LineDirective(fn.Pos(), name)
}

// parseMorphDirective extracts the name from a `//morph:<name> [...]`
// comment.
func parseMorphDirective(text string) (string, bool) {
	body := strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(body, morphDirectivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(body, morphDirectivePrefix)
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", false
	}
	return name, true
}

// collectDirectives scans every comment in the files for allow and
// annotation directives, keyed by "file:line".
func collectDirectives(fset *token.FileSet, files []*ast.File) (allow, directives map[string]map[string]bool) {
	allow = make(map[string]map[string]bool)
	directives = make(map[string]map[string]bool)
	add := func(m map[string]map[string]bool, key, name string) {
		if m[key] == nil {
			m[key] = make(map[string]bool)
		}
		m[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				position := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
				if dir, ok := parseMorphDirective(c.Text); ok {
					add(directives, key, dir)
					continue
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, _, _ := strings.Cut(rest, " ")
				name = strings.TrimSuffix(name, ":")
				if name == "" {
					continue
				}
				add(allow, key, name)
			}
		}
	}
	return allow, directives
}

// A Session carries the fact store across the packages of one analysis
// run, so facts exported while analyzing a dependency are visible when its
// importers are analyzed. The unitchecker seeds a session from dependency
// vetx files; analysistest runs fixture dependencies through the same
// session first.
type Session struct {
	facts *FactStore
}

// NewSession returns a session with an empty fact store.
func NewSession() *Session {
	return &Session{facts: NewFactStore()}
}

// Facts exposes the session's fact store (for vetx encode/decode).
func (s *Session) Facts() *FactStore { return s.facts }

// Run applies each analyzer to one type-checked package. Diagnostics are
// returned in source order; when collect is false they are discarded (the
// package is being analyzed only for its facts).
func (s *Session) Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, collect bool) ([]Diagnostic, error) {
	RegisterFactTypes(analyzers)
	allow, directives := collectDirectives(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			facts:      s.facts,
			allow:      allow,
			directives: directives,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			if !collect {
				return
			}
			d.Message = fmt.Sprintf("%s [%s]", d.Message, name)
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

// Run applies each analyzer to one type-checked package in a fresh
// session and returns the collected diagnostics in source order. Facts do
// not cross package boundaries through this entry point; callers needing
// them drive a Session directly.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return NewSession().Run(analyzers, fset, files, pkg, info, true)
}

// sortDiagnostics orders diagnostics by file position for stable output.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0; j-- {
			a, b := fset.Position(diags[j-1].Pos), fset.Position(diags[j].Pos)
			if a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset <= b.Offset) {
				break
			}
			diags[j-1], diags[j] = diags[j], diags[j-1]
		}
	}
}

// InTestFile reports whether pos lies in a _test.go file. The morphlint
// analyzers enforce production-code invariants and skip test sources.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every non-test file in depth-first order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, fn)
	}
}

// PkgNamed reports whether pkg's name is one of names. morphlint scopes
// package-specific invariants by package name so the same analyzer works on
// the real tree (import path github.com/securemem/morphtree/internal/mac)
// and on analysistest fixtures (import path "mac").
func PkgNamed(pkg *types.Package, names ...string) bool {
	if pkg == nil {
		return false
	}
	for _, n := range names {
		if pkg.Name() == n {
			return true
		}
	}
	return false
}
