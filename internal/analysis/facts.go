package analysis

// This file is the interprocedural layer of the framework: a fact store
// mirroring golang.org/x/tools/go/analysis facts. A fact is a typed datum
// an analyzer attaches to a types.Object (a function, field, or variable)
// or to a whole package while analyzing the package that declares it;
// analyzers running later on importing packages read those facts back, so
// results propagate across package boundaries without whole-program
// loading.
//
// Transport matches the unitchecker protocol: the go command hands every
// unit the fact files (vetx) of its dependencies and a path to write its
// own. Facts are gob-encoded; objects are named by a miniature object path
// (package-scope object, method of a named type, or field of a named
// struct) resolved against the importer's view of the declaring package.
// Facts on objects that do not exist in export data (unexported
// package-scope functions, for example) are skipped by importers — such
// objects cannot be referenced across packages anyway, and the declaring
// package already consumed their facts in-process.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"strings"
)

// A Fact is an analyzer-defined datum attached to an object or package.
// Implementations must be pointers to gob-encodable structs and are
// registered via Analyzer.FactTypes.
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// FactStore holds the facts visible to one analysis session: everything
// imported from dependency units plus everything exported while the
// session runs. Objects are keyed canonically, which both the unitchecker
// (one importer per unit) and analysistest (one shared loader) guarantee.
type FactStore struct {
	obj map[types.Object]map[reflect.Type]Fact
	pkg map[*types.Package]map[reflect.Type]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		obj: make(map[types.Object]map[reflect.Type]Fact),
		pkg: make(map[*types.Package]map[reflect.Type]Fact),
	}
}

// addObject records a fact, replacing any previous fact of the same type.
func (s *FactStore) addObject(obj types.Object, f Fact) {
	m := s.obj[obj]
	if m == nil {
		m = make(map[reflect.Type]Fact)
		s.obj[obj] = m
	}
	m[reflect.TypeOf(f)] = f
}

// getObject copies a stored fact of ptr's type into ptr, reporting whether
// one existed.
func (s *FactStore) getObject(obj types.Object, ptr Fact) bool {
	f, ok := s.obj[obj][reflect.TypeOf(ptr)]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// addPackage records a package-level fact.
func (s *FactStore) addPackage(pkg *types.Package, f Fact) {
	m := s.pkg[pkg]
	if m == nil {
		m = make(map[reflect.Type]Fact)
		s.pkg[pkg] = m
	}
	m[reflect.TypeOf(f)] = f
}

// getPackage copies a stored package fact of ptr's type into ptr.
func (s *FactStore) getPackage(pkg *types.Package, ptr Fact) bool {
	f, ok := s.pkg[pkg][reflect.TypeOf(ptr)]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// Object path encoding. Three shapes cover every fact site the analyzers
// produce:
//
//	O.Name           package-scope object (func, var, type, const)
//	M.Type.Name      method of a package-scope named type
//	F.Type.Name      field of a package-scope named struct type
const (
	pathScope  = "O"
	pathMethod = "M"
	pathField  = "F"
)

// PathOf encodes obj as a path within its package, or ok=false if the
// object has none of the supported shapes (e.g. a local variable).
func PathOf(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if obj.Parent() == pkg.Scope() {
		return pathScope + "." + obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return "", false
		}
		named := namedOf(sig.Recv().Type())
		if named == nil {
			return "", false
		}
		return pathMethod + "." + named.Obj().Name() + "." + fn.Name(), true
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Find the package-scope named struct declaring this field.
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return pathField + "." + name + "." + v.Name(), true
				}
			}
		}
	}
	return "", false
}

// ResolvePath finds the object a path names within pkg, or nil.
func ResolvePath(pkg *types.Package, path string) types.Object {
	parts := strings.SplitN(path, ".", 3)
	switch parts[0] {
	case pathScope:
		if len(parts) == 2 {
			return pkg.Scope().Lookup(parts[1])
		}
	case pathMethod:
		if len(parts) != 3 {
			return nil
		}
		tn, ok := pkg.Scope().Lookup(parts[1]).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == parts[2] {
				return m
			}
		}
	case pathField:
		if len(parts) != 3 {
			return nil
		}
		tn, ok := pkg.Scope().Lookup(parts[1]).(*types.TypeName)
		if !ok {
			return nil
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == parts[2] {
				return f
			}
		}
	}
	return nil
}

// namedOf strips pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	// PkgPath is the declaring package's import path.
	PkgPath string
	// Object is the object path within the package; empty for a
	// package-level fact.
	Object string
	// Fact is the fact value itself (concrete types gob-registered via
	// Analyzer.FactTypes).
	Fact Fact
}

// RegisterFactTypes registers every analyzer's fact types with gob so the
// wire encoding round-trips their concrete types. Idempotent.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes the full store — imported facts included, so every
// unit re-exports its dependencies' facts and importers only need their
// direct dependencies' files.
func (s *FactStore) Encode() ([]byte, error) {
	var out []wireFact
	for obj, byType := range s.obj {
		path, ok := PathOf(obj)
		if !ok {
			continue
		}
		for _, f := range byType {
			out = append(out, wireFact{PkgPath: obj.Pkg().Path(), Object: path, Fact: f})
		}
	}
	for pkg, byType := range s.pkg {
		for _, f := range byType {
			out = append(out, wireFact{PkgPath: pkg.Path(), Fact: f})
		}
	}
	// Deterministic order keeps vetx bytes (and so the go command's cache)
	// stable across runs.
	sortWireFacts(out)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, fmt.Errorf("analysis: encode facts: %w", err)
	}
	return buf.Bytes(), nil
}

func sortWireFacts(fs []wireFact) {
	key := func(f wireFact) string {
		return f.PkgPath + "\x00" + f.Object + "\x00" + reflect.TypeOf(f.Fact).String()
	}
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && key(fs[j]) < key(fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Decode merges a serialized fact file into the store. find maps an import
// path to the importer's *types.Package; facts whose package or object
// cannot be resolved (unexported objects absent from export data, packages
// outside this unit's import graph) are skipped — they cannot be referenced
// by the code under analysis. Empty input is a valid empty fact set.
func (s *FactStore) Decode(data []byte, find func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var in []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return fmt.Errorf("analysis: decode facts: %w", err)
	}
	for _, wf := range in {
		pkg := find(wf.PkgPath)
		if pkg == nil || wf.Fact == nil {
			continue
		}
		if wf.Object == "" {
			s.addPackage(pkg, wf.Fact)
			continue
		}
		if obj := ResolvePath(pkg, wf.Object); obj != nil {
			s.addObject(obj, wf.Fact)
		}
	}
	return nil
}
