package trace

import (
	"testing"
)

func benchGen(b *testing.B, g Generator) {
	b.Helper()
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Next().Line
	}
	_ = sink
}

func BenchmarkStream(b *testing.B) { benchGen(b, NewStream(1<<20, NewRates(24, 10), 1)) }
func BenchmarkRandom(b *testing.B) { benchGen(b, NewRandom(1<<20, NewRates(69, 2), 1)) }
func BenchmarkHotCold(b *testing.B) {
	benchGen(b, NewHotCold(1<<20, NewRates(19, 8), 0.05, 0.85, true, 1))
}
func BenchmarkBurst(b *testing.B) { benchGen(b, NewBurst(1<<20, NewRates(61, 24), 16, 1)) }

// FuzzParseRecord: arbitrary text must parse or fail cleanly, and valid
// records must round-trip through the writer format.
func FuzzParseRecord(f *testing.F) {
	f.Add("12 R 100")
	f.Add("0 W 0")
	f.Add("bogus line here")
	f.Fuzz(func(t *testing.T, text string) {
		a, err := parseRecord(text)
		if err != nil {
			return
		}
		op := "R"
		if a.Write {
			op = "W"
		}
		back, err := parseRecord(formatRecord(a.Gap, op, a.Line))
		if err != nil || back != a {
			t.Fatalf("round trip failed: %+v -> %v %+v", a, err, back)
		}
	})
}

func formatRecord(gap uint32, op string, line uint64) string {
	return itoa(uint64(gap)) + " " + op + " " + itoa(line)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
