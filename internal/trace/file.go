package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace files use a USIMM-like text format, one access per line:
//
//	<gap> R|W <line-index>
//
// where gap is the number of non-memory instructions preceding the access
// and line-index is the 64-byte data line within the program's footprint.
// Lines starting with '#' are comments. This lets users feed real traces
// (e.g. converted from a binary-instrumentation run) to the simulator in
// place of the synthetic generators.

// WriteFile streams n accesses from a generator to w in trace-file format.
func WriteFile(w io.Writer, g Generator, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		a := g.Next()
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d %c %d\n", a.Gap, op, a.Line); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// ParseFile reads an entire trace file into memory.
func ParseFile(r io.Reader) ([]Access, error) {
	var out []Access
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		a, err := parseRecord(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return out, nil
}

func parseRecord(text string) (Access, error) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return Access{}, fmt.Errorf("want 3 fields %q, got %d", "<gap> R|W <line>", len(fields))
	}
	gap, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return Access{}, fmt.Errorf("bad gap %q: %w", fields[0], err)
	}
	var write bool
	switch fields[1] {
	case "R", "r":
		write = false
	case "W", "w":
		write = true
	default:
		return Access{}, fmt.Errorf("bad op %q (want R or W)", fields[1])
	}
	line, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return Access{}, fmt.Errorf("bad line %q: %w", fields[2], err)
	}
	return Access{Gap: uint32(gap), Write: write, Line: line}, nil
}

// Replay is a Generator that cycles through a recorded trace, looping back
// to the start when exhausted (rate-mode restart semantics).
type Replay struct {
	accesses []Access
	pos      int
	// Loops counts completed passes over the trace.
	Loops int
}

// NewReplay wraps a parsed trace as a Generator.
func NewReplay(accesses []Access) (*Replay, error) {
	if len(accesses) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Replay{accesses: accesses}, nil
}

// ReadReplay parses a trace file and wraps it as a Generator.
func ReadReplay(r io.Reader) (*Replay, error) {
	acc, err := ParseFile(r)
	if err != nil {
		return nil, err
	}
	return NewReplay(acc)
}

// Len returns the recorded trace length.
func (g *Replay) Len() int { return len(g.accesses) }

// MaxLine returns the largest line index in the trace (its footprint bound).
func (g *Replay) MaxLine() uint64 {
	var max uint64
	for _, a := range g.accesses {
		if a.Line > max {
			max = a.Line
		}
	}
	return max
}

// Next implements Generator.
func (g *Replay) Next() Access {
	a := g.accesses[g.pos]
	g.pos++
	if g.pos == len(g.accesses) {
		g.pos = 0
		g.Loops++
	}
	return a
}
