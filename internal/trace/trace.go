// Package trace generates the synthetic memory-access streams that stand in
// for the paper's SPEC 2006 / GAP traces (DESIGN.md, substitutions). A trace
// is the post-LLC view USIMM consumes: each record is a memory read or a
// writeback, preceded by a count of non-memory instructions.
//
// Counter-overflow behavior — the phenomenon the paper's design targets —
// depends only on how writes distribute over counter cachelines (Figure 7's
// sparse-vs-uniform split), so each generator reproduces one of the paper's
// usage classes: streaming (uniform within write-heavy pages), uniform
// random (sparse), hot/cold paged (interspersed hot pages), and bursty
// pointer-chasing (graph workloads).
package trace

// Access is one memory-level event in a core's instruction stream.
type Access struct {
	// Gap is the number of non-memory instructions retired before this
	// access (sets the memory intensity, i.e. the PKI of Table II).
	Gap uint32
	// Write marks a writeback to memory (vs a demand read).
	Write bool
	// Line is the accessed data line index within the core's footprint
	// (0 .. FootprintLines-1); the simulator maps it to a physical line.
	Line uint64
}

// Generator produces an infinite access stream deterministically from its
// seed.
type Generator interface {
	Next() Access
}

// rng is xorshift64*: fast, deterministic, good enough for workload
// synthesis.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Rates turns Table II's read/write PKI into gap and write-ratio parameters.
type Rates struct {
	meanGap    float64
	writeRatio float64
}

// NewRates builds access rates from memory reads and writes per kilo
// instruction.
func NewRates(readPKI, writePKI float64) Rates {
	total := readPKI + writePKI
	if total <= 0 {
		total = 0.1
	}
	gap := 1000/total - 1
	if gap < 0 {
		gap = 0
	}
	return Rates{meanGap: gap, writeRatio: writePKI / total}
}

// sample draws (gap, write) for the next access: gaps are uniform on
// [0, 2*mean] (mean-preserving), writes are Bernoulli at the PKI ratio.
func (ra Rates) sample(r *rng) (uint32, bool) {
	gap := uint32(r.float() * 2 * ra.meanGap)
	return gap, r.float() < ra.writeRatio
}

// LinesPerPage is the number of cachelines in a 4 KB page.
const LinesPerPage = 64

// Stream generates sequential accesses sweeping the footprint, the
// streaming pattern of libquantum/gcc/lbm. Reads follow a sequential read
// pointer; writebacks follow their own sequential write pointer at the
// write-PKI rate — the LLC of a streaming application evicts dirty lines in
// address order, so every line of the footprint is written equally often.
// That near-zero spread between minor counters is what lets Minor Counter
// Rebasing absorb overflows indefinitely (Section IV).
type Stream struct {
	r     rng
	rates Rates
	lines uint64
	rpos  uint64
	wpos  uint64
	wacc  float64
}

// NewStream returns a streaming generator over footprintLines.
func NewStream(footprintLines uint64, rates Rates, seed uint64) *Stream {
	return &Stream{r: newRNG(seed), rates: rates, lines: footprintLines,
		wpos: footprintLines / 2} // writes trail reads, out of phase
}

// Next implements Generator.
func (g *Stream) Next() Access {
	gap, _ := g.rates.sample(&g.r)
	g.wacc += g.rates.writeRatio
	if g.wacc >= 1 {
		g.wacc--
		line := g.wpos
		g.wpos = (g.wpos + 1) % g.lines
		return Access{Gap: gap, Write: true, Line: line}
	}
	line := g.rpos
	g.rpos = (g.rpos + 1) % g.lines
	return Access{Gap: gap, Write: false, Line: line}
}

// WriteAlign concentrates an irregular workload's writes onto every
// WriteAlign-th line: pointer-chasing programs read broadly but write a
// narrower set (rank arrays, visited flags), which is what keeps their
// counter-cacheline usage below 25% at overflow time (Figure 7's sparse
// mode).
const WriteAlign = 4

// WritePageFrac is the fraction of an irregular workload's pages that
// receive its writes. Reads roam the whole working set, but the written
// state (rank arrays, visited flags, allocator metadata) lives in a
// smaller set of pages interspersed among read-only ones — which is what
// leaves tree-level-1 counter usage sparse (Section III-A) and produces
// Figure 7's <25% overflow mode.
const WritePageFrac = 0.15

// Random generates uniform random reads over the footprint with writes
// concentrated on scattered hot pages — the pointer-chasing pattern of
// mcf/omnetpp and the Twitter graph kernels.
type Random struct {
	r          rng
	rates      Rates
	lines      uint64
	writePages uint64
	pages      uint64
}

// NewRandom returns a uniform-random generator over footprintLines.
func NewRandom(footprintLines uint64, rates Rates, seed uint64) *Random {
	pages := footprintLines / LinesPerPage
	if pages == 0 {
		pages = 1
	}
	wp := uint64(float64(pages) * WritePageFrac)
	if wp == 0 {
		wp = 1
	}
	return &Random{r: newRNG(seed), rates: rates, lines: footprintLines,
		pages: pages, writePages: wp}
}

// Next implements Generator.
func (g *Random) Next() Access {
	gap, write := g.rates.sample(&g.r)
	if write {
		return Access{Gap: gap, Write: true, Line: hotWriteLine(&g.r, g.lines, g.pages, g.writePages)}
	}
	return Access{Gap: gap, Write: false, Line: g.r.intn(g.lines)}
}

// hotWriteLine picks a write target: a scattered hot page, and within it a
// WriteAlign-aligned line (writes touch a quarter of a page's lines).
func hotWriteLine(r *rng, lines, pages, writePages uint64) uint64 {
	page := (r.intn(writePages)*2654435761 + 0x5BD1) % pages
	return (page*LinesPerPage + (r.intn(LinesPerPage) &^ (WriteAlign - 1))) % lines
}

// Adversary generates the pathological denial-of-service write pattern of
// Section V against MorphCtr-128 lines: within one 4 KB page (64 counters
// of a 128-counter cacheline — contiguous even under page-granular frame
// scatter), write once to 52 distinct lines — forcing ZCC down to 4-bit
// counters — then hammer a single line until it overflows, and move to the
// next page. Every ~67 writes trigger a 128-line re-encryption storm.
type Adversary struct {
	r     rng
	rates Rates
	lines uint64
	page  uint64
	phase int // 0..51 touch distinct lines, 52.. hammer line 0
}

// AdversaryWritesPerOverflow is the attack's write cost per forced
// overflow (Section V: 67).
const AdversaryWritesPerOverflow = 67

// NewAdversary returns the pathological write generator. Reads (at the
// read PKI) scan uniformly so the attacker looks like a normal program.
func NewAdversary(footprintLines uint64, rates Rates, seed uint64) *Adversary {
	pages := footprintLines / LinesPerPage
	if pages == 0 {
		pages = 1
	}
	return &Adversary{r: newRNG(seed), rates: rates, lines: pages * LinesPerPage}
}

// Next implements Generator.
func (g *Adversary) Next() Access {
	gap, write := g.rates.sample(&g.r)
	if !write {
		return Access{Gap: gap, Write: false, Line: g.r.intn(g.lines)}
	}
	base := g.page * LinesPerPage
	var line uint64
	if g.phase < 52 {
		// One write each to 52 distinct counters of the page.
		line = base + uint64(g.phase)
	} else {
		// Hammer one counter; at 4-bit sizing it overflows after 15
		// more writes.
		line = base
	}
	g.phase++
	if g.phase >= AdversaryWritesPerOverflow {
		g.phase = 0
		g.page = (g.page + 1) % (g.lines / LinesPerPage)
	}
	return Access{Gap: gap, Write: true, Line: line % g.lines}
}

// HotCold divides the footprint into 4 KB pages, a fraction of which are
// "hot" and absorb most of the traffic — Section III-A's interspersed
// hot/cold pages that make tree-level-1 counter usage sparse. Within a hot
// page, lines are chosen with a skew so usage is neither fully sparse nor
// fully uniform (the GemsFDTD-like middle regime).
type HotCold struct {
	r        rng
	rates    Rates
	pages    uint64
	hotPages uint64
	hotProb  float64
	skew     bool
}

// NewHotCold returns a hot/cold generator: hotFrac of pages receive hotProb
// of the accesses. skew concentrates within-page accesses on a few lines.
func NewHotCold(footprintLines uint64, rates Rates, hotFrac, hotProb float64, skew bool, seed uint64) *HotCold {
	pages := footprintLines / LinesPerPage
	if pages == 0 {
		pages = 1
	}
	hot := uint64(float64(pages) * hotFrac)
	if hot == 0 {
		hot = 1
	}
	return &HotCold{
		r: newRNG(seed), rates: rates, pages: pages,
		hotPages: hot, hotProb: hotProb, skew: skew,
	}
}

// pageAt scatters hot pages through the footprint (hot and cold pages are
// interspersed in memory, not clustered).
func (g *HotCold) pageAt(hotIdx uint64) uint64 {
	// Odd-multiplier hashing spreads hot page indices over all pages.
	return (hotIdx*2654435761 + 0x5BD1) % g.pages
}

// Next implements Generator.
func (g *HotCold) Next() Access {
	gap, write := g.rates.sample(&g.r)
	var page uint64
	if g.r.float() < g.hotProb {
		page = g.pageAt(g.r.intn(g.hotPages))
	} else {
		page = g.r.intn(g.pages)
	}
	var lineIn uint64
	if g.skew {
		// Triangular skew: favor low line indices within the page —
		// the neither-sparse-nor-uniform middle regime.
		a, b := g.r.intn(LinesPerPage), g.r.intn(LinesPerPage)
		if a < b {
			lineIn = a
		} else {
			lineIn = b
		}
	} else {
		lineIn = g.r.intn(LinesPerPage)
		if write {
			// As in Random: the written state within a page is a
			// subset of what is read.
			lineIn &^= WriteAlign - 1
		}
	}
	return Access{Gap: gap, Write: write, Line: page*LinesPerPage + lineIn}
}

// Burst generates short sequential read runs from random starting points —
// the neighbor-list scans of betweenness-centrality and similar kernels —
// with writes concentrated on scattered hot pages, like Random.
type Burst struct {
	r          rng
	rates      Rates
	lines      uint64
	runMean    uint64
	pos        uint64
	left       uint64
	pages      uint64
	writePages uint64
}

// NewBurst returns a bursty generator with geometric run lengths of mean
// runMean lines.
func NewBurst(footprintLines uint64, rates Rates, runMean uint64, seed uint64) *Burst {
	if runMean == 0 {
		runMean = 1
	}
	pages := footprintLines / LinesPerPage
	if pages == 0 {
		pages = 1
	}
	wp := uint64(float64(pages) * WritePageFrac)
	if wp == 0 {
		wp = 1
	}
	return &Burst{r: newRNG(seed), rates: rates, lines: footprintLines,
		runMean: runMean, pages: pages, writePages: wp}
}

// Next implements Generator.
func (g *Burst) Next() Access {
	gap, write := g.rates.sample(&g.r)
	if write {
		return Access{Gap: gap, Write: true, Line: hotWriteLine(&g.r, g.lines, g.pages, g.writePages)}
	}
	if g.left == 0 {
		g.pos = g.r.intn(g.lines)
		g.left = 1 + g.r.intn(2*g.runMean)
	}
	line := g.pos
	g.pos = (g.pos + 1) % g.lines
	g.left--
	return Access{Gap: gap, Write: false, Line: line}
}
