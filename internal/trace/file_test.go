package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteParseRoundTrip(t *testing.T) {
	g := NewRandom(1<<16, NewRates(20, 10), 3)
	var buf bytes.Buffer
	if err := WriteFile(&buf, g, 1000); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("parsed %d records, want 1000", len(got))
	}
	// Determinism: regenerate and compare.
	g2 := NewRandom(1<<16, NewRates(20, 10), 3)
	for i, a := range got {
		if want := g2.Next(); a != want {
			t.Fatalf("record %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := `# a trace
12 R 100

3 W 200
# trailing comment
0 r 5
7 w 6
`
	got, err := ParseFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Access{
		{Gap: 12, Write: false, Line: 100},
		{Gap: 3, Write: true, Line: 200},
		{Gap: 0, Write: false, Line: 5},
		{Gap: 7, Write: true, Line: 6},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                 // empty trace
		"1 R",              // missing field
		"x R 5",            // bad gap
		"1 Q 5",            // bad op
		"1 R five",         // bad line
		"999999999999 R 1", // gap overflows uint32
	}
	for _, in := range cases {
		if _, err := ParseFile(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", in)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	acc := []Access{
		{Gap: 1, Write: false, Line: 10},
		{Gap: 2, Write: true, Line: 20},
		{Gap: 3, Write: false, Line: 30},
	}
	g, err := NewReplay(acc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || g.MaxLine() != 30 {
		t.Fatalf("len=%d max=%d", g.Len(), g.MaxLine())
	}
	for round := 0; round < 3; round++ {
		for i := range acc {
			if got := g.Next(); got != acc[i] {
				t.Fatalf("round %d record %d = %+v", round, i, got)
			}
		}
	}
	if g.Loops != 3 {
		t.Fatalf("loops = %d, want 3", g.Loops)
	}
}

func TestNewReplayEmpty(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay must fail")
	}
}

func TestReadReplay(t *testing.T) {
	g, err := ReadReplay(strings.NewReader("1 R 2\n3 W 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
	if a := g.Next(); a.Line != 2 || a.Write {
		t.Fatalf("first = %+v", a)
	}
}
