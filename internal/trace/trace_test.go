package trace

import (
	"math"
	"testing"
)

func collect(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestRatesFromPKI(t *testing.T) {
	// 20 reads + 5 writes PKI: one access per 40 instructions on average,
	// 20% writes.
	ra := NewRates(20, 5)
	if math.Abs(ra.meanGap-39) > 0.01 {
		t.Errorf("mean gap = %v, want 39", ra.meanGap)
	}
	if math.Abs(ra.writeRatio-0.2) > 1e-9 {
		t.Errorf("write ratio = %v", ra.writeRatio)
	}
	// Degenerate rates stay sane.
	ra = NewRates(0, 0)
	if ra.meanGap <= 0 || math.IsInf(ra.meanGap, 0) {
		t.Errorf("degenerate mean gap = %v", ra.meanGap)
	}
}

func TestEmpiricalPKI(t *testing.T) {
	// The generated stream's accesses-per-instruction must match the
	// requested PKI within sampling error.
	g := NewRandom(1<<20, NewRates(24, 10), 7)
	n := 200000
	var instr, writes uint64
	for i := 0; i < n; i++ {
		a := g.Next()
		instr += uint64(a.Gap) + 1
		if a.Write {
			writes++
		}
	}
	pki := float64(n) / float64(instr) * 1000
	if pki < 30 || pki > 38 { // requested 34
		t.Errorf("empirical PKI = %.1f, want ~34", pki)
	}
	wr := float64(writes) / float64(n)
	if wr < 0.27 || wr > 0.32 { // requested 10/34 = 0.294
		t.Errorf("write ratio = %.3f, want ~0.294", wr)
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := NewStream(1000, NewRates(10, 5), 1)
	acc := collect(g, 3000)
	var lastRead, lastWrite uint64
	var sawRead, sawWrite bool
	for i, a := range acc {
		if a.Write {
			if sawWrite && a.Line != (lastWrite+1)%1000 {
				t.Fatalf("write %d at line %d, want %d", i, a.Line, (lastWrite+1)%1000)
			}
			lastWrite, sawWrite = a.Line, true
		} else {
			if sawRead && a.Line != (lastRead+1)%1000 {
				t.Fatalf("read %d at line %d, want %d", i, a.Line, (lastRead+1)%1000)
			}
			lastRead, sawRead = a.Line, true
		}
	}
	if !sawRead || !sawWrite {
		t.Fatal("stream missing reads or writes")
	}
}

func TestStreamWritesUniform(t *testing.T) {
	// Every line must receive the same number of writes (+-1): the
	// uniform usage that makes rebasing effective.
	lines := uint64(500)
	g := NewStream(lines, NewRates(20, 10), 2)
	counts := make([]int, lines)
	for i := 0; i < 30000; i++ {
		if a := g.Next(); a.Write {
			counts[a.Line]++
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("write spread = %d (min %d, max %d), want <= 1", max-min, min, max)
	}
}

func TestStreamCoversFootprintUniformly(t *testing.T) {
	// Streaming writes must hit every line of the footprint — the uniform
	// counter usage that defeats ZCC and motivates rebasing.
	lines := uint64(256)
	g := NewStream(lines, NewRates(10, 10), 1)
	seen := map[uint64]int{}
	for i := 0; i < int(lines)*4; i++ {
		a := g.Next()
		if a.Write {
			seen[a.Line]++
		}
	}
	if len(seen) < int(lines)*3/4 {
		t.Fatalf("writes covered only %d/%d lines", len(seen), lines)
	}
}

func TestRandomIsSparsePerCounterLine(t *testing.T) {
	// Uniform random over a large footprint must use counter lines
	// sparsely: with footprint >> accesses, most touched 128-line groups
	// see few distinct lines.
	lines := uint64(1 << 22)
	g := NewRandom(lines, NewRates(50, 10), 3)
	groups := map[uint64]map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		a := g.Next()
		grp := a.Line / 128
		if groups[grp] == nil {
			groups[grp] = map[uint64]bool{}
		}
		groups[grp][a.Line] = true
	}
	sparse := 0
	for _, s := range groups {
		if len(s) <= 32 { // <= 25% of the 128-counter line
			sparse++
		}
	}
	if frac := float64(sparse) / float64(len(groups)); frac < 0.95 {
		t.Fatalf("only %.2f of counter-line groups sparse", frac)
	}
}

func TestRandomWritesConcentrateOnHotPages(t *testing.T) {
	// Writes must land on ~WritePageFrac of the pages, on aligned lines;
	// reads must roam the whole footprint.
	pages := uint64(1000)
	g := NewRandom(pages*LinesPerPage, NewRates(50, 20), 5)
	writePages := map[uint64]bool{}
	readPages := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		a := g.Next()
		if a.Write {
			writePages[a.Line/LinesPerPage] = true
			if a.Line%WriteAlign != 0 {
				t.Fatalf("write line %d not aligned", a.Line)
			}
		} else {
			readPages[a.Line/LinesPerPage] = true
		}
	}
	if len(writePages) > int(float64(pages)*WritePageFrac*1.1) {
		t.Fatalf("writes touched %d pages, want <= ~%d", len(writePages), int(float64(pages)*WritePageFrac))
	}
	if len(readPages) < int(pages)*9/10 {
		t.Fatalf("reads touched only %d/%d pages", len(readPages), pages)
	}
	// Hot write pages must be interspersed, not clustered at the front.
	var maxPage uint64
	for p := range writePages {
		if p > maxPage {
			maxPage = p
		}
	}
	if maxPage < pages/2 {
		t.Fatalf("write pages clustered in [0, %d]", maxPage)
	}
}

func TestRandomInBounds(t *testing.T) {
	g := NewRandom(777, NewRates(10, 2), 9)
	for _, a := range collect(g, 10000) {
		if a.Line >= 777 {
			t.Fatalf("line %d out of bounds", a.Line)
		}
	}
}

func TestHotColdConcentratesTraffic(t *testing.T) {
	lines := uint64(64 * 1000) // 1000 pages
	g := NewHotCold(lines, NewRates(19, 8), 0.05, 0.9, false, 11)
	pageHits := map[uint64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		pageHits[g.Next().Line/LinesPerPage]++
	}
	// The top 5% of pages must hold ~90% of accesses.
	hot := 0
	for _, c := range pageHits {
		if c > n/1000 { // clearly above the uniform share
			hot += c
		}
	}
	if frac := float64(hot) / float64(n); frac < 0.8 {
		t.Fatalf("hot pages hold only %.2f of traffic", frac)
	}
}

func TestHotColdPagesInterspersed(t *testing.T) {
	// Hot pages must be scattered through the footprint, not clustered at
	// the front (Section III-A: hot pages interspersed with cold ones).
	g := NewHotCold(64*1024, NewRates(10, 5), 0.03, 1.0, false, 5)
	var minPage, maxPage uint64 = math.MaxUint64, 0
	for i := 0; i < 10000; i++ {
		p := g.Next().Line / LinesPerPage
		if p < minPage {
			minPage = p
		}
		if p > maxPage {
			maxPage = p
		}
	}
	if maxPage-minPage < 512 {
		t.Fatalf("hot pages clustered in [%d, %d]", minPage, maxPage)
	}
}

func TestHotColdSkewLimitsWithinPageCoverage(t *testing.T) {
	gSkew := NewHotCold(64*100, NewRates(10, 5), 0.1, 1.0, true, 3)
	gFlat := NewHotCold(64*100, NewRates(10, 5), 0.1, 1.0, false, 3)
	count := func(g Generator) float64 {
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			sum += float64(g.Next().Line % LinesPerPage)
		}
		return sum / float64(n)
	}
	if count(gSkew) >= count(gFlat) {
		t.Fatal("skewed generator does not favor low line indices")
	}
}

func TestBurstRuns(t *testing.T) {
	g := NewBurst(1<<20, NewRates(60, 24), 8, 13)
	acc := collect(g, 10000)
	sequential := 0
	for i := 1; i < len(acc); i++ {
		if acc[i].Line == acc[i-1].Line+1 {
			sequential++
		}
	}
	frac := float64(sequential) / float64(len(acc))
	// Reads run sequentially; writes (~28% here) jump to hot pages.
	if frac < 0.3 || frac > 0.9 {
		t.Fatalf("sequential fraction = %.2f, want bursty middle ground", frac)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Generator {
		ra := NewRates(20, 10)
		return []Generator{
			NewStream(1000, ra, 42),
			NewRandom(1000, ra, 42),
			NewHotCold(64*100, ra, 0.1, 0.9, true, 42),
			NewBurst(1000, ra, 8, 42),
		}
	}
	a, b := mk(), mk()
	for gi := range a {
		for i := 0; i < 1000; i++ {
			if a[gi].Next() != b[gi].Next() {
				t.Fatalf("generator %d not deterministic at access %d", gi, i)
			}
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	g1 := NewRandom(1<<20, NewRates(20, 5), 1)
	g2 := NewRandom(1<<20, NewRates(20, 5), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next().Line == g2.Next().Line {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical lines", same)
	}
}

func TestZeroFootprintSafe(t *testing.T) {
	// Degenerate footprints must not panic or divide by zero.
	g := NewBurst(1, NewRates(1, 1), 0, 0)
	for i := 0; i < 100; i++ {
		if a := g.Next(); a.Line != 0 {
			t.Fatalf("line %d in 1-line footprint", a.Line)
		}
	}
	h := NewHotCold(10, NewRates(1, 1), 0.5, 0.5, false, 0)
	for i := 0; i < 100; i++ {
		h.Next()
	}
}
