package secmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
)

func morphConfig(memBytes uint64) Config {
	return Config{
		MemoryBytes: memBytes,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	}
}

func wantIntegrity(t *testing.T, err error) *IntegrityError {
	t.Helper()
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *IntegrityError", err)
	}
	return ie
}

func TestNewDomainValidation(t *testing.T) {
	m := mustNew(t, morphConfig(1<<14))
	if _, err := m.NewDomain(""); err == nil {
		t.Fatal("empty domain id accepted")
	}
	d, err := m.NewDomain("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "alpha" {
		t.Fatalf("Name() = %q", d.Name())
	}
}

// TestDomainIsolation is the key-separation property end to end in the
// engine: a line written under tenant A's domain reads back only under A.
// Under B's domain — or the engine's default domain — the stored MAC was
// computed with a different key, so the read fails closed with a typed
// IntegrityError, exactly as tampering would.
func TestDomainIsolation(t *testing.T) {
	m := mustNew(t, morphConfig(1<<14))
	a, err := m.NewDomain("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewDomain("beta")
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(nil)
	line = append(line, bytes.Repeat([]byte{0xA1}, LineBytes)...)
	const addr = 3 * LineBytes
	if err := m.WriteDomain(a, addr, line); err != nil {
		t.Fatal(err)
	}

	got, err := m.ReadDomain(a, addr)
	if err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("owner read returned wrong contents")
	}
	if _, err := m.ReadDomain(b, addr); err == nil {
		t.Fatal("cross-tenant read succeeded")
	} else {
		wantIntegrity(t, err)
	}
	if _, err := m.Read(addr); err == nil {
		t.Fatal("default-domain read of tenant line succeeded")
	} else {
		wantIntegrity(t, err)
	}

	// Untouched lines still belong to the default domain.
	if _, err := m.Read(addr + LineBytes); err != nil {
		t.Fatalf("default read of untouched line: %v", err)
	}
	// Same line under B for good measure: B's own write claims it.
	if err := m.WriteDomain(b, addr, line); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadDomain(a, addr); err == nil {
		t.Fatal("A read B's line after reclaim")
	}
	if _, err := m.ReadDomain(b, addr); err != nil {
		t.Fatalf("B read own line: %v", err)
	}
}

// TestDomainDefaultWriteReclaims verifies a default-domain write clears a
// line's tenant tag: ownership follows the last writer.
func TestDomainDefaultWriteReclaims(t *testing.T) {
	m := mustNew(t, morphConfig(1<<14))
	a, err := m.NewDomain("alpha")
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0x5C}, LineBytes)
	const addr = 0
	if err := m.WriteDomain(a, addr, line); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(addr, line); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(addr); err != nil {
		t.Fatalf("default read after reclaim: %v", err)
	}
	if _, err := m.ReadDomain(a, addr); err == nil {
		t.Fatal("domain read succeeded after default-domain reclaim")
	}
}

// TestDomainOverflowReencrypt drives a mixed default/tenant write pattern
// hard enough to overflow counters, forcing block re-encryption sweeps
// over lines owned by different domains. Every line must remain readable
// only under its owning domain afterwards — an overflow in one tenant's
// block must never reseal a neighbor's line under the wrong key — and the
// whole-tree audit must still pass.
func TestDomainOverflowReencrypt(t *testing.T) {
	m := mustNew(t, morphConfig(1<<14))
	a, err := m.NewDomain("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewDomain("beta")
	if err != nil {
		t.Fatal(err)
	}
	owners := func(i uint64) *Domain {
		switch i % 3 {
		case 0:
			return a
		case 1:
			return b
		default:
			return nil // default domain, interleaved in the same blocks
		}
	}
	lineFor := func(i, seq uint64) []byte {
		l := bytes.Repeat([]byte{byte(i)}, LineBytes)
		l[0] = byte(seq)
		return l
	}
	const lines = 16
	var seq uint64
	for m.Stats().Reencryptions == 0 {
		seq++
		if seq > 100000 {
			t.Fatal("no counter overflow after 100000 rounds")
		}
		for i := uint64(0); i < lines; i++ {
			addr := i * LineBytes
			var err error
			if dom := owners(i); dom != nil {
				err = m.WriteDomain(dom, addr, lineFor(i, seq))
			} else {
				err = m.Write(addr, lineFor(i, seq))
			}
			if err != nil {
				t.Fatalf("round %d line %d: %v", seq, i, err)
			}
		}
	}

	for i := uint64(0); i < lines; i++ {
		addr := i * LineBytes
		dom := owners(i)
		var got []byte
		var err error
		if dom != nil {
			got, err = m.ReadDomain(dom, addr)
		} else {
			got, err = m.Read(addr)
		}
		if err != nil {
			t.Fatalf("post-overflow read line %d (domain %v): %v", i, dom, err)
		}
		if !bytes.Equal(got, lineFor(i, seq)) {
			t.Fatalf("post-overflow line %d has wrong contents", i)
		}
		// And cross-domain still fails.
		if dom == a {
			if _, err := m.ReadDomain(b, addr); err == nil {
				t.Fatalf("line %d readable cross-tenant after re-encryption", i)
			}
		}
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after domain overflow: %v", err)
	}
	st := m.Stats()
	if st.Tenants["alpha"].Writes == 0 || st.Tenants["beta"].Reads == 0 {
		t.Fatalf("per-tenant stats not accounted: %+v", st.Tenants)
	}
}

func TestStatsTenantsCloneMerge(t *testing.T) {
	s := Stats{Tenants: map[string]TenantOps{"a": {Reads: 2, Writes: 3}}}
	c := s.Clone()
	c.Tenants["a"] = TenantOps{Reads: 99, Writes: 99}
	if s.Tenants["a"].Reads != 2 {
		t.Fatal("Clone aliased the Tenants map")
	}
	var agg Stats
	agg.Merge(s)
	agg.Merge(Stats{Tenants: map[string]TenantOps{"a": {Reads: 1}, "b": {Writes: 7}}})
	if agg.Tenants["a"].Reads != 3 || agg.Tenants["a"].Writes != 3 || agg.Tenants["b"].Writes != 7 {
		t.Fatalf("Merge result = %+v", agg.Tenants)
	}
	// Merging an empty Stats must not materialize a map.
	var empty Stats
	empty.Merge(Stats{})
	if empty.Tenants != nil {
		t.Fatal("Merge of empty stats allocated a Tenants map")
	}
}

// TestStatsCloneMergeConcurrent exercises snapshotting under live
// multi-domain traffic with the race detector: worker goroutines hammer
// per-tenant reads and writes while an aggregator repeatedly does what the
// shard layer does — Stats() (Clone under the engine lock) then Merge into
// a local aggregate. The per-tenant map must never be shared with the
// engine's live state.
func TestStatsCloneMergeConcurrent(t *testing.T) {
	m := mustNew(t, morphConfig(1<<14))
	doms := make([]*Domain, 4)
	for i := range doms {
		d, err := m.NewDomain(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		doms[i] = d
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dom := doms[w]
			addr := uint64(w) * LineBytes
			line := bytes.Repeat([]byte{byte(w)}, LineBytes)
			for i := 0; i < 300; i++ {
				if err := m.WriteDomain(dom, addr, line); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if _, err := m.ReadDomain(dom, addr); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var agg Stats
	for snapshotting := true; snapshotting; {
		select {
		case <-done:
			snapshotting = false
		default:
		}
		agg.Merge(m.Stats())
	}
	final := m.Stats()
	for _, d := range doms {
		if final.Tenants[d.Name()].Reads == 0 || final.Tenants[d.Name()].Writes == 0 {
			t.Fatalf("tenant %s has zero accounted traffic: %+v", d.Name(), final.Tenants)
		}
	}
}
