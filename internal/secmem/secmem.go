// Package secmem is the functional secure-memory engine: a working
// implementation of the full SGX-style protection stack the paper builds on
// — counter-mode encryption, per-line MACs, and a Bonsai-style counter
// integrity tree — parameterized by any counter organization from
// internal/counters (SC-n baselines, VAULT's variable arity, MorphCtr-128).
//
// The engine maintains real cryptographic state: reads verify the MAC chain
// from the data line up to the on-chip root and fail with *IntegrityError
// on any tampering, splicing, or replay; writes increment counters, handle
// overflows by re-encrypting the affected children, and propagate updates
// to the root. The performance simulator (internal/sim) models the same
// machinery's timing; this package proves its security behavior.
package secmem

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/aesctr"
	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/mac"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/tree"
)

// LineBytes is the cacheline granularity of the engine.
const LineBytes = 64

// Config describes a secure-memory instance.
type Config struct {
	// MemoryBytes is the protected capacity (a multiple of 64).
	MemoryBytes uint64
	// Enc is the encryption-counter organization (e.g. SC-64,
	// MorphCtr-128).
	Enc counters.Spec
	// Tree is the per-level integrity-tree counter schedule; element 0 is
	// level 1, with the last element repeating (VAULT: [SC-32, SC-16]).
	Tree []counters.Spec
	// Key is the AES key (16, 24, or 32 bytes) for pads and MACs.
	//
	//morph:secret
	Key []byte
	// MACWidth is the MAC truncation (defaults to mac.Width56).
	MACWidth mac.Width
}

// IntegrityError reports a failed verification: the memory contents do not
// match what the processor wrote, i.e. an attack or corruption.
type IntegrityError struct {
	// Level is the failing verification level: -1 for a data line,
	// 0 for encryption counters, 1.. for tree levels.
	Level int
	// Index is the failing line's index within its level.
	Index uint64
	// Reason describes the mismatch.
	Reason string
}

// Error implements error.
func (e *IntegrityError) Error() string {
	what := "data line"
	if e.Level == 0 {
		what = "encryption-counter line"
	} else if e.Level > 0 {
		what = fmt.Sprintf("tree level-%d line", e.Level)
	}
	return fmt.Sprintf("secmem: integrity violation at %s %d: %s", what, e.Index, e.Reason)
}

// Stats counts engine activity, mirroring the event categories the paper's
// evaluation reports.
type Stats struct {
	// Reads and Writes count data-line operations.
	Reads, Writes uint64
	// Increments, Overflows and Rebases are per counter level
	// (index 0 = encryption counters).
	Increments []uint64
	Overflows  []uint64
	Rebases    []uint64
	// SetResets counts, per level, the subset of Overflows that reset
	// only one MCR counter set (re-encrypting the set size, 64 children)
	// rather than the whole line. Overflows[l] - SetResets[l] is the
	// full-reset count, giving the paper's Fig. 7-style breakdown of
	// cheap vs expensive overflows.
	SetResets []uint64
	// FormatSwitches counts, per level, ZCC<->uniform/MCR representation
	// changes (free re-encodings, no memory traffic).
	FormatSwitches []uint64
	// Reencryptions counts child lines rewritten due to overflows.
	Reencryptions uint64
	// VerifiedFetches counts counter lines fetched from untrusted
	// storage and MAC-verified (the tree-traversal work).
	VerifiedFetches uint64
	// Tenants counts data-line traffic per tenant key domain, keyed by
	// tenant id. Nil until the first domain-routed operation, so engines
	// without tenants pay nothing.
	Tenants map[string]TenantOps
}

// TenantOps is one tenant key domain's data-line traffic on an engine.
type TenantOps struct {
	Reads, Writes uint64
}

// LevelOverflow is one row of the per-level overflow breakdown.
type LevelOverflow struct {
	// Level is the counter level (0 = encryption counters).
	Level int
	// FullResets overflowed the whole line (arity children rewritten).
	FullResets uint64
	// SetResets overflowed one MCR counter set (64 children rewritten).
	SetResets uint64
	// Rebases absorbed a would-be overflow with no extra traffic.
	Rebases uint64
	// FormatSwitches re-encoded the line's representation for free.
	FormatSwitches uint64
}

// OverflowsByLevel splits the overflow counts into the paper's Fig. 7
// categories, one row per counter level that saw any activity.
func (s Stats) OverflowsByLevel() []LevelOverflow {
	levels := len(s.Overflows)
	out := make([]LevelOverflow, 0, levels)
	for l := 0; l < levels; l++ {
		row := LevelOverflow{Level: l, FullResets: s.Overflows[l]}
		if l < len(s.SetResets) {
			row.SetResets = s.SetResets[l]
			row.FullResets -= row.SetResets
		}
		if l < len(s.Rebases) {
			row.Rebases = s.Rebases[l]
		}
		if l < len(s.FormatSwitches) {
			row.FormatSwitches = s.FormatSwitches[l]
		}
		out = append(out, row)
	}
	return out
}

// Instrumentation wires optional obs instruments into an engine. Every
// field may be nil (obs instruments are nil-safe), so partial wiring is
// fine. Latency histograms are recorded outside the engine lock; trace
// events are emitted from inside it, which the tracer's never-blocking
// Emit makes safe.
type Instrumentation struct {
	// WriteLatency and ReadLatency observe full Write/Read durations,
	// including lock wait.
	WriteLatency *obs.Histogram
	ReadLatency  *obs.Histogram
	// LockWait observes time spent queueing on the engine lock — the
	// contention signal for the sharding layer.
	LockWait *obs.Histogram
	// Tracer receives TreeWalk/Overflow/Rebase/FormatSwitch events.
	Tracer *obs.Tracer
	// Shard tags this engine's trace events (-1 when unsharded).
	Shard int32
}

// Memory is a functional secure memory. All methods are safe for
// concurrent use; operations serialize on an internal lock, matching the
// single memory controller the engine models.
type Memory struct {
	// Immutable after New.
	cfg    Config
	geom   *tree.Geometry
	cipher *aesctr.Cipher
	keyer  *mac.Keyer
	walker *proof.Walker
	store  *Store

	// ins must be set (via Instrument) before any concurrent use; after
	// that it is read-only, so it lives outside the lock's shadow.
	ins          Instrumentation
	instrumented bool

	mu      sync.Mutex
	trusted []map[uint64]counters.Block // per level below root
	root    counters.Block
	stats   Stats
	// domains tags each data line with the key domain that last wrote it
	// (absent = the engine's default domain), so overflow re-encryption
	// and VerifyAll reseal every line under the keys that own it.
	domains map[uint64]*Domain
	// snapScratch[level] is bump's pre-counter-values scratch, sized to
	// the level's arity at New. bump recurses parent-ward, so each level
	// needs its own buffer; all of bump runs under mu, so one set per
	// Memory suffices and the steady-state increment path allocates
	// nothing (the //morph:hotpath contract).
	snapScratch [][]uint64
	// Dirty-line epoch stamps for incremental checkpoints (see dirty.go):
	// flat per-line arrays so the write path pays one slice store. Epoch 0
	// means never written; stamps >= dirtyFloor are dirty.
	dirtyData  []uint32
	dirtyCtr   [][]uint32
	dirtyCur   uint32
	dirtyFloor uint32
}

// Instrument attaches obs instruments to the engine. It must be called
// before the memory is shared between goroutines.
func (m *Memory) Instrument(ins Instrumentation) {
	m.ins = ins
	m.instrumented = ins.WriteLatency != nil || ins.ReadLatency != nil ||
		ins.LockWait != nil || ins.Tracer != nil
}

// New constructs a secure memory. All counters start at zero and all lines
// read as zero until written.
func New(cfg Config) (*Memory, error) {
	if len(cfg.Tree) == 0 {
		return nil, fmt.Errorf("secmem: tree spec schedule is empty")
	}
	arities := make([]int, len(cfg.Tree))
	for i, s := range cfg.Tree {
		arities[i] = s.Arity
	}
	geom, err := tree.New(cfg.MemoryBytes, cfg.Enc.Arity, arities)
	if err != nil {
		return nil, err
	}
	cipher, err := aesctr.New(cfg.Key)
	if err != nil {
		return nil, err
	}
	width := cfg.MACWidth
	if width == 0 {
		width = mac.Width56
	}
	keyer, err := mac.New(cfg.Key, width)
	if err != nil {
		return nil, err
	}
	walker, err := proof.NewWalker(cfg.Enc, cfg.Tree, cfg.Key, cfg.MACWidth)
	if err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:     cfg,
		geom:    geom,
		cipher:  cipher,
		keyer:   keyer,
		walker:  walker,
		store:   newStore(geom.RootLevel()),
		trusted: make([]map[uint64]counters.Block, geom.RootLevel()),
		root:    cfg.specAt(geom.RootLevel()).New(),
		domains: make(map[uint64]*Domain),
	}
	for i := range m.trusted {
		m.trusted[i] = make(map[uint64]counters.Block)
	}
	levels := geom.RootLevel() + 1
	m.stats.Increments = make([]uint64, levels)
	m.stats.Overflows = make([]uint64, levels)
	m.stats.Rebases = make([]uint64, levels)
	m.stats.SetResets = make([]uint64, levels)
	m.stats.FormatSwitches = make([]uint64, levels)
	m.snapScratch = make([][]uint64, levels)
	for i := 0; i < levels; i++ {
		m.snapScratch[i] = make([]uint64, cfg.specAt(i).Arity)
	}
	m.initDirty()
	m.ins.Shard = -1
	return m, nil
}

// specAt returns the counter organization at a level (0 = encryption).
func (c Config) specAt(level int) counters.Spec {
	if level == 0 {
		return c.Enc
	}
	i := level - 1
	if i >= len(c.Tree) {
		i = len(c.Tree) - 1
	}
	return c.Tree[i]
}

// Geometry exposes the metadata layout.
func (m *Memory) Geometry() *tree.Geometry { return m.geom }

// Store exposes the untrusted backing store (the adversary's view).
func (m *Memory) Store() *Store { return m.store }

// Clone returns a deep copy of s: the per-level slices are reallocated, so
// mutating the copy (or the original, under the engine's lock) never aliases
// the other.
func (s Stats) Clone() Stats {
	s.Increments = append([]uint64(nil), s.Increments...)
	s.Overflows = append([]uint64(nil), s.Overflows...)
	s.Rebases = append([]uint64(nil), s.Rebases...)
	s.SetResets = append([]uint64(nil), s.SetResets...)
	s.FormatSwitches = append([]uint64(nil), s.FormatSwitches...)
	if s.Tenants != nil {
		tenants := make(map[string]TenantOps, len(s.Tenants))
		for id, ops := range s.Tenants {
			tenants[id] = ops
		}
		s.Tenants = tenants
	}
	return s
}

// Merge adds other's counts into s, extending the per-level slices if other
// has more levels. Shard aggregators use this to roll per-engine stats into
// one view.
func (s *Stats) Merge(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.Reencryptions += other.Reencryptions
	s.VerifiedFetches += other.VerifiedFetches
	s.Increments = mergeLevels(s.Increments, other.Increments)
	s.Overflows = mergeLevels(s.Overflows, other.Overflows)
	s.Rebases = mergeLevels(s.Rebases, other.Rebases)
	s.SetResets = mergeLevels(s.SetResets, other.SetResets)
	s.FormatSwitches = mergeLevels(s.FormatSwitches, other.FormatSwitches)
	for id, ops := range other.Tenants {
		if s.Tenants == nil {
			s.Tenants = make(map[string]TenantOps, len(other.Tenants))
		}
		t := s.Tenants[id]
		t.Reads += ops.Reads
		t.Writes += ops.Writes
		s.Tenants[id] = t
	}
}

func mergeLevels(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Stats returns a deep copy of the activity counters, taken under the
// engine's lock. Callers may retain and mutate the result freely; it never
// aliases the slices the engine keeps incrementing.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats.Clone()
}

// FlushMetadataCache drops every verified counter line below the root, so
// subsequent accesses re-fetch and re-verify from untrusted storage. Attack
// simulations use this to model a cold metadata cache.
func (m *Memory) FlushMetadataCache() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushMetadataCache()
}

func (m *Memory) flushMetadataCache() {
	for i := range m.trusted {
		m.trusted[i] = make(map[uint64]counters.Block)
	}
}

// Path returns the (level, index) verification chain for a data line, from
// the encryption-counter line up to (excluding) the on-chip root.
func (m *Memory) Path(addr uint64) [][2]uint64 {
	idx := addr / LineBytes / uint64(m.geom.EncArity)
	chain := [][2]uint64{{0, idx}}
	for level := 0; level < m.geom.RootLevel()-1; level++ {
		parent, _ := m.geom.ParentSlot(level, idx)
		chain = append(chain, [2]uint64{uint64(level + 1), parent})
		idx = parent
	}
	return chain
}

// checkAddr validates a line-aligned address.
func (m *Memory) checkAddr(addr uint64) error {
	if addr%LineBytes != 0 {
		return fmt.Errorf("secmem: address %#x is not line-aligned", addr)
	}
	if addr >= m.cfg.MemoryBytes {
		return fmt.Errorf("secmem: address %#x beyond capacity %#x", addr, m.cfg.MemoryBytes)
	}
	return nil
}

// Write encrypts and stores a 64-byte line at a line-aligned address,
// incrementing its counter and updating the integrity tree to the root.
func (m *Memory) Write(addr uint64, line []byte) error {
	if !m.instrumented {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.write(addr, line, nil)
	}
	start := time.Now()
	wait := m.lockTimed(start)
	err := m.write(addr, line, nil)
	m.mu.Unlock()
	// Histogram records stay off the lock hold path: only the hot
	// section between Lock and Unlock serializes other writers.
	m.ins.LockWait.Record(wait)
	m.ins.WriteLatency.Record(time.Since(start))
	return err
}

// lockTimed acquires the engine lock and returns the time spent waiting
// for it. The uncontended TryLock fast path avoids a clock read, keeping
// the instrumentation overhead on the hot path to two timestamps per op.
func (m *Memory) lockTimed(start time.Time) time.Duration {
	if m.mu.TryLock() {
		return 0
	}
	m.mu.Lock()
	return time.Since(start)
}

func (m *Memory) write(addr uint64, line []byte, dom *Domain) error {
	if err := m.checkAddr(addr); err != nil {
		return err
	}
	if len(line) != LineBytes {
		return fmt.Errorf("secmem: line must be %d bytes, got %d", LineBytes, len(line))
	}
	d := addr / LineBytes
	eb, slot := m.geom.EncSlot(d)
	if err := m.bump(0, eb, slot); err != nil {
		return err
	}
	blk, err := m.trustedBlock(0, eb)
	if err != nil {
		return err
	}
	ctr := blk.Value(slot)
	ct := make([]byte, LineBytes)
	if err := m.dataCipher(dom).XOR(ct, line, addr, ctr); err != nil {
		return err
	}
	m.store.data[d] = ct
	m.store.dataMAC[d] = m.dataKeyer(dom).Data(ct, ctr, addr)
	m.dirtyData[d] = m.dirtyCur
	if dom == nil {
		delete(m.domains, d)
	} else {
		m.domains[d] = dom
		if m.stats.Tenants == nil {
			m.stats.Tenants = make(map[string]TenantOps)
		}
		t := m.stats.Tenants[dom.name]
		t.Writes++
		m.stats.Tenants[dom.name] = t
	}
	m.stats.Writes++
	return nil
}

// Read fetches, verifies and decrypts the 64-byte line at a line-aligned
// address. Never-written lines read as zeros. Any inconsistency between the
// stored {data, MAC, counters} and the protected state returns an
// *IntegrityError.
func (m *Memory) Read(addr uint64) ([]byte, error) {
	if !m.instrumented {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.read(addr, nil)
	}
	start := time.Now()
	wait := m.lockTimed(start)
	line, err := m.read(addr, nil)
	m.mu.Unlock()
	m.ins.LockWait.Record(wait)
	m.ins.ReadLatency.Record(time.Since(start))
	return line, err
}

func (m *Memory) read(addr uint64, dom *Domain) ([]byte, error) {
	if err := m.checkAddr(addr); err != nil {
		return nil, err
	}
	d := addr / LineBytes
	eb, slot := m.geom.EncSlot(d)
	blk, err := m.trustedBlock(0, eb)
	if err != nil {
		return nil, err
	}
	ctr := blk.Value(slot)
	ct, ok := m.store.data[d]
	if !ok {
		if ctr == 0 {
			m.countRead(dom)
			return make([]byte, LineBytes), nil
		}
		return nil, &IntegrityError{Level: -1, Index: d, Reason: "written line missing from memory"}
	}
	storedMAC, ok := m.store.dataMAC[d]
	if !ok {
		return nil, &IntegrityError{Level: -1, Index: d, Reason: "MAC mismatch"}
	}
	// The MAC is checked under the *requester's* domain key, so a line
	// last sealed by any other domain fails closed right here: the
	// cross-tenant isolation guarantee is a MAC mismatch, not an ACL.
	if dom == nil {
		if err := m.walker.VerifyData(ct, ctr, addr, storedMAC); err != nil {
			return nil, integrityFromMismatch(err)
		}
	} else if dom.keyer.Data(ct, ctr, addr) != storedMAC {
		return nil, &IntegrityError{Level: -1, Index: d, Reason: "MAC mismatch"}
	}
	pt := make([]byte, LineBytes)
	if err := m.dataCipher(dom).XOR(pt, ct, addr, ctr); err != nil {
		return nil, err
	}
	m.countRead(dom)
	return pt, nil
}

// countRead bumps the read counters, attributing domain-routed reads to
// their tenant. Called with m.mu held.
func (m *Memory) countRead(dom *Domain) {
	m.stats.Reads++
	if dom == nil {
		return
	}
	if m.stats.Tenants == nil {
		m.stats.Tenants = make(map[string]TenantOps)
	}
	t := m.stats.Tenants[dom.name]
	t.Reads++
	m.stats.Tenants[dom.name] = t
}

// bump increments the counter protecting child `slot` of line `idx` at
// `level`, propagating the update to the root and handling overflows by
// refreshing (re-encrypting or re-MACing) the affected children.
//
//morph:hotpath
func (m *Memory) bump(level int, idx uint64, slot int) error {
	blk, err := m.trustedBlock(level, idx)
	if err != nil {
		return err
	}
	snapshot := m.snapScratch[level][:blk.Arity()]
	for i := range snapshot {
		snapshot[i] = blk.Value(i)
	}
	ev := blk.Increment(slot)
	m.stats.Increments[level]++
	if ev.Overflow {
		m.stats.Overflows[level]++
		if ev.Reencrypt < blk.Arity() {
			m.stats.SetResets[level]++
		}
		m.ins.Tracer.Emit(obs.KindOverflow, m.ins.Shard, uint64(level), uint64(ev.Reencrypt), 0)
	}
	if ev.Rebased {
		m.stats.Rebases[level]++
		m.ins.Tracer.Emit(obs.KindRebase, m.ins.Shard, uint64(level), idx, 0)
	}
	if ev.FormatSwitch {
		m.stats.FormatSwitches[level]++
		m.ins.Tracer.Emit(obs.KindFormatSwitch, m.ins.Shard, uint64(level), idx, 0)
	}
	if level < m.geom.RootLevel() {
		parent, pslot := m.geom.ParentSlot(level, idx)
		if err := m.bump(level+1, parent, pslot); err != nil {
			return err
		}
	}
	if ev.Overflow {
		// Overflow refresh retains new ciphertexts, so its allocations are
		// inherent; it is the paper's amortized-rare slow path (DESIGN 13).
		if err := m.refreshChildren(level, idx, blk, snapshot, slot); err != nil { //morphlint:allow hotalloc -- retains new ciphertexts; allocation is inherent
			return err
		}
	}
	return m.storeBlock(level, idx, blk)
}

// refreshChildren re-encrypts (level 0) or re-MACs (level >= 1) every child
// whose effective counter value changed in an overflow, excluding the child
// being written (the caller rewrites it anyway). This is the paper's
// overflow cost: arity reads plus arity writes of extra traffic.
func (m *Memory) refreshChildren(level int, idx uint64, blk counters.Block, snapshot []uint64, skip int) error {
	arity := uint64(blk.Arity())
	var childEntries uint64
	if level == 0 {
		childEntries = m.geom.DataLines
	} else {
		childEntries = m.geom.LevelEntries(level - 1)
	}
	for i := 0; i < int(arity); i++ {
		child := idx*arity + uint64(i)
		if i == skip || child >= childEntries || blk.Value(i) == snapshot[i] {
			continue
		}
		if level == 0 {
			if err := m.reencryptData(child, snapshot[i], blk.Value(i)); err != nil {
				return err
			}
		} else {
			if err := m.remacChild(level-1, child, snapshot[i], blk.Value(i)); err != nil {
				return err
			}
		}
		m.stats.Reencryptions++
	}
	return nil
}

// reencryptData re-encrypts one data line from its old counter value to the
// new one, verifying its MAC on the way. Never-written lines materialize as
// encrypted zeros so their non-zero counters stay consistent. The line's
// recorded key domain — not the overflowing writer's — seals the new
// ciphertext, so an overflow triggered by one tenant never silently
// re-keys a neighbor's data.
func (m *Memory) reencryptData(d uint64, oldCtr, newCtr uint64) error {
	dom := m.domains[d]
	cipher := m.dataCipher(dom)
	keyer := m.dataKeyer(dom)
	addr := d * LineBytes
	pt := make([]byte, LineBytes)
	if ct, ok := m.store.data[d]; ok {
		storedMAC, ok := m.store.dataMAC[d]
		if !ok || keyer.Data(ct, oldCtr, addr) != storedMAC {
			return &IntegrityError{Level: -1, Index: d, Reason: "MAC mismatch during re-encryption"}
		}
		if err := cipher.XOR(pt, ct, addr, oldCtr); err != nil {
			return err
		}
	} else if oldCtr != 0 {
		return &IntegrityError{Level: -1, Index: d, Reason: "written line missing during re-encryption"}
	}
	ct := make([]byte, LineBytes)
	if err := cipher.XOR(ct, pt, addr, newCtr); err != nil {
		return err
	}
	m.store.data[d] = ct
	m.store.dataMAC[d] = keyer.Data(ct, newCtr, addr)
	m.dirtyData[d] = m.dirtyCur
	return nil
}

// remacChild recomputes a counter line's MAC after its parent counter
// changed in an overflow (the line's content is unchanged).
func (m *Memory) remacChild(level int, idx uint64, oldParent, newParent uint64) error {
	blk, ok := m.trusted[level][idx]
	if !ok {
		raw, present := m.store.CounterLine(level, idx)
		if !present {
			// Never-written child: materialize a fresh block so its
			// now non-zero parent counter stays consistent.
			blk = m.cfg.specAt(level).New()
		} else {
			var err error
			blk, err = m.decodeAndVerify(level, idx, raw, oldParent)
			if err != nil {
				return err
			}
		}
		m.trusted[level][idx] = blk
	}
	return m.sealBlock(level, idx, blk, newParent)
}

// trustedBlock returns a verified counter block, fetching and MAC-checking
// it from untrusted storage if it is not already in the trusted cache.
//
//morph:hotpath
func (m *Memory) trustedBlock(level int, idx uint64) (counters.Block, error) {
	if level == m.geom.RootLevel() {
		return m.root, nil
	}
	if blk, ok := m.trusted[level][idx]; ok {
		return blk, nil
	}
	parent, pslot := m.geom.ParentSlot(level, idx)
	pblk, err := m.trustedBlock(level+1, parent)
	if err != nil {
		return nil, err
	}
	pv := pblk.Value(pslot)
	raw, ok := m.store.CounterLine(level, idx)
	if !ok {
		if pv != 0 {
			return nil, &IntegrityError{Level: level, Index: idx, Reason: "counter line missing from memory"}
		}
		blk := m.cfg.specAt(level).New()
		m.trusted[level][idx] = blk
		return blk, nil
	}
	blk, err := m.decodeAndVerify(level, idx, raw, pv)
	if err != nil {
		return nil, err
	}
	m.trusted[level][idx] = blk
	m.stats.VerifiedFetches++
	m.ins.Tracer.Emit(obs.KindTreeWalk, m.ins.Shard, uint64(level), idx, 0)
	return blk, nil
}

// decodeAndVerify unpacks a stored counter line and checks its MAC against
// the expected parent counter value. The actual walk logic lives in
// proof.Walker so client-side verifiers run the identical code; this
// wrapper only converts the walker's typed mismatch into the engine's.
//
//morph:hotpath
func (m *Memory) decodeAndVerify(level int, idx uint64, raw []byte, parentValue uint64) (counters.Block, error) {
	blk, err := m.walker.DecodeVerify(level, idx, raw, parentValue)
	if err != nil {
		return nil, integrityFromMismatch(err)
	}
	return blk, nil
}

// integrityFromMismatch converts a *proof.MismatchError into the engine's
// *IntegrityError, preserving level, index, and reason, so the package's
// error contract is unchanged by the shared-walker refactor.
func integrityFromMismatch(err error) error {
	var me *proof.MismatchError
	if errors.As(err, &me) {
		return &IntegrityError{Level: me.Level, Index: me.Index, Reason: me.Reason}
	}
	return err
}

// storeBlock seals a block with its parent's current counter value and
// writes it to untrusted storage. The root never leaves the chip.
func (m *Memory) storeBlock(level int, idx uint64, blk counters.Block) error {
	if level == m.geom.RootLevel() {
		return nil
	}
	parent, pslot := m.geom.ParentSlot(level, idx)
	pblk, err := m.trustedBlock(level+1, parent)
	if err != nil {
		return err
	}
	return m.sealBlock(level, idx, blk, pblk.Value(pslot))
}

// sealBlock computes a block's MAC under parentValue and persists it.
func (m *Memory) sealBlock(level int, idx uint64, blk counters.Block, parentValue uint64) error {
	blk.SetMAC(0)
	sealed := m.keyer.Counter(blk.Encode(), parentValue, level, idx)
	blk.SetMAC(sealed)
	m.store.levels[level][idx] = blk.Encode()
	m.dirtyCtr[level][idx] = m.dirtyCur
	return nil
}

// ReadAt reads len(p) bytes starting at an arbitrary offset, crossing line
// boundaries as needed.
func (m *Memory) ReadAt(p []byte, off uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(p) > 0 {
		base := off &^ (LineBytes - 1)
		line, err := m.read(base, nil)
		if err != nil {
			return err
		}
		n := copy(p, line[off-base:])
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// WriteAt writes p starting at an arbitrary offset using read-modify-write
// on partial lines.
func (m *Memory) WriteAt(p []byte, off uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(p) > 0 {
		base := off &^ (LineBytes - 1)
		var line []byte
		if off == base && len(p) >= LineBytes {
			line = p[:LineBytes]
		} else {
			cur, err := m.read(base, nil)
			if err != nil {
				return err
			}
			copy(cur[off-base:], p)
			line = cur
		}
		n := int(base + LineBytes - off)
		if n > len(p) {
			n = len(p)
		}
		if err := m.write(base, line, nil); err != nil {
			return err
		}
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// Prove snapshots the raw material for a read proof at a line-aligned
// address: the stored ciphertext and MAC (nil/0 if never written), the raw
// counter line at every level on the verification path (nil entries for
// never-materialized lines), and the on-chip root's encoding. Everything
// is cloned under the engine lock, so the proof is a consistent point-in-
// time view even with concurrent writers; the engine does NOT verify the
// chain here — the whole point is that the verifier recomputes it.
func (m *Memory) Prove(addr uint64) (line []byte, lineMAC uint64, chain [][]byte, root []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAddr(addr); err != nil {
		return nil, 0, nil, nil, err
	}
	d := addr / LineBytes
	if ct, ok := m.store.data[d]; ok {
		line = append([]byte(nil), ct...)
		lineMAC = m.store.dataMAC[d]
	}
	chain = make([][]byte, m.geom.RootLevel())
	idx, _ := m.geom.EncSlot(d)
	for level := 0; level < m.geom.RootLevel(); level++ {
		if raw, ok := m.store.CounterLine(level, idx); ok {
			chain[level] = append([]byte(nil), raw...)
		}
		idx, _ = m.geom.ParentSlot(level, idx)
	}
	return line, lineMAC, chain, m.root.Encode(), nil
}

// RootEncoding returns the on-chip root line's current encoding, cloned
// under the engine lock. The transparency log publishes digests of it.
func (m *Memory) RootEncoding() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.root.Encode()
}

// VerifyAll re-verifies every written data line from a cold metadata cache,
// returning the first integrity error found (nil if the memory is intact).
func (m *Memory) VerifyAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushMetadataCache()
	for d := range m.store.data {
		// Verify each line under the domain that owns it, so a store
		// holding several tenants' lines still verifies end to end.
		if _, err := m.read(d*LineBytes, m.domains[d]); err != nil {
			return err
		}
	}
	return nil
}
