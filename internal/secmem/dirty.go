package secmem

import "fmt"

// Dirty-line tracking: every store mutation stamps the line with the
// engine's current dirty epoch, so an incremental checkpoint can collect
// exactly the lines modified since the last committed collection. The
// stamps are preallocated flat arrays indexed by line number — the write
// path cost is one slice store, no allocation, no branch on a map — which
// keeps the //morph:hotpath contract intact (see internal/ckpt and
// DESIGN.md §17).
//
// The protocol is two-phase so a failed checkpoint never loses dirt:
// CollectDirty snapshots the dirty set under the engine lock and advances
// the current epoch (writes racing the checkpoint land in the NEXT
// collection), but the floor only moves when CommitDirty confirms the
// delta reached stable storage. A crash or write error between the two
// re-collects the same lines next time.

// DirtyLine is one modified line captured by CollectDirty: Level -1 is a
// data line (Line = ciphertext, MAC set), levels 0..root-1 are stored
// counter lines, and Level == root is the on-chip root's encoding (always
// included — it changes on every write and anchors verification).
type DirtyLine struct {
	Level int32
	Index uint64
	Line  []byte
	MAC   uint64
}

// initDirty sizes the stamp arrays from the geometry. Epoch 0 means
// never-written (clean); the live epoch starts at 1.
func (m *Memory) initDirty() {
	m.dirtyData = make([]uint32, m.geom.DataLines)
	m.dirtyCtr = make([][]uint32, m.geom.RootLevel())
	for lvl := range m.dirtyCtr {
		m.dirtyCtr[lvl] = make([]uint32, m.geom.LevelEntries(lvl))
	}
	m.dirtyCur = 1
	m.dirtyFloor = 1
}

// CollectDirty captures a copy of every line modified since the last
// committed collection (plus the root line, always) and returns the cut
// epoch. The capture runs entirely under the engine lock, so it is a
// consistent point-in-time cut: fn must not call back into the engine.
// Lines written after CollectDirty returns carry a later stamp and belong
// to the next collection. The dirty floor does NOT advance until
// CommitDirty(cut) — if persisting the collection fails, the same lines
// are re-collected.
func (m *Memory) CollectDirty(fn func(DirtyLine)) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	cut := m.dirtyCur
	m.dirtyCur++
	fn(DirtyLine{Level: int32(m.geom.RootLevel()), Line: m.root.Encode()})
	for lvl, stamps := range m.dirtyCtr {
		for idx, s := range stamps {
			if s < m.dirtyFloor {
				continue
			}
			raw := m.store.levels[lvl][uint64(idx)]
			fn(DirtyLine{Level: int32(lvl), Index: uint64(idx), Line: append([]byte(nil), raw...)})
		}
	}
	for idx, s := range m.dirtyData {
		if s < m.dirtyFloor {
			continue
		}
		d := uint64(idx)
		fn(DirtyLine{Level: -1, Index: d, Line: append([]byte(nil), m.store.data[d]...), MAC: m.store.dataMAC[d]})
	}
	return cut
}

// CommitDirty marks the collection at cut as durably persisted: lines
// stamped at or below cut are clean from now on.
func (m *Memory) CommitDirty(cut uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cut+1 > m.dirtyFloor {
		m.dirtyFloor = cut + 1
	}
}

// ResetDirty marks the entire current state clean — a full snapshot has
// captured everything, so the next incremental collection starts empty.
func (m *Memory) ResetDirty() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirtyCur++
	m.dirtyFloor = m.dirtyCur
}

// DirtyCount returns how many lines the next CollectDirty would capture,
// excluding the always-included root line (tests and the checkpoint
// runner's pacing heuristics use it).
func (m *Memory) DirtyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, stamps := range m.dirtyCtr {
		for _, s := range stamps {
			if s >= m.dirtyFloor {
				n++
			}
		}
	}
	for _, s := range m.dirtyData {
		if s >= m.dirtyFloor {
			n++
		}
	}
	return n
}

// ApplyDeltaLine installs one line from an authenticated delta segment
// into the store, bypassing the journal: recovery replays deltas onto a
// loaded base snapshot before the WAL tail. The applied line keeps its
// clean stamp (the delta chain already covers it), and any cached trusted
// block for the line is invalidated so later reads re-verify against the
// applied bytes.
func (m *Memory) ApplyDeltaLine(level int32, idx uint64, line []byte, mac uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case level == int32(m.geom.RootLevel()):
		if len(line) != LineBytes {
			return fmt.Errorf("secmem: delta root line is %d bytes, want %d", len(line), LineBytes)
		}
		blk, err := m.cfg.specAt(m.geom.RootLevel()).Decode(line)
		if err != nil {
			return fmt.Errorf("secmem: delta root: %w", err)
		}
		m.root = blk
		m.flushMetadataCache()
	case level == -1:
		if idx >= m.geom.DataLines {
			return fmt.Errorf("secmem: delta data line %d beyond capacity %d", idx, m.geom.DataLines)
		}
		if len(line) != LineBytes {
			return fmt.Errorf("secmem: delta data line is %d bytes, want %d", len(line), LineBytes)
		}
		m.store.data[idx] = append([]byte(nil), line...)
		m.store.dataMAC[idx] = mac
	case level >= 0 && int(level) < m.geom.RootLevel():
		if idx >= m.geom.LevelEntries(int(level)) {
			return fmt.Errorf("secmem: delta level-%d line %d beyond level size %d", level, idx, m.geom.LevelEntries(int(level)))
		}
		m.store.levels[level][idx] = append([]byte(nil), line...)
		delete(m.trusted[level], idx)
	default:
		return fmt.Errorf("secmem: delta line level %d out of range", level)
	}
	return nil
}
