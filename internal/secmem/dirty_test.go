package secmem

import (
	"bytes"
	"testing"
)

func collectAll(m *Memory) (uint32, []DirtyLine) {
	var out []DirtyLine
	cut := m.CollectDirty(func(d DirtyLine) { out = append(out, d) })
	return cut, out
}

func TestDirtyCollectCommitCycle(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	m := mustNew(t, cfg)

	// Fresh engine: nothing dirty, collection holds only the root.
	if n := m.DirtyCount(); n != 0 {
		t.Fatalf("fresh engine dirty count = %d, want 0", n)
	}
	cut, lines := collectAll(m)
	if len(lines) != 1 || lines[0].Level != int32(m.geom.RootLevel()) {
		t.Fatalf("fresh collection = %d lines, want root only", len(lines))
	}
	m.CommitDirty(cut)

	// A handful of writes dirty exactly those data lines plus ancestors.
	for i := uint64(0); i < 8; i++ {
		if err := m.Write(i*64, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.DirtyCount(); n == 0 {
		t.Fatal("writes left dirty count at 0")
	}
	cut, lines = collectAll(m)
	var data, ctr int
	for _, d := range lines {
		switch {
		case d.Level == -1:
			data++
		case d.Level < int32(m.geom.RootLevel()):
			ctr++
		}
	}
	if data != 8 {
		t.Fatalf("collected %d data lines, want 8", data)
	}
	if ctr == 0 {
		t.Fatal("no counter lines collected despite tree updates")
	}

	// Without commit, the same dirt is re-collected (failed persist path).
	_, again := collectAll(m)
	if len(again) != len(lines) {
		t.Fatalf("uncommitted re-collection = %d lines, want %d", len(again), len(lines))
	}

	// After commit, the set drains to root-only.
	m.CommitDirty(cut)
	if n := m.DirtyCount(); n != 0 {
		t.Fatalf("post-commit dirty count = %d, want 0", n)
	}
	_, drained := collectAll(m)
	if len(drained) != 1 {
		t.Fatalf("post-commit collection = %d lines, want root only", len(drained))
	}
}

func TestDirtyWriteDuringCollectLandsInNextCut(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	m := mustNew(t, cfg)
	if err := m.Write(0, line(1)); err != nil {
		t.Fatal(err)
	}
	cut, _ := collectAll(m)
	// Write after the cut: stamped at the advanced epoch, so committing
	// the old cut must not mark it clean.
	if err := m.Write(64, line(2)); err != nil {
		t.Fatal(err)
	}
	m.CommitDirty(cut)
	_, next := collectAll(m)
	found := false
	for _, d := range next {
		if d.Level == -1 && d.Index == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("write racing a collection was lost from the next cut")
	}
}

func TestDirtyResetClearsAll(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	m := mustNew(t, cfg)
	for i := uint64(0); i < 16; i++ {
		if err := m.Write(i*64, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetDirty()
	if n := m.DirtyCount(); n != 0 {
		t.Fatalf("dirty count after reset = %d, want 0", n)
	}
}

// TestDirtyDeltaApplyRoundTrip proves the delta path reconstructs state:
// collect dirty lines from a mutated engine, apply them onto a stale copy,
// and every line must read back verified and equal.
func TestDirtyDeltaApplyRoundTrip(t *testing.T) {
	for _, name := range []string{"SC-64", "MorphCtr-128", "MorphCtr-128-ZCC"} {
		t.Run(name, func(t *testing.T) {
			cfg := configs(1 << 20)[name]
			m := mustNew(t, cfg)
			for i := uint64(0); i < 64; i++ {
				if err := m.Write(i*64*3%(1<<20)&^63, line(byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			// Base snapshot, then more writes → the delta.
			var base bytes.Buffer
			if err := m.Save(&base); err != nil {
				t.Fatal(err)
			}
			m.ResetDirty()
			for i := uint64(64); i < 96; i++ {
				if err := m.Write(i*64*3%(1<<20)&^63, line(byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			_, delta := collectAll(m)

			stale, err := Load(cfg, &base)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range delta {
				if err := stale.ApplyDeltaLine(d.Level, d.Index, d.Line, d.MAC); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i < 96; i++ {
				addr := i * 64 * 3 % (1 << 20) &^ 63
				want, err := m.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := stale.Read(addr)
				if err != nil {
					t.Fatalf("read %#x after delta apply: %v", addr, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("line %#x mismatch after delta apply", addr)
				}
			}
		})
	}
}

func TestApplyDeltaLineRejectsBadInput(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	m := mustNew(t, cfg)
	if err := m.ApplyDeltaLine(-1, 1<<40, make([]byte, LineBytes), 0); err == nil {
		t.Fatal("out-of-range data index accepted")
	}
	if err := m.ApplyDeltaLine(-1, 0, make([]byte, 3), 0); err == nil {
		t.Fatal("short data line accepted")
	}
	if err := m.ApplyDeltaLine(99, 0, make([]byte, LineBytes), 0); err == nil {
		t.Fatal("bogus level accepted")
	}
}

func TestRestoreSwapsStateAtomically(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	donor := mustNew(t, cfg)
	for i := uint64(0); i < 32; i++ {
		if err := donor.Write(i*64, line(byte(i+100))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := donor.Save(&buf); err != nil {
		t.Fatal(err)
	}

	recip := mustNew(t, cfg)
	if err := recip.Write(0, line(7)); err != nil {
		t.Fatal(err)
	}
	if err := recip.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		got, err := recip.Read(i * 64)
		if err != nil {
			t.Fatalf("read after restore: %v", err)
		}
		if !bytes.Equal(got, line(byte(i+100))) {
			t.Fatalf("line %d mismatch after restore", i)
		}
	}
	// Restored engine stays writable and verifying.
	if err := recip.Write(64, line(42)); err != nil {
		t.Fatal(err)
	}

	// A malformed stream must leave live state untouched.
	if err := recip.Restore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage restore accepted")
	}
	got, err := recip.Read(64)
	if err != nil || !bytes.Equal(got, line(42)) {
		t.Fatalf("live state damaged by failed restore: %v", err)
	}
}
