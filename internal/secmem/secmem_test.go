package secmem

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/mac"
)

var testKey = []byte("0123456789abcdef")

// configs returns every counter organization the paper evaluates, over a
// small memory so tests stay fast.
func configs(memBytes uint64) map[string]Config {
	return map[string]Config{
		"SC-64": {
			MemoryBytes: memBytes,
			Enc:         counters.SplitSpec(64),
			Tree:        []counters.Spec{counters.SplitSpec(64)},
			Key:         testKey,
		},
		"SC-128": {
			MemoryBytes: memBytes,
			Enc:         counters.SplitSpec(128),
			Tree:        []counters.Spec{counters.SplitSpec(128)},
			Key:         testKey,
		},
		"VAULT": {
			MemoryBytes: memBytes,
			Enc:         counters.SplitSpec(64),
			Tree:        []counters.Spec{counters.SplitSpec(32), counters.SplitSpec(16)},
			Key:         testKey,
		},
		"MorphCtr-128": {
			MemoryBytes: memBytes,
			Enc:         counters.MorphSpec(true),
			Tree:        []counters.Spec{counters.MorphSpec(true)},
			Key:         testKey,
		},
		"MorphCtr-128-ZCC": {
			MemoryBytes: memBytes,
			Enc:         counters.MorphSpec(false),
			Tree:        []counters.Spec{counters.MorphSpec(false)},
			Key:         testKey,
		},
	}
}

func mustNew(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func line(seed byte) []byte {
	l := make([]byte, LineBytes)
	for i := range l {
		l[i] = seed + byte(i)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 1 << 20, Enc: counters.SplitSpec(64), Key: testKey}); err == nil {
		t.Error("empty tree schedule must fail")
	}
	cfg := configs(1 << 20)["SC-64"]
	cfg.Key = []byte("short")
	if _, err := New(cfg); err == nil {
		t.Error("bad key must fail")
	}
	cfg = configs(100)["SC-64"]
	if _, err := New(cfg); err == nil {
		t.Error("unaligned memory size must fail")
	}
}

func TestWriteReadRoundTripAllConfigs(t *testing.T) {
	for name, cfg := range configs(1 << 20) {
		t.Run(name, func(t *testing.T) {
			m := mustNew(t, cfg)
			addrs := []uint64{0, 64, 4096, 65536, 1<<20 - 64}
			for i, a := range addrs {
				if err := m.Write(a, line(byte(i))); err != nil {
					t.Fatalf("write %#x: %v", a, err)
				}
			}
			for i, a := range addrs {
				got, err := m.Read(a)
				if err != nil {
					t.Fatalf("read %#x: %v", a, err)
				}
				if !bytes.Equal(got, line(byte(i))) {
					t.Fatalf("read %#x mismatch", a)
				}
			}
			// Re-verify from a cold metadata cache.
			m.FlushMetadataCache()
			for i, a := range addrs {
				got, err := m.Read(a)
				if err != nil {
					t.Fatalf("cold read %#x: %v", a, err)
				}
				if !bytes.Equal(got, line(byte(i))) {
					t.Fatalf("cold read %#x mismatch", a)
				}
			}
		})
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	got, err := m.Read(4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, LineBytes)) {
		t.Fatal("unwritten line not zero")
	}
}

func TestOverwriteChangesCiphertext(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["SC-64"])
	m.Write(0, line(1))
	ct1, _ := m.Store().DataLine(0)
	ct1 = bytes.Clone(ct1)
	m.Write(0, line(1)) // same plaintext, new counter
	ct2, _ := m.Store().DataLine(0)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("same plaintext re-encrypted to same ciphertext: counter not advancing")
	}
}

func TestAddressValidation(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["SC-64"])
	if err := m.Write(3, line(0)); err == nil {
		t.Error("unaligned write must fail")
	}
	if err := m.Write(1<<20, line(0)); err == nil {
		t.Error("out-of-range write must fail")
	}
	if _, err := m.Read(1 << 21); err == nil {
		t.Error("out-of-range read must fail")
	}
	if err := m.Write(0, make([]byte, 32)); err == nil {
		t.Error("short line must fail")
	}
}

func TestReadAtWriteAt(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	msg := []byte("the quick brown fox jumps over the lazy dog; counters morph!")
	if err := m.WriteAt(msg, 100); err != nil { // crosses a line boundary
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("ReadAt = %q", got)
	}
	// Whole-line fast path.
	big := bytes.Repeat([]byte("x"), 256)
	if err := m.WriteAt(big, 512); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, 256)
	if err := m.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("aligned WriteAt mismatch")
	}
}

func wantIntegrityError(t *testing.T, err error, context string) *IntegrityError {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: attack went undetected", context)
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("%s: got %v, want IntegrityError", context, err)
	}
	return ie
}

func TestDetectsDataTamper(t *testing.T) {
	for name, cfg := range configs(1 << 20) {
		t.Run(name, func(t *testing.T) {
			m := mustNew(t, cfg)
			m.Write(64, line(9))
			if !m.Store().FlipBit(1, 5, 3) {
				t.Fatal("flip failed")
			}
			ie := wantIntegrityError(t, mustReadErr(m, 64), "data tamper")
			if ie.Level != -1 {
				t.Fatalf("violation at level %d, want data level", ie.Level)
			}
		})
	}
}

func mustReadErr(m *Memory, addr uint64) error {
	_, err := m.Read(addr)
	return err
}

func TestDetectsMACTamper(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	m.Write(0, line(1))
	mc, _ := m.Store().DataMAC(0)
	m.Store().SetDataMAC(0, mc^1)
	wantIntegrityError(t, mustReadErr(m, 0), "MAC tamper")
}

func TestDetectsSplicing(t *testing.T) {
	// Moving a valid {data, MAC} pair to another address must fail: MACs
	// bind the line address.
	m := mustNew(t, configs(1 << 20)["SC-64"])
	m.Write(0, line(1))
	m.Write(64, line(2))
	ct0, _ := m.Store().DataLine(0)
	mac0, _ := m.Store().DataMAC(0)
	m.Store().SetDataLine(1, ct0)
	m.Store().SetDataMAC(1, mac0)
	wantIntegrityError(t, mustReadErr(m, 64), "splice")
}

func TestDetectsStaleDataReplay(t *testing.T) {
	// Replaying an old {data, MAC} pair (without the counters) must fail:
	// the counter has moved on.
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	m.Write(0, line(1))
	old := m.Store().Snapshot(0, nil)
	m.Write(0, line(2))
	m.Store().Replay(old)
	wantIntegrityError(t, mustReadErr(m, 0), "stale data replay")
}

func TestDetectsFullTupleReplay(t *testing.T) {
	// The full replay attack of Section II-A4: restore the data line, its
	// MAC, AND every off-chip counter line on its path. The on-chip root
	// must still catch it.
	for name, cfg := range configs(1 << 20) {
		t.Run(name, func(t *testing.T) {
			m := mustNew(t, cfg)
			m.Write(0, line(1))
			chain := m.Path(0)
			old := m.Store().Snapshot(0, chain)
			m.Write(0, line(2))
			m.Store().Replay(old)
			m.FlushMetadataCache() // cold cache: all trust re-derived from the root
			wantIntegrityError(t, mustReadErr(m, 0), "full tuple replay")
		})
	}
}

func TestReplayOfSiblingStateDetected(t *testing.T) {
	// Replay the counter chain but keep the NEW data: also caught.
	m := mustNew(t, configs(1 << 20)["SC-64"])
	m.Write(0, line(1))
	chain := m.Path(0)
	old := m.Store().Snapshot(0, chain)
	m.Write(0, line(2))
	newData := m.Store().Snapshot(0, nil)
	m.Store().Replay(old)
	m.Store().Replay(newData) // restore new data over old counters
	m.FlushMetadataCache()
	wantIntegrityError(t, mustReadErr(m, 0), "counter-only replay")
}

func TestDetectsCounterTamper(t *testing.T) {
	for name, cfg := range configs(1 << 20) {
		t.Run(name, func(t *testing.T) {
			m := mustNew(t, cfg)
			m.Write(0, line(1))
			if !m.Store().FlipCounterBit(0, 0, 9, 2) {
				t.Fatal("flip failed")
			}
			m.FlushMetadataCache()
			ie := wantIntegrityError(t, mustReadErr(m, 0), "counter tamper")
			if ie.Level != 0 {
				t.Fatalf("violation at level %d, want 0", ie.Level)
			}
		})
	}
}

func TestDetectsTreeLevelTamper(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["SC-64"])
	m.Write(0, line(1))
	if m.Store().StoredLevels() < 2 {
		t.Skip("tree too shallow to tamper level 1")
	}
	if !m.Store().FlipCounterBit(1, 0, 3, 1) {
		t.Fatal("flip failed")
	}
	m.FlushMetadataCache()
	ie := wantIntegrityError(t, mustReadErr(m, 0), "tree tamper")
	if ie.Level != 1 {
		t.Fatalf("violation at level %d, want 1", ie.Level)
	}
}

func TestDetectsCounterLineDeletion(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	m.Write(0, line(1))
	m.Store().SetCounterLine(0, 0, make([]byte, LineBytes))
	m.FlushMetadataCache()
	wantIntegrityError(t, mustReadErr(m, 0), "counter zeroing")
}

func TestOverflowReencryptionPreservesSiblings(t *testing.T) {
	// SC-128's 3-bit minors overflow every 8 writes; siblings must still
	// decrypt correctly after the re-encryption storm.
	m := mustNew(t, configs(1 << 20)["SC-128"])
	// Populate the first counter block's children (data lines 0..127).
	for i := uint64(0); i < 128; i++ {
		if err := m.Write(i*64, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer line 0 to force repeated overflows.
	for w := 0; w < 100; w++ {
		if err := m.Write(0, line(200)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Overflows[0] == 0 {
		t.Fatal("expected encryption-counter overflows")
	}
	if st.Reencryptions == 0 {
		t.Fatal("expected re-encryptions")
	}
	m.FlushMetadataCache()
	for i := uint64(1); i < 128; i++ {
		got, err := m.Read(i * 64)
		if err != nil {
			t.Fatalf("sibling %d after overflow: %v", i, err)
		}
		if !bytes.Equal(got, line(byte(i))) {
			t.Fatalf("sibling %d corrupted by re-encryption", i)
		}
	}
}

func TestMorphRebasingReducesOverflows(t *testing.T) {
	// Uniform writes over a full counter line: rebasing must absorb
	// overflows that the ZCC-only variant suffers.
	run := func(cfg Config) Stats {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 40; round++ {
			for i := uint64(0); i < 128; i++ {
				if err := m.Write(i*64, line(byte(round))); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m.Stats()
	}
	all := configs(1 << 20)
	withRebase := run(all["MorphCtr-128"])
	withoutRebase := run(all["MorphCtr-128-ZCC"])
	if withRebase.Rebases[0] == 0 {
		t.Fatal("expected rebases under uniform writes")
	}
	if withRebase.Overflows[0] >= withoutRebase.Overflows[0] {
		t.Fatalf("rebasing did not reduce overflows: %d vs %d",
			withRebase.Overflows[0], withoutRebase.Overflows[0])
	}
}

func TestPathShape(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["SC-64"])
	chain := m.Path(0)
	if len(chain) != m.Geometry().RootLevel() {
		t.Fatalf("path length %d, want %d", len(chain), m.Geometry().RootLevel())
	}
	if chain[0][0] != 0 {
		t.Fatal("path must start at encryption-counter level")
	}
}

func TestVerifyAllCleanAndTampered(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	for i := uint64(0); i < 64; i++ {
		m.Write(i*64, line(byte(i)))
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("clean memory failed verification: %v", err)
	}
	m.Store().FlipBit(17, 0, 0)
	if err := m.VerifyAll(); err == nil {
		t.Fatal("tampered memory passed verification")
	}
}

// TestConsistencyStress runs random writes and reads against a plain map
// reference model, across every configuration, with periodic cold-cache
// flushes. Counter overflows, rebases, format switches and tree overflows
// all happen along the way; data must never be corrupted or rejected.
func TestConsistencyStress(t *testing.T) {
	for name, cfg := range configs(256 << 10) {
		t.Run(name, func(t *testing.T) {
			m := mustNew(t, cfg)
			ref := map[uint64][]byte{}
			rng := rand.New(rand.NewSource(42))
			lines := cfg.MemoryBytes / LineBytes
			for op := 0; op < 6000; op++ {
				idx := uint64(rng.Intn(int(lines / 8))) // concentrate to force overflows
				addr := idx * LineBytes
				switch rng.Intn(4) {
				case 0, 1, 2:
					l := line(byte(rng.Intn(256)))
					if err := m.Write(addr, l); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					ref[idx] = l
				case 3:
					got, err := m.Read(addr)
					if err != nil {
						t.Fatalf("op %d read: %v", op, err)
					}
					want, ok := ref[idx]
					if !ok {
						want = make([]byte, LineBytes)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: data corruption at line %d", op, idx)
					}
				}
				if op%1500 == 1499 {
					m.FlushMetadataCache()
				}
			}
			st := m.Stats()
			t.Logf("%s: %d writes, overflows=%v rebases=%v reencrypt=%d",
				name, st.Writes, st.Overflows, st.Rebases, st.Reencryptions)
		})
	}
}

func TestStatsShape(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["SC-64"])
	m.Write(0, line(1))
	st := m.Stats()
	if st.Writes != 1 {
		t.Fatalf("writes = %d", st.Writes)
	}
	// Write-through propagation: one increment at every level.
	for lvl := 0; lvl <= m.Geometry().RootLevel(); lvl++ {
		if st.Increments[lvl] != 1 {
			t.Fatalf("level %d increments = %d, want 1", lvl, st.Increments[lvl])
		}
	}
	// Stats must be a copy.
	st.Increments[0] = 99
	if m.Stats().Increments[0] == 99 {
		t.Fatal("Stats leaked internal state")
	}
}

func TestMACWidthConfigurable(t *testing.T) {
	cfg := configs(1 << 20)["SC-64"]
	cfg.MACWidth = mac.Width54
	m := mustNew(t, cfg)
	if err := m.Write(0, line(1)); err != nil {
		t.Fatal(err)
	}
	mc, _ := m.Store().DataMAC(0)
	if mc >= 1<<54 {
		t.Fatalf("MAC %#x exceeds 54 bits", mc)
	}
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
}

func ExampleMemory() {
	m, _ := New(Config{
		MemoryBytes: 1 << 20,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         []byte("0123456789abcdef"),
	})
	m.WriteAt([]byte("secret"), 0)
	buf := make([]byte, 6)
	m.ReadAt(buf, 0)
	fmt.Println(string(buf))
	// Output: secret
}

func TestDeltaEncryptionCounters(t *testing.T) {
	// The delta-encoded organization of reference [19] drops in as an
	// encryption-counter spec under any tree.
	m := mustNew(t, Config{
		MemoryBytes: 256 << 10,
		Enc:         counters.DeltaSpec(),
		Tree:        []counters.Spec{counters.SplitSpec(64)},
		Key:         testKey,
	})
	for i := uint64(0); i < 128; i++ {
		if err := m.Write(i*64, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Uniform re-writes: rebasing must absorb delta saturations.
	for round := 0; round < 40; round++ {
		for i := uint64(0); i < 128; i++ {
			if err := m.Write(i*64, line(byte(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m.Stats()
	if st.Overflows[0] != 0 {
		t.Fatalf("delta counters overflowed %d times under uniform writes", st.Overflows[0])
	}
	if st.Rebases[0] == 0 {
		t.Fatal("no delta rebases under uniform writes")
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	m := mustNew(t, configs(1 << 20)["MorphCtr-128"])
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 4096
			for i := 0; i < 200; i++ {
				addr := base + uint64(i%16)*64
				if err := m.Write(addr, line(byte(g))); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Read(addr); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("memory inconsistent after concurrent use: %v", err)
	}
}
