package secmem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
)

func saveLoad(t *testing.T, cfgName string) (*Memory, *Memory, Config) {
	t.Helper()
	cfg := configs(1 << 20)[cfgName]
	m := mustNew(t, cfg)
	for i := uint64(0); i < 200; i++ {
		if err := m.Write(i*64*7%(1<<20)&^63, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return m, loaded, cfg
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, name := range []string{"SC-64", "VAULT", "MorphCtr-128", "MorphCtr-128-ZCC"} {
		t.Run(name, func(t *testing.T) {
			orig, loaded, _ := saveLoad(t, name)
			// Every line written to the original must verify and
			// match after loading.
			for i := uint64(0); i < 200; i++ {
				addr := i * 64 * 7 % (1 << 20) &^ 63
				want, err := orig.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := loaded.Read(addr)
				if err != nil {
					t.Fatalf("read after load: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("line %#x mismatch after load", addr)
				}
			}
		})
	}
}

func TestLoadedMemoryRemainsWritable(t *testing.T) {
	_, loaded, _ := saveLoad(t, "MorphCtr-128")
	if err := loaded.Write(0, line(99)); err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(99)) {
		t.Fatal("write after load failed")
	}
	if err := loaded.VerifyAll(); err != nil {
		t.Fatalf("loaded memory fails verification: %v", err)
	}
}

func TestLoadRejectsWrongConfig(t *testing.T) {
	cfg := configs(1 << 20)["SC-64"]
	m := mustNew(t, cfg)
	m.Write(0, line(1))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	wrongOrg := configs(1 << 20)["MorphCtr-128"]
	if _, err := Load(wrongOrg, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong organization must fail")
	}
	wrongSize := cfg
	wrongSize.MemoryBytes = 2 << 20
	if _, err := Load(wrongSize, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong capacity must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cfg := configs(1 << 20)["SC-64"]
	if _, err := Load(cfg, bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Load(cfg, bytes.NewReader([]byte("not a save file at all"))); err == nil {
		t.Error("garbage input must fail")
	}
	// Truncated valid prefix.
	m := mustNew(t, cfg)
	m.Write(0, line(1))
	var buf bytes.Buffer
	m.Save(&buf)
	if _, err := Load(cfg, bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated input must fail")
	}
}

func TestTamperedSaveFileDetectedOnRead(t *testing.T) {
	cfg := configs(1 << 20)["MorphCtr-128"]
	m := mustNew(t, cfg)
	m.Write(0, line(1))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit somewhere in the stored state (past the header and
	// the trusted root). The untrusted contents are self-protecting.
	raw := buf.Bytes()
	raw[len(raw)-10] ^= 0x04
	loaded, err := Load(cfg, bytes.NewReader(raw))
	if err != nil {
		// Structural corruption is also an acceptable detection.
		return
	}
	if _, err := loaded.Read(0); err == nil {
		t.Fatal("tampered save file read back cleanly")
	} else {
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("got %v, want IntegrityError", err)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	cfg := Config{
		MemoryBytes: 1 << 20,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		m.Write(i*64, line(byte(i)))
	}
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save is not deterministic")
	}
}
