package secmem

import (
	"fmt"
	"io"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
)

// benchMemory builds a 1 MB secure memory for throughput benchmarks.
func benchMemory(b *testing.B, enc counters.Spec, tr []counters.Spec) *Memory {
	b.Helper()
	m, err := New(Config{MemoryBytes: 1 << 20, Enc: enc, Tree: tr, Key: testKey})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkWrite(b *testing.B) {
	for _, c := range []struct {
		name string
		enc  counters.Spec
	}{
		{"SC-64", counters.SplitSpec(64)},
		{"MorphCtr-128", counters.MorphSpec(true)},
	} {
		b.Run(c.name, func(b *testing.B) {
			m := benchMemory(b, c.enc, []counters.Spec{c.enc})
			l := make([]byte, LineBytes)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				addr := uint64(i) * 64 % (1 << 20)
				if err := m.Write(addr, l); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(LineBytes)
		})
	}
}

func BenchmarkReadWarm(b *testing.B) {
	m := benchMemory(b, counters.MorphSpec(true), []counters.Spec{counters.MorphSpec(true)})
	l := make([]byte, LineBytes)
	for i := uint64(0); i < 1024; i++ {
		if err := m.Write(i*64, l); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(uint64(i) % 1024 * 64); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(LineBytes)
}

func BenchmarkReadColdVerify(b *testing.B) {
	// Cold reads re-verify the whole chain from untrusted storage.
	m := benchMemory(b, counters.MorphSpec(true), []counters.Spec{counters.MorphSpec(true)})
	l := make([]byte, LineBytes)
	for i := uint64(0); i < 1024; i++ {
		if err := m.Write(i*64, l); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.FlushMetadataCache()
		if _, err := m.Read(uint64(i) % 1024 * 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverflowStorm(b *testing.B) {
	// Hammer one line of an SC-128 memory: an overflow (and 128-line
	// re-encryption) every 8 writes.
	m := benchMemory(b, counters.SplitSpec(128), []counters.Spec{counters.SplitSpec(128)})
	l := make([]byte, LineBytes)
	for i := uint64(0); i < 128; i++ {
		m.Write(i*64, l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(0, l); err != nil {
			b.Fatal(err)
		}
	}
	st := m.Stats()
	b.ReportMetric(float64(st.Overflows[0])/float64(b.N), "overflows/write")
}

func BenchmarkSave(b *testing.B) {
	m := benchMemory(b, counters.MorphSpec(true), []counters.Spec{counters.MorphSpec(true)})
	l := make([]byte, LineBytes)
	for i := uint64(0); i < 4096; i++ {
		m.Write(i*64%(1<<20), l)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Save(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func ExampleMemory_Save() {
	cfg := Config{
		MemoryBytes: 1 << 20,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         []byte("0123456789abcdef"),
	}
	m, _ := New(cfg)
	m.WriteAt([]byte("durable secret"), 0)
	var buf writerBuffer
	m.Save(&buf)
	loaded, _ := Load(cfg, &buf)
	out := make([]byte, 14)
	loaded.ReadAt(out, 0)
	fmt.Println(string(out))
	// Output: durable secret
}

// writerBuffer is a minimal in-memory io.ReadWriter for the example.
type writerBuffer struct {
	data []byte
	pos  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}
