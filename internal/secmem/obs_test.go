package secmem

import (
	"testing"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/obs"
)

// instrumented builds a memory wired to a fresh registry and tracer.
func instrumented(t *testing.T, cfg Config) (*Memory, *obs.Registry, *obs.Tracer) {
	t.Helper()
	m := mustNew(t, cfg)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	m.Instrument(Instrumentation{
		WriteLatency: reg.Histogram("secmem.write.latency"),
		ReadLatency:  reg.Histogram("secmem.read.latency"),
		LockWait:     reg.Histogram("secmem.lock_wait"),
		Tracer:       tr,
		Shard:        3,
	})
	return m, reg, tr
}

// TestInstrumentedLatencies checks the write/read paths feed the latency
// histograms and that the lock-wait histogram sees every acquisition.
func TestInstrumentedLatencies(t *testing.T) {
	m, reg, _ := instrumented(t, Config{
		MemoryBytes: 1 << 14,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	})
	line := make([]byte, LineBytes)
	const writes, reads = 20, 10
	for i := 0; i < writes; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reads; i++ {
		if _, err := m.Read(uint64(i) * LineBytes); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["secmem.write.latency"].Count; got != writes {
		t.Fatalf("write latency samples = %d, want %d", got, writes)
	}
	if got := snap.Histograms["secmem.read.latency"].Count; got != reads {
		t.Fatalf("read latency samples = %d, want %d", got, reads)
	}
	if got := snap.Histograms["secmem.lock_wait"].Count; got != writes+reads {
		t.Fatalf("lock wait samples = %d, want %d", got, writes+reads)
	}
	if snap.Histograms["secmem.write.latency"].P50 == 0 {
		t.Fatal("write p50 is zero; timing not recorded")
	}
}

// TestOverflowTracing drives an SC-128 memory (3-bit minors overflow after
// 8 increments of one slot) and checks the stats split and trace events
// agree: SC full-line resets are Overflows with no SetResets.
func TestOverflowTracing(t *testing.T) {
	m, _, tr := instrumented(t, Config{
		MemoryBytes: 1 << 14,
		Enc:         counters.SplitSpec(128),
		Tree:        []counters.Spec{counters.SplitSpec(64)},
		Key:         testKey,
	})
	line := make([]byte, LineBytes)
	const writes = 40
	for i := 0; i < writes; i++ {
		if err := m.Write(0, line); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Overflows[0] == 0 {
		t.Fatal("expected level-0 overflows after hammering one line")
	}
	if s.SetResets[0] != 0 {
		t.Fatalf("SC-128 cannot set-reset, got %d", s.SetResets[0])
	}
	rows := s.OverflowsByLevel()
	if rows[0].FullResets != s.Overflows[0] {
		t.Fatalf("full resets = %d, want all %d overflows", rows[0].FullResets, s.Overflows[0])
	}
	var total uint64
	for _, v := range s.Overflows {
		total += v
	}
	if got := tr.Count(obs.KindOverflow); got != total {
		t.Fatalf("traced overflows = %d, stats say %d", got, total)
	}
	// Every traced overflow carries this engine's shard tag and the
	// re-encryption fan-out.
	for _, ev := range tr.Events() {
		if ev.Kind != obs.KindOverflow {
			continue
		}
		if ev.Shard != 3 {
			t.Fatalf("overflow event shard = %d, want 3", ev.Shard)
		}
		if ev.B != 128 {
			t.Fatalf("overflow reencrypt fan-out = %d, want full arity 128", ev.B)
		}
	}
	// Tree-walk events fire on verified fetches from untrusted storage,
	// so force a cold metadata cache and re-read.
	m.FlushMetadataCache()
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
	if tr.Count(obs.KindTreeWalk) == 0 {
		t.Fatal("no tree-walk events traced after cold-cache read")
	}
}

// TestMorphSetResetTracing forces the MorphCtr MCR format (65 distinct
// lines leave ZCC) and then hammers one line until its set resets: the
// cheap per-set overflow must show up in SetResets, and rebases and format
// switches must be traced.
func TestMorphSetResetTracing(t *testing.T) {
	m, _, tr := instrumented(t, Config{
		MemoryBytes: 1 << 14,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	})
	line := make([]byte, LineBytes)
	// 65 distinct lines within one 128-arity counter block: ZCC width
	// reorganizations and then the ZCC->MCR switch.
	for i := 0; i < 65; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		if err := m.Write(0, line); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.FormatSwitches[0] == 0 {
		t.Fatal("expected format switches while growing the ZCC population")
	}
	if s.Rebases[0] == 0 {
		t.Fatal("expected MCR rebases while hammering one line")
	}
	if s.SetResets[0] == 0 {
		t.Fatal("expected at least one per-set reset")
	}
	if s.SetResets[0] > s.Overflows[0] {
		t.Fatalf("set resets %d exceed overflows %d", s.SetResets[0], s.Overflows[0])
	}
	if tr.Count(obs.KindRebase) == 0 || tr.Count(obs.KindFormatSwitch) == 0 {
		t.Fatal("rebase/format-switch events not traced")
	}
	// Set resets re-encrypt only the 64-counter set: at least one traced
	// overflow must carry the cheap fan-out.
	var sawSet bool
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindOverflow && ev.B == 64 {
			sawSet = true
		}
	}
	if !sawSet {
		t.Fatal("no per-set (fan-out 64) overflow event in ring")
	}
}
