package secmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Persistence: Save serializes a secure memory's complete state — the
// untrusted store (ciphertexts, MACs, counter lines) plus the on-chip root
// — so it can be reloaded later with Load. The root line must travel
// through a trusted channel in a real deployment (it is the anchor all
// verification hangs from); everything else is self-protecting, so a
// tampered save file surfaces as an *IntegrityError on first read after
// loading.

const (
	persistMagic   = "MTSM"
	persistVersion = 1
)

// Save writes the memory's state to w.
func (m *Memory) Save(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("secmem: save: %w", err)
	}
	if err := writeU64(bw, persistVersion); err != nil {
		return err
	}
	if err := writeU64(bw, m.cfg.MemoryBytes); err != nil {
		return err
	}
	if err := writeString(bw, m.configFingerprint()); err != nil {
		return err
	}
	// Root line (trusted; callers must protect the save file's
	// confidentiality/integrity out of band for it to stay an anchor).
	if _, err := bw.Write(m.root.Encode()); err != nil {
		return fmt.Errorf("secmem: save root: %w", err)
	}
	// Counter levels.
	if err := writeU64(bw, uint64(len(m.store.levels))); err != nil {
		return err
	}
	for _, level := range m.store.levels {
		if err := writeLineMap(bw, level); err != nil {
			return err
		}
	}
	// Data lines with their MACs.
	if err := writeU64(bw, uint64(len(m.store.data))); err != nil {
		return err
	}
	for _, idx := range sortedKeys(m.store.data) {
		if err := writeU64(bw, idx); err != nil {
			return err
		}
		if _, err := bw.Write(m.store.data[idx]); err != nil {
			return fmt.Errorf("secmem: save data: %w", err)
		}
		if err := writeU64(bw, m.store.dataMAC[idx]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reconstructs a secure memory from r. cfg must describe the same
// organization (capacity, counter specs, key, MAC width) the state was
// saved under; the key itself is never stored.
func Load(cfg Config, r io.Reader) (*Memory, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.restoreInto(r); err != nil {
		return nil, err
	}
	return m, nil
}

// Restore replaces this engine's live state with a Save stream, atomically
// under the engine lock: concurrent readers see either the old state or
// the new one, never a mix. The stream is decoded into a staging engine
// first, so a malformed stream leaves the live state untouched. Activity
// stats and registered key domains are kept (both derive from config and
// operation counts, not from the shipped state). Live shard migration
// installs streamed donor state through this.
func (m *Memory) Restore(r io.Reader) error {
	st, err := m.StageRestore(r)
	if err != nil {
		return err
	}
	m.CommitRestore(st)
	return nil
}

// Staged is decoded state not yet adopted; see StageRestore.
type Staged struct {
	fresh *Memory
}

// StageRestore decodes a Save stream into a staging engine without
// touching live state. Callers that read from an authenticated transport
// verify the stream trailer between StageRestore and CommitRestore, so a
// forged stream is rejected before anything is adopted.
func (m *Memory) StageRestore(r io.Reader) (*Staged, error) {
	fresh, err := New(m.cfg)
	if err != nil {
		return nil, err
	}
	if err := fresh.restoreInto(r); err != nil {
		return nil, err
	}
	return &Staged{fresh: fresh}, nil
}

// CommitRestore atomically adopts staged state. Every adopted line is
// stamped dirty: installed state is not covered by this engine's local
// checkpoint chain, so the next incremental checkpoint must capture it in
// full (a post-install full snapshot resets the stamps as usual).
func (m *Memory) CommitRestore(st *Staged) {
	fresh := st.fresh
	m.mu.Lock()
	m.store = fresh.store
	m.root = fresh.root
	m.trusted = fresh.trusted
	m.dirtyData = fresh.dirtyData
	m.dirtyCtr = fresh.dirtyCtr
	m.dirtyCur = fresh.dirtyCur
	m.dirtyFloor = fresh.dirtyFloor
	for idx := range m.store.data {
		m.dirtyData[idx] = m.dirtyCur
	}
	for lvl, level := range m.store.levels {
		for idx := range level {
			m.dirtyCtr[lvl][idx] = m.dirtyCur
		}
	}
	m.mu.Unlock()
}

// restoreInto decodes a Save stream into m's store, root, and trusted
// cache. Callers must own m exclusively (a fresh engine not yet shared).
func (m *Memory) restoreInto(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != persistMagic {
		return fmt.Errorf("secmem: load: bad magic")
	}
	version, err := readU64(br)
	if err != nil {
		return err
	}
	if version != persistVersion {
		return fmt.Errorf("secmem: load: unsupported version %d", version)
	}
	memBytes, err := readU64(br)
	if err != nil {
		return err
	}
	if memBytes != m.cfg.MemoryBytes {
		return fmt.Errorf("secmem: load: capacity %d does not match config %d", memBytes, m.cfg.MemoryBytes)
	}
	fp, err := readString(br)
	if err != nil {
		return err
	}
	if fp != m.configFingerprint() {
		return fmt.Errorf("secmem: load: organization %q does not match config %q", fp, m.configFingerprint())
	}
	rootRaw := make([]byte, LineBytes)
	if _, err := io.ReadFull(br, rootRaw); err != nil {
		return fmt.Errorf("secmem: load root: %w", err)
	}
	root, err := m.cfg.specAt(m.geom.RootLevel()).Decode(rootRaw)
	if err != nil {
		return fmt.Errorf("secmem: load root: %w", err)
	}
	m.root = root

	numLevels, err := readU64(br)
	if err != nil {
		return err
	}
	if numLevels != uint64(len(m.store.levels)) {
		return fmt.Errorf("secmem: load: %d levels, want %d", numLevels, len(m.store.levels))
	}
	for lvl := range m.store.levels {
		entries, err := readLineMap(br)
		if err != nil {
			return err
		}
		m.store.levels[lvl] = entries
	}
	numData, err := readU64(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < numData; i++ {
		idx, err := readU64(br)
		if err != nil {
			return err
		}
		line := make([]byte, LineBytes)
		if _, err := io.ReadFull(br, line); err != nil {
			return fmt.Errorf("secmem: load data: %w", err)
		}
		mac, err := readU64(br)
		if err != nil {
			return err
		}
		m.store.data[idx] = line
		m.store.dataMAC[idx] = mac
	}
	return nil
}

// configFingerprint names the counter organization (keys excluded).
func (m *Memory) configFingerprint() string {
	fp := m.cfg.Enc.Name
	for _, s := range m.cfg.Tree {
		fp += "/" + s.Name
	}
	return fmt.Sprintf("%s@%d", fp, m.keyer.Width())
}

func writeLineMap(w io.Writer, lines map[uint64][]byte) error {
	if err := writeU64(w, uint64(len(lines))); err != nil {
		return err
	}
	keys := make([]uint64, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := writeU64(w, k); err != nil {
			return err
		}
		if _, err := w.Write(lines[k]); err != nil {
			return fmt.Errorf("secmem: save line: %w", err)
		}
	}
	return nil
}

func readLineMap(r io.Reader) (map[uint64][]byte, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][]byte, n)
	for i := uint64(0); i < n; i++ {
		k, err := readU64(r)
		if err != nil {
			return nil, err
		}
		line := make([]byte, LineBytes)
		if _, err := io.ReadFull(r, line); err != nil {
			return nil, fmt.Errorf("secmem: load line: %w", err)
		}
		out[k] = line
	}
	return out, nil
}

func sortedKeys(m map[uint64][]byte) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("secmem: save: %w", err)
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("secmem: load: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU64(w, uint64(len(s))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("secmem: save: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU64(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("secmem: load: fingerprint length %d unreasonable", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("secmem: load: %w", err)
	}
	return string(buf), nil
}
