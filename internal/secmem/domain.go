package secmem

import (
	"fmt"
	"time"

	"github.com/securemem/morphtree/internal/aesctr"
	"github.com/securemem/morphtree/internal/mac"
	"github.com/securemem/morphtree/internal/proof"
)

// Domain is a per-tenant key domain over one engine: a cipher and data-MAC
// keyer built from HMAC(engineKey, "morphtree/tenant/<id>"), so every
// tenant's data lines are sealed under a key no other tenant (and not the
// engine's default domain) can reproduce. The counter tree and its MACs
// stay under the engine key — integrity metadata is shared infrastructure,
// the SecDDR/Secure-Scattered-Memory split — so a cross-domain read still
// walks a valid tree but fails closed on the data-line MAC.
//
// A Domain is immutable after NewDomain and safe for concurrent use.
type Domain struct {
	name   string
	cipher *aesctr.Cipher
	keyer  *mac.Keyer
}

// Name returns the tenant id the domain was derived for.
func (d *Domain) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// NewDomain derives tenant id's key domain over this engine's key. The
// derivation (proof.DeriveTenantKey) layers on whatever key the engine was
// built with, so sharded deployments — where each engine already holds a
// per-shard derived key — get independent (shard, tenant) domains for free.
func (m *Memory) NewDomain(id string) (*Domain, error) {
	key, err := proof.DeriveTenantKey(m.cfg.Key, id)
	if err != nil {
		return nil, fmt.Errorf("secmem: tenant domain %q: %w", id, err)
	}
	cipher, err := aesctr.New(key)
	if err != nil {
		return nil, fmt.Errorf("secmem: tenant domain %q: %w", id, err)
	}
	width := m.cfg.MACWidth
	if width == 0 {
		width = mac.Width56
	}
	keyer, err := mac.New(key, width)
	if err != nil {
		return nil, fmt.Errorf("secmem: tenant domain %q: %w", id, err)
	}
	return &Domain{name: id, cipher: cipher, keyer: keyer}, nil
}

// dataCipher returns the cipher sealing data lines for dom (nil = the
// engine's default domain).
func (m *Memory) dataCipher(dom *Domain) *aesctr.Cipher {
	if dom == nil {
		return m.cipher
	}
	return dom.cipher
}

// dataKeyer returns the keyer MACing data lines for dom (nil = the
// engine's default domain).
func (m *Memory) dataKeyer(dom *Domain) *mac.Keyer {
	if dom == nil {
		return m.keyer
	}
	return dom.keyer
}

// ReadDomain is Read routed through a tenant key domain: the data-line MAC
// is checked and the ciphertext decrypted under dom's keys, so a line last
// written by any other domain — another tenant's, or the engine default —
// fails closed with an *IntegrityError instead of decrypting to garbage.
// A nil dom is the engine's default domain (plain Read).
func (m *Memory) ReadDomain(dom *Domain, addr uint64) ([]byte, error) {
	if !m.instrumented {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.read(addr, dom)
	}
	start := time.Now()
	wait := m.lockTimed(start)
	line, err := m.read(addr, dom)
	m.mu.Unlock()
	m.ins.LockWait.Record(wait)
	m.ins.ReadLatency.Record(time.Since(start))
	return line, err
}

// WriteDomain is Write routed through a tenant key domain: the line is
// encrypted and MAC'd under dom's keys and the line is tagged as owned by
// dom, so overflow re-encryption and VerifyAll keep using the right keys.
// A nil dom is the engine's default domain (plain Write).
func (m *Memory) WriteDomain(dom *Domain, addr uint64, line []byte) error {
	if !m.instrumented {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.write(addr, line, dom)
	}
	start := time.Now()
	wait := m.lockTimed(start)
	err := m.write(addr, line, dom)
	m.mu.Unlock()
	m.ins.LockWait.Record(wait)
	m.ins.WriteLatency.Record(time.Since(start))
	return err
}
