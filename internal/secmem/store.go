package secmem

import "bytes"

// Store is the untrusted off-chip memory: data cachelines, their MACs, and
// every integrity-tree level except the on-chip root. Nothing here is
// trusted — the engine verifies everything it reads back. The mutation
// methods double as the adversary interface for attack simulations: they
// model an attacker with physical access to the DIMM.
type Store struct {
	data    map[uint64][]byte // data line index -> ciphertext
	dataMAC map[uint64]uint64 // data line index -> MAC (ECC-chip resident)
	levels  []map[uint64][]byte
}

// newStore allocates storage for numLevels counter levels (level 0 =
// encryption counters; the root level is not stored off-chip).
func newStore(numLevels int) *Store {
	s := &Store{
		data:    make(map[uint64][]byte),
		dataMAC: make(map[uint64]uint64),
		levels:  make([]map[uint64][]byte, numLevels),
	}
	for i := range s.levels {
		s.levels[i] = make(map[uint64][]byte)
	}
	return s
}

// DataLine returns the stored ciphertext of a data line, if present.
func (s *Store) DataLine(idx uint64) ([]byte, bool) {
	ct, ok := s.data[idx]
	return ct, ok
}

// SetDataLine overwrites a data line's ciphertext (adversary interface).
func (s *Store) SetDataLine(idx uint64, ct []byte) {
	s.data[idx] = bytes.Clone(ct)
}

// DataMAC returns the stored MAC of a data line.
func (s *Store) DataMAC(idx uint64) (uint64, bool) {
	m, ok := s.dataMAC[idx]
	return m, ok
}

// SetDataMAC overwrites a data line's MAC (adversary interface).
func (s *Store) SetDataMAC(idx uint64, m uint64) { s.dataMAC[idx] = m }

// CounterLine returns the stored encoding of a counter line at a level
// (0 = encryption counters, 1.. = tree levels).
func (s *Store) CounterLine(level int, idx uint64) ([]byte, bool) {
	raw, ok := s.levels[level][idx]
	return raw, ok
}

// SetCounterLine overwrites a counter line (adversary interface).
func (s *Store) SetCounterLine(level int, idx uint64, raw []byte) {
	s.levels[level][idx] = bytes.Clone(raw)
}

// StoredLevels returns how many counter levels live off-chip.
func (s *Store) StoredLevels() int { return len(s.levels) }

// Tuple is a {data, MAC, counter-chain} snapshot an adversary can capture
// and later replay — the attack integrity trees exist to defeat
// (Section II-A4).
type Tuple struct {
	dataIdx  uint64
	data     []byte
	dataOK   bool
	mac      uint64
	macOK    bool
	counters []counterSnapshot
}

type counterSnapshot struct {
	level int
	idx   uint64
	raw   []byte
	ok    bool
}

// Snapshot captures the stored state backing one data line: its ciphertext,
// MAC, and the counter line at every off-chip level on its verification
// path. chain lists (level, index) pairs, typically from Memory.Path.
func (s *Store) Snapshot(dataIdx uint64, chain [][2]uint64) Tuple {
	t := Tuple{dataIdx: dataIdx}
	if ct, ok := s.data[dataIdx]; ok {
		t.data, t.dataOK = bytes.Clone(ct), true
	}
	if m, ok := s.dataMAC[dataIdx]; ok {
		t.mac, t.macOK = m, true
	}
	for _, c := range chain {
		level, idx := int(c[0]), c[1]
		cs := counterSnapshot{level: level, idx: idx}
		if raw, ok := s.levels[level][idx]; ok {
			cs.raw, cs.ok = bytes.Clone(raw), true
		}
		t.counters = append(t.counters, cs)
	}
	return t
}

// Replay writes a previously captured tuple back into the store — the
// classic replay attack of substituting a stale but self-consistent
// {data, MAC, counter} set.
func (s *Store) Replay(t Tuple) {
	if t.dataOK {
		s.data[t.dataIdx] = bytes.Clone(t.data)
	} else {
		delete(s.data, t.dataIdx)
	}
	if t.macOK {
		s.dataMAC[t.dataIdx] = t.mac
	} else {
		delete(s.dataMAC, t.dataIdx)
	}
	for _, cs := range t.counters {
		if cs.ok {
			s.levels[cs.level][cs.idx] = bytes.Clone(cs.raw)
		} else {
			delete(s.levels[cs.level], cs.idx)
		}
	}
}

// FlipBit flips one bit of a stored data line (adversary interface).
// It reports whether the line existed.
func (s *Store) FlipBit(dataIdx uint64, byteOff int, bit uint) bool {
	ct, ok := s.data[dataIdx]
	if !ok {
		return false
	}
	ct[byteOff%len(ct)] ^= 1 << (bit % 8)
	return true
}

// FlipCounterBit flips one bit of a stored counter line.
func (s *Store) FlipCounterBit(level int, idx uint64, byteOff int, bit uint) bool {
	raw, ok := s.levels[level][idx]
	if !ok {
		return false
	}
	raw[byteOff%len(raw)] ^= 1 << (bit % 8)
	return true
}
