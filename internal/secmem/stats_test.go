package secmem

import (
	"sync"
	"testing"

	"github.com/securemem/morphtree/internal/counters"
)

// TestStatsDeepCopy locks in that Stats() hands back slices the engine will
// never touch again: a caller scribbling on the returned per-level counts
// must not perturb the engine, and the engine's continued activity must not
// show through a previously returned snapshot.
func TestStatsDeepCopy(t *testing.T) {
	m := mustNew(t, Config{
		MemoryBytes: 1 << 14,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	})
	line := make([]byte, LineBytes)
	for i := 0; i < 32; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Stats()
	if len(snap.Increments) == 0 || snap.Increments[0] == 0 {
		t.Fatal("expected nonzero level-0 increments after writes")
	}
	want := snap.Increments[0]

	// Scribble on the snapshot; the engine must be unaffected.
	for i := range snap.Increments {
		snap.Increments[i] = ^uint64(0)
		snap.Overflows[i] = ^uint64(0)
		snap.Rebases[i] = ^uint64(0)
		snap.SetResets[i] = ^uint64(0)
		snap.FormatSwitches[i] = ^uint64(0)
	}
	fresh := m.Stats()
	if fresh.Increments[0] != want {
		t.Fatalf("engine stats aliased by caller mutation: increments[0] = %d, want %d", fresh.Increments[0], want)
	}

	// Keep writing; the earlier snapshot must stay frozen.
	before := fresh.Clone()
	for i := 0; i < 32; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}
	if fresh.Increments[0] != before.Increments[0] {
		t.Fatalf("snapshot aliased by engine mutation: increments[0] moved %d -> %d", before.Increments[0], fresh.Increments[0])
	}
}

// TestStatsConcurrentReaders hammers Stats() from readers that mutate their
// copies while writers drive the engine — under -race this fails if any
// slice is shared between the engine and a caller.
func TestStatsConcurrentReaders(t *testing.T) {
	m := mustNew(t, Config{
		MemoryBytes: 1 << 14,
		Enc:         counters.MorphSpec(true),
		Tree:        []counters.Spec{counters.MorphSpec(true)},
		Key:         testKey,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			line := make([]byte, LineBytes)
			for i := 0; i < 200; i++ {
				addr := uint64((w*200+i)%256) * LineBytes
				if err := m.Write(addr, line); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := m.Stats()
				for j := range s.Increments {
					s.Increments[j]++ // must be our private copy
				}
			}
		}()
	}
	wg.Wait()
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, Reencryptions: 3, VerifiedFetches: 4, Increments: []uint64{1, 2}, Overflows: []uint64{1}, Rebases: []uint64{5}, SetResets: []uint64{1}, FormatSwitches: []uint64{2}}
	b := Stats{Reads: 10, Writes: 20, Reencryptions: 30, VerifiedFetches: 40, Increments: []uint64{1, 2, 3}, Overflows: []uint64{1, 1}, Rebases: []uint64{1}, SetResets: []uint64{0, 3}, FormatSwitches: []uint64{1, 1, 1}}
	a.Merge(b)
	if a.Reads != 11 || a.Writes != 22 || a.Reencryptions != 33 || a.VerifiedFetches != 44 {
		t.Fatalf("scalar merge wrong: %+v", a)
	}
	wantInc := []uint64{2, 4, 3}
	for i, v := range wantInc {
		if a.Increments[i] != v {
			t.Fatalf("Increments[%d] = %d, want %d", i, a.Increments[i], v)
		}
	}
	if a.Overflows[0] != 2 || a.Overflows[1] != 1 || a.Rebases[0] != 6 {
		t.Fatalf("level merge wrong: %+v", a)
	}
	if a.SetResets[0] != 1 || a.SetResets[1] != 3 {
		t.Fatalf("SetResets merge wrong: %v", a.SetResets)
	}
	if a.FormatSwitches[0] != 3 || a.FormatSwitches[1] != 1 || a.FormatSwitches[2] != 1 {
		t.Fatalf("FormatSwitches merge wrong: %v", a.FormatSwitches)
	}
}

func TestOverflowsByLevel(t *testing.T) {
	s := Stats{
		Overflows:      []uint64{10, 4},
		SetResets:      []uint64{7, 0},
		Rebases:        []uint64{2, 1},
		FormatSwitches: []uint64{5, 0},
	}
	rows := s.OverflowsByLevel()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Level 0: 10 overflows of which 7 were per-set resets -> 3 full.
	if rows[0] != (LevelOverflow{Level: 0, FullResets: 3, SetResets: 7, Rebases: 2, FormatSwitches: 5}) {
		t.Fatalf("level 0 row = %+v", rows[0])
	}
	if rows[1] != (LevelOverflow{Level: 1, FullResets: 4, SetResets: 0, Rebases: 1, FormatSwitches: 0}) {
		t.Fatalf("level 1 row = %+v", rows[1])
	}
}
