package durable

import (
	"testing"

	"github.com/securemem/morphtree/internal/obs"
)

// TestObsInstrumentation checks the durability layer's histograms, trace
// events, and the RegisterMetrics collector against exact fsync/append
// counts under SyncAlways.
func TestObsInstrumentation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	shcfg := testShardConfig(t, 2, 1<<13)
	shcfg.Obs = reg
	shcfg.Tracer = tr
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways, Obs: reg, Tracer: tr})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	m.RegisterMetrics(reg)

	line := make([]byte, LineBytes)
	const writes = 12
	for i := 0; i < writes; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}

	st := m.Durability()
	snap := reg.Snapshot()

	fh := snap.Histograms["wal.fsync.latency"]
	if fh.Count != st.Fsyncs {
		t.Fatalf("fsync latency samples = %d, want %d (= Stats.Fsyncs)", fh.Count, st.Fsyncs)
	}
	if fh.Count == 0 || fh.P50 == 0 {
		t.Fatalf("fsync latency histogram empty or zero p50: %+v", fh)
	}
	bh := snap.Histograms["wal.group_commit.batch"]
	if bh.Count != st.Fsyncs {
		t.Fatalf("batch samples = %d, want %d", bh.Count, st.Fsyncs)
	}
	// Every record made durable is counted in exactly one batch: the sum
	// of batch sizes equals appends + audit records.
	if bh.Sum != st.Appends+st.AuditRecords {
		t.Fatalf("batch sum = %d, want appends %d + audits %d", bh.Sum, st.Appends, st.AuditRecords)
	}
	if got := tr.Count(obs.KindWALFsync); got != st.Fsyncs {
		t.Fatalf("WALFsync events = %d, want %d", got, st.Fsyncs)
	}
	if snap.Counters["durable.appends"] != writes {
		t.Fatalf("durable.appends = %d, want %d", snap.Counters["durable.appends"], writes)
	}
	if snap.Counters["durable.fsyncs"] != st.Fsyncs {
		t.Fatalf("durable.fsyncs = %d, want %d", snap.Counters["durable.fsyncs"], st.Fsyncs)
	}
	// Shard engine collectors came along via RegisterMetrics delegation.
	if snap.Counters["secmem.writes"] != writes {
		t.Fatalf("secmem.writes = %d, want %d", snap.Counters["secmem.writes"], writes)
	}

	// Checkpoint: latency histogram + Snapshot event carrying the epoch.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	ch := snap.Histograms["durable.checkpoint.latency"]
	if ch.Count != 1 || ch.Max == 0 {
		t.Fatalf("checkpoint latency histogram = %+v, want 1 nonzero sample", ch)
	}
	if got := tr.Count(obs.KindSnapshot); got != 1 {
		t.Fatalf("Snapshot events = %d, want 1", got)
	}
	var saw bool
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindSnapshot {
			saw = true
			if ev.A != m.Seq() {
				t.Fatalf("Snapshot event epoch = %d, want %d", ev.A, m.Seq())
			}
			if ev.Dur <= 0 {
				t.Fatal("Snapshot event has no duration")
			}
		}
	}
	if !saw {
		t.Fatal("no Snapshot event in ring")
	}
	if snap.Counters["durable.seq"] != m.Seq() {
		t.Fatalf("durable.seq = %d, want %d", snap.Counters["durable.seq"], m.Seq())
	}
	if snap.Counters["durable.checkpoints"] != 2 { // bootstrap + explicit
		t.Fatalf("durable.checkpoints = %d, want 2", snap.Counters["durable.checkpoints"])
	}
}

// TestObsGroupCommitBatches checks concurrent SyncAlways writers share
// fsyncs and the batch histogram still accounts for every record.
func TestObsGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	shcfg := testShardConfig(t, 1, 1<<12)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways, NoAudit: true, Obs: reg})
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	const workers, perWorker = 4, 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			line := make([]byte, LineBytes)
			var err error
			for i := 0; i < perWorker && err == nil; i++ {
				err = m.Write(uint64((w*perWorker+i)%16)*LineBytes, line)
			}
			done <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	bh := snap.Histograms["wal.group_commit.batch"]
	if bh.Sum != workers*perWorker {
		t.Fatalf("batch sum = %d, want %d (every append durable in exactly one batch)", bh.Sum, workers*perWorker)
	}
	if bh.Count != m.Durability().Fsyncs {
		t.Fatalf("batch samples = %d, want %d fsyncs", bh.Count, m.Durability().Fsyncs)
	}
}

// TestObsUninstrumented makes sure the nil-registry path works end to end
// (writes, checkpoint, close) with no instruments attached.
func TestObsUninstrumented(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, testShardConfig(t, 1, 1<<12), Config{Dir: dir, Sync: SyncAlways})
	line := make([]byte, LineBytes)
	for i := 0; i < 4; i++ {
		if err := m.Write(uint64(i)*LineBytes, line); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
