package durable

import (
	"bytes"
	"testing"

	"github.com/securemem/morphtree/internal/wal"
)

// replPair opens a primary (with a replication ring) and a cold replica
// (NoAudit, own dir) over the same shard geometry.
func replPair(t *testing.T, shards int, ringCap int) (*Memory, *Memory) {
	t.Helper()
	shcfg := testShardConfig(t, shards, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: ringCap, NoAudit: true})
	r, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: ringCap, NoAudit: true})
	t.Cleanup(func() { _ = p.Close(); _ = r.Close() })
	return p, r
}

// pump streams every shard of src to dst via the cursor API until dst's
// watermarks match src's, returning the record count shipped.
func pump(t *testing.T, src, dst *Memory) int {
	t.Helper()
	shipped := 0
	for {
		moved := false
		marks := dst.SyncedLSNs()
		for i := 0; i < src.NumShards(); i++ {
			recs, ok, err := src.ReadRecords(i, marks[i], 64)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("shard %d: cursor at %d not servable (history truncated)", i, marks[i])
			}
			if len(recs) == 0 {
				continue
			}
			if err := dst.ApplyReplicated(i, recs); err != nil {
				t.Fatal(err)
			}
			shipped += len(recs)
			moved = true
		}
		if !moved {
			return shipped
		}
	}
}

func TestReplicationRoundTripViaRing(t *testing.T) {
	p, r := replPair(t, 2, 1024)
	const n = 40
	for i := 0; i < n; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := pump(t, p, r); got != n {
		t.Fatalf("shipped %d records, want %d", got, n)
	}
	pm, rm := p.SyncedLSNs(), r.SyncedLSNs()
	for i := range pm {
		if pm[i] != rm[i] {
			t.Fatalf("shard %d: replica watermark %d != primary %d", i, rm[i], pm[i])
		}
	}
	for i := 0; i < n; i++ {
		addr := uint64(i) * LineBytes
		got, err := r.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(addr, uint64(i))) {
			t.Fatalf("replica line %#x diverged", addr)
		}
	}
	if err := r.VerifyAll(); err != nil {
		t.Fatalf("replica tree integrity after replication: %v", err)
	}
}

// TestReplicationFileFallback disables the ring so every cursor read takes
// the wal.ReplayRange path over the live segment.
func TestReplicationFileFallback(t *testing.T) {
	shcfg := testShardConfig(t, 1, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, NoAudit: true})
	r, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, NoAudit: true})
	defer func() { _ = p.Close(); _ = r.Close() }()
	const n = 12
	for i := 0; i < n; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 7)); err != nil {
			t.Fatal(err)
		}
	}
	// Ship in two chunks to exercise a genuinely mid-log cursor.
	recs, ok, err := p.ReadRecords(0, 0, 5)
	if err != nil || !ok || len(recs) != 5 {
		t.Fatalf("ReadRecords = %d recs, ok=%v, err=%v; want 5, true, nil", len(recs), ok, err)
	}
	if err := r.ApplyReplicated(0, recs); err != nil {
		t.Fatal(err)
	}
	if got := pump(t, p, r); got != n-5 {
		t.Fatalf("second pump shipped %d, want %d", got, n-5)
	}
	if err := r.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationCursorBehindCheckpoint: once a checkpoint truncates the
// log, a cursor before the covered LSN must report not-servable (snapshot
// bootstrap), never silently skip records.
func TestReplicationCursorBehindCheckpoint(t *testing.T) {
	shcfg := testShardConfig(t, 1, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, NoAudit: true})
	defer func() { _ = p.Close() }()
	for i := 0; i < 8; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Ring disabled → the file no longer holds LSNs 1..8.
	if _, ok, err := p.ReadRecords(0, 3, 16); err != nil || ok {
		t.Fatalf("cursor behind checkpoint: ok=%v err=%v, want false, nil", ok, err)
	}
	// At the watermark exactly: caught up, servable.
	if recs, ok, err := p.ReadRecords(0, 8, 16); err != nil || !ok || len(recs) != 0 {
		t.Fatalf("cursor at watermark: %d recs, ok=%v, err=%v; want 0, true, nil", len(recs), ok, err)
	}
}

// TestApplyReplicatedRejectsGap: a batch that does not continue the local
// sequence must be refused before anything is journaled.
func TestApplyReplicatedRejectsGap(t *testing.T) {
	p, r := replPair(t, 1, 64)
	for i := 0; i < 3; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 2)); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := p.ReadRecords(0, 1, 16) // starts at LSN 2: gap for a cold replica
	if err != nil || len(recs) == 0 {
		t.Fatalf("ReadRecords: %d recs, err=%v", len(recs), err)
	}
	if err := r.ApplyReplicated(0, recs); err == nil {
		t.Fatal("gap batch applied without error")
	}
	if marks := r.SyncedLSNs(); marks[0] != 0 {
		t.Fatalf("replica watermark %d after rejected batch, want 0", marks[0])
	}
}

// TestApplyReplicatedSurvivesRestart: a replica crash-restarts and its
// recovered watermark equals what it had acknowledged, so streaming resumes
// exactly where it stopped.
func TestApplyReplicatedSurvivesRestart(t *testing.T) {
	shcfg := testShardConfig(t, 2, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: 256, NoAudit: true})
	defer func() { _ = p.Close() }()
	rdir := t.TempDir()
	r, _ := mustOpen(t, shcfg, Config{Dir: rdir, Sync: SyncAlways, NoAudit: true})
	const n = 20
	for i := 0; i < n; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 3)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, p, r)
	before := r.SyncedLSNs()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, info := mustOpen(t, shcfg, Config{Dir: rdir, Sync: SyncAlways, NoAudit: true})
	defer func() { _ = r2.Close() }()
	after := r2.SyncedLSNs()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("shard %d: recovered watermark %d, want %d", i, after[i], before[i])
		}
	}
	if info.ReplayedWrites == 0 {
		t.Fatal("expected the replica's own WAL to replay on restart")
	}
	// More primary writes, then resume streaming into the restarted replica.
	for i := n; i < n+6; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 3)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, p, r2)
	if err := r2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveMarksInstallSnapshotBootstrap: a cold follower bootstraps from a
// SaveMarks blob and then streams the suffix.
func TestSaveMarksInstallSnapshotBootstrap(t *testing.T) {
	shcfg := testShardConfig(t, 2, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: 8, NoAudit: true})
	defer func() { _ = p.Close() }()
	const n = 30
	for i := 0; i < n; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 4)); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	marks, err := p.SaveMarks(&blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := InstallSnapshot(shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, NoAudit: true}, &blob, marks)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	got := r.SyncedLSNs()
	for i := range marks {
		if got[i] != marks[i] {
			t.Fatalf("shard %d: bootstrap watermark %d, want %d", i, got[i], marks[i])
		}
	}
	// Suffix after the snapshot streams incrementally.
	for i := n; i < n+10; i++ {
		addr := uint64(i) * LineBytes
		if err := p.Write(addr, fill(addr, 4)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, p, r)
	for i := 0; i < n+10; i++ {
		addr := uint64(i) * LineBytes
		got, err := r.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(addr, 4)) {
			t.Fatalf("line %#x diverged after bootstrap+stream", addr)
		}
	}
	if err := r.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRingEviction: a tiny ring forces eviction; cursors inside the ring
// serve from memory, cursors behind it fall back to the segment file and
// still deliver everything.
func TestRingEviction(t *testing.T) {
	shcfg := testShardConfig(t, 1, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: 4, NoAudit: true})
	defer func() { _ = p.Close() }()
	const n = 25
	for i := 0; i < n; i++ {
		addr := uint64(i%8) * LineBytes
		if err := p.Write(addr, fill(addr, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var lsns []uint64
	cursor := uint64(0)
	for {
		recs, ok, err := p.ReadRecords(0, cursor, 3)
		if err != nil || !ok {
			t.Fatalf("cursor %d: ok=%v err=%v", cursor, ok, err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			lsns = append(lsns, r.LSN)
		}
		cursor = recs[len(recs)-1].LSN
	}
	if len(lsns) != n {
		t.Fatalf("delivered %d records, want %d", len(lsns), n)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, lsn, i+1)
		}
	}
}

// TestDurableSignalFires: the signal channel closes when a write becomes
// durable.
func TestDurableSignalFires(t *testing.T) {
	shcfg := testShardConfig(t, 1, 64<<10)
	p, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, NoAudit: true})
	defer func() { _ = p.Close() }()
	ch := p.DurableSignal()
	if err := p.Write(0, fill(0, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("DurableSignal not closed by a SyncAlways write")
	}
}

// TestApplyReplicatedAuditRecords: audit records in the stream journal as
// no-ops and advance the watermark.
func TestApplyReplicatedAuditRecords(t *testing.T) {
	_, r := replPair(t, 1, 64)
	recs := []wal.Record{
		{Kind: wal.KindWrite, LSN: 1, Addr: 0, Line: fill(0, 9)},
		{Kind: wal.KindOverflow, LSN: 2, Count: 3},
		{Kind: wal.KindRebase, LSN: 3, Count: 1},
	}
	if err := r.ApplyReplicated(0, recs); err != nil {
		t.Fatal(err)
	}
	if marks := r.SyncedLSNs(); marks[0] != 3 {
		t.Fatalf("watermark %d, want 3", marks[0])
	}
}
