package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/secmem"
)

// writeSome journals n distinct line writes spread over both shards and
// returns the addresses written.
func writeSome(t *testing.T, m *Memory, seed, n uint64) []uint64 {
	t.Helper()
	addrs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		addr := (seed*131 + i*7) % (m.MemoryBytes() / LineBytes) * LineBytes
		if err := m.Write(addr, fill(addr, seed+i)); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	return addrs
}

func verifyAddrs(t *testing.T, a, b *Memory, addrs []uint64) {
	t.Helper()
	for _, addr := range addrs {
		want, err := a.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Read(addr)
		if err != nil {
			t.Fatalf("read %#x after recovery: %v", addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("line %#x mismatch after recovery", addr)
		}
	}
}

func listEpochFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}

func TestDeltaCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	addrs := writeSome(t, m, 1, 40)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if m.Seq() != 2 || m.SegSeq() != 1 || m.DeltaChainLen() != 1 {
		t.Fatalf("after delta: seq=%d segSeq=%d chain=%d", m.Seq(), m.SegSeq(), m.DeltaChainLen())
	}
	addrs = append(addrs, writeSome(t, m, 2, 30)...)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	// WAL tail past the chain.
	addrs = append(addrs, writeSome(t, m, 3, 20)...)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	re, info, err := Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.DeltasApplied != 2 || info.DeltaLines == 0 {
		t.Fatalf("recovery applied %d deltas (%d lines), want 2", info.DeltasApplied, info.DeltaLines)
	}
	if info.SnapshotSeq != 1 {
		t.Fatalf("recovered from snapshot %d, want base 1", info.SnapshotSeq)
	}
	if re.Seq() != 3 || re.SegSeq() != 1 {
		t.Fatalf("reopened seq=%d segSeq=%d, want 3/1", re.Seq(), re.SegSeq())
	}
	verifyAddrs(t, m, re, addrs)
	if err := re.VerifyAll(); err != nil {
		t.Fatal(err)
	}

	// The reopened memory keeps working: write, delta, full, reopen.
	addrs = append(addrs, writeSome(t, re, 4, 10)...)
	if err := re.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if re.DeltaChainLen() != 0 {
		t.Fatalf("chain after compaction = %d, want 0", re.DeltaChainLen())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, _, err := Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	verifyAddrs(t, re, re2, addrs)
}

func TestDeltaRecoveryMatchesFullReplay(t *testing.T) {
	// The same write sequence recovered two ways — via delta chain and via
	// pure WAL replay — must agree line for line.
	shcfg := testShardConfig(t, 2, 1<<13)
	dirA, dirB := t.TempDir(), t.TempDir()
	ma, _ := mustOpen(t, shcfg, Config{Dir: dirA, Sync: SyncAlways})
	mb, _ := mustOpen(t, shcfg, Config{Dir: dirB, Sync: SyncAlways})
	var addrs []uint64
	for round := uint64(0); round < 3; round++ {
		for i := uint64(0); i < 25; i++ {
			addr := (round*97 + i*13) % (ma.MemoryBytes() / LineBytes) * LineBytes
			line := fill(addr, round*100+i)
			if err := ma.Write(addr, line); err != nil {
				t.Fatal(err)
			}
			if err := mb.Write(addr, line); err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, addr)
		}
		if err := ma.CheckpointDelta(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ma.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	ra, ia, err := Open(shcfg, Config{Dir: dirA, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, ib, err := Open(shcfg, Config{Dir: dirB, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if ia.DeltasApplied != 3 {
		t.Fatalf("delta path applied %d deltas, want 3", ia.DeltasApplied)
	}
	if ib.DeltasApplied != 0 || ib.ReplayedWrites != 75 {
		t.Fatalf("replay path: %d deltas, %d writes", ib.DeltasApplied, ib.ReplayedWrites)
	}
	// Delta recovery replays only the tail past the chain.
	if ia.ReplayedWrites != 0 {
		t.Fatalf("delta path replayed %d WAL writes, want 0 (chain covers them)", ia.ReplayedWrites)
	}
	verifyAddrs(t, ra, rb, addrs)
}

func TestCompactionSweepsDeltaChain(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	defer m.Close()
	writeSome(t, m, 1, 10)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	writeSome(t, m, 2, 10)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := m.Durability()
	if st.DeltaCheckpoints != 2 || st.Compactions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	for _, name := range listEpochFiles(t, dir) {
		if strings.HasPrefix(name, "delta.") {
			t.Fatalf("compaction left delta %s behind", name)
		}
		if seq, _, _, ok := parseSeq(name); ok && seq != 4 {
			t.Fatalf("compaction left epoch-%d file %s behind", seq, name)
		}
	}
}

func TestOrphanedDeltaSweptAtRecovery(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	writeSome(t, m, 1, 10)
	if err := m.CheckpointDelta(); err != nil { // delta.2.1
		t.Fatal(err)
	}
	addrs := writeSome(t, m, 2, 10)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that interrupted compaction cleanup: a newer full
	// snapshot exists, and the old chain's base was already removed —
	// delta.2.1 is an orphan (its base snapshot is gone, but it is not
	// the recovery head).
	m2, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	if err := m2.Checkpoint(); err != nil { // snapshot.3, sweeps old files
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := ckpt.DeltaPath(dir, 2, 1)
	if err := os.WriteFile(orphan, []byte("stale orphan resurrected by backup restore"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, _, err := Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan delta survived recovery sweep: %v", err)
	}
	verifyAddrs(t, m2, re, addrs)
}

func TestMissingBaseFailsRecoveryTyped(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	writeSome(t, m, 1, 10)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the base snapshot: the head delta now references a missing
	// epoch. Recovery must fail with the typed chain error — never fall
	// back to replaying some older state as if the delta didn't exist.
	if err := os.Remove(SnapshotPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	var ce *ckpt.ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("recovery with missing base: got %v, want *ckpt.ChainError", err)
	}
	if ce.Head != 2 || ce.Missing != 1 {
		t.Fatalf("chain error %+v, want head 2 missing 1", ce)
	}
}

func TestKeepEpochsRetainsChains(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	cfg := Config{Dir: dir, Sync: SyncAlways, KeepEpochs: 3}
	m, _ := mustOpen(t, shcfg, cfg)
	defer m.Close()
	writeSome(t, m, 1, 10)
	if err := m.CheckpointDelta(); err != nil { // 2 (chain on 1)
		t.Fatal(err)
	}
	writeSome(t, m, 2, 10)
	if err := m.Checkpoint(); err != nil { // 3 (compaction)
		t.Fatal(err)
	}
	writeSome(t, m, 3, 10)
	if err := m.Checkpoint(); err != nil { // 4
		t.Fatal(err)
	}
	// Floor is 4-3=1: every epoch is retained, and crucially snapshot 1
	// stays because retained delta 2 chains to it.
	have := map[string]bool{}
	for _, name := range listEpochFiles(t, dir) {
		have[name] = true
	}
	for _, want := range []string{
		filepath.Base(SnapshotPath(dir, 1)),
		ckpt.DeltaName(2, 1),
		filepath.Base(SnapshotPath(dir, 3)),
		filepath.Base(SnapshotPath(dir, 4)),
	} {
		if !have[want] {
			t.Fatalf("retention dropped %s; have %v", want, listEpochFiles(t, dir))
		}
	}
	writeSome(t, m, 4, 10)
	if err := m.Checkpoint(); err != nil { // 5: floor 2 → snapshot 1 still needed by delta 2
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(dir, 1)); err != nil {
		t.Fatalf("retention orphaned delta 2 by dropping its base: %v", err)
	}
	writeSome(t, m, 5, 10)
	if err := m.Checkpoint(); err != nil { // 6: floor 3 → delta 2 ages out, base 1 with it
		t.Fatal(err)
	}
	for _, gone := range []string{filepath.Base(SnapshotPath(dir, 1)), ckpt.DeltaName(2, 1)} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s should have aged out: %v", gone, err)
		}
	}
	if _, err := os.Stat(SnapshotPath(dir, 3)); err != nil {
		t.Fatalf("retained epoch 3 missing: %v", err)
	}
}

func TestTamperedDeltaFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	writeSome(t, m, 1, 10)
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := ckpt.DeltaPath(dir, 2, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	if !isIntegrityError(err) {
		t.Fatalf("tampered delta recovery: got %v, want IntegrityError", err)
	}
}

func TestDirtyFloorSurvivesFailedDelta(t *testing.T) {
	// A delta cut whose file write fails must not lose the dirty lines:
	// the next successful cut re-collects them.
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	addrs := writeSome(t, m, 1, 10)
	// Make the directory read-only so WriteDelta's temp file fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	err := m.CheckpointDelta()
	if err2 := os.Chmod(dir, 0o755); err2 != nil {
		t.Fatal(err2)
	}
	if err == nil {
		t.Skip("running as a user unaffected by directory permissions")
	}
	if m.Seq() != 1 {
		t.Fatalf("failed delta advanced seq to %d", m.Seq())
	}
	if err := m.CheckpointDelta(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(shcfg, Config{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.DeltasApplied != 1 {
		t.Fatalf("recovered %d deltas, want 1", info.DeltasApplied)
	}
	verifyAddrs(t, m, re, addrs)
}

func TestFenceShardRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	defer m.Close()
	addrs := writeSome(t, m, 1, 8)
	final, err := m.FenceShard(0)
	if err != nil {
		t.Fatal(err)
	}
	// Find an address on shard 0 and one on shard 1.
	var a0, a1 uint64
	found0, found1 := false, false
	for _, addr := range addrs {
		idx, _, err := m.Sharded().Locate(addr)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 && !found0 {
			a0, found0 = addr, true
		}
		if idx == 1 && !found1 {
			a1, found1 = addr, true
		}
	}
	if !found0 || !found1 {
		t.Fatal("addresses did not cover both shards")
	}
	err = m.Write(a0, fill(a0, 99))
	var fe *ShardFencedError
	if !errors.As(err, &fe) || fe.Shard != 0 {
		t.Fatalf("write to fenced shard: got %v, want *ShardFencedError{0}", err)
	}
	if err := m.Write(a1, fill(a1, 99)); err != nil {
		t.Fatalf("write to unfenced shard: %v", err)
	}
	if final == 0 {
		t.Fatal("fence returned zero final LSN")
	}
	m.UnfenceShard(0)
	if err := m.Write(a0, fill(a0, 100)); err != nil {
		t.Fatalf("write after unfence: %v", err)
	}
}

func TestShardStreamMigration(t *testing.T) {
	// Donor → recipient shard ship: spill, install, tail, and the
	// cut-over checkpoint; recipient state must match the donor exactly.
	shcfg := testShardConfig(t, 2, 1<<13)
	donor, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways, ReplHistory: 4096})
	defer donor.Close()
	recip, _ := mustOpen(t, shcfg, Config{Dir: t.TempDir(), Sync: SyncAlways})
	defer recip.Close()
	addrs := writeSome(t, donor, 1, 40)

	var spill bytes.Buffer
	mark, err := donor.SaveShardStream(1, &spill)
	if err != nil {
		t.Fatal(err)
	}
	if mark == 0 {
		t.Fatal("zero mark")
	}

	// A forged stream must be rejected without touching the recipient.
	forged := append([]byte(nil), spill.Bytes()...)
	forged[len(forged)-1] ^= 0x01
	if err := recip.InstallShardStream(1, bytes.NewReader(forged), mark); err == nil {
		t.Fatal("forged stream installed")
	}

	if err := recip.InstallShardStream(1, bytes.NewReader(spill.Bytes()), mark); err != nil {
		t.Fatal(err)
	}

	// Donor keeps writing; ship the tail.
	addrs = append(addrs, writeSome(t, donor, 2, 20)...)
	final, err := donor.FenceShard(1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		recs, ok, err := donor.ReadRecords(1, recip.AppliedLSNs()[1], 64)
		if err != nil || !ok {
			t.Fatalf("tail read: ok=%v err=%v", ok, err)
		}
		if len(recs) == 0 {
			break
		}
		if err := recip.ApplyMigrated(1, recs); err != nil {
			t.Fatal(err)
		}
	}
	if got := recip.AppliedLSNs()[1]; got != final {
		t.Fatalf("recipient caught up to %d, want %d", got, final)
	}
	// Cut-over: the recipient makes the migrated shard durable.
	if err := recip.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		idx, _, err := donor.Sharded().Locate(addr)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			continue
		}
		want, err := donor.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recip.Read(addr)
		if err != nil {
			t.Fatalf("recipient read %#x: %v", addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("line %#x mismatch after migration", addr)
		}
	}
	// And it survives a restart on the recipient's own files.
	if err := recip.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := Open(shcfg, Config{Dir: recip.cfg.Dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, addr := range addrs {
		if idx, _, _ := donor.Sharded().Locate(addr); idx != 1 {
			continue
		}
		want, _ := donor.Read(addr)
		got, err := re.Read(addr)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("migrated line %#x lost across recipient restart: %v", addr, err)
		}
	}
}

func isIntegrityError(err error) bool {
	var ie *secmem.IntegrityError
	return errors.As(err, &ie)
}
