package durable

import (
	"fmt"
	"os"
	"time"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/wal"
)

// CheckpointDelta cuts an incremental checkpoint: the lines modified since
// the previous checkpoint (full or delta), chained to it by epoch. Unlike
// Checkpoint it does not rotate WAL segments — segments stay keyed to the
// base snapshot's epoch, and recovery replays base + delta chain + the
// segment tail past the chain's covered LSN.
//
// The stall budget is the point: writers are frozen only while the dirty
// lines are copied in memory (copy-on-checkpoint); the WAL fsync that
// makes the covered prefix durable rides the ordinary group-commit path,
// and all delta file I/O happens outside every shard lock. A crash at any
// point leaves either no delta (a .tmp recovery sweeps) or a complete,
// authenticated one; the dirty floor only advances after the rename, so a
// failed cut re-collects the same lines next time.
func (m *Memory) CheckpointDelta() error {
	if m.closed.Load() {
		return fmt.Errorf("durable: delta checkpoint after Close")
	}
	start := time.Now()
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	covered := make([]uint64, len(m.commits))
	coveredWrites := make([]uint64, len(m.commits))
	cuts := make([]uint32, len(m.commits))
	lines := make([][]secmem.DirtyLine, len(m.commits))

	// Freeze: sync locks then append locks, matching syncTo's ordering.
	// Only the in-memory dirty copy happens inside; every lock is released
	// before the group-commit fsyncs and file I/O below.
	for _, c := range m.commits {
		c.syncMu.Lock()
	}
	for _, c := range m.commits {
		c.mu.Lock()
	}
	var ferr error
	for i, c := range m.commits {
		if !m.cfg.NoAudit {
			if ferr = c.appendAuditLocked(m); ferr != nil {
				break
			}
		}
		covered[i] = c.lsn
		coveredWrites[i] = c.writes
		sh := lines[i]
		cuts[i] = c.eng.CollectDirty(func(d secmem.DirtyLine) { sh = append(sh, d) })
		lines[i] = sh
	}
	for i := len(m.commits) - 1; i >= 0; i-- {
		m.commits[i].mu.Unlock()
	}
	for i := len(m.commits) - 1; i >= 0; i-- {
		m.commits[i].syncMu.Unlock()
	}
	if ferr != nil {
		return ferr
	}

	// The delta claims coverage up to covered[i]; fsync that prefix so a
	// post-crash segment never ends below it (replay past the chain needs
	// a contiguous tail). This is a plain group commit — no freeze.
	for i, c := range m.commits {
		if err := c.syncTo(m, covered[i]); err != nil {
			return err
		}
	}

	oldSeq := m.seq.Load()
	newSeq := oldSeq + 1
	hdr := ckpt.DeltaHeader{Seq: newSeq, Base: oldSeq, CoveredLSN: covered, CoveredWrites: coveredWrites}
	path := ckpt.DeltaPath(m.cfg.Dir, newSeq, oldSeq)
	if err := ckpt.WriteDelta(path, deltaKey(m.shcfg.Mem.Key), hdr, lines); err != nil {
		return err
	}
	if err := wal.SyncDir(m.cfg.Dir); err != nil {
		return err
	}

	// The delta is durable: commit the dirty floor and advance the epoch.
	var total uint64
	for i, c := range m.commits {
		c.eng.CommitDirty(cuts[i])
		total += uint64(len(lines[i]))
	}
	m.seq.Store(newSeq)
	m.deltaCkpts.Add(1)
	if st, err := os.Stat(path); err == nil {
		m.deltaBytes.Add(uint64(st.Size()))
	}
	var firstErr error
	if err := m.removeEpochsBelow(newSeq); err != nil {
		firstErr = err
	}
	dur := time.Since(start)
	m.deltaLat.Record(dur)
	m.tracer.Emit(obs.KindDeltaCkpt, -1, newSeq, total, dur)
	return firstErr
}
