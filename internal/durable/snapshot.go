package durable

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
)

// Snapshot file format (integers little-endian):
//
//	magic "MDSS" | u64 version | u64 seq | u64 nshards |
//	nshards × (u64 coveredLSN, u64 coveredWrites) |
//	shard.Save blob | 32-byte HMAC-SHA256 over everything before it
//
// The trailing keyed MAC authenticates the whole file — including the
// on-chip root the shard blob carries and the coverage header replay
// starts from — so any at-rest edit fails recovery with an
// *secmem.IntegrityError. (Substituting an entire older, self-consistent
// {snapshot, WAL} directory is rollback, which needs the root anchored in
// trusted storage and is documented out of scope; see DESIGN.md §10.)
const (
	snapMagic   = "MDSS"
	snapVersion = 1
	snapMACLen  = sha256.Size
)

// SnapshotPath names epoch seq's snapshot file.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot.%016x", seq))
}

// SegmentPath names a shard's WAL segment for epoch seq.
func SegmentPath(dir string, seq uint64, shardIdx int) string {
	return filepath.Join(dir, fmt.Sprintf("wal.%016x-%04d", seq, shardIdx))
}

// parseSeq extracts the epoch from a snapshot, delta, or segment file
// name (a delta's epoch is its own seq, not its base).
func parseSeq(name string) (seq uint64, shardIdx int, isSnap bool, ok bool) {
	switch {
	case strings.HasPrefix(name, "snapshot."):
		s, err := strconv.ParseUint(strings.TrimPrefix(name, "snapshot."), 16, 64)
		return s, 0, true, err == nil
	case strings.HasPrefix(name, "delta."):
		s, _, ok := ckpt.ParseDeltaName(name)
		return s, 0, false, ok
	case strings.HasPrefix(name, "wal."):
		rest := strings.TrimPrefix(name, "wal.")
		dash := strings.IndexByte(rest, '-')
		if dash < 0 {
			return 0, 0, false, false
		}
		s, err1 := strconv.ParseUint(rest[:dash], 16, 64)
		i, err2 := strconv.Atoi(rest[dash+1:])
		return s, i, false, err1 == nil && err2 == nil
	}
	return 0, 0, false, false
}

// writeSnapshot captures the engine state as snapshot.<seq> via temp file,
// fsync, atomic rename, and directory fsync. Callers hold every shard's
// locks, so the state is frozen for the duration.
func (m *Memory) writeSnapshot(seq uint64, covered, coveredWrites []uint64) error {
	final := SnapshotPath(m.cfg.Dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	h := hmac.New(sha256.New, m.snapKey)
	bw := bufio.NewWriter(io.MultiWriter(f, h))
	werr := func() error {
		if _, err := bw.WriteString(snapMagic); err != nil {
			return err
		}
		var hdr [24]byte
		binary.LittleEndian.PutUint64(hdr[0:], snapVersion)
		binary.LittleEndian.PutUint64(hdr[8:], seq)
		binary.LittleEndian.PutUint64(hdr[16:], uint64(len(covered)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var pos [16]byte
		for i := range covered {
			binary.LittleEndian.PutUint64(pos[0:], covered[i])
			binary.LittleEndian.PutUint64(pos[8:], coveredWrites[i])
			if _, err := bw.Write(pos[:]); err != nil {
				return err
			}
		}
		if err := m.sh.Save(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if _, err := f.Write(h.Sum(nil)); err != nil {
			return err
		}
		return f.Sync()
	}()
	if werr != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: snapshot %s: %w", tmp, werr)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: snapshot %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	return wal.SyncDir(m.cfg.Dir)
}

// readSnapshot authenticates and loads snapshot.<seq>. Rename atomicity
// means a named snapshot is complete, so any malformation or MAC mismatch
// is at-rest tampering, reported as *secmem.IntegrityError.
func readSnapshot(path string, seq uint64, snapKey []byte, shcfg shard.Config) (*shard.Sharded, []uint64, []uint64, error) {
	tamper := func(reason string) error {
		return &secmem.IntegrityError{Level: -1, Index: seq, Reason: "snapshot " + path + ": " + reason}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: read snapshot: %w", err)
	}
	minLen := len(snapMagic) + 24 + snapMACLen
	if len(data) < minLen {
		return nil, nil, nil, tamper(fmt.Sprintf("%d bytes, shorter than any valid snapshot", len(data)))
	}
	body, macGot := data[:len(data)-snapMACLen], data[len(data)-snapMACLen:]
	h := hmac.New(sha256.New, snapKey)
	h.Write(body)
	if !hmac.Equal(h.Sum(nil), macGot) {
		return nil, nil, nil, tamper("file MAC mismatch (at-rest tampering)")
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, nil, nil, tamper("bad magic")
	}
	body = body[len(snapMagic):]
	if v := binary.LittleEndian.Uint64(body[0:]); v != snapVersion {
		return nil, nil, nil, tamper(fmt.Sprintf("unsupported version %d", v))
	}
	if s := binary.LittleEndian.Uint64(body[8:]); s != seq {
		return nil, nil, nil, tamper(fmt.Sprintf("embedded seq %d does not match filename seq %d", s, seq))
	}
	n := binary.LittleEndian.Uint64(body[16:])
	if n != uint64(shcfg.Shards) {
		// The HMAC already verified, so this is an operator config
		// mismatch, not tampering.
		return nil, nil, nil, &shard.MismatchError{Field: "shards", Stream: n, Config: uint64(shcfg.Shards)}
	}
	body = body[24:]
	if uint64(len(body)) < n*16 {
		return nil, nil, nil, tamper("coverage table cut short")
	}
	covered := make([]uint64, n)
	coveredWrites := make([]uint64, n)
	for i := range covered {
		covered[i] = binary.LittleEndian.Uint64(body[i*16:])
		coveredWrites[i] = binary.LittleEndian.Uint64(body[i*16+8:])
	}
	sh, err := shard.Load(shcfg, bytes.NewReader(body[n*16:]))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: snapshot %s: %w", path, err)
	}
	return sh, covered, coveredWrites, nil
}

// Checkpoint freezes writers, captures an atomic snapshot of the full
// state, starts fresh WAL segments, and only then deletes the files of
// prior epochs (the snapshot-before-truncate invariant). On return the WAL
// is empty and everything acknowledged is durable regardless of policy.
// Any OnCheckpoint hook fires once the new epoch is committed (even if
// retiring old files reported an error — the epoch stands either way).
func (m *Memory) Checkpoint() error {
	before := m.seq.Load()
	err := m.checkpoint()
	if after := m.seq.Load(); after > before && m.onCkpt != nil {
		m.onCkpt(after)
	}
	return err
}

func (m *Memory) checkpoint() error {
	if m.closed.Load() {
		return fmt.Errorf("durable: checkpoint after Close")
	}
	start := time.Now()
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	// Freeze every shard: sync locks first, then append locks, matching
	// syncTo's ordering.
	for _, c := range m.commits {
		c.syncMu.Lock()
	}
	for _, c := range m.commits {
		c.mu.Lock()
	}
	defer func() {
		for i := len(m.commits) - 1; i >= 0; i-- {
			m.commits[i].mu.Unlock()
		}
		for i := len(m.commits) - 1; i >= 0; i-- {
			m.commits[i].syncMu.Unlock()
		}
	}()

	covered := make([]uint64, len(m.commits))
	coveredWrites := make([]uint64, len(m.commits))
	for i, c := range m.commits {
		if !m.cfg.NoAudit {
			if err := c.appendAuditLocked(m); err != nil {
				return err
			}
		}
		covered[i] = c.lsn
		coveredWrites[i] = c.writes
	}

	oldSeq := m.seq.Load()
	newSeq := oldSeq + 1

	// New segments are created BEFORE the snapshot rename: a crash here
	// leaves stale next-epoch segments that recovery deletes, while the
	// reverse order could commit a snapshot whose epoch has unjournaled
	// writers.
	newLogs := make([]*wal.Log, len(m.commits))
	master := m.shcfg.Mem.Key
	for i := range m.commits {
		nl, err := wal.Create(SegmentPath(m.cfg.Dir, newSeq, i), wal.Options{Key: walKey(master, i, newSeq)})
		if err != nil {
			for _, l := range newLogs[:i] {
				_ = l.Close()
				_ = os.Remove(l.Path())
			}
			return err
		}
		newLogs[i] = nl
	}

	if err := m.writeSnapshot(newSeq, covered, coveredWrites); err != nil {
		for _, l := range newLogs {
			_ = l.Close()
			_ = os.Remove(l.Path())
		}
		return err
	}

	// The new epoch is committed: swap in the fresh segments, then retire
	// the old epoch's files. Failures past this point must not unwind the
	// epoch — old files are already-covered garbage, so removal errors are
	// reported but the checkpoint stands.
	var firstErr error
	for i, c := range m.commits {
		if err := c.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.log = newLogs[i]
		c.synced = c.lsn
		c.baseLSN = c.lsn
		// The snapshot captured everything; the next delta starts empty.
		c.eng.ResetDirty()
	}
	m.signalDurable()
	if m.seq.Load() > m.segSeq.Load() {
		// This full checkpoint collapsed a non-empty delta chain.
		m.compactions.Add(1)
	}
	m.seq.Store(newSeq)
	m.segSeq.Store(newSeq)
	m.checkpoints.Add(1)
	if err := m.removeEpochsBelow(newSeq); err != nil && firstErr == nil {
		firstErr = err
	}
	dur := time.Since(start)
	m.ckptLat.Record(dur)
	m.tracer.Emit(obs.KindSnapshot, -1, newSeq, 0, dur)
	return firstErr
}

// removeEpochsBelow is the chain-aware stale-epoch sweep: given the
// current head epoch it deletes everything not worth keeping —
//
//   - files from epochs beyond head (stale next-epoch leftovers a crash
//     mid-checkpoint abandoned),
//   - orphan deltas whose ancestry cannot reach a full snapshot (their
//     base was compacted away, or a link is missing),
//   - files older than the retention floor (head − KeepEpochs) that no
//     retained chain requires.
//
// A retained delta always keeps its whole ancestry: the required-epoch
// set is computed by walking every resolvable chain whose head is at or
// above the floor, so retention can never create the orphans it sweeps.
func (m *Memory) removeEpochsBelow(head uint64) error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("durable: scan %s: %w", m.cfg.Dir, err)
	}
	snaps := make(map[uint64]bool)
	deltas := make(map[uint64]ckpt.Entry)
	for _, e := range entries {
		name := e.Name()
		if s, b, ok := ckpt.ParseDeltaName(name); ok {
			if s <= head {
				deltas[s] = ckpt.Entry{Seq: s, Base: b}
			}
			continue
		}
		if seq, _, isSnap, ok := parseSeq(name); ok && isSnap && seq <= head {
			snaps[seq] = true
		}
	}
	floor := uint64(1)
	if head > uint64(m.cfg.KeepEpochs) {
		floor = head - uint64(m.cfg.KeepEpochs)
	}
	var heads []uint64
	for s := range snaps {
		if s >= floor {
			heads = append(heads, s)
		}
	}
	for s := range deltas {
		if s >= floor {
			heads = append(heads, s)
		}
	}
	required := ckpt.Required(heads, snaps, deltas)

	var firstErr error
	removed := false
	for _, e := range entries {
		name := e.Name()
		seq, _, _, ok := parseSeq(name)
		if !ok {
			continue
		}
		_, _, isDelta := ckpt.ParseDeltaName(name)
		drop := seq > head ||
			(isDelta && !required[seq]) ||
			(seq < floor && !required[seq])
		if !drop {
			continue
		}
		if err := os.Remove(filepath.Join(m.cfg.Dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
		removed = true
	}
	if removed {
		if err := wal.SyncDir(m.cfg.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Open recovers (or bootstraps) a durable memory from cfg.Dir:
//
//  1. Delete leftover temp files; find the highest-numbered snapshot.
//  2. Authenticate and load it (tampering → *secmem.IntegrityError).
//  3. Replay each shard's WAL segment on top, truncating crash-torn tails
//     (recorded as typed TornTailErrors in the RecoveryInfo) and failing
//     closed on MAC or sequence violations.
//  4. Re-read a sample of the replayed lines through the integrity tree,
//     so tampered at-rest state surfaces as *secmem.IntegrityError now,
//     not at first client read.
//  5. Delete files from other epochs and reopen the segments for append.
func Open(shcfg shard.Config, cfg Config) (*Memory, *RecoveryInfo, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: scan %s: %w", cfg.Dir, err)
	}
	snaps := make(map[uint64]bool)
	deltaEntries := make(map[uint64]ckpt.Entry)
	var head uint64
	haveSnap := false
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A temp file is a snapshot or delta whose write was cut by a
			// crash before the atomic rename; it never became current.
			if err := os.Remove(filepath.Join(cfg.Dir, name)); err != nil {
				return nil, nil, fmt.Errorf("durable: remove stale %s: %w", name, err)
			}
			continue
		}
		if s, b, ok := ckpt.ParseDeltaName(name); ok {
			deltaEntries[s] = ckpt.Entry{Seq: s, Base: b}
			if s > head {
				head = s
			}
			continue
		}
		if seq, _, isSnap, ok := parseSeq(name); ok && isSnap {
			snaps[seq] = true
			haveSnap = true
			if seq > head {
				head = seq
			}
		}
	}
	if !haveSnap && len(deltaEntries) > 0 {
		// Deltas with no snapshot at all: every chain is broken.
		_, _, err := ckpt.ResolveChain(head, snaps, deltaEntries)
		return nil, nil, err
	}

	m := &Memory{
		cfg:     cfg,
		shcfg:   shcfg,
		snapKey: snapshotKey(shcfg.Mem.Key),
		// Nil-safe: a nil registry hands out nil instruments whose
		// methods no-op, so the uninstrumented path stays branch-free.
		fsyncLat:  cfg.Obs.Histogram("wal.fsync.latency"),
		batchHist: cfg.Obs.Histogram("wal.group_commit.batch"),
		ckptLat:   cfg.Obs.Histogram("durable.checkpoint.latency"),
		deltaLat:  cfg.Obs.Histogram("durable.delta.latency"),
		tracer:    cfg.Tracer,
	}
	info := &RecoveryInfo{}

	if !haveSnap {
		// Fresh directory: bootstrap epoch 1 so recovery always starts
		// from a snapshot.
		sh, err := shard.New(shcfg)
		if err != nil {
			return nil, nil, err
		}
		m.sh = sh
		m.seq.Store(1)
		m.segSeq.Store(1)
		m.initCommitters(nil, nil)
		if err := m.writeSnapshot(1, make([]uint64, shcfg.Shards), make([]uint64, shcfg.Shards)); err != nil {
			return nil, nil, err
		}
		for i, c := range m.commits {
			l, err := wal.Create(SegmentPath(cfg.Dir, 1, i), wal.Options{Key: walKey(shcfg.Mem.Key, i, 1)})
			if err != nil {
				return nil, nil, err
			}
			c.log = l
		}
		if err := wal.SyncDir(cfg.Dir); err != nil {
			return nil, nil, err
		}
		m.checkpoints.Add(1)
		info.Fresh = true
		info.SnapshotSeq = 1
		info.CoveredLSN = make([]uint64, shcfg.Shards)
		info.CoveredWrites = make([]uint64, shcfg.Shards)
		info.AppliedLSN = make([]uint64, shcfg.Shards)
		info.AppliedWrites = make([]uint64, shcfg.Shards)
		info.TornTails = make([]*wal.TornTailError, shcfg.Shards)
	} else {
		// Resolve the recovery head: the newest epoch, full or delta. A
		// delta head must chain down to a full snapshot — a broken link
		// fails recovery with a typed *ckpt.ChainError, never a silent
		// fallback to an older epoch (the missing link means acknowledged
		// state existed that checkpoints alone can no longer rebuild).
		baseSeq, chain, err := ckpt.ResolveChain(head, snaps, deltaEntries)
		if err != nil {
			return nil, nil, err
		}
		sh, covered, coveredWrites, err := readSnapshot(SnapshotPath(cfg.Dir, baseSeq), baseSeq, m.snapKey, shcfg)
		if err != nil {
			return nil, nil, err
		}
		// baseCovered anchors the segment replay (segments belong to the
		// base epoch); covered advances to the chain head's watermark.
		baseCovered := append([]uint64(nil), covered...)
		var replayedAddrs []uint64
		dKey := deltaKey(shcfg.Mem.Key)
		for _, ent := range chain {
			hdr, dlines, err := ckpt.ReadDelta(ckpt.DeltaPath(cfg.Dir, ent.Seq, ent.Base), dKey, ent.Seq, ent.Base)
			if err != nil {
				return nil, nil, err
			}
			if len(dlines) != shcfg.Shards {
				return nil, nil, &shard.MismatchError{Field: "shards", Stream: uint64(len(dlines)), Config: uint64(shcfg.Shards)}
			}
			for i, shLines := range dlines {
				eng := sh.Shard(i)
				for _, d := range shLines {
					if err := eng.ApplyDeltaLine(d.Level, d.Index, d.Line, d.MAC); err != nil {
						return nil, nil, err
					}
					if d.Level == -1 {
						// Data lines join the sample-verify pool below.
						replayedAddrs = append(replayedAddrs, (d.Index*uint64(shcfg.Shards)+uint64(i))*LineBytes)
					}
					info.DeltaLines++
				}
			}
			covered = hdr.CoveredLSN
			coveredWrites = hdr.CoveredWrites
			info.DeltasApplied++
		}
		m.sh = sh
		m.seq.Store(head)
		m.segSeq.Store(baseSeq)
		m.initCommitters(covered, coveredWrites)
		for i, c := range m.commits {
			c.baseLSN = baseCovered[i]
		}
		info.SnapshotSeq = baseSeq
		info.CoveredLSN = append([]uint64(nil), covered...)
		info.CoveredWrites = append([]uint64(nil), coveredWrites...)
		info.TornTails = make([]*wal.TornTailError, shcfg.Shards)

		for i, c := range m.commits {
			path := SegmentPath(cfg.Dir, baseSeq, i)
			// ReplayedRecords/Writes count only the delivered tail past the
			// chain's watermark — the work recovery actually redid — not the
			// validated-but-skipped prefix the deltas already cover.
			winfo, err := wal.ReplayTail(path, wal.Options{Key: walKey(shcfg.Mem.Key, i, baseSeq)}, baseCovered[i]+1, covered[i]+1, true, func(r wal.Record) error {
				info.ReplayedRecords++
				if r.Kind != wal.KindWrite {
					return nil
				}
				j, _, err := sh.Locate(r.Addr)
				if err != nil {
					return &secmem.IntegrityError{Level: -1, Index: r.LSN,
						Reason: fmt.Sprintf("wal record address %#x invalid: %v", r.Addr, err)}
				}
				if j != i {
					return &secmem.IntegrityError{Level: -1, Index: r.LSN,
						Reason: fmt.Sprintf("wal record for shard %d found in shard %d's segment", j, i)}
				}
				if err := sh.Write(r.Addr, r.Line); err != nil {
					return err
				}
				c.writes++
				info.ReplayedWrites++
				replayedAddrs = append(replayedAddrs, r.Addr)
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			// The delta cut fsyncs its covered prefix, so a surviving
			// segment never ends below the chain's watermark; the max
			// guards an empty tail all the same.
			if winfo.LastLSN < covered[i] {
				winfo.LastLSN = covered[i]
			}
			c.lsn = winfo.LastLSN
			c.synced = winfo.LastLSN
			// Audit baselines resume from the engine's replayed totals so
			// post-recovery audits count only new events.
			st := c.eng.Stats()
			for _, v := range st.Overflows {
				c.auditedOv += v
			}
			for _, v := range st.Rebases {
				c.auditedRb += v
			}
			info.TornTails[i] = winfo.TornTail
		}
		info.AppliedLSN = make([]uint64, len(m.commits))
		info.AppliedWrites = make([]uint64, len(m.commits))
		for i, c := range m.commits {
			info.AppliedLSN[i] = c.lsn
			info.AppliedWrites[i] = c.writes
		}

		// Sample-verify replayed lines through the integrity tree: every
		// line read here re-verifies its whole MAC chain up to the
		// on-chip root, so a consistent-looking but tampered snapshot or
		// WAL fails closed before the memory serves a single request.
		if k := cfg.VerifySample; k > 0 && len(replayedAddrs) > 0 {
			step := 1
			if len(replayedAddrs) > k {
				step = len(replayedAddrs) / k
			}
			for i := 0; i < len(replayedAddrs) && info.SampleVerified < k; i += step {
				if _, err := sh.Read(replayedAddrs[i]); err != nil {
					return nil, nil, err
				}
				info.SampleVerified++
			}
		}
		if cfg.VerifyAll {
			if err := sh.VerifyAll(); err != nil {
				return nil, nil, err
			}
		}

		// Retire stale files (next-epoch segments a crash mid-checkpoint
		// abandoned, orphan deltas whose base was compacted away, epochs
		// past the retention floor), then reopen the base epoch's
		// segments for append.
		if err := m.removeEpochsBelow(head); err != nil {
			return nil, nil, err
		}
		for i, c := range m.commits {
			l, err := wal.Open(SegmentPath(cfg.Dir, baseSeq, i), wal.Options{Key: walKey(shcfg.Mem.Key, i, baseSeq)})
			if err != nil {
				return nil, nil, err
			}
			c.log = l
		}
	}

	if cfg.Sync == SyncInterval {
		m.stopc = make(chan struct{})
		m.wg.Add(1)
		go m.flusher()
	}
	info.Elapsed = time.Since(start)
	m.recoveryUS.Store(uint64(info.Elapsed.Microseconds()))
	return m, info, nil
}

// initCommitters builds the per-shard committers (logs attached later).
func (m *Memory) initCommitters(covered, coveredWrites []uint64) {
	m.commits = make([]*committer, m.shcfg.Shards)
	for i := range m.commits {
		c := &committer{shard: i, eng: m.sh.Shard(i)}
		if covered != nil {
			c.lsn = covered[i]
			c.synced = covered[i]
			c.baseLSN = covered[i]
		}
		if coveredWrites != nil {
			c.writes = coveredWrites[i]
		}
		m.commits[i] = c
	}
}

