// Package durable (morphdur) makes a sharded secure memory crash-
// consistent: every mutating operation is journaled to a per-shard
// write-ahead log before it is applied, and the full state is periodically
// captured in a monotonically numbered atomic snapshot. Recovery replays
// the newest snapshot's WAL segments on top of it, tolerates crash-torn
// tails (truncate and continue), and fails closed with an IntegrityError on
// any at-rest tampering.
//
// Layout of a data directory (seq is a monotonically increasing epoch):
//
//	snapshot.<seq>        atomic full-state snapshot (temp-file + rename)
//	wal.<seq>-<shard>     shard's journal of mutations since snapshot <seq>
//
// Invariants the checkpoint sequence maintains:
//
//  1. WAL-before-apply: a write's record is appended (under the same lock
//     that applies it) before the engine mutates, so the on-disk journal
//     order equals the apply order per shard.
//  2. Snapshot-before-truncate: old segments and snapshots are deleted
//     only after the snapshot that covers them has been fsynced and
//     atomically renamed into place. A crash at any byte of the sequence
//     leaves either the old epoch fully intact or the new one.
//  3. Durability point: a write is durable when its WAL frame is fsynced.
//     SyncAlways acks after a group-commit fsync (concurrent writers on a
//     shard share one fsync); SyncInterval fsyncs on a timer; SyncNone
//     only at checkpoint/flush/close.
//
// Phoenix-style lazy persistence maps onto this design as: counters and
// tree state live only in snapshots (written lazily, at checkpoints), while
// the WAL carries the logical writes needed to rebuild the gap — replaying
// a write through the engine regenerates counters, MACs, and tree updates
// deterministically. Per Anubis, recovery work is bounded by the WAL length
// since the last checkpoint, not by memory size.
package durable

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
)

// LineBytes mirrors the engine's cacheline granularity.
const LineBytes = shard.LineBytes

// SyncPolicy selects when WAL appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging every write; concurrent
	// writers to a shard are group-committed under one fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Config.Interval);
	// writes acknowledged between ticks can be lost to a crash.
	SyncInterval
	// SyncNone fsyncs only at checkpoints, Flush, and Close.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval, none)", s)
}

// Config tunes the durability layer.
type Config struct {
	// Dir is the data directory (created if absent).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval flush period (default 2ms).
	Interval time.Duration
	// VerifySample caps how many replayed lines recovery re-reads through
	// the integrity tree so at-rest tampering of WAL or snapshot surfaces
	// as an *secmem.IntegrityError at startup. 0 means the default (16);
	// negative disables sampling.
	VerifySample int
	// VerifyAll makes recovery re-verify every written line in every
	// shard (bounded-recovery-time tradeoff: thorough but O(state)).
	VerifyAll bool
	// NoAudit suppresses the overflow/rebase audit records normally
	// journaled at each group-commit flush. Crash harnesses set it so WAL
	// segments contain only fixed-size write frames. Cluster replicas also
	// run with it so their record sequence stays byte-identical to the
	// primary's stream (a replica injecting its own audit records would
	// fork the LSN space).
	NoAudit bool
	// ReplHistory, when positive, keeps an in-memory ring of the last N
	// records per shard so a replication cursor can be served without
	// re-reading the segment file. 0 disables the ring (ReadRecords then
	// always falls back to the on-disk segment).
	ReplHistory int
	// KeepEpochs retains that many additional past epochs beyond the
	// live base+delta chain, so operators can recover to earlier points
	// in time. 0 (the default) keeps only what the current chain needs.
	// Retention is chain-aware: a retained delta always keeps its whole
	// ancestry down to a full snapshot, never leaving orphans.
	KeepEpochs int
	// Obs, when non-nil, records wal.fsync.latency, wal.group_commit.batch
	// (records made durable per fsync) and durable.checkpoint.latency
	// histograms.
	Obs *obs.Registry
	// Tracer, when non-nil, receives WALFsync (per group commit) and
	// Snapshot (per checkpoint) events.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.VerifySample == 0 {
		c.VerifySample = 16
	}
	return c
}

// Stats counts durability-layer activity.
type Stats struct {
	// Appends is the number of write records journaled.
	Appends uint64
	// Fsyncs is the number of WAL fsyncs issued; Appends/Fsyncs is the
	// group-commit batching factor.
	Fsyncs uint64
	// AuditRecords counts overflow/rebase audit records journaled.
	AuditRecords uint64
	// Checkpoints counts snapshots taken (including the bootstrap one).
	Checkpoints uint64
	// DeltaCheckpoints counts incremental delta checkpoints cut.
	DeltaCheckpoints uint64
	// Compactions counts full checkpoints that collapsed a non-empty
	// delta chain.
	Compactions uint64
}

// RecoveryInfo describes what Open reconstructed.
type RecoveryInfo struct {
	// Fresh reports an empty directory bootstrapped with snapshot 1.
	Fresh bool
	// SnapshotSeq is the epoch recovered from.
	SnapshotSeq uint64
	// CoveredLSN / CoveredWrites are the per-shard positions the snapshot
	// covers; AppliedLSN / AppliedWrites the positions after WAL replay.
	CoveredLSN, CoveredWrites []uint64
	AppliedLSN, AppliedWrites []uint64
	// ReplayedRecords / ReplayedWrites total the WAL records replayed.
	ReplayedRecords, ReplayedWrites int
	// DeltasApplied is how many delta segments the recovery chain held;
	// DeltaLines the total lines installed from them.
	DeltasApplied, DeltaLines int
	// TornTails holds, per shard, the torn-tail truncation performed (nil
	// entry = clean tail).
	TornTails []*wal.TornTailError
	// SampleVerified is how many replayed lines were re-read through the
	// integrity tree.
	SampleVerified int
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// TornTailCount returns how many shards needed tail truncation.
func (r *RecoveryInfo) TornTailCount() int {
	n := 0
	for _, t := range r.TornTails {
		if t != nil {
			n++
		}
	}
	return n
}

// committer is one shard's journal: its mutex is both the append lock and
// the apply-order lock, so the WAL's record order always equals the order
// mutations hit the engine.
type committer struct {
	shard int
	eng   *secmem.Memory

	mu     sync.Mutex // guards log appends + engine apply order + lsn
	log    *wal.Log
	lsn    uint64 // last assigned LSN (cumulative across segments)
	writes uint64 // cumulative write records (journal prefix index)
	// audit baselines: totals already journaled as audit records
	auditedOv, auditedRb uint64
	// baseLSN is the LSN the current segment starts after (the covered LSN
	// of the snapshot that opened this epoch); the replication cursor's
	// file fallback anchors ReplayRange at baseLSN+1.
	baseLSN uint64
	// ring buffers recent records for the replication cursor (ringStart is
	// ring[0]'s LSN; LSNs in the ring are contiguous). Guarded by mu.
	ring      []wal.Record
	ringStart uint64
	// fenced rejects new writes after a migration cut-over handed this
	// shard to another node (guarded by mu).
	fenced bool

	syncMu sync.Mutex // guards synced and the fsync itself
	synced uint64     // last LSN known durable
}

// Memory is a crash-consistent secure memory: a shard.Sharded engine whose
// every mutation is WAL-journaled and periodically snapshotted. Reads and
// writes are safe for concurrent use; Checkpoint serializes against writers
// per shard.
type Memory struct {
	cfg   Config
	shcfg shard.Config
	sh    *shard.Sharded

	snapKey []byte

	// Observability instruments (nil-safe; immutable after Open).
	fsyncLat  *obs.Histogram // wal.fsync.latency
	batchHist *obs.Histogram // wal.group_commit.batch (records per fsync)
	ckptLat   *obs.Histogram // durable.checkpoint.latency
	deltaLat  *obs.Histogram // durable.delta.latency
	tracer    *obs.Tracer

	ckptMu sync.Mutex // serializes Checkpoint / CheckpointDelta / Flush / Close
	seq    atomic.Uint64
	// segSeq is the epoch of the live WAL segments — the full snapshot
	// the current delta chain is based on. seq == segSeq means no deltas
	// are outstanding.
	segSeq atomic.Uint64
	onCkpt func(seq uint64) // set before concurrent use via OnCheckpoint

	commits []*committer

	appends      atomic.Uint64
	fsyncs       atomic.Uint64
	auditRecords atomic.Uint64
	checkpoints  atomic.Uint64
	deltaCkpts   atomic.Uint64
	compactions  atomic.Uint64
	deltaBytes   atomic.Uint64
	recoveryUS   atomic.Uint64 // last recovery duration, microseconds

	bgErrMu sync.Mutex
	bgErr   error // first background-flusher failure, surfaced on Flush/Close

	// sigMu/sigCh implement DurableSignal's replace-on-broadcast channel.
	sigMu sync.Mutex
	sigCh chan struct{}

	closed atomic.Bool
	stopc  chan struct{}
	wg     sync.WaitGroup
}

// derived keys: every file is sealed/authenticated under a key bound to its
// role (and, for WAL segments, its shard and epoch), all derived from the
// engine master key. A segment or snapshot moved, renamed, or replayed from
// another epoch therefore fails authentication.
func walKey(master []byte, shardIdx int, seq uint64) []byte {
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/wal/%d/%d", shardIdx, seq)
	return h.Sum(nil)
}

func snapshotKey(master []byte) []byte {
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/snapshot")
	return h.Sum(nil)
}

// deltaKey authenticates delta segments; the ckpt stream context binds
// each file to its exact chain position on top of this role key.
func deltaKey(master []byte) []byte {
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/delta")
	return h.Sum(nil)
}

// hibernateKey authenticates streamed hibernate/migration state.
func hibernateKey(master []byte) []byte {
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/hibernate")
	return h.Sum(nil)
}

// Sharded exposes the underlying engine (tests and the crash harness reach
// the adversary interface through it). Mutations made directly on it bypass
// the journal.
func (m *Memory) Sharded() *shard.Sharded { return m.sh }

// Seq returns the current checkpoint epoch (full or delta).
func (m *Memory) Seq() uint64 { return m.seq.Load() }

// SegSeq returns the epoch of the live WAL segments — the base snapshot
// of the current delta chain.
func (m *Memory) SegSeq() uint64 { return m.segSeq.Load() }

// DeltaChainLen reports how many delta checkpoints sit atop the current
// base snapshot (the ckpt.Runner compacts once this passes its threshold).
func (m *Memory) DeltaChainLen() int { return int(m.seq.Load() - m.segSeq.Load()) }

// NumShards returns the shard count.
func (m *Memory) NumShards() int { return len(m.commits) }

// MemoryBytes returns the total protected capacity.
func (m *Memory) MemoryBytes() uint64 { return m.sh.MemoryBytes() }

// Read verifies and decrypts the line at a line-aligned global address.
func (m *Memory) Read(addr uint64) ([]byte, error) { return m.sh.Read(addr) }

// VerifyAll re-verifies every written line in every shard.
func (m *Memory) VerifyAll() error { return m.sh.VerifyAll() }

// Stats returns the engine's aggregated activity counters.
func (m *Memory) Stats() secmem.Stats { return m.sh.Stats() }

// Save streams the current state in shard.Save format (the wire SNAPSHOT
// op; unrelated to the on-disk snapshot files).
func (m *Memory) Save(w io.Writer) error { return m.sh.Save(w) }

// FlipDataBit forwards the adversary interface (wire TAMPER op).
func (m *Memory) FlipDataBit(addr uint64, byteOff int, bit uint) bool {
	return m.sh.FlipDataBit(addr, byteOff, bit)
}

// Prove forwards proof building to the engine (the wire PROOF op).
func (m *Memory) Prove(addr uint64) (*proof.Proof, error) { return m.sh.Prove(addr) }

// RootDigests forwards the per-shard root digests.
func (m *Memory) RootDigests() []proof.Digest { return m.sh.RootDigests() }

// OnCheckpoint registers a hook fired after every successful Checkpoint
// with the new snapshot epoch — the transparency log publishes the root
// from it. It must be set before the memory is shared between goroutines,
// and the hook must not call back into Checkpoint.
func (m *Memory) OnCheckpoint(fn func(seq uint64)) { m.onCkpt = fn }

// RegisterMetrics registers pull-time collectors on reg: the underlying
// engine's shard/secmem collector plus the durability counters
// (durable.appends / fsyncs / audit_records / checkpoints and the current
// snapshot epoch durable.seq). Nil registries are a no-op.
func (m *Memory) RegisterMetrics(reg *obs.Registry) {
	m.sh.RegisterMetrics(reg)
	reg.RegisterCollector(func(emit func(string, uint64)) {
		emit("durable.appends", m.appends.Load())
		emit("durable.fsyncs", m.fsyncs.Load())
		emit("durable.audit_records", m.auditRecords.Load())
		emit("durable.checkpoints", m.checkpoints.Load())
		emit("durable.seq", m.seq.Load())
		emit("durable.ckpt.deltas", m.deltaCkpts.Load())
		emit("durable.ckpt.delta_bytes", m.deltaBytes.Load())
		emit("durable.ckpt.compactions", m.compactions.Load())
		emit("durable.ckpt.chain", m.seq.Load()-m.segSeq.Load())
		emit("durable.recovery_us", m.recoveryUS.Load())
	})
}

// Durability returns the durability-layer activity counters.
func (m *Memory) Durability() Stats {
	return Stats{
		Appends:          m.appends.Load(),
		Fsyncs:           m.fsyncs.Load(),
		AuditRecords:     m.auditRecords.Load(),
		Checkpoints:      m.checkpoints.Load(),
		DeltaCheckpoints: m.deltaCkpts.Load(),
		Compactions:      m.compactions.Load(),
	}
}

// Write journals and applies one 64-byte line write. It returns once the
// write is applied and — under SyncAlways — once its WAL frame is fsynced.
func (m *Memory) Write(addr uint64, line []byte) error {
	_, _, err := m.WriteLSN(addr, line)
	return err
}

// WriteLSN is Write returning the shard index and LSN the record was
// journaled at; the cluster layer uses the position to wait for replica
// acknowledgement before acking the client.
func (m *Memory) WriteLSN(addr uint64, line []byte) (int, uint64, error) {
	if m.closed.Load() {
		return 0, 0, fmt.Errorf("durable: write after Close")
	}
	if len(line) != LineBytes {
		return 0, 0, fmt.Errorf("durable: line must be %d bytes, got %d", LineBytes, len(line))
	}
	idx, _, err := m.sh.Locate(addr)
	if err != nil {
		return 0, 0, err
	}
	c := m.commits[idx]
	c.mu.Lock()
	if c.fenced {
		c.mu.Unlock()
		return idx, 0, &ShardFencedError{Shard: idx}
	}
	lsn := c.lsn + 1
	rec := wal.Record{Kind: wal.KindWrite, LSN: lsn, Addr: addr, Line: line}
	if err := c.log.Append(rec); err != nil {
		c.mu.Unlock()
		return idx, 0, err
	}
	c.lsn = lsn
	c.writes++
	if m.cfg.ReplHistory > 0 {
		// The ring must own the payload: callers reuse line buffers.
		rec.Line = append([]byte(nil), line...)
		c.pushRingLocked(rec, m.cfg.ReplHistory)
	}
	applyErr := m.sh.Write(addr, line)
	c.mu.Unlock()
	if applyErr != nil {
		// The record is journaled but the engine refused it (which, with
		// address and length validated above, means live-state tampering).
		// Replay on restart applies it; the divergence is reported, not
		// hidden.
		return idx, lsn, applyErr
	}
	m.appends.Add(1)
	if m.cfg.Sync == SyncAlways {
		return idx, lsn, c.syncTo(m, lsn)
	}
	return idx, lsn, nil
}

// syncTo makes every record up to at least lsn durable. The first caller
// in a burst becomes the group-commit leader: it flushes and fsyncs
// everything appended so far, and concurrent callers whose LSN that batch
// covered return without issuing their own fsync. Histogram records and
// trace emission happen after both locks are released.
func (c *committer) syncTo(m *Memory, lsn uint64) error {
	batch, fsyncDur, err := c.sync(m, lsn)
	if err != nil || batch == 0 {
		return err
	}
	m.fsyncLat.Record(fsyncDur)
	m.batchHist.RecordValue(int64(batch))
	m.tracer.Emit(obs.KindWALFsync, int32(c.shard), batch, 0, fsyncDur)
	return nil
}

// sync is syncTo's locked core; it returns how many records this fsync
// made durable (0 when an earlier group commit already covered lsn) and
// how long the fsync itself took.
func (c *committer) sync(m *Memory, lsn uint64) (batch uint64, fsyncDur time.Duration, err error) {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if c.synced >= lsn {
		return 0, 0, nil
	}
	c.mu.Lock()
	if !m.cfg.NoAudit {
		if err := c.appendAuditLocked(m); err != nil {
			c.mu.Unlock()
			return 0, 0, err
		}
	}
	target := c.lsn
	err = c.log.Flush()
	c.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := c.log.Fsync(); err != nil {
		return 0, 0, err
	}
	fsyncDur = time.Since(start)
	batch = target - c.synced
	c.synced = target
	m.fsyncs.Add(1)
	m.signalDurable()
	return batch, fsyncDur, nil
}

// appendAuditLocked journals the overflow re-encryption and rebase events
// the engine performed since the last audit record, so the WAL names every
// class of mutation even though deterministic replay of the write records
// regenerates them. Called with c.mu held.
func (c *committer) appendAuditLocked(m *Memory) error {
	st := c.eng.Stats()
	var ov, rb uint64
	for _, v := range st.Overflows {
		ov += v
	}
	for _, v := range st.Rebases {
		rb += v
	}
	if ov > c.auditedOv {
		rec := wal.Record{Kind: wal.KindOverflow, LSN: c.lsn + 1, Count: ov - c.auditedOv}
		if err := c.log.Append(rec); err != nil {
			return err
		}
		c.lsn++
		c.auditedOv = ov
		m.auditRecords.Add(1)
		c.pushRingLocked(rec, m.cfg.ReplHistory)
	}
	if rb > c.auditedRb {
		rec := wal.Record{Kind: wal.KindRebase, LSN: c.lsn + 1, Count: rb - c.auditedRb}
		if err := c.log.Append(rec); err != nil {
			return err
		}
		c.lsn++
		c.auditedRb = rb
		m.auditRecords.Add(1)
		c.pushRingLocked(rec, m.cfg.ReplHistory)
	}
	return nil
}

// flusher is the SyncInterval background goroutine.
func (m *Memory) flusher() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			for _, c := range m.commits {
				c.mu.Lock()
				lsn := c.lsn
				c.mu.Unlock()
				if err := c.syncTo(m, lsn); err != nil {
					m.setBgErr(err)
				}
			}
		}
	}
}

func (m *Memory) setBgErr(err error) {
	m.bgErrMu.Lock()
	if m.bgErr == nil {
		m.bgErr = err
	}
	m.bgErrMu.Unlock()
}

func (m *Memory) takeBgErr() error {
	m.bgErrMu.Lock()
	defer m.bgErrMu.Unlock()
	err := m.bgErr
	m.bgErr = nil
	return err
}

// Flush makes every journaled record durable (the graceful-shutdown flush),
// and surfaces any background flusher failure.
func (m *Memory) Flush() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	return m.flushLocked()
}

func (m *Memory) flushLocked() error {
	for _, c := range m.commits {
		c.mu.Lock()
		lsn := c.lsn
		c.mu.Unlock()
		if err := c.syncTo(m, lsn); err != nil {
			return err
		}
	}
	return m.takeBgErr()
}

// Close flushes the WAL and closes every segment. It does not checkpoint;
// the WAL replays on next Open. Write and Checkpoint fail after Close.
func (m *Memory) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	if m.stopc != nil {
		close(m.stopc)
	}
	m.wg.Wait()
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	firstErr := m.flushLocked()
	for _, c := range m.commits {
		c.syncMu.Lock()
		c.mu.Lock()
		if err := c.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		c.mu.Unlock()
		c.syncMu.Unlock()
	}
	return firstErr
}
