package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
)

var testKey = []byte("0123456789abcdef")

func testShardConfig(t testing.TB, shards int, memBytes uint64) shard.Config {
	t.Helper()
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	return shard.Config{
		Shards: shards,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         testKey,
		},
	}
}

func mustOpen(t testing.TB, shcfg shard.Config, cfg Config) (*Memory, *RecoveryInfo) {
	t.Helper()
	m, info, err := Open(shcfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, info
}

func fill(addr, seq uint64) []byte {
	line := make([]byte, LineBytes)
	for i := 0; i < LineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}

func TestFreshOpenWriteReopen(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, info := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	if !info.Fresh || info.SnapshotSeq != 1 {
		t.Fatalf("fresh open info = %+v, want Fresh with seq 1", info)
	}
	const writes = 64
	for i := uint64(0); i < writes; i++ {
		if err := m.Write(i*LineBytes, fill(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Durability()
	if d.Appends != writes || d.Fsyncs == 0 {
		t.Fatalf("durability stats = %+v, want %d appends and some fsyncs", d, writes)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info2 := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if info2.Fresh {
		t.Fatal("second open reported Fresh")
	}
	if info2.ReplayedWrites != writes {
		t.Fatalf("replayed %d writes, want %d", info2.ReplayedWrites, writes)
	}
	if info2.SampleVerified == 0 {
		t.Fatal("recovery verified no replayed lines through the tree")
	}
	if info2.TornTailCount() != 0 {
		t.Fatalf("clean shutdown reported %d torn tails", info2.TornTailCount())
	}
	for i := uint64(0); i < writes; i++ {
		got, err := m2.Read(i * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(i, 1)) {
			t.Fatalf("line %d mismatch after recovery", i)
		}
	}
	if err := m2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRotatesEpochs(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncNone})
	for i := uint64(0); i < 32; i++ {
		if err := m.Write(i*LineBytes, fill(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Seq() != 2 {
		t.Fatalf("seq after checkpoint = %d, want 2", m.Seq())
	}
	// Epoch 1 files must be gone; epoch 2 snapshot + segments present.
	if _, err := os.Stat(SnapshotPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old snapshot still present: %v", err)
	}
	if _, err := os.Stat(SegmentPath(dir, 1, 0)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old segment still present: %v", err)
	}
	if _, err := os.Stat(SnapshotPath(dir, 2)); err != nil {
		t.Fatal(err)
	}

	// More writes after the checkpoint land in epoch 2's WAL.
	for i := uint64(32); i < 48; i++ {
		if err := m.Write(i*LineBytes, fill(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info := mustOpen(t, shcfg, Config{Dir: dir})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if info.SnapshotSeq != 2 {
		t.Fatalf("recovered from seq %d, want 2", info.SnapshotSeq)
	}
	if info.ReplayedWrites != 16 {
		t.Fatalf("replayed %d writes, want only the 16 post-checkpoint ones", info.ReplayedWrites)
	}
	for i := uint64(0); i < 48; i++ {
		got, err := m2.Read(i * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(i, 2)) {
			t.Fatalf("line %d mismatch after checkpointed recovery", i)
		}
	}
}

// TestGroupCommitConcurrent hammers one durable memory from many
// goroutines under SyncAlways; under -race this is the group-commit safety
// claim, and the fsync count proves batching actually coalesces commits.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 4, 1<<15)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways})
	const (
		workers       = 8
		writesPerWork = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWork; i++ {
				addr := (uint64(w*writesPerWork+i) * LineBytes) % m.MemoryBytes()
				if err := m.Write(addr, fill(addr, uint64(w))); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d := m.Durability()
	if d.Appends != workers*writesPerWork {
		t.Fatalf("appends = %d, want %d", d.Appends, workers*writesPerWork)
	}
	if d.Fsyncs == 0 || d.Fsyncs > d.Appends {
		t.Fatalf("fsyncs = %d with %d appends, want 1..appends", d.Fsyncs, d.Appends)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged write must survive; concurrent writers may have
	// raced on an address, so just verify integrity plus replay count.
	m2, info := mustOpen(t, shcfg, Config{Dir: dir})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if info.ReplayedWrites != workers*writesPerWork {
		t.Fatalf("replayed %d writes, want %d", info.ReplayedWrites, workers*writesPerWork)
	}
	if err := m2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalAndNoneFlushOnClose(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			shcfg := testShardConfig(t, 2, 1<<13)
			m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: pol})
			for i := uint64(0); i < 24; i++ {
				if err := m.Write(i*LineBytes, fill(i, 5)); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m2, info := mustOpen(t, shcfg, Config{Dir: dir})
			defer func() {
				if err := m2.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			if info.ReplayedWrites != 24 {
				t.Fatalf("replayed %d writes, want 24", info.ReplayedWrites)
			}
		})
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 1, 1<<12)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways, NoAudit: true})
	const writes = 10
	for i := uint64(0); i < writes; i++ {
		if err := m.Write(i*LineBytes, fill(i, 7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut the single shard's segment mid-way through the 8th frame.
	seg := SegmentPath(dir, 1, 0)
	cut := int64(7*wal.WriteFrameBytes + 13)
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}
	m2, info := mustOpen(t, shcfg, Config{Dir: dir})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if info.TornTailCount() != 1 {
		t.Fatalf("torn tails = %d, want 1", info.TornTailCount())
	}
	if info.ReplayedWrites != 7 {
		t.Fatalf("replayed %d writes, want the 7 whole frames", info.ReplayedWrites)
	}
	for i := uint64(0); i < 7; i++ {
		got, err := m2.Read(i * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(i, 7)) {
			t.Fatalf("line %d mismatch after torn-tail recovery", i)
		}
	}
	// The torn writes are gone: those lines read as never written.
	for i := uint64(7); i < writes; i++ {
		got, err := m2.Read(i * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, LineBytes)) {
			t.Fatalf("line %d survived past the torn tail", i)
		}
	}
	// And the memory accepts new writes after repair.
	if err := m2.Write(7*LineBytes, fill(7, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedSnapshotIsIntegrityError(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncNone})
	for i := uint64(0); i < 16; i++ {
		if err := m.Write(i*LineBytes, fill(i, 9)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	snap := SnapshotPath(dir, 2)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(shcfg, Config{Dir: dir})
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("open with tampered snapshot returned %v, want *secmem.IntegrityError", err)
	}
}

// flipWalFrame flips a payload byte of frame k in a write-only segment and
// recomputes the CRC, modeling an adversary rather than a crash.
func flipWalFrame(t *testing.T, path string, frame int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frame * wal.WriteFrameBytes
	body := data[off+8 : off+wal.WriteFrameBytes]
	body[30] ^= 0x20
	binary.LittleEndian.PutUint32(data[off+4:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedWALIsIntegrityError(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 1, 1<<12)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncAlways, NoAudit: true})
	for i := uint64(0); i < 8; i++ {
		if err := m.Write(i*LineBytes, fill(i, 11)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	flipWalFrame(t, SegmentPath(dir, 1, 0), 3)
	_, _, err := Open(shcfg, Config{Dir: dir})
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("open with tampered WAL returned %v, want *secmem.IntegrityError", err)
	}
	if !strings.Contains(ie.Reason, "tampering") {
		t.Fatalf("reason %q does not name tampering", ie.Reason)
	}
}

func TestRecoveryCleansStaleEpochs(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 2, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncNone})
	for i := uint64(0); i < 16; i++ {
		if err := m.Write(i*LineBytes, fill(i, 13)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: stale next-epoch segments and a
	// half-written snapshot temp file exist, but epoch 2's snapshot never
	// renamed into place.
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(SegmentPath(dir, 2, i), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(SnapshotPath(dir, 2)+".tmp", []byte("partial snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2, info := mustOpen(t, shcfg, Config{Dir: dir})
	if info.SnapshotSeq != 1 || info.ReplayedWrites != 16 {
		t.Fatalf("info = %+v, want recovery from epoch 1 with 16 writes", info)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(SegmentPath(dir, 2, i)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale segment %d survived recovery: %v", i, err)
		}
	}
	if _, err := os.Stat(SnapshotPath(dir, 2) + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale snapshot temp file survived recovery")
	}
	// A checkpoint after stale-epoch cleanup must not collide with
	// leftover file names.
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditRecordsJournalOverflowsAndRebases(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 1, 1<<12)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir, Sync: SyncNone})
	// Sweep every line repeatedly: uniform increments saturate the shared
	// morphable counter lines and force overflow re-encryptions.
	const rounds = 100
	nlines := m.MemoryBytes() / LineBytes
	for round := uint64(0); round < rounds; round++ {
		for i := uint64(0); i < nlines; i++ {
			if err := m.Write(i*LineBytes, fill(i, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := m.Stats()
	var events uint64
	for _, v := range st.Overflows {
		events += v
	}
	for _, v := range st.Rebases {
		events += v
	}
	if events == 0 {
		t.Fatal("uniform sweep workload produced no overflow/rebase events")
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if m.Durability().AuditRecords == 0 {
		t.Fatalf("engine reported %d overflow/rebase events but no audit records were journaled", events)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The audited WAL (writes + audit records interleaved) must replay.
	m2, info := mustOpen(t, shcfg, Config{Dir: dir})
	defer func() {
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	wantWrites := int(rounds * nlines)
	if info.ReplayedWrites != wantWrites || info.ReplayedRecords <= wantWrites {
		t.Fatalf("replayed %d records / %d writes, want >%d records incl. audits and %d writes",
			info.ReplayedRecords, info.ReplayedWrites, wantWrites, wantWrites)
	}
	for i := uint64(0); i < nlines; i++ {
		got, err := m2.Read(i * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(i, rounds-1)) {
			t.Fatalf("line %d content lost through audited replay", i)
		}
	}
}

func TestUseAfterClose(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 1, 1<<12)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := m.Write(0, fill(0, 1)); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := m.Checkpoint(); err == nil {
		t.Fatal("checkpoint after close succeeded")
	}
}

func TestOpenRejectsMismatchedShardConfig(t *testing.T) {
	dir := t.TempDir()
	shcfg := testShardConfig(t, 4, 1<<13)
	m, _ := mustOpen(t, shcfg, Config{Dir: dir})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	bad := testShardConfig(t, 2, 1<<13)
	_, _, err := Open(bad, Config{Dir: dir})
	var me *shard.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("open with wrong shard count returned %v, want *shard.MismatchError", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSnapshotPathNames(t *testing.T) {
	if got := SnapshotPath("d", 0x2a); got != filepath.Join("d", "snapshot.000000000000002a") {
		t.Fatalf("SnapshotPath = %q", got)
	}
	if got := SegmentPath("d", 3, 12); got != filepath.Join("d", "wal.0000000000000003-0012") {
		t.Fatalf("SegmentPath = %q", got)
	}
	for _, name := range []string{"snapshot.000000000000002a", "wal.0000000000000003-0012"} {
		if _, _, _, ok := parseSeq(name); !ok {
			t.Fatalf("parseSeq(%q) failed", name)
		}
	}
	if _, _, _, ok := parseSeq("garbage"); ok {
		t.Fatal("parseSeq accepted garbage")
	}
	_ = fmt.Sprintf
}
