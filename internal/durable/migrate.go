package durable

import (
	"fmt"
	"io"

	"github.com/securemem/morphtree/internal/ckpt"
	"github.com/securemem/morphtree/internal/wal"
)

// Live shard migration primitives. The cluster layer drives the protocol
// (spill → ship → tail catch-up → fence → cut-over); this file owns the
// pieces that must see committer internals:
//
//   - SaveShardStream freezes one shard, makes its journal prefix durable,
//     and streams the engine state through the authenticated ckpt codec.
//   - InstallShardStream adopts such a stream on the recipient, verified
//     before a single byte goes live, and repositions the shard's
//     committer at the donor's mark.
//   - ApplyMigrated applies tail records donated after the mark without
//     journaling them (the recipient's cut-over checkpoint makes the whole
//     shard durable in one atomic step; until then a crash simply aborts
//     the migration and recovers local pre-migration state).
//   - FenceShard stops the donor's writers at cut-over, closing the race
//     between a write that passed routing and the hand-off: fencing takes
//     the same locks writes take, so the returned final LSN is exact.
//
// A fenced shard rejects writes with *ShardFencedError; the cluster layer
// translates that into the MOVED routing error clients already follow.

// ShardFencedError reports a write to a shard this node handed away.
type ShardFencedError struct {
	Shard int
}

func (e *ShardFencedError) Error() string {
	return fmt.Sprintf("durable: shard %d is fenced (migrated away)", e.Shard)
}

// SaveShardStream freezes shardIdx, fsyncs its journal, and writes the
// shard engine's state to w through the authenticated stream codec. It
// returns the mark: the shard's last LSN, which the streamed state covers
// exactly — tail catch-up starts at mark+1. Callers pass a local spill
// file as w so the freeze lasts only as long as a local sequential write.
func (m *Memory) SaveShardStream(shardIdx int, w io.Writer) (uint64, error) {
	if m.closed.Load() {
		return 0, fmt.Errorf("durable: save shard after Close")
	}
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return 0, fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	c := m.commits[shardIdx]
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.log.Flush(); err != nil {
		return 0, err
	}
	if err := c.log.Fsync(); err != nil {
		return 0, err
	}
	if c.lsn > c.synced {
		m.fsyncs.Add(1)
	}
	c.synced = c.lsn
	mark := c.lsn
	sw, err := ckpt.NewStreamWriter(w, hibernateKey(m.shcfg.Mem.Key), ckpt.HibernateContext)
	if err != nil {
		return 0, err
	}
	if err := c.eng.Save(sw); err != nil {
		return 0, err
	}
	if err := sw.Close(); err != nil {
		return 0, err
	}
	return mark, nil
}

// InstallShardStream replaces shardIdx's engine state with a
// SaveShardStream stream and repositions the committer at mark. The
// stream is fully decoded and its MAC trailer verified before anything is
// adopted, so a forged or truncated ship leaves the recipient untouched.
//
// Nothing is persisted here: the installed state lives in memory (stamped
// dirty, so any checkpoint that does run captures it) until the cut-over
// takes a full Checkpoint. A crash before that point recovers the
// recipient's pre-migration state — the migration aborts, it never
// half-lands.
func (m *Memory) InstallShardStream(shardIdx int, r io.Reader, mark uint64) error {
	if m.closed.Load() {
		return fmt.Errorf("durable: install shard after Close")
	}
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	sr, err := ckpt.NewStreamReader(r, hibernateKey(m.shcfg.Mem.Key), ckpt.HibernateContext)
	if err != nil {
		return err
	}
	c := m.commits[shardIdx]
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	staged, err := c.eng.StageRestore(sr)
	if err != nil {
		return err
	}
	// Everything decoded; now verify the whole-stream MAC before adopting.
	if err := sr.Drain(); err != nil {
		return err
	}
	c.eng.CommitRestore(staged)
	c.lsn = mark
	c.synced = mark
	c.baseLSN = mark
	c.ring = nil
	c.ringStart = 0
	// Audit baselines resume from the installed engine's totals so the
	// next audit record counts only post-install events.
	st := c.eng.Stats()
	c.auditedOv, c.auditedRb = 0, 0
	for _, v := range st.Overflows {
		c.auditedOv += v
	}
	for _, v := range st.Rebases {
		c.auditedRb += v
	}
	return nil
}

// ApplyMigrated applies donated tail records (LSNs after the install
// mark) to shardIdx without journaling them. Records must continue the
// shard's LSN sequence exactly; a gap is a protocol violation.
func (m *Memory) ApplyMigrated(shardIdx int, recs []wal.Record) error {
	if m.closed.Load() {
		return fmt.Errorf("durable: apply after Close")
	}
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	c := m.commits[shardIdx]
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range recs {
		if r.LSN != c.lsn+1 {
			return fmt.Errorf("durable: migrated record LSN %d for shard %d, want %d (migration gap)", r.LSN, shardIdx, c.lsn+1)
		}
		if r.Kind == wal.KindWrite {
			if err := m.sh.Write(r.Addr, r.Line); err != nil {
				return err
			}
			c.writes++
		}
		c.lsn = r.LSN
	}
	c.synced = c.lsn
	return nil
}

// FenceShard stops writes to shardIdx: it drains in-flight writers (by
// taking the same locks they hold), fsyncs the journal, marks the shard
// fenced, and returns the final LSN — the exact point the recipient must
// catch up to before owning the shard. Idempotent.
func (m *Memory) FenceShard(shardIdx int) (uint64, error) {
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return 0, fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	c := m.commits[shardIdx]
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.log.Flush(); err != nil {
		return 0, err
	}
	if err := c.log.Fsync(); err != nil {
		return 0, err
	}
	if c.lsn > c.synced {
		m.fsyncs.Add(1)
	}
	c.synced = c.lsn
	c.fenced = true
	return c.lsn, nil
}

// UnfenceShard reopens a fenced shard for writes (migration abort, or a
// promotion that makes this node own everything again).
func (m *Memory) UnfenceShard(shardIdx int) {
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return
	}
	c := m.commits[shardIdx]
	c.mu.Lock()
	c.fenced = false
	c.mu.Unlock()
}
