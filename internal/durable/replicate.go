package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wal"
)

// This file is the durability layer's replication tap: the primary side
// reads durable records from a per-shard cursor (in-memory ring, falling
// back to the live segment via wal.ReplayRange), and the replica side
// journals + applies a received batch so its own recovered LSN vector IS
// its replication watermark — a replica crash resumes streaming from
// whatever its local WAL proves durable, with no extra cursor state.

// pushRingLocked appends rec to the replication ring, dropping the oldest
// half-capacity chunk when the backing slice reaches twice the configured
// capacity (amortized O(1) per push). Called with c.mu held.
func (c *committer) pushRingLocked(rec wal.Record, capRecords int) {
	if capRecords <= 0 {
		return
	}
	if len(c.ring) == 0 {
		c.ringStart = rec.LSN
	}
	c.ring = append(c.ring, rec)
	if len(c.ring) >= 2*capRecords {
		drop := len(c.ring) - capRecords
		fresh := make([]wal.Record, capRecords)
		copy(fresh, c.ring[drop:])
		c.ring = fresh
		c.ringStart += uint64(drop)
	}
}

// DurableSignal returns a channel closed the next time any record becomes
// durable (group-commit fsync or checkpoint). The replication long-poll
// waits on it instead of spinning; re-arm by calling again after a close.
func (m *Memory) DurableSignal() <-chan struct{} {
	m.sigMu.Lock()
	defer m.sigMu.Unlock()
	if m.sigCh == nil {
		m.sigCh = make(chan struct{})
	}
	return m.sigCh
}

func (m *Memory) signalDurable() {
	m.sigMu.Lock()
	if m.sigCh != nil {
		close(m.sigCh)
		m.sigCh = nil
	}
	m.sigMu.Unlock()
}

// SyncedLSNs returns the per-shard durable watermark vector: the highest
// LSN each shard has fsynced. This is what a node advertises to the
// cluster — both as a replica's replication cursor and as the primary's
// shipping limit (only durable records are ever streamed).
func (m *Memory) SyncedLSNs() []uint64 {
	out := make([]uint64, len(m.commits))
	for i, c := range m.commits {
		c.syncMu.Lock()
		out[i] = c.synced
		c.syncMu.Unlock()
	}
	return out
}

// AppliedLSNs returns the per-shard last-assigned LSN vector (records
// applied to the engine, durable or not).
func (m *Memory) AppliedLSNs() []uint64 {
	out := make([]uint64, len(m.commits))
	for i, c := range m.commits {
		c.mu.Lock()
		out[i] = c.lsn
		c.mu.Unlock()
	}
	return out
}

// errStopRange aborts a ReplayRange scan once the batch is full; it never
// escapes ReadRecords.
var errStopRange = errors.New("durable: stop range scan")

// ReadRecords returns up to max durable records for shardIdx with LSN >
// afterLSN, in order. The second result reports whether the cursor could
// be served at all: false means the history before afterLSN+1 has been
// truncated by a checkpoint (or the epoch changed mid-scan) and the
// follower needs a snapshot bootstrap. An empty batch with ok=true means
// the follower is caught up.
func (m *Memory) ReadRecords(shardIdx int, afterLSN uint64, max int) ([]wal.Record, bool, error) {
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return nil, false, fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	if max <= 0 {
		max = 512
	}
	c := m.commits[shardIdx]
	c.syncMu.Lock()
	durable := c.synced
	c.syncMu.Unlock()
	if afterLSN >= durable {
		return nil, true, nil
	}
	// Segments belong to the base epoch (delta checkpoints advance seq
	// without rotating segments), so the file fallback reads at segSeq.
	seqBefore := m.segSeq.Load()
	c.mu.Lock()
	if len(c.ring) > 0 && afterLSN+1 >= c.ringStart {
		start := int(afterLSN + 1 - c.ringStart)
		out := make([]wal.Record, 0, max)
		for _, r := range c.ring[start:] {
			if r.LSN > durable || len(out) >= max {
				break
			}
			out = append(out, r)
		}
		c.mu.Unlock()
		return out, true, nil
	}
	base := c.baseLSN
	c.mu.Unlock()
	if afterLSN < base {
		// The snapshot that opened this epoch already covers LSNs past the
		// cursor; the records are gone from the log.
		return nil, false, nil
	}
	// File fallback: scan the live segment from the cursor. Records at or
	// below the durable watermark occupy a complete, fully-flushed prefix,
	// so a torn tail can only appear past what we deliver.
	path := SegmentPath(m.cfg.Dir, seqBefore, shardIdx)
	opt := wal.Options{Key: walKey(m.shcfg.Mem.Key, shardIdx, seqBefore)}
	out := make([]wal.Record, 0, max)
	_, err := wal.ReplayRange(path, opt, base+1, afterLSN+1, func(r wal.Record) error {
		if r.LSN > durable || len(out) >= max {
			return errStopRange
		}
		out = append(out, r)
		return nil
	})
	if err != nil && !errors.Is(err, errStopRange) {
		return nil, false, err
	}
	if m.segSeq.Load() != seqBefore {
		// A checkpoint swapped segments mid-scan; the file we read may have
		// been truncated or removed. Ask the follower to retry.
		return nil, false, nil
	}
	return out, true, nil
}

// ApplyReplicated journals a batch of replicated records into the local WAL
// (re-sealed under this node's segment keys), applies the writes to the
// engine, and group-commits the batch durable. Records must continue the
// shard's LSN sequence exactly; a gap is a replication-protocol violation,
// not tampering, and is reported as a plain error. The memory must run with
// NoAudit so the local sequence never diverges from the primary's stream.
func (m *Memory) ApplyReplicated(shardIdx int, recs []wal.Record) error {
	if m.closed.Load() {
		return fmt.Errorf("durable: apply after Close")
	}
	if shardIdx < 0 || shardIdx >= len(m.commits) {
		return fmt.Errorf("durable: shard %d out of range [0, %d)", shardIdx, len(m.commits))
	}
	if !m.cfg.NoAudit {
		return fmt.Errorf("durable: ApplyReplicated requires NoAudit (local audit records would fork the replicated LSN space)")
	}
	if len(recs) == 0 {
		return nil
	}
	c := m.commits[shardIdx]
	c.mu.Lock()
	for _, r := range recs {
		if r.LSN != c.lsn+1 {
			c.mu.Unlock()
			return fmt.Errorf("durable: replicated record LSN %d for shard %d, want %d (replication gap)", r.LSN, shardIdx, c.lsn+1)
		}
		if r.Kind == wal.KindWrite {
			j, _, err := m.sh.Locate(r.Addr)
			if err != nil {
				c.mu.Unlock()
				return &secmem.IntegrityError{Level: -1, Index: r.LSN,
					Reason: fmt.Sprintf("replicated record address %#x invalid: %v", r.Addr, err)}
			}
			if j != shardIdx {
				c.mu.Unlock()
				return &secmem.IntegrityError{Level: -1, Index: r.LSN,
					Reason: fmt.Sprintf("replicated record for shard %d delivered to shard %d", j, shardIdx)}
			}
		}
		if err := c.log.Append(r); err != nil {
			c.mu.Unlock()
			return err
		}
		c.lsn = r.LSN
		c.pushRingLocked(r, m.cfg.ReplHistory)
		switch r.Kind {
		case wal.KindWrite:
			c.writes++
			if err := m.sh.Write(r.Addr, r.Line); err != nil {
				c.mu.Unlock()
				return err
			}
			m.appends.Add(1)
		default:
			// Audit records journal verbatim and apply as no-ops, exactly
			// like recovery replay.
			m.auditRecords.Add(1)
		}
	}
	last := c.lsn
	c.mu.Unlock()
	return c.syncTo(m, last)
}

// SaveMarks freezes the memory, flushes every journaled record durable, and
// streams the full state in shard.Save format to w, returning the per-shard
// LSN vector the blob covers. A cold or diverged follower bootstraps from
// exactly this pair via InstallSnapshot.
func (m *Memory) SaveMarks(w io.Writer) ([]uint64, error) {
	if m.closed.Load() {
		return nil, fmt.Errorf("durable: save after Close")
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	for _, c := range m.commits {
		c.syncMu.Lock()
	}
	for _, c := range m.commits {
		c.mu.Lock()
	}
	defer func() {
		for i := len(m.commits) - 1; i >= 0; i-- {
			m.commits[i].mu.Unlock()
		}
		for i := len(m.commits) - 1; i >= 0; i-- {
			m.commits[i].syncMu.Unlock()
		}
	}()
	marks := make([]uint64, len(m.commits))
	for i, c := range m.commits {
		if err := c.log.Flush(); err != nil {
			return nil, err
		}
		if err := c.log.Fsync(); err != nil {
			return nil, err
		}
		if c.lsn > c.synced {
			m.fsyncs.Add(1)
		}
		c.synced = c.lsn
		marks[i] = c.lsn
	}
	if err := m.sh.Save(w); err != nil {
		return nil, err
	}
	return marks, nil
}

// InstallSnapshot bootstraps cfg.Dir from a SaveMarks pair: the directory's
// prior durable state (if any) is discarded, the blob becomes snapshot 1
// with marks as its covered-LSN vector, and fresh segments are created so
// replication resumes at exactly marks. The per-shard write counters
// restart at zero (they feed stats, not recovery). Returns the opened
// memory.
func InstallSnapshot(shcfg shard.Config, cfg Config, blob io.Reader, marks []uint64) (*Memory, error) {
	cfg = cfg.withDefaults()
	if len(marks) != shcfg.Shards {
		return nil, fmt.Errorf("durable: install snapshot: %d marks for %d shards", len(marks), shcfg.Shards)
	}
	sh, err := shard.Load(shcfg, blob)
	if err != nil {
		return nil, fmt.Errorf("durable: install snapshot: %w", err)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scan %s: %w", cfg.Dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		_, _, _, known := parseSeq(name)
		if !known && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(cfg.Dir, name)); err != nil {
			return nil, fmt.Errorf("durable: discard %s: %w", name, err)
		}
	}
	m := &Memory{
		cfg:       cfg,
		shcfg:     shcfg,
		snapKey:   snapshotKey(shcfg.Mem.Key),
		fsyncLat:  cfg.Obs.Histogram("wal.fsync.latency"),
		batchHist: cfg.Obs.Histogram("wal.group_commit.batch"),
		ckptLat:   cfg.Obs.Histogram("durable.checkpoint.latency"),
		deltaLat:  cfg.Obs.Histogram("durable.delta.latency"),
		tracer:    cfg.Tracer,
	}
	m.sh = sh
	m.seq.Store(1)
	m.segSeq.Store(1)
	m.initCommitters(marks, make([]uint64, shcfg.Shards))
	if err := m.writeSnapshot(1, marks, make([]uint64, shcfg.Shards)); err != nil {
		return nil, err
	}
	for i, c := range m.commits {
		l, err := wal.Create(SegmentPath(cfg.Dir, 1, i), wal.Options{Key: walKey(shcfg.Mem.Key, i, 1)})
		if err != nil {
			return nil, err
		}
		c.log = l
	}
	if err := wal.SyncDir(cfg.Dir); err != nil {
		return nil, err
	}
	m.checkpoints.Add(1)
	if cfg.Sync == SyncInterval {
		m.stopc = make(chan struct{})
		m.wg.Add(1)
		go m.flusher()
	}
	return m, nil
}
