// Package buildsmoke_test compiles every binary under cmd/ and examples/.
// Those packages are mostly excluded from unit testing (they are thin mains
// over the internal packages), so without this check a refactor can break
// them silently until someone runs the tool by hand.
package buildsmoke_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot walks up from this file to the directory containing go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	dir := filepath.Dir(file)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test file")
		}
		dir = parent
	}
}

func TestBinariesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping build smoke test in -short mode")
	}
	root := repoRoot(t)
	var pkgs []string
	for _, parent := range []string{"cmd", "examples"} {
		entries, err := os.ReadDir(filepath.Join(root, parent))
		if err != nil {
			t.Fatalf("reading %s: %v", parent, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				pkgs = append(pkgs, "./"+parent+"/"+e.Name())
			}
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("no cmd/ or examples/ packages found")
	}
	out := t.TempDir()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "build", "-o", filepath.Join(out, filepath.Base(pkg)+"-"), pkg)
			cmd.Dir = root
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("go build %s failed: %v\n%s", pkg, err, msg)
			}
		})
	}
}
