package dram

import "testing"

// small returns a tiny configuration whose mapping is easy to reason about:
// 1 channel, 1 rank, 2 banks, 4 columns per row.
func small() Config {
	return Config{
		Channels: 1, Ranks: 1, Banks: 2, ColumnsPerRow: 4, RowsPerBank: 16,
		TRCD: 10, TRP: 10, TCL: 10, TWR: 12, TBurst: 4, TurnAround: 8,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config must fail")
	}
	bad := DDR3()
	bad.TCL = 0
	if _, err := New(bad); err == nil {
		t.Error("zero timing must fail")
	}
	if _, err := New(DDR3()); err != nil {
		t.Errorf("DDR3 config rejected: %v", err)
	}
}

func TestFirstAccessLatency(t *testing.T) {
	d := MustNew(small())
	// Cold bank, no precharge needed: tRCD + tCL + tBurst.
	done := d.Access(0, 0, false)
	if want := uint64(10 + 10 + 4); done != want {
		t.Fatalf("cold access done at %d, want %d", done, want)
	}
	st := d.Stats()
	if st.Activations != 1 || st.RowMisses != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := MustNew(small())
	d.Access(0, 0, false)
	// Same row (next column): row hit.
	t0 := d.Now()
	doneHit := d.Access(t0, LineBytes, false)
	hitLat := doneHit - t0
	// Different row, same bank: precharge + activate.
	t1 := d.Now()
	rowStride := uint64(4 * 2 * LineBytes) // columns * banks (1 channel)
	doneMiss := d.Access(t1, rowStride, false)
	missLat := doneMiss - t1
	if hitLat >= missLat {
		t.Fatalf("row hit latency %d >= miss latency %d", hitLat, missLat)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	d := MustNew(small())
	// Two different rows in the same bank, issued at the same cycle.
	rowStride := uint64(4 * 2 * LineBytes)
	d1 := d.Access(0, 0, false)
	d2 := d.Access(0, rowStride, false)
	if d2 <= d1 {
		t.Fatalf("bank conflict did not serialize: %d then %d", d1, d2)
	}
	// The second access pays precharge of the open row.
	if d2-d1 < uint64(10) {
		t.Fatalf("second access too fast: gap %d", d2-d1)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	cfg := small()
	// Same-bank different-row pair.
	d1 := MustNew(cfg)
	rowStride := uint64(4 * 2 * LineBytes)
	d1.Access(0, 0, false)
	sameBank := d1.Access(0, rowStride, false)
	// Different-bank pair: banks interleave after the column bits.
	d2 := MustNew(cfg)
	bankStride := uint64(4 * LineBytes) // columns per row * line (1 channel)
	d2.Access(0, 0, false)
	diffBank := d2.Access(0, bankStride, false)
	if diffBank >= sameBank {
		t.Fatalf("bank parallelism not modeled: diff-bank %d >= same-bank %d", diffBank, sameBank)
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := MustNew(DDR3())
	// Consecutive lines alternate channels.
	ch0, _, _ := d.location(0)
	ch1, _, _ := d.location(LineBytes)
	if ch0 == ch1 {
		t.Fatal("consecutive lines mapped to the same channel")
	}
}

func TestStreamingEnjoysRowHits(t *testing.T) {
	d := MustNew(DDR3())
	at := uint64(0)
	for i := uint64(0); i < 256; i++ {
		at = d.Access(at, i*LineBytes, false)
	}
	st := d.Stats()
	if st.RowHits < st.RowMisses {
		t.Fatalf("streaming row hits %d < misses %d", st.RowHits, st.RowMisses)
	}
}

func TestWriteRecoveryDelaysBank(t *testing.T) {
	cfg := small()
	dw := MustNew(cfg)
	done := dw.Access(0, 0, true)
	next := dw.Access(done, LineBytes*4*2, false) // same bank, other row
	gapAfterWrite := next - done

	dr := MustNew(cfg)
	done = dr.Access(0, 0, false)
	next = dr.Access(done, LineBytes*4*2, false)
	gapAfterRead := next - done
	if gapAfterWrite <= gapAfterRead {
		t.Fatalf("tWR not applied: write gap %d <= read gap %d", gapAfterWrite, gapAfterRead)
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	cfg := small()
	cfg.Banks = 8
	// read, read on different banks vs read, write on different banks.
	rr := MustNew(cfg)
	bankStride := uint64(4 * LineBytes)
	rr.Access(0, 0, false)
	rrDone := rr.Access(0, bankStride, false)

	rw := MustNew(cfg)
	rw.Access(0, 0, false)
	rwDone := rw.Access(0, bankStride, true)
	if rwDone <= rrDone {
		t.Fatalf("turnaround not applied: r->w %d <= r->r %d", rwDone, rrDone)
	}
}

func TestBusSaturation(t *testing.T) {
	// Hammering one channel with row hits must be limited by burst
	// occupancy: N back-to-back hits take >= N*TBurst cycles.
	d := MustNew(DDR3())
	var last uint64
	n := uint64(1000)
	for i := uint64(0); i < n; i++ {
		// Same row, same channel: alternate columns within row on channel 0.
		last = d.Access(0, i*uint64(DDR3().Channels)*LineBytes%(128*2*LineBytes), false)
		_ = last
	}
	if d.Now() < n/2*uint64(DDR3().TBurst)/2 {
		t.Fatalf("bus not saturating: %d cycles for %d bursts", d.Now(), n)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := MustNew(DDR3())
	for i := uint64(0); i < 100; i++ {
		d.Access(0, i*LineBytes, i%3 == 0)
	}
	st := d.Stats()
	if st.Reads+st.Writes != 100 {
		t.Fatalf("reads+writes = %d", st.Reads+st.Writes)
	}
	if st.RowHits+st.RowMisses != 100 {
		t.Fatalf("hits+misses = %d", st.RowHits+st.RowMisses)
	}
	if st.BusBusyCycles != 100*uint64(DDR3().TBurst) {
		t.Fatalf("bus busy = %d", st.BusBusyCycles)
	}
}

func TestMonotonicCompletion(t *testing.T) {
	d := MustNew(DDR3())
	at := uint64(0)
	for i := 0; i < 1000; i++ {
		done := d.Access(at, uint64(i*7919)*LineBytes, i%4 == 0)
		if done < at {
			t.Fatalf("completion %d before issue %d", done, at)
		}
		if i%3 == 0 {
			at = done
		}
	}
}

func TestUnloadedReadLatency(t *testing.T) {
	cfg := DDR3()
	if got, want := cfg.UnloadedReadLatency(), uint64(11+11+11+4); got != want {
		t.Fatalf("unloaded latency = %d, want %d", got, want)
	}
}

func TestBackgroundAccessDoesNotBlockDemand(t *testing.T) {
	cfg := small()
	// Background burst storm, then a demand access at time 0.
	d := MustNew(cfg)
	for i := uint64(0); i < 100; i++ {
		d.AccessBackground(i*10, 0, true)
	}
	demandAfterStorm := d.Access(0, LineBytes, false)

	fresh := MustNew(cfg)
	fresh.AccessBackground(0, 0, true) // warm the same row state
	demandClean := fresh.Access(0, LineBytes, false)
	if demandAfterStorm != demandClean {
		t.Fatalf("background storm delayed demand: %d vs %d", demandAfterStorm, demandClean)
	}
	// Background traffic still counts for energy accounting.
	if st := d.Stats(); st.Writes != 100 || st.BusBusyCycles == 0 {
		t.Fatalf("background stats = %+v", st)
	}
}

func TestBackgroundAccessPerturbsRowBuffer(t *testing.T) {
	cfg := small()
	d := MustNew(cfg)
	d.Access(0, 0, false) // open row 0
	// Background access to another row in the same bank closes row 0.
	rowStride := uint64(4 * 2 * LineBytes)
	d.AccessBackground(d.Now(), rowStride, false)
	t0 := d.Now()
	done := d.Access(t0, 0, false)
	if lat := done - t0; lat < uint64(cfg.TRP+cfg.TRCD) {
		t.Fatalf("row perturbation not modeled: latency %d", lat)
	}
}
