// Package dram models a DDR3 main memory in the style of USIMM: channels,
// ranks and banks with open-row buffers, JEDEC-derived timing, a shared data
// bus per channel, and energy accounting from activate/read/write counts
// plus background power.
//
// Instead of a cycle-by-cycle scheduler, the model reserves resources
// (bank ready-times and channel bus slots) per request — an event-driven
// approximation that preserves what the paper's results depend on: row-hit
// vs row-miss latency, bank-level parallelism, bus bandwidth saturation,
// and read/write turnaround (DESIGN.md, substitutions).
package dram

import "fmt"

// LineBytes is the transfer granularity (one cacheline per burst).
const LineBytes = 64

// Config describes the memory organization and timing. Cycle counts are in
// memory-bus cycles (800 MHz for DDR3-1600, Table I).
type Config struct {
	Channels int
	Ranks    int
	Banks    int // banks per rank
	// ColumnsPerRow is the number of cachelines per row (Table I: 128).
	ColumnsPerRow int
	// RowsPerBank bounds the row index space (Table I: 64K).
	RowsPerBank int

	// Timing parameters, in memory cycles.
	TRCD   int // row-to-column delay (activate -> access)
	TRP    int // precharge
	TCL    int // CAS latency
	TWR    int // write recovery
	TBurst int // data burst occupancy on the bus (BL8 = 4 cycles)
	// TurnAround is the bus penalty when switching between reads and
	// writes on a channel.
	TurnAround int
}

// DDR3 returns the DDR3-1600 configuration of Table I: 2 channels x 2 ranks
// x 8 banks, 64K rows, 128 cachelines per row.
func DDR3() Config {
	return Config{
		Channels:      2,
		Ranks:         2,
		Banks:         8,
		ColumnsPerRow: 128,
		RowsPerBank:   64 << 10,
		TRCD:          11,
		TRP:           11,
		TCL:           11,
		TWR:           12,
		TBurst:        4,
		TurnAround:    8,
	}
}

// Stats accumulates activity used for performance and energy analysis.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Activations uint64
	RowHits     uint64
	RowMisses   uint64
	// BusBusyCycles accumulates data-bus occupancy across channels.
	BusBusyCycles uint64
}

type bank struct {
	openRow int64 // -1 when closed
	readyAt uint64
}

type channel struct {
	busFreeAt uint64
	lastWrite bool
}

// DRAM is the memory timing model. It is not safe for concurrent use; the
// simulator serializes requests in (approximate) time order.
type DRAM struct {
	cfg      Config
	banks    []bank // channels * ranks * banks
	channels []channel
	stats    Stats
	now      uint64 // high-water mark of completion times
}

// New constructs a DRAM model. The zero-value Config is invalid; start from
// DDR3().
func New(cfg Config) (*DRAM, error) {
	if cfg.Channels <= 0 || cfg.Ranks <= 0 || cfg.Banks <= 0 ||
		cfg.ColumnsPerRow <= 0 || cfg.RowsPerBank <= 0 {
		return nil, fmt.Errorf("dram: invalid organization %+v", cfg)
	}
	if cfg.TRCD <= 0 || cfg.TRP <= 0 || cfg.TCL <= 0 || cfg.TBurst <= 0 {
		return nil, fmt.Errorf("dram: invalid timing %+v", cfg)
	}
	d := &DRAM{
		cfg:      cfg,
		banks:    make([]bank, cfg.Channels*cfg.Ranks*cfg.Banks),
		channels: make([]channel, cfg.Channels),
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err) //morphlint:allow panicpolicy -- Must-style constructor for compile-time configurations; New is the checked form
	}
	return d
}

// location decomposes a line address into channel/bank/row. Consecutive
// lines interleave across channels, then stride through a row's columns, so
// streaming accesses enjoy row hits while spreading across channels.
func (d *DRAM) location(lineAddr uint64) (ch int, bankIdx int, row int64) {
	line := lineAddr / LineBytes
	ch = int(line % uint64(d.cfg.Channels))
	rest := line / uint64(d.cfg.Channels)
	rest /= uint64(d.cfg.ColumnsPerRow) // column bits (within-row position)
	banksPerChannel := d.cfg.Ranks * d.cfg.Banks
	bankIdx = ch*banksPerChannel + int(rest%uint64(banksPerChannel))
	row = int64((rest / uint64(banksPerChannel)) % uint64(d.cfg.RowsPerBank))
	return ch, bankIdx, row
}

// Access issues a read or write of the line at addr at memory-cycle `at`,
// returning the cycle at which the data transfer completes. Writes are
// posted from the requester's perspective, but the returned completion still
// reflects resource occupancy for bandwidth accounting.
func (d *DRAM) Access(at uint64, addr uint64, write bool) (complete uint64) {
	return d.access(at, addr, write, false)
}

// AccessBackground issues a low-priority access: it occupies its bank and
// counts toward activity/energy, but is assumed to drain through idle bus
// slots, so it does not push the shared data bus reservation that demand
// traffic waits on. This models fairness-driven scheduling of bulk
// maintenance traffic (e.g. throttled overflow handling, Section V).
func (d *DRAM) AccessBackground(at uint64, addr uint64, write bool) (complete uint64) {
	return d.access(at, addr, write, true)
}

func (d *DRAM) access(at uint64, addr uint64, write, background bool) (complete uint64) {
	ch, bi, row := d.location(addr)
	b := &d.banks[bi]
	c := &d.channels[ch]

	start := at
	if b.readyAt > start {
		start = b.readyAt
	}

	var colReady uint64
	if b.openRow == row {
		d.stats.RowHits++
		colReady = start
	} else {
		d.stats.RowMisses++
		d.stats.Activations++
		pre := 0
		if b.openRow >= 0 {
			pre = d.cfg.TRP
		}
		colReady = start + uint64(pre+d.cfg.TRCD)
		b.openRow = row
	}

	// Claim the channel data bus: the burst begins after CAS latency and
	// after the bus frees, with a turnaround penalty on direction switch.
	burstStart := colReady + uint64(d.cfg.TCL)
	busAt := c.busFreeAt
	if c.lastWrite != write && busAt > 0 {
		busAt += uint64(d.cfg.TurnAround)
	}
	if busAt > burstStart {
		burstStart = busAt
	}
	burstEnd := burstStart + uint64(d.cfg.TBurst)
	if !background {
		c.busFreeAt = burstEnd
		c.lastWrite = write
	}
	d.stats.BusBusyCycles += uint64(d.cfg.TBurst)

	// Bank becomes ready for the next access after the column access; a
	// write additionally holds the bank for write recovery. Background
	// traffic is assumed scheduled into bank-idle slots: it perturbs the
	// row buffer and consumes energy, but does not stall demand traffic.
	if !background {
		b.readyAt = burstEnd
		if write {
			b.readyAt += uint64(d.cfg.TWR)
		}
	}
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	if burstEnd > d.now {
		d.now = burstEnd
	}
	return burstEnd
}

// Stats returns a copy of the activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Now returns the latest completion time observed (memory cycles).
func (d *DRAM) Now() uint64 { return d.now }

// UnloadedReadLatency returns the row-miss read latency in memory cycles,
// the baseline a request sees with no contention.
func (cfg Config) UnloadedReadLatency() uint64 {
	return uint64(cfg.TRP + cfg.TRCD + cfg.TCL + cfg.TBurst)
}
