package dram

import "testing"

func BenchmarkAccessRowHit(b *testing.B) {
	d := MustNew(DDR3())
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		at = d.Access(at, 0, false)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	d := MustNew(DDR3())
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		at = d.Access(at, uint64(i)*LineBytes, false)
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	d := MustNew(DDR3())
	b.ReportAllocs()
	at := uint64(0)
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 0x9E3779B97F4A7C15 % (1 << 26)) * LineBytes
		at = d.Access(at, addr, i%4 == 0)
	}
}
