package server

import (
	"fmt"

	"github.com/securemem/morphtree/internal/wire"
)

// ClusterNode is the optional surface behind the cluster control ops
// (OpRoute, OpReplicate, OpPromote, OpFollow). *cluster.Node implements
// it; the interface lives here (in wire types) so the server package
// never imports the cluster package.
//
// All four ops are served without an admission slot and without a tenant
// binding, like OpPing: replication and failover must not be shed by
// client load — a primary too busy to stream its WAL would stall every
// follower exactly when durability matters most.
type ClusterNode interface {
	// Route reports the node's view of the cluster.
	Route() *wire.RouteInfo
	// Replicate answers one follower poll (may hold the poll open while
	// waiting for new durable records).
	Replicate(req *wire.ReplicateRequest) (*wire.ReplicateResponse, error)
	// Promote asks the node to become primary at a new fencing epoch,
	// catching up to minMarks first.
	Promote(newEpoch uint64, minMarks []uint64) (*wire.RouteInfo, error)
	// Follow redirects the node to a leader at an epoch.
	Follow(epoch uint64, leader string) error
	// Migrate serves one live-shard-migration phase (donor-side phases on
	// the primary, Run on a recipient replica).
	Migrate(req *wire.MigrateRequest) (*wire.MigrateResponse, error)
}

// isClusterOp reports whether op is one of the cluster control opcodes.
func isClusterOp(op byte) bool {
	switch op {
	case wire.OpRoute, wire.OpReplicate, wire.OpPromote, wire.OpFollow, wire.OpMigrate:
		return true
	}
	return false
}

// handleCluster serves one cluster control op. Non-cluster servers
// answer a plain error for all four.
func (s *Server) handleCluster(op byte, payload []byte) (byte, []byte) {
	cn := s.cfg.Cluster
	if cn == nil {
		return wire.StatusError, []byte(fmt.Sprintf("%s: this server is not a cluster node (start with -cluster)", wire.OpName(op)))
	}
	switch op {
	case wire.OpRoute:
		body, err := wire.EncodeRouteInfo(cn.Route())
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpReplicate:
		req, err := wire.DecodeReplicateRequest(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		resp, err := cn.Replicate(req)
		if err != nil {
			return wire.EncodeError(err)
		}
		body, err := wire.EncodeReplicateResponse(resp)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpPromote:
		epoch, minMarks, err := wire.DecodePromote(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		ri, err := cn.Promote(epoch, minMarks)
		if err != nil {
			return wire.EncodeError(err)
		}
		body, err := wire.EncodeRouteInfo(ri)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpFollow:
		epoch, leader, err := wire.DecodeFollow(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		if err := cn.Follow(epoch, leader); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, nil

	case wire.OpMigrate:
		req, err := wire.DecodeMigrateRequest(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		resp, err := cn.Migrate(req)
		if err != nil {
			return wire.EncodeError(err)
		}
		body, err := wire.EncodeMigrateResponse(resp)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body
	}
	return wire.StatusError, []byte(fmt.Sprintf("unknown cluster opcode %#x", op))
}
