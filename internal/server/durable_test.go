package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

func testShardConfig(t *testing.T, n int, memBytes uint64) shard.Config {
	t.Helper()
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	return shard.Config{
		Shards: n,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         testKey,
		},
	}
}

func openDurable(t *testing.T, dir string, shards int, memBytes uint64, cfg durable.Config) (*durable.Memory, *durable.RecoveryInfo) {
	t.Helper()
	cfg.Dir = dir
	m, info, err := durable.Open(testShardConfig(t, shards, memBytes), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, info
}

// TestCheckpointOpRequiresDurableEngine: a volatile server answers
// OpCheckpoint with a StatusError that tells the operator what to do.
func TestCheckpointOpRequiresDurableEngine(t *testing.T) {
	sh := testShards(t, 2, 1<<13)
	addr, shutdown := startServer(t, sh, Config{})
	defer shutdown()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Checkpoint()
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("checkpoint on volatile server returned %v, want *wire.RemoteError", err)
	}
	if !strings.Contains(re.Msg, "data-dir") {
		t.Fatalf("error %q does not tell the operator about -data-dir", re.Msg)
	}
}

// TestCheckpointOpEndToEnd forces a checkpoint over the wire, keeps
// writing, and proves a post-crash reopen recovers from the forced
// snapshot plus the short WAL tail.
func TestCheckpointOpEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDurable(t, dir, 2, 1<<13, durable.Config{Sync: durable.SyncAlways})
	addr, shutdown := startServer(t, m, Config{})
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		if err := c.Write(i*durable.LineBytes, fill(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("forced checkpoint seq = %d, want 2", seq)
	}
	for i := uint64(16); i < 24; i++ {
		if err := c.Write(i*durable.LineBytes, fill(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	shutdown()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info := openDurable(t, dir, 2, 1<<13, durable.Config{})
	defer m2.Close()
	if info.SnapshotSeq != 2 {
		t.Fatalf("recovered from snapshot %d, want the forced one (2)", info.SnapshotSeq)
	}
	if info.ReplayedWrites != 8 {
		t.Fatalf("replayed %d writes, want only the 8 after the forced checkpoint", info.ReplayedWrites)
	}
	for i := uint64(0); i < 24; i++ {
		got, err := m2.Read(i * durable.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(i, 3)) {
			t.Fatalf("line %d mismatch after recovery", i)
		}
	}
}

// TestGracefulShutdownFlushes: with fsync disabled entirely (SyncNone),
// appends sit in process-local buffers; the server's shutdown path must
// still push them into the WAL files so a graceful stop loses nothing.
func TestGracefulShutdownFlushes(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDurable(t, dir, 2, 1<<13, durable.Config{Sync: durable.SyncNone})
	addr, shutdown := startServer(t, m, Config{})
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 20
	for i := uint64(0); i < writes; i++ {
		if err := c.Write(i*durable.LineBytes, fill(i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	shutdown() // Serve's drain path flushes the durable engine

	// Clone the data dir BEFORE m.Close() (which also flushes): the clone
	// holds exactly what the server's own shutdown flush made durable.
	clone := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(clone, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, info := openDurable(t, clone, 2, 1<<13, durable.Config{})
	defer m2.Close()
	if info.ReplayedWrites != writes {
		t.Fatalf("clone replayed %d writes, want %d: server shutdown did not flush", info.ReplayedWrites, writes)
	}
}

// TestPeriodicSnapshotTicker: SnapshotEvery cuts background checkpoints
// while the server runs.
func TestPeriodicSnapshotTicker(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDurable(t, dir, 2, 1<<13, durable.Config{Sync: durable.SyncAlways})
	addr, shutdown := startServer(t, m, Config{
		SnapshotEvery: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	defer func() {
		shutdown()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for i := uint64(0); m.Seq() < 3; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot seq still %d after 10s of 20ms ticks", m.Seq())
		}
		if err := c.Write((i%64)*durable.LineBytes, fill(i, 6)); err != nil {
			t.Fatal(err)
		}
	}
}
