package server

import (
	"errors"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/wire"
)

// TestObsInstrumentation drives an instrumented server end to end and
// checks per-op histograms, the admission collector, request trace
// events, and the OpObs protocol endpoint.
func TestObsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	sh := testShards(t, 2, 1<<16)
	addr, shutdown := startServer(t, sh, Config{Obs: reg, Tracer: tr})
	defer shutdown()

	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	line := make([]byte, 64)
	const writes, reads = 10, 5
	for i := 0; i < writes; i++ {
		if err := cl.Write(uint64(i)*64, line); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reads; i++ {
		if _, err := cl.Read(uint64(i) * 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// OpObs returns the registry snapshot over the wire, no HTTP needed.
	body, err := cl.Obs()
	if err != nil {
		t.Fatalf("OpObs: %v", err)
	}
	snap, err := obs.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("decode OpObs body: %v", err)
	}
	if got := snap.Histograms["server.op.write.latency"].Count; got != writes {
		t.Fatalf("write op samples = %d, want %d", got, writes)
	}
	if got := snap.Histograms["server.op.read.latency"].Count; got != reads {
		t.Fatalf("read op samples = %d, want %d", got, reads)
	}
	if snap.Histograms["server.op.write.latency"].P50 == 0 {
		t.Fatal("write op p50 is zero")
	}
	if snap.Counters["server.accepted"] != 1 {
		t.Fatalf("accepted = %d, want 1", snap.Counters["server.accepted"])
	}
	if snap.Counters["server.pings"] != 1 {
		t.Fatalf("pings = %d, want 1", snap.Counters["server.pings"])
	}
	// The snapshot is cut while the OpObs request itself holds the only
	// in-flight slot, so the gauge reads exactly 1.
	if g, ok := snap.Gauges["server.inflight"]; !ok || g != 1 {
		t.Fatalf("inflight gauge = %d (present=%v), want 1 during the OBS request", g, ok)
	}

	// Request lifecycle events: starts and ends must pair up (pings
	// bypass the gate and are never traced).
	starts, ends := tr.Count(obs.KindReqStart), tr.Count(obs.KindReqEnd)
	if starts != ends {
		t.Fatalf("req starts %d != ends %d", starts, ends)
	}
	// writes + reads + the OpObs request itself at minimum; the snapshot
	// raced none since the client is sequential.
	if starts < writes+reads+1 {
		t.Fatalf("traced requests = %d, want >= %d", starts, writes+reads+1)
	}
	var sawEndWithDur bool
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindReqEnd && ev.Dur > 0 {
			sawEndWithDur = true
		}
	}
	if !sawEndWithDur {
		t.Fatal("no ReqEnd event carries a duration")
	}
}

// TestObsDisabled checks an uninstrumented server still answers OpObs
// with a typed remote error and runs requests exactly as before.
func TestObsDisabled(t *testing.T) {
	sh := testShards(t, 1, 1<<14)
	addr, shutdown := startServer(t, sh, Config{})
	defer shutdown()

	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Obs(); err == nil {
		t.Fatal("OpObs succeeded without a registry")
	} else {
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("OpObs error = %v, want *wire.RemoteError", err)
		}
	}
}
