package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/wire"
)

// gatedEngine wraps an Engine so tests can hold its Read path open and
// deterministically saturate the admission gate.
type gatedEngine struct {
	Engine
	entered chan struct{} // one send per Read that starts executing
	release chan struct{} // Read returns when this closes
}

func (g *gatedEngine) Read(addr uint64) ([]byte, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.Engine.Read(addr)
}

// TestAdmissionShedsWhenSaturated: with MaxInflight=1 and a request
// parked inside the engine, the next request is shed with a typed,
// retryable StatusBusy — and a PING still answers, because liveness must
// be observable during overload.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	eng := &gatedEngine{
		Engine:  testShards(t, 2, 1<<14),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	var srv *Server
	addr, shutdown := startServerWith(t, eng, Config{MaxInflight: 1, ShedWait: -1}, &srv)
	defer shutdown()

	blocked, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()
	readDone := make(chan error, 1)
	go func() {
		_, err := blocked.Read(0)
		readDone <- err
	}()
	select {
	case <-eng.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first read never reached the engine")
	}

	// The slot is held: a second request must be shed, not queued.
	other, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	_, err = other.Read(64)
	var be *wire.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("saturated server answered %v, want *wire.BusyError", err)
	}
	if !wire.IsRetryable(err) {
		t.Fatal("shed must classify as retryable")
	}
	// Health check bypasses the gate.
	if err := other.Ping(); err != nil {
		t.Fatalf("PING failed while saturated: %v", err)
	}

	close(eng.release)
	if err := <-readDone; err != nil {
		t.Fatalf("parked read failed after release: %v", err)
	}
	st := srv.NetStats()
	if st.Shed != 1 || st.Pings != 1 {
		t.Fatalf("NetStats = %+v, want 1 shed, 1 ping", st)
	}
}

// startServerWith is startServer plus access to the *Server for counter
// assertions.
func startServerWith(t *testing.T, eng Engine, cfg Config, out **Server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	*out = srv
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Serve returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not drain after cancel")
		}
	}
}

// TestSlowLorisDisconnected: a peer that sends one byte and then
// trickles nothing more is dropped after FrameTimeout, long before the
// idle ReadTimeout — it cannot hold a connection slot by dribbling.
func TestSlowLorisDisconnected(t *testing.T) {
	var srv *Server
	addr, shutdown := startServerWith(t, testShards(t, 2, 1<<14),
		Config{ReadTimeout: time.Hour, FrameTimeout: 100 * time.Millisecond}, &srv)
	defer shutdown()

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0}); err != nil { // first byte of a length prefix, then silence
		t.Fatal(err)
	}
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	// The server reports the truncated frame (best effort) and closes;
	// either way the connection must die promptly.
	status, _, err := wire.ReadFrame(conn)
	if err == nil {
		if status != wire.StatusError {
			t.Fatalf("slow-loris got status %#x, want StatusError", status)
		}
		if _, _, err := wire.ReadFrame(conn); err == nil {
			t.Fatal("connection still alive after slow-loris report")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow-loris held the connection %v, want ~FrameTimeout", elapsed)
	}
	if st := srv.NetStats(); st.SlowLoris != 1 {
		t.Fatalf("NetStats = %+v, want 1 slow-loris drop", st)
	}
}

// TestIdleConnOutlivesFrameTimeout: the split deadline must not punish
// idle-but-honest connections — a client may pause longer than
// FrameTimeout between requests and still be served.
func TestIdleConnOutlivesFrameTimeout(t *testing.T) {
	addr, shutdown := startServer(t, testShards(t, 2, 1<<14),
		Config{ReadTimeout: time.Hour, FrameTimeout: 50 * time.Millisecond})
	defer shutdown()
	cl, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Write(0, fill(0, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // idle well past FrameTimeout
	if _, err := cl.Read(0); err != nil {
		t.Fatalf("idle connection dropped by frame deadline: %v", err)
	}
}

// TestShutdownRacesPeriodicCheckpoint: ctx cancel + the drain-path Flush
// racing a snapshotLoop tick (and in-flight writes) must be clean — no
// data race under -race, no error, and the store must reopen intact.
func TestShutdownRacesPeriodicCheckpoint(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		dir := t.TempDir()
		m, _ := openDurable(t, dir, 2, 1<<13, durable.Config{Sync: durable.SyncNone})
		addr, shutdown := startServer(t, m, Config{
			SnapshotEvery: time.Millisecond,
			Logf:          t.Logf,
		})

		cl, err := wire.Dial(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Keep writes in flight across the cancel; errors after the
			// drain starts are expected.
			for i := uint64(0); ; i++ {
				if err := cl.Write((i%32)*durable.LineBytes, fill(i, 9)); err != nil {
					return
				}
			}
		}()
		// Give the ticker a chance to be mid-checkpoint, then pull the rug.
		time.Sleep(time.Duration(1+iter) * time.Millisecond)
		shutdown()
		_ = cl.Close()
		wg.Wait()
		if err := m.Close(); err != nil {
			t.Fatalf("iter %d: close after racing shutdown: %v", iter, err)
		}
		// The store must recover cleanly whatever instant the race hit.
		m2, _ := openDurable(t, dir, 2, 1<<13, durable.Config{})
		if err := m2.VerifyAll(); err != nil {
			t.Fatalf("iter %d: recovered store failed verification: %v", iter, err)
		}
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNetStatsCountsAccepts: accepted/rejected connection counters feed
// the operator-facing report.
func TestNetStatsCountsAccepts(t *testing.T) {
	var srv *Server
	addr, shutdown := startServerWith(t, testShards(t, 2, 1<<14), Config{MaxConns: 1}, &srv)
	defer shutdown()
	c1, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	over, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	_ = over.SetReadDeadline(time.Now().Add(5 * time.Second))
	if status, _, err := wire.ReadFrame(over); err != nil || status != wire.StatusBusy {
		t.Fatalf("over-cap conn: status %#x, err %v, want StatusBusy", status, err)
	}
	st := srv.NetStats()
	if st.Accepted != 1 || st.Rejected != 1 {
		t.Fatalf("NetStats = %+v, want 1 accepted, 1 rejected", st)
	}
}
