package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
	"github.com/securemem/morphtree/internal/wire"
)

func tenantRegistry(t *testing.T, specs ...tenant.Spec) *tenant.Registry {
	t.Helper()
	if len(specs) == 0 {
		specs = []tenant.Spec{
			{ID: "alpha", Secret: "alpha-secret", Weight: 2},
			{ID: "beta", Secret: "beta-secret"},
		}
	}
	reg, err := tenant.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// startTenantServer spins up a multi-tenant server over sharded engines
// with key domains registered for every tenant.
func startTenantServer(t *testing.T, reg *tenant.Registry, cfg Config) (string, func()) {
	t.Helper()
	sh := testShards(t, 2, 1<<16)
	if err := sh.RegisterTenants(reg.IDs()); err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = reg
	return startServer(t, sh, cfg)
}

// mustListen and serveOn split startServer so tests can keep the *Server
// handle (for NetStats) while reusing the drain-on-shutdown plumbing.
func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func serveOn(t *testing.T, srv *Server, ln net.Listener) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Serve returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not drain after cancel")
		}
	}
}

func wantRemote(t *testing.T, err error, substr string) {
	t.Helper()
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *wire.RemoteError", err, err)
	}
	if !strings.Contains(re.Msg, substr) {
		t.Fatalf("remote error %q missing %q", re.Msg, substr)
	}
}

// TestTenantEndToEnd covers the HELLO protocol and key-domain isolation
// over the wire: unbound connections are refused, authentication is
// required and non-enumerable, bound tenants get isolated key domains,
// and a cross-tenant read fails closed with a typed IntegrityError.
func TestTenantEndToEnd(t *testing.T) {
	addr, shutdown := startTenantServer(t, tenantRegistry(t), Config{
		MaxConns: 8, MaxInflight: 4, ShedWait: 50 * time.Millisecond,
		ReadTimeout: 5 * time.Second, FrameTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
	})
	defer shutdown()

	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Liveness stays tenant-free; data ops do not.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping before hello: %v", err)
	}
	_, err = cl.Read(0)
	wantRemote(t, err, "hello required")

	// A wrong secret and an unknown tenant must be indistinguishable.
	badTok := cl.Hello("alpha", "wrong-secret")
	badID := cl.Hello("nobody", "alpha-secret")
	wantRemote(t, badTok, "unknown tenant or bad token")
	wantRemote(t, badID, "unknown tenant or bad token")
	var reTok, reID *wire.RemoteError
	errors.As(badTok, &reTok)
	errors.As(badID, &reID)
	if reTok.Msg != reID.Msg {
		t.Fatalf("enumerable hello errors: %q vs %q", reTok.Msg, reID.Msg)
	}

	if err := cl.Hello("alpha", "alpha-secret"); err != nil {
		t.Fatalf("hello: %v", err)
	}
	line := fill(0, 42)
	if err := cl.Write(0, line); err != nil {
		t.Fatalf("tenant write: %v", err)
	}
	got, err := cl.Read(0)
	if err != nil {
		t.Fatalf("tenant read: %v", err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("tenant read returned wrong contents")
	}

	// Second connection, bound to beta, reads alpha's line: the MAC check
	// runs under beta's key domain and must fail closed with the typed
	// integrity error — over the wire, not just in-process.
	cl2, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Hello("beta", "beta-secret"); err != nil {
		t.Fatal(err)
	}
	_, err = cl2.Read(0)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("cross-tenant read = %v (%T), want *secmem.IntegrityError", err, err)
	}
	// beta's own traffic at another address is unaffected.
	if err := cl2.Write(secmem.LineBytes, fill(secmem.LineBytes, 7)); err != nil {
		t.Fatalf("beta write: %v", err)
	}
	if _, err := cl2.Read(secmem.LineBytes); err != nil {
		t.Fatalf("beta read: %v", err)
	}
}

// TestHelloSingleTenant pins the compatibility edge: a server without a
// tenant registry refuses HELLO, and plain ops keep working unbound.
func TestHelloSingleTenant(t *testing.T) {
	sh := testShards(t, 1, 1<<14)
	addr, shutdown := startServer(t, sh, Config{
		MaxConns: 4, MaxInflight: 2,
		ReadTimeout: 5 * time.Second, FrameTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
	})
	defer shutdown()
	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	wantRemote(t, cl.Hello("alpha", "alpha-secret"), "single-tenant")
	if err := cl.Write(0, fill(0, 1)); err != nil {
		t.Fatalf("unbound write on single-tenant server: %v", err)
	}
}

// TestTenantQuotaShed drives a rate-limited tenant past its ops budget
// and checks the whole shed pipeline: the typed *tenant.QuotaError over
// the wire, the server's QuotaShed counter, the quota_shed trace event,
// and the satellite admission-limit gauges in /metricz's registry.
func TestTenantQuotaShed(t *testing.T) {
	reg := tenantRegistry(t,
		tenant.Spec{ID: "limited", Secret: "ls", OpsPerSec: 1},
	)
	oreg := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	sh := testShards(t, 2, 1<<16)
	if err := sh.RegisterTenants(reg.IDs()); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		MaxConns: 8, MaxInflight: 4, ShedWait: 50 * time.Millisecond,
		ReadTimeout: 5 * time.Second, FrameTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
		Tenants: reg, Obs: oreg, Tracer: tracer,
	}
	ln, srv := mustListen(t), New(sh, cfg)
	addr, shutdown := serveOn(t, srv, ln)
	defer shutdown()

	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello("limited", "ls"); err != nil {
		t.Fatal(err)
	}
	// Burst is one second of a 1 op/s rate: the first op passes, an
	// immediate second op finds an empty bucket.
	if err := cl.Write(0, fill(0, 1)); err != nil {
		t.Fatalf("first op: %v", err)
	}
	var qe *tenant.QuotaError
	_, err = cl.Read(0)
	if !errors.As(err, &qe) {
		t.Fatalf("second op = %v (%T), want *tenant.QuotaError", err, err)
	}
	if qe.Tenant != "limited" || qe.Resource != "ops" {
		t.Fatalf("quota error = %+v", qe)
	}

	if ns := srv.NetStats(); ns.QuotaShed == 0 {
		t.Fatal("NetStats().QuotaShed = 0 after a quota shed")
	}
	if n := tracer.Count(obs.KindQuotaShed); n == 0 {
		t.Fatal("no quota_shed trace events")
	}
	if n := tracer.Count(obs.KindTenantBind); n == 0 {
		t.Fatal("no tenant_bind trace events")
	}

	snap := oreg.Snapshot()
	if got := snap.Gauges["server.limit.max_inflight"]; got != 4 {
		t.Fatalf("server.limit.max_inflight gauge = %d, want 4", got)
	}
	if got := snap.Gauges["server.limit.max_conns"]; got != 8 {
		t.Fatalf("server.limit.max_conns gauge = %d, want 8", got)
	}
	if got := snap.Counters["server.quota_shed"]; got == 0 {
		t.Fatal("server.quota_shed counter = 0")
	}
	if got := snap.Counters["tenant.limited.shed.ops"]; got == 0 {
		t.Fatal("tenant.limited.shed.ops counter = 0")
	}
}

// TestNetStatsLimits pins the satellite: effective admission limits are
// part of NetStats, including the defaulted MaxInflight.
func TestNetStatsLimits(t *testing.T) {
	sh := testShards(t, 1, 1<<14)
	srv := New(sh, Config{MaxConns: 7, ShedWait: 3 * time.Millisecond,
		ReadTimeout: time.Second, FrameTimeout: time.Second, WriteTimeout: time.Second})
	ns := srv.NetStats()
	if ns.MaxConns != 7 {
		t.Fatalf("MaxConns = %d, want 7", ns.MaxConns)
	}
	if ns.MaxInflight <= 0 {
		t.Fatalf("defaulted MaxInflight = %d, want > 0", ns.MaxInflight)
	}
	if ns.ShedWaitMicros != 3000 {
		t.Fatalf("ShedWaitMicros = %d, want 3000", ns.ShedWaitMicros)
	}
}

// TestResilientClientTenant exercises the client side of tenant binding:
// a ResilientClient configured with tenant credentials HELLOs after every
// dial, retries quota sheds with backoff, and succeeds once the bucket
// refills.
func TestResilientClientTenant(t *testing.T) {
	reg := tenantRegistry(t,
		tenant.Spec{ID: "slow", Secret: "ss", OpsPerSec: 20},
	)
	addr, shutdown := startTenantServer(t, reg, Config{
		MaxConns: 8, MaxInflight: 4, ShedWait: 50 * time.Millisecond,
		ReadTimeout: 5 * time.Second, FrameTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
	})
	defer shutdown()
	cl := wire.NewResilient(wire.ResilientConfig{
		Addr: addr, Timeout: 5 * time.Second, MaxAttempts: 20,
		TenantID: "slow", TenantSecret: "ss",
	})
	defer cl.Close()
	line := fill(0, 9)
	// Far more ops than the burst: success requires absorbing quota sheds
	// via retry, not just luck.
	for i := 0; i < 30; i++ {
		if err := cl.Write(0, line); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if got, err := cl.Read(0); err != nil || !bytes.Equal(got, line) {
		t.Fatalf("final read: %v", err)
	}
	if cl.Counters().Sheds == 0 {
		t.Fatal("resilient client absorbed no sheds at 20 ops/s burst 20 over 31 ops")
	}
	// Bad credentials: every dial fails its HELLO, so ops error out.
	bad := wire.NewResilient(wire.ResilientConfig{
		Addr: addr, Timeout: time.Second, MaxAttempts: 2,
		TenantID: "slow", TenantSecret: "wrong",
	})
	defer bad.Close()
	if _, err := bad.Read(0); err == nil {
		t.Fatal("read with bad tenant credentials succeeded")
	}
}
