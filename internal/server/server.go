// Package server is morphserve's TCP front: one goroutine per connection
// speaking the wire protocol against a shard.Sharded engine, with a
// connection cap, per-frame read/write deadlines, and graceful shutdown
// driven by a context.
//
// The server is deliberately fail-closed and crash-free: every malformed
// frame, unknown opcode, or engine error becomes a typed response frame
// (integrity violations keep their level/index/reason), and a hostile peer
// can at worst cost the server one bounded allocation and one connection
// slot until its deadline expires.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

// Config tunes the listener's limits.
type Config struct {
	// MaxConns caps concurrent connections (default 64). Excess
	// connections receive a StatusError frame and are closed.
	MaxConns int
	// ReadTimeout bounds waiting for the next request frame on a
	// connection (default 30s); an idle peer is disconnected.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame (default 30s).
	WriteTimeout time.Duration
	// AllowTamper enables the OpTamper adversary op. Off by default;
	// only demos and tests that show fail-closed detection turn it on.
	AllowTamper bool
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// Server serves wire-protocol requests against a sharded secure memory.
type Server struct {
	shards *shard.Sharded
	cfg    Config

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New constructs a server over a sharded engine.
func New(sh *shard.Sharded, cfg Config) *Server {
	return &Server{
		shards: sh,
		cfg:    cfg.withDefaults(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until ctx is canceled, then closes the
// listener and every live connection and waits for the per-connection
// goroutines to drain. It always returns a non-nil error: ctx.Err() on
// shutdown, or the accept failure.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-stop:
		}
		_ = ln.Close()
		s.closeAll()
	}()

	var serveErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				serveErr = ctx.Err()
			} else {
				serveErr = fmt.Errorf("server: accept: %w", err)
			}
			break
		}
		if !s.track(conn) {
			s.reject(conn)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
	close(stop)
	wg.Wait()
	return serveErr
}

// track registers a connection, enforcing MaxConns. It reports whether the
// connection was admitted.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	_ = conn.Close()
}

func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		_ = conn.Close()
	}
}

// reject tells an over-limit peer why it is being dropped.
func (s *Server) reject(conn net.Conn) {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = wire.WriteFrame(conn, wire.StatusError, []byte("connection limit reached"))
	_ = conn.Close()
}

// serveConn runs one connection's request loop until the peer closes, a
// deadline fires, or the stream turns unframeable.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		op, payload, err := wire.ReadFrame(br)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			// Length prefix was unreadable, oversized, or the body was
			// cut off: the stream cannot be trusted to be framed
			// anymore. Report (best effort) and drop the connection.
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			status, body := wire.EncodeError(err)
			_ = wire.WriteFrame(bw, status, body)
			_ = bw.Flush()
			return
		}
		status, body := s.handle(op, payload)
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		if err := wire.WriteFrame(bw, status, body); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one request. Every path returns a response; unknown
// or malformed requests are StatusError, integrity violations are
// StatusIntegrity, and the connection stays usable (framing is intact).
func (s *Server) handle(op byte, payload []byte) (byte, []byte) {
	switch op {
	case wire.OpRead:
		addr, err := wire.DecodeAddr(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		line, err := s.shards.Read(addr)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, line

	case wire.OpWrite:
		addr, line, err := wire.DecodeWrite(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		if err := s.shards.Write(addr, line); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, nil

	case wire.OpVerify:
		if err := s.shards.VerifyAll(); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, nil

	case wire.OpStats:
		body, err := wire.EncodeStats(s.shards.Stats())
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpSnapshot:
		var buf bytes.Buffer
		if err := s.shards.Save(&buf); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, buf.Bytes()

	case wire.OpTamper:
		if !s.cfg.AllowTamper {
			return wire.StatusError, []byte("tamper op disabled (start server with tampering enabled)")
		}
		addr, err := wire.DecodeAddr(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		if !s.shards.FlipDataBit(addr, 0, 1) {
			return wire.StatusError, []byte("tamper target not present in store")
		}
		return wire.StatusOK, nil
	}
	return wire.StatusError, []byte(fmt.Sprintf("unknown opcode %#x", op))
}
