// Package server is morphserve's TCP front: one goroutine per connection
// speaking the wire protocol against a secure-memory engine, with a
// connection cap, an in-flight admission gate that sheds overload with
// typed StatusBusy answers, per-frame read/write deadlines with
// slow-loris hardening, a gate-bypassing PING health check, and graceful
// shutdown driven by a context. The engine is an interface so the same
// server runs over a bare shard.Sharded or a durable.Memory; when the
// engine supports checkpoints the server can also cut them on a timer
// and on request.
//
// The server is deliberately fail-closed and crash-free: every malformed
// frame, unknown opcode, or engine error becomes a typed response frame
// (integrity violations keep their level/index/reason), and a hostile peer
// can at worst cost the server one bounded allocation and one connection
// slot until its deadline expires.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/securemem/morphtree/internal/invariant"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
	"github.com/securemem/morphtree/internal/wire"
)

// Engine is the secure-memory surface the server requires. Both
// *shard.Sharded (volatile) and *durable.Memory (crash-consistent)
// implement it.
type Engine interface {
	Read(addr uint64) ([]byte, error)
	Write(addr uint64, line []byte) error
	VerifyAll() error
	Stats() secmem.Stats
	Save(w io.Writer) error
	FlipDataBit(addr uint64, byteOff int, bit uint) bool
}

// Checkpointer is the optional engine surface behind OpCheckpoint and the
// SnapshotEvery ticker: cutting a durable snapshot and reporting its
// sequence number. *durable.Memory implements it; *shard.Sharded does not,
// and checkpoint requests against it fail with a StatusError.
type Checkpointer interface {
	Checkpoint() error
	Seq() uint64
}

// Flusher is the optional engine surface for graceful shutdown: forcing
// buffered WAL appends to stable storage after the last connection drains.
type Flusher interface {
	Flush() error
}

// Prover is the optional engine surface behind OpProof and the
// transparency log: building a verifiable-read witness and reporting
// every shard's root digest. Both *shard.Sharded and *durable.Memory
// implement it; proof requests against an engine without it (or a server
// without an Authority) fail with a StatusError.
type Prover interface {
	Prove(addr uint64) (*proof.Proof, error)
	RootDigests() []proof.Digest
}

// checkpointNotifier is the optional engine surface for learning when a
// durable checkpoint was cut, so each checkpoint epoch's root lands in the
// transparency log. *durable.Memory implements it.
type checkpointNotifier interface {
	OnCheckpoint(fn func(seq uint64))
}

// DomainEngine is the optional engine surface behind multi-tenant serving:
// reads and writes routed through a tenant's key domain, so a line sealed
// by one tenant fails closed (*secmem.IntegrityError) under any other
// tenant's keys. *shard.Sharded implements it after RegisterTenants.
type DomainEngine interface {
	TenantRead(id string, addr uint64) ([]byte, error)
	TenantWrite(id string, addr uint64, line []byte) error
}

// Config tunes the listener's limits.
type Config struct {
	// MaxConns caps concurrent connections (default 64). Excess
	// connections receive a StatusBusy frame and are closed — a shed,
	// not a failure, so resilient clients back off and redial.
	MaxConns int
	// MaxInflight caps requests executing against the engine at once
	// (default 4x GOMAXPROCS). Connections beyond it are admitted — they
	// only cost memory — but their requests wait at the admission gate
	// and are shed with StatusBusy when the wait exceeds ShedWait. That
	// keeps overload an explicit, typed, retryable answer instead of
	// unbounded queueing and timeouts.
	MaxInflight int
	// ShedWait is how long a request may wait for an admission slot
	// before being shed (default 10ms; negative sheds immediately). A
	// small wait absorbs bursts without letting queues build.
	ShedWait time.Duration
	// ReadTimeout bounds waiting for the next request frame on a
	// connection (default 30s); an idle peer is disconnected.
	ReadTimeout time.Duration
	// FrameTimeout bounds reading the remainder of a request frame once
	// its first byte has arrived (default 5s). This is the slow-loris
	// defense: an idle connection may sit for ReadTimeout, but a peer
	// trickling one byte at a time cannot hold a goroutine beyond
	// FrameTimeout per frame.
	FrameTimeout time.Duration
	// WriteTimeout bounds writing one response frame (default 30s).
	WriteTimeout time.Duration
	// AllowTamper enables the OpTamper adversary op. Off by default;
	// only demos and tests that show fail-closed detection turn it on.
	AllowTamper bool
	// SnapshotEvery, when nonzero and the engine is a Checkpointer,
	// cuts a background checkpoint at that period for the lifetime of
	// Serve, bounding recovery replay work to one period's writes.
	SnapshotEvery time.Duration
	// Logf, when set, receives background-activity reports (periodic
	// checkpoints, shutdown flush failures). Nil discards them.
	Logf func(format string, args ...any)
	// Authority, when non-nil and the engine is a Prover, turns on the
	// verifiable-read surface: OpProof responses carry its live root
	// attestation, and OpRoot/OpRootRange serve its transparency log. The
	// server publishes the engine's combined root to the log once at
	// startup and again after every durable checkpoint.
	Authority *proof.Authority
	// Obs, when non-nil, turns on request instrumentation: per-op latency
	// histograms (server.op.<name>.latency), a server.inflight gauge,
	// effective admission-limit gauges (server.limit.*), a pull-time
	// collector for the admission counters, and the OpObs protocol
	// endpoint serving the registry's snapshot.
	Obs *obs.Registry
	// Tracer, when non-nil, receives ReqStart/ReqEnd/Shed events (plus
	// TenantBind/QuotaShed in tenant mode).
	Tracer *obs.Tracer
	// Tenants, when non-nil, turns on multi-tenant serving: connections
	// must bind a tenant with HELLO before any data op, reads and writes
	// route through the tenant's key domain (the engine must implement
	// DomainEngine), and admission runs through Sched instead of the
	// MaxInflight semaphore.
	Tenants *tenant.Registry
	// Sched is the weighted fair admission scheduler for tenant mode;
	// required when Tenants is set. Its capacity replaces MaxInflight as
	// the global concurrency bound.
	Sched *tenant.Scheduler
	// Cluster, when non-nil, turns on the cluster control ops (OpRoute,
	// OpReplicate, OpPromote, OpFollow), served without admission slots
	// or tenant bindings — see ClusterNode. The engine should be the same
	// *cluster.Node so data ops follow its role gating.
	Cluster ClusterNode
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.ShedWait == 0 {
		c.ShedWait = 10 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// NetStats counts the server's admission-control activity and reports the
// effective limits it runs under (after defaulting), so operators see the
// real admission envelope, not the zero values they configured.
type NetStats struct {
	// Accepted and Rejected count connections (Rejected = over MaxConns).
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	// Shed counts requests answered StatusBusy at the admission gate.
	Shed uint64 `json:"shed"`
	// QuotaShed counts requests answered StatusQuota by the tenant
	// scheduler (always 0 in single-tenant mode).
	QuotaShed uint64 `json:"quota_shed"`
	// Pings counts health checks answered.
	Pings uint64 `json:"pings"`
	// SlowLoris counts connections dropped for trickling a frame slower
	// than FrameTimeout.
	SlowLoris uint64 `json:"slow_loris"`
	// MaxConns and MaxInflight are the effective admission limits after
	// defaulting (MaxInflight defaults to 4x GOMAXPROCS, which the
	// configured value never shows).
	MaxConns    int `json:"max_conns"`
	MaxInflight int `json:"max_inflight"`
	// ShedWaitMicros is the effective admission-gate wait in microseconds.
	ShedWaitMicros int64 `json:"shed_wait_us"`
}

// Server serves wire-protocol requests against a secure-memory engine.
type Server struct {
	eng Engine
	cfg Config
	// sem is the admission gate: one slot per concurrently executing
	// engine request.
	sem chan struct{}
	// opLat holds the per-opcode latency histogram for every opcode the
	// protocol defines; all nil when Config.Obs is nil. Indexed by the
	// opcode byte so dispatch never takes a map lookup or lock.
	opLat [256]*obs.Histogram
	// inflight mirrors the admission gate's occupancy as a gauge.
	inflight *obs.Gauge
	// prover is the engine's optional proof surface (nil when the engine
	// cannot prove or no Authority is configured).
	prover Prover
	// Proof-path instruments (nil-safe when Config.Obs is nil).
	proofLat     *obs.Histogram // proof.build.latency
	epochGauge   *obs.Gauge     // proof.epoch (current transparency-log size)
	proofsServed *obs.Counter   // proof.served
	proofsFailed *obs.Counter   // proof.failed

	// domEng is the engine's optional tenant key-domain surface (nil in
	// single-tenant mode); tenantIdx maps tenant ids to stable indices
	// for trace-event payloads. Both immutable after New.
	domEng    DomainEngine
	tenantIdx map[string]uint64

	accepted  atomic.Uint64
	rejected  atomic.Uint64
	shed      atomic.Uint64
	quotaShed atomic.Uint64
	pings     atomic.Uint64
	slowLoris atomic.Uint64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New constructs a server over an engine (a *shard.Sharded or a
// *durable.Memory).
func New(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Tenants != nil && cfg.Sched == nil {
		// Tenant mode with no explicit scheduler: build one with the
		// server's own admission envelope, so -tenants alone upgrades the
		// MaxInflight semaphore to weighted fair admission.
		cfg.Sched = invariant.Must(tenant.NewScheduler(cfg.Tenants, tenant.SchedConfig{
			Capacity: cfg.MaxInflight,
			ShedWait: cfg.ShedWait,
		}))
	}
	s := &Server{
		eng:   eng,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInflight),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Tenants != nil {
		s.domEng, _ = eng.(DomainEngine)
		s.tenantIdx = make(map[string]uint64)
		for i, id := range cfg.Tenants.IDs() {
			s.tenantIdx[id] = uint64(i)
		}
	}
	if cfg.Obs != nil {
		for _, op := range []byte{
			wire.OpRead, wire.OpWrite, wire.OpVerify, wire.OpStats,
			wire.OpSnapshot, wire.OpTamper, wire.OpCheckpoint, wire.OpObs,
			wire.OpProof, wire.OpRoot, wire.OpRootRange, wire.OpHello,
		} {
			s.opLat[op] = cfg.Obs.Histogram("server.op." + wire.OpName(op) + ".latency")
		}
		s.inflight = cfg.Obs.Gauge("server.inflight")
		// The effective admission envelope (after defaulting) as gauges:
		// MaxInflight's 4x-GOMAXPROCS default is otherwise invisible to
		// morphscope.
		cfg.Obs.Gauge("server.limit.max_conns").Set(int64(cfg.MaxConns))
		cfg.Obs.Gauge("server.limit.max_inflight").Set(int64(cfg.MaxInflight))
		cfg.Obs.Gauge("server.limit.shed_wait_us").Set(cfg.ShedWait.Microseconds())
		cfg.Obs.RegisterCollector(func(emit func(string, uint64)) {
			ns := s.NetStats()
			emit("server.accepted", ns.Accepted)
			emit("server.rejected", ns.Rejected)
			emit("server.shed", ns.Shed)
			emit("server.quota_shed", ns.QuotaShed)
			emit("server.pings", ns.Pings)
			emit("server.slow_loris", ns.SlowLoris)
		})
		if cfg.Sched != nil {
			cfg.Sched.RegisterMetrics(cfg.Obs)
		}
	}
	if cfg.Authority != nil {
		if pr, ok := eng.(Prover); ok {
			s.prover = pr
			if cfg.Obs != nil {
				s.proofLat = cfg.Obs.Histogram("proof.build.latency")
				s.epochGauge = cfg.Obs.Gauge("proof.epoch")
				s.proofsServed = cfg.Obs.Counter("proof.served")
				s.proofsFailed = cfg.Obs.Counter("proof.failed")
			}
			// The log's first entry pins the engine's recovered (or empty)
			// state, so an auditor has a root to verify against before the
			// first checkpoint ever fires.
			s.publishRoot()
			if cn, ok := eng.(checkpointNotifier); ok {
				cn.OnCheckpoint(func(uint64) { s.publishRoot() })
			}
		}
	}
	return s
}

// publishRoot appends the engine's current combined root to the
// transparency log as a new epoch and reflects it in telemetry. Called at
// startup and after every durable checkpoint.
func (s *Server) publishRoot() {
	e := s.cfg.Authority.Publish(proof.CombineRoots(s.prover.RootDigests()))
	s.epochGauge.Set(int64(e.Epoch))
	s.cfg.Tracer.Emit(obs.KindRootPublish, -1, e.Epoch, s.cfg.Authority.Size(), 0)
	s.logf("server: published epoch %d root to transparency log", e.Epoch)
}

// NetStats returns a snapshot of the admission-control counters and the
// effective (post-default) admission limits.
func (s *Server) NetStats() NetStats {
	return NetStats{
		Accepted:       s.accepted.Load(),
		Rejected:       s.rejected.Load(),
		Shed:           s.shed.Load(),
		QuotaShed:      s.quotaShed.Load(),
		Pings:          s.pings.Load(),
		SlowLoris:      s.slowLoris.Load(),
		MaxConns:       s.cfg.MaxConns,
		MaxInflight:    s.cfg.MaxInflight,
		ShedWaitMicros: s.cfg.ShedWait.Microseconds(),
	}
}

// logf reports background activity through Config.Logf, if set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until ctx is canceled, then closes the
// listener and every live connection and waits for the per-connection
// goroutines to drain. It always returns a non-nil error: ctx.Err() on
// shutdown, or the accept failure.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-stop:
		}
		_ = ln.Close()
		s.closeAll()
	}()

	if ck, ok := s.eng.(Checkpointer); ok && s.cfg.SnapshotEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.snapshotLoop(ctx, stop, ck)
		}()
	}

	var serveErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				serveErr = ctx.Err()
			} else {
				serveErr = fmt.Errorf("server: accept: %w", err)
			}
			break
		}
		if !s.track(conn) {
			s.rejected.Add(1)
			s.reject(conn)
			continue
		}
		s.accepted.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
	close(stop)
	wg.Wait()
	// Every connection has drained; if the engine buffers WAL appends,
	// push them to stable storage so a graceful shutdown loses nothing.
	if fl, ok := s.eng.(Flusher); ok {
		if err := fl.Flush(); err != nil {
			s.logf("server: shutdown flush: %v", err)
			return errors.Join(serveErr, fmt.Errorf("server: shutdown flush: %w", err))
		}
	}
	return serveErr
}

// snapshotLoop cuts periodic checkpoints until shutdown. A failing
// checkpoint is reported and retried next period: the WAL still holds
// every acknowledged write, so durability is not at risk, only replay
// length.
func (s *Server) snapshotLoop(ctx context.Context, stop <-chan struct{}, ck Checkpointer) {
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-t.C:
			if err := ck.Checkpoint(); err != nil {
				s.logf("server: periodic checkpoint: %v", err)
				continue
			}
			s.logf("server: checkpoint cut, snapshot seq %d", ck.Seq())
		}
	}
}

// track registers a connection, enforcing MaxConns. It reports whether the
// connection was admitted.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
	_ = conn.Close()
}

func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		_ = conn.Close()
	}
}

// reject sheds an over-limit peer with a typed, retryable answer: a
// StatusBusy frame promises nothing was executed, so resilient clients
// back off and redial instead of treating the cap as a hard failure.
func (s *Server) reject(conn net.Conn) {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = wire.WriteFrame(conn, wire.StatusBusy, []byte("connection limit reached; retry with backoff"))
	_ = conn.Close()
}

// serveConn runs one connection's request loop until the peer closes, a
// deadline fires, or the stream turns unframeable.
//
// Two read deadlines guard the loop: an idle peer may sit for
// ReadTimeout between requests, but once a request's first byte arrives
// the whole frame must follow within FrameTimeout. Without the split, a
// slow-loris peer trickling one byte per ReadTimeout holds a goroutine
// and a connection slot indefinitely while never completing a request.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Frame buffers are per connection and reused across requests: the
	// steady-state request loop allocates neither on read nor on write.
	fr := wire.NewFrameReader(br)
	fw := wire.NewFrameWriter(bw)
	cs := &connState{}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		if _, err := br.Peek(1); err != nil {
			// Clean close, idle timeout, or a dead conn before any byte
			// of the next request: nothing useful to report.
			return
		}
		frameStart := time.Now()
		if err := conn.SetReadDeadline(frameStart.Add(s.cfg.FrameTimeout)); err != nil {
			return
		}
		op, payload, err := fr.ReadFrame()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			// Length prefix was unreadable, oversized, or the body was
			// cut off: the stream cannot be trusted to be framed
			// anymore. Report (best effort) and drop the connection.
			if errors.Is(err, wire.ErrTruncated) && time.Since(frameStart) >= s.cfg.FrameTimeout {
				s.slowLoris.Add(1)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			status, body := wire.EncodeError(err)
			_ = fw.WriteFrame(status, body)
			_ = bw.Flush()
			return
		}
		status, body := s.dispatch(cs, op, payload)
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		if err := fw.WriteFrame(status, body); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// connState is the per-connection protocol state: the tenant the
// connection bound with HELLO (empty until then). Only the connection's
// own goroutine touches it.
type connState struct {
	tenant string
}

// dispatch applies admission control and routes to handle. Pings bypass
// the gate: liveness must be observable while the server sheds load, or
// health checks would report a busy server as dead. HELLO also bypasses
// it — binding a tenant is connection setup, and shedding it would
// deadlock the client against its own quota. Everything else waits up to
// ShedWait for an in-flight slot and is shed with StatusBusy — a promise
// that the request was not executed — when none frees; in tenant mode the
// wait runs through the weighted fair scheduler instead, and quota sheds
// answer StatusQuota.
func (s *Server) dispatch(cs *connState, op byte, payload []byte) (byte, []byte) {
	if op == wire.OpPing {
		s.pings.Add(1)
		return wire.StatusOK, nil
	}
	if op == wire.OpHello {
		return s.hello(cs, payload)
	}
	if isClusterOp(op) {
		// Cluster control plane: no admission slot (replication must not
		// be shed by client load) and no tenant binding (node-to-node
		// traffic is not tenant traffic).
		return s.handleCluster(op, payload)
	}
	if s.cfg.Tenants != nil {
		if cs.tenant == "" {
			return wire.StatusError, []byte("hello required: this server is multi-tenant")
		}
		if err := s.cfg.Sched.Acquire(context.Background(), cs.tenant, len(payload)); err != nil {
			return s.quotaReply(cs, op, err)
		}
		defer s.cfg.Sched.Release(cs.tenant)
		return s.execute(cs, op, payload)
	}
	select {
	case s.sem <- struct{}{}:
	default:
		if s.cfg.ShedWait <= 0 {
			return s.shedReply(op)
		}
		t := time.NewTimer(s.cfg.ShedWait)
		select {
		case s.sem <- struct{}{}:
			t.Stop()
		case <-t.C:
			return s.shedReply(op)
		}
	}
	defer func() { <-s.sem }()
	return s.execute(cs, op, payload)
}

// execute runs an admitted request through handle, with instrumentation
// when observability is on.
func (s *Server) execute(cs *connState, op byte, payload []byte) (byte, []byte) {
	if s.cfg.Obs == nil && s.cfg.Tracer == nil {
		return s.handle(cs, op, payload)
	}
	s.inflight.Add(1)
	s.cfg.Tracer.Emit(obs.KindReqStart, -1, uint64(op), 0, 0)
	start := time.Now()
	status, body := s.handle(cs, op, payload)
	dur := time.Since(start)
	s.inflight.Add(-1)
	s.opLat[op].Record(dur)
	s.cfg.Tracer.Emit(obs.KindReqEnd, -1, uint64(op), uint64(status), dur)
	return status, body
}

// hello binds the connection to a tenant after checking the HMAC
// proof-of-possession token. Unknown tenants and bad tokens get the same
// answer, so probing cannot enumerate the tenant table.
func (s *Server) hello(cs *connState, payload []byte) (byte, []byte) {
	if s.cfg.Tenants == nil {
		return wire.StatusError, []byte("hello: this server is single-tenant")
	}
	id, token, err := wire.DecodeHello(payload)
	if err != nil {
		return wire.EncodeError(err)
	}
	if !s.cfg.Tenants.Authenticate(id, token) {
		return wire.StatusError, []byte("hello: unknown tenant or bad token")
	}
	cs.tenant = id
	s.cfg.Tracer.Emit(obs.KindTenantBind, -1, s.tenantIdx[id], 0, 0)
	return wire.StatusOK, nil
}

// quotaReply counts and traces a scheduler shed and encodes the typed
// answer (StatusQuota for quota errors; anything else encodes as-is).
func (s *Server) quotaReply(cs *connState, op byte, err error) (byte, []byte) {
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		s.quotaShed.Add(1)
		s.cfg.Tracer.Emit(obs.KindQuotaShed, -1, uint64(op), s.tenantIdx[cs.tenant], 0)
	}
	return wire.EncodeError(err)
}

// shedReply counts and traces an admission-gate shed and builds the typed
// StatusBusy answer.
func (s *Server) shedReply(op byte) (byte, []byte) {
	s.shed.Add(1)
	s.cfg.Tracer.Emit(obs.KindShed, -1, uint64(op), 0, 0)
	return wire.StatusBusy, []byte("server at capacity; retry with backoff")
}

// handle dispatches one request. Every path returns a response; unknown
// or malformed requests are StatusError, integrity violations are
// StatusIntegrity, and the connection stays usable (framing is intact).
// In tenant mode (cs.tenant bound), reads and writes route through the
// tenant's key domain, so a cross-tenant read fails closed with
// StatusIntegrity — the same answer tampering gets.
func (s *Server) handle(cs *connState, op byte, payload []byte) (byte, []byte) {
	switch op {
	case wire.OpRead:
		addr, err := wire.DecodeAddr(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		var line []byte
		if cs.tenant != "" {
			if s.domEng == nil {
				return wire.StatusError, []byte("read: engine has no tenant key domains")
			}
			line, err = s.domEng.TenantRead(cs.tenant, addr)
		} else {
			line, err = s.eng.Read(addr)
		}
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, line

	case wire.OpWrite:
		addr, line, err := wire.DecodeWrite(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		if cs.tenant != "" {
			if s.domEng == nil {
				return wire.StatusError, []byte("write: engine has no tenant key domains")
			}
			err = s.domEng.TenantWrite(cs.tenant, addr, line)
		} else {
			err = s.eng.Write(addr, line)
		}
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, nil

	case wire.OpVerify:
		if err := s.eng.VerifyAll(); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, nil

	case wire.OpStats:
		body, err := wire.EncodeStats(s.eng.Stats())
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpSnapshot:
		var buf bytes.Buffer
		if err := s.eng.Save(&buf); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, buf.Bytes()

	case wire.OpTamper:
		if !s.cfg.AllowTamper {
			return wire.StatusError, []byte("tamper op disabled (start server with tampering enabled)")
		}
		addr, err := wire.DecodeAddr(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		if !s.eng.FlipDataBit(addr, 0, 1) {
			return wire.StatusError, []byte("tamper target not present in store")
		}
		return wire.StatusOK, nil

	case wire.OpCheckpoint:
		ck, ok := s.eng.(Checkpointer)
		if !ok {
			return wire.StatusError, []byte("checkpoint: server has no durable store (start with -data-dir)")
		}
		if err := ck.Checkpoint(); err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, wire.EncodeAddr(ck.Seq())

	case wire.OpObs:
		if s.cfg.Obs == nil {
			return wire.StatusError, []byte("obs: server has no metrics registry (start with -admin)")
		}
		body, err := s.cfg.Obs.Snapshot().Encode()
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpProof:
		if s.prover == nil {
			return wire.StatusError, []byte("proof: server has no proving engine or signing authority")
		}
		addr, err := wire.DecodeAddr(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		start := time.Now()
		p, err := s.prover.Prove(addr)
		if err != nil {
			s.proofsFailed.Inc()
			return wire.EncodeError(err)
		}
		p.Epoch, p.Attestation = s.cfg.Authority.Attest(proof.CombineRoots(p.ShardRoots))
		body, err := p.Encode(nil)
		if err != nil {
			s.proofsFailed.Inc()
			return wire.EncodeError(err)
		}
		dur := time.Since(start)
		s.proofLat.Record(dur)
		present := uint64(0)
		for _, line := range p.Chain {
			if line != nil {
				present++
			}
		}
		s.cfg.Tracer.Emit(obs.KindProofBuild, int32(p.Shard), addr, present, dur)
		s.proofsServed.Inc()
		return wire.StatusOK, body

	case wire.OpRoot:
		if s.cfg.Authority == nil {
			return wire.StatusError, []byte("root: server has no signing authority")
		}
		info := proof.RootInfo{
			Pub:  s.cfg.Authority.Public(),
			Head: s.cfg.Authority.Head(),
		}
		if latest, ok := s.cfg.Authority.Latest(); ok {
			info.Latest = &latest
		}
		body, err := info.Encode(nil)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body

	case wire.OpRootRange:
		if s.cfg.Authority == nil {
			return wire.StatusError, []byte("root_range: server has no signing authority")
		}
		from, to, err := wire.DecodeRootRange(payload)
		if err != nil {
			return wire.EncodeError(err)
		}
		entries, err := s.cfg.Authority.Entries(from, to)
		if err != nil {
			return wire.EncodeError(err)
		}
		cons, err := s.cfg.Authority.ConsistencyProof(from, to)
		if err != nil {
			return wire.EncodeError(err)
		}
		rr := proof.RangeResult{From: from, To: to, Entries: entries, Proof: cons}
		body, err := rr.Encode(nil)
		if err != nil {
			return wire.EncodeError(err)
		}
		return wire.StatusOK, body
	}
	return wire.StatusError, []byte(fmt.Sprintf("unknown opcode %#x", op))
}
