package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/wire"
)

func testAuthority(t *testing.T) *proof.Authority {
	t.Helper()
	a, err := proof.NewAuthority(proof.DeriveAuthoritySeed(testKey))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestProofOpEndToEnd drives the verifiable-read path over the wire: a
// thin client (no engine access) fetches a proof and accepts the read
// only because the walk recomputes to the attested, log-published root —
// then a server-side tamper makes the same verification fail typed.
func TestProofOpEndToEnd(t *testing.T) {
	const memSize = 1 << 14
	sh := testShards(t, 2, memSize)
	addr, shutdown := startServer(t, sh, Config{Authority: testAuthority(t), AllowTamper: true})
	defer shutdown()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ri, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.VerifyHead(ri.Pub, ri.Head); err != nil {
		t.Fatal(err)
	}
	if ri.Head.Size != 1 {
		t.Fatalf("startup log size = %d, want 1 (root published at New)", ri.Head.Size)
	}
	if ri.Latest == nil || ri.Latest.Epoch != 1 {
		t.Fatalf("Latest = %+v, want epoch 1", ri.Latest)
	}
	if err := proof.VerifyEntry(ri.Pub, *ri.Latest, proof.Digest{}); err != nil {
		t.Fatal(err)
	}

	cfg := testShardConfig(t, 2, memSize)
	params := proof.Params{MemoryBytes: memSize, Shards: 2, Enc: cfg.Mem.Enc, Tree: cfg.Mem.Tree}
	const victim = 5 * secmem.LineBytes
	want := fill(victim, 1)
	if err := c.Write(victim, want); err != nil {
		t.Fatal(err)
	}

	p, err := c.Proof(victim)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Verify(params, testKey, ri.Pub)
	if err != nil {
		t.Fatalf("client-side verify: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("verified read recovered wrong plaintext")
	}

	// Flip one stored ciphertext bit server-side: the next proof still
	// arrives (the server's own read path is not consulted), but the thin
	// client rejects it without trusting any server-side check.
	if err := c.Tamper(victim); err != nil {
		t.Fatal(err)
	}
	p, err = c.Proof(victim)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Verify(params, testKey, ri.Pub)
	var me *proof.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("tampered store verified client-side as %v, want *proof.MismatchError", err)
	}
	if me.Level != -1 {
		t.Fatalf("tamper detected at level %d, want -1 (data line)", me.Level)
	}
}

// TestProofOpRequiresAuthority: without a signing authority the proof
// surface answers typed errors, and the connection stays usable.
func TestProofOpRequiresAuthority(t *testing.T) {
	sh := testShards(t, 2, 1<<13)
	addr, shutdown := startServer(t, sh, Config{})
	defer shutdown()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var re *wire.RemoteError
	if _, err := c.Proof(0); !errors.As(err, &re) {
		t.Fatalf("Proof without authority returned %v, want *wire.RemoteError", err)
	}
	if _, err := c.Root(); !errors.As(err, &re) {
		t.Fatalf("Root without authority returned %v, want *wire.RemoteError", err)
	}
	if _, err := c.RootRange(0, 1); !errors.As(err, &re) {
		t.Fatalf("RootRange without authority returned %v, want *wire.RemoteError", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after proof errors: %v", err)
	}
}

// TestRootRangeRejectsUnknownEpochs: asking past the log's end (or with an
// inverted range) is a typed remote error, not a crash or empty success.
func TestRootRangeRejectsUnknownEpochs(t *testing.T) {
	sh := testShards(t, 2, 1<<13)
	addr, shutdown := startServer(t, sh, Config{Authority: testAuthority(t)})
	defer shutdown()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var re *wire.RemoteError
	if _, err := c.RootRange(0, 99); !errors.As(err, &re) {
		t.Fatalf("future epoch range returned %v, want *wire.RemoteError", err)
	}
	if !strings.Contains(re.Msg, "outside log") {
		t.Fatalf("error %q does not explain the range is outside the log", re.Msg)
	}
	if _, err := c.RootRange(5, 2); !errors.As(err, &re) {
		t.Fatalf("inverted range returned %v, want *wire.RemoteError", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after range errors: %v", err)
	}
}

// TestCheckpointPublishesEpoch: every durable checkpoint appends an epoch
// entry, and the log stays provably consistent across growth — the full
// auditor protocol run in-process.
func TestCheckpointPublishesEpoch(t *testing.T) {
	dm, _ := openDurable(t, t.TempDir(), 2, 1<<13, durable.Config{})
	defer dm.Close()
	addr, shutdown := startServer(t, dm, Config{Authority: testAuthority(t)})
	defer shutdown()
	c, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ri, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	oldHead := ri.Head
	if oldHead.Size != 1 {
		t.Fatalf("startup log size = %d, want 1", oldHead.Size)
	}

	for i := uint64(0); i < 3; i++ {
		if err := c.Write(i*secmem.LineBytes, fill(i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	ri, err = c.Root()
	if err != nil {
		t.Fatal(err)
	}
	newHead := ri.Head
	if newHead.Size != 4 {
		t.Fatalf("log size after 3 checkpoints = %d, want 4", newHead.Size)
	}
	if err := proof.VerifyHead(ri.Pub, newHead); err != nil {
		t.Fatal(err)
	}

	// The auditor's incremental protocol: fetch the gap, verify each
	// entry's signature and chain link, then the consistency proof tying
	// the pinned head to the new one.
	rr, err := c.RootRange(oldHead.Size, newHead.Size)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.RootRange(0, oldHead.Size)
	if err != nil {
		t.Fatal(err)
	}
	prev := proof.EntryHash(first.Entries[len(first.Entries)-1])
	for _, e := range rr.Entries {
		if err := proof.VerifyEntry(ri.Pub, e, prev); err != nil {
			t.Fatal(err)
		}
		prev = proof.EntryHash(e)
	}
	if err := proof.VerifyConsistency(oldHead.Size, oldHead.Hash, newHead.Size, newHead.Hash, rr.Proof); err != nil {
		t.Fatal(err)
	}

	// A proof fetched now carries the current epoch's attestation.
	p, err := c.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != newHead.Size {
		t.Fatalf("proof attested at epoch %d, want %d", p.Epoch, newHead.Size)
	}
}
