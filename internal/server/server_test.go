package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
	"github.com/securemem/morphtree/internal/wire"
)

var testKey = []byte("0123456789abcdef")

func testShards(t *testing.T, n int, memBytes uint64) *shard.Sharded {
	t.Helper()
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(shard.Config{
		Shards: n,
		Mem: secmem.Config{
			MemoryBytes: memBytes,
			Enc:         enc,
			Tree:        tree,
			Key:         testKey,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// startServer runs a server on a loopback listener and returns its address
// plus a shutdown function that cancels the context and waits for Serve to
// drain.
func startServer(t *testing.T, sh Engine, cfg Config) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- New(sh, cfg).Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Serve returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not drain after cancel")
		}
	}
}

func fill(addr, seq uint64) []byte {
	line := make([]byte, secmem.LineBytes)
	for i := 0; i < secmem.LineBytes; i += 16 {
		binary.LittleEndian.PutUint64(line[i:], addr^seq)
		binary.LittleEndian.PutUint64(line[i+8:], seq*0x9e3779b97f4a7c15+uint64(i))
	}
	return line
}

// TestEndToEnd is the serving layer's core test: a server over 4 shards,
// 8 concurrent clients doing verified read/write traffic, aggregated stats
// over the wire, snapshot/restore, per-shard fail-closed tamper detection,
// and graceful shutdown — all in-process so CI runs it under -race.
func TestEndToEnd(t *testing.T) {
	const (
		shards  = 4
		clients = 8
		ops     = 100
		memSize = 1 << 16
	)
	sh := testShards(t, shards, memSize)
	addr, shutdown := startServer(t, sh, Config{AllowTamper: true})

	// Phase 1: concurrent clients on disjoint address ranges, each
	// verifying its own read-back contents.
	var wg sync.WaitGroup
	lines := uint64(memSize / secmem.LineBytes)
	chunk := lines / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr, 10*time.Second)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer cl.Close()
			base := uint64(c) * chunk * secmem.LineBytes
			for i := 0; i < ops; i++ {
				a := base + uint64(i%int(chunk))*secmem.LineBytes
				want := fill(a, uint64(i))
				if err := cl.Write(a, want); err != nil {
					t.Errorf("client %d write: %v", c, err)
					return
				}
				got, err := cl.Read(a)
				if err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("client %d: integrity false positive: content mismatch at %#x", c, a)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		shutdown()
		return
	}

	cl, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Phase 2: wire-level stats must reflect every client's traffic.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != clients*ops {
		t.Fatalf("aggregated writes over the wire = %d, want %d", st.Writes, clients*ops)
	}
	if st.Reads < clients*ops {
		t.Fatalf("aggregated reads over the wire = %d, want >= %d", st.Reads, clients*ops)
	}
	if len(st.Increments) == 0 || st.Increments[0] != clients*ops {
		t.Fatalf("aggregated level-0 increments = %v, want %d", st.Increments, clients*ops)
	}

	// Phase 3: server-side verify, then snapshot and restore into a fresh
	// sharded engine.
	if err := cl.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := shard.Load(shard.Config{
		Shards: shards,
		Mem:    secmem.Config{MemoryBytes: memSize, Enc: enc, Tree: tree, Key: testKey},
	}, bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyAll(); err != nil {
		t.Fatalf("restored snapshot failed verification: %v", err)
	}

	// Phase 4: tamper each shard over the wire; the read must fail closed
	// with a typed IntegrityError while the other shards keep serving.
	for s := 0; s < shards; s++ {
		victim := uint64(s) * secmem.LineBytes // global line s -> shard s
		if err := cl.Tamper(victim); err != nil {
			t.Fatalf("tamper shard %d: %v", s, err)
		}
		_, err := cl.Read(victim)
		var ie *secmem.IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("shard %d: tampered read returned %v, want *secmem.IntegrityError", s, err)
		}
		for o := 0; o < shards; o++ {
			if o <= s {
				continue // already tampered (or about to be)
			}
			clean := uint64(o) * secmem.LineBytes
			if _, err := cl.Read(clean); err != nil {
				t.Fatalf("shard %d failed after tampering shard %d: %v", o, s, err)
			}
		}
	}

	// Phase 5: graceful shutdown; new connections must be refused.
	shutdown()
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestUnknownOpcodeKeepsConnectionUsable sends garbage opcodes between
// valid requests: each gets a typed error response and the framing stays
// intact.
func TestUnknownOpcodeKeepsConnectionUsable(t *testing.T) {
	sh := testShards(t, 2, 1<<14)
	addr, shutdown := startServer(t, sh, Config{})
	defer shutdown()

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, 0xEE, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	status, body, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.StatusError {
		t.Fatalf("unknown opcode: status %#x, want StatusError", status)
	}
	var re *wire.RemoteError
	if !errors.As(wire.DecodeError(status, body), &re) {
		t.Fatalf("unknown opcode error not typed: %q", body)
	}
	// Same connection must still serve a real request.
	payload, err := wire.EncodeWrite(0, fill(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.OpWrite, payload); err != nil {
		t.Fatal(err)
	}
	status, _, err = wire.ReadFrame(conn)
	if err != nil || status != wire.StatusOK {
		t.Fatalf("connection unusable after unknown opcode: status=%#x err=%v", status, err)
	}
}

// TestMalformedPayloadsAreTypedErrors covers bad requests that must not
// panic or kill the server: short payloads, unaligned and out-of-range
// addresses, and a disabled tamper op.
func TestMalformedPayloadsAreTypedErrors(t *testing.T) {
	sh := testShards(t, 2, 1<<14)
	addr, shutdown := startServer(t, sh, Config{}) // tamper disabled
	defer shutdown()

	cl, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var re *wire.RemoteError
	if _, err := cl.Read(13); !errors.As(err, &re) {
		t.Fatalf("unaligned read: %v", err)
	}
	if _, err := cl.Read(1 << 40); !errors.As(err, &re) {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := cl.Tamper(0); !errors.As(err, &re) {
		t.Fatalf("disabled tamper op: %v", err)
	}
	// Raw short payload for OpRead.
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.OpRead, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	status, _, err := wire.ReadFrame(conn)
	if err != nil || status != wire.StatusError {
		t.Fatalf("short read payload: status=%#x err=%v", status, err)
	}
}

// TestConnectionLimit opens more connections than MaxConns allows; the
// excess get a StatusError frame and a close, the admitted ones keep
// working.
func TestConnectionLimit(t *testing.T) {
	sh := testShards(t, 2, 1<<14)
	addr, shutdown := startServer(t, sh, Config{MaxConns: 2})
	defer shutdown()

	c1, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Make sure both are admitted before over-subscribing.
	if err := c1.Write(0, fill(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(secmem.LineBytes, fill(secmem.LineBytes, 1)); err != nil {
		t.Fatal(err)
	}

	over, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if err := over.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	status, body, err := wire.ReadFrame(over)
	if err != nil {
		t.Fatalf("over-limit connection: expected rejection frame, got %v", err)
	}
	if status != wire.StatusBusy {
		t.Fatalf("over-limit connection: status %#x, want StatusBusy (a shed, not a failure)", status)
	}
	var be *wire.BusyError
	if !errors.As(wire.DecodeError(status, body), &be) {
		t.Fatalf("rejection not typed: %q", body)
	}
	if !wire.IsRetryable(wire.DecodeError(status, body)) {
		t.Fatal("connection-cap shed must classify as retryable")
	}
	// Admitted connections still serve.
	if _, err := c1.Read(0); err != nil {
		t.Fatalf("admitted connection broken by over-limit peer: %v", err)
	}
}
