package tenant

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/obs"
)

// SchedConfig tunes the admission scheduler.
type SchedConfig struct {
	// Capacity is the global concurrent-admission limit the tenants
	// share — the generalization of server.Config.MaxInflight.
	Capacity int
	// ShedWait bounds how long an operation may queue for a capacity
	// slot before it is shed with a *QuotaError (resource "capacity").
	// Zero sheds immediately when capacity is exhausted.
	ShedWait time.Duration
	// Now is the clock for token-bucket refill (tests inject one;
	// defaults to time.Now).
	Now func() time.Time
}

// Scheduler is a weighted fair admission scheduler: per-tenant token
// buckets (ops/s, bytes/s) and inflight caps enforced at admission time,
// plus deficit-weighted round-robin dequeue of capacity waiters so a
// greedy tenant cannot starve small ones — each tenant drains queued work
// in proportion to its Weight.
//
// Every shed happens before execution (the operation never touches the
// engine), so *QuotaError is always safe to retry after backoff.
type Scheduler struct {
	// Immutable after NewScheduler.
	reg *Registry
	cfg SchedConfig

	mu       sync.Mutex
	states   map[string]*tenantState
	order    []string // round-robin visit order (sorted tenant ids)
	cursor   int      // next tenant to visit in the DWRR scan
	inflight int      // global admitted count (vs cfg.Capacity)
}

// tenantState is one tenant's scheduling state; all fields are guarded by
// Scheduler.mu.
type tenantState struct {
	spec       Spec
	inflight   int
	queue      []*waiter
	deficit    float64
	opTokens   float64
	byteTokens float64
	lastRefill time.Time
	granted    uint64
	shedOps    uint64
	shedBytes  uint64
	shedCap    uint64 // per-tenant inflight cap
	shedWait   uint64 // capacity-wait timeouts
}

// waiter is one queued admission; granted flips under Scheduler.mu before
// ch closes, so a timed-out waiter can tell a lost race from a real shed.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// NewScheduler builds a scheduler over the registry's tenants. Capacity
// must be >= 1.
func NewScheduler(reg *Registry, cfg SchedConfig) (*Scheduler, error) {
	if reg == nil {
		return nil, fmt.Errorf("tenant: scheduler needs a registry")
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("tenant: scheduler capacity %d must be >= 1", cfg.Capacity)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Scheduler{
		reg:    reg,
		cfg:    cfg,
		states: make(map[string]*tenantState),
		order:  reg.IDs(),
	}
	now := cfg.Now()
	for _, id := range s.order {
		spec, _ := reg.Spec(id)
		s.states[id] = &tenantState{
			spec:       spec,
			opTokens:   burst(spec.OpsPerSec),
			byteTokens: burst(spec.BytesPerSec),
			lastRefill: now,
		}
	}
	return s, nil
}

// burst is a bucket's capacity: one second of rate, floor 1 so a
// single-token op can always eventually pass a configured bucket.
func burst(rate float64) float64 {
	if rate < 1 {
		return 1
	}
	return rate
}

// refill tops up a tenant's token buckets for the elapsed time. Called
// with s.mu held.
func (s *Scheduler) refill(st *tenantState, now time.Time) {
	elapsed := now.Sub(st.lastRefill).Seconds()
	if elapsed <= 0 {
		return
	}
	st.lastRefill = now
	if st.spec.OpsPerSec > 0 {
		st.opTokens += elapsed * st.spec.OpsPerSec
		if max := burst(st.spec.OpsPerSec); st.opTokens > max {
			st.opTokens = max
		}
	}
	if st.spec.BytesPerSec > 0 {
		st.byteTokens += elapsed * st.spec.BytesPerSec
		if max := burst(st.spec.BytesPerSec); st.byteTokens > max {
			st.byteTokens = max
		}
	}
}

// Acquire admits one operation of `bytes` payload for tenant id, blocking
// up to ShedWait for a global capacity slot. It returns nil when admitted
// (the caller must Release exactly once), a *QuotaError when the
// operation is shed by a rate limit, the tenant's inflight cap, or the
// capacity wait bound, and ctx.Err() when the caller's context ends
// first. Rate tokens are consumed at admission time, so shed operations
// never queue.
func (s *Scheduler) Acquire(ctx context.Context, id string, bytes int) error {
	s.mu.Lock()
	st, ok := s.states[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("tenant: unknown tenant %q", id)
	}
	s.refill(st, s.cfg.Now())
	if st.spec.OpsPerSec > 0 && st.opTokens < 1 {
		st.shedOps++
		s.mu.Unlock()
		return &QuotaError{Tenant: id, Resource: "ops", Msg: fmt.Sprintf("rate %.0f ops/s exhausted", st.spec.OpsPerSec)}
	}
	if st.spec.BytesPerSec > 0 && st.byteTokens < float64(bytes) {
		st.shedBytes++
		s.mu.Unlock()
		return &QuotaError{Tenant: id, Resource: "bytes", Msg: fmt.Sprintf("rate %.0f B/s exhausted", st.spec.BytesPerSec)}
	}
	if st.spec.MaxInflight > 0 && st.inflight+len(st.queue) >= st.spec.MaxInflight {
		st.shedCap++
		s.mu.Unlock()
		return &QuotaError{Tenant: id, Resource: "inflight", Msg: fmt.Sprintf("tenant inflight cap %d reached", st.spec.MaxInflight)}
	}
	// Past every per-tenant limit: consume the rate tokens — even if the
	// capacity wait below sheds, the tenant spent its turn (otherwise a
	// tenant could probe a saturated server for free).
	if st.spec.OpsPerSec > 0 {
		st.opTokens--
	}
	if st.spec.BytesPerSec > 0 {
		st.byteTokens -= float64(bytes)
	}
	if s.inflight < s.cfg.Capacity {
		// Spare global capacity: admit immediately (work-conserving; the
		// DWRR queue only forms once capacity is saturated).
		st.inflight++
		st.granted++
		s.inflight++
		s.mu.Unlock()
		return nil
	}
	if s.cfg.ShedWait <= 0 {
		st.shedWait++
		s.mu.Unlock()
		return &QuotaError{Tenant: id, Resource: "capacity", Msg: fmt.Sprintf("capacity %d saturated", s.cfg.Capacity)}
	}
	w := &waiter{ch: make(chan struct{})}
	st.queue = append(st.queue, w)
	s.mu.Unlock()

	timer := time.NewTimer(s.cfg.ShedWait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return nil
	case <-timer.C:
	case <-ctx.Done():
	}
	s.mu.Lock()
	if w.granted {
		// Lost the race: a Release granted us between timeout and lock.
		// The admission stands; the caller proceeds and Releases.
		s.mu.Unlock()
		return nil
	}
	for i, q := range st.queue {
		if q == w {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			break
		}
	}
	if ctx.Err() != nil {
		s.mu.Unlock()
		return ctx.Err()
	}
	st.shedWait++
	s.mu.Unlock()
	return &QuotaError{Tenant: id, Resource: "capacity", Msg: fmt.Sprintf("no capacity slot within %v", s.cfg.ShedWait)}
}

// Release returns tenant id's admission slot and hands the freed global
// capacity to the next queued waiter chosen by deficit-weighted
// round-robin.
func (s *Scheduler) Release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok || st.inflight == 0 {
		return
	}
	st.inflight--
	s.inflight--
	s.grantNext()
}

// grantNext fills free capacity slots from the queues in DWRR order.
// Called with s.mu held.
func (s *Scheduler) grantNext() {
	for s.inflight < s.cfg.Capacity {
		st, w := s.pick()
		if st == nil {
			return
		}
		st.inflight++
		st.granted++
		s.inflight++
		w.granted = true
		close(w.ch)
	}
}

// pick runs one deficit-weighted round-robin scan: a tenant with credit
// and queued work is served (cursor stays, so its remaining credit drains
// before the scan moves on); a queued tenant out of credit is replenished
// by its weight and skipped; an idle tenant's credit resets so it cannot
// hoard. Two sweeps bound the scan — the first replenishes, the second
// must serve if anyone is queued. Called with s.mu held.
func (s *Scheduler) pick() (*tenantState, *waiter) {
	n := len(s.order)
	for scanned := 0; scanned < 2*n; scanned++ {
		st := s.states[s.order[s.cursor%n]]
		if len(st.queue) == 0 {
			st.deficit = 0
			s.cursor = (s.cursor + 1) % n
			continue
		}
		if st.deficit >= 1 {
			st.deficit--
			w := st.queue[0]
			st.queue = st.queue[1:]
			return st, w
		}
		st.deficit += float64(st.spec.Weight)
		s.cursor = (s.cursor + 1) % n
	}
	return nil, nil
}

// TenantSnapshot is one tenant's scheduling counters at a point in time.
type TenantSnapshot struct {
	ID       string
	Inflight int
	Queued   int
	Granted  uint64
	// ShedOps/ShedBytes are rate-limit sheds; ShedInflight is the
	// per-tenant cap; ShedWait is capacity-wait timeouts.
	ShedOps      uint64
	ShedBytes    uint64
	ShedInflight uint64
	ShedWait     uint64
}

// Sheds is the tenant's total shed count across every resource.
func (t TenantSnapshot) Sheds() uint64 {
	return t.ShedOps + t.ShedBytes + t.ShedInflight + t.ShedWait
}

// Snapshot returns every tenant's counters, in registry id order.
func (s *Scheduler) Snapshot() []TenantSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(s.order))
	for _, id := range s.order {
		st := s.states[id]
		out = append(out, TenantSnapshot{
			ID:           id,
			Inflight:     st.inflight,
			Queued:       len(st.queue),
			Granted:      st.granted,
			ShedOps:      st.shedOps,
			ShedBytes:    st.shedBytes,
			ShedInflight: st.shedCap,
			ShedWait:     st.shedWait,
		})
	}
	return out
}

// Capacity returns the global concurrent-admission limit.
func (s *Scheduler) Capacity() int { return s.cfg.Capacity }

// RegisterMetrics registers a pull-time collector exposing per-tenant
// admission counters under the tenant.<id>. prefix (the same namespace
// the shard layer uses for per-tenant engine traffic, so
// /metricz?tenant=<id> slices both) plus the scheduler-wide capacity
// gauge. Nil registries are a no-op.
func (s *Scheduler) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector(func(emit func(string, uint64)) {
		var inflight uint64
		for _, t := range s.Snapshot() {
			prefix := "tenant." + t.ID + "."
			emit(prefix+"granted", t.Granted)
			emit(prefix+"inflight", uint64(t.Inflight))
			emit(prefix+"queued", uint64(t.Queued))
			emit(prefix+"shed.ops", t.ShedOps)
			emit(prefix+"shed.bytes", t.ShedBytes)
			emit(prefix+"shed.inflight", t.ShedInflight)
			emit(prefix+"shed.wait", t.ShedWait)
			emit(prefix+"shed.total", t.Sheds())
			inflight += uint64(t.Inflight)
		}
		emit("sched.capacity", uint64(s.Capacity()))
		emit("sched.inflight", inflight)
	})
}
