package tenant

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/obs"
)

// fakeClock is a manually advanced clock for deterministic token-bucket
// tests. Advance is only called between Acquire calls, and the scheduler
// reads the clock under its own mutex, so a plain field suffices in
// single-goroutine tests; concurrent tests use the real clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func mustScheduler(t *testing.T, specs []Spec, cfg SchedConfig) *Scheduler {
	t.Helper()
	r, err := NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantQuota(t *testing.T, err error, resource string) *QuotaError {
	t.Helper()
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuotaError", err)
	}
	if qe.Resource != resource {
		t.Fatalf("shed on %q, want %q (err: %v)", qe.Resource, resource, qe)
	}
	return qe
}

func TestSchedulerValidation(t *testing.T) {
	r, err := NewRegistry([]Spec{{ID: "a", Secret: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(nil, SchedConfig{Capacity: 1}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewScheduler(r, SchedConfig{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestOpsTokenBucket(t *testing.T) {
	clk := newFakeClock()
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s", OpsPerSec: 2}},
		SchedConfig{Capacity: 100, Now: clk.Now})
	ctx := context.Background()

	// Burst = one second of rate: two ops pass, the third sheds.
	for i := 0; i < 2; i++ {
		if err := s.Acquire(ctx, "a", 0); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		s.Release("a")
	}
	wantQuota(t, s.Acquire(ctx, "a", 0), "ops")

	// Half a second refills one token; a second op still sheds.
	clk.Advance(500 * time.Millisecond)
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	s.Release("a")
	wantQuota(t, s.Acquire(ctx, "a", 0), "ops")

	snap := s.Snapshot()
	if snap[0].ShedOps != 2 || snap[0].Granted != 3 {
		t.Fatalf("snapshot = %+v, want 2 ops sheds, 3 grants", snap[0])
	}
}

func TestBytesTokenBucket(t *testing.T) {
	clk := newFakeClock()
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s", BytesPerSec: 100}},
		SchedConfig{Capacity: 100, Now: clk.Now})
	ctx := context.Background()

	if err := s.Acquire(ctx, "a", 60); err != nil {
		t.Fatal(err)
	}
	s.Release("a")
	wantQuota(t, s.Acquire(ctx, "a", 60), "bytes")
	// Bytes tokens cap at one second of rate: after a long idle gap the
	// bucket holds 100, not 60+elapsed*100.
	clk.Advance(time.Hour)
	if err := s.Acquire(ctx, "a", 100); err != nil {
		t.Fatal(err)
	}
	s.Release("a")
	wantQuota(t, s.Acquire(ctx, "a", 1), "bytes")
}

func TestTenantInflightCap(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s", MaxInflight: 2}},
		SchedConfig{Capacity: 100})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := s.Acquire(ctx, "a", 0); err != nil {
			t.Fatal(err)
		}
	}
	wantQuota(t, s.Acquire(ctx, "a", 0), "inflight")
	s.Release("a")
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestCapacityImmediateShed(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s"}}, SchedConfig{Capacity: 1})
	ctx := context.Background()
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	// ShedWait zero: no queue forms, saturation sheds immediately.
	wantQuota(t, s.Acquire(ctx, "a", 0), "capacity")
}

func TestCapacityWaitTimeout(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s"}},
		SchedConfig{Capacity: 1, ShedWait: 30 * time.Millisecond})
	ctx := context.Background()
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	wantQuota(t, s.Acquire(ctx, "a", 0), "capacity")
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("shed after %v, want at least the 30ms wait bound", waited)
	}
	if snap := s.Snapshot(); snap[0].ShedWait != 1 {
		t.Fatalf("ShedWait = %d, want 1", snap[0].ShedWait)
	}
}

func TestCapacityWaitGrantedOnRelease(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s"}},
		SchedConfig{Capacity: 1, ShedWait: 5 * time.Second})
	ctx := context.Background()
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- s.Acquire(ctx, "a", 0) }()
	// Wait for the waiter to queue, then free the slot.
	waitFor(t, func() bool { return s.Snapshot()[0].Queued == 1 })
	s.Release("a")
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never granted after Release")
	}
	s.Release("a")
}

func TestCapacityWaitContextCancel(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s"}},
		SchedConfig{Capacity: 1, ShedWait: 5 * time.Second})
	if err := s.Acquire(context.Background(), "a", 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- s.Acquire(ctx, "a", 0) }()
	waitFor(t, func() bool { return s.Snapshot()[0].Queued == 1 })
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	if s.Snapshot()[0].Queued != 0 {
		t.Fatal("cancelled waiter left in queue")
	}
}

func TestUnknownTenant(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s"}}, SchedConfig{Capacity: 1})
	err := s.Acquire(context.Background(), "nobody", 0)
	if err == nil {
		t.Fatal("unknown tenant admitted")
	}
	var qe *QuotaError
	if errors.As(err, &qe) {
		t.Fatalf("unknown tenant got a retryable *QuotaError (%v); want a hard error", err)
	}
	// Release of an unknown (or never-admitted) tenant must be harmless.
	s.Release("nobody")
	s.Release("a")
}

// TestDWRRFairness pins down the deficit-weighted round-robin dequeue
// order: with weights 1:2 and both queues backlogged, grants interleave
// a, b, b, a, b, b, ... — the weighted fair pattern, not FIFO and not
// starvation.
func TestDWRRFairness(t *testing.T) {
	s := mustScheduler(t, []Spec{
		{ID: "a", Secret: "s", Weight: 1},
		{ID: "b", Secret: "s", Weight: 2},
	}, SchedConfig{Capacity: 1, ShedWait: time.Minute})
	ctx := context.Background()

	// Hold the only slot so every subsequent Acquire queues.
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(id string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Acquire(ctx, id, 0); err != nil {
					t.Errorf("acquire %s: %v", id, err)
					return
				}
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
				s.Release(id)
			}()
		}
	}
	enqueue("a", 3)
	enqueue("b", 6)
	waitFor(t, func() bool {
		snap := s.Snapshot()
		return snap[0].Queued == 3 && snap[1].Queued == 6
	})

	// Free the slot: grants now proceed one at a time (capacity 1), each
	// goroutine recording its turn before releasing to the next.
	s.Release("a")
	wg.Wait()

	want := []string{"a", "b", "b", "a", "b", "b", "a", "b", "b"}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("DWRR grant order = %v, want %v", order, want)
	}
}

// TestSchedulerConcurrent hammers Acquire/Release from many goroutines
// under the race detector: grants never exceed capacity, and the final
// accounting balances.
func TestSchedulerConcurrent(t *testing.T) {
	s := mustScheduler(t, []Spec{
		{ID: "a", Secret: "s", Weight: 1, OpsPerSec: 1e9},
		{ID: "b", Secret: "s", Weight: 3},
		{ID: "c", Secret: "s", MaxInflight: 4},
	}, SchedConfig{Capacity: 8, ShedWait: 2 * time.Millisecond})
	ids := []string{"a", "b", "c"}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := ids[rng.Intn(len(ids))]
				err := s.Acquire(ctx, id, rng.Intn(128))
				if err != nil {
					var qe *QuotaError
					if !errors.As(err, &qe) {
						t.Errorf("acquire %s: %v", id, err)
					}
					continue
				}
				s.Release(id)
			}
		}(g)
	}
	wg.Wait()
	var granted, sheds uint64
	for _, ts := range s.Snapshot() {
		if ts.Inflight != 0 || ts.Queued != 0 {
			t.Errorf("tenant %s left inflight=%d queued=%d", ts.ID, ts.Inflight, ts.Queued)
		}
		granted += ts.Granted
		sheds += ts.Sheds()
	}
	if granted+sheds != 16*200 {
		t.Fatalf("granted %d + sheds %d != %d ops", granted, sheds, 16*200)
	}
}

func TestRegisterMetrics(t *testing.T) {
	s := mustScheduler(t, []Spec{{ID: "a", Secret: "s", OpsPerSec: 1}},
		SchedConfig{Capacity: 3})
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	ctx := context.Background()
	if err := s.Acquire(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	wantQuota(t, s.Acquire(ctx, "a", 0), "ops")
	snap := reg.Snapshot()
	checks := map[string]uint64{
		"tenant.a.granted":    1,
		"tenant.a.inflight":   1,
		"tenant.a.shed.ops":   1,
		"tenant.a.shed.total": 1,
		"sched.capacity":      3,
		"sched.inflight":      1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// The tenant-scoped filter keeps the tenant.a.* slice and drops the
	// scheduler-wide series.
	f := snap.FilterTenant("a")
	if _, ok := f.Counters["tenant.a.granted"]; !ok {
		t.Error("FilterTenant dropped tenant.a.granted")
	}
	if _, ok := f.Counters["sched.capacity"]; ok {
		t.Error("FilterTenant kept sched.capacity")
	}
	s.Release("a")
}

// waitFor polls until cond holds (the scheduler has no wait hooks; tests
// poll snapshots instead of sleeping fixed amounts).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
