// Package tenant is the multi-tenant isolation layer: a registry of tenant
// identities (authentication secret, scheduling weight, quota spec) and a
// weighted fair admission scheduler that generalizes the server's single
// MaxInflight semaphore into per-tenant accounting.
//
// The design follows the paper's core lesson — metadata overhead must be
// managed per workload — translated to serving: every tenant gets its own
// key domain (internal/secmem.Domain, derived per (shard, tenant) via
// internal/proof.DeriveTenantKey), its own token buckets and inflight cap,
// and a deficit-weighted round-robin share of the server's global
// concurrency, so one greedy tenant is shed with a typed *QuotaError while
// small tenants keep making progress.
package tenant

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// TokenLen is the length of a HELLO authentication token.
const TokenLen = sha256.Size

// Spec declares one tenant: identity, authentication secret, and quotas.
// Zero quota fields mean unlimited; Weight zero means weight 1.
type Spec struct {
	// ID is the tenant identity bound to connections at HELLO time and
	// used for key-domain derivation. Non-empty, unique, at most 255
	// bytes (it crosses the wire length-prefixed by one byte).
	ID string `json:"id"`
	// Secret authenticates HELLO frames: the client proves possession by
	// sending HMAC-SHA256(secret, "morphtree/tenant-hello/<id>").
	Secret string `json:"secret"`
	// Weight is the tenant's deficit-round-robin share of global
	// admission capacity relative to other tenants (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxInflight caps the tenant's concurrently admitted + queued
	// operations (0 = no per-tenant cap).
	MaxInflight int `json:"max_inflight,omitempty"`
	// OpsPerSec is the tenant's token-bucket operation rate (0 = none).
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// BytesPerSec is the tenant's token-bucket payload-byte rate
	// (0 = none).
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
}

// QuotaError reports an operation shed by quota or fairness enforcement
// before execution: the operation was never admitted, so retrying after
// backoff is always safe (wire.IsRetryable treats it like BusyError).
// It crosses the wire intact as StatusQuota.
type QuotaError struct {
	// Tenant is the shed tenant's id.
	Tenant string
	// Resource names the exhausted budget: "ops", "bytes", "inflight",
	// or "capacity".
	Resource string
	// Msg describes the limit.
	Msg string
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant: %q shed on %s quota: %s", e.Tenant, e.Resource, e.Msg)
}

// Registry holds the tenant table. Immutable after New; safe for
// concurrent use.
type Registry struct {
	specs map[string]Spec
	ids   []string // sorted, for deterministic iteration
}

// NewRegistry validates and indexes a tenant table.
func NewRegistry(specs []Spec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one tenant")
	}
	r := &Registry{specs: make(map[string]Spec, len(specs))}
	for _, s := range specs {
		if s.ID == "" {
			return nil, fmt.Errorf("tenant: tenant id must be non-empty")
		}
		if len(s.ID) > 255 {
			return nil, fmt.Errorf("tenant: tenant id %q exceeds 255 bytes", s.ID[:16]+"...")
		}
		if _, dup := r.specs[s.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant id %q", s.ID)
		}
		if s.Secret == "" {
			return nil, fmt.Errorf("tenant: tenant %q needs a secret", s.ID)
		}
		if s.Weight < 0 || s.MaxInflight < 0 || s.OpsPerSec < 0 || s.BytesPerSec < 0 {
			return nil, fmt.Errorf("tenant: tenant %q has a negative quota field", s.ID)
		}
		if s.Weight == 0 {
			s.Weight = 1
		}
		r.specs[s.ID] = s
		r.ids = append(r.ids, s.ID)
	}
	sort.Strings(r.ids)
	return r, nil
}

// LoadConfig reads a tenant table from a JSON file: an array of Spec
// objects ({"id", "secret", "weight", "max_inflight", "ops_per_sec",
// "bytes_per_sec"}).
func LoadConfig(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: config: %w", err)
	}
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("tenant: config %s: %w", path, err)
	}
	return NewRegistry(specs)
}

// IDs returns the registered tenant ids in sorted order.
func (r *Registry) IDs() []string {
	return append([]string(nil), r.ids...)
}

// Spec returns tenant id's spec.
func (r *Registry) Spec(id string) (Spec, bool) {
	s, ok := r.specs[id]
	return s, ok
}

// HelloToken computes the HELLO proof-of-possession token for a tenant:
// HMAC-SHA256(secret, "morphtree/tenant-hello/<id>"). Both the client
// (to build a HELLO frame) and the server (to check one) call this; the
// token is derived, never the secret itself, so the secret never crosses
// the wire.
func HelloToken(secret, id string) [TokenLen]byte {
	h := hmac.New(sha256.New, []byte(secret))
	fmt.Fprintf(h, "morphtree/tenant-hello/%s", id)
	var tok [TokenLen]byte
	copy(tok[:], h.Sum(nil))
	return tok
}

// Authenticate verifies a HELLO token for tenant id in constant time.
// Unknown tenants fail.
func (r *Registry) Authenticate(id string, token []byte) bool {
	s, ok := r.specs[id]
	if !ok {
		return false
	}
	want := HelloToken(s.Secret, id)
	return hmac.Equal(token, want[:])
}
