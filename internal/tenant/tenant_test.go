package tenant

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testSpecs() []Spec {
	return []Spec{
		{ID: "alpha", Secret: "alpha-secret", Weight: 2},
		{ID: "beta", Secret: "beta-secret"},
	}
}

func TestNewRegistryValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []Spec
		want  string // substring of the error, "" = ok
	}{
		{"ok", testSpecs(), ""},
		{"empty", nil, "at least one"},
		{"no id", []Spec{{Secret: "s"}}, "non-empty"},
		{"long id", []Spec{{ID: strings.Repeat("x", 256), Secret: "s"}}, "255"},
		{"dup id", []Spec{{ID: "a", Secret: "s"}, {ID: "a", Secret: "s"}}, "duplicate"},
		{"no secret", []Spec{{ID: "a"}}, "secret"},
		{"negative weight", []Spec{{ID: "a", Secret: "s", Weight: -1}}, "negative"},
		{"negative rate", []Spec{{ID: "a", Secret: "s", OpsPerSec: -5}}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewRegistry(tc.specs)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("NewRegistry: %v", err)
				}
				if r == nil {
					t.Fatal("NewRegistry returned nil registry")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewRegistry error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestRegistryDefaultsAndLookup(t *testing.T) {
	r, err := NewRegistry(testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("IDs() = %v, want sorted [alpha beta]", got)
	}
	b, ok := r.Spec("beta")
	if !ok {
		t.Fatal("Spec(beta) not found")
	}
	if b.Weight != 1 {
		t.Fatalf("zero weight defaulted to %d, want 1", b.Weight)
	}
	if _, ok := r.Spec("nobody"); ok {
		t.Fatal("Spec(nobody) unexpectedly found")
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	cfg := `[
  {"id": "victim", "secret": "vs", "weight": 4},
  {"id": "greedy", "secret": "gs", "ops_per_sec": 100, "max_inflight": 2}
]`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"greedy", "victim"}) {
		t.Fatalf("IDs() = %v", got)
	}
	g, _ := r.Spec("greedy")
	if g.OpsPerSec != 100 || g.MaxInflight != 2 {
		t.Fatalf("greedy spec = %+v", g)
	}

	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadConfig(missing) succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("LoadConfig(bad json) succeeded")
	}
}

func TestHelloTokenAuthenticate(t *testing.T) {
	r, err := NewRegistry(testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	tok := HelloToken("alpha-secret", "alpha")
	if !r.Authenticate("alpha", tok[:]) {
		t.Fatal("valid token rejected")
	}
	// A token is bound to its tenant id: alpha's token must not admit beta,
	// even if both shared a secret.
	if r.Authenticate("beta", tok[:]) {
		t.Fatal("alpha token accepted for beta")
	}
	wrong := HelloToken("wrong-secret", "alpha")
	if r.Authenticate("alpha", wrong[:]) {
		t.Fatal("token from wrong secret accepted")
	}
	if r.Authenticate("nobody", tok[:]) {
		t.Fatal("unknown tenant accepted")
	}
	if r.Authenticate("alpha", tok[:TokenLen-1]) {
		t.Fatal("truncated token accepted")
	}
}

func TestQuotaErrorMessage(t *testing.T) {
	e := &QuotaError{Tenant: "alpha", Resource: "ops", Msg: "rate 100 ops/s exhausted"}
	for _, want := range []string{"alpha", "ops", "exhausted"} {
		if !strings.Contains(e.Error(), want) {
			t.Fatalf("Error() = %q, missing %q", e.Error(), want)
		}
	}
}
