// Package bitops provides bit-granular readers and writers used to pack
// counter cachelines into their exact 512-bit hardware layouts.
//
// Bits are numbered MSB-first within the 64-byte line, matching the layout
// diagrams in the paper (Figures 8 and 13): field order in the figure is the
// order fields are written, and the first field occupies the most significant
// bits of byte 0.
package bitops

import "github.com/securemem/morphtree/internal/invariant"

// WordBits is the machine word width bit-level codecs chunk by: the widest
// single read or write, and the unit layout padding is drained in.
const WordBits = 64

// Writer packs values into a fixed-size bit buffer, MSB-first.
type Writer struct {
	buf []byte
	pos int // next bit index to write
}

// NewWriter returns a Writer over a zeroed buffer of size bytes.
func NewWriter(size int) *Writer {
	return &Writer{buf: make([]byte, size)}
}

// WriteBits appends the low width bits of v. Width must be in [0, WordBits],
// v must fit in width bits, and the write must not overflow the buffer;
// violations are programming errors in a fixed-layout codec, not runtime
// conditions, checked under the morphdebug build tag (out-of-buffer writes
// additionally fail the slice bounds check in any build).
func (w *Writer) WriteBits(v uint64, width int) {
	invariant.Assertf(width >= 0 && width <= WordBits, "bitops: invalid width %d", width)
	invariant.Assertf(width >= WordBits || v < 1<<uint(width), "bitops: value %d does not fit in %d bits", v, width)
	invariant.Assertf(w.pos+width <= len(w.buf)*8, "bitops: write of %d bits at %d overflows %d-byte buffer", width, w.pos, len(w.buf))
	for i := width - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		if bit != 0 {
			w.buf[w.pos/8] |= 1 << uint(7-w.pos%8)
		}
		w.pos++
	}
}

// Pos reports the number of bits written so far.
func (w *Writer) Pos() int { return w.pos }

// Bytes returns the underlying buffer. The Writer must have been filled
// exactly; partial lines indicate a layout bug.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader unpacks values from a bit buffer, MSB-first.
type Reader struct {
	buf []byte
	pos int
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits extracts the next width bits as an unsigned integer. Width and
// buffer bounds are morphdebug-asserted like WriteBits.
func (r *Reader) ReadBits(width int) uint64 {
	invariant.Assertf(width >= 0 && width <= WordBits, "bitops: invalid width %d", width)
	invariant.Assertf(r.pos+width <= len(r.buf)*8, "bitops: read of %d bits at %d overflows %d-byte buffer", width, r.pos, len(r.buf))
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if r.buf[r.pos/8]&(1<<uint(7-r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v
}

// Pos reports the number of bits read so far.
func (r *Reader) Pos() int { return r.pos }

// Skip advances the read position by width bits.
func (r *Reader) Skip(width int) {
	invariant.Assertf(r.pos+width <= len(r.buf)*8, "bitops: skip overflows buffer")
	r.pos += width
}

// PopCount64 returns the number of set bits in v. Provided here so the
// counters package has a single dependency for bit arithmetic.
func PopCount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
