package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/securemem/morphtree/internal/invariant"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.WriteBits(0x1FFFFFFFFFFFFFF, 57) // 57-bit all-ones
	w.WriteBits(0x2A, 7)
	w.WriteBits(0, 12)
	w.WriteBits(0xDEADBEEF, 32)
	if w.Pos() != 57+7+12+32 {
		t.Fatalf("pos = %d", w.Pos())
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(57); got != 0x1FFFFFFFFFFFFFF {
		t.Errorf("57-bit field = %#x", got)
	}
	if got := r.ReadBits(7); got != 0x2A {
		t.Errorf("7-bit field = %#x", got)
	}
	if got := r.ReadBits(12); got != 0 {
		t.Errorf("12-bit field = %#x", got)
	}
	if got := r.ReadBits(32); got != 0xDEADBEEF {
		t.Errorf("32-bit field = %#x", got)
	}
}

func TestMSBFirstLayout(t *testing.T) {
	// Writing a single 1-bit must set the MSB of byte 0.
	w := NewWriter(2)
	w.WriteBits(1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("byte 0 = %#x, want 0x80", w.Bytes()[0])
	}
	// A 4-bit value 0xF after 4 zero bits lands in the low nibble of byte 0.
	w = NewWriter(2)
	w.WriteBits(0, 4)
	w.WriteBits(0xF, 4)
	if w.Bytes()[0] != 0x0F {
		t.Fatalf("byte 0 = %#x, want 0x0F", w.Bytes()[0])
	}
}

func TestCrossByteBoundary(t *testing.T) {
	w := NewWriter(3)
	w.WriteBits(0x3, 3)   // 011
	w.WriteBits(0x1FF, 9) // crosses byte 0 -> byte 1
	w.WriteBits(0xAB, 8)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0x3 {
		t.Errorf("field 1 = %#x", got)
	}
	if got := r.ReadBits(9); got != 0x1FF {
		t.Errorf("field 2 = %#x", got)
	}
	if got := r.ReadBits(8); got != 0xAB {
		t.Errorf("field 3 = %#x", got)
	}
}

func TestSkip(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xAA, 8)
	w.WriteBits(0x55, 8)
	r := NewReader(w.Bytes())
	r.Skip(8)
	if got := r.ReadBits(8); got != 0x55 {
		t.Fatalf("after skip = %#x", got)
	}
	if r.Pos() != 16 {
		t.Fatalf("pos = %d", r.Pos())
	}
}

func TestWidthZero(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0, 0)
	if w.Pos() != 0 {
		t.Fatalf("zero-width write moved position")
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(0); got != 0 {
		t.Fatalf("zero-width read = %d", got)
	}
}

func TestWriteOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on buffer overflow")
		}
	}()
	w := NewWriter(1)
	// Non-zero bits so the out-of-buffer store trips the runtime bounds
	// check even without morphdebug assertions.
	w.WriteBits(0x1FF, 9)
}

func TestValueTooWidePanics(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("oversized-value check is a morphdebug assertion; run with -tags morphdebug")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversized value")
		}
	}()
	w := NewWriter(8)
	w.WriteBits(256, 8)
}

func TestReadOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on read overflow")
		}
	}()
	r := NewReader([]byte{0})
	r.ReadBits(9)
}

func TestPopCount64(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {0xFF, 8}, {1 << 63, 1}, {^uint64(0), 64}, {0xA5A5, 8},
	}
	for _, c := range cases {
		if got := PopCount64(c.v); got != c.want {
			t.Errorf("PopCount64(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: any sequence of (value, width) fields round-trips exactly.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		type field struct {
			v     uint64
			width int
		}
		fields := make([]field, 0, n)
		total := 0
		for i := 0; i < n; i++ {
			width := 1 + rng.Intn(64)
			if total+width > 512 {
				break
			}
			var v uint64
			if width == 64 {
				v = rng.Uint64()
			} else {
				v = rng.Uint64() & ((1 << uint(width)) - 1)
			}
			fields = append(fields, field{v, width})
			total += width
		}
		w := NewWriter(64)
		for _, fl := range fields {
			w.WriteBits(fl.v, fl.width)
		}
		r := NewReader(w.Bytes())
		for _, fl := range fields {
			if r.ReadBits(fl.width) != fl.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
