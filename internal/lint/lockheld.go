package lint

import (
	"go/ast"
	"go/types"

	"github.com/securemem/morphtree/internal/analysis"
)

// LockHeld is a heuristic check that mutex-protected state is only touched
// with the mutex held.
//
// Convention enforced: in a struct with a field `mu sync.Mutex` (or
// RWMutex), every field declared AFTER mu is protected by it — immutable
// configuration goes before mu, mutable state after (internal/cache.Cache
// and internal/secmem.Memory follow this layout). An exported method that
// reads or writes a protected field must call mu.Lock/RLock somewhere in
// its body; unexported methods are assumed to be called with the lock
// already held (the repo's *Locked-helper convention). This is the
// single-memory-controller serialization the engine models (secmem doc):
// losing it silently breaks counter monotonicity under concurrent writers.
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "heuristic: fields declared after a mu sync.Mutex must only be touched with mu held",
	Run:  runLockHeld,
}

func runLockHeld(pass *analysis.Pass) error {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
			return true
		}
		recv := receiverNamed(pass, fn)
		if recv == nil || guarded[recv] == nil {
			return true
		}
		if locksMutex(pass, fn.Body) {
			return true
		}
		// No lock acquired anywhere in the method: any protected-field
		// access is a finding.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || !guarded[recv][obj] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s accesses mutex-protected field %s without holding mu (declared after mu in %s)", recv.Obj().Name(), fn.Name.Name, obj.Name(), recv.Obj().Name())
			return true
		})
		return true
	})
	return nil
}

// guardedFields maps each named struct type with a `mu` mutex field to the
// set of field objects declared after it.
func guardedFields(pass *analysis.Pass) map[*types.Named]map[types.Object]bool {
	out := make(map[*types.Named]map[types.Object]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		muIndex := -1
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "mu" && isMutex(f.Type()) {
				muIndex = i
				break
			}
		}
		if muIndex < 0 || muIndex == st.NumFields()-1 {
			continue
		}
		fields := make(map[types.Object]bool)
		for i := muIndex + 1; i < st.NumFields(); i++ {
			fields[st.Field(i)] = true
		}
		out[named] = fields
	}
	return out
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if !analysis.PkgNamed(obj.Pkg(), "sync") {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverNamed resolves a method's receiver to its named struct type.
func receiverNamed(pass *analysis.Pass, fn *ast.FuncDecl) *types.Named {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.Types[fn.Recv.List[0].Type].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// locksMutex reports whether the body contains a mu.Lock or mu.RLock call.
func locksMutex(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "mu" {
			found = true
		}
		return !found
	})
	return found
}
