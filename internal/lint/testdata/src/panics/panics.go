package panics

import (
	"fmt"

	"invariant"
)

func bad(x int) error {
	if x < 0 {
		panic("negative input") // want "bare panic in library package panics"
	}
	if x > 100 {
		panic(fmt.Sprintf("too large: %d", x)) // want "bare panic in library package panics"
	}
	return nil
}

func unreachable(x int) int {
	switch {
	case x >= 0:
		return x
	case x < 0:
		return -x
	}
	panic(invariant.Violationf("unhandled value %d", x))
}

func allowed() {
	panic("justified") //morphlint:allow panicpolicy -- fixture exercises the suppression directive
}
