package secmem

import "fmt"

func Persist() error { return nil }

func Decode(b []byte) (int, error) { return len(b), nil }

func bad() {
	Persist()       // want "result of secmem.Persist includes an error that is discarded"
	Decode(nil)     // want "result of secmem.Decode includes an error that is discarded"
	defer Persist() // want "result of secmem.Persist includes an error that is discarded"
	go Persist()    // want "result of secmem.Persist includes an error that is discarded"
}

func good() error {
	_ = Persist() // explicit discard stays visible in review
	if _, err := Decode(nil); err != nil {
		return err
	}
	fmt.Println("fmt is not a watched package")
	return Persist()
}
