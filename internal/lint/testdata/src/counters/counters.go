package counters

// LineBytes is a package-level const: the sanctioned home for the literal.
const LineBytes = 64

// splitMinorBits is a package-level layout table: also sanctioned.
var splitMinorBits = map[int]int{64: 6, 128: 3}

func encode() int {
	n := 64               // want "hard-coded cacheline layout literal 64"
	n += 128              // want "hard-coded cacheline layout literal 128"
	bits := 512           // want "hard-coded cacheline layout literal 512"
	const localNamed = 64 // a function-local const names the literal: the fix, not a finding
	width := 32           // not a layout literal
	tail := 64            //morphlint:allow cachelineinv -- fixture exercises the suppression directive
	return n + bits + localNamed + width + tail + splitMinorBits[LineBytes]
}

func clean() int {
	return LineBytes * 8
}
