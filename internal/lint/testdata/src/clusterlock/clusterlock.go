// Package clusterlock mirrors internal/cluster's Node layout: immutable
// configuration before mu, the role state machine after it. Reading the
// role or epoch without the mutex races the fencing transitions — the
// exact bug class that lets a deposed primary keep acknowledging writes.
package clusterlock

import "sync"

// Node follows the repo convention: config fields before mu, the
// mutex-protected role state after it.
type Node struct {
	self string

	mu     sync.Mutex
	role   string
	epoch  uint64
	leader string
}

// Self touches only immutable config: no lock needed.
func (n *Node) Self() string { return n.self }

// Route snapshots the role state under the mutex.
func (n *Node) Route() (string, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.epoch
}

// Role reads the state machine unlocked: a fencing transition can race it.
func (n *Node) Role() string {
	return n.role // want "Node.Role accesses mutex-protected field role"
}

// Fenced checks the epoch unlocked: same race.
func (n *Node) Fenced(observed uint64) bool {
	return observed > n.epoch // want "Node.Fenced accesses mutex-protected field epoch"
}

// follow is unexported: assumed called with mu already held.
func (n *Node) follow(epoch uint64, leader string) {
	n.epoch = epoch
	n.leader = leader
	n.role = "replica"
}
