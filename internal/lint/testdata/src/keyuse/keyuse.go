// Package keyuse exercises keytaint's cross-package flow: sources,
// summaries and the sealed escape hatch all live in the keymat and obs
// fixture packages and arrive here as facts.
package keyuse

import (
	"fmt"

	"keymat"
	"obs"
)

func logsDerived(master []byte) {
	k := keymat.Derive(master, "wire")
	fmt.Printf("derived %x\n", k) // want "key material flows into fmt.Printf"
}

func logsField(c *keymat.Config) {
	fmt.Println(c.Key) // want "key material flows into fmt.Println"
}

func leaksThroughHelper(c *keymat.Config) string {
	return keymat.Describe(c.Key) // want `key material flows into fmt.Sprintf \(via keymat.Describe\)`
}

// sealedIsClean: the redaction helper's SealedFact crosses packages too.
func sealedIsClean(c *keymat.Config) uint64 {
	return obs.Fingerprint(c.Key)
}

// publicIsClean: non-secret fields of a key-holding struct stay printable.
func publicIsClean(c *keymat.Config) string {
	return fmt.Sprintf("%s (%d bytes)", c.Name, len(c.Key))
}
