// Package invariant mirrors the real internal/invariant surface so the
// panicpolicy fixture can exercise the sanctioned panic payload.
package invariant

import "fmt"

// ViolationError is the payload type panicpolicy recognizes.
type ViolationError struct{ Msg string }

// Error implements error.
func (e *ViolationError) Error() string { return e.Msg }

// Violationf mirrors the real constructor.
func Violationf(format string, args ...any) *ViolationError {
	return &ViolationError{Msg: fmt.Sprintf(format, args...)}
}
