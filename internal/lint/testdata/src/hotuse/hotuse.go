// Package hotuse exercises hotalloc across package boundaries: hotdep's
// AllocFacts arrive as facts, not source.
package hotuse

import "hotdep"

//morph:hotpath
func lookup(s []int) int {
	return hotdep.Head(s) + hotdep.Fast(s) // Head and Fast are allocation-free
}

//morph:hotpath
func build(n int) []int {
	return hotdep.Build(n) // want "calls hotdep.Build, which allocates"
}

//morph:hotpath
func wrapped(n int) []int {
	return hotdep.Wrap(n) // want "calls hotdep.Wrap, which allocates"
}
