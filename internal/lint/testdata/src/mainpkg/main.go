// Package main is exempt from panicpolicy: top-level error handling in a
// binary may legitimately crash.
package main

func main() {
	panic("binaries may crash")
}
