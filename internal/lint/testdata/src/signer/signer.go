// Package signer mirrors proof.Authority: an Ed25519 signing identity
// whose seed is key material. The fixture proves the keytaint analyzer
// covers the transparency-log signer the same way it covers AES keys —
// a seed leaking into a log line or a wire frame hands the attacker the
// power to forge epoch roots.
package signer

import (
	"fmt"
	"io"

	"obs"
)

// Authority holds the signing identity.
type Authority struct {
	// seed is the Ed25519 private-key seed.
	//morph:secret
	seed []byte
	pub  []byte
}

// DeriveSeed derives the signing seed from the master key.
//
//morph:secret
func DeriveSeed(master []byte) []byte {
	out := make([]byte, len(master))
	copy(out, master)
	return out
}

func logsSeed(a *Authority) {
	fmt.Printf("seed=%x\n", a.seed) // want "key material flows into fmt.Printf"
}

func logsDerivedSeed(master []byte) {
	s := DeriveSeed(master)
	fmt.Println(string(s)) // want "key material flows into fmt.Println"
}

func tracesSeed(a *Authority) {
	obs.Emit(string(a.seed)) // want "key material flows into obs.Emit"
}

func writesSeed(w io.Writer, a *Authority) {
	w.Write(a.seed) // want "key material flows into io.Writer.Write"
}

// KeyDesc is the sealed fingerprint accessor the startup banner uses: it
// consumes the identity but publishes only a redacted description.
//
//morph:sealed
func (a *Authority) KeyDesc() string {
	return fmt.Sprintf("ed25519 fp=%016x", obs.Fingerprint(a.seed))
}

// describesAuthority shows the container rule: the public key and seed
// length are fine to print.
func describesAuthority(a *Authority) string {
	return fmt.Sprintf("authority pub=%x (%d-byte seed)", a.pub, len(a.seed))
}
