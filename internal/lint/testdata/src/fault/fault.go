package fault

import "context"

// The fixture mirrors the fault-injection layer's surface: a chaos run
// whose proxy failed to start, serve, or stop injects nothing, so its
// "no lost writes" verdict is vacuous. Discarding these errors must be
// loud.

type Proxy struct{}

func (p *Proxy) Serve(ctx context.Context) error { return nil }

func (p *Proxy) Close() error { return nil }

func Start(backend string) (*Proxy, error) { return nil, nil }

func bad(ctx context.Context, p *Proxy) {
	Start("127.0.0.1:0") // want "result of fault.Start includes an error that is discarded"
	go p.Serve(ctx)      // want "result of fault.Serve includes an error that is discarded"
	defer p.Close()      // want "result of fault.Close includes an error that is discarded"
}

func good(ctx context.Context, p *Proxy) error {
	q, err := Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = q.Serve(ctx) }() // explicit discard stays visible in review
	return p.Close()
}
