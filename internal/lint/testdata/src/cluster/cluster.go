// Package cluster mirrors the replication surface of internal/cluster:
// a discarded error here is a silently lost replication batch, a failed
// promotion treated as success, or an unacknowledged write reported as
// acknowledged.
package cluster

// Replicate mirrors Node.Replicate (one follower poll).
func Replicate() ([]byte, error) { return nil, nil }

// Promote mirrors Node.Promote (leadership takeover with catch-up).
func Promote() error { return nil }

// Follow mirrors Node.Follow (repoint at a new leader).
func Follow() error { return nil }

// Write mirrors Node.Write (primary write with replication ack).
func Write() error { return nil }

func bad() {
	Replicate() // want "result of cluster.Replicate includes an error that is discarded"
	Promote()   // want "result of cluster.Promote includes an error that is discarded"
	go Follow() // want "result of cluster.Follow includes an error that is discarded"
	defer Write() // want "result of cluster.Write includes an error that is discarded"
}

func good() error {
	if _, err := Replicate(); err != nil {
		return err
	}
	if err := Promote(); err != nil {
		return err
	}
	if err := Follow(); err != nil {
		return err
	}
	return Write()
}
