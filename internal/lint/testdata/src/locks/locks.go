package locks

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// lockC acquires and releases C's lock: callers holding other locks pick
// up the ordering edge through lockC's LockSetFact.
func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// lockB acquires B's lock and returns holding it (the lockTimed pattern):
// the caller's held set grows through HoldsOnReturn.
func lockB(b *B) {
	b.mu.Lock()
}

func aThenC(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockC(c) // want "lock order cycle: acquiring locks.C.mu while holding locks.A.mu"
}

func cThenA(c *C, a *A) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a.mu.Lock() // want "lock order cycle: acquiring locks.A.mu while holding locks.C.mu"
	a.mu.Unlock()
}

func bThenC(b *B, c *C) {
	lockB(b)
	defer b.mu.Unlock()
	lockC(c) // want "lock order cycle: acquiring locks.C.mu while holding locks.B.mu"
}

func cThenB(c *C, b *B) {
	c.mu.Lock()
	b.mu.Lock() // want "lock order cycle: acquiring locks.B.mu while holding locks.C.mu"
	b.mu.Unlock()
	c.mu.Unlock()
}

// aThenD and another aThenD caller keep a consistent order: no cycle, no
// findings.
func aThenD(a *A, d *D) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// sequential acquisitions (release before the next acquire) create no
// edges at all.
func sequential(a *A, c *C) {
	a.mu.Lock()
	a.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// deferredClosure releases through a deferred closure (the multi-lock
// epilogue pattern): the unlocks count as deferred releases, so the
// summary must not claim the locks are held on return.
func deferredClosure(a *A, d *D) {
	a.mu.Lock()
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		a.mu.Unlock()
	}()
}

// afterClosure calls deferredClosure and then locks in the same a-before-d
// order: if the closure's unlocks were missed, deferredClosure would hold
// A.mu and D.mu on return and this would report a phantom cycle.
func afterClosure(a *A, d *D) {
	deferredClosure(a, d)
	a.mu.Lock()
	defer a.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}
