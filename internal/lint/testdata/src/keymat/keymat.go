package keymat

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"obs"
)

// Config mirrors secmem.Config: it carries the master key.
type Config struct {
	// Key is the AES master key.
	//morph:secret
	Key []byte
	// Name is public configuration.
	Name string
}

// Derive stretches the master key into a per-domain key.
//
//morph:secret
func Derive(master []byte, domain string) []byte {
	out := make([]byte, len(master))
	copy(out, master)
	return out
}

// Describe renders raw bytes; handing it key material leaks them into the
// fmt sink inside.
func Describe(b []byte) string {
	return fmt.Sprintf("%x", b)
}

// Stretch derives a key or fails. Its byte result is key material; its
// error result is not.
//
//morph:secret
func Stretch(master []byte) ([]byte, error) {
	if len(master) == 0 {
		return nil, errors.New("empty master")
	}
	out := make([]byte, len(master))
	copy(out, master)
	return out, nil
}

// wrapsStretchError shows the error-result rule: err shares an assignment
// with the secret byte result, but errors are never key material, so the
// idiomatic %w wrap is clean.
func wrapsStretchError(c *Config) error {
	k, err := Stretch(c.Key)
	if err != nil {
		return fmt.Errorf("stretch: %w", err)
	}
	_ = k
	return nil
}

// printsStretchedKey still reports: the byte result stays tainted.
func printsStretchedKey(c *Config) {
	k, _ := Stretch(c.Key)
	fmt.Println(string(k)) // want "key material flows into fmt.Println"
}

type event struct{ payload string }

func logsKey(c *Config) {
	fmt.Printf("key=%x\n", c.Key) // want "key material flows into fmt.Printf"
}

func logsDerived(c *Config) error {
	k := Derive(c.Key, "wal")
	return fmt.Errorf("bad key %s", hex.EncodeToString(k)) // want "key material flows into fmt.Errorf"
}

func tracesKey(c *Config) {
	obs.Emit(string(c.Key)) // want "key material flows into obs.Emit"
}

func emitsLiteral(c *Config) {
	obs.EmitEvent(event{payload: string(c.Key)}) // want "key material flows into obs.EmitEvent"
}

func leaksViaHelper(c *Config) string {
	return Describe(c.Key) // want `key material flows into fmt.Sprintf \(via keymat.Describe\)`
}

func writesKey(w io.Writer, c *Config) {
	w.Write(c.Key) // want "key material flows into io.Writer.Write"
}

// describesConfig shows the container rule: public fields and lengths of
// a key-holding struct are fine to print.
func describesConfig(c *Config) string {
	return fmt.Sprintf("config %q with %d-byte key", c.Name, len(c.Key))
}

// emitsPublic passes untainted data to the obs sink.
func emitsPublic(c *Config) {
	obs.EmitEvent(event{payload: c.Name})
}

// fingerprintIsClean uses the sealed redaction helper: key bytes go in,
// but the result is laundered.
func fingerprintIsClean(c *Config) {
	obs.Emit(fmt.Sprint(obs.Fingerprint(c.Key)))
}

// sealKey is part of the sealed path by annotation: raw key writes are
// its purpose.
//
//morph:sealed
func sealKey(w io.Writer, c *Config) {
	w.Write(c.Key)
}

// sealLine seals a single call site instead of the whole function.
func sealLine(w io.Writer, c *Config) {
	w.Write(c.Key) //morph:sealed -- header region is encrypted downstream
}
