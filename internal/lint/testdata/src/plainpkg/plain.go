// Package plainpkg is not cryptographic, so cryptorand must not report its
// math/rand import.
package plainpkg

import "math/rand"

func Roll() int { return rand.Intn(6) }
