package tenant

// Acquire mirrors Scheduler.Acquire: the returned error is the admission
// verdict — dropping it executes work that was shed.
func Acquire(id string, bytes int) error { return nil }

// LoadConfig mirrors tenant.LoadConfig: a dropped error serves with an
// empty tenant table.
func LoadConfig(path string) (*int, error) { return nil, nil }

func bad() {
	Acquire("a", 0)      // want "result of tenant.Acquire includes an error that is discarded"
	LoadConfig("x.json") // want "result of tenant.LoadConfig includes an error that is discarded"
}

func good() error {
	if err := Acquire("a", 0); err != nil {
		return err
	}
	_, err := LoadConfig("x.json")
	return err
}
