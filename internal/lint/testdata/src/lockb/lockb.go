// Package lockb closes a lock-order cycle against the order its
// dependency locka established (Router.mu -> Engine.mu). The mutexes are
// unexported fields, so every acquisition here goes through locka's
// helpers — the cycle is only visible through locka's exported LockSet
// and LockGraph facts.
package lockb

import (
	"sync"

	"locka"
)

type wrapper struct {
	mu sync.Mutex
}

func reversed(e *locka.Engine, r *locka.Router) {
	locka.HoldEngine(e)
	defer locka.ReleaseEngine(e)
	locka.LockRouter(r) // want "lock order cycle: acquiring locka.Router.mu while holding locka.Engine.mu"
}

// consistent follows the established order through locka's helper: the
// local wrapper lock sits above it, no cycle.
func consistent(w *wrapper, e *locka.Engine) {
	w.mu.Lock()
	defer w.mu.Unlock()
	locka.LockEngine(e)
}
