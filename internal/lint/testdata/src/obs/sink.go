package obs

// Emit mirrors Tracer.Emit: string payloads land in the /tracez ring and
// are exported to any scraper.
func Emit(payload string) {}

// EmitEvent mirrors the structured variant.
func EmitEvent(event any) {}

// Fingerprint reduces key material to a short non-invertible tag that is
// safe to put in telemetry. It is the sealed boundary: key bytes may flow
// in, and what comes out is no longer secret.
//
//morph:sealed
func Fingerprint(key []byte) uint64 {
	var fp uint64
	for _, b := range key {
		fp = fp*31 + uint64(b)
	}
	return fp
}
