package obs

import "fmt"

// Encode mirrors Snapshot.Encode / TraceSnapshot.Encode: dropping its
// error ships an empty /metricz body and the scrape silently reads as "no
// traffic".
func Encode() ([]byte, error) { return nil, nil }

// DecodeSnapshot mirrors the poller-side decoder.
func DecodeSnapshot(b []byte) (int, error) { return len(b), nil }

// Serve mirrors Plane.Serve: a dropped error is an admin plane that died
// without anyone noticing.
func Serve() error { return nil }

func bad() {
	Encode()            // want "result of obs.Encode includes an error that is discarded"
	DecodeSnapshot(nil) // want "result of obs.DecodeSnapshot includes an error that is discarded"
	go Serve()          // want "result of obs.Serve includes an error that is discarded"
	defer Serve()       // want "result of obs.Serve includes an error that is discarded"
}

func good() error {
	_, _ = Encode() // explicit discard stays visible in review
	if _, err := DecodeSnapshot(nil); err != nil {
		return err
	}
	fmt.Println("fmt is not a watched package")
	return Serve()
}
