package obsreg

import "sync"

// Registry mirrors the obs registry layout: instruments handed out at
// construction are immutable pointers and sit before mu, so the hot path
// reads them lock-free; the name→instrument maps after mu grow lazily and
// must only be touched with the lock held.
type Registry struct {
	tracer *int
	shard  int32

	mu       sync.Mutex
	counters map[string]*int
	collects []func()
}

// Tracer reads only immutable pre-mu fields: the lock-free hot path.
func (r *Registry) Tracer() (*int, int32) { return r.tracer, r.shard }

// Counter locks around the lazy get-or-create, the correct pattern.
func (r *Registry) Counter(name string) *int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(int)
		r.counters[name] = c
	}
	return c
}

// Snapshot copies the instrument pointers under the lock before reading
// values outside it.
func (r *Registry) Snapshot() []*int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*int, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	return out
}

func (r *Registry) Len() int {
	return len(r.counters) // want "Registry.Len accesses mutex-protected field counters"
}

func (r *Registry) Collectors() []func() {
	return r.collects // want "Registry.Collectors accesses mutex-protected field collects"
}

// snapshotLocked is unexported: assumed called with mu already held.
func (r *Registry) snapshotLocked() int { return len(r.counters) }
