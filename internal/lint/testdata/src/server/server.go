package server

// Serve mirrors Server.Serve: a dropped error is a listener that died
// with nobody watching.
func Serve() error { return nil }

// WriteResponse mirrors the response writer: dropping its error
// acknowledges an op the client never received.
func WriteResponse() error { return nil }

func bad() {
	Serve()               // want "result of server.Serve includes an error that is discarded"
	go Serve()            // want "result of server.Serve includes an error that is discarded"
	defer WriteResponse() // want "result of server.WriteResponse includes an error that is discarded"
}

func good() error {
	_ = Serve() // explicit discard stays visible in review
	return WriteResponse()
}
