// Package other is not a layout-bearing package, so cachelineinv must not
// report its literals.
package other

func size() int {
	n := 64
	n += 512
	return n
}
