package sched

import "sync"

// Scheduler mirrors the tenant admission scheduler layout: the registry
// and config before mu are immutable after construction; the per-tenant
// states, cursor, and global inflight count after mu are only coherent
// with the lock held.
type Scheduler struct {
	capacity int

	mu       sync.Mutex
	states   map[string]*int
	cursor   int
	inflight int
}

// Capacity reads only the immutable pre-mu config: lock-free by design.
func (s *Scheduler) Capacity() int { return s.capacity }

// Acquire takes the lock around every guarded-state touch.
func (s *Scheduler) Acquire(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight >= s.capacity {
		return false
	}
	s.inflight++
	return true
}

func (s *Scheduler) Inflight() int {
	return s.inflight // want "Scheduler.Inflight accesses mutex-protected field inflight"
}

func (s *Scheduler) Queued(id string) *int {
	return s.states[id] // want "Scheduler.Queued accesses mutex-protected field states"
}

// pick is unexported: assumed called with mu already held (the real
// scheduler's DWRR scan runs under Acquire/Release's lock).
func (s *Scheduler) pick() int {
	s.cursor = (s.cursor + 1) % len(s.states)
	return s.cursor
}
