package shard

// Read mirrors Sharded.Read: a dropped error accepts tampered memory at
// the routing layer.
func Read(addr uint64) ([]byte, error) { return nil, nil }

// Verify mirrors Sharded.Verify: dropping it proves nothing.
func Verify() error { return nil }

func bad() {
	Read(0)         // want "result of shard.Read includes an error that is discarded"
	defer Verify()  // want "result of shard.Verify includes an error that is discarded"
}

func good() error {
	if _, err := Read(0); err != nil {
		return err
	}
	return Verify()
}
