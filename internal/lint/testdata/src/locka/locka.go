// Package locka is the dependency side of the cross-package lockorder
// fixture: it establishes Router.mu -> Engine.mu as the acquisition order
// and exports it as a package fact. On its own the graph is acyclic.
package locka

import "sync"

type Router struct{ mu sync.Mutex }
type Engine struct{ mu sync.Mutex }

// Dispatch acquires the engine lock under the router lock.
func Dispatch(r *Router, e *Engine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// LockEngine acquires and releases only the engine lock.
func LockEngine(e *Engine) {
	e.mu.Lock()
	e.mu.Unlock()
}

// HoldEngine acquires the engine lock and returns holding it (the
// lockTimed pattern); pair with ReleaseEngine.
func HoldEngine(e *Engine) {
	e.mu.Lock()
}

// ReleaseEngine releases the engine lock.
func ReleaseEngine(e *Engine) {
	e.mu.Unlock()
}

// LockRouter acquires and releases only the router lock.
func LockRouter(r *Router) {
	r.mu.Lock()
	r.mu.Unlock()
}
