// Package hotdep exercises hotalloc's cross-package AllocFact: importers
// see which of these functions allocate without reading their bodies.
package hotdep

// Build allocates its result.
func Build(n int) []int { return make([]int, n) }

// Wrap allocates transitively through Build.
func Wrap(n int) []int { return Build(n) }

// Head is allocation-free.
func Head(s []int) int { return s[0] }

// Fast is itself a hot path: it is checked directly, and callers trust
// that instead of an AllocFact.
//
//morph:hotpath
func Fast(s []int) int { return s[len(s)-1] }
