package wal

type Log struct{}

func (l *Log) Append(b []byte) error { return nil }

func (l *Log) Sync() error { return nil }

func (l *Log) Close() error { return nil }

func Replay(path string) (int, error) { return 0, nil }

func bad(l *Log) {
	l.Append(nil)     // want "result of wal.Append includes an error that is discarded"
	l.Sync()          // want "result of wal.Sync includes an error that is discarded"
	defer l.Close()   // want "result of wal.Close includes an error that is discarded"
	go l.Sync()       // want "result of wal.Sync includes an error that is discarded"
	Replay("segment") // want "result of wal.Replay includes an error that is discarded"
}

func good(l *Log) error {
	if err := l.Append(nil); err != nil {
		return err
	}
	_ = l.Sync() // explicit discard stays visible in review
	n, err := Replay("segment")
	if err != nil {
		return err
	}
	_ = n
	return l.Close()
}
