package hot

import "fmt"

type frame struct {
	buf []byte
	n   int
}

type myErr struct{}

func (*myErr) Error() string { return "e" }

func record(err error) {}

func sink(v any) {}

//morph:hotpath
func badAllocs(n int) int {
	s := make([]int, n)          // want "calls make"
	m := map[int]int{}           // want "allocates a map literal"
	c := &frame{}                // want "heap-allocates"
	f := func() int { return n } // want "allocates a closure"
	lit := []int{1, 2}           // want "allocates a slice literal"
	p := new(frame)              // want "calls new"
	return s[0] + m[0] + c.n + f() + lit[0] + p.n
}

//morph:hotpath
func badStrings(name string, b []byte) string {
	s := name + "!" // want "concatenates strings"
	s += name       // want "concatenates strings"
	t := string(b)  // want `converts \[\]byte to string`
	u := []byte(t)  // want `converts string to \[\]byte`
	fmt.Println(s)  // want "calls fmt.Println"
	_ = u
	return t
}

//morph:hotpath
func badBoxing(n int) {
	sink(n) // want "boxes int into interface argument"
}

// encode shows the cold-path exemption: the error branch may allocate.
//
//morph:hotpath
func encode(f *frame, payload []byte) error {
	if len(payload) > 64 {
		return fmt.Errorf("payload %d too large", len(payload)) // cold path: no finding
	}
	copy(f.buf, payload)
	f.n = len(payload)
	return nil
}

//morph:hotpath
func panics(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // cold path: no finding
	}
	return n
}

//morph:hotpath
func goodHot(f *frame, b []byte) int {
	f.buf = append(f.buf, b...) // append is the in-place idiom: allowed
	e := frame{n: 1}            // value struct literal stays on the stack
	copy(f.buf, b)
	return e.n + f.n
}

//morph:hotpath
func errParamOK(e *myErr) {
	record(e) // error-typed parameters are exempt from boxing
}

//morph:hotpath
func allowed(n int) []int {
	return make([]int, n) //morphlint:allow hotalloc -- one-time setup buffer, not per-access
}

// notHot has no annotation: it may allocate freely.
func notHot() []byte { return make([]byte, 8) }
