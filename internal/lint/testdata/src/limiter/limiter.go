package limiter

import "sync"

// The fixture mirrors the serving layer's admission limiter and the
// resilient client: immutable configuration before mu, shed/retry
// counters and connection state after it. Exported methods are entry
// points and must take the lock; unexported ones are assumed called with
// it held.

type Limiter struct {
	max int // immutable cap, set once before serving

	mu       sync.Mutex
	inflight int
	shed     uint64
}

// Max reads only immutable pre-mu configuration: no lock needed.
func (l *Limiter) Max() int { return l.max }

// TryAcquire mutates the admission state under the lock.
func (l *Limiter) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= l.max {
		l.shed++
		return false
	}
	l.inflight++
	return true
}

func (l *Limiter) Shed() uint64 {
	return l.shed // want "Limiter.Shed accesses mutex-protected field shed"
}

// release is unexported: assumed called with mu already held.
func (l *Limiter) release() { l.inflight-- }

// Client mirrors the resilient client's layout: redial config before mu,
// the poisonable connection and retry counters after it.
type Client struct {
	addr string

	mu      sync.Mutex
	conn    *Limiter
	retries uint64
}

// Addr is immutable dial configuration.
func (c *Client) Addr() string { return c.addr }

// Reconnect swaps the connection and bumps the counter under the lock.
func (c *Client) Reconnect(next *Limiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn = next
	c.retries++
}

func (c *Client) Conn() *Limiter {
	return c.conn // want "Client.Conn accesses mutex-protected field conn"
}
