package mac

import "math/rand"

// Test files may use math/rand freely for reproducible inputs.
func deterministicInput() int { return rand.Int() }
