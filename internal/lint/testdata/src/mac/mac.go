package mac

import (
	crand "crypto/rand"
	"math/rand" // want "math/rand imported in cryptographic package mac"
)

func Key() []byte {
	b := make([]byte, 16)
	if _, err := crand.Read(b); err != nil {
		return nil
	}
	b[0] = byte(rand.Int())
	return b
}
