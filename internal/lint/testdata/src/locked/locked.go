package locked

import "sync"

// Counter follows the repo convention: immutable configuration before mu,
// mutex-protected state after it.
type Counter struct {
	name string

	mu    sync.Mutex
	count int
}

// Name touches only an immutable field declared before mu: no lock needed.
func (c *Counter) Name() string { return c.name }

// Add acquires the mutex, so its protected-field accesses are fine.
func (c *Counter) Add(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count += n
}

func (c *Counter) Count() int {
	return c.count // want "Counter.Count accesses mutex-protected field count"
}

// reset is unexported: assumed called with mu already held.
func (c *Counter) reset() {
	c.count = 0
}

// RW exercises the RWMutex variant.
type RW struct {
	mu   sync.RWMutex
	data map[string]int
}

// Get read-locks, which counts as holding the mutex.
func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

func (r *RW) Len() int {
	return len(r.data) // want "RW.Len accesses mutex-protected field data"
}

// Plain has no mutex, so nothing is checked.
type Plain struct {
	count int
}

// Bump is unguarded by convention: Plain declares no mu.
func (p *Plain) Bump() { p.count++ }

// Shard mirrors the serving layer's per-shard layout: engine handle and
// shard id are immutable and sit before mu; the stats fields after mu —
// scalars and per-level slices alike — are mutable under load and must only
// be touched with the lock held.
type Shard struct {
	id  int
	key []byte

	mu         sync.Mutex
	reads      uint64
	writes     uint64
	increments []uint64
}

// ID touches only immutable pre-mu fields: no lock needed.
func (s *Shard) ID() int { return s.id }

// Record locks before mutating the stats fields.
func (s *Shard) Record(write bool, level int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if write {
		s.writes++
	} else {
		s.reads++
	}
	s.increments[level]++
}

// Snapshot deep-copies under the lock — the aggregation pattern the
// sharded server's STATS frame relies on.
func (s *Shard) Snapshot() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.increments...)
}

func (s *Shard) Reads() uint64 {
	return s.reads // want "Shard.Reads accesses mutex-protected field reads"
}

func (s *Shard) Increments() []uint64 {
	return s.increments // want "Shard.Increments accesses mutex-protected field increments"
}

// merge is unexported: assumed called with mu already held.
func (s *Shard) merge(other []uint64) {
	for i, v := range other {
		s.increments[i] += v
	}
}
