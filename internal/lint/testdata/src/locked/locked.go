package locked

import "sync"

// Counter follows the repo convention: immutable configuration before mu,
// mutex-protected state after it.
type Counter struct {
	name string

	mu    sync.Mutex
	count int
}

// Name touches only an immutable field declared before mu: no lock needed.
func (c *Counter) Name() string { return c.name }

// Add acquires the mutex, so its protected-field accesses are fine.
func (c *Counter) Add(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count += n
}

func (c *Counter) Count() int {
	return c.count // want "Counter.Count accesses mutex-protected field count"
}

// reset is unexported: assumed called with mu already held.
func (c *Counter) reset() {
	c.count = 0
}

// RW exercises the RWMutex variant.
type RW struct {
	mu   sync.RWMutex
	data map[string]int
}

// Get read-locks, which counts as holding the mutex.
func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

func (r *RW) Len() int {
	return len(r.data) // want "RW.Len accesses mutex-protected field data"
}

// Plain has no mutex, so nothing is checked.
type Plain struct {
	count int
}

// Bump is unguarded by convention: Plain declares no mu.
func (p *Plain) Bump() { p.count++ }
