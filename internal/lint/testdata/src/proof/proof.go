// Package proof mirrors the verification surface of internal/proof:
// every function here returns the caller's only evidence of forgery, so a
// discarded error IS an accepted forgery.
package proof

// Verify mirrors Proof.Verify.
func Verify() ([]byte, error) { return nil, nil }

// VerifyConsistency mirrors the transparency-log consistency check.
func VerifyConsistency() error { return nil }

func bad() {
	Verify()            // want "result of proof.Verify includes an error that is discarded"
	VerifyConsistency() // want "result of proof.VerifyConsistency includes an error that is discarded"
}

func good() error {
	if _, err := Verify(); err != nil {
		return err
	}
	return VerifyConsistency()
}
