// Package lint holds morphlint's repo-specific analyzers. Each enforces a
// secure-memory invariant from the paper (MICRO 2018) that the Go compiler
// cannot check; DESIGN.md "Checked invariants" maps analyzers to the paper
// sections they guard.
package lint

import "github.com/securemem/morphtree/internal/analysis"

// Analyzers returns the full morphlint suite in reporting order. The
// first five are intra-package AST checks; keytaint, hotalloc and
// lockorder are interprocedural, exchanging facts across package
// boundaries through the analysis fact store (internal/analysis/facts.go).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CachelineInv,
		CryptoRand,
		ErrDiscard,
		PanicPolicy,
		LockHeld,
		KeyTaint,
		HotAlloc,
		LockOrder,
	}
}
