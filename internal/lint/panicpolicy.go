package lint

import (
	"go/ast"
	"go/types"

	"github.com/securemem/morphtree/internal/analysis"
)

// PanicPolicy forbids bare panic calls in library packages.
//
// A panicking memory controller is a denial-of-service primitive: any
// validation failure an attacker can trigger from untrusted storage must
// surface as an *IntegrityError (or other typed error), never as a crash.
// Two escape hatches remain, both via internal/invariant:
//
//   - panic(invariant.Violationf(...)) for provably-unreachable states;
//   - invariant.Assertf(...) for morphdebug-gated layout assertions.
//
// Must-style constructors for statically known-good configurations may
// carry a `//morphlint:allow panicpolicy` directive with a justification.
// Package main binaries are exempt (top-level error handling may legitimately
// crash), as is internal/invariant itself.
var PanicPolicy = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc:  "forbid bare panic in library packages; route through internal/invariant or typed errors",
	Run:  runPanicPolicy,
}

func runPanicPolicy(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || pass.Pkg.Name() == "invariant" {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || obj.Name() != "panic" {
			return true
		}
		if len(call.Args) == 1 && isInvariantPayload(pass, call.Args[0]) {
			return true
		}
		pass.Reportf(call.Pos(), "bare panic in library package %s; return a typed error, or use internal/invariant (Violationf for unreachable states, Assertf for morphdebug checks)", pass.Pkg.Name())
		return true
	})
	return nil
}

// isInvariantPayload reports whether the panic argument is produced by the
// invariant package (e.g. invariant.Violationf(...)).
func isInvariantPayload(pass *analysis.Pass, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObject(pass, call)
	return obj != nil && analysis.PkgNamed(obj.Pkg(), "invariant")
}
