package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/securemem/morphtree/internal/analysis"
)

// LockOrder builds a cross-package lock-acquisition graph and reports
// ordering cycles as deadlock candidates.
//
// The engine serializes every access through one controller mutex (secmem
// doc), the shard router fans out across per-shard controllers, and the
// obs plane takes its own slot locks inside traced sections — three
// layers of locks acquired while other locks are held, across package
// boundaries no single-package analysis can see. A consistent global
// acquisition order is the classic no-deadlock argument; a cycle in the
// order is a latent deadlock that only fires under concurrent load, the
// worst possible time to learn about it.
//
// Locks are identified structurally — "pkg.Type.mu" for a mutex field of
// a named struct, "pkg.var" for a package-level mutex — so every instance
// of a type shares one graph node (the conservative choice: a cycle on
// the type's lock is a real cycle for some pair of instances; instance
// cycles like parent/child Memory locks do not exist in this design).
// Per function, a source-order walk tracks the held set: sync
// Lock/RLock/TryLock calls acquire, Unlock/RUnlock release (a deferred
// unlock releases at return), and calls to summarized functions import
// their LockSetFact — what they acquire, and what they still hold when
// they return (the lockTimed pattern). Acquiring B with A held adds edge
// A→B. Each package exports its merged graph (its own edges plus its
// imports') as a package fact; a cycle is reported at every edge this
// package contributes to it.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "cross-package lock-acquisition graph must stay acyclic (deadlock candidates)",
	FactTypes: []analysis.Fact{
		(*LockSetFact)(nil),
		(*LockGraphFact)(nil),
	},
	Run: runLockOrder,
}

// LockSetFact summarizes a function's locking behavior.
type LockSetFact struct {
	// Acquires lists every lock the function (transitively) acquires.
	Acquires []string
	// HoldsOnReturn lists locks still held when the function returns
	// (acquired, not released, not deferred-released).
	HoldsOnReturn []string
}

// AFact implements analysis.Fact.
func (*LockSetFact) AFact() {}

// LockGraphFact is a package's merged acquired-while-holding graph.
type LockGraphFact struct {
	// Edges holds [from, to] pairs: to was acquired while from was held.
	Edges [][2]string
}

// AFact implements analysis.Fact.
func (*LockGraphFact) AFact() {}

func runLockOrder(pass *analysis.Pass) error {
	localEdges := computeLockFacts(pass)

	// Merge direct imports' graphs; each package re-exports its merged
	// view, so transitive dependencies arrive through direct ones.
	edgeSet := make(map[[2]string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var g LockGraphFact
		if pass.ImportPackageFact(imp, &g) {
			for _, e := range g.Edges {
				edgeSet[e] = true
			}
		}
	}
	for e := range localEdges {
		edgeSet[e] = true
	}
	if len(edgeSet) > 0 {
		g := &LockGraphFact{}
		for e := range edgeSet {
			g.Edges = append(g.Edges, e)
		}
		sort.Slice(g.Edges, func(i, j int) bool {
			if g.Edges[i][0] != g.Edges[j][0] {
				return g.Edges[i][0] < g.Edges[j][0]
			}
			return g.Edges[i][1] < g.Edges[j][1]
		})
		pass.ExportPackageFact(g)
	}

	// A local edge A→B closes a cycle iff B already reaches A.
	adj := make(map[string][]string)
	for e := range edgeSet {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	for e, pos := range localEdges {
		if path := findPath(adj, e[1], e[0]); path != nil {
			cycle := append([]string{e[0]}, path...)
			pass.Reportf(pos, "lock order cycle: acquiring %s while holding %s closes the cycle %s; pick one global acquisition order", e[1], e[0], strings.Join(cycle, " -> "))
		}
	}
	return nil
}

// findPath returns a path from -> ... -> to in adj, or nil.
func findPath(adj map[string][]string, from, to string) []string {
	seen := map[string]bool{from: true}
	var dfs func(node string, path []string) []string
	dfs = func(node string, path []string) []string {
		if node == to {
			return path
		}
		next := append([]string(nil), adj[node]...)
		sort.Strings(next)
		for _, n := range next {
			if seen[n] {
				continue
			}
			seen[n] = true
			if p := dfs(n, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}

// computeLockFacts summarizes every function to a fixpoint and returns
// the package's local edges with their first acquisition site.
func computeLockFacts(pass *analysis.Pass) map[[2]string]token.Pos {
	var edges map[[2]string]token.Pos
	for iter := 0; iter < 10; iter++ {
		changed := false
		edges = make(map[[2]string]token.Pos)
		pass.Inspect(func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body == nil {
				return false
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil {
				return false
			}
			ls := walkLocks(pass, fn, edges)
			if len(ls.Acquires) == 0 && len(ls.HoldsOnReturn) == 0 {
				return false
			}
			var prev LockSetFact
			had := pass.ImportObjectFact(obj, &prev)
			if !had || !sameStrings(prev.Acquires, ls.Acquires) || !sameStrings(prev.HoldsOnReturn, ls.HoldsOnReturn) {
				pass.ExportObjectFact(obj, ls)
				changed = true
			}
			return false
		})
		if !changed {
			break
		}
	}
	return edges
}

// walkLocks interprets one function body in source order under the
// current facts, recording acquired-while-holding edges into edges.
func walkLocks(pass *analysis.Pass, fn *ast.FuncDecl, edges map[[2]string]token.Pos) *LockSetFact {
	var held []string
	deferredRelease := make(map[string]bool)
	acquired := make(map[string]bool)

	holding := func(lock string) bool {
		for _, h := range held {
			if h == lock {
				return true
			}
		}
		return false
	}
	acquire := func(lock string, pos token.Pos) {
		acquired[lock] = true
		for _, h := range held {
			if h == lock {
				continue
			}
			e := [2]string{h, lock}
			if _, ok := edges[e]; !ok {
				edges[e] = pos
			}
		}
		if !holding(lock) {
			held = append(held, lock)
		}
	}
	release := func(lock string) {
		for i, h := range held {
			if h == lock {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var handleCall func(call *ast.CallExpr, deferred bool)
	handleCall = func(call *ast.CallExpr, deferred bool) {
		// A deferred closure runs at return: its unlocks are deferred
		// releases, anything else it does is processed as deferred too.
		// Without this, `defer func() { mu.Unlock() }()` leaves mu in the
		// held set and the function's summary claims it holds mu on return.
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && deferred {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					handleCall(n, true)
				}
				return true
			})
			return
		}
		if lock, op := mutexOp(pass, call); lock != "" {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				acquire(lock, call.Pos())
			case "Unlock", "RUnlock":
				if deferred {
					deferredRelease[lock] = true
				} else {
					release(lock)
				}
			}
			return
		}
		callee := calleeObject(pass, call)
		if callee == nil {
			return
		}
		var ls LockSetFact
		if !pass.ImportObjectFact(callee, &ls) {
			return
		}
		for _, a := range ls.Acquires {
			acquired[a] = true
			for _, h := range held {
				if h == a {
					continue
				}
				e := [2]string{h, a}
				if _, ok := edges[e]; !ok {
					edges[e] = call.Pos()
				}
			}
		}
		for _, h := range ls.HoldsOnReturn {
			if !holding(h) {
				held = append(held, h)
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			handleCall(n.Call, true)
			return false
		case *ast.GoStmt:
			// A spawned goroutine starts with an empty held set; its body
			// contributes edges when its function is summarized.
			return false
		case *ast.CallExpr:
			handleCall(n, false)
		}
		return true
	})

	ls := &LockSetFact{}
	for a := range acquired {
		ls.Acquires = append(ls.Acquires, a)
	}
	sort.Strings(ls.Acquires)
	for _, h := range held {
		if !deferredRelease[h] {
			ls.HoldsOnReturn = append(ls.HoldsOnReturn, h)
		}
	}
	sort.Strings(ls.HoldsOnReturn)
	return ls
}

// mutexOp recognizes a sync.Mutex/RWMutex method call and returns the
// lock's structural identity and the method name.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (lock, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isMutex(t) {
		return "", ""
	}
	return lockIdentity(pass, sel.X), sel.Sel.Name
}

// lockIdentity names the lock a mutex expression denotes: "pkg.Type.field"
// for a field of a named struct, "pkg.var" for a package-level variable,
// "" (ignored) for function-local mutexes, which cannot participate in
// cross-function ordering cycles.
func lockIdentity(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil {
			if named := recvNamed(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		// Qualified package-level var: pkg.Mu.
		if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
