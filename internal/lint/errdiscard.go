package lint

import (
	"go/ast"
	"go/types"

	"github.com/securemem/morphtree/internal/analysis"
)

// ErrDiscard flags statements that silently discard an error returned by
// the verification-bearing packages (counters, mac, secmem, bmt, aesctr),
// the durability-bearing ones (wal, durable), the fault-injection layer
// (fault), or the observability plane (obs).
//
// In this codebase an ignored error is an ignored integrity violation: a
// dropped Decode error accepts an undecodable counter line, a dropped
// Verify/Read error accepts tampered memory, a dropped Save error loses
// persisted state, a dropped WAL Sync/Close or snapshot error
// acknowledges a write that was never made durable, a dropped fault
// setup error runs a chaos scenario with no faults injected — a harness
// that silently proves nothing — and a dropped obs Encode/Serve error is
// a telemetry plane that died or served garbage without anyone noticing. Calls whose error result is consumed by
// nothing — a bare expression statement, or a call hidden behind
// go/defer — are reported. An explicit `_ =` assignment remains available
// for the rare deliberate discard, and stays visible in review.
var ErrDiscard = &analysis.Analyzer{
	Name: "errdiscard",
	Doc:  "flag discarded error results from codec, MAC and secure-memory persistence calls",
	Run:  runErrDiscard,
}

// watchedPkgs are the packages whose error returns must not be dropped.
// server and shard joined the list with the morphflow PR: a dropped shard
// Read/Write/Verify error accepts tampered memory at the routing layer,
// and a dropped server response-write error acknowledges an op the client
// never heard about. proof joined with morphproof: a dropped Verify or
// VerifyConsistency error silently accepts a forged witness or a forked
// transparency log — the exact failure the subsystem exists to surface.
// cluster joined with morphcluster: a dropped Replicate/Promote/Follow
// error silently loses a replication batch or treats a refused promotion
// as a completed failover.
var watchedPkgs = []string{"counters", "mac", "secmem", "bmt", "aesctr", "wal", "durable", "fault", "obs", "server", "shard", "proof", "tenant", "cluster"}

func runErrDiscard(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			call = n.Call
		}
		if call == nil {
			return true
		}
		if !returnsError(pass, call) {
			return true
		}
		callee := calleeObject(pass, call)
		if callee == nil || !analysis.PkgNamed(callee.Pkg(), watchedPkgs...) {
			return true
		}
		pass.Reportf(call.Pos(), "result of %s.%s includes an error that is discarded; handle it or assign it explicitly", callee.Pkg().Name(), callee.Name())
		return true
	})
	return nil
}

// returnsError reports whether the call's results end in an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeObject resolves the called function, method, or func-typed field.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
