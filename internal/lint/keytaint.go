package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"github.com/securemem/morphtree/internal/analysis"
)

// KeyTaint tracks key material interprocedurally and reports flows into
// observable sinks.
//
// The paper's threat model (§2) trusts only the on-chip secure region; a
// derived counter-encryption or MAC key that reaches a log line, an error
// string, an obs trace/metric payload, or an unsealed writer is key
// material exported to the adversary — SecDDR's forgery surface
// (PAPERS.md). The compiler cannot see this; the type of a leaked key is
// just []byte.
//
// Sources are declared, not inferred: fields, package variables and
// derivation functions annotated `//morph:secret`. Whether HMAC output is
// key material or a public MAC is a design fact, so the annotation IS the
// taint source, and analysis tracks where those bytes flow. Taint is
// value-oriented (see internal/analysis/flow.go): it follows the raw
// bytes through assignments, slicing, conversions, append/copy, the byte
// manipulation stdlib (bytes, strings, encoding/hex, encoding/base64) and
// fmt formatting — but a struct holding a key is not itself tainted, so
// handles like secmem.Memory stay printable.
//
// Cross-function flow uses per-function summaries exported as facts: which
// parameters reach which results, which results carry annotated secrets,
// and which parameters leak to a sink inside the callee (reported at the
// call site). Facts travel between packages through the vet fact channel.
//
// Sinks: fmt calls, errors.New, any call into package obs, and Write /
// WriteString methods. The escape hatch is `//morph:sealed` — on the
// enclosing function, the offending line, or (as an exported fact) the
// callee — declaring the path sealed by design (e.g. obs redaction
// helpers that reduce keys to fingerprints before anything escapes).
var KeyTaint = &analysis.Analyzer{
	Name: "keytaint",
	Doc:  "key material (//morph:secret) must not flow into fmt/error strings, obs payloads, or unsealed writers",
	FactTypes: []analysis.Fact{
		(*SecretFact)(nil),
		(*SealedFact)(nil),
		(*KeyFlowFact)(nil),
	},
	Run: runKeyTaint,
}

// SecretFact marks an object as key material: an annotated field or
// package variable holds secret bytes; an annotated function returns them.
type SecretFact struct{}

// AFact implements analysis.Fact.
func (*SecretFact) AFact() {}

// SealedFact marks a function as part of the sealed path: key material may
// flow into it, and calls to it are not sinks.
type SealedFact struct{}

// AFact implements analysis.Fact.
func (*SealedFact) AFact() {}

// KeyFlowFact is a function's taint summary.
type KeyFlowFact struct {
	// SecretResults lists result indices that carry annotated secret
	// bytes regardless of arguments.
	SecretResults []int
	// ParamResults[i] lists result indices tainted when parameter i is.
	ParamResults [][]int
	// ParamLeaks lists parameters that reach a sink inside the function.
	ParamLeaks []ParamLeak
}

// ParamLeak names one parameter-to-sink flow inside a function.
type ParamLeak struct {
	// Param is the parameter index.
	Param int
	// Sink describes the sink reached (for the call-site diagnostic).
	Sink string
}

// AFact implements analysis.Fact.
func (*KeyFlowFact) AFact() {}

// propagatingPkgs are stdlib packages whose calls pass byte-level taint
// from arguments to results. Everything else in the stdlib is assumed to
// consume bytes without returning them (hash.Write, cipher construction):
// propagating through those would mark public MACs and ciphertext as
// secret and drown the signal.
var propagatingPkgs = map[string]bool{
	"fmt": true, "bytes": true, "strings": true, "hex": true, "base64": true,
}

func runKeyTaint(pass *analysis.Pass) error {
	exportSecretAnnotations(pass)
	computeKeyFlowSummaries(pass)

	// Final pass: per function, evaluate flow from annotated sources and
	// report sink hits and leaky calls.
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		fl := analysis.RunFlow(fn.Body, analysis.FlowConfig{
			Info: pass.TypesInfo,
			Seed: globalSecretSeed(pass),
			Call: keyCallPolicy(pass),
		})
		checkSinks(pass, fn, fl, func(pos ast.Node, sink string) {
			pass.Reportf(pos.Pos(), "key material flows into %s; pass a length or obs fingerprint instead, or seal the path with //morph:sealed", sink)
		})
		return false
	})
	return nil
}

// exportSecretAnnotations turns //morph:secret and //morph:sealed
// directives into facts on the annotated objects, so both this package's
// own analysis and every importer see them.
func exportSecretAnnotations(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			obj := pass.TypesInfo.Defs[n.Name]
			if analysis.HasDirective(n.Doc, "secret") || pass.LineDirective(n.Pos(), "secret") {
				pass.ExportObjectFact(obj, &SecretFact{})
			}
			if analysis.HasDirective(n.Doc, "sealed") || pass.LineDirective(n.Pos(), "sealed") {
				pass.ExportObjectFact(obj, &SealedFact{})
			}
			return false
		case *ast.StructType:
			for _, field := range n.Fields.List {
				if !analysis.HasDirective(field.Doc, "secret") &&
					!analysis.HasDirective(field.Comment, "secret") &&
					!pass.LineDirective(field.Pos(), "secret") {
					continue
				}
				for _, name := range field.Names {
					pass.ExportObjectFact(pass.TypesInfo.Defs[name], &SecretFact{})
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if !analysis.HasDirective(n.Doc, "secret") &&
					!analysis.HasDirective(vs.Doc, "secret") &&
					!analysis.HasDirective(vs.Comment, "secret") &&
					!pass.LineDirective(vs.Pos(), "secret") {
					continue
				}
				for _, name := range vs.Names {
					pass.ExportObjectFact(pass.TypesInfo.Defs[name], &SecretFact{})
				}
			}
		}
		return true
	})
}

// isSecretObj reports whether obj carries a SecretFact.
func isSecretObj(pass *analysis.Pass, obj types.Object) bool {
	return obj != nil && pass.ImportObjectFact(obj, &SecretFact{})
}

// isSealedObj reports whether obj carries a SealedFact.
func isSealedObj(pass *analysis.Pass, obj types.Object) bool {
	return obj != nil && pass.ImportObjectFact(obj, &SealedFact{})
}

// globalSecretSeed taints reads of annotated fields and variables.
func globalSecretSeed(pass *analysis.Pass) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return isSecretObj(pass, obj)
		case *ast.SelectorExpr:
			return isSecretObj(pass, pass.TypesInfo.Uses[e.Sel])
		}
		return false
	}
}

// keyCallPolicy decides result taint for calls: annotated derivation
// functions taint every result, summarized functions taint per their
// fact, and byte-manipulation stdlib passes taint through.
func keyCallPolicy(pass *analysis.Pass) func(*ast.CallExpr, func(ast.Expr) bool) []bool {
	return func(call *ast.CallExpr, taintOf func(ast.Expr) bool) []bool {
		callee := calleeObject(pass, call)
		if callee == nil {
			return nil
		}
		n := callResultCount(pass, call)
		if n == 0 {
			return nil
		}
		ts := make([]bool, n)
		// A sealed function launders taint: key bytes may flow in, and its
		// results are safe by declaration (fingerprints, lengths).
		if isSealedObj(pass, callee) {
			return ts
		}
		if isSecretObj(pass, callee) {
			for i := range ts {
				ts[i] = true
			}
			return clearErrorResults(pass, call, ts)
		}
		anyArgTainted := func() bool {
			for _, a := range call.Args {
				if taintOf(a) {
					return true
				}
			}
			return false
		}
		var kf KeyFlowFact
		if pass.ImportObjectFact(callee, &kf) {
			for _, r := range kf.SecretResults {
				if r < n {
					ts[r] = true
				}
			}
			for p, rs := range kf.ParamResults {
				if len(rs) == 0 {
					continue
				}
				if arg := argForParam(call, p); arg != nil && taintOf(arg) {
					for _, r := range rs {
						if r < n {
							ts[r] = true
						}
					}
				}
			}
			return ts
		}
		if pkg := callee.Pkg(); pkg != nil && propagatingPkgs[pkg.Name()] && anyArgTainted() {
			for i := range ts {
				ts[i] = true
			}
		}
		return clearErrorResults(pass, call, ts)
	}
}

// clearErrorResults unmarks error-typed results: an error value is never
// raw key material. A leak INTO an error's message (fmt.Errorf("%x", key))
// is reported at the formatting site itself; treating the resulting error
// as key bytes would re-flag every `%w` wrap of an err variable that once
// shared an assignment with a secret-returning call.
func clearErrorResults(pass *analysis.Pass, call *ast.CallExpr, ts []bool) []bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return ts
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len() && i < len(ts); i++ {
			if isErrorType(tuple.At(i).Type()) {
				ts[i] = false
			}
		}
		return ts
	}
	if len(ts) == 1 && isErrorType(tv.Type) {
		ts[0] = false
	}
	return ts
}

// argForParam returns the argument feeding parameter p positionally, or
// nil. Extra variadic arguments beyond the first are not re-checked — a
// deliberate simplification; fmt-style variadics are already sinks.
func argForParam(call *ast.CallExpr, p int) ast.Expr {
	if p < len(call.Args) {
		return call.Args[p]
	}
	return nil
}

// callResultCount reports how many values the call produces.
func callResultCount(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return 0
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Invalid {
		return 0
	}
	return 1
}

// byteCarrier reports whether t can hold raw key bytes worth summarizing.
func byteCarrier(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Pointer:
		return byteCarrier(u.Elem())
	}
	return false
}

// computeKeyFlowSummaries builds and exports a KeyFlowFact for every
// function in the package, iterating until a fixpoint so package-local
// helper chains resolve regardless of declaration order.
func computeKeyFlowSummaries(pass *analysis.Pass) {
	for iter := 0; iter < 10; iter++ {
		changed := false
		pass.Inspect(func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body == nil {
				return false
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil || isSealedObj(pass, obj) {
				return false
			}
			kf := summarize(pass, fn, obj)
			var prev KeyFlowFact
			had := pass.ImportObjectFact(obj, &prev)
			if !had || !sameKeyFlow(&prev, kf) {
				pass.ExportObjectFact(obj, kf)
				changed = true
			}
			return false
		})
		if !changed {
			return
		}
	}
}

// summarize computes one function's KeyFlowFact under the current facts.
func summarize(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Func) *KeyFlowFact {
	sig := obj.Type().(*types.Signature)
	kf := &KeyFlowFact{ParamResults: make([][]int, sig.Params().Len())}

	// Secret results: flow from annotated sources alone.
	fl := analysis.RunFlow(fn.Body, analysis.FlowConfig{
		Info: pass.TypesInfo,
		Seed: globalSecretSeed(pass),
		Call: keyCallPolicy(pass),
	})
	kf.SecretResults = taintedResults(pass, fn, sig, fl)

	// Per-parameter flow: seed one byte-carrying parameter at a time with
	// annotated sources off, so parameter leaks are attributed to callers
	// and annotation leaks to the function itself.
	for i := 0; i < sig.Params().Len(); i++ {
		param := sig.Params().At(i)
		if !byteCarrier(param.Type()) {
			continue
		}
		pfl := analysis.RunFlow(fn.Body, analysis.FlowConfig{
			Info: pass.TypesInfo,
			Seed: func(e ast.Expr) bool {
				id, ok := e.(*ast.Ident)
				if !ok {
					return false
				}
				o := pass.TypesInfo.Uses[id]
				if o == nil {
					o = pass.TypesInfo.Defs[id]
				}
				return o == param
			},
			Call: keyCallPolicy(pass),
		})
		kf.ParamResults[i] = taintedResults(pass, fn, sig, pfl)
		idx := i
		checkSinks(pass, fn, pfl, func(_ ast.Node, sink string) {
			for _, l := range kf.ParamLeaks {
				if l.Param == idx && l.Sink == sink {
					return
				}
			}
			kf.ParamLeaks = append(kf.ParamLeaks, ParamLeak{Param: idx, Sink: sink})
		})
	}
	return kf
}

// taintedResults lists result indices whose returned values are tainted.
func taintedResults(pass *analysis.Pass, fn *ast.FuncDecl, sig *types.Signature, fl *analysis.Flow) []int {
	n := sig.Results().Len()
	if n == 0 {
		return nil
	}
	tainted := make([]bool, n)
	// Error results are never key material (see clearErrorResults).
	carrier := make([]bool, n)
	for i := 0; i < n; i++ {
		carrier[i] = !isErrorType(sig.Results().At(i).Type())
	}
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == n:
			for i, r := range ret.Results {
				if fl.Tainted(r) {
					tainted[i] = true
				}
			}
		case len(ret.Results) == 1 && n > 1:
			// return f(): per-result precision lost; taint all.
			if fl.Tainted(ret.Results[0]) {
				for i := range tainted {
					tainted[i] = true
				}
			}
		case len(ret.Results) == 0:
			// Naked return: consult named result objects.
			for i := 0; i < n; i++ {
				if fl.TaintedObjects()[sig.Results().At(i)] {
					tainted[i] = true
				}
			}
		}
		return true
	})
	var out []int
	for i, t := range tainted {
		if t && carrier[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkSinks walks fn's body calling report for every sink call fed
// tainted bytes, with a short sink description ("fmt.Errorf", "obs.Emit
// (exported via /metricz//tracez)", "fmt.Sprintf (via shard.describe)").
// The final pass turns reports into diagnostics; the summary pass records
// them as ParamLeaks, which surface at call sites in other functions and
// packages.
func checkSinks(pass *analysis.Pass, fn *ast.FuncDecl, fl *analysis.Flow, report func(ast.Node, string)) {
	if pass.FuncDirective(fn, "sealed") {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.LineDirective(call.Pos(), "sealed") {
			return true
		}
		callee := calleeObject(pass, call)
		if callee == nil {
			return true
		}
		sink := classifySink(pass, callee)
		if sink != "" {
			for _, arg := range call.Args {
				if sinkArgTainted(pass, fl, arg) {
					report(call, sink)
					break
				}
			}
			return true
		}
		// Leaky callee: passing key bytes to a function that sinks them.
		var kf KeyFlowFact
		if pass.ImportObjectFact(callee, &kf) && len(kf.ParamLeaks) > 0 {
			for _, leak := range kf.ParamLeaks {
				arg := argForParam(call, leak.Param)
				if arg != nil && fl.Tainted(arg) {
					report(call, fmt.Sprintf("%s (via %s)", leak.Sink, calleeName(callee)))
				}
			}
		}
		return true
	})
}

// classifySink names the sink a call to callee represents, or "".
func classifySink(pass *analysis.Pass, callee types.Object) string {
	if isSealedObj(pass, callee) {
		return ""
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return ""
	}
	switch {
	case pkg.Name() == "fmt":
		return "fmt." + callee.Name()
	case pkg.Name() == "errors" && callee.Name() == "New":
		return "errors.New"
	case pkg.Name() == "obs" && pkg != pass.Pkg:
		return "obs." + callee.Name() + " (exported via /metricz//tracez)"
	}
	if callee.Name() == "Write" || callee.Name() == "WriteString" {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			return calleeName(callee) + " (unsealed writer)"
		}
	}
	return ""
}

// sinkArgTainted extends value taint through composite literals at sink
// boundaries: obs.Emit(Event{Extra: string(key)}) leaks even though the
// literal itself is a container.
func sinkArgTainted(pass *analysis.Pass, fl *analysis.Flow, e ast.Expr) bool {
	if fl.Tainted(e) {
		return true
	}
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok {
			lit, _ = u.X.(*ast.CompositeLit)
		}
		if lit == nil {
			return false
		}
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		if sinkArgTainted(pass, fl, elt) {
			return true
		}
	}
	return false
}

// calleeName renders pkg.Func or pkg.Type.Method for diagnostics.
func calleeName(obj types.Object) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := recvNamed(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}

// recvNamed strips pointers off a receiver type to its named type.
func recvNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// sameKeyFlow reports whether two summaries are identical (fixpoint test).
func sameKeyFlow(a, b *KeyFlowFact) bool {
	if len(a.SecretResults) != len(b.SecretResults) ||
		len(a.ParamResults) != len(b.ParamResults) ||
		len(a.ParamLeaks) != len(b.ParamLeaks) {
		return false
	}
	for i := range a.SecretResults {
		if a.SecretResults[i] != b.SecretResults[i] {
			return false
		}
	}
	for i := range a.ParamResults {
		if len(a.ParamResults[i]) != len(b.ParamResults[i]) {
			return false
		}
		for j := range a.ParamResults[i] {
			if a.ParamResults[i][j] != b.ParamResults[i][j] {
				return false
			}
		}
	}
	for i := range a.ParamLeaks {
		if a.ParamLeaks[i] != b.ParamLeaks[i] {
			return false
		}
	}
	return true
}
