package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/securemem/morphtree/internal/analysis"
)

// HotAlloc enforces the zero-allocation contract on `//morph:hotpath`
// functions.
//
// The paper's low-overhead claim (§7: <1% slowdown vs ~7% for SGX-style
// trees) survives in software only if the per-access path — the secmem
// verify walk, shard dispatch, wire frame encode/decode — does no heap
// work. ROADMAP item 1 targets B/op→0 on that path; benchmarks catch
// regressions after the fact, this analyzer blocks them at vet time.
//
// Inside an annotated function the analyzer flags every potential heap
// allocation: make/new, slice, map and &struct literals (plain value
// literals like Event{...} stay on the stack and pass), closures, string
// concatenation, string<->[]byte conversions, fmt calls, interface boxing
// at call arguments (error-typed parameters excluded — errors are the
// cold path by construction), and calls to functions known — via an
// AllocFact computed bottom-up over the call graph and carried between
// packages as a fact — to allocate.
//
// Blocks that terminate by returning a non-nil error or panicking are
// cold paths and exempt: the contract covers the success path that runs
// per memory access, not failure reporting. append() is deliberately not
// flagged — appends into pre-sized buffers are the idiomatic in-place
// write and stay on the owner's allocation; -benchmem remains the runtime
// backstop for growth bugs. Stdlib calls outside fmt are assumed
// alloc-free; where that assumption is wrong the benchmark gate catches
// it. Suppress single sites with `//morphlint:allow hotalloc -- reason`.
var HotAlloc = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "//morph:hotpath functions must not allocate: no escaping literals, boxing, string concat, fmt, or closures",
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
	Run:       runHotAlloc,
}

// AllocFact marks a function that may allocate on its success path.
type AllocFact struct{}

// AFact implements analysis.Fact.
func (*AllocFact) AFact() {}

func runHotAlloc(pass *analysis.Pass) error {
	computeAllocFacts(pass)
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fn.Body == nil || !pass.FuncDirective(fn, "hotpath") {
			return false
		}
		walkHot(pass, fn.Body, func(pos ast.Node, what string) {
			pass.Reportf(pos.Pos(), "hot path (//morph:hotpath %s) %s", fn.Name.Name, what)
		})
		return false
	})
	return nil
}

// computeAllocFacts exports an AllocFact for every package function whose
// success path may allocate, iterating to a fixpoint so call chains
// resolve regardless of declaration order. Hotpath-annotated functions
// never get the fact: they are checked directly, and marking them would
// flag every caller twice.
func computeAllocFacts(pass *analysis.Pass) {
	for iter := 0; iter < 10; iter++ {
		changed := false
		pass.Inspect(func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Body == nil || pass.FuncDirective(fn, "hotpath") {
				return false
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil || pass.ImportObjectFact(obj, &AllocFact{}) {
				return false
			}
			allocates := false
			walkHot(pass, fn.Body, func(ast.Node, string) { allocates = true })
			if allocates {
				pass.ExportObjectFact(obj, &AllocFact{})
				changed = true
			}
			return false
		})
		if !changed {
			return
		}
	}
}

// walkHot walks body in source order, skipping cold blocks, and calls
// report for every allocation site.
func walkHot(pass *analysis.Pass, body *ast.BlockStmt, report func(ast.Node, string)) {
	cold := coldBlocks(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil && cold[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "allocates a closure")
			return false
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n, "allocates a slice literal")
			case *types.Map:
				report(n, "allocates a map literal")
			}
			// Value struct/array literals stay on the stack; &T{} is
			// caught at the UnaryExpr below.
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "heap-allocates &composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass, n) {
				report(n, "concatenates strings (allocates)")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass, n.Lhs[0]) {
				report(n, "concatenates strings (allocates)")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, report)
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot region.
func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, report func(ast.Node, string)) {
	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypesInfo.Types[call.Args[0]].Type
		if to != nil && from != nil {
			if isString(to) && isByteSlice(from) {
				report(call, "converts []byte to string (allocates a copy)")
			}
			if isByteSlice(to) && isString(from) {
				report(call, "converts string to []byte (allocates a copy)")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				report(call, "calls make (allocates)")
			case "new":
				report(call, "calls new (allocates)")
			}
			return
		}
	}
	callee := calleeObject(pass, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Name() == "fmt" {
		report(call, "calls fmt."+callee.Name()+" (allocates and boxes)")
		return
	}
	if callee != nil && pass.ImportObjectFact(callee, &AllocFact{}) {
		report(call, "calls "+calleeName(callee)+", which allocates")
	}
	// Interface boxing at arguments.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) || isErrorType(pt) {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) || isUntypedNil(pass, arg) {
			continue
		}
		report(arg, "boxes "+at.String()+" into interface argument (allocates)")
	}
}

// coldBlocks marks every block whose final statement returns a non-nil
// error or panics: failure paths, exempt from the zero-alloc contract.
func coldBlocks(pass *analysis.Pass, body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	mark := func(list []ast.Stmt, node ast.Node) {
		if len(list) == 0 {
			return
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			for _, r := range last.Results {
				t := pass.TypesInfo.Types[r].Type
				if t != nil && isErrorType(t) && !isUntypedNil(pass, r) {
					cold[node] = true
					return
				}
				// Typed error structs returned by value paths.
				if t != nil && implementsError(t) && !isUntypedNil(pass, r) {
					cold[node] = true
					return
				}
			}
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					cold[node] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			mark(n.Body.List, n.Body)
			if els, ok := n.Else.(*ast.BlockStmt); ok {
				mark(els.List, els)
			}
		case *ast.CaseClause:
			mark(n.Body, n)
		}
		return true
	})
	return cold
}

// callSignature resolves the signature of call's callee, if any.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type parameter position i receives, unrolling the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i < n-1 || (!sig.Variadic() && i < n) {
		return sig.Params().At(i).Type()
	}
	if !sig.Variadic() {
		return nil
	}
	if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
		return sl.Elem()
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	return t != nil && isString(t)
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}
