package lint

import (
	"go/ast"
	"go/token"

	"github.com/securemem/morphtree/internal/analysis"
)

// CachelineInv flags hard-coded cacheline-layout literals (64, 128, 512) in
// executable code of the layout-bearing packages (counters, tree, bmt).
//
// The paper's layouts hang off three magic numbers: 64-byte counter lines,
// 512 bits per line, and 128 counters per MorphCtr line (Figures 8 and 13).
// Sprinkling the raw numbers through function bodies is how a refactor
// silently desynchronizes an encoder from its decoder, so executable code
// must spell them via named constants (LineBytes, LineBits, MorphArity,
// bitops.WordBits, ...). Package-level const and var declarations are the
// sanctioned place where the literals appear once, with a name.
var CachelineInv = &analysis.Analyzer{
	Name: "cachelineinv",
	Doc:  "flag hard-coded 64/128/512 layout literals outside named constants in layout-bearing packages",
	Run:  runCachelineInv,
}

// layoutLiterals are the cacheline geometry numbers the check covers.
var layoutLiterals = map[string]bool{"64": true, "128": true, "512": true}

func runCachelineInv(pass *analysis.Pass) error {
	if !analysis.PkgNamed(pass.Pkg, "counters", "tree", "bmt") {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				// A function-local const declaration names the literal;
				// that is the fix, not a finding.
				if n.Tok == token.CONST {
					return false
				}
			case *ast.BasicLit:
				if n.Kind == token.INT && layoutLiterals[n.Value] {
					pass.Reportf(n.Pos(), "hard-coded cacheline layout literal %s; use a named constant (LineBytes, LineBits, MorphArity, bitops.WordBits, ...)", n.Value)
				}
			}
			return true
		})
		// Declarations outside function bodies (const blocks, layout
		// tables) are the one sanctioned home for these literals.
		return false
	})
	return nil
}
