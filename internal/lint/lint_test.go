package lint

import (
	"testing"

	"github.com/securemem/morphtree/internal/analysis/analysistest"
)

func TestCachelineInv(t *testing.T) {
	analysistest.Run(t, "testdata", CachelineInv, "counters", "other")
}

func TestCryptoRand(t *testing.T) {
	analysistest.Run(t, "testdata", CryptoRand, "mac", "plainpkg")
}

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, "testdata", ErrDiscard, "secmem", "wal", "fault", "obs", "server", "shard", "proof", "tenant", "cluster")
}

func TestPanicPolicy(t *testing.T) {
	analysistest.Run(t, "testdata", PanicPolicy, "panics", "mainpkg", "invariant")
}

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, "testdata", LockHeld, "locked", "limiter", "obsreg", "sched", "clusterlock")
}

func TestKeyTaint(t *testing.T) {
	analysistest.Run(t, "testdata", KeyTaint, "keymat", "keyuse", "signer")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", HotAlloc, "hot", "hotuse")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", LockOrder, "locks", "locka", "lockb")
}
