package lint

import (
	"go/ast"
	"strconv"

	"github.com/securemem/morphtree/internal/analysis"
)

// CryptoRand forbids math/rand in the non-test code of the cryptographic
// packages (aesctr, mac, secmem).
//
// Counter-mode pads and MAC keys derive their security from
// unpredictability (Section II-A); a deterministic PRNG anywhere in those
// packages is a key-recovery bug waiting to be wired in. Tests may use
// math/rand freely for reproducible inputs.
var CryptoRand = &analysis.Analyzer{
	Name: "cryptorand",
	Doc:  "forbid math/rand in non-test code of cryptographic packages (aesctr, mac, secmem)",
	Run:  runCryptoRand,
}

func runCryptoRand(pass *analysis.Pass) error {
	if !analysis.PkgNamed(pass.Pkg, "aesctr", "mac", "secmem") {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		imp, ok := n.(*ast.ImportSpec)
		if !ok {
			return true
		}
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			return true
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "%s imported in cryptographic package %s; use crypto/rand", path, pass.Pkg.Name())
		}
		return true
	})
	return nil
}
