package counters

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func splitEqual(a, b *Split) bool {
	if a.arity != b.arity || a.minorBits != b.minorBits || a.major != b.major ||
		a.mac != b.mac || a.nonzero != b.nonzero {
		return false
	}
	for i := range a.minors {
		if a.minors[i] != b.minors[i] {
			return false
		}
	}
	return true
}

func morphEqual(a, b *Morph) bool {
	if a.format != b.format || a.major != b.major || a.mac != b.mac ||
		a.nonzero != b.nonzero || a.base != b.base {
		return false
	}
	return a.minors == b.minors
}

func TestSplitCodecRoundTrip(t *testing.T) {
	for _, arity := range []int{8, 16, 32, 64, 128} {
		rng := rand.New(rand.NewSource(int64(arity)))
		b := SplitSpec(arity).New().(*Split)
		for w := 0; w < 5000; w++ {
			b.Increment(rng.Intn(arity))
		}
		b.SetMAC(rng.Uint64())
		enc := b.Encode()
		if len(enc) != LineBytes {
			t.Fatalf("SC-%d encoded to %d bytes", arity, len(enc))
		}
		dec, err := DecodeSplit(enc, arity)
		if err != nil {
			t.Fatalf("SC-%d decode: %v", arity, err)
		}
		if !splitEqual(b, dec) {
			t.Fatalf("SC-%d round trip mismatch", arity)
		}
	}
}

func TestSplitDecodeErrors(t *testing.T) {
	if _, err := DecodeSplit(make([]byte, 63), 64); err == nil {
		t.Error("short buffer must fail")
	}
	if _, err := DecodeSplit(make([]byte, 64), 7); err == nil {
		t.Error("bad arity must fail")
	}
}

func TestMorphCodecRoundTripAllFormats(t *testing.T) {
	drive := func(rebasing bool, writes int, slots int) *Morph {
		m := NewMorph(rebasing)
		rng := rand.New(rand.NewSource(int64(writes)))
		for w := 0; w < writes; w++ {
			m.Increment(rng.Intn(slots))
		}
		m.SetMAC(rng.Uint64())
		return m
	}
	cases := []struct {
		name     string
		m        *Morph
		rebasing bool
		want     Format
	}{
		{"zcc-sparse", drive(true, 200, 10), true, FormatZCC},
		{"zcc-mid", drive(true, 300, 60), true, FormatZCC},
		{"mcr", drive(true, 4000, 128), true, FormatMCR},
		{"uniform", drive(false, 4000, 128), false, FormatUniform},
		{"fresh", NewMorph(true), true, FormatZCC},
	}
	for _, c := range cases {
		if c.m.Format() != c.want {
			t.Fatalf("%s: drive produced %v, want %v", c.name, c.m.Format(), c.want)
		}
		enc := c.m.Encode()
		dec, err := DecodeMorph(enc, c.rebasing)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if !morphEqual(c.m, dec) {
			t.Fatalf("%s: round trip mismatch:\n  in  %+v\n  out %+v", c.name, c.m, dec)
		}
		// Effective values must survive the trip.
		for i := 0; i < MorphArity; i++ {
			if c.m.Value(i) != dec.Value(i) {
				t.Fatalf("%s: value(%d) %d != %d", c.name, i, c.m.Value(i), dec.Value(i))
			}
		}
	}
}

func TestMorphDecodeRejectsCorruption(t *testing.T) {
	m := NewMorph(true)
	for i := 0; i < 20; i++ {
		m.Increment(i)
	}
	enc := m.Encode()

	// Wrong length.
	if _, err := DecodeMorph(enc[:32], true); err == nil {
		t.Error("short buffer must fail")
	}

	// Corrupt the Ctr-Sz field so it disagrees with the bit-vector count.
	bad := bytes.Clone(enc)
	bad[0] ^= 0x40 // flips a Ctr-Sz bit (bits 1..6 of byte 0)
	if _, err := DecodeMorph(bad, true); err == nil {
		t.Error("inconsistent Ctr-Sz must fail")
	}
}

func TestMorphEncodeDeterministic(t *testing.T) {
	m := NewMorph(true)
	for i := 0; i < 40; i++ {
		m.Increment(i % 7)
	}
	if !bytes.Equal(m.Encode(), m.Encode()) {
		t.Fatal("Encode is not deterministic")
	}
}

// Property: arbitrary write sequences produce lines that round-trip through
// the wire format with all effective values intact.
func TestQuickMorphCodecRoundTrip(t *testing.T) {
	f := func(seed int64, rebasing bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMorph(rebasing)
		n := rng.Intn(6000)
		slots := 1 + rng.Intn(MorphArity)
		for w := 0; w < n; w++ {
			m.Increment(rng.Intn(slots))
		}
		m.SetMAC(rng.Uint64())
		dec, err := DecodeMorph(m.Encode(), rebasing)
		if err != nil {
			return false
		}
		for i := 0; i < MorphArity; i++ {
			if m.Value(i) != dec.Value(i) {
				return false
			}
		}
		return morphEqual(m, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: split lines round-trip for arbitrary write sequences.
func TestQuickSplitCodecRoundTrip(t *testing.T) {
	arities := []int{8, 16, 32, 64, 128}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := arities[rng.Intn(len(arities))]
		b := SplitSpec(arity).New().(*Split)
		for w := rng.Intn(3000); w > 0; w-- {
			b.Increment(rng.Intn(arity))
		}
		b.SetMAC(rng.Uint64())
		dec, err := DecodeSplit(b.Encode(), arity)
		if err != nil {
			return false
		}
		return splitEqual(b, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutBitBudgets(t *testing.T) {
	// Figure 8/13 field widths must exactly fill the 512-bit line.
	// ZCC: 1 (tag) + 6 (Ctr-Sz) + 57 (major) + 128 (bit-vector) +
	// 256 (non-zero counters) + 64 (MAC).
	if total := 1 + 6 + 57 + 128 + 256 + 64; total != LineBits {
		t.Fatalf("ZCC layout = %d bits", total)
	}
	// MCR: 1 + 49 (major) + 7 + 7 (bases) + 2x64x3 (minors) + 64 (MAC).
	if total := 1 + 49 + 7 + 7 + 384 + 64; total != LineBits {
		t.Fatalf("MCR layout = %d bits", total)
	}
	// Uniform: 1 + 6 + 57 + 128x3 + 64.
	if total := 1 + 6 + 57 + 384 + 64; total != LineBits {
		t.Fatalf("uniform layout = %d bits", total)
	}
	// Split: 64 (major) + n x (384/n) + 64 (MAC) for every arity.
	for arity, bits := range map[int]int{8: 48, 16: 24, 32: 12, 64: 6, 128: 3} {
		if total := 64 + arity*bits + 64; total != LineBits {
			t.Fatalf("SC-%d layout = %d bits", arity, total)
		}
		if MinorBits(arity) != bits {
			t.Fatalf("MinorBits(%d) = %d, want %d", arity, MinorBits(arity), bits)
		}
	}
}

func TestEncodedLinesAre64Bytes(t *testing.T) {
	blocks := []Block{
		NewMorph(true), NewMorph(false), NewSplit(64, 6), NewSplit(128, 3), NewDelta(),
	}
	for _, b := range blocks {
		for i := 0; i < 300; i++ {
			b.Increment(i % b.Arity())
		}
		if got := len(b.Encode()); got != LineBytes {
			t.Fatalf("%T encoded to %d bytes", b, got)
		}
	}
}
