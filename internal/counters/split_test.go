package counters

import (
	"testing"

	"github.com/securemem/morphtree/internal/invariant"
)

func TestSplitSpecArities(t *testing.T) {
	for _, arity := range []int{8, 16, 32, 64, 128} {
		spec := SplitSpec(arity)
		b := spec.New()
		if b.Arity() != arity {
			t.Errorf("SC-%d arity = %d", arity, b.Arity())
		}
		if b.NonZero() != 0 {
			t.Errorf("SC-%d fresh block nonzero = %d", arity, b.NonZero())
		}
	}
}

func TestSplitSpecUnsupportedArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for arity 7")
		}
	}()
	SplitSpec(7)
}

func TestSplitBasicIncrement(t *testing.T) {
	b := NewSplit(64, 6)
	for k := 1; k <= 10; k++ {
		ev := b.Increment(3)
		if ev.Overflow || ev.Rebased {
			t.Fatalf("unexpected event on write %d: %+v", k, ev)
		}
		if got := b.Value(3); got != uint64(k) {
			t.Fatalf("value after %d writes = %d", k, got)
		}
	}
	if b.NonZero() != 1 {
		t.Fatalf("nonzero = %d", b.NonZero())
	}
	if got := b.Value(0); got != 0 {
		t.Fatalf("untouched counter value = %d", got)
	}
}

func TestSplitValueIsConcatenation(t *testing.T) {
	b := NewSplit(64, 6)
	b.major = 5
	b.minors[7] = 9
	if got, want := b.Value(7), uint64(5<<6|9); got != want {
		t.Fatalf("value = %d, want %d", got, want)
	}
}

func TestSplitOverflowAtMinorMax(t *testing.T) {
	b := NewSplit(64, 6)
	b.Increment(1) // make another counter non-zero to observe the reset
	for k := 0; k < 63; k++ {
		if ev := b.Increment(0); ev.Overflow {
			t.Fatalf("premature overflow on write %d", k)
		}
	}
	// Counter 0 is at 63 (max). The 64th write to it overflows.
	ev := b.Increment(0)
	if !ev.Overflow {
		t.Fatal("expected overflow")
	}
	if ev.Reencrypt != 64 {
		t.Fatalf("reencrypt = %d, want 64", ev.Reencrypt)
	}
	// Major advanced; all minors reset except the written one.
	if got, want := b.Value(0), uint64(1<<6|1); got != want {
		t.Fatalf("value(0) = %d, want %d", got, want)
	}
	if got, want := b.Value(1), uint64(1<<6); got != want {
		t.Fatalf("value(1) = %d, want %d", got, want)
	}
	if b.NonZero() != 1 {
		t.Fatalf("nonzero after overflow = %d", b.NonZero())
	}
}

func TestSplitSC128OverflowsInEightWrites(t *testing.T) {
	// Section II-B: "packing 128 counters per cacheline results in 3-bit
	// minor counters that can overflow in just 8 writes".
	b := NewSplit(128, 3)
	writes := 0
	for {
		writes++
		if ev := b.Increment(0); ev.Overflow {
			break
		}
	}
	if writes != 8 {
		t.Fatalf("SC-128 overflowed after %d writes, want 8", writes)
	}
}

func TestSplitSC64OverflowsIn64Writes(t *testing.T) {
	b := NewSplit(64, 6)
	writes := 0
	for {
		writes++
		if ev := b.Increment(0); ev.Overflow {
			break
		}
	}
	if writes != 64 {
		t.Fatalf("SC-64 overflowed after %d writes, want 64", writes)
	}
}

func TestSplitNoValueReuseAcrossOverflow(t *testing.T) {
	b := NewSplit(128, 3)
	seen := map[uint64]bool{}
	for w := 0; w < 100; w++ {
		b.Increment(5)
		v := b.Value(5)
		if seen[v] {
			t.Fatalf("counter value %d reused after write %d", v, w)
		}
		seen[v] = true
	}
}

func TestSplitOversizedLayoutPanics(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("layout-fit check is a morphdebug assertion; run with -tags morphdebug")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 128 x 6-bit layout")
		}
	}()
	NewSplit(128, 6)
}
