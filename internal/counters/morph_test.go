package counters

import "testing"

func TestZCCSizeTable(t *testing.T) {
	// Section III-B1: "up to 16 non-zero counters each counter gets
	// 16-bits, up to 32 ... 8-bits ... (7-bits up to 36, 6-bits up to 42,
	// 5-bits up to 51 and 4-bits up to 64)".
	cases := []struct{ nz, size int }{
		{0, 16}, {1, 16}, {16, 16},
		{17, 8}, {32, 8},
		{33, 7}, {36, 7},
		{37, 6}, {42, 6},
		{43, 5}, {51, 5},
		{52, 4}, {64, 4},
		{65, 3}, {128, 3},
	}
	for _, c := range cases {
		if got := ZCCSize(c.nz); got != c.size {
			t.Errorf("ZCCSize(%d) = %d, want %d", c.nz, got, c.size)
		}
	}
}

func TestZCCSizeFitsBudget(t *testing.T) {
	// The non-zero counter field is 256 bits; every sizing must fit.
	for nz := 1; nz <= 64; nz++ {
		if nz*ZCCSize(nz) > 256 {
			t.Errorf("%d counters x %d bits exceeds the 256-bit field", nz, ZCCSize(nz))
		}
	}
}

func TestMorphSparseGetsLargeCounters(t *testing.T) {
	// With 16 or fewer counters used, each gets 16 bits: one counter can
	// absorb 2^16-1 increments without overflow.
	m := NewMorph(true)
	for k := 0; k < (1<<16)-1; k++ {
		if ev := m.Increment(0); ev.Overflow {
			t.Fatalf("overflow after %d writes with a single counter used", k+1)
		}
	}
	if got := m.Value(0); got != (1<<16)-1 {
		t.Fatalf("value = %d", got)
	}
	if ev := m.Increment(0); !ev.Overflow || ev.Reencrypt != MorphArity {
		t.Fatalf("expected full overflow at 16-bit max, got %+v", ev)
	}
}

func TestMorphShrinkTriggersReorg(t *testing.T) {
	m := NewMorph(true)
	// Fill 16 counters with small values: size 16 bits.
	for i := 0; i < 16; i++ {
		m.Increment(i)
	}
	if m.Format() != FormatZCC || ZCCSize(m.NonZero()) != 16 {
		t.Fatalf("format %v, nonzero %d", m.Format(), m.NonZero())
	}
	// 17th counter: size shrinks to 8 bits; small values still fit.
	ev := m.Increment(16)
	if ev.Overflow {
		t.Fatal("shrink with small values must not overflow")
	}
	if !ev.FormatSwitch {
		t.Fatal("expected re-encode event on size change")
	}
	if m.NonZero() != 17 {
		t.Fatalf("nonzero = %d", m.NonZero())
	}
}

func TestMorphShrinkOverflowsWhenValueTooLarge(t *testing.T) {
	m := NewMorph(true)
	// Grow counter 0 past the 8-bit maximum while 16-bit sized.
	for k := 0; k < 300; k++ {
		m.Increment(0)
	}
	for i := 1; i < 16; i++ {
		m.Increment(i)
	}
	// The 17th non-zero counter forces 8-bit sizing; 300 does not fit.
	ev := m.Increment(16)
	if !ev.Overflow || ev.Reencrypt != MorphArity {
		t.Fatalf("expected overflow on unfittable shrink, got %+v", ev)
	}
	// Major advanced past the largest minor: new values exceed old ones.
	if got := m.Value(16); got != 302 {
		t.Fatalf("value(16) = %d, want 302", got)
	}
	if got := m.Value(0); got != 301 {
		t.Fatalf("value(0) = %d, want 301", got)
	}
}

func TestMorphTransitionToMCRPreservesValues(t *testing.T) {
	m := NewMorph(true)
	// Advance the major so the base-seeding path (low 7 bits) is exercised.
	for k := 0; k < (1<<16)-1; k++ {
		m.Increment(0)
	}
	m.Increment(0) // overflow: major = 2^16
	// Touch 64 counters (still ZCC), then the 65th forces the dense form.
	for i := 0; i < 64; i++ {
		m.Increment(i)
	}
	before := make([]uint64, MorphArity)
	for i := range before {
		before[i] = m.Value(i)
	}
	ev := m.Increment(64)
	if !ev.FormatSwitch || ev.Overflow {
		t.Fatalf("expected clean format switch, got %+v", ev)
	}
	if m.Format() != FormatMCR {
		t.Fatalf("format = %v, want MCR", m.Format())
	}
	for i := range before {
		want := before[i]
		if i == 64 {
			want++
		}
		if got := m.Value(i); got != want {
			t.Fatalf("value(%d) = %d, want %d after format switch", i, got, want)
		}
	}
}

func TestMorphTransitionWithLargeValueOverflows(t *testing.T) {
	m := NewMorph(true)
	// Counter 0 holds 8 (> 3-bit max) when the 65th counter arrives.
	for k := 0; k < 8; k++ {
		m.Increment(0)
	}
	for i := 1; i < 64; i++ {
		m.Increment(i)
	}
	ev := m.Increment(64)
	if !ev.Overflow || ev.Reencrypt != MorphArity {
		t.Fatalf("expected overflow, got %+v", ev)
	}
	if m.Format() != FormatZCC {
		t.Fatalf("format after reset = %v", m.Format())
	}
}

// fillDense drives a fresh Morph into its dense format with every counter
// at value 1 (except slot 64, at 1 from the transition write).
func fillDense(t *testing.T, rebasing bool) *Morph {
	t.Helper()
	m := NewMorph(rebasing)
	for i := 0; i < MorphArity; i++ {
		if ev := m.Increment(i); ev.Overflow {
			t.Fatalf("unexpected overflow filling counter %d", i)
		}
	}
	return m
}

func TestMorphMCRRebaseAvoidsOverflow(t *testing.T) {
	m := fillDense(t, true)
	// Saturate counter 0 (set 0). All counters in set 0 are >= 1, so the
	// overflow must be absorbed by a rebase.
	for k := 0; k < 6; k++ {
		m.Increment(0)
	}
	if m.Value(0) != 7 {
		t.Fatalf("value(0) = %d", m.Value(0))
	}
	before := make([]uint64, MorphArity)
	for i := range before {
		before[i] = m.Value(i)
	}
	ev := m.Increment(0)
	if !ev.Rebased {
		t.Fatalf("expected rebase, got %+v", ev)
	}
	if ev.Overflow || ev.Reencrypt != 0 {
		t.Fatalf("rebase must not re-encrypt: %+v", ev)
	}
	for i := 1; i < MorphArity; i++ {
		if m.Value(i) != before[i] {
			t.Fatalf("rebase changed value(%d): %d -> %d", i, before[i], m.Value(i))
		}
	}
	if m.Value(0) != before[0]+1 {
		t.Fatalf("value(0) = %d, want %d", m.Value(0), before[0]+1)
	}
}

func TestMorphMCRSetResetWhenZeroPresent(t *testing.T) {
	m := fillDense(t, true)
	// Force a zero into set 0 via a set reset cycle: first get one.
	// Saturate counter 0 repeatedly; after one rebase the set's other
	// counters keep their values. To create a zero, use the reset path:
	// drive counter 0 to max, rebase until counter 1 reaches 0.
	for {
		// All of set 0 at least 1. Saturate counter 0 only; each
		// rebase subtracts the set minimum.
		for m.minors[0] != uniformMax {
			m.Increment(0)
		}
		ev := m.Increment(0)
		if ev.Overflow {
			// Reset happened once a zero appeared.
			if ev.Reencrypt != morphSetSize {
				t.Fatalf("set reset reencrypt = %d, want %d", ev.Reencrypt, morphSetSize)
			}
			// Set 1 untouched by a set-0 reset.
			if m.Value(70) == 0 {
				t.Fatal("set 1 was clobbered by a set 0 reset")
			}
			return
		}
		if !ev.Rebased {
			t.Fatalf("expected rebase or reset, got %+v", ev)
		}
	}
}

func TestMorphMCRBaseOverflowResetsToZCC(t *testing.T) {
	m := fillDense(t, true)
	var sawFullReset bool
	before := make([]uint64, MorphArity)
	// Hammer the whole line uniformly until the base exhausts its 7 bits.
	for round := 0; round < 100000 && !sawFullReset; round++ {
		for i := 0; i < MorphArity; i++ {
			for j := range before {
				before[j] = m.Value(j)
			}
			ev := m.Increment(i)
			if ev.Overflow && ev.Reencrypt == MorphArity {
				sawFullReset = true
				if m.Format() != FormatZCC {
					t.Fatalf("format after base overflow = %v", m.Format())
				}
				// Forward motion: every value must exceed its
				// pre-reset value.
				for j := range before {
					if m.Value(j) <= before[j] && j != i {
						t.Fatalf("value(%d) moved backwards: %d -> %d", j, before[j], m.Value(j))
					}
				}
				break
			}
		}
	}
	if !sawFullReset {
		t.Fatal("base overflow never occurred under sustained uniform writes")
	}
}

func TestMorphUniformNoRebasingResets(t *testing.T) {
	m := fillDense(t, false)
	if m.Format() != FormatUniform {
		t.Fatalf("format = %v, want uniform", m.Format())
	}
	for k := 0; k < 6; k++ {
		m.Increment(0)
	}
	ev := m.Increment(0)
	if !ev.Overflow || ev.Reencrypt != MorphArity {
		t.Fatalf("ZCC-only dense overflow must reset the full line: %+v", ev)
	}
	if m.Format() != FormatZCC {
		t.Fatalf("format after reset = %v", m.Format())
	}
}

func TestMorphValueMonotonicity(t *testing.T) {
	// Deterministic stress: pseudo-random increments must never move any
	// effective value backwards, and must strictly advance the target.
	for _, rebasing := range []bool{true, false} {
		m := NewMorph(rebasing)
		rng := uint64(12345)
		prev := make([]uint64, MorphArity)
		for w := 0; w < 200000; w++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			i := int(rng>>33) % MorphArity
			ev := m.Increment(i)
			if m.Value(i) <= prev[i] {
				t.Fatalf("rebasing=%v write %d: value(%d) %d -> %d not increasing",
					rebasing, w, i, prev[i], m.Value(i))
			}
			for j := 0; j < MorphArity; j++ {
				if m.Value(j) < prev[j] {
					t.Fatalf("rebasing=%v write %d: value(%d) %d -> %d decreased (ev=%+v)",
						rebasing, w, j, prev[j], m.Value(j), ev)
				}
				prev[j] = m.Value(j)
			}
		}
	}
}

func TestMorphSiblingChangeImpliesReencryption(t *testing.T) {
	// Security invariant: if an increment changes a sibling's effective
	// value, the event must have declared re-encryption covering it.
	m := NewMorph(true)
	rng := uint64(99)
	prev := make([]uint64, MorphArity)
	for w := 0; w < 100000; w++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		i := int(rng>>33) % MorphArity
		ev := m.Increment(i)
		for j := 0; j < MorphArity; j++ {
			if j != i && m.Value(j) != prev[j] {
				if !ev.Overflow {
					t.Fatalf("write %d: sibling %d changed without overflow event", w, j)
				}
				if ev.Reencrypt == morphSetSize && j/morphSetSize != i/morphSetSize {
					t.Fatalf("write %d: set reset of %d's set changed other-set sibling %d", w, i, j)
				}
			}
			prev[j] = m.Value(j)
		}
	}
}
