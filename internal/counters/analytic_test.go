package counters

import "testing"

func TestSplitWritesToOverflowAnchors(t *testing.T) {
	// Figure 6 anchors: SC-64 overflows every 64 writes worst-case; SC-128
	// in just 8; at full utilization SC-64 tolerates 64x64 = 4096.
	cases := []struct {
		arity, used int
		want        uint64
	}{
		{64, 1, 64},
		{64, 64, 4096},
		{128, 1, 8},
		{128, 128, 1024},
		{64, 0, 64},     // clamped up
		{64, 999, 4096}, // clamped down
	}
	for _, c := range cases {
		if got := SplitWritesToOverflow(c.arity, c.used); got != c.want {
			t.Errorf("SplitWritesToOverflow(%d, %d) = %d, want %d", c.arity, c.used, got, c.want)
		}
	}
}

func TestSplit8xGap(t *testing.T) {
	// "SC-128 design tolerates 8x lesser writes before an overflow
	// compared to SC-64" at the same counter count.
	for u := 1; u <= 64; u++ {
		r := float64(SplitWritesToOverflow(64, u)) / float64(SplitWritesToOverflow(128, u))
		if r != 8 {
			t.Fatalf("SC-64/SC-128 tolerance ratio at %d counters = %v, want 8", u, r)
		}
	}
}

func TestZCCWritesToOverflowAnchors(t *testing.T) {
	cases := []struct {
		used int
		want uint64
	}{
		{1, 1 << 16},    // one 16-bit counter
		{16, 16 << 16},  // 2^20
		{32, 32 << 8},   // 2^13
		{64, 64 << 4},   // 2^10
		{128, 128 << 3}, // 2^10 dense
	}
	for _, c := range cases {
		if got := ZCCWritesToOverflow(c.used); got != c.want {
			t.Errorf("ZCCWritesToOverflow(%d) = %d, want %d", c.used, got, c.want)
		}
	}
}

func TestZCCBeatsSC64WhenSparse(t *testing.T) {
	// Figure 10: ZCC has higher time-to-overflow than SC-64 whenever at
	// most a quarter of the line is used (same fraction of the line).
	for u128 := 1; u128 <= 32; u128++ { // <= 25% of 128
		u64 := (u128 + 1) / 2 // same fraction of a 64-counter line
		zcc := ZCCWritesToOverflow(u128)
		sc := SplitWritesToOverflow(64, u64)
		if zcc <= sc {
			t.Errorf("at %d/128 used: ZCC %d <= SC-64 %d", u128, zcc, sc)
		}
	}
	// And at full utilization ZCC-only tolerates fewer (the dense 3-bit
	// regime), which rebasing then rescues.
	if ZCCWritesToOverflow(128) >= SplitWritesToOverflow(64, 64) {
		t.Error("dense ZCC should tolerate fewer writes than SC-64 at full use")
	}
}

func TestMCRWritesToOverflow(t *testing.T) {
	// Section V: "Morphable counters can tolerate 500+ writes before an
	// overflow, when counters are written uniformly".
	got := MCRWritesToOverflow()
	if got < 500 {
		t.Fatalf("MCR uniform tolerance = %d, want >= 500", got)
	}
	// And must beat the non-rebased dense tolerance by a wide margin.
	if got < 4*ZCCWritesToOverflow(128) {
		t.Fatalf("MCR tolerance %d should be >> dense-reset tolerance %d", got, ZCCWritesToOverflow(128))
	}
}

func TestPathologicalPattern(t *testing.T) {
	// Section V: "a pathological write pattern can cause an overflow in 67
	// writes, by writing once to 52 counters out of 128 ... followed by 15
	// writes to a single counter".
	if got := PathologicalZCCWrites(); got != 67 {
		t.Fatalf("pathological writes = %d, want 67", got)
	}
}

func TestOverflowCurvesShape(t *testing.T) {
	sc64 := SplitOverflowCurve(64)
	if len(sc64) != 64 {
		t.Fatalf("SC-64 curve has %d points", len(sc64))
	}
	// Monotone non-decreasing in utilization for split counters.
	for i := 1; i < len(sc64); i++ {
		if sc64[i].WritesToOverflow < sc64[i-1].WritesToOverflow {
			t.Fatalf("SC-64 curve decreases at %d", i)
		}
	}
	zcc := ZCCOverflowCurve()
	if len(zcc) != 128 {
		t.Fatalf("ZCC curve has %d points", len(zcc))
	}
	if zcc[0].FractionUsed <= 0 || zcc[len(zcc)-1].FractionUsed != 1 {
		t.Fatal("ZCC curve fraction range wrong")
	}
	// The ZCC curve steps down at each sizing boundary (16 -> 17 etc.).
	if zcc[16].WritesToOverflow >= zcc[15].WritesToOverflow {
		t.Error("expected sizing step between 16 and 17 counters")
	}
}

func TestAnalyticMatchesSimulatedSplit(t *testing.T) {
	// The analytic formula must agree with driving an actual block with
	// round-robin writes (to within the one-write fencepost the paper's
	// formula uses).
	for _, arity := range []int{64, 128} {
		for _, used := range []int{1, 3, arity / 4, arity} {
			b := SplitSpec(arity).New()
			var writes uint64
		outer:
			for {
				for i := 0; i < used; i++ {
					writes++
					if ev := b.Increment(i); ev.Overflow {
						break outer
					}
				}
			}
			want := SplitWritesToOverflow(arity, used)
			diff := int64(writes) - int64(want)
			if diff < -int64(used) || diff > int64(used) {
				t.Errorf("SC-%d used=%d: simulated %d vs analytic %d", arity, used, writes, want)
			}
		}
	}
}
