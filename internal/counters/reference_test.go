package counters

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCounters is the trivially correct counter semantics every organization
// must emulate: unbounded per-slot counters that a write advances, with the
// freedom to advance *other* slots too (overflow handling) as long as no
// slot ever moves backwards or repeats a value. It tracks the set of values
// each slot has exposed, which is the security-relevant history: counter
// mode breaks on any reuse.
type refCounters struct {
	seen []map[uint64]bool
	last []uint64
}

func newRef(arity int) *refCounters {
	r := &refCounters{
		seen: make([]map[uint64]bool, arity),
		last: make([]uint64, arity),
	}
	for i := range r.seen {
		r.seen[i] = map[uint64]bool{0: true}
	}
	return r
}

// observe checks one slot's new value against its history.
func (r *refCounters) observe(i int, v uint64, moved bool) bool {
	if moved {
		if v <= r.last[i] || r.seen[i][v] {
			return false
		}
	} else {
		if v < r.last[i] {
			return false
		}
		if v != r.last[i] && r.seen[i][v] {
			return false
		}
	}
	r.seen[i][v] = true
	r.last[i] = v
	return true
}

// driveAgainstReference runs a random write sequence on a block and checks
// every exposed counter value against the reference history.
func driveAgainstReference(t *testing.T, mk func() Block, writes int, seed int64) {
	t.Helper()
	blk := mk()
	ref := newRef(blk.Arity())
	rng := rand.New(rand.NewSource(seed))
	for w := 0; w < writes; w++ {
		// Mix of hot slots and uniform slots stresses every format
		// transition.
		var i int
		if rng.Intn(2) == 0 {
			i = rng.Intn(4)
		} else {
			i = rng.Intn(blk.Arity())
		}
		blk.Increment(i)
		for j := 0; j < blk.Arity(); j++ {
			if !ref.observe(j, blk.Value(j), j == i) {
				t.Fatalf("seed %d write %d: slot %d exposed value %d illegally (incremented slot %d)",
					seed, w, j, blk.Value(j), i)
			}
		}
	}
}

func TestMorphAgainstReferenceModel(t *testing.T) {
	driveAgainstReference(t, func() Block { return NewMorph(true) }, 30000, 1)
	driveAgainstReference(t, func() Block { return NewMorph(false) }, 30000, 2)
}

func TestSplitAgainstReferenceModel(t *testing.T) {
	driveAgainstReference(t, func() Block { return NewSplit(64, 6) }, 30000, 3)
	driveAgainstReference(t, func() Block { return NewSplit(128, 3) }, 30000, 4)
}

func TestDeltaAgainstReferenceModel(t *testing.T) {
	driveAgainstReference(t, func() Block { return NewDelta() }, 30000, 5)
}

// Property: the reference check holds for arbitrary seeds across all
// organizations (shorter runs, many seeds).
func TestQuickAllOrganizationsAgainstReference(t *testing.T) {
	mks := []func() Block{
		func() Block { return NewMorph(true) },
		func() Block { return NewMorph(false) },
		func() Block { return NewSplit(64, 6) },
		func() Block { return NewSplit(128, 3) },
		func() Block { return NewSplit(16, 24) },
		func() Block { return NewDelta() },
	}
	f := func(seed int64) bool {
		for _, mk := range mks {
			blk := mk()
			ref := newRef(blk.Arity())
			rng := rand.New(rand.NewSource(seed))
			for w := 0; w < 1500; w++ {
				i := rng.Intn(blk.Arity())
				blk.Increment(i)
				for j := 0; j < blk.Arity(); j++ {
					if !ref.observe(j, blk.Value(j), j == i) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
