package counters

import (
	"fmt"

	"github.com/securemem/morphtree/internal/invariant"
)

// MorphArity is the number of counters in a Morphable Counter cacheline.
const MorphArity = 128

// morphSetSize is the number of counters per MCR base (one 4KB page worth).
const morphSetSize = 64

// Format identifies the active representation of a Morphable Counter line.
type Format uint8

const (
	// FormatZCC is Zero Counter Compression: a 128-bit bit-vector marks
	// non-zero counters and 256 bits are shared equally among them.
	FormatZCC Format = iota
	// FormatUniform packs 128 x 3-bit counters under the 57-bit major
	// (the ZCC-only variant's dense representation).
	FormatUniform
	// FormatMCR packs two sets of 64 x 3-bit counters, each with a 7-bit
	// base that can be moved forward (rebased) to absorb overflows.
	FormatMCR
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatZCC:
		return "ZCC"
	case FormatUniform:
		return "uniform"
	case FormatMCR:
		return "MCR"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// ZCCSize returns the per-counter width, in bits, that Zero Counter
// Compression allots when nonzero counters are in use (Section III-B: the
// 256-bit non-zero field is divided equally). A result of 3 means the line
// has left ZCC for the dense uniform/MCR representation.
func ZCCSize(nonzero int) int {
	switch {
	case nonzero <= 16:
		return 16
	case nonzero <= 32:
		return 8
	case nonzero <= 36:
		return 7
	case nonzero <= 42:
		return 6
	case nonzero <= 51:
		return 5
	case nonzero <= morphSetSize:
		return 4
	default:
		return 3
	}
}

// zccMajorBits is the major-counter width in the ZCC and uniform layouts.
const zccMajorBits = 57

// mcrMajorBits is the major-counter width in the MCR layout; the remaining
// 7+7 bits hold the two bases.
const mcrMajorBits = 49

// mcrBaseMax is the largest value a 7-bit MCR base can hold.
const mcrBaseMax = 127

// uniformMax is the largest value a 3-bit dense minor can hold.
const uniformMax = 7

// Morph is a Morphable Counter cacheline (MorphCtr-128). It holds 128
// counters in 64 bytes by morphing between ZCC (sparse usage) and a dense
// 3-bit representation (uniform usage). With rebasing enabled the dense
// representation is MCR: two 64-counter sets whose 7-bit bases advance by
// the smallest minor instead of resetting, avoiding re-encryption when all
// counters grow together.
type Morph struct {
	rebasing bool
	format   Format
	// major is the 57-bit major counter in ZCC/uniform, or the 49-bit
	// high part (paper's Major Counter) in MCR.
	major   uint64
	base    [2]uint32 // 7-bit bases, valid in FormatMCR
	minors  [MorphArity]uint32
	nonzero int
	mac     uint64
}

// NewMorph returns a zeroed Morphable Counter block. rebasing enables the
// MCR dense format; without it the dense format is plain 3-bit uniform
// (the ZCC-only configuration of Figure 11).
func NewMorph(rebasing bool) *Morph {
	return &Morph{rebasing: rebasing, format: FormatZCC}
}

// Arity implements Block.
func (m *Morph) Arity() int { return MorphArity }

// NonZero implements Block.
func (m *Morph) NonZero() int { return m.nonzero }

// MAC implements Block.
func (m *Morph) MAC() uint64 { return m.mac }

// SetMAC implements Block.
func (m *Morph) SetMAC(v uint64) { m.mac = v }

// Format returns the active representation.
func (m *Morph) Format() Format { return m.format }

// FormatName implements Block.
func (m *Morph) FormatName() string { return m.format.String() }

// Value implements Block. ZCC/uniform: major + minor. MCR: (major||base) +
// minor, where the 49-bit major and 7-bit base concatenate into the same
// 56-bit effective space (Section IV).
func (m *Morph) Value(i int) uint64 {
	switch m.format {
	case FormatMCR:
		return (m.major<<7 | uint64(m.base[i/morphSetSize])) + uint64(m.minors[i])
	default:
		return m.major + uint64(m.minors[i])
	}
}

// Increment implements Block.
func (m *Morph) Increment(i int) Event {
	switch m.format {
	case FormatZCC:
		return m.incrementZCC(i)
	case FormatUniform:
		return m.incrementUniform(i)
	case FormatMCR:
		return m.incrementMCR(i)
	}
	panic(invariant.Violationf("counters: invalid morph format %v", m.format))
}

// incrementZCC handles an increment while in the sparse representation.
func (m *Morph) incrementZCC(i int) Event {
	size := ZCCSize(m.nonzero)
	if m.minors[i] == 0 {
		// The counter population grows; the representation may need to
		// shrink every counter (Figure 9b's reorganization).
		newNZ := m.nonzero + 1
		if newNZ > morphSetSize {
			return m.leaveZCC(i)
		}
		newSize := ZCCSize(newNZ)
		if newSize < size && m.largest() > uint32(1)<<uint(newSize)-1 {
			// An existing value cannot be represented at the
			// smaller width: handled as an overflow.
			return m.resetAll(i)
		}
		m.minors[i] = 1
		m.nonzero = newNZ
		if newSize != size {
			return Event{FormatSwitch: true}
		}
		return Event{}
	}
	if m.minors[i] == uint32(1)<<uint(size)-1 {
		return m.resetAll(i)
	}
	m.minors[i]++
	return Event{}
}

// leaveZCC transitions from ZCC to the dense representation when the 65th
// counter becomes non-zero. Effective values are preserved (the ZCC major
// splits into MCR's major||base), so no re-encryption is needed — unless an
// existing value exceeds the 3-bit dense maximum, which is an overflow.
func (m *Morph) leaveZCC(i int) Event {
	if m.largest() > uniformMax {
		return m.resetAll(i)
	}
	if m.rebasing {
		m.format = FormatMCR
		low := uint32(m.major & mcrBaseMax)
		m.base[0], m.base[1] = low, low
		m.major >>= 7
	} else {
		m.format = FormatUniform
	}
	m.minors[i] = 1
	m.nonzero++
	return Event{FormatSwitch: true}
}

// incrementUniform handles the dense 3-bit format without rebasing.
func (m *Morph) incrementUniform(i int) Event {
	if m.minors[i] == uniformMax {
		return m.resetAll(i)
	}
	if m.minors[i] == 0 {
		m.nonzero++
	}
	m.minors[i]++
	return Event{}
}

// incrementMCR handles the dense format with Minor Counter Rebasing.
func (m *Morph) incrementMCR(i int) Event {
	if m.minors[i] != uniformMax {
		if m.minors[i] == 0 {
			m.nonzero++
		}
		m.minors[i]++
		return Event{}
	}
	set := i / morphSetSize
	lo, hi := set*morphSetSize, (set+1)*morphSetSize
	minV, maxV := m.minors[lo], m.minors[lo]
	for _, v := range m.minors[lo+1 : hi] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV > 0 {
		// Rebase: slide the base forward by the smallest minor. No
		// effective value changes, so the overflow (and its 64
		// re-encryptions) is avoided entirely.
		if uint64(m.base[set])+uint64(minV) > mcrBaseMax {
			return m.resetMCR(i)
		}
		m.base[set] += minV
		for j := lo; j < hi; j++ {
			if m.minors[j] == minV {
				m.nonzero-- // this minor rebases to zero
			}
			m.minors[j] -= minV
		}
		if m.minors[i] == 0 {
			m.nonzero++
		}
		m.minors[i]++ // now fits: it was 7, rebased to 7-minV <= 6
		return Event{Rebased: true}
	}
	// The set contains a zero counter: rebasing is impossible. Reset the
	// set, advancing its base past the largest minor so no value repeats.
	if uint64(m.base[set])+uint64(maxV)+1 > mcrBaseMax {
		return m.resetMCR(i)
	}
	m.base[set] += maxV + 1
	for j := lo; j < hi; j++ {
		if m.minors[j] != 0 {
			m.nonzero--
		}
		m.minors[j] = 0
	}
	m.minors[i] = 1
	m.nonzero++
	return Event{Overflow: true, Reencrypt: morphSetSize}
}

// resetMCR handles an MCR base overflow: both sets reset, the 49-bit major
// advances by two (so (major+2)<<7 clears every prior (major||base)+minor),
// and the line returns to ZCC (Section IV-2).
func (m *Morph) resetMCR(i int) Event {
	m.major = (m.major + 2) << 7
	m.format = FormatZCC
	m.base[0], m.base[1] = 0, 0
	for j := range m.minors {
		m.minors[j] = 0
	}
	m.minors[i] = 1
	m.nonzero = 1
	return Event{Overflow: true, Reencrypt: MorphArity, FormatSwitch: true}
}

// resetAll is the ZCC/uniform overflow path: the major advances by the
// largest minor plus one (so no major+minor value repeats) and all minors
// reset. All 128 children must be re-encrypted.
func (m *Morph) resetAll(i int) Event {
	switched := m.format != FormatZCC
	m.major += uint64(m.largest()) + 1
	m.format = FormatZCC
	for j := range m.minors {
		m.minors[j] = 0
	}
	m.minors[i] = 1
	m.nonzero = 1
	return Event{Overflow: true, Reencrypt: MorphArity, FormatSwitch: switched}
}

// largest returns the maximum minor counter value in the line.
func (m *Morph) largest() uint32 {
	var max uint32
	for _, v := range m.minors {
		if v > max {
			max = v
		}
	}
	return max
}
