package counters

import "github.com/securemem/morphtree/internal/invariant"

// Split is a conventional split-counter cacheline (Yan et al., ISCA 2006):
// one 64-bit major counter shared by Arity minor counters of minorBits each.
// The effective counter value is the concatenation major||minor, so a minor
// overflow is handled by incrementing the major and resetting every minor —
// which changes all effective values and forces re-encryption of all
// children.
type Split struct {
	arity     int
	minorBits int
	major     uint64
	minors    []uint64
	nonzero   int
	mac       uint64
}

// NewSplit returns a zeroed split-counter block. The layout must fit the
// 384-bit minor field (morphdebug-asserted); arities from SplitSpec and
// NewSplitSpec always do.
func NewSplit(arity, minorBits int) *Split {
	invariant.Assertf(arity*minorBits <= splitMinorFieldBits,
		"counters: split layout %d x %d-bit exceeds %d-bit minor field", arity, minorBits, splitMinorFieldBits)
	return &Split{
		arity:     arity,
		minorBits: minorBits,
		minors:    make([]uint64, arity),
	}
}

// Arity implements Block.
func (s *Split) Arity() int { return s.arity }

// NonZero implements Block.
func (s *Split) NonZero() int { return s.nonzero }

// MAC implements Block.
func (s *Split) MAC() uint64 { return s.mac }

// SetMAC implements Block.
func (s *Split) SetMAC(m uint64) { s.mac = m }

// FormatName implements Block.
func (s *Split) FormatName() string { return "split" }

// maxMinor is the largest value a minor counter can hold.
func (s *Split) maxMinor() uint64 { return 1<<uint(s.minorBits) - 1 }

// Value implements Block: the effective value is major||minor.
func (s *Split) Value(i int) uint64 {
	return s.major<<uint(s.minorBits) | s.minors[i]
}

// Increment implements Block. When minor i saturates, the major counter is
// incremented and all minors reset (a full overflow): every child's
// effective value jumps to the new major||0 (or major||1 for the written
// child), so all Arity children need re-encryption.
func (s *Split) Increment(i int) Event {
	if s.minors[i] < s.maxMinor() {
		if s.minors[i] == 0 {
			s.nonzero++
		}
		s.minors[i]++
		return Event{}
	}
	// Overflow: advance the major so that no concatenated value repeats,
	// then reset minors and apply the pending increment.
	s.major++
	for j := range s.minors {
		s.minors[j] = 0
	}
	s.minors[i] = 1
	s.nonzero = 1
	return Event{Overflow: true, Reencrypt: s.arity}
}
