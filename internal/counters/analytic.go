package counters

// Analytic "time to overflow" models behind Figures 6 and 10: the number of
// writes a counter cacheline tolerates before its first overflow, assuming
// uniform round-robin writes to a fixed fraction of the line's counters.

// SplitWritesToOverflow returns the number of writes a split-counter line
// with the given arity tolerates before an overflow when `used` of its
// counters receive uniform writes. Each b-bit minor absorbs 2^b - 1
// increments; the next write to any saturated counter overflows, so the
// line tolerates used * 2^b writes (the used*2^b-th write overflows).
func SplitWritesToOverflow(arity, used int) uint64 {
	if used < 1 {
		used = 1
	}
	if used > arity {
		used = arity
	}
	b := MinorBits(arity)
	return uint64(used) << uint(b)
}

// ZCCWritesToOverflow returns the number of uniform writes a MorphCtr-128
// line in ZCC (or, past 64 counters, the dense 3-bit format without
// rebasing) tolerates before an overflow when `used` counters are written.
// ZCC's utility-based sizing gives each of the used counters
// ZCCSize(used) bits, so tolerance is used * 2^size.
func ZCCWritesToOverflow(used int) uint64 {
	if used < 1 {
		used = 1
	}
	if used > MorphArity {
		used = MorphArity
	}
	return uint64(used) << uint(ZCCSize(used))
}

// MCRWritesToOverflow returns the number of uniform round-robin writes a
// MorphCtr-128 line with rebasing tolerates when all 128 counters are used.
// Under uniform writes every minor reaches 7 together, each rebase slides
// the base forward by 7, and overflow is deferred until a base exceeds its
// 7-bit range: roughly 128 counters x 127 base steps of headroom.
func MCRWritesToOverflow() uint64 {
	// Simulate exactly rather than approximate: round-robin writes to all
	// 128 counters until the first overflow event.
	m := NewMorph(true)
	var writes uint64
	for {
		for i := 0; i < MorphArity; i++ {
			writes++
			if ev := m.Increment(i); ev.Overflow {
				return writes
			}
		}
	}
}

// PathologicalZCCWrites returns the length of the paper's worst-case
// adversarial write pattern against MorphCtr-128 (Section V): one write to
// each of 52 counters (forcing 4-bit sizing), then hammering a single
// counter until it overflows. The paper reports 67 writes.
func PathologicalZCCWrites() uint64 {
	m := NewMorph(true)
	var writes uint64
	for i := 0; i < 52; i++ {
		writes++
		if ev := m.Increment(i); ev.Overflow {
			return writes
		}
	}
	for {
		writes++
		if ev := m.Increment(0); ev.Overflow {
			return writes
		}
	}
}

// OverflowCurve samples writes-to-overflow across fractions of the line
// used, for plotting Figures 6 and 10. Points are (fractionUsed,
// writesToOverflow) at every integer counter count from 1 to arity.
type CurvePoint struct {
	FractionUsed     float64
	WritesToOverflow uint64
}

// SplitOverflowCurve returns Figure 6's curve for a split-counter arity.
func SplitOverflowCurve(arity int) []CurvePoint {
	pts := make([]CurvePoint, 0, arity)
	for u := 1; u <= arity; u++ {
		pts = append(pts, CurvePoint{
			FractionUsed:     float64(u) / float64(arity),
			WritesToOverflow: SplitWritesToOverflow(arity, u),
		})
	}
	return pts
}

// ZCCOverflowCurve returns Figure 10's curve for MorphCtr-128 (ZCC-only).
func ZCCOverflowCurve() []CurvePoint {
	pts := make([]CurvePoint, 0, MorphArity)
	for u := 1; u <= MorphArity; u++ {
		pts = append(pts, CurvePoint{
			FractionUsed:     float64(u) / float64(MorphArity),
			WritesToOverflow: ZCCWritesToOverflow(u),
		})
	}
	return pts
}
