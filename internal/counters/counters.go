// Package counters implements the counter-cacheline organizations at the
// heart of the paper: conventional split counters (SC-n) and Morphable
// Counters (MorphCtr-128) with Zero Counter Compression (ZCC) and Minor
// Counter Rebasing (MCR).
//
// A counter cacheline ("block") is a 64-byte line holding one shared major
// counter, Arity() minor counters, and a 64-bit MAC. Blocks are used both as
// encryption counters (one minor counter per data cacheline) and as
// integrity-tree counters (one minor counter per child tree entry). The
// block's arity therefore sets the integrity tree's fan-in.
//
// The security contract every implementation must honor is that effective
// counter values move strictly forward: Increment(i) makes Value(i) strictly
// larger than before, and never decreases any Value(j). Counter-mode
// encryption pads are derived from these values, so any reuse would leak
// plaintext (Section V of the paper).
package counters

import "fmt"

// LineBytes is the size of a counter cacheline.
const LineBytes = 64

// LineBits is the size of a counter cacheline in bits.
const LineBits = LineBytes * 8

// Event describes the side effects of a counter increment. The costs matter:
// an overflow changes the effective value of sibling counters, forcing the
// memory controller to re-encrypt (or re-hash, for tree levels) every
// affected child line — Reencrypt reads plus Reencrypt writes of extra
// memory traffic.
type Event struct {
	// Overflow reports that sibling counters were reset (or advanced), so
	// their effective values changed and their children must be
	// re-encrypted / re-hashed.
	Overflow bool
	// Reencrypt is the number of child lines whose effective counter
	// changed and must be rewritten. It is the block arity on a full
	// reset, or the set size (64) on an MCR per-set reset.
	Reencrypt int
	// Rebased reports that an MCR rebase absorbed a would-be overflow
	// without changing any effective value (no extra traffic).
	Rebased bool
	// FormatSwitch reports a ZCC<->uniform/MCR representation change.
	// Re-encoding happens on a write and is off the critical path; it
	// costs no memory traffic.
	FormatSwitch bool
}

// Block is a 64-byte counter cacheline.
type Block interface {
	// Arity returns the number of minor counters in the line.
	Arity() int
	// Value returns the effective counter value of slot i, the value fed
	// (with the line address) into the block cipher.
	Value(i int) uint64
	// Increment advances counter i by one write and reports side effects.
	Increment(i int) Event
	// NonZero returns the number of non-zero minor counters.
	NonZero() int
	// MAC returns the 64-bit MAC field co-located in the line.
	MAC() uint64
	// SetMAC stores the 64-bit MAC field.
	SetMAC(uint64)
	// Encode packs the block into its exact 64-byte hardware layout.
	Encode() []byte
	// FormatName names the current representation (for stats/debug).
	FormatName() string
}

// Spec describes a counter organization and constructs fresh blocks of it.
type Spec struct {
	// Name is a short identifier such as "SC-64" or "MorphCtr-128".
	Name string
	// Arity is the number of counters per cacheline, i.e. the tree fan-in
	// this organization provides.
	Arity int
	// New allocates a zeroed block.
	New func() Block
	// Decode unpacks a 64-byte line written by a block of this spec.
	Decode func(buf []byte) (Block, error)
}

// String returns the spec name.
func (s Spec) String() string { return s.Name }

// ArityError reports a split-counter arity with no defined cacheline
// layout. Valid arities divide the 384-bit minor field evenly: 8, 16, 32,
// 64, 128.
type ArityError struct {
	// Arity is the rejected counters-per-line value.
	Arity int
}

// Error implements error.
func (e *ArityError) Error() string {
	return fmt.Sprintf("counters: unsupported split-counter arity %d (want 8, 16, 32, 64, or 128)", e.Arity)
}

// NewSplitSpec returns the split-counter organization with the given arity,
// or an *ArityError if no layout exists for it. Use this form when the
// arity comes from configuration or user input.
func NewSplitSpec(arity int) (Spec, error) {
	bits, ok := splitMinorBits[arity]
	if !ok {
		return Spec{}, &ArityError{Arity: arity}
	}
	return Spec{
		Name:   fmt.Sprintf("SC-%d", arity),
		Arity:  arity,
		New:    func() Block { return NewSplit(arity, bits) },
		Decode: func(buf []byte) (Block, error) { return DecodeSplit(buf, arity) },
	}, nil
}

// SplitSpec is NewSplitSpec for statically known-good arities: it panics
// with an *ArityError on an unsupported arity.
func SplitSpec(arity int) Spec {
	spec, err := NewSplitSpec(arity)
	if err != nil {
		panic(err) //morphlint:allow panicpolicy -- Must-style constructor for compile-time arities; NewSplitSpec is the checked form
	}
	return spec
}

// MorphSpec returns the Morphable Counter organization (128 counters per
// line). rebasing selects between the full design (ZCC+Rebasing) and the
// ZCC-only variant evaluated in Figure 11.
func MorphSpec(rebasing bool) Spec {
	name := "MorphCtr-128"
	if !rebasing {
		name = "MorphCtr-128-ZCC"
	}
	return Spec{
		Name:   name,
		Arity:  MorphArity,
		New:    func() Block { return NewMorph(rebasing) },
		Decode: func(buf []byte) (Block, error) { return DecodeMorph(buf, rebasing) },
	}
}

// splitMinorBits maps a split-counter arity to its minor counter width. The
// minor field has 512 - 64 (major) - 64 (MAC) = 384 bits.
var splitMinorBits = map[int]int{
	8:   48,
	16:  24,
	32:  12,
	64:  6,
	128: 3,
}

// MinorBitsFor returns the split-counter minor width for an arity, or an
// *ArityError if no layout exists for it.
func MinorBitsFor(arity int) (int, error) {
	bits, ok := splitMinorBits[arity]
	if !ok {
		return 0, &ArityError{Arity: arity}
	}
	return bits, nil
}

// MinorBits is MinorBitsFor for statically known-good arities, for use in
// analytic models. It panics with an *ArityError on unsupported arities.
func MinorBits(arity int) int {
	bits, err := MinorBitsFor(arity)
	if err != nil {
		panic(err) //morphlint:allow panicpolicy -- Must-style accessor for compile-time arities; MinorBitsFor is the checked form
	}
	return bits
}
