package counters

import (
	"fmt"

	"github.com/securemem/morphtree/internal/bitops"
	"github.com/securemem/morphtree/internal/invariant"
)

// Cacheline layouts (Figures 8 and 13). Field widths follow the paper
// exactly; field order places the 1-bit format tag first so a line is
// self-describing to the decoder, which is how the memory controller must
// interpret it anyway ("decoding ... only requires indexing into the
// bit-vector", Section III-B2).
//
//	ZCC:     F(1)=0 | Ctr-Sz(6) | Major(57) | Bit-Vector(128) | Non-Zero Ctrs(256) | MAC(64)
//	Uniform: F(1)=1 | Ctr-Sz(6) | Major(57) | 128 x 3-bit Minors(384)             | MAC(64)
//	MCR:     F(1)=1 | Major(49) | Base-1(7) | Base-2(7) | 2 x 64 x 3-bit(384)     | MAC(64)
//	Split:   Major(64) | n x (384/n)-bit Minors(384)                              | MAC(64)
//
// A system is configured either with rebasing (dense format = MCR) or
// without (dense format = Uniform); the decoder is told which, exactly as
// the hardware would be.

// Shared field widths of the layouts above.
const (
	// fullMajorBits is a full-width (untruncated) major counter or base
	// field, as used by the Split and Delta layouts.
	fullMajorBits = 64
	// macBits is the per-line MAC field closing every layout.
	macBits = 64
	// splitMinorFieldBits is the split-counter minor field:
	// 512 - 64 (major) - 64 (MAC) bits.
	splitMinorFieldBits = LineBits - fullMajorBits - macBits
	// zccNonZeroFieldBits is ZCC's shared non-zero counter field.
	zccNonZeroFieldBits = 256
)

// newLineWriter and newLineReader wrap bitops for 64-byte lines.
func newLineWriter() *bitops.Writer         { return bitops.NewWriter(LineBytes) }
func newLineReader(b []byte) *bitops.Reader { return bitops.NewReader(b) }

// padZeros writes n zero bits, chunked to respect the word-size write limit.
func padZeros(w *bitops.Writer, n int) {
	for n > bitops.WordBits {
		w.WriteBits(0, bitops.WordBits)
		n -= bitops.WordBits
	}
	w.WriteBits(0, n)
}

// Encode implements Block for Split.
func (s *Split) Encode() []byte {
	w := bitops.NewWriter(LineBytes)
	w.WriteBits(s.major, fullMajorBits)
	for _, v := range s.minors {
		w.WriteBits(v, s.minorBits)
	}
	w.WriteBits(s.mac, macBits)
	invariant.Assertf(w.Pos() == LineBits, "counters: split layout packed %d bits", w.Pos())
	return w.Bytes()
}

// DecodeSplit unpacks a split-counter line with the given geometry.
func DecodeSplit(buf []byte, arity int) (*Split, error) {
	if len(buf) != LineBytes {
		return nil, fmt.Errorf("counters: split line is %d bytes, want %d", len(buf), LineBytes)
	}
	bits, ok := splitMinorBits[arity]
	if !ok {
		return nil, fmt.Errorf("counters: unsupported split arity %d", arity)
	}
	r := bitops.NewReader(buf)
	s := NewSplit(arity, bits)
	s.major = r.ReadBits(fullMajorBits)
	for i := range s.minors {
		s.minors[i] = r.ReadBits(bits)
		if s.minors[i] != 0 {
			s.nonzero++
		}
	}
	s.mac = r.ReadBits(macBits)
	return s, nil
}

// Encode implements Block for Morph.
func (m *Morph) Encode() []byte {
	w := bitops.NewWriter(LineBytes)
	switch m.format {
	case FormatZCC:
		size := ZCCSize(m.nonzero)
		w.WriteBits(0, 1)
		w.WriteBits(uint64(size), 6)
		w.WriteBits(m.major, zccMajorBits)
		for _, v := range m.minors {
			if v != 0 {
				w.WriteBits(1, 1)
			} else {
				w.WriteBits(0, 1)
			}
		}
		packed := 0
		for _, v := range m.minors {
			if v != 0 {
				w.WriteBits(uint64(v), size)
				packed += size
			}
		}
		padZeros(w, zccNonZeroFieldBits-packed) // unused tail of the non-zero field
	case FormatUniform:
		w.WriteBits(1, 1)
		w.WriteBits(3, 6) // Ctr-Sz = 3
		w.WriteBits(m.major, zccMajorBits)
		for _, v := range m.minors {
			w.WriteBits(uint64(v), 3)
		}
	case FormatMCR:
		w.WriteBits(1, 1)
		w.WriteBits(m.major, mcrMajorBits)
		w.WriteBits(uint64(m.base[0]), 7)
		w.WriteBits(uint64(m.base[1]), 7)
		for _, v := range m.minors {
			w.WriteBits(uint64(v), 3)
		}
	}
	w.WriteBits(m.mac, macBits)
	invariant.Assertf(w.Pos() == LineBits, "counters: morph %s layout packed %d bits", m.format, w.Pos())
	return w.Bytes()
}

// DecodeMorph unpacks a Morphable Counter line. rebasing tells the decoder
// whether the dense format (tag bit 1) is MCR or plain uniform, matching the
// system configuration the line was written under.
func DecodeMorph(buf []byte, rebasing bool) (*Morph, error) {
	if len(buf) != LineBytes {
		return nil, fmt.Errorf("counters: morph line is %d bytes, want %d", len(buf), LineBytes)
	}
	r := bitops.NewReader(buf)
	m := NewMorph(rebasing)
	dense := r.ReadBits(1) == 1
	switch {
	case !dense:
		m.format = FormatZCC
		size := int(r.ReadBits(6))
		m.major = r.ReadBits(zccMajorBits)
		var present [MorphArity]bool
		count := 0
		for i := range present {
			present[i] = r.ReadBits(1) == 1
			if present[i] {
				count++
			}
		}
		// Validate Ctr-Sz against the bit-vector population before
		// trusting it as a field width.
		if count > morphSetSize {
			return nil, fmt.Errorf("counters: ZCC bit-vector has %d non-zero counters (max %d)", count, morphSetSize)
		}
		if want := ZCCSize(count); size != want {
			return nil, fmt.Errorf("counters: ZCC Ctr-Sz %d inconsistent with %d non-zero counters (want %d)", size, count, want)
		}
		for i, p := range present {
			if !p {
				continue
			}
			m.minors[i] = uint32(r.ReadBits(size))
			if m.minors[i] == 0 {
				return nil, fmt.Errorf("counters: ZCC bit-vector marks slot %d non-zero but value is 0", i)
			}
			m.nonzero++
		}
	case rebasing:
		m.format = FormatMCR
		m.major = r.ReadBits(mcrMajorBits)
		m.base[0] = uint32(r.ReadBits(7))
		m.base[1] = uint32(r.ReadBits(7))
		for i := range m.minors {
			m.minors[i] = uint32(r.ReadBits(3))
			if m.minors[i] != 0 {
				m.nonzero++
			}
		}
	default:
		m.format = FormatUniform
		if sz := r.ReadBits(6); sz != 3 {
			return nil, fmt.Errorf("counters: uniform Ctr-Sz %d, want 3", sz)
		}
		m.major = r.ReadBits(zccMajorBits)
		for i := range m.minors {
			m.minors[i] = uint32(r.ReadBits(3))
			if m.minors[i] != 0 {
				m.nonzero++
			}
		}
	}
	// The unused tail must be zero — the encoder is canonical, and a
	// non-canonical line is corruption (tolerating it would let padding
	// bits escape MAC coverage). The MAC sits in the final 64 bits.
	for pad := LineBits - macBits - r.Pos(); pad > 0; {
		chunk := pad
		if chunk > bitops.WordBits {
			chunk = bitops.WordBits
		}
		if r.ReadBits(chunk) != 0 {
			return nil, fmt.Errorf("counters: non-canonical morph line (non-zero padding)")
		}
		pad -= chunk
	}
	m.mac = r.ReadBits(macBits)
	return m, nil
}
