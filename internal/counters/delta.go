package counters

import (
	"fmt"

	"github.com/securemem/morphtree/internal/invariant"
)

// Delta is the delta-encoded counter organization of the paper's concurrent
// work (Yitbarek & Austin, DAC 2018 — reference [19]): counters in a line
// are stored as a shared full-width base plus small per-line deltas,
// exploiting the low dynamic range of nearby lines' write counts. When a
// delta saturates, the line is re-based (base moves forward by the minimum
// delta) if every delta is non-zero, else reset with re-encryption — the
// single-base analogue of MorphCtr's MCR, but without ZCC's sparse-usage
// compression, and limited to 64 counters per line.
//
// Layout: Base(64) | 64 x 5-bit Deltas(320) | unused(64) | MAC(64) = 512.
type Delta struct {
	base    uint64
	deltas  [DeltaArity]uint32
	nonzero int
	mac     uint64
}

// DeltaArity is the number of counters in a delta-encoded cacheline.
const DeltaArity = 64

// deltaBits is the per-counter delta width.
const deltaBits = 5

// deltaMax is the largest delta value.
const deltaMax = 1<<deltaBits - 1

// deltaPadBits is the unused field between the deltas and the MAC.
const deltaPadBits = LineBits - fullMajorBits - DeltaArity*deltaBits - macBits

// NewDelta returns a zeroed delta-encoded counter line.
func NewDelta() *Delta { return &Delta{} }

// DeltaSpec returns the delta-encoding organization (64 counters/line).
func DeltaSpec() Spec {
	return Spec{
		Name:   "Delta-64",
		Arity:  DeltaArity,
		New:    func() Block { return NewDelta() },
		Decode: func(buf []byte) (Block, error) { return DecodeDelta(buf) },
	}
}

// Arity implements Block.
func (d *Delta) Arity() int { return DeltaArity }

// NonZero implements Block.
func (d *Delta) NonZero() int { return d.nonzero }

// MAC implements Block.
func (d *Delta) MAC() uint64 { return d.mac }

// SetMAC implements Block.
func (d *Delta) SetMAC(m uint64) { d.mac = m }

// FormatName implements Block.
func (d *Delta) FormatName() string { return "delta" }

// Value implements Block: base + delta.
func (d *Delta) Value(i int) uint64 { return d.base + uint64(d.deltas[i]) }

// Increment implements Block.
func (d *Delta) Increment(i int) Event {
	if d.deltas[i] != deltaMax {
		if d.deltas[i] == 0 {
			d.nonzero++
		}
		d.deltas[i]++
		return Event{}
	}
	minD, maxD := d.deltas[0], d.deltas[0]
	for _, v := range d.deltas[1:] {
		if v < minD {
			minD = v
		}
		if v > maxD {
			maxD = v
		}
	}
	if minD > 0 {
		// Rebase: slide the base forward; no effective value changes.
		d.base += uint64(minD)
		for j := range d.deltas {
			if d.deltas[j] == minD {
				d.nonzero--
			}
			d.deltas[j] -= minD
		}
		if d.deltas[i] == 0 {
			d.nonzero++
		}
		d.deltas[i]++
		return Event{Rebased: true}
	}
	// A zero delta blocks rebasing: reset past the largest so no
	// effective value repeats, and re-encrypt all children.
	d.base += uint64(maxD) + 1
	for j := range d.deltas {
		d.deltas[j] = 0
	}
	d.deltas[i] = 1
	d.nonzero = 1
	return Event{Overflow: true, Reencrypt: DeltaArity}
}

// Encode implements Block.
func (d *Delta) Encode() []byte {
	w := newLineWriter()
	w.WriteBits(d.base, fullMajorBits)
	for _, v := range d.deltas {
		w.WriteBits(uint64(v), deltaBits)
	}
	padZeros(w, deltaPadBits) // unused field
	w.WriteBits(d.mac, macBits)
	invariant.Assertf(w.Pos() == LineBits, "counters: delta layout packed %d bits", w.Pos())
	return w.Bytes()
}

// DecodeDelta unpacks a delta-encoded line.
func DecodeDelta(buf []byte) (*Delta, error) {
	if len(buf) != LineBytes {
		return nil, fmt.Errorf("counters: delta line is %d bytes, want %d", len(buf), LineBytes)
	}
	r := newLineReader(buf)
	d := NewDelta()
	d.base = r.ReadBits(fullMajorBits)
	for i := range d.deltas {
		d.deltas[i] = uint32(r.ReadBits(deltaBits))
		if d.deltas[i] != 0 {
			d.nonzero++
		}
	}
	if r.ReadBits(deltaPadBits) != 0 {
		return nil, fmt.Errorf("counters: non-canonical delta line (non-zero padding)")
	}
	d.mac = r.ReadBits(macBits)
	return d, nil
}
