package counters

import "testing"

func TestDeltaSpec(t *testing.T) {
	spec := DeltaSpec()
	if spec.Arity != 64 || spec.Name != "Delta-64" {
		t.Fatalf("spec = %+v", spec)
	}
	b := spec.New()
	if b.Arity() != 64 || b.NonZero() != 0 {
		t.Fatal("fresh delta block malformed")
	}
}

func TestDeltaBasicIncrement(t *testing.T) {
	d := NewDelta()
	for k := 1; k <= 10; k++ {
		if ev := d.Increment(7); ev.Overflow || ev.Rebased {
			t.Fatalf("unexpected event on write %d", k)
		}
		if d.Value(7) != uint64(k) {
			t.Fatalf("value = %d, want %d", d.Value(7), k)
		}
	}
	if d.NonZero() != 1 {
		t.Fatalf("nonzero = %d", d.NonZero())
	}
}

func TestDeltaRebaseUnderUniformWrites(t *testing.T) {
	// When every counter is in use, a saturation rebases instead of
	// resetting — no re-encryption, values preserved.
	d := NewDelta()
	for i := 0; i < 64; i++ {
		d.Increment(i)
	}
	for k := 0; k < deltaMax-1; k++ {
		d.Increment(0)
	}
	if d.Value(0) != deltaMax {
		t.Fatalf("value(0) = %d", d.Value(0))
	}
	before := make([]uint64, 64)
	for i := range before {
		before[i] = d.Value(i)
	}
	ev := d.Increment(0)
	if !ev.Rebased || ev.Overflow {
		t.Fatalf("expected rebase, got %+v", ev)
	}
	for i := 1; i < 64; i++ {
		if d.Value(i) != before[i] {
			t.Fatalf("rebase changed value(%d)", i)
		}
	}
	if d.Value(0) != before[0]+1 {
		t.Fatalf("value(0) = %d, want %d", d.Value(0), before[0]+1)
	}
}

func TestDeltaResetWhenZeroPresent(t *testing.T) {
	// Counter 1 stays zero: saturating counter 0 must reset the line.
	d := NewDelta()
	for k := 0; k < deltaMax; k++ {
		d.Increment(0)
	}
	ev := d.Increment(0)
	if !ev.Overflow || ev.Reencrypt != 64 {
		t.Fatalf("expected reset, got %+v", ev)
	}
	// Forward motion: new values exceed all old ones.
	if d.Value(1) != deltaMax+1 {
		t.Fatalf("value(1) = %d, want %d", d.Value(1), deltaMax+1)
	}
	if d.Value(0) != deltaMax+2 {
		t.Fatalf("value(0) = %d", d.Value(0))
	}
}

func TestDeltaMonotonicity(t *testing.T) {
	d := NewDelta()
	rng := uint64(7)
	prev := make([]uint64, 64)
	for w := 0; w < 100000; w++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		i := int(rng>>33) % 64
		d.Increment(i)
		if d.Value(i) <= prev[i] {
			t.Fatalf("write %d: value(%d) did not increase", w, i)
		}
		for j := 0; j < 64; j++ {
			if d.Value(j) < prev[j] {
				t.Fatalf("write %d: value(%d) decreased", w, j)
			}
			prev[j] = d.Value(j)
		}
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d := NewDelta()
	rng := uint64(3)
	for w := 0; w < 5000; w++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		d.Increment(int(rng>>33) % 64)
	}
	d.SetMAC(0xDEADBEEF12345678)
	enc := d.Encode()
	got, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.base != d.base || got.deltas != d.deltas || got.mac != d.mac || got.nonzero != d.nonzero {
		t.Fatal("round trip mismatch")
	}
	// Corruption rejected.
	if _, err := DecodeDelta(enc[:32]); err == nil {
		t.Error("short line must fail")
	}
	bad := append([]byte(nil), enc...)
	bad[51] ^= 1 // inside the unused field
	if _, err := DecodeDelta(bad); err == nil {
		t.Error("non-canonical padding must fail")
	}
}

func TestDeltaVersusSplitTolerance(t *testing.T) {
	// Under uniform writes, delta encoding tolerates far more writes than
	// split counters of the same arity ([19]'s claim), because rebasing
	// defers overflow indefinitely until a zero appears.
	deltaBlock := NewDelta()
	var deltaWrites uint64
	for deltaWrites < 1<<20 {
		overflowed := false
		for i := 0; i < 64; i++ {
			deltaWrites++
			if ev := deltaBlock.Increment(i); ev.Overflow {
				overflowed = true
				break
			}
		}
		if overflowed {
			break
		}
	}
	splitTolerance := SplitWritesToOverflow(64, 64)
	if deltaWrites <= 4*splitTolerance {
		t.Fatalf("delta tolerated %d uniform writes, want >> split's %d", deltaWrites, splitTolerance)
	}
}
