package counters

import "testing"

// Micro-benchmarks: the memory controller performs these operations on
// every write (increment) and every metadata transfer (encode/decode), so
// their cost bounds how fast a software model of the controller can run.

func BenchmarkSplitIncrement(b *testing.B) {
	blk := NewSplit(64, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Increment(i % 64)
	}
}

func BenchmarkMorphIncrementSparse(b *testing.B) {
	blk := NewMorph(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Increment(i % 8) // stays in ZCC
	}
}

func BenchmarkMorphIncrementDense(b *testing.B) {
	blk := NewMorph(true)
	for i := 0; i < MorphArity; i++ {
		blk.Increment(i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Increment(i % MorphArity) // MCR regime with rebases
	}
}

func BenchmarkSplitEncode(b *testing.B) {
	blk := NewSplit(64, 6)
	for i := 0; i < 1000; i++ {
		blk.Increment(i % 64)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Encode()
	}
}

func BenchmarkMorphEncodeZCC(b *testing.B) {
	blk := NewMorph(true)
	for i := 0; i < 200; i++ {
		blk.Increment(i % 30)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Encode()
	}
}

func BenchmarkMorphDecodeZCC(b *testing.B) {
	blk := NewMorph(true)
	for i := 0; i < 200; i++ {
		blk.Increment(i % 30)
	}
	enc := blk.Encode()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMorph(enc, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMorphDecodeMCR(b *testing.B) {
	blk := NewMorph(true)
	for i := 0; i < 4096; i++ {
		blk.Increment(i % MorphArity)
	}
	enc := blk.Encode()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMorph(enc, true); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzDecodeMorph: arbitrary 64-byte lines must either decode cleanly or
// fail with an error — never panic. (A memory controller faces adversarial
// line contents by definition.)
func FuzzDecodeMorph(f *testing.F) {
	blk := NewMorph(true)
	for i := 0; i < 100; i++ {
		blk.Increment(i % 40)
	}
	f.Add(blk.Encode(), true)
	f.Add(make([]byte, 64), false)
	f.Fuzz(func(t *testing.T, data []byte, rebasing bool) {
		if len(data) != LineBytes {
			return
		}
		m, err := DecodeMorph(data, rebasing)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the same bytes.
		re := m.Encode()
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode mismatch at byte %d", i)
			}
		}
	})
}

// FuzzDecodeSplit: same robustness contract for split-counter lines.
func FuzzDecodeSplit(f *testing.F) {
	blk := NewSplit(64, 6)
	for i := 0; i < 100; i++ {
		blk.Increment(i % 64)
	}
	f.Add(blk.Encode(), 64)
	f.Fuzz(func(t *testing.T, data []byte, arity int) {
		if len(data) != LineBytes {
			return
		}
		valid := arity == 8 || arity == 16 || arity == 32 || arity == 64 || arity == 128
		s, err := DecodeSplit(data, arity)
		if !valid {
			if err == nil {
				t.Fatal("invalid arity decoded")
			}
			return
		}
		if err != nil {
			return
		}
		re := s.Encode()
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode mismatch at byte %d", i)
			}
		}
	})
}
