package proof

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
)

// Wire codecs for proofs and transparency-log responses. All integers are
// big-endian, matching the rest of the wire protocol. Decoders validate
// every count against a hard cap before allocating and check remaining
// length before every read, so truncated or hostile frames fail with a
// typed error instead of a panic or an attacker-sized allocation.

const (
	// MaxChainLines caps a proof's path length. An arity-2 tree over a
	// 64-bit space has at most 64 levels; anything deeper is hostile.
	MaxChainLines = 64
	// MaxShards caps the shard-root vector length in one proof.
	MaxShards = 4096
	// MaxSigBytes caps a signature field (Ed25519 signatures are 64 bytes;
	// the slack keeps the format stable if the scheme grows).
	MaxSigBytes = 512
	// MaxRangeEntries caps one RootRange response's entry count; longer
	// ranges page.
	MaxRangeEntries = 1 << 16
	// MaxProofDigests caps a consistency proof's node count (2*64 bounds
	// any proof over a 2^64-entry log).
	MaxProofDigests = 128
)

// TruncatedError reports a proof-layer payload that ended before a field it
// promised, distinguishing framing damage from verification failure.
type TruncatedError struct {
	// What names the field being read when the payload ran out.
	What string
}

// Error implements error.
func (e *TruncatedError) Error() string {
	return fmt.Sprintf("proof: truncated payload reading %s", e.What)
}

// BoundsError reports a length or count field exceeding its hard cap — a
// hostile or corrupt frame rejected before allocation.
type BoundsError struct {
	// What names the offending field; Got and Max its value and cap.
	What string
	Got  uint64
	Max  uint64
}

// Error implements error.
func (e *BoundsError) Error() string {
	return fmt.Sprintf("proof: %s %d exceeds limit %d", e.What, e.Got, e.Max)
}

// cursor walks a decode buffer with bounds checks.
type cursor struct {
	buf []byte
}

func (c *cursor) take(n int, what string) ([]byte, error) {
	if len(c.buf) < n {
		return nil, &TruncatedError{What: what}
	}
	b := c.buf[:n]
	c.buf = c.buf[n:]
	return b, nil
}

func (c *cursor) u8(what string) (byte, error) {
	b, err := c.take(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u16(what string) (uint16, error) {
	b, err := c.take(2, what)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (c *cursor) u32(what string) (uint32, error) {
	b, err := c.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (c *cursor) u64(what string) (uint64, error) {
	b, err := c.take(8, what)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (c *cursor) digest(what string) (Digest, error) {
	var d Digest
	b, err := c.take(len(d), what)
	if err != nil {
		return d, err
	}
	copy(d[:], b)
	return d, nil
}

// bytes reads a u16 length capped at max, then that many bytes (copied).
func (c *cursor) bytes(max uint64, what string) ([]byte, error) {
	n, err := c.u16(what + " length")
	if err != nil {
		return nil, err
	}
	if uint64(n) > max {
		return nil, &BoundsError{What: what + " length", Got: uint64(n), Max: max}
	}
	b, err := c.take(int(n), what)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

func (c *cursor) done(what string) error {
	if len(c.buf) != 0 {
		return fmt.Errorf("proof: %d trailing bytes after %s", len(c.buf), what)
	}
	return nil
}

func appendBytes16(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// Encode appends the proof's wire form to dst.
func (p *Proof) Encode(dst []byte) ([]byte, error) {
	if len(p.Chain) > MaxChainLines {
		return nil, &BoundsError{What: "chain length", Got: uint64(len(p.Chain)), Max: MaxChainLines}
	}
	if len(p.ShardRoots) > MaxShards {
		return nil, &BoundsError{What: "shard-root count", Got: uint64(len(p.ShardRoots)), Max: MaxShards}
	}
	if len(p.Attestation) > MaxSigBytes {
		return nil, &BoundsError{What: "attestation length", Got: uint64(len(p.Attestation)), Max: MaxSigBytes}
	}
	if p.Line != nil && len(p.Line) != LineBytes {
		return nil, fmt.Errorf("proof: encode: data line is %d bytes, want %d", len(p.Line), LineBytes)
	}
	if len(p.Root) != LineBytes {
		return nil, fmt.Errorf("proof: encode: root line is %d bytes, want %d", len(p.Root), LineBytes)
	}
	dst = binary.BigEndian.AppendUint64(dst, p.Addr)
	dst = binary.BigEndian.AppendUint32(dst, p.Shards)
	dst = binary.BigEndian.AppendUint32(dst, p.Shard)
	dst = binary.BigEndian.AppendUint64(dst, p.Epoch)
	if p.Line == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = append(dst, p.Line...)
		dst = binary.BigEndian.AppendUint64(dst, p.LineMAC)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Chain)))
	for l, line := range p.Chain {
		if line == nil {
			dst = append(dst, 0)
			continue
		}
		if len(line) != LineBytes {
			return nil, fmt.Errorf("proof: encode: chain level %d line is %d bytes, want %d", l, len(line), LineBytes)
		}
		dst = append(dst, 1)
		dst = append(dst, line...)
	}
	dst = append(dst, p.Root...)
	for i := range p.ShardRoots {
		dst = append(dst, p.ShardRoots[i][:]...)
	}
	dst = appendBytes16(dst, p.Attestation)
	return dst, nil
}

// DecodeProof parses a proof from its wire form. Every slice in the result
// is freshly allocated — the input buffer may be reused by the caller.
func DecodeProof(buf []byte) (*Proof, error) {
	c := &cursor{buf: buf}
	p := &Proof{}
	var err error
	if p.Addr, err = c.u64("addr"); err != nil {
		return nil, err
	}
	if p.Shards, err = c.u32("shard count"); err != nil {
		return nil, err
	}
	if p.Shards == 0 || p.Shards > MaxShards {
		return nil, &BoundsError{What: "shard count", Got: uint64(p.Shards), Max: MaxShards}
	}
	if p.Shard, err = c.u32("shard index"); err != nil {
		return nil, err
	}
	if p.Epoch, err = c.u64("epoch"); err != nil {
		return nil, err
	}
	hasLine, err := c.u8("line flag")
	if err != nil {
		return nil, err
	}
	if hasLine != 0 {
		b, err := c.take(LineBytes, "data line")
		if err != nil {
			return nil, err
		}
		p.Line = append([]byte(nil), b...)
		if p.LineMAC, err = c.u64("data MAC"); err != nil {
			return nil, err
		}
	}
	chainLen, err := c.u16("chain length")
	if err != nil {
		return nil, err
	}
	if chainLen > MaxChainLines {
		return nil, &BoundsError{What: "chain length", Got: uint64(chainLen), Max: MaxChainLines}
	}
	p.Chain = make([][]byte, chainLen)
	for l := range p.Chain {
		present, err := c.u8("chain line flag")
		if err != nil {
			return nil, err
		}
		if present == 0 {
			continue
		}
		b, err := c.take(LineBytes, "chain line")
		if err != nil {
			return nil, err
		}
		p.Chain[l] = append([]byte(nil), b...)
	}
	root, err := c.take(LineBytes, "root line")
	if err != nil {
		return nil, err
	}
	p.Root = append([]byte(nil), root...)
	p.ShardRoots = make([]Digest, p.Shards)
	for i := range p.ShardRoots {
		if p.ShardRoots[i], err = c.digest("shard root digest"); err != nil {
			return nil, err
		}
	}
	if p.Attestation, err = c.bytes(MaxSigBytes, "attestation"); err != nil {
		return nil, err
	}
	if err := c.done("proof"); err != nil {
		return nil, err
	}
	return p, nil
}

// RootInfo is the OpRoot response: the authority's public key, its latest
// signed head, and the newest entry (absent for an empty log).
type RootInfo struct {
	Pub    ed25519.PublicKey
	Head   SignedHead
	Latest *Entry
}

// appendEntry appends an entry's wire form.
func appendEntry(dst []byte, e Entry) ([]byte, error) {
	if len(e.Sig) > MaxSigBytes {
		return nil, &BoundsError{What: "entry signature length", Got: uint64(len(e.Sig)), Max: MaxSigBytes}
	}
	dst = binary.BigEndian.AppendUint64(dst, e.Epoch)
	dst = append(dst, e.Root[:]...)
	dst = append(dst, e.Prev[:]...)
	return appendBytes16(dst, e.Sig), nil
}

func (c *cursor) entry() (Entry, error) {
	var e Entry
	var err error
	if e.Epoch, err = c.u64("entry epoch"); err != nil {
		return e, err
	}
	if e.Root, err = c.digest("entry root"); err != nil {
		return e, err
	}
	if e.Prev, err = c.digest("entry prev hash"); err != nil {
		return e, err
	}
	if e.Sig, err = c.bytes(MaxSigBytes, "entry signature"); err != nil {
		return e, err
	}
	return e, nil
}

// appendHead appends a signed head's wire form.
func appendHead(dst []byte, h SignedHead) ([]byte, error) {
	if len(h.Sig) > MaxSigBytes {
		return nil, &BoundsError{What: "head signature length", Got: uint64(len(h.Sig)), Max: MaxSigBytes}
	}
	dst = binary.BigEndian.AppendUint64(dst, h.Size)
	dst = append(dst, h.Hash[:]...)
	return appendBytes16(dst, h.Sig), nil
}

func (c *cursor) signedHead() (SignedHead, error) {
	var h SignedHead
	var err error
	if h.Size, err = c.u64("head size"); err != nil {
		return h, err
	}
	if h.Hash, err = c.digest("head hash"); err != nil {
		return h, err
	}
	if h.Sig, err = c.bytes(MaxSigBytes, "head signature"); err != nil {
		return h, err
	}
	return h, nil
}

// Encode appends the RootInfo's wire form to dst.
func (r *RootInfo) Encode(dst []byte) ([]byte, error) {
	if len(r.Pub) > MaxSigBytes {
		return nil, &BoundsError{What: "public key length", Got: uint64(len(r.Pub)), Max: MaxSigBytes}
	}
	dst = appendBytes16(dst, r.Pub)
	var err error
	if dst, err = appendHead(dst, r.Head); err != nil {
		return nil, err
	}
	if r.Latest == nil {
		return append(dst, 0), nil
	}
	dst = append(dst, 1)
	return appendEntry(dst, *r.Latest)
}

// DecodeRootInfo parses an OpRoot response; all slices are freshly
// allocated.
func DecodeRootInfo(buf []byte) (*RootInfo, error) {
	c := &cursor{buf: buf}
	r := &RootInfo{}
	pub, err := c.bytes(MaxSigBytes, "public key")
	if err != nil {
		return nil, err
	}
	r.Pub = ed25519.PublicKey(pub)
	if r.Head, err = c.signedHead(); err != nil {
		return nil, err
	}
	hasLatest, err := c.u8("latest-entry flag")
	if err != nil {
		return nil, err
	}
	if hasLatest != 0 {
		e, err := c.entry()
		if err != nil {
			return nil, err
		}
		r.Latest = &e
	}
	if err := c.done("root info"); err != nil {
		return nil, err
	}
	return r, nil
}

// RangeResult is the OpRootRange response: log entries with 0-based
// indices [From, To) plus the consistency proof between the size-From and
// size-To logs (empty when the relation is trivially checkable).
type RangeResult struct {
	From    uint64
	To      uint64
	Entries []Entry
	Proof   []Digest
}

// Encode appends the RangeResult's wire form to dst.
func (r *RangeResult) Encode(dst []byte) ([]byte, error) {
	if uint64(len(r.Entries)) > MaxRangeEntries {
		return nil, &BoundsError{What: "range entry count", Got: uint64(len(r.Entries)), Max: MaxRangeEntries}
	}
	if len(r.Proof) > MaxProofDigests {
		return nil, &BoundsError{What: "consistency proof length", Got: uint64(len(r.Proof)), Max: MaxProofDigests}
	}
	dst = binary.BigEndian.AppendUint64(dst, r.From)
	dst = binary.BigEndian.AppendUint64(dst, r.To)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Entries)))
	var err error
	for _, e := range r.Entries {
		if dst, err = appendEntry(dst, e); err != nil {
			return nil, err
		}
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Proof)))
	for i := range r.Proof {
		dst = append(dst, r.Proof[i][:]...)
	}
	return dst, nil
}

// DecodeRangeResult parses an OpRootRange response; all slices are freshly
// allocated.
func DecodeRangeResult(buf []byte) (*RangeResult, error) {
	c := &cursor{buf: buf}
	r := &RangeResult{}
	var err error
	if r.From, err = c.u64("range from"); err != nil {
		return nil, err
	}
	if r.To, err = c.u64("range to"); err != nil {
		return nil, err
	}
	n, err := c.u32("range entry count")
	if err != nil {
		return nil, err
	}
	if uint64(n) > MaxRangeEntries {
		return nil, &BoundsError{What: "range entry count", Got: uint64(n), Max: MaxRangeEntries}
	}
	r.Entries = make([]Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		e, err := c.entry()
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, e)
	}
	pn, err := c.u16("consistency proof length")
	if err != nil {
		return nil, err
	}
	if uint64(pn) > MaxProofDigests {
		return nil, &BoundsError{What: "consistency proof length", Got: uint64(pn), Max: MaxProofDigests}
	}
	r.Proof = make([]Digest, 0, pn)
	for i := uint16(0); i < pn; i++ {
		d, err := c.digest("consistency proof node")
		if err != nil {
			return nil, err
		}
		r.Proof = append(r.Proof, d)
	}
	if err := c.done("root range"); err != nil {
		return nil, err
	}
	return r, nil
}
