package proof

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

func sampleProof() *Proof {
	line := bytes.Repeat([]byte{0x11}, LineBytes)
	return &Proof{
		Addr:        0x1C0,
		Shards:      2,
		Shard:       1,
		Epoch:       7,
		Line:        line,
		LineMAC:     0xDEADBEEF,
		Chain:       [][]byte{bytes.Repeat([]byte{0x22}, LineBytes), nil, bytes.Repeat([]byte{0x33}, LineBytes)},
		Root:        bytes.Repeat([]byte{0x44}, LineBytes),
		ShardRoots:  []Digest{{1}, {2}},
		Attestation: bytes.Repeat([]byte{0x55}, 64),
	}
}

func sampleRootInfo() *RootInfo {
	return &RootInfo{
		Pub:  bytes.Repeat([]byte{0x66}, 32),
		Head: SignedHead{Size: 3, Hash: Digest{9}, Sig: bytes.Repeat([]byte{0x77}, 64)},
		Latest: &Entry{
			Epoch: 3, Root: Digest{1}, Prev: Digest{2},
			Sig: bytes.Repeat([]byte{0x88}, 64),
		},
	}
}

func sampleRange() *RangeResult {
	return &RangeResult{
		From: 1,
		To:   3,
		Entries: []Entry{
			{Epoch: 2, Root: Digest{1}, Prev: Digest{2}, Sig: bytes.Repeat([]byte{0x99}, 64)},
			{Epoch: 3, Root: Digest{3}, Prev: Digest{4}, Sig: bytes.Repeat([]byte{0xAA}, 64)},
		},
		Proof: []Digest{{5}, {6}},
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	p := sampleProof()
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProof(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", p, got)
	}

	// A never-written line travels as an absence flag, not 64 zero bytes.
	p.Line, p.LineMAC = nil, 0
	buf, err = p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeProof(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Line != nil || got.LineMAC != 0 {
		t.Fatalf("absent line decoded as %v/%d", got.Line, got.LineMAC)
	}
}

func TestRootInfoCodecRoundTrip(t *testing.T) {
	r := sampleRootInfo()
	buf, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRootInfo(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", r, got)
	}

	r.Latest = nil
	buf, err = r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRootInfo(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Latest != nil {
		t.Fatal("empty-log root info decoded with a latest entry")
	}
}

func TestRangeResultCodecRoundTrip(t *testing.T) {
	r := sampleRange()
	buf, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRangeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != r.From || got.To != r.To || !reflect.DeepEqual(got.Entries, r.Entries) || !reflect.DeepEqual(got.Proof, r.Proof) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", r, got)
	}
}

// TestDecodersRejectEveryTruncation chops each wire form at every prefix
// length: no prefix may decode successfully or panic — the mid-proof
// truncated-frame case a flaky or hostile server produces.
func TestDecodersRejectEveryTruncation(t *testing.T) {
	proofBuf, err := sampleProof().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	rootBuf, err := sampleRootInfo().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	rangeBuf, err := sampleRange().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		buf    []byte
		decode func([]byte) error
	}{
		{"proof", proofBuf, func(b []byte) error { _, err := DecodeProof(b); return err }},
		{"root info", rootBuf, func(b []byte) error { _, err := DecodeRootInfo(b); return err }},
		{"root range", rangeBuf, func(b []byte) error { _, err := DecodeRangeResult(b); return err }},
	}
	for _, tc := range cases {
		for cut := 0; cut < len(tc.buf); cut++ {
			if err := tc.decode(tc.buf[:cut]); err == nil {
				t.Errorf("%s truncated at %d/%d decoded successfully", tc.name, cut, len(tc.buf))
			}
		}
		// Trailing garbage is as suspect as a missing tail.
		if err := tc.decode(append(append([]byte(nil), tc.buf...), 0xFF)); err == nil {
			t.Errorf("%s with a trailing byte decoded successfully", tc.name)
		}
	}
}

// TestDecodersRejectOversizedCounts forges count fields past their caps
// and requires a typed BoundsError before any allocation-sized work.
func TestDecodersRejectOversizedCounts(t *testing.T) {
	p := sampleProof()
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Oversized path length: the u16 chain count lives right after the
	// fixed header and the present data line.
	chainOff := 8 + 4 + 4 + 8 + 1 + LineBytes + 8
	forged := append([]byte(nil), buf...)
	binary.BigEndian.PutUint16(forged[chainOff:], MaxChainLines+1)
	var be *BoundsError
	if _, err := DecodeProof(forged); !errors.As(err, &be) {
		t.Fatalf("oversized chain length: got %v, want *BoundsError", err)
	}

	// Oversized shard count.
	forged = append([]byte(nil), buf...)
	binary.BigEndian.PutUint32(forged[8:], MaxShards+1)
	if _, err := DecodeProof(forged); !errors.As(err, &be) {
		t.Fatalf("oversized shard count: got %v, want *BoundsError", err)
	}

	// Zero shards is as hostile as too many.
	forged = append([]byte(nil), buf...)
	binary.BigEndian.PutUint32(forged[8:], 0)
	if _, err := DecodeProof(forged); !errors.As(err, &be) {
		t.Fatalf("zero shard count: got %v, want *BoundsError", err)
	}

	// Range response with a forged entry count.
	rr := sampleRange()
	rbuf, err := rr.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged = append([]byte(nil), rbuf...)
	binary.BigEndian.PutUint32(forged[16:], MaxRangeEntries+1)
	if _, err := DecodeRangeResult(forged); !errors.As(err, &be) {
		t.Fatalf("oversized range count: got %v, want *BoundsError", err)
	}

	// Encode-side caps hold too: a hostile chain never leaves the server.
	p.Chain = make([][]byte, MaxChainLines+1)
	if _, err := p.Encode(nil); !errors.As(err, &be) {
		t.Fatalf("encode oversized chain: got %v, want *BoundsError", err)
	}
}
