package proof

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// The transparency log is an append-only sequence of epoch-root entries,
// hash-chained through Prev and merkelized RFC-6962 style so two signed
// heads of different sizes can be proven consistent (the newer log is an
// extension of the older) without refetching every entry. Signing domains
// are disjoint so an entry signature can never be replayed as a head or a
// live attestation:
//
//	"morphproof/entry" — one (epoch, root, prevHash) log entry
//	"morphproof/head"  — a signed Merkle head over all entries
//	"morphproof/live"  — a per-read attestation of the current root,
//	                     between checkpoints (not part of the log)

// Digest is a SHA-256 output; roots, entry hashes, and Merkle nodes all
// travel as Digests.
type Digest = [sha256.Size]byte

const (
	domainEntry    = "morphproof/entry"
	domainHead     = "morphproof/head"
	domainLive     = "morphproof/live"
	domainLeaf     = "morphproof/leaf"
	domainNode     = "morphproof/node"
	domainRoot     = "morphproof/root"
	domainCombined = "morphproof/combined"
	domainSeed     = "morphproof/seed"
)

// Entry is one epoch's record in the transparency log.
type Entry struct {
	// Epoch is the 1-based position in the log.
	Epoch uint64
	// Root is the combined root digest published at this epoch.
	Root Digest
	// Prev is the previous entry's hash (zero for epoch 1), chaining the
	// log independently of the Merkle structure.
	Prev Digest
	// Sig is the authority's Ed25519 signature over the entry.
	Sig []byte
}

// SignedHead is the authority's commitment to the entire log at one size:
// the Merkle tree hash over every entry, signed.
type SignedHead struct {
	// Size is the number of entries the head covers.
	Size uint64
	// Hash is the RFC-6962 Merkle tree hash over entry hashes [0, Size).
	Hash Digest
	// Sig is the authority's Ed25519 signature over (Size, Hash).
	Sig []byte
}

// EntryHash returns an entry's leaf hash: the value hash-chained into the
// next entry's Prev and merkelized into heads. The signature is excluded —
// it authenticates the same fields, so including it would only make leaf
// hashes signer-dependent.
func EntryHash(e Entry) Digest {
	h := sha256.New()
	h.Write([]byte(domainLeaf))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], e.Epoch)
	h.Write(buf[:])
	h.Write(e.Root[:])
	h.Write(e.Prev[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// nodeHash combines two Merkle subtree hashes.
func nodeHash(left, right Digest) Digest {
	h := sha256.New()
	h.Write([]byte(domainNode))
	h.Write(left[:])
	h.Write(right[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// treeHash computes the RFC-6962 Merkle tree hash over leaf hashes: the
// empty tree hashes the domain alone, a single leaf is its own hash, and
// larger trees split at the largest power of two strictly less than n.
func treeHash(leaves []Digest) Digest {
	switch len(leaves) {
	case 0:
		return sha256.Sum256([]byte(domainNode))
	case 1:
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(treeHash(leaves[:k]), treeHash(leaves[k:]))
}

// TreeHash computes the RFC-6962 Merkle tree hash over entry leaf hashes
// (EntryHash per entry, in epoch order). Auditors use it to check a fully
// fetched log against its signed head.
func TreeHash(leaves []Digest) Digest {
	return treeHash(leaves)
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// consistencyProof returns the RFC-6962 consistency proof showing the
// first m leaves are a prefix of all n = len(leaves); empty when m == 0,
// m == n, or the relation is trivially checkable from the heads alone.
func consistencyProof(m int, leaves []Digest) []Digest {
	if m == 0 || m >= len(leaves) {
		return nil
	}
	return subProof(m, leaves, true)
}

func subProof(m int, leaves []Digest, completeSubtree bool) []Digest {
	n := len(leaves)
	if m == n {
		if completeSubtree {
			return nil
		}
		return []Digest{treeHash(leaves)}
	}
	k := splitPoint(n)
	if m <= k {
		return append(subProof(m, leaves[:k], completeSubtree), treeHash(leaves[k:]))
	}
	return append(subProof(m-k, leaves[k:], false), treeHash(leaves[:k]))
}

// VerifyConsistency checks an RFC-6962 consistency proof: that the log
// whose head was oldHash at oldSize is a prefix of the log whose head is
// newHash at newSize. A failure means the server forked or rewrote
// history between the two heads.
func VerifyConsistency(oldSize uint64, oldHash Digest, newSize uint64, newHash Digest, path []Digest) error {
	forked := fmt.Errorf("proof: log consistency proof failed: size %d head is not a prefix of size %d head (fork or rewritten history)", oldSize, newSize)
	switch {
	case oldSize > newSize:
		return fmt.Errorf("proof: log shrank from %d to %d entries (fork or rewritten history)", oldSize, newSize)
	case oldSize == newSize:
		if len(path) != 0 || oldHash != newHash {
			return forked
		}
		return nil
	case oldSize == 0:
		// The empty log is a prefix of everything.
		if len(path) != 0 {
			return forked
		}
		return nil
	}
	// RFC 9162 §2.1.4.2. When oldSize is an exact power of two, the old
	// head is itself the first proof node and is not transmitted.
	if oldSize&(oldSize-1) == 0 {
		path = append([]Digest{oldHash}, path...)
	}
	if len(path) == 0 {
		return forked
	}
	fn, sn := oldSize-1, newSize-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return forked
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			for fn&1 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	if fr != oldHash || sr != newHash || sn != 0 {
		return forked
	}
	return nil
}

// RootDigest binds one shard's root-line encoding to its shard index, so
// shard roots cannot be swapped between positions inside a combined root.
func RootDigest(shard int, rootEncoding []byte) Digest {
	h := sha256.New()
	h.Write([]byte(domainRoot))
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(shard))
	h.Write(buf[:])
	h.Write(rootEncoding)
	var d Digest
	h.Sum(d[:0])
	return d
}

// CombineRoots folds every shard's root digest into the single combined
// root the transparency log records.
func CombineRoots(shardRoots []Digest) Digest {
	h := sha256.New()
	h.Write([]byte(domainCombined))
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(shardRoots)))
	h.Write(buf[:])
	for i := range shardRoots {
		h.Write(shardRoots[i][:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// entryMessage builds the byte string an entry signature covers.
func entryMessage(epoch uint64, root, prev Digest) []byte {
	msg := make([]byte, 0, len(domainEntry)+8+2*sha256.Size)
	msg = append(msg, domainEntry...)
	msg = binary.BigEndian.AppendUint64(msg, epoch)
	msg = append(msg, root[:]...)
	msg = append(msg, prev[:]...)
	return msg
}

// headMessage builds the byte string a head signature covers.
func headMessage(size uint64, hash Digest) []byte {
	msg := make([]byte, 0, len(domainHead)+8+sha256.Size)
	msg = append(msg, domainHead...)
	msg = binary.BigEndian.AppendUint64(msg, size)
	msg = append(msg, hash[:]...)
	return msg
}

// liveMessage builds the byte string a live attestation covers.
func liveMessage(epoch uint64, root Digest) []byte {
	msg := make([]byte, 0, len(domainLive)+8+sha256.Size)
	msg = append(msg, domainLive...)
	msg = binary.BigEndian.AppendUint64(msg, epoch)
	msg = append(msg, root[:]...)
	return msg
}

// VerifyEntry checks an entry's signature and its chain link to the
// previous entry's hash.
func VerifyEntry(pub ed25519.PublicKey, e Entry, prev Digest) error {
	if e.Prev != prev {
		return fmt.Errorf("proof: entry %d prev-hash chain broken", e.Epoch)
	}
	if !ed25519.Verify(pub, entryMessage(e.Epoch, e.Root, e.Prev), e.Sig) {
		return fmt.Errorf("proof: entry %d signature invalid (forged or tampered log entry)", e.Epoch)
	}
	return nil
}

// VerifyHead checks a signed head's signature.
func VerifyHead(pub ed25519.PublicKey, h SignedHead) error {
	if !ed25519.Verify(pub, headMessage(h.Size, h.Hash), h.Sig) {
		return fmt.Errorf("proof: head signature invalid at size %d", h.Size)
	}
	return nil
}

// VerifyAttestation checks a live root attestation: the authority's
// signature over (epoch, combined root) carried inside each proof.
func VerifyAttestation(pub ed25519.PublicKey, epoch uint64, root Digest, sig []byte) error {
	if !ed25519.Verify(pub, liveMessage(epoch, root), sig) {
		return fmt.Errorf("proof: root attestation signature invalid at epoch %d", epoch)
	}
	return nil
}

// DeriveAuthoritySeed derives a deterministic Ed25519 seed from the AES
// master key, for demo deployments where one secret configures the whole
// stack. Production deployments should pass an independently generated
// seed instead, so the signing identity does not fall with the data key.
//
//morph:secret
func DeriveAuthoritySeed(master []byte) []byte {
	h := sha256.New()
	h.Write([]byte(domainSeed))
	h.Write(master)
	return h.Sum(nil)[:ed25519.SeedSize]
}

// Authority is the server-side signer and log keeper: it holds the
// Ed25519 key, appends one entry per checkpoint epoch, signs heads, and
// attests the live root inside proofs. Safe for concurrent use.
type Authority struct {
	// seed is the Ed25519 private-key seed.
	//
	//morph:secret
	seed []byte
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey

	mu      sync.Mutex
	entries []Entry
	// published is the IsNew-style batch watermark (alinush, SNIPPETS §1):
	// entries[:published] are covered by an already-signed head; entries
	// beyond it are freshly appended ("new") until the next Head call
	// signs a head covering them, which advances the watermark. /rootz
	// exposes both numbers so an auditor can see unpublished appends.
	published uint64
	head      SignedHead
}

// NewAuthority builds an authority from an Ed25519 seed; a nil seed draws
// a fresh one from crypto/rand (the signing identity then lives only for
// this process).
func NewAuthority(seed []byte) (*Authority, error) {
	if seed == nil {
		seed = make([]byte, ed25519.SeedSize)
		if _, err := rand.Read(seed); err != nil {
			return nil, fmt.Errorf("proof: generate seed: %w", err)
		}
	}
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("proof: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	owned := make([]byte, len(seed))
	copy(owned, seed)
	a := &Authority{seed: owned, priv: ed25519.NewKeyFromSeed(owned)}
	a.pub = a.priv.Public().(ed25519.PublicKey)
	a.head = a.signHeadLocked()
	return a, nil
}

// Public returns the authority's Ed25519 public key (32 bytes, safe to
// publish — clients pin it).
func (a *Authority) Public() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(a.pub))
	copy(out, a.pub)
	return out
}

// KeyDesc renders the signing identity as a loggable description: the
// public key's fingerprint, never the seed.
//
//morph:sealed
func (a *Authority) KeyDesc() string {
	fp := sha256.Sum256(a.pub)
	return fmt.Sprintf("ed25519 fp=%016x", binary.BigEndian.Uint64(fp[:8]))
}

// Size returns the number of published log entries.
func (a *Authority) Size() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(len(a.entries))
}

// Unpublished returns how many appended entries the latest signed head
// does not yet cover (the IsNew watermark gap; 0 in steady state because
// Publish signs a fresh head for each batch).
func (a *Authority) Unpublished() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(len(a.entries)) - a.published
}

// Publish appends the combined root as the next epoch's entry, signs it,
// and signs a new head covering it. It returns the appended entry.
func (a *Authority) Publish(root Digest) Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	var prev Digest
	if n := len(a.entries); n > 0 {
		prev = EntryHash(a.entries[n-1])
	}
	e := Entry{
		Epoch: uint64(len(a.entries)) + 1,
		Root:  root,
		Prev:  prev,
	}
	e.Sig = ed25519.Sign(a.priv, entryMessage(e.Epoch, e.Root, e.Prev))
	a.entries = append(a.entries, e)
	a.head = a.signHeadLocked()
	a.published = uint64(len(a.entries))
	return e
}

// signHeadLocked recomputes and signs the head over the current entries.
// Leaf hashes are recomputed from the entries each time rather than
// cached, so the adversary interface (TamperEntry) is reflected in what
// the server serves — exactly the equivocation auditors must catch.
func (a *Authority) signHeadLocked() SignedHead {
	h := SignedHead{Size: uint64(len(a.entries)), Hash: treeHash(a.leafHashesLocked())}
	h.Sig = ed25519.Sign(a.priv, headMessage(h.Size, h.Hash))
	return h
}

func (a *Authority) leafHashesLocked() []Digest {
	leaves := make([]Digest, len(a.entries))
	for i := range a.entries {
		leaves[i] = EntryHash(a.entries[i])
	}
	return leaves
}

// Attest signs the current combined root under the live domain, tagged
// with the current log size. Reads between checkpoints carry this
// attestation; it commits the authority to the root without appending an
// epoch entry.
func (a *Authority) Attest(root Digest) (epoch uint64, sig []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	epoch = uint64(len(a.entries))
	return epoch, ed25519.Sign(a.priv, liveMessage(epoch, root))
}

// Head returns the latest signed head. The head is recomputed from the
// stored entries (not replayed from a cache), so storage-level tampering
// with an already-published entry shows up as an equivocating head.
func (a *Authority) Head() SignedHead {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.signHeadLocked()
}

// Latest returns the newest entry and true, or a zero entry and false for
// an empty log.
func (a *Authority) Latest() (Entry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.entries) == 0 {
		return Entry{}, false
	}
	return cloneEntry(a.entries[len(a.entries)-1]), true
}

// Entries returns entries with 0-based indices [from, to) — epochs
// from+1 through to.
func (a *Authority) Entries(from, to uint64) ([]Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if from > to || to > uint64(len(a.entries)) {
		return nil, fmt.Errorf("proof: entry range [%d, %d) outside log of %d entries", from, to, len(a.entries))
	}
	out := make([]Entry, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, cloneEntry(a.entries[i]))
	}
	return out, nil
}

// ConsistencyProof returns the proof that the size-m log is a prefix of
// the size-n log.
func (a *Authority) ConsistencyProof(m, n uint64) ([]Digest, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m > n || n > uint64(len(a.entries)) {
		return nil, fmt.Errorf("proof: consistency range (%d, %d) outside log of %d entries", m, n, len(a.entries))
	}
	return consistencyProof(int(m), a.leafHashesLocked()[:n]), nil
}

// TamperEntry flips one byte of a stored entry's root (adversary
// interface, mirroring Store.FlipBit): it models a server whose log
// storage was rewritten after publication. It reports whether the entry
// existed. Subsequent heads and ranges serve the tampered entry, which
// auditors must reject by signature and head-consistency checks.
func (a *Authority) TamperEntry(epoch uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if epoch < 1 || epoch > uint64(len(a.entries)) {
		return false
	}
	a.entries[epoch-1].Root[0] ^= 0x01
	return true
}

func cloneEntry(e Entry) Entry {
	e.Sig = append([]byte(nil), e.Sig...)
	return e
}
