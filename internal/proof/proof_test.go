package proof_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
)

// The end-to-end tests live in an external test package on purpose: they
// import shard (which itself imports proof), exactly the dependency shape
// of a real deployment — engine on the server, proof verifier on a thin
// client that shares no secmem code.

var masterKey = []byte("0123456789abcdef")

const (
	testMem    = 1 << 16
	testShards = 2
)

func testEngine(t *testing.T) (*shard.Sharded, proof.Params) {
	t.Helper()
	enc, tree, err := shard.Organization("morph128")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.New(shard.Config{
		Shards: testShards,
		Mem: secmem.Config{
			MemoryBytes: testMem,
			Enc:         enc,
			Tree:        tree,
			Key:         masterKey,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh, proof.Params{MemoryBytes: testMem, Shards: testShards, Enc: enc, Tree: tree}
}

// attested builds the proof the server would serve: engine witness plus a
// live root attestation from the authority.
func attested(t *testing.T, sh *shard.Sharded, a *proof.Authority, addr uint64) *proof.Proof {
	t.Helper()
	p, err := sh.Prove(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.Epoch, p.Attestation = a.Attest(proof.CombineRoots(p.ShardRoots))
	return p
}

func TestVerifyEndToEnd(t *testing.T) {
	sh, params := testEngine(t)
	auth, err := proof.NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := auth.Public()

	// Enough writes to populate counters at several tree levels and both
	// shards; overwrite some lines so counters move past zero.
	want := map[uint64][]byte{}
	for i := uint64(0); i < 64; i++ {
		addr := i * secmem.LineBytes
		line := bytes.Repeat([]byte{byte(i + 1)}, secmem.LineBytes)
		for rep := 0; rep < 3; rep++ {
			if err := sh.Write(addr, line); err != nil {
				t.Fatal(err)
			}
		}
		want[addr] = line
	}
	auth.Publish(proof.CombineRoots(sh.RootDigests()))

	for addr, line := range want {
		p := attested(t, sh, auth, addr)
		got, err := p.Verify(params, masterKey, pub)
		if err != nil {
			t.Fatalf("verify %#x: %v", addr, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("verify %#x: recovered wrong plaintext", addr)
		}
		// A verifier without the signing key still checks the walk.
		if _, err := p.Verify(params, masterKey, nil); err != nil {
			t.Fatalf("verify %#x without pub: %v", addr, err)
		}
	}
}

func TestVerifyNeverWrittenReadsZero(t *testing.T) {
	sh, params := testEngine(t)
	auth, err := proof.NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	// One write so the tree is not fully empty; prove a different line.
	if err := sh.Write(0, bytes.Repeat([]byte{7}, secmem.LineBytes)); err != nil {
		t.Fatal(err)
	}
	p := attested(t, sh, auth, testMem-secmem.LineBytes)
	got, err := p.Verify(params, masterKey, auth.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, secmem.LineBytes)) {
		t.Fatal("never-written line did not verify as zeros")
	}

	// A server cannot smuggle data into a "never written" hole: presenting
	// an absent line where the encryption counter is nonzero must fail.
	p2 := attested(t, sh, auth, 0)
	p2.Line, p2.LineMAC = nil, 0
	var me *proof.MismatchError
	if _, err := p2.Verify(params, masterKey, auth.Public()); !errors.As(err, &me) {
		t.Fatalf("absent line with live counter: got %v, want *MismatchError", err)
	}
}

// TestVerifyDetectsTampering flips one byte at every layer of the witness
// and requires the typed client-side failure each time — the thin client
// must not need the server's honesty for any of them.
func TestVerifyDetectsTampering(t *testing.T) {
	sh, params := testEngine(t)
	auth, err := proof.NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := auth.Public()
	const addr = 3 * secmem.LineBytes
	for rep := 0; rep < 3; rep++ {
		if err := sh.Write(addr, bytes.Repeat([]byte{0xC3}, secmem.LineBytes)); err != nil {
			t.Fatal(err)
		}
	}

	mutations := []struct {
		name   string
		mutate func(p *proof.Proof)
	}{
		{"data line", func(p *proof.Proof) { p.Line[5] ^= 1 }},
		{"data MAC", func(p *proof.Proof) { p.LineMAC ^= 1 }},
		{"sibling counter line", func(p *proof.Proof) {
			for _, line := range p.Chain {
				if line != nil {
					line[9] ^= 1
					return
				}
			}
			panic("no present chain line to tamper")
		}},
		{"root line", func(p *proof.Proof) { p.Root[0] ^= 1 }},
		{"shard root digest", func(p *proof.Proof) { p.ShardRoots[p.Shard][0] ^= 1 }},
	}
	for _, m := range mutations {
		p := attested(t, sh, auth, addr)
		m.mutate(p)
		_, err := p.Verify(params, masterKey, pub)
		if m.name == "shard root digest" {
			// Tampering the digest vector breaks the attestation first —
			// either typed failure is a detection.
			if err == nil {
				t.Fatalf("%s: tampering not detected", m.name)
			}
			continue
		}
		var me *proof.MismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: got %v, want *MismatchError", m.name, err)
		}
	}

	// Forged attestation: valid walk, wrong signer.
	imposter, err := proof.NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sh.Prove(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.Epoch, p.Attestation = imposter.Attest(proof.CombineRoots(p.ShardRoots))
	if _, err := p.Verify(params, masterKey, pub); err == nil {
		t.Fatal("attestation from the wrong authority accepted")
	}
}

func TestVerifyRejectsParameterMismatch(t *testing.T) {
	sh, params := testEngine(t)
	auth, err := proof.NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Write(0, bytes.Repeat([]byte{1}, secmem.LineBytes)); err != nil {
		t.Fatal(err)
	}
	p := attested(t, sh, auth, 0)

	bad := params
	bad.Shards = testShards * 2
	if _, err := p.Verify(bad, masterKey, auth.Public()); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	// A wrong master key must fail the walk, not decrypt garbage silently.
	var me *proof.MismatchError
	if _, err := p.Verify(params, []byte("FEDCBA9876543210"), auth.Public()); !errors.As(err, &me) {
		t.Fatalf("wrong master key: got %v, want *MismatchError", err)
	}
}
