package proof

import (
	"crypto/ed25519"
	"strings"
	"testing"
)

func testLeaves(n int) []Digest {
	leaves := make([]Digest, n)
	for i := range leaves {
		leaves[i] = EntryHash(Entry{Epoch: uint64(i) + 1, Root: Digest{byte(i), 0xA5}})
	}
	return leaves
}

// TestConsistencyBruteForce proves the generator and verifier agree for
// every (m, n) pair up to 32 entries — the whole state space the auditor
// will ever exercise between two cycles, boundaries included (m == n,
// powers of two, m == 1).
func TestConsistencyBruteForce(t *testing.T) {
	leaves := testLeaves(32)
	for n := 1; n <= len(leaves); n++ {
		newHash := treeHash(leaves[:n])
		for m := 0; m <= n; m++ {
			oldHash := treeHash(leaves[:m])
			path := consistencyProof(m, leaves[:n])
			if err := VerifyConsistency(uint64(m), oldHash, uint64(n), newHash, path); err != nil {
				t.Fatalf("consistency %d -> %d rejected: %v", m, n, err)
			}
		}
	}
}

// TestConsistencyRejectsForks feeds the verifier honest proofs against
// forked histories: same sizes, different content.
func TestConsistencyRejectsForks(t *testing.T) {
	leaves := testLeaves(16)
	forked := testLeaves(16)
	for i := range forked {
		forked[i][0] ^= 0xFF
	}
	for n := 2; n <= len(leaves); n++ {
		for m := 1; m < n; m++ {
			path := consistencyProof(m, leaves[:n])
			// The old head the auditor pinned came from the forked history.
			if err := VerifyConsistency(uint64(m), treeHash(forked[:m]), uint64(n), treeHash(leaves[:n]), path); err == nil {
				t.Fatalf("forked old head %d -> %d accepted", m, n)
			}
			// The server rewrote history after the pin.
			if err := VerifyConsistency(uint64(m), treeHash(leaves[:m]), uint64(n), treeHash(forked[:n]), path); err == nil {
				t.Fatalf("rewritten new head %d -> %d accepted", m, n)
			}
		}
	}
	if err := VerifyConsistency(8, treeHash(leaves[:8]), 4, treeHash(leaves[:4]), nil); err == nil {
		t.Fatal("shrinking log accepted")
	} else if !strings.Contains(err.Error(), "shrank") {
		t.Fatalf("shrinking log error = %v, want mention of shrinking", err)
	}
	if err := VerifyConsistency(4, treeHash(leaves[:4]), 4, treeHash(forked[:4]), nil); err == nil {
		t.Fatal("equal-size fork (equivocation) accepted")
	}
}

func TestAuthorityPublishChain(t *testing.T) {
	a, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Public()
	roots := []Digest{{1}, {2}, {3}, {4}, {5}}
	for _, r := range roots {
		e := a.Publish(r)
		if err := VerifyHead(pub, a.Head()); err != nil {
			t.Fatalf("head after epoch %d: %v", e.Epoch, err)
		}
	}
	if got := a.Size(); got != uint64(len(roots)) {
		t.Fatalf("Size = %d, want %d", got, len(roots))
	}
	if got := a.Unpublished(); got != 0 {
		t.Fatalf("Unpublished = %d, want 0 (Publish signs a covering head)", got)
	}

	entries, err := a.Entries(0, a.Size())
	if err != nil {
		t.Fatal(err)
	}
	var prev Digest
	for i, e := range entries {
		if e.Epoch != uint64(i)+1 {
			t.Fatalf("entry %d has epoch %d", i, e.Epoch)
		}
		if e.Root != roots[i] {
			t.Fatalf("entry %d root mismatch", i)
		}
		if err := VerifyEntry(pub, e, prev); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		prev = EntryHash(e)
	}

	// The head the server signs matches what an auditor recomputes from
	// the entries it fetched.
	leaves := make([]Digest, len(entries))
	for i, e := range entries {
		leaves[i] = EntryHash(e)
	}
	if head := a.Head(); TreeHash(leaves) != head.Hash {
		t.Fatal("recomputed tree hash disagrees with the signed head")
	}

	latest, ok := a.Latest()
	if !ok || latest.Epoch != uint64(len(roots)) {
		t.Fatalf("Latest = (%v, %v)", latest.Epoch, ok)
	}
	if _, err := a.Entries(3, 99); err == nil {
		t.Fatal("out-of-range Entries accepted")
	}
	if _, err := a.ConsistencyProof(4, 99); err == nil {
		t.Fatal("out-of-range ConsistencyProof accepted")
	}
}

// TestAuthorityTamperEntry proves the adversary interface produces exactly
// the evidence auditors check for: the tampered entry's signature no
// longer verifies, and the recomputed head equivocates against the
// pre-tamper head at the same size.
func TestAuthorityTamperEntry(t *testing.T) {
	a, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Public()
	a.Publish(Digest{1})
	a.Publish(Digest{2})
	before := a.Head()

	if a.TamperEntry(0) || a.TamperEntry(3) {
		t.Fatal("TamperEntry accepted an epoch outside the log")
	}
	if !a.TamperEntry(1) {
		t.Fatal("TamperEntry rejected a live epoch")
	}

	entries, err := a.Entries(0, a.Size())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEntry(pub, entries[0], Digest{}); err == nil {
		t.Fatal("forged entry signature verified")
	}
	after := a.Head()
	if after.Size != before.Size {
		t.Fatalf("tamper changed the log size %d -> %d", before.Size, after.Size)
	}
	if after.Hash == before.Hash {
		t.Fatal("tampered log still serves the old head hash")
	}
	// Both heads are validly signed at the same size with different
	// hashes: the definition of equivocation, and why auditors pin heads.
	if err := VerifyHead(pub, before); err != nil {
		t.Fatal(err)
	}
	if err := VerifyHead(pub, after); err != nil {
		t.Fatal(err)
	}
}

func TestAttestationDomainSeparation(t *testing.T) {
	a, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Public()
	root := Digest{0xAB}
	e := a.Publish(root)
	epoch, sig := a.Attest(root)
	if epoch != 1 {
		t.Fatalf("Attest epoch = %d, want 1", epoch)
	}
	if err := VerifyAttestation(pub, epoch, root, sig); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttestation(pub, epoch, Digest{0xAC}, sig); err == nil {
		t.Fatal("attestation verified against a different root")
	}
	// An entry signature must not double as a live attestation (and vice
	// versa), or a replayed log entry could vouch for a stale root.
	if err := VerifyAttestation(pub, e.Epoch, e.Root, e.Sig); err == nil {
		t.Fatal("entry signature accepted as a live attestation")
	}
	if err := VerifyEntry(pub, Entry{Epoch: epoch, Root: root, Sig: sig}, Digest{}); err == nil {
		t.Fatal("live attestation accepted as an entry signature")
	}
}

func TestNewAuthoritySeeds(t *testing.T) {
	seed := DeriveAuthoritySeed([]byte("0123456789abcdef"))
	if len(seed) != ed25519.SeedSize {
		t.Fatalf("derived seed is %d bytes, want %d", len(seed), ed25519.SeedSize)
	}
	a1, err := NewAuthority(seed)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAuthority(seed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a1.Public()) != string(a2.Public()) {
		t.Fatal("same seed produced different signing identities")
	}
	if a1.KeyDesc() == "" || strings.Contains(a1.KeyDesc(), string(seed)) {
		t.Fatal("KeyDesc must describe the key without leaking the seed")
	}
	if _, err := NewAuthority([]byte("short")); err == nil {
		t.Fatal("undersized seed accepted")
	}
	r1, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Public()) == string(r2.Public()) {
		t.Fatal("two random authorities share an identity")
	}
}

func TestRootDigestBindsShardIndex(t *testing.T) {
	enc := []byte("root-line-encoding-64-bytes.....root-line-encoding-64-bytes.....")
	if RootDigest(0, enc) == RootDigest(1, enc) {
		t.Fatal("shard index not bound: shard roots could be swapped")
	}
	a := []Digest{{1}, {2}}
	b := []Digest{{2}, {1}}
	if CombineRoots(a) == CombineRoots(b) {
		t.Fatal("combined root ignores shard order")
	}
}
