package proof_test

import (
	"bytes"
	"fmt"

	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/shard"
)

// ExampleProof_Verify walks the whole trust story end to end: a server
// holds the memory and the transparency log, a thin client holds only the
// master key, the pinned signing key, and the deployment parameters — and
// accepts a read purely because the proof recomputes to the attested root.
func ExampleProof_Verify() {
	// ---- Server side: engine plus signing authority. ----
	key := []byte("0123456789abcdef")
	enc, tree, _ := shard.Organization("morph128")
	cfg := shard.Config{
		Shards: 2,
		Mem:    secmem.Config{MemoryBytes: 1 << 16, Enc: enc, Tree: tree, Key: key},
	}
	sh, _ := shard.New(cfg)
	authority, _ := proof.NewAuthority(proof.DeriveAuthoritySeed(key))

	line := bytes.Repeat([]byte{0x42}, secmem.LineBytes)
	_ = sh.Write(0x1C0, line)
	entry := authority.Publish(proof.CombineRoots(sh.RootDigests()))

	// The server builds the witness and attests the current root.
	p, _ := sh.Prove(0x1C0)
	p.Epoch, p.Attestation = authority.Attest(proof.CombineRoots(p.ShardRoots))

	// ---- Client side: no engine, no server trust. ----
	params := proof.Params{MemoryBytes: 1 << 16, Shards: 2, Enc: enc, Tree: tree}
	pub := authority.Public()

	// The published epoch root is independently checkable...
	if err := proof.VerifyEntry(pub, entry, proof.Digest{}); err != nil {
		fmt.Println("log entry:", err)
		return
	}
	// ...and the read verifies against the attested root, recovering the
	// plaintext along the way.
	plain, err := p.Verify(params, key, pub)
	if err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Printf("epoch %d verified, plaintext[0] = %#x\n", entry.Epoch, plain[0])

	// A flipped ciphertext byte can no longer hide.
	p.Line[7] ^= 0xFF
	_, err = p.Verify(params, key, pub)
	fmt.Println("after tampering:", err)
	// Output:
	// epoch 1 verified, plaintext[0] = 0x42
	// after tampering: proof: verification mismatch at data line 3: MAC mismatch
}
