package proof

import (
	"crypto/ed25519"
	"fmt"

	"github.com/securemem/morphtree/internal/aesctr"
	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/mac"
	"github.com/securemem/morphtree/internal/tree"
)

// Proof is a self-contained witness for one read: everything a verifier
// needs to recompute the MAC chain from the ciphertext up to the owning
// shard's root, plus the authority's attestation binding that root to the
// current epoch. Absent lines (nil Line, nil Chain entries) assert the
// never-written state, which the verifier accepts only where the parent
// counter is zero — exactly the engine's own rule.
type Proof struct {
	// Addr is the global line-aligned address the proof covers.
	Addr uint64
	// Shards is the serving layout's shard count; Shard is the shard that
	// owns Addr under the round-robin line interleave.
	Shards uint32
	Shard  uint32
	// Epoch is the transparency-log size at proof-build time; the
	// attestation is signed against it.
	Epoch uint64
	// Line is the stored ciphertext (64 bytes), or nil for a line that was
	// never written. LineMAC is its stored data MAC (meaningful only when
	// Line is present).
	Line    []byte
	LineMAC uint64
	// Chain holds the raw counter line on the verification path at every
	// level below the root: Chain[0] is the encryption-counter line,
	// Chain[l] the tree level-l line, for l in [0, rootLevel). A nil entry
	// asserts the line was never materialized.
	Chain [][]byte
	// Root is the owning shard's root line encoding (held on-chip by the
	// engine; trusted here via ShardRoots and the attestation).
	Root []byte
	// ShardRoots holds every shard's root digest; CombineRoots over them
	// is the combined root the attestation signs.
	ShardRoots []Digest
	// Attestation is the authority's live signature over
	// (Epoch, CombineRoots(ShardRoots)).
	Attestation []byte
}

// Params describes the serving layout a verifier checks proofs against: the
// same organization knobs morphserve was started with.
type Params struct {
	// MemoryBytes is the total protected capacity across all shards.
	MemoryBytes uint64
	// Shards is the shard count.
	Shards int
	// Enc is the encryption-counter organization; Tree the per-level tree
	// schedule (last element repeating), as in secmem.Config.
	Enc  counters.Spec
	Tree []counters.Spec
	// MACWidth is the truncated MAC width (0 = mac.Width56, the default).
	MACWidth mac.Width
}

// Verify recomputes the proof's entire MAC chain from the master key and
// returns the decrypted plaintext line. It trusts nothing from the server:
// the root must match its digest in ShardRoots, the combined root must
// carry a valid attestation under pub (skipped when pub is nil), and every
// link down to the ciphertext must MAC-verify. Any broken link returns a
// *MismatchError; malformed structure returns a plain error.
func (p *Proof) Verify(params Params, masterKey []byte, pub ed25519.PublicKey) ([]byte, error) {
	if params.Shards < 1 {
		return nil, fmt.Errorf("proof: params shard count %d must be >= 1", params.Shards)
	}
	stride := uint64(params.Shards) * LineBytes
	if params.MemoryBytes == 0 || params.MemoryBytes%stride != 0 {
		return nil, fmt.Errorf("proof: params capacity %d is not a positive multiple of %d shards x %d-byte lines", params.MemoryBytes, params.Shards, LineBytes)
	}
	if p.Shards != uint32(params.Shards) {
		return nil, fmt.Errorf("proof: proof built for %d shards, verifier expects %d", p.Shards, params.Shards)
	}
	if len(p.ShardRoots) != params.Shards {
		return nil, fmt.Errorf("proof: %d shard roots for %d shards", len(p.ShardRoots), params.Shards)
	}
	shardIdx, localAddr, err := Locate(params.MemoryBytes, params.Shards, p.Addr)
	if err != nil {
		return nil, err
	}
	if uint32(shardIdx) != p.Shard {
		return nil, fmt.Errorf("proof: address %#x routes to shard %d, proof claims shard %d", p.Addr, shardIdx, p.Shard)
	}

	// Anchor the root: attestation over the combined root, then this
	// shard's root line against its digest.
	if pub != nil {
		if err := VerifyAttestation(pub, p.Epoch, CombineRoots(p.ShardRoots), p.Attestation); err != nil {
			return nil, err
		}
	}
	arities := make([]int, len(params.Tree))
	for i, s := range params.Tree {
		arities[i] = s.Arity
	}
	geom, err := tree.New(params.MemoryBytes/uint64(params.Shards), params.Enc.Arity, arities)
	if err != nil {
		return nil, err
	}
	rootLevel := geom.RootLevel()
	if RootDigest(shardIdx, p.Root) != p.ShardRoots[shardIdx] {
		return nil, &MismatchError{Level: rootLevel, Index: 0, Reason: "root disagrees with its attested digest"}
	}
	if len(p.Chain) != rootLevel {
		return nil, fmt.Errorf("proof: chain has %d levels, layout needs %d", len(p.Chain), rootLevel)
	}

	key, err := DeriveShardKey(masterKey, shardIdx)
	if err != nil {
		return nil, err
	}
	w, err := NewWalker(params.Enc, params.Tree, key, params.MACWidth)
	if err != nil {
		return nil, err
	}

	// Index of the path line at each level, bottom-up.
	d := localAddr / LineBytes
	idxs := make([]uint64, rootLevel)
	idxs[0], _ = geom.EncSlot(d)
	for l := 0; l < rootLevel-1; l++ {
		idxs[l+1], _ = geom.ParentSlot(l, idxs[l])
	}

	// Walk the chain top-down: each level's block is authenticated by the
	// minor counter its parent holds for it, starting from the root.
	parent, err := w.SpecAt(rootLevel).Decode(p.Root)
	if err != nil {
		return nil, &MismatchError{Level: rootLevel, Index: 0, Reason: fmt.Sprintf("undecodable root line: %v", err)}
	}
	var blk counters.Block
	for l := rootLevel - 1; l >= 0; l-- {
		_, slot := geom.ParentSlot(l, idxs[l])
		pv := parent.Value(slot)
		if p.Chain[l] == nil {
			// A missing line is legitimate only before its first write,
			// i.e. while the parent's counter for it is still zero.
			if pv != 0 {
				return nil, &MismatchError{Level: l, Index: idxs[l], Reason: "line absent but parent counter is non-zero"}
			}
			blk = w.SpecAt(l).New()
		} else {
			blk, err = w.DecodeVerify(l, idxs[l], p.Chain[l], pv)
			if err != nil {
				return nil, err
			}
		}
		parent = blk
	}

	// parent is now the encryption-counter block; authenticate and decrypt
	// the data line under its minor counter.
	_, slot := geom.EncSlot(d)
	ctr := parent.Value(slot)
	if p.Line == nil {
		if ctr != 0 {
			return nil, &MismatchError{Level: -1, Index: d, Reason: "data line absent but encryption counter is non-zero"}
		}
		return make([]byte, LineBytes), nil
	}
	if len(p.Line) != LineBytes {
		return nil, fmt.Errorf("proof: data line is %d bytes, want %d", len(p.Line), LineBytes)
	}
	if err := w.VerifyData(p.Line, ctr, localAddr, p.LineMAC); err != nil {
		return nil, err
	}
	cipher, err := aesctr.New(key)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, LineBytes)
	if err := cipher.XOR(plain, p.Line, localAddr, ctr); err != nil {
		return nil, err
	}
	return plain, nil
}
