// Package proof makes reads verifiable by parties that do not trust the
// server. It has three layers:
//
//  1. Walker — the pure tree-walk verification shared by the engine
//     (internal/secmem delegates its MAC-chain checks here) and by
//     client-side verifiers. A Walker holds only derived key material and
//     counter specs; it never touches storage, so the same code that the
//     memory controller runs on-chip runs unchanged inside an auditor.
//  2. Proof — a self-contained witness for one read: the ciphertext, its
//     MAC, and the counter line at every tree level on its verification
//     path, up to the owning shard's root. Verify recomputes the whole
//     walk from the master key and accepts only if every MAC matches —
//     zero server trust.
//  3. Authority / transparency log — an Ed25519-signed append-only log of
//     epoch roots with RFC-6962-style consistency proofs between epochs,
//     so a server that ever forks or rewrites its history is caught by
//     any auditor comparing two signed heads.
//
// The trust model is explicit: the verifier holds the AES master key (it
// is the data owner; the server is untrusted storage), plus the
// authority's Ed25519 public key (pinned on first contact). The package
// deliberately imports neither internal/secmem nor internal/shard, so a
// thin client links only the crypto and codec layers.
package proof

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"github.com/securemem/morphtree/internal/counters"
	"github.com/securemem/morphtree/internal/mac"
)

// LineBytes is the cacheline granularity, mirroring the engine.
const LineBytes = counters.LineBytes

// MismatchError reports a failed proof verification: some link of the MAC
// chain does not match what the key material demands. It is the client-side
// analogue of secmem.IntegrityError (the engine converts between the two at
// its boundary so wire behavior is unchanged).
type MismatchError struct {
	// Level is the failing verification level: -1 for the data line,
	// 0 for encryption counters, 1.. for tree levels, and the root level
	// for a root that disagrees with its published digest.
	Level int
	// Index is the failing line's index within its level.
	Index uint64
	// Reason describes the mismatch.
	Reason string
}

// Error implements error.
func (e *MismatchError) Error() string {
	what := "data line"
	if e.Level == 0 {
		what = "encryption-counter line"
	} else if e.Level > 0 {
		what = fmt.Sprintf("tree level-%d line", e.Level)
	}
	return fmt.Sprintf("proof: verification mismatch at %s %d: %s", what, e.Index, e.Reason)
}

// Walker verifies individual links of a counter-tree MAC chain. It is
// pure: no storage, no caching, no locks — given a raw line and the
// parent counter value that should authenticate it, DecodeVerify either
// returns the decoded block or a typed *MismatchError. Both the secmem
// engine and Proof.Verify drive their walks through one of these.
type Walker struct {
	enc   counters.Spec
	tree  []counters.Spec
	keyer *mac.Keyer
}

// NewWalker builds a walker for one engine's counter organization and
// (shard-level) key. width 0 defaults to mac.Width56, matching secmem.
func NewWalker(enc counters.Spec, tree []counters.Spec, key []byte, width mac.Width) (*Walker, error) {
	if len(tree) == 0 {
		return nil, fmt.Errorf("proof: tree spec schedule is empty")
	}
	if width == 0 {
		width = mac.Width56
	}
	keyer, err := mac.New(key, width)
	if err != nil {
		return nil, err
	}
	return &Walker{enc: enc, tree: tree, keyer: keyer}, nil
}

// SpecAt returns the counter organization at a level (0 = encryption
// counters; the tree schedule's last element repeats for deeper levels).
func (w *Walker) SpecAt(level int) counters.Spec {
	if level == 0 {
		return w.enc
	}
	i := level - 1
	if i >= len(w.tree) {
		i = len(w.tree) - 1
	}
	return w.tree[i]
}

// DecodeVerify unpacks a stored counter line and checks its MAC against
// the expected parent counter value, returning a *MismatchError on any
// disagreement. This is the per-link step of the tree walk.
//
//morph:hotpath
func (w *Walker) DecodeVerify(level int, idx uint64, raw []byte, parentValue uint64) (counters.Block, error) {
	blk, err := w.SpecAt(level).Decode(raw)
	if err != nil {
		return nil, &MismatchError{Level: level, Index: idx, Reason: fmt.Sprintf("undecodable line: %v", err)}
	}
	stored := blk.MAC()
	blk.SetMAC(0)
	want := w.keyer.Counter(blk.Encode(), parentValue, level, idx)
	blk.SetMAC(stored)
	if stored != want {
		return nil, &MismatchError{Level: level, Index: idx, Reason: "MAC mismatch"}
	}
	return blk, nil
}

// VerifyData checks a data line's MAC under its encryption counter and
// line-local address, returning a *MismatchError on disagreement.
//
//morph:hotpath
func (w *Walker) VerifyData(ciphertext []byte, counter, addr, storedMAC uint64) error {
	if w.keyer.Data(ciphertext, counter, addr) != storedMAC {
		return &MismatchError{Level: -1, Index: addr / LineBytes, Reason: "MAC mismatch"}
	}
	return nil
}

// DeriveShardKey derives shard i's sub-key from the master key with
// HMAC-SHA256(master, "morphtree/shard/<i>"), truncated to the master's
// AES key length. It is the single definition of the derivation both the
// serving stack (internal/shard) and client-side verifiers share: a proof
// for shard i verifies under exactly the key the engine sealed it with.
//
//morph:secret
func DeriveShardKey(master []byte, i int) ([]byte, error) {
	switch len(master) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("proof: master key must be 16, 24, or 32 bytes, got %d", len(master))
	}
	h := hmac.New(sha256.New, master)
	fmt.Fprintf(h, "morphtree/shard/%d", i)
	return h.Sum(nil)[:len(master)], nil
}

// DeriveTenantKey derives tenant id's key-domain sub-key from an engine
// key with HMAC-SHA256(engineKey, "morphtree/tenant/<id>"), truncated to
// the engine key's AES length. Layered over DeriveShardKey it gives each
// (shard, tenant) pair an independent data-line key domain: tenant data is
// sealed under a key no other tenant's reads can reproduce, so a
// cross-tenant read fails closed as a MAC mismatch even though every
// tenant shares the same physical store and integrity tree. It lives here,
// next to DeriveShardKey, so client-side verifiers holding the master key
// can reproduce the full two-step derivation without importing the serving
// stack.
//
//morph:secret
func DeriveTenantKey(engineKey []byte, id string) ([]byte, error) {
	switch len(engineKey) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("proof: engine key must be 16, 24, or 32 bytes, got %d", len(engineKey))
	}
	if id == "" {
		return nil, fmt.Errorf("proof: tenant id must be non-empty")
	}
	h := hmac.New(sha256.New, engineKey)
	fmt.Fprintf(h, "morphtree/tenant/%s", id)
	return h.Sum(nil)[:len(engineKey)], nil
}

// Locate maps a line-aligned global address to (shard, local address)
// under the round-robin line interleave: global line d lives in shard
// d % shards at local line d / shards. It mirrors shard.Sharded.Locate so
// a verifier can reproduce the server's address routing without importing
// the serving stack.
func Locate(memoryBytes uint64, shards int, addr uint64) (int, uint64, error) {
	if shards < 1 {
		return 0, 0, fmt.Errorf("proof: shard count %d must be >= 1", shards)
	}
	if addr%LineBytes != 0 {
		return 0, 0, fmt.Errorf("proof: address %#x is not line-aligned", addr)
	}
	if addr >= memoryBytes {
		return 0, 0, fmt.Errorf("proof: address %#x beyond capacity %#x", addr, memoryBytes)
	}
	d := addr / LineBytes
	n := uint64(shards)
	return int(d % n), (d / n) * LineBytes, nil
}
