// Package bmt implements a Bonsai-style Merkle tree (a MAC tree): the
// alternative integrity-tree class the paper contrasts counter trees
// against (Section VIII-B1). Each 64-byte tree node holds 8 x 64-bit MACs
// of its children, so the arity is fixed at 8 regardless of the counter
// organization — which is exactly why MAC trees cannot benefit from
// morphable counters and end up far larger than a 128-ary MorphTree.
//
// The tree authenticates an array of 64-byte leaf lines (in a secure
// memory: the encryption-counter lines). Leaves and nodes live in
// untrusted storage; only the root MAC is on-chip. Update and Verify are
// the two operations a memory controller needs.
package bmt

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Arity is the MAC-tree fan-in: 8 x 64-bit MACs fill a 64-byte node. The
// paper notes 32-bit MACs (16-ary) "do not provide sufficient security".
const Arity = 8

// LineBytes is the leaf/node granularity.
const LineBytes = 64

// TamperError reports a failed verification.
type TamperError struct {
	// Level is 0 for a leaf, 1.. for internal node levels.
	Level int
	// Index is the failing line's index within its level.
	Index uint64
}

// Error implements error.
func (e *TamperError) Error() string {
	what := "leaf"
	if e.Level > 0 {
		what = fmt.Sprintf("level-%d node", e.Level)
	}
	return fmt.Sprintf("bmt: integrity violation at %s %d", what, e.Index)
}

// Tree is a Bonsai Merkle tree over a fixed number of leaf lines.
type Tree struct {
	key    []byte
	leaves uint64
	// levels[0] is the leaf array; levels[1..] are MAC nodes. All of it
	// is untrusted storage an adversary may modify.
	levels [][]byte
	// counts[l] is the number of lines at level l.
	counts []uint64
	// root is the trusted on-chip MAC of the top node.
	root [8]byte
}

// New builds a zeroed tree over `leaves` 64-byte lines.
func New(key []byte, leaves uint64) (*Tree, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("bmt: empty key")
	}
	if leaves == 0 {
		return nil, fmt.Errorf("bmt: zero leaves")
	}
	t := &Tree{key: bytes.Clone(key), leaves: leaves}
	count := leaves
	for {
		t.counts = append(t.counts, count)
		t.levels = append(t.levels, make([]byte, count*LineBytes))
		if count == 1 {
			break
		}
		count = (count + Arity - 1) / Arity
	}
	// Seal the zeroed tree bottom-up so fresh state verifies.
	for lvl := 1; lvl < len(t.levels); lvl++ {
		for idx := uint64(0); idx < t.counts[lvl]; idx++ {
			t.refreshNode(lvl, idx)
		}
	}
	t.root = t.mac(len(t.levels)-1, 0, t.line(len(t.levels)-1, 0))
	return t, nil
}

// Leaves returns the leaf count.
func (t *Tree) Leaves() uint64 { return t.leaves }

// Height returns the number of MAC levels above the leaves.
func (t *Tree) Height() int { return len(t.levels) - 1 }

// NodeBytes returns the total MAC-node storage (the integrity tree's
// footprint — compare Geometry of a counter tree).
func (t *Tree) NodeBytes() uint64 {
	var total uint64
	for lvl := 1; lvl < len(t.levels); lvl++ {
		total += t.counts[lvl] * LineBytes
	}
	return total
}

// line returns the storage slice of a line.
func (t *Tree) line(level int, idx uint64) []byte {
	return t.levels[level][idx*LineBytes : (idx+1)*LineBytes]
}

// mac computes the 64-bit truncated MAC of a line, bound to its position.
func (t *Tree) mac(level int, idx uint64, content []byte) [8]byte {
	h := hmac.New(sha256.New, t.key)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(level))
	binary.LittleEndian.PutUint64(hdr[8:], idx)
	h.Write(hdr[:])
	h.Write(content)
	var out [8]byte
	copy(out[:], h.Sum(nil))
	return out
}

// refreshNode recomputes every MAC slot of node (level, idx) from its
// children at level-1; used to seal the initial zeroed tree.
func (t *Tree) refreshNode(level int, idx uint64) {
	node := t.line(level, idx)
	for slot := 0; slot < Arity; slot++ {
		child := idx*Arity + uint64(slot)
		if child >= t.counts[level-1] {
			for i := 0; i < 8; i++ {
				node[slot*8+i] = 0
			}
			continue
		}
		m := t.mac(level-1, child, t.line(level-1, child))
		copy(node[slot*8:], m[:])
	}
}

// Update writes a leaf line and propagates MAC updates to the root.
func (t *Tree) Update(idx uint64, line []byte) error {
	if idx >= t.leaves {
		return fmt.Errorf("bmt: leaf %d out of range", idx)
	}
	if len(line) != LineBytes {
		return fmt.Errorf("bmt: leaf must be %d bytes, got %d", LineBytes, len(line))
	}
	copy(t.line(0, idx), line)
	child := idx
	for lvl := 1; lvl < len(t.levels); lvl++ {
		parent := child / Arity
		slot := int(child % Arity)
		m := t.mac(lvl-1, child, t.line(lvl-1, child))
		copy(t.line(lvl, parent)[slot*8:], m[:])
		child = parent
	}
	t.root = t.mac(len(t.levels)-1, 0, t.line(len(t.levels)-1, 0))
	return nil
}

// Verify checks a leaf against the MAC chain up to the on-chip root and
// returns its contents.
func (t *Tree) Verify(idx uint64) ([]byte, error) {
	if idx >= t.leaves {
		return nil, fmt.Errorf("bmt: leaf %d out of range", idx)
	}
	top := len(t.levels) - 1
	if t.mac(top, 0, t.line(top, 0)) != t.root {
		return nil, &TamperError{Level: top, Index: 0}
	}
	// Walk down: each node's stored MAC of its child must match the
	// child's actual content.
	path := t.pathDown(idx)
	for i := len(path) - 1; i >= 1; i-- {
		lvl, node := path[i][0], path[i][1]
		childLvl, child := path[i-1][0], path[i-1][1]
		slot := int(child % Arity)
		want := t.mac(int(childLvl), child, t.line(int(childLvl), child))
		got := t.line(int(lvl), node)[slot*8 : slot*8+8]
		if !bytes.Equal(want[:], got) {
			return nil, &TamperError{Level: int(childLvl), Index: child}
		}
	}
	return bytes.Clone(t.line(0, idx)), nil
}

// pathDown lists (level, index) from the leaf to the root.
func (t *Tree) pathDown(idx uint64) [][2]uint64 {
	var path [][2]uint64
	cur := idx
	for lvl := 0; lvl < len(t.levels); lvl++ {
		path = append(path, [2]uint64{uint64(lvl), cur})
		cur /= Arity
	}
	return path
}

// Tamper flips a bit in untrusted storage (adversary interface).
func (t *Tree) Tamper(level int, idx uint64, byteOff int, bit uint) error {
	if level < 0 || level >= len(t.levels) || idx >= t.counts[level] {
		return fmt.Errorf("bmt: no line at level %d index %d", level, idx)
	}
	t.line(level, idx)[byteOff%LineBytes] ^= 1 << (bit % 8)
	return nil
}

// Snapshot captures a leaf's verification path (for replay attacks).
func (t *Tree) Snapshot(idx uint64) [][]byte {
	var out [][]byte
	for _, p := range t.pathDown(idx) {
		out = append(out, bytes.Clone(t.line(int(p[0]), p[1])))
	}
	return out
}

// Replay restores a previously captured path into untrusted storage.
func (t *Tree) Replay(idx uint64, snapshot [][]byte) error {
	path := t.pathDown(idx)
	if len(snapshot) != len(path) {
		return fmt.Errorf("bmt: snapshot has %d lines, path needs %d", len(snapshot), len(path))
	}
	for i, p := range path {
		copy(t.line(int(p[0]), p[1]), snapshot[i])
	}
	return nil
}
