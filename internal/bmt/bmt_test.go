package bmt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

var key = []byte("merkle-key-01234")

func mustTree(t *testing.T, leaves uint64) *Tree {
	t.Helper()
	tr, err := New(key, leaves)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func leaf(seed byte) []byte {
	l := make([]byte, LineBytes)
	for i := range l {
		l[i] = seed ^ byte(i)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Error("empty key must fail")
	}
	if _, err := New(key, 0); err == nil {
		t.Error("zero leaves must fail")
	}
}

func TestFreshTreeVerifies(t *testing.T) {
	tr := mustTree(t, 100)
	for _, idx := range []uint64{0, 1, 63, 64, 99} {
		got, err := tr.Verify(idx)
		if err != nil {
			t.Fatalf("fresh leaf %d: %v", idx, err)
		}
		if !bytes.Equal(got, make([]byte, LineBytes)) {
			t.Fatalf("fresh leaf %d not zero", idx)
		}
	}
}

func TestUpdateVerifyRoundTrip(t *testing.T) {
	tr := mustTree(t, 1000)
	for i := uint64(0); i < 50; i++ {
		if err := tr.Update(i*19%1000, leaf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		got, err := tr.Verify(i * 19 % 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, leaf(byte(i))) {
			t.Fatalf("leaf %d mismatch", i*19%1000)
		}
	}
}

func TestHeightAndStorage(t *testing.T) {
	// 8-ary tree over 4096 leaves: 512 + 64 + 8 + 1 nodes, 4 levels.
	tr := mustTree(t, 4096)
	if tr.Height() != 4 {
		t.Fatalf("height = %d, want 4", tr.Height())
	}
	if want := uint64(512+64+8+1) * LineBytes; tr.NodeBytes() != want {
		t.Fatalf("node storage = %d, want %d", tr.NodeBytes(), want)
	}
	// The paper's point: an 8-ary MAC tree over the same leaves is far
	// taller than a 128-ary counter tree (4096 leaves -> 2 levels).
	if tr.Height() <= 2 {
		t.Fatal("MAC tree unexpectedly shallow")
	}
}

func TestBoundsChecked(t *testing.T) {
	tr := mustTree(t, 10)
	if err := tr.Update(10, leaf(0)); err == nil {
		t.Error("out-of-range update must fail")
	}
	if err := tr.Update(0, make([]byte, 10)); err == nil {
		t.Error("short leaf must fail")
	}
	if _, err := tr.Verify(10); err == nil {
		t.Error("out-of-range verify must fail")
	}
	if err := tr.Tamper(9, 0, 0, 0); err == nil {
		t.Error("tamper beyond levels must fail")
	}
}

func TestDetectsLeafTamper(t *testing.T) {
	tr := mustTree(t, 256)
	tr.Update(17, leaf(1))
	if err := tr.Tamper(0, 17, 5, 2); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Verify(17)
	var te *TamperError
	if !errors.As(err, &te) {
		t.Fatalf("tamper undetected: %v", err)
	}
	if te.Level != 0 || te.Index != 17 {
		t.Fatalf("violation at %d/%d, want 0/17", te.Level, te.Index)
	}
}

func TestDetectsNodeTamper(t *testing.T) {
	tr := mustTree(t, 256)
	tr.Update(17, leaf(1))
	if err := tr.Tamper(1, 17/8, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Verify(17); err == nil {
		t.Fatal("internal-node tamper undetected")
	}
}

func TestDetectsReplay(t *testing.T) {
	tr := mustTree(t, 256)
	tr.Update(5, leaf(1))
	old := tr.Snapshot(5)
	tr.Update(5, leaf(2))
	if err := tr.Replay(5, old); err != nil {
		t.Fatal(err)
	}
	// The replayed path is internally consistent, but the on-chip root
	// has moved on.
	if _, err := tr.Verify(5); err == nil {
		t.Fatal("full-path replay undetected")
	}
}

func TestReplayValidation(t *testing.T) {
	tr := mustTree(t, 64)
	if err := tr.Replay(0, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("short snapshot must fail")
	}
}

func TestSiblingsUnaffectedByUpdate(t *testing.T) {
	tr := mustTree(t, 64)
	tr.Update(1, leaf(9))
	tr.Update(2, leaf(8))
	tr.Update(1, leaf(7)) // overwrite
	for idx, want := range map[uint64][]byte{1: leaf(7), 2: leaf(8), 3: make([]byte, 64)} {
		got, err := tr.Verify(idx)
		if err != nil {
			t.Fatalf("leaf %d: %v", idx, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("leaf %d corrupted by sibling update", idx)
		}
	}
}

func TestNonPowerOfArityLeaves(t *testing.T) {
	// 9 leaves: level 1 has 2 nodes (one with a single child), level 2
	// is the root node.
	tr := mustTree(t, 9)
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
	tr.Update(8, leaf(3))
	got, err := tr.Verify(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, leaf(3)) {
		t.Fatal("ragged-edge leaf mismatch")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := mustTree(t, 1)
	if tr.Height() != 0 {
		// With one leaf, the leaf level is the top; the root MAC
		// covers it directly... New always adds at least the leaf
		// level; counts[0] == 1 stops immediately.
		t.Fatalf("height = %d, want 0", tr.Height())
	}
	tr.Update(0, leaf(1))
	if _, err := tr.Verify(0); err != nil {
		t.Fatal(err)
	}
	tr.Tamper(0, 0, 0, 0)
	if _, err := tr.Verify(0); err == nil {
		t.Fatal("single-leaf tamper undetected")
	}
}

// Property: after arbitrary update sequences, every leaf verifies and
// returns the reference model's contents; one random bit flip anywhere on a
// written leaf's path is detected.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		leaves := uint64(1 + rng.Intn(300))
		tr, err := New(key, leaves)
		if err != nil {
			return false
		}
		ref := map[uint64][]byte{}
		for op := 0; op < 100; op++ {
			idx := uint64(rng.Intn(int(leaves)))
			l := leaf(byte(rng.Intn(256)))
			if tr.Update(idx, l) != nil {
				return false
			}
			ref[idx] = l
		}
		for idx, want := range ref {
			got, err := tr.Verify(idx)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		// Flip one bit on a written leaf's path; must be detected.
		var victim uint64
		for idx := range ref {
			victim = idx
			break
		}
		lvl := rng.Intn(tr.Height() + 1)
		nodeIdx := victim
		for l := 0; l < lvl; l++ {
			nodeIdx /= Arity
		}
		if tr.Tamper(lvl, nodeIdx, rng.Intn(64), uint(rng.Intn(8))) != nil {
			return false
		}
		_, err = tr.Verify(victim)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
