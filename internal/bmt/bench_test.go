package bmt

import "testing"

func BenchmarkUpdate(b *testing.B) {
	tr, err := New([]byte("merkle-key-01234"), 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	l := make([]byte, LineBytes)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tr.Update(uint64(i)%(1<<16), l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	tr, err := New([]byte("merkle-key-01234"), 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	l := make([]byte, LineBytes)
	for i := uint64(0); i < 1024; i++ {
		tr.Update(i, l)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Verify(uint64(i) % 1024); err != nil {
			b.Fatal(err)
		}
	}
}
