// Package workloads catalogs the paper's evaluation workloads: 16
// memory-intensive SPEC 2006 benchmarks and 6 GAP graph kernels (Table II),
// plus the six mixed workloads. Each benchmark carries its published
// read/write PKI and memory footprint, and an access-pattern class chosen
// to reproduce its counter-usage behavior (DESIGN.md, substitutions):
//
//   - Stream: regular sweeps (libquantum, gcc, lbm, ...) — uniform counter
//     usage within write-heavy regions.
//   - Random: pointer chasing over large working sets (mcf, omnetpp,
//     pr/cc-twit) — sparse counter usage.
//   - HotCold: hot pages interspersed with cold ones (web graphs,
//     cactusADM) — sparse tree-counter usage.
//   - HotColdSkew: the neither-sparse-nor-uniform middle regime
//     (GemsFDTD), where both ZCC and rebasing struggle.
//   - Burst: short sequential runs from random bases (bc kernels, bzip2).
package workloads

import (
	"fmt"

	"github.com/securemem/morphtree/internal/invariant"
	"github.com/securemem/morphtree/internal/trace"
)

// Pattern classifies a benchmark's memory-access behavior.
type Pattern int

// Pattern kinds.
const (
	Stream Pattern = iota
	Random
	HotCold
	HotColdSkew
	Burst
	// Adversarial is Section V's pathological overflow-forcing writer
	// (not part of Table II; used by the denial-of-service study).
	Adversarial
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Random:
		return "random"
	case HotCold:
		return "hotcold"
	case HotColdSkew:
		return "hotcold-skew"
	case Burst:
		return "burst"
	case Adversarial:
		return "adversarial"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// AdversaryBenchmark returns Section V's pathological writer: a
// write-heavy program crafted to force a counter overflow (and its
// re-encryption storm) every ~67 writes.
func AdversaryBenchmark() Benchmark {
	return Benchmark{
		Name: "adversary", Suite: "ATTACK",
		ReadPKI: 10, WritePKI: 40,
		Footprint: gbf(0.5), Pattern: Adversarial,
	}
}

// AttackMix pairs one adversary core with victim copies of a benchmark —
// the denial-of-service scenario Section V's fairness discussion targets.
func AttackMix(victim Benchmark, cores int) Workload {
	w := Workload{Name: "attack-" + victim.Name, Suite: "ATTACK"}
	w.Cores = append(w.Cores, AdversaryBenchmark())
	for i := 1; i < cores; i++ {
		w.Cores = append(w.Cores, victim)
	}
	return w
}

// Benchmark is one program of Table II. Footprint is the paper's 4-core
// total; the per-core footprint is a quarter of it.
type Benchmark struct {
	Name      string
	Suite     string // "SPEC" or "GAP"
	ReadPKI   float64
	WritePKI  float64
	Footprint uint64 // bytes, 4-core total as reported in Table II
	Pattern   Pattern

	// customGen, when set, replaces the synthetic pattern generator
	// (recorded-trace replay); customLines is its footprint in lines.
	customGen   func(seed uint64) trace.Generator
	customLines uint64
}

// FromTrace builds a benchmark that replays a recorded access trace
// (cycling when exhausted) instead of a synthetic pattern. Each core gets
// its own replay cursor.
func FromTrace(name string, accesses []trace.Access) (Benchmark, error) {
	if _, err := trace.NewReplay(accesses); err != nil {
		return Benchmark{}, err
	}
	var maxLine uint64
	for _, a := range accesses {
		if a.Line > maxLine {
			maxLine = a.Line
		}
	}
	recorded := append([]trace.Access(nil), accesses...)
	return Benchmark{
		Name:  name,
		Suite: "TRACE",
		customGen: func(seed uint64) trace.Generator {
			g := invariant.Must(trace.NewReplay(recorded)) // validated above
			// Offset cores so rate-mode replays do not lockstep.
			for i := uint64(0); i < seed%uint64(len(recorded)); i++ {
				g.Next()
			}
			return g
		},
		customLines: maxLine + 1,
	}, nil
}

// gbf converts a Table II footprint in GB to bytes.
func gbf(x float64) uint64 { return uint64(x * float64(1<<30)) }

// Table2 is the paper's workload table, in paper order.
var Table2 = []Benchmark{
	{Name: "mcf", Suite: "SPEC", ReadPKI: 69, WritePKI: 2, Footprint: gbf(7.5), Pattern: Random},
	{Name: "omnetpp", Suite: "SPEC", ReadPKI: 18, WritePKI: 9, Footprint: gbf(0.6), Pattern: Random},
	{Name: "xalancbmk", Suite: "SPEC", ReadPKI: 4, WritePKI: 3, Footprint: gbf(1.1), Pattern: Random},
	{Name: "GemsFDTD", Suite: "SPEC", ReadPKI: 19, WritePKI: 8, Footprint: gbf(3.1), Pattern: HotColdSkew},
	{Name: "milc", Suite: "SPEC", ReadPKI: 19, WritePKI: 7, Footprint: gbf(2.3), Pattern: Stream},
	{Name: "soplex", Suite: "SPEC", ReadPKI: 28, WritePKI: 6, Footprint: gbf(1.0), Pattern: Burst},
	{Name: "bzip2", Suite: "SPEC", ReadPKI: 5, WritePKI: 1.4, Footprint: gbf(1.2), Pattern: Burst},
	{Name: "zeusmp", Suite: "SPEC", ReadPKI: 5, WritePKI: 1.9, Footprint: gbf(1.9), Pattern: Stream},
	{Name: "sphinx", Suite: "SPEC", ReadPKI: 14, WritePKI: 1.4, Footprint: gbf(0.1), Pattern: Stream},
	{Name: "leslie3d", Suite: "SPEC", ReadPKI: 16, WritePKI: 5, Footprint: gbf(0.3), Pattern: Stream},
	{Name: "libquantum", Suite: "SPEC", ReadPKI: 24, WritePKI: 10, Footprint: gbf(0.1), Pattern: Stream},
	{Name: "gcc", Suite: "SPEC", ReadPKI: 48, WritePKI: 53, Footprint: gbf(0.7), Pattern: Stream},
	{Name: "lbm", Suite: "SPEC", ReadPKI: 28, WritePKI: 21, Footprint: gbf(1.6), Pattern: Stream},
	{Name: "wrf", Suite: "SPEC", ReadPKI: 4, WritePKI: 2, Footprint: gbf(1.6), Pattern: Stream},
	{Name: "cactusADM", Suite: "SPEC", ReadPKI: 5, WritePKI: 1.5, Footprint: gbf(1.6), Pattern: HotCold},
	{Name: "dealII", Suite: "SPEC", ReadPKI: 1.7, WritePKI: 0.5, Footprint: gbf(0.2), Pattern: Burst},
	{Name: "bc-twit", Suite: "GAP", ReadPKI: 61, WritePKI: 24, Footprint: gbf(9.3), Pattern: Burst},
	{Name: "pr-twit", Suite: "GAP", ReadPKI: 94, WritePKI: 4, Footprint: gbf(11.2), Pattern: Random},
	{Name: "cc-twit", Suite: "GAP", ReadPKI: 89, WritePKI: 7, Footprint: gbf(7.0), Pattern: Random},
	{Name: "bc-web", Suite: "GAP", ReadPKI: 13, WritePKI: 7, Footprint: gbf(12.0), Pattern: HotCold},
	{Name: "pr-web", Suite: "GAP", ReadPKI: 16, WritePKI: 3, Footprint: gbf(12.2), Pattern: HotCold},
	{Name: "cc-web", Suite: "GAP", ReadPKI: 9, WritePKI: 1.5, Footprint: gbf(7.8), Pattern: HotCold},
}

// ByName returns the Table II benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Table2 {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Workload is one evaluation run: one benchmark per core. Rate mode runs
// the same benchmark on all cores; mixes combine four different ones.
type Workload struct {
	Name  string
	Suite string // "SPEC", "GAP", or "MIX"
	Cores []Benchmark
}

// Rate builds a rate-mode workload: n copies of one benchmark.
func Rate(b Benchmark, n int) Workload {
	w := Workload{Name: b.Name, Suite: b.Suite}
	for i := 0; i < n; i++ {
		w.Cores = append(w.Cores, b)
	}
	return w
}

// mixDefs are the six mixed workloads ("a random combination of
// benchmarks", Section VI); fixed here for reproducibility.
var mixDefs = [][4]string{
	{"mcf", "libquantum", "GemsFDTD", "bzip2"},
	{"omnetpp", "gcc", "milc", "wrf"},
	{"xalancbmk", "lbm", "soplex", "sphinx"},
	{"mcf", "bc-twit", "leslie3d", "dealII"},
	{"pr-twit", "zeusmp", "omnetpp", "cactusADM"},
	{"cc-web", "gcc", "mcf", "libquantum"},
}

// Mixes returns mix1..mix6 for a 4-core system.
func Mixes() []Workload {
	out := make([]Workload, 0, len(mixDefs))
	for i, def := range mixDefs {
		w := Workload{Name: fmt.Sprintf("mix%d", i+1), Suite: "MIX"}
		for _, name := range def {
			// mixDefs only names benchmarks from the tables above.
			w.Cores = append(w.Cores, invariant.Must(ByName(name)))
		}
		out = append(out, w)
	}
	return out
}

// All returns the full evaluation set in paper order: 16 SPEC, 6 mixes,
// 6 GAP — the "28 memory intensive workloads".
func All(cores int) []Workload {
	var out []Workload
	for _, b := range Table2 {
		if b.Suite == "SPEC" {
			out = append(out, Rate(b, cores))
		}
	}
	out = append(out, Mixes()...)
	for _, b := range Table2 {
		if b.Suite == "GAP" {
			out = append(out, Rate(b, cores))
		}
	}
	return out
}

// Generator builds the access generator for one core of a workload.
// footprintScale shrinks Table II footprints to simulation scale; seed
// should differ per core so rate-mode copies do not lockstep.
func (b Benchmark) Generator(footprintScale float64, cores int, seed uint64) trace.Generator {
	if b.customGen != nil {
		return b.customGen(seed)
	}
	perCore := float64(b.Footprint) / float64(cores) * footprintScale
	lines := uint64(perCore / 64)
	if lines < trace.LinesPerPage {
		lines = trace.LinesPerPage
	}
	rates := trace.NewRates(b.ReadPKI, b.WritePKI)
	switch b.Pattern {
	case Stream:
		// Offset the start so rate-mode copies do not sweep in phase.
		g := trace.NewStream(lines, rates, seed)
		for i := uint64(0); i < seed%lines; i++ {
			g.Next()
		}
		return g
	case Random:
		return trace.NewRandom(lines, rates, seed)
	case HotCold:
		return trace.NewHotCold(lines, rates, 0.05, 0.85, false, seed)
	case HotColdSkew:
		return trace.NewHotCold(lines, rates, 0.25, 0.80, true, seed)
	case Burst:
		return trace.NewBurst(lines, rates, 16, seed)
	case Adversarial:
		return trace.NewAdversary(lines, rates, seed)
	}
	panic(invariant.Violationf("workloads: unhandled pattern %v", b.Pattern))
}

// FootprintLines returns a benchmark's per-core footprint in lines at a
// given scale.
func (b Benchmark) FootprintLines(footprintScale float64, cores int) uint64 {
	if b.customGen != nil {
		return b.customLines
	}
	lines := uint64(float64(b.Footprint) / float64(cores) * footprintScale / 64)
	if lines < trace.LinesPerPage {
		lines = trace.LinesPerPage
	}
	return lines
}
