package workloads

import (
	"testing"

	"github.com/securemem/morphtree/internal/trace"
)

func TestTable2Catalog(t *testing.T) {
	if len(Table2) != 22 {
		t.Fatalf("Table II has %d benchmarks, want 22", len(Table2))
	}
	spec, gap := 0, 0
	for _, b := range Table2 {
		switch b.Suite {
		case "SPEC":
			spec++
		case "GAP":
			gap++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		if b.ReadPKI <= 0 || b.Footprint == 0 {
			t.Errorf("%s: incomplete entry %+v", b.Name, b)
		}
	}
	if spec != 16 || gap != 6 {
		t.Fatalf("suite counts: %d SPEC, %d GAP, want 16/6", spec, gap)
	}
}

func TestTable2SpotValues(t *testing.T) {
	// Pin a few entries against the paper's table.
	mcf, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if mcf.ReadPKI != 69 || mcf.WritePKI != 2 || mcf.Footprint != uint64(7.5*float64(1<<30)) {
		t.Errorf("mcf = %+v", mcf)
	}
	gcc, _ := ByName("gcc")
	if gcc.ReadPKI != 48 || gcc.WritePKI != 53 {
		t.Errorf("gcc = %+v", gcc)
	}
	pr, _ := ByName("pr-web")
	if pr.Suite != "GAP" || pr.ReadPKI != 16 {
		t.Errorf("pr-web = %+v", pr)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestAll28Workloads(t *testing.T) {
	all := All(4)
	if len(all) != 28 {
		t.Fatalf("All = %d workloads, want 28 (16 SPEC + 6 MIX + 6 GAP)", len(all))
	}
	for _, w := range all {
		if len(w.Cores) != 4 {
			t.Errorf("%s has %d cores", w.Name, len(w.Cores))
		}
	}
	// Paper order: SPEC, then mixes, then GAP.
	if all[0].Name != "mcf" || all[16].Name != "mix1" || all[22].Name != "bc-twit" {
		t.Fatalf("ordering wrong: %s, %s, %s", all[0].Name, all[16].Name, all[22].Name)
	}
}

func TestRateMode(t *testing.T) {
	b, _ := ByName("lbm")
	w := Rate(b, 4)
	for _, c := range w.Cores {
		if c.Name != "lbm" {
			t.Fatal("rate mode must replicate the benchmark")
		}
	}
}

func TestMixesAreValid(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 6 {
		t.Fatalf("%d mixes, want 6", len(mixes))
	}
	for _, m := range mixes {
		if m.Suite != "MIX" || len(m.Cores) != 4 {
			t.Errorf("mix %s malformed", m.Name)
		}
	}
}

func TestGeneratorConstruction(t *testing.T) {
	for _, b := range Table2 {
		g := b.Generator(1.0/64, 4, 1)
		lines := b.FootprintLines(1.0/64, 4)
		for i := 0; i < 1000; i++ {
			a := g.Next()
			if a.Line >= lines {
				t.Fatalf("%s: line %d beyond footprint %d", b.Name, a.Line, lines)
			}
		}
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	b, _ := ByName("GemsFDTD")
	g1 := b.Generator(1.0/64, 4, 5)
	g2 := b.Generator(1.0/64, 4, 5)
	for i := 0; i < 500; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTinyFootprintClamped(t *testing.T) {
	b, _ := ByName("sphinx") // 0.1 GB total
	if lines := b.FootprintLines(1e-9, 4); lines < 64 {
		t.Fatalf("footprint clamp failed: %d", lines)
	}
}

func TestAdversaryBenchmark(t *testing.T) {
	adv := AdversaryBenchmark()
	if adv.Pattern != Adversarial || adv.Suite != "ATTACK" {
		t.Fatalf("adversary = %+v", adv)
	}
	g := adv.Generator(1.0/128, 4, 1)
	writes := 0
	for i := 0; i < 10000; i++ {
		if g.Next().Write {
			writes++
		}
	}
	// Write-heavy by construction (40 of 50 PKI).
	if writes < 7000 {
		t.Fatalf("adversary wrote only %d/10000", writes)
	}
}

func TestAttackMix(t *testing.T) {
	victim, _ := ByName("omnetpp")
	w := AttackMix(victim, 4)
	if len(w.Cores) != 4 {
		t.Fatalf("cores = %d", len(w.Cores))
	}
	if w.Cores[0].Name != "adversary" {
		t.Fatal("core 0 must be the adversary")
	}
	for _, c := range w.Cores[1:] {
		if c.Name != "omnetpp" {
			t.Fatal("victims must be the chosen benchmark")
		}
	}
}

func TestFromTrace(t *testing.T) {
	acc := []trace.Access{
		{Gap: 1, Write: false, Line: 5},
		{Gap: 2, Write: true, Line: 9},
	}
	b, err := FromTrace("recorded", acc)
	if err != nil {
		t.Fatal(err)
	}
	if b.FootprintLines(1, 4) != 10 {
		t.Fatalf("footprint = %d, want 10 (max line + 1)", b.FootprintLines(1, 4))
	}
	g := b.Generator(1, 4, 0) // seed 0: no offset
	if got := g.Next(); got != acc[0] {
		t.Fatalf("first = %+v", got)
	}
	if got := g.Next(); got != acc[1] {
		t.Fatalf("second = %+v", got)
	}
	if got := g.Next(); got != acc[0] {
		t.Fatalf("loop = %+v", got)
	}
	// Seeded generators start at an offset.
	g2 := b.Generator(1, 4, 1)
	if got := g2.Next(); got != acc[1] {
		t.Fatalf("seeded first = %+v", got)
	}
	if _, err := FromTrace("empty", nil); err == nil {
		t.Fatal("empty trace must fail")
	}
}
