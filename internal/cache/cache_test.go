package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	if _, err := New(0, 8, 64); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := New(1024, 0, 64); err == nil {
		t.Error("zero ways must fail")
	}
	if _, err := New(1000, 8, 64); err == nil {
		t.Error("non-divisible size must fail")
	}
	if _, err := New(3*8*64, 8, 64); err == nil {
		t.Error("non-power-of-two sets must fail")
	}
	c, err := New(128<<10, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lines() != 2048 {
		t.Errorf("128KB/8-way/64B = %d lines, want 2048", c.Lines())
	}
}

func TestHitMissFill(t *testing.T) {
	c := MustNew(8*64, 8, 64) // one set, 8 ways
	if c.Access(0, false) {
		t.Fatal("empty cache hit")
	}
	c.Fill(0, false)
	if !c.Access(0, false) {
		t.Fatal("filled line missed")
	}
	if !c.Access(63, false) {
		t.Fatal("same-line offset missed")
	}
	if c.Access(64, false) {
		t.Fatal("adjacent line hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(2*64, 2, 64) // one set, 2 ways
	c.Fill(0, false)
	c.Fill(128, false)
	c.Access(0, false) // line 0 is now MRU
	v, evicted := c.Fill(256, false)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if v.Addr != 128 {
		t.Fatalf("evicted %d, want 128 (LRU)", v.Addr)
	}
	if !c.Contains(0) || !c.Contains(256) || c.Contains(128) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(1*64, 1, 64)
	c.Fill(0, false)
	c.Access(0, true) // dirty it
	v, evicted := c.Fill(64, false)
	if !evicted || !v.Dirty || v.Addr != 0 {
		t.Fatalf("victim = %+v evicted=%v", v, evicted)
	}
	v, _ = c.Fill(128, false)
	if v.Dirty {
		t.Fatal("clean line evicted dirty")
	}
	st := c.Stats()
	if st.Evictions != 2 || st.DirtyEvictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFillWithDirty(t *testing.T) {
	c := MustNew(1*64, 1, 64)
	c.Fill(0, true)
	v, _ := c.Fill(64, false)
	if !v.Dirty {
		t.Fatal("dirty-filled line evicted clean")
	}
}

func TestDoubleFillRefreshes(t *testing.T) {
	c := MustNew(2*64, 2, 64)
	c.Fill(0, false)
	c.Fill(0, true) // re-fill marks dirty, must not evict
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	v, evicted := c.Fill(128, false)
	if evicted {
		t.Fatalf("unexpected eviction %+v", v)
	}
	c.Access(0, false)
	v, _ = c.Fill(256, false)
	if v.Addr != 128 {
		t.Fatalf("evicted %d, want 128", v.Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(4*64, 4, 64)
	c.Fill(0, true)
	dirty, present := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate = %v,%v", dirty, present)
	}
	if c.Contains(0) {
		t.Fatal("line survived invalidation")
	}
	if _, present := c.Invalidate(999); present {
		t.Fatal("phantom invalidation")
	}
}

func TestWalkDirty(t *testing.T) {
	c := MustNew(8*64, 8, 64)
	c.Fill(0, true)
	c.Fill(64*8, false)
	c.Fill(64*16, true)
	seen := map[uint64]bool{}
	c.WalkDirty(func(a uint64) { seen[a] = true })
	if len(seen) != 2 || !seen[0] || !seen[64*16] {
		t.Fatalf("dirty walk = %v", seen)
	}
}

func TestSetIsolation(t *testing.T) {
	// Lines mapping to different sets must not evict each other.
	c := MustNew(2*2*64, 2, 64) // 2 sets, 2 ways
	c.Fill(0, false)            // set 0
	c.Fill(64, false)           // set 1
	c.Fill(128, false)          // set 0
	c.Fill(192, false)          // set 1
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}
	v, evicted := c.Fill(256, false) // set 0: evicts LRU of set 0 only
	if !evicted || v.Addr != 0 {
		t.Fatalf("victim = %+v", v)
	}
	if !c.Contains(64) || !c.Contains(192) {
		t.Fatal("set-1 lines disturbed by set-0 eviction")
	}
}

// Reference model: a per-set LRU list implemented with slices.
type refCache struct {
	ways int
	sets map[uint64][]refLine
	line uint64
	nset uint64
}

type refLine struct {
	tag   uint64
	dirty bool
}

func (r *refCache) access(addr uint64, write bool) bool {
	tag := addr / r.line
	set := tag % r.nset
	for i, l := range r.sets[set] {
		if l.tag == tag {
			l.dirty = l.dirty || write
			r.sets[set] = append(append(append([]refLine{}, r.sets[set][:i]...), r.sets[set][i+1:]...), l)
			return true
		}
	}
	return false
}

func (r *refCache) fill(addr uint64, dirty bool) (Victim, bool) {
	tag := addr / r.line
	set := tag % r.nset
	if r.access(addr, dirty) {
		return Victim{}, false
	}
	var v Victim
	evicted := false
	if len(r.sets[set]) == r.ways {
		old := r.sets[set][0]
		r.sets[set] = r.sets[set][1:]
		v = Victim{Addr: old.tag * r.line, Dirty: old.dirty}
		evicted = true
	}
	r.sets[set] = append(r.sets[set], refLine{tag, dirty})
	return v, evicted
}

// Property: the cache agrees with a straightforward LRU reference model
// under arbitrary access/fill interleavings.
func TestQuickAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(4*4*64, 4, 64) // 4 sets, 4 ways
		r := &refCache{ways: 4, sets: map[uint64][]refLine{}, line: 64, nset: 4}
		for op := 0; op < 2000; op++ {
			addr := uint64(rng.Intn(64)) * 64
			write := rng.Intn(3) == 0
			if rng.Intn(2) == 0 {
				if c.Access(addr, write) != r.access(addr, write) {
					return false
				}
			} else {
				if !c.Access(addr, write) {
					r.access(addr, write)
					gv, ge := c.Fill(addr, write)
					rv, re := r.fill(addr, write)
					if ge != re || gv != rv {
						return false
					}
				} else {
					r.access(addr, write)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c := MustNew(16*64, 4, 64)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 5000; op++ {
		addr := uint64(rng.Intn(256)) * 64
		if !c.Access(addr, false) {
			c.Fill(addr, rng.Intn(2) == 0)
		}
		if c.Occupancy() > c.Lines() {
			t.Fatalf("occupancy %d exceeds capacity %d", c.Occupancy(), c.Lines())
		}
	}
	if c.Occupancy() != c.Lines() {
		t.Fatalf("steady-state occupancy %d, want full %d", c.Occupancy(), c.Lines())
	}
}

func TestLowPriorityInsertion(t *testing.T) {
	c := MustNew(4*64, 4, 64) // one set, 4 ways
	c.Fill(0, false)
	c.Fill(64, false)
	c.Fill(128, false)
	c.FillLowPriority(192, false)
	// The low-priority line is the first eviction candidate even though
	// it arrived last.
	v, evicted := c.Fill(256, false)
	if !evicted || v.Addr != 192 {
		t.Fatalf("victim = %+v, want the low-priority line 192", v)
	}
	// A hit promotes a low-priority line to MRU.
	c2 := MustNew(2*64, 2, 64)
	c2.FillLowPriority(0, false)
	c2.Fill(64, false)
	c2.Access(0, false) // promote
	v, _ = c2.Fill(128, false)
	if v.Addr != 64 {
		t.Fatalf("promoted line evicted first (victim %+v)", v)
	}
}
