package cache

import "testing"

// The metadata cache sits on every memory access of the simulator, so its
// lookup cost dominates simulation throughput.

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(128<<10, 8, 64)
	for i := uint64(0); i < 2048; i++ {
		c.Fill(i*64, false)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)%2048*64, false)
	}
}

func BenchmarkAccessMiss(b *testing.B) {
	c := MustNew(128<<10, 8, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64+1<<30, false)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := MustNew(128<<10, 8, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, i%4 == 0)
	}
}

func BenchmarkMixedWorkingSet(b *testing.B) {
	// 2x-capacity working set: ~50% hit rate, constant evictions.
	c := MustNew(128<<10, 8, 64)
	span := uint64(4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 2654435761 % span) * 64
		if !c.Access(addr, false) {
			c.Fill(addr, false)
		}
	}
}
