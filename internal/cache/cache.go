// Package cache implements the set-associative, write-back caches used by
// the secure-memory system: the shared last-level cache and the dedicated
// metadata cache that holds encryption and integrity-tree counters
// (Table I: 8 MB 8-way LLC, 128 KB 8-way metadata cache, 64 B lines).
package cache

import (
	"fmt"
	"sync"

	"github.com/securemem/morphtree/internal/obs"
)

// Victim describes a line evicted to make room for an insertion.
type Victim struct {
	// Addr is the line-aligned address of the evicted line.
	Addr uint64
	// Dirty reports whether the line held unwritten modifications; dirty
	// victims generate a memory write-back (and, for metadata lines, a
	// parent-counter increment).
	Dirty bool
}

// Stats accumulates cache activity counters.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// HitRate returns hits over total accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// Addresses are byte addresses; the cache operates on aligned lines.
// All methods are safe for concurrent use; fields below mu are protected
// by it, fields above it are immutable after New.
type Cache struct {
	lineBytes uint64
	numSets   uint64
	ways      int
	// tracer is immutable after Instrument, which must run before the
	// cache is shared between goroutines.
	tracer *obs.Tracer

	mu    sync.Mutex
	sets  []way // numSets * ways, row-major
	clock uint64
	stats Stats
}

// Instrument exposes the cache's stats as pull-time counters under the
// given name prefix (e.g. "cache.meta") and, when tr is non-nil, emits a
// CacheEvict trace event per eviction. Call before concurrent use; nil
// arguments are no-ops.
func (c *Cache) Instrument(name string, reg *obs.Registry, tr *obs.Tracer) {
	c.tracer = tr
	reg.RegisterCollector(func(emit func(string, uint64)) {
		s := c.Stats()
		emit(name+".hits", s.Hits)
		emit(name+".misses", s.Misses)
		emit(name+".evictions", s.Evictions)
		emit(name+".dirty_evictions", s.DirtyEvictions)
	})
}

// New constructs a cache of sizeBytes capacity with the given associativity
// and line size. Size must be a power-of-two multiple of ways*lineBytes so
// set indexing stays a mask.
func New(sizeBytes uint64, ways int, lineBytes uint64) (*Cache, error) {
	if ways <= 0 || lineBytes == 0 || sizeBytes == 0 {
		return nil, fmt.Errorf("cache: invalid geometry size=%d ways=%d line=%d", sizeBytes, ways, lineBytes)
	}
	if sizeBytes%(uint64(ways)*lineBytes) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*line %d", sizeBytes, uint64(ways)*lineBytes)
	}
	numSets := sizeBytes / (uint64(ways) * lineBytes)
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", numSets)
	}
	return &Cache{
		lineBytes: lineBytes,
		numSets:   numSets,
		ways:      ways,
		sets:      make([]way, numSets*uint64(ways)),
	}, nil
}

// MustNew is New for statically known-good geometries.
func MustNew(sizeBytes uint64, ways int, lineBytes uint64) *Cache {
	c, err := New(sizeBytes, ways, lineBytes)
	if err != nil {
		panic(err) //morphlint:allow panicpolicy -- Must-style constructor for compile-time geometries; New is the checked form
	}
	return c
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return int(c.numSets) * c.ways }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) index(addr uint64) (setBase uint64, tag uint64) {
	line := addr / c.lineBytes
	return (line % c.numSets) * uint64(c.ways), line
}

// Access looks up addr, updating recency and the dirty bit on a hit.
// It returns whether the access hit; misses are NOT filled (use Fill).
func (c *Cache) Access(addr uint64, write bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, tag := c.index(addr)
	c.clock++
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+uint64(i)]
		if w.valid && w.tag == tag {
			w.used = c.clock
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for addr without touching recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, tag := c.index(addr)
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+uint64(i)]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts addr (which must have missed) with the given dirty state,
// evicting the LRU way if the set is full. The victim, if any, is returned.
func (c *Cache) Fill(addr uint64, dirty bool) (Victim, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fill(addr, dirty, false)
}

// FillLowPriority inserts addr at the LRU position instead of MRU (LIP-style
// insertion): the line is the set's first eviction candidate unless a
// subsequent hit promotes it. Type-aware metadata caching uses this to keep
// high-coverage upper-tree lines resident at the expense of leaf lines.
func (c *Cache) FillLowPriority(addr uint64, dirty bool) (Victim, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fill(addr, dirty, true)
}

func (c *Cache) fill(addr uint64, dirty bool, lowPriority bool) (Victim, bool) {
	base, tag := c.index(addr)
	c.clock++
	// If the line is somehow present (double fill), refresh it in place.
	var lru *way
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+uint64(i)]
		if w.valid && w.tag == tag {
			w.used = c.clock
			w.dirty = w.dirty || dirty
			return Victim{}, false
		}
		if !w.valid {
			if lru == nil || lru.valid {
				lru = w
			}
			continue
		}
		if lru == nil || (lru.valid && w.used < lru.used) {
			lru = w
		}
	}
	var victim Victim
	evicted := false
	if lru.valid {
		victim = Victim{Addr: lru.tag * c.lineBytes, Dirty: lru.dirty}
		evicted = true
		c.stats.Evictions++
		if lru.dirty {
			c.stats.DirtyEvictions++
		}
		var dirtyBit uint64
		if lru.dirty {
			dirtyBit = 1
		}
		c.tracer.Emit(obs.KindCacheEvict, -1, victim.Addr, dirtyBit, 0)
	}
	used := c.clock
	if lowPriority {
		// Insert at the cold end: older than every resident line, so
		// the next eviction takes this line unless a hit promotes it.
		used = 0
	}
	*lru = way{tag: tag, valid: true, dirty: dirty, used: used}
	return victim, evicted
}

// Invalidate drops addr if present, returning its dirty state.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, tag := c.index(addr)
	for i := 0; i < c.ways; i++ {
		w := &c.sets[base+uint64(i)]
		if w.valid && w.tag == tag {
			wasDirty = w.dirty
			w.valid = false
			w.dirty = false
			return wasDirty, true
		}
	}
	return false, false
}

// WalkDirty visits every dirty line's address (used to flush metadata).
// Addresses are snapshotted under the lock and fn is invoked outside it, so
// fn may call back into the cache.
func (c *Cache) WalkDirty(fn func(addr uint64)) {
	c.mu.Lock()
	var addrs []uint64
	for i := range c.sets {
		if c.sets[i].valid && c.sets[i].dirty {
			addrs = append(addrs, c.sets[i].tag*c.lineBytes)
		}
	}
	c.mu.Unlock()
	for _, a := range addrs {
		fn(a)
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}
