package cache

import (
	"testing"

	"github.com/securemem/morphtree/internal/obs"
)

// TestInstrument checks the pull-time collector mirrors Stats and that
// evictions emit trace events carrying the victim address and dirty bit.
func TestInstrument(t *testing.T) {
	c := MustNew(1024, 2, 64) // 8 sets x 2 ways
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	c.Instrument("cache.meta", reg, tr)

	// Fill one set (addresses congruent mod 8 lines) beyond capacity:
	// the third fill evicts the first line, dirty.
	c.Access(0, true)
	c.Fill(0, true)
	c.Access(8*64, false)
	c.Fill(8*64, false)
	c.Access(16*64, false)
	c.Fill(16*64, false)

	snap := reg.Snapshot()
	if snap.Counters["cache.meta.misses"] != 3 {
		t.Fatalf("misses = %d, want 3", snap.Counters["cache.meta.misses"])
	}
	if snap.Counters["cache.meta.evictions"] != 1 || snap.Counters["cache.meta.dirty_evictions"] != 1 {
		t.Fatalf("evictions = %d dirty = %d, want 1/1",
			snap.Counters["cache.meta.evictions"], snap.Counters["cache.meta.dirty_evictions"])
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("trace events = %d, want 1", len(evs))
	}
	if evs[0].Kind != obs.KindCacheEvict || evs[0].A != 0 || evs[0].B != 1 {
		t.Fatalf("evict event = %+v, want victim addr 0 dirty", evs[0])
	}
}

// TestInstrumentNil checks nil registry/tracer wiring stays inert.
func TestInstrumentNil(t *testing.T) {
	c := MustNew(1024, 2, 64)
	c.Instrument("cache.meta", nil, nil)
	c.Access(0, true)
	c.Fill(0, true)
	c.Fill(8*64, false)
	c.Fill(16*64, false) // evicts without a tracer: must not panic
	if c.Stats().Evictions != 1 {
		t.Fatal("eviction accounting broke without instruments")
	}
}
