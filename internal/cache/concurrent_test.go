package cache

import (
	"sync"
	"testing"
)

// TestConcurrentMixedWorkload drives every public method from many
// goroutines at once over a deliberately tiny cache (maximum set
// contention). Run under -race this is the package's thread-safety claim;
// the final checks assert the bookkeeping stayed coherent, not any
// particular interleaving.
func TestConcurrentMixedWorkload(t *testing.T) {
	const (
		lineBytes = 64
		ways      = 4
		size      = 16 * ways * lineBytes // 16 sets
		workers   = 8
		opsPerW   = 5000
	)
	c := MustNew(size, ways, lineBytes)
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i) * lineBytes
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsPerW; i++ {
				// xorshift: deterministic per-worker op mix without
				// sharing a rand source.
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				addr := addrs[rng%uint64(len(addrs))]
				switch rng % 6 {
				case 0:
					c.Access(addr, rng%2 == 0)
				case 1:
					if !c.Access(addr, false) {
						c.Fill(addr, rng%2 == 0)
					}
				case 2:
					c.FillLowPriority(addr, true)
				case 3:
					c.Invalidate(addr)
				case 4:
					c.Contains(addr)
					c.Occupancy()
				case 5:
					c.WalkDirty(func(uint64) {})
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()

	// Coherence, not interleaving: occupancy is bounded by capacity, the
	// stats tally matches the access count, and every line WalkDirty
	// reports is genuinely present and line-aligned.
	if occ := c.Occupancy(); occ < 0 || occ > c.Lines() {
		t.Fatalf("occupancy %d out of range [0, %d]", occ, c.Lines())
	}
	st := c.Stats()
	if st.DirtyEvictions > st.Evictions {
		t.Fatalf("stats incoherent: %d dirty evictions > %d evictions", st.DirtyEvictions, st.Evictions)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("workload exercised no hits (%d) or no misses (%d)", st.Hits, st.Misses)
	}
	dirty := 0
	c.WalkDirty(func(addr uint64) {
		dirty++
		if addr%lineBytes != 0 {
			t.Errorf("dirty walk returned unaligned address %#x", addr)
		}
		if !c.Contains(addr) {
			t.Errorf("dirty walk returned absent address %#x", addr)
		}
	})
	if dirty > c.Occupancy() {
		t.Fatalf("%d dirty lines exceed occupancy %d", dirty, c.Occupancy())
	}

	// The cache must still work single-threaded after the storm.
	probe := addrs[0]
	c.Invalidate(probe)
	if c.Access(probe, false) {
		t.Fatal("access hit after invalidate")
	}
	c.Fill(probe, true)
	if !c.Access(probe, false) {
		t.Fatal("access missed after fill")
	}
}
