package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/securemem/morphtree/internal/secmem"
)

var testKey = []byte("0123456789abcdef")

func testOpts() Options { return Options{Key: testKey} }

func line(seed byte) []byte {
	l := make([]byte, secmem.LineBytes)
	for i := range l {
		l[i] = seed + byte(i)
	}
	return l
}

// writeLog writes n KindWrite records (LSN 1..n) plus, if audits is true, a
// trailing audit pair, returning the path.
func writeLog(t *testing.T, dir string, n int, audits bool) string {
	t.Helper()
	path := filepath.Join(dir, "wal.test")
	l, err := Create(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lsn := uint64(0)
	for i := 0; i < n; i++ {
		lsn++
		if err := l.Append(Record{Kind: KindWrite, LSN: lsn, Addr: uint64(i) * 64, Line: line(byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if audits {
		lsn++
		if err := l.Append(Record{Kind: KindOverflow, LSN: lsn, Count: 3}); err != nil {
			t.Fatal(err)
		}
		lsn++
		if err := l.Append(Record{Kind: KindRebase, LSN: lsn, Count: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeLog(t, t.TempDir(), 5, true)
	var recs []Record
	info, err := Replay(path, testOpts(), 1, false, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 7 || info.Writes != 5 || info.LastLSN != 7 || info.TornTail != nil {
		t.Fatalf("info = %+v, want 7 records / 5 writes / lastLSN 7 / no torn tail", info)
	}
	for i := 0; i < 5; i++ {
		r := recs[i]
		if r.Kind != KindWrite || r.Addr != uint64(i)*64 || !bytes.Equal(r.Line, line(byte(i))) {
			t.Fatalf("record %d = %+v, want write of line(%d) at %d", i, r, i, i*64)
		}
	}
	if recs[5].Kind != KindOverflow || recs[5].Count != 3 {
		t.Fatalf("audit record = %+v, want overflow count 3", recs[5])
	}
	if recs[6].Kind != KindRebase || recs[6].Count != 7 {
		t.Fatalf("audit record = %+v, want rebase count 7", recs[6])
	}
}

func TestLinesAreSealedAtRest(t *testing.T) {
	path := writeLog(t, t.TempDir(), 3, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if bytes.Contains(data, line(byte(i))) {
			t.Fatalf("plaintext line %d appears verbatim in the WAL file", i)
		}
	}
}

func TestWriteFrameBytesMatchesDisk(t *testing.T) {
	dir := t.TempDir()
	path := writeLog(t, dir, 4, false)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 4*WriteFrameBytes {
		t.Fatalf("4 write records occupy %d bytes, want %d", fi.Size(), 4*WriteFrameBytes)
	}
	path = writeLog(t, t.TempDir(), 0, true)
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 2*AuditFrameBytes {
		t.Fatalf("2 audit records occupy %d bytes, want %d", fi.Size(), 2*AuditFrameBytes)
	}
}

// TestTornTailEveryOffset truncates a log at every possible byte offset and
// checks replay recovers exactly the whole frames before the cut, reports a
// torn tail for partial cuts, and never errors or panics.
func TestTornTailEveryOffset(t *testing.T) {
	const n = 4
	master := writeLog(t, t.TempDir(), n, false)
	data, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "wal.cut")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := 0
		info, err := Replay(path, testOpts(), 1, true, func(r Record) error {
			if r.Kind == KindWrite {
				got++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error %v, want torn-tail tolerance", cut, err)
		}
		wantWhole := cut / WriteFrameBytes
		if got != wantWhole {
			t.Fatalf("cut %d: replayed %d writes, want %d", cut, got, wantWhole)
		}
		wantTorn := cut%WriteFrameBytes != 0
		if (info.TornTail != nil) != wantTorn {
			t.Fatalf("cut %d: torn tail %v, want torn=%v", cut, info.TornTail, wantTorn)
		}
		if wantTorn {
			if !info.Truncated {
				t.Fatalf("cut %d: repair did not truncate", cut)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(wantWhole)*WriteFrameBytes {
				t.Fatalf("cut %d: repaired size %d, want %d", cut, fi.Size(), wantWhole*WriteFrameBytes)
			}
			// A repaired log must replay cleanly and accept appends.
			l, err := Open(path, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(Record{Kind: KindWrite, LSN: uint64(wantWhole) + 1, Addr: 0, Line: line(0xAA)}); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			info2, err := Replay(path, testOpts(), 1, false, func(Record) error { return nil })
			if err != nil || info2.TornTail != nil || info2.Writes != wantWhole+1 {
				t.Fatalf("cut %d: after repair+append replay = %+v, %v", cut, info2, err)
			}
		}
	}
}

// flipWithCRCFix flips one payload byte of frame k and recomputes the CRC,
// modeling an adversary (not a crash) editing the file.
func flipWithCRCFix(t *testing.T, path string, frame int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frame * WriteFrameBytes
	body := data[off+frameHdrBytes : off+WriteFrameBytes]
	body[recFixedBytes+5] ^= 0x40
	binary.LittleEndian.PutUint32(data[off+4:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTamperingIsIntegrityErrorNotTornTail(t *testing.T) {
	path := writeLog(t, t.TempDir(), 4, false)
	flipWithCRCFix(t, path, 1)
	applied := 0
	_, err := Replay(path, testOpts(), 1, false, func(Record) error { applied++; return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replay of CRC-consistent tampered log returned %v, want *secmem.IntegrityError", err)
	}
	if applied != 1 {
		t.Fatalf("replay applied %d records past the tampered frame, want 1 before it", applied)
	}
}

func TestWrongKeyIsIntegrityError(t *testing.T) {
	path := writeLog(t, t.TempDir(), 2, false)
	_, err := Replay(path, Options{Key: []byte("fedcba9876543210")}, 1, false, func(Record) error { return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replay under wrong key returned %v, want *secmem.IntegrityError", err)
	}
}

func TestLSNDiscontinuityIsIntegrityError(t *testing.T) {
	dir := t.TempDir()
	path := writeLog(t, dir, 3, false)
	// Drop the middle frame and splice the file back together: every
	// frame still CRCs and MACs, but the sequence skips an LSN.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spliced := append(append([]byte{}, data[:WriteFrameBytes]...), data[2*WriteFrameBytes:]...)
	if err := os.WriteFile(path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(path, testOpts(), 1, false, func(Record) error { return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replay of spliced log returned %v, want *secmem.IntegrityError", err)
	}
}

func TestMissingFileReplaysEmpty(t *testing.T) {
	info, err := Replay(filepath.Join(t.TempDir(), "absent"), testOpts(), 7, true, func(Record) error {
		t.Fatal("fn called for a missing file")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.LastLSN != 6 || info.TornTail != nil {
		t.Fatalf("info = %+v, want empty replay with LastLSN 6", info)
	}
}

func TestFirstLSNMismatchRejectsForeignSegment(t *testing.T) {
	// A segment legitimately starting at LSN 1 must not be accepted where
	// LSN 100 is expected (e.g. an old segment renamed into place).
	path := writeLog(t, t.TempDir(), 2, false)
	_, err := Replay(path, testOpts(), 100, false, func(Record) error { return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replay with firstLSN 100 returned %v, want *secmem.IntegrityError", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := writeLog(t, t.TempDir(), 1, false)
	if _, err := Create(path, testOpts()); err == nil {
		t.Fatal("Create over an existing segment succeeded, want error")
	}
}

func TestAppendRejectsBadRecords(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), "wal.bad"), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := l.Append(Record{Kind: KindWrite, LSN: 1, Line: make([]byte, 12)}); err == nil {
		t.Fatal("short line accepted")
	}
	if err := l.Append(Record{Kind: 0x7F, LSN: 1}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if l.Appended() != 0 {
		t.Fatalf("rejected records counted: %d", l.Appended())
	}
}
