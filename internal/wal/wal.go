// Package wal is morphdur's write-ahead log: an append-only file of
// length-prefixed, CRC-framed, MAC-authenticated records journaling every
// mutation applied to a secure-memory shard. A record is durable once its
// frame is fsynced; recovery replays the valid prefix and distinguishes the
// two ways a file can be bad:
//
//   - A torn tail — a frame cut short or CRC-corrupted by a crash mid-append
//     — ends replay with a typed *TornTailError. Callers truncate the file
//     to the valid prefix and continue (crashes must never brick recovery).
//   - Tampering — a frame whose bytes are intact (CRC matches) but whose
//     keyed MAC does not, or whose LSN breaks the expected sequence — fails
//     replay with a *secmem.IntegrityError. A CRC is trivially recomputable
//     by an adversary with file access; the truncated HMAC-SHA256 under a
//     key derived from the master key is not.
//
// Write-record payloads are sealed (AES-CTR under a second derived key,
// pad bound to the record's LSN) so plaintext cachelines never touch disk:
// the WAL is part of untrusted storage exactly like the engine's store.
//
// Frame layout (all integers little-endian, matching the persistence
// format):
//
//	| u32 body length | u32 CRC-32C(body) | body |
//	body = | kind u8 | lsn u64 | addr u64 | count u64 | payload | mac u64 |
//
// The MAC covers everything in the body before it. LSNs are assigned by the
// caller and must increase by exactly one per record within a segment, so a
// spliced, reordered, or cross-segment-replayed record is detected even
// when each individual frame verifies.
package wal

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/securemem/morphtree/internal/aesctr"
	"github.com/securemem/morphtree/internal/secmem"
)

// Record kinds.
const (
	// KindWrite journals one data-line write: Addr is the global
	// line-aligned address, Line the 64-byte plaintext (sealed on disk).
	KindWrite byte = 0x01
	// KindOverflow is an audit record: Count counter-overflow
	// re-encryption events occurred since the previous audit record.
	// Replay skips it; the WAL keeps it so the journal names every class
	// of mutation (write, overflow re-encryption, rebase), not just the
	// logical writes that subsume them under deterministic replay.
	KindOverflow byte = 0x02
	// KindRebase is an audit record: Count morphable-counter rebase
	// events since the previous audit record.
	KindRebase byte = 0x03
)

// Sizes of the on-disk encoding.
const (
	frameHdrBytes = 8  // u32 length + u32 CRC
	recFixedBytes = 25 // kind + lsn + addr + count
	macBytes      = 8
	// WriteFrameBytes is the exact on-disk size of a KindWrite frame.
	// Crash harnesses use it to predict how many whole records survive a
	// truncation at a given byte offset.
	WriteFrameBytes = frameHdrBytes + recFixedBytes + secmem.LineBytes + macBytes
	// AuditFrameBytes is the on-disk size of a payload-less audit frame.
	AuditFrameBytes = frameHdrBytes + recFixedBytes + macBytes
	// maxBody bounds a frame body; anything larger is crash garbage (or
	// hostile) and is treated as a torn tail before allocation.
	maxBody = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled mutation.
type Record struct {
	Kind byte
	// LSN is the record's log sequence number, contiguous within a
	// segment.
	LSN uint64
	// Addr is the global line-aligned address (KindWrite only).
	Addr uint64
	// Count is the event count carried by audit records.
	Count uint64
	// Line is the 64-byte plaintext line (KindWrite only).
	Line []byte
}

// TornTailError reports a WAL whose final record was cut short or
// corrupted by a crash mid-append. Offset is where the valid prefix ends;
// truncating there and continuing is the sanctioned response.
type TornTailError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("wal: torn tail in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Options configure a log's sealing keys.
type Options struct {
	// Key seals record payloads and MACs frames. It is derived per
	// (shard, segment) by the durability layer, so a record can never
	// verify outside the exact segment it was written to. Required.
	//
	//morph:secret
	Key []byte
}

// keys derives the independent encryption and authentication subkeys from
// an Options key (never using one key for both primitives).
type keys struct {
	cipher *aesctr.Cipher
	//morph:secret
	macKey []byte
}

func deriveKeys(opt Options) (keys, error) {
	if len(opt.Key) == 0 {
		return keys{}, errors.New("wal: sealing key is required")
	}
	sub := func(label string) []byte {
		h := hmac.New(sha256.New, opt.Key)
		h.Write([]byte(label))
		return h.Sum(nil)
	}
	cipher, err := aesctr.New(sub("morphtree/wal/enc"))
	if err != nil {
		return keys{}, fmt.Errorf("wal: derive enc key: %w", err)
	}
	return keys{cipher: cipher, macKey: sub("morphtree/wal/mac")}, nil
}

// mac computes the truncated keyed MAC over a body prefix.
func (k keys) mac(body []byte) uint64 {
	h := hmac.New(sha256.New, k.macKey)
	h.Write(body)
	return binary.LittleEndian.Uint64(h.Sum(nil))
}

// Codec seals and opens records in the WAL frame format without a backing
// file. The cluster layer uses it to ship batches of records over the wire
// in exactly the on-disk encoding — CRC-framed, HMAC'd, AES-CTR-sealed —
// under a key bound to the sender's fencing epoch, so a batch from a
// deposed primary fails authentication instead of corrupting a replica.
type Codec struct {
	keys keys
}

// NewCodec derives a codec's sealing keys from opt.
func NewCodec(opt Options) (*Codec, error) {
	k, err := deriveKeys(opt)
	if err != nil {
		return nil, err
	}
	return &Codec{keys: k}, nil
}

// AppendRecord appends r's sealed frame (header + body) to dst and returns
// the extended slice.
func (c *Codec) AppendRecord(dst []byte, r Record) ([]byte, error) {
	body, err := encodeBody(c.keys, r)
	if err != nil {
		return dst, err
	}
	var hdr [frameHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// DecodeAll decodes every frame in p, calling fn for each record in order.
// firstLSN anchors the contiguity check exactly as in file replay. Unlike
// file replay there is no torn-tail tolerance: p arrived length-delimited
// over an authenticated transport, so any framing damage is corruption and
// returns an error rather than a tolerated tail. Returns the number of
// records decoded.
func (c *Codec) DecodeAll(p []byte, firstLSN uint64, fn func(Record) error) (int, error) {
	next := firstLSN
	n := 0
	off := 0
	for off < len(p) {
		rest := p[off:]
		if len(rest) < frameHdrBytes {
			return n, fmt.Errorf("wal: batch frame header cut short: %d trailing bytes", len(rest))
		}
		bl := binary.LittleEndian.Uint32(rest[0:])
		if bl < recFixedBytes+macBytes || bl > maxBody {
			return n, fmt.Errorf("wal: batch frame length %d outside [%d, %d]", bl, recFixedBytes+macBytes, maxBody)
		}
		if len(rest) < frameHdrBytes+int(bl) {
			return n, fmt.Errorf("wal: batch frame body cut short: %d of %d bytes", len(rest)-frameHdrBytes, bl)
		}
		body := rest[frameHdrBytes : frameHdrBytes+int(bl)]
		if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(rest[4:]); got != want {
			return n, fmt.Errorf("wal: batch frame CRC %#x, want %#x", got, want)
		}
		rec, err := decodeBody(c.keys, body, "replication batch", next)
		if err != nil {
			return n, err
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
		next = rec.LSN + 1
		off += frameHdrBytes + int(bl)
	}
	return n, nil
}

// Log is an append-only WAL segment writer. It is not safe for concurrent
// use; the durability layer serializes appends per shard (that lock doubles
// as the apply-order lock, keeping replay order identical to apply order).
type Log struct {
	path string
	keys keys
	f    *os.File
	bw   *bufio.Writer
	// appended counts records accepted into the buffer since open.
	appended uint64
}

// Create creates a fresh segment at path, failing if it already exists
// (segments are immutable once superseded; an existing file means a
// sequencing bug or a leftover the recovery scan should have handled).
func Create(path string, opt Options) (*Log, error) {
	k, err := deriveKeys(opt)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	return &Log{path: path, keys: k, f: f, bw: bufio.NewWriter(f)}, nil
}

// Open opens an existing segment for appending. Callers replay (and repair)
// the segment first; Open itself does not validate content.
func Open(path string, opt Options) (*Log, error) {
	k, err := deriveKeys(opt)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Log{path: path, keys: k, f: f, bw: bufio.NewWriter(f)}, nil
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }

// Appended returns how many records this writer has accepted since open.
func (l *Log) Appended() uint64 { return l.appended }

// Append buffers one record's frame. The record is NOT durable until Sync
// returns; it is not even visible to a re-open until Flush.
func (l *Log) Append(r Record) error {
	body, err := encodeBody(l.keys, r)
	if err != nil {
		return err
	}
	var hdr [frameHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	if _, err := l.bw.Write(body); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	l.appended++
	return nil
}

// encodeBody serializes and seals a record body (payload encrypted, MAC
// appended).
func encodeBody(k keys, r Record) ([]byte, error) {
	var payload []byte
	switch r.Kind {
	case KindWrite:
		if len(r.Line) != secmem.LineBytes {
			return nil, fmt.Errorf("wal: write record line is %d bytes, want %d", len(r.Line), secmem.LineBytes)
		}
		payload = make([]byte, secmem.LineBytes)
		// Seal the line: the pad is bound to the LSN, unique within the
		// segment key's lifetime.
		if err := k.cipher.XOR(payload, r.Line, r.LSN, 0); err != nil {
			return nil, fmt.Errorf("wal: seal record %d: %w", r.LSN, err)
		}
	case KindOverflow, KindRebase:
		// No payload.
	default:
		return nil, fmt.Errorf("wal: unknown record kind %#x", r.Kind)
	}
	body := make([]byte, recFixedBytes+len(payload)+macBytes)
	body[0] = r.Kind
	binary.LittleEndian.PutUint64(body[1:], r.LSN)
	binary.LittleEndian.PutUint64(body[9:], r.Addr)
	binary.LittleEndian.PutUint64(body[17:], r.Count)
	copy(body[recFixedBytes:], payload)
	binary.LittleEndian.PutUint64(body[len(body)-macBytes:], k.mac(body[:len(body)-macBytes]))
	return body, nil
}

// Flush pushes buffered frames to the OS. Data still sits in the page
// cache; only Sync makes it crash-durable.
func (l *Log) Flush() error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.path, err)
	}
	return nil
}

// Sync flushes and fsyncs the segment — the group-commit durability point.
func (l *Log) Sync() error {
	if err := l.Flush(); err != nil {
		return err
	}
	return l.Fsync()
}

// Fsync fsyncs the underlying file without touching the append buffer, so a
// group-commit leader can fsync outside the append lock after flushing
// under it (the buffer is not safe for concurrent Flush/Append).
func (l *Log) Fsync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	return nil
}

// Close flushes, fsyncs, and closes the segment.
func (l *Log) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close %s: %w", l.path, closeErr)
	}
	return nil
}

// ReplayInfo summarizes one segment's replay.
type ReplayInfo struct {
	// Records is the number of valid records decoded (all kinds).
	Records int
	// Delivered is the number of records passed to the callback. Equal to
	// Records for Replay; ReplayRange validates the whole prefix but only
	// delivers records at or past the cursor.
	Delivered int
	// Writes is the number of KindWrite records decoded.
	Writes int
	// LastLSN is the LSN of the final valid record (firstLSN-1 if none).
	LastLSN uint64
	// ValidBytes is the length of the valid prefix.
	ValidBytes int64
	// TornTail is non-nil if the file ended in a crash-torn record; the
	// valid prefix up to TornTail.Offset was still replayed.
	TornTail *TornTailError
	// Truncated reports that repair cut the file back to ValidBytes.
	Truncated bool
}

// Replay decodes records from the segment at path, calling fn for each in
// order. firstLSN is the LSN the segment must start at (one past the
// covering snapshot); any discontinuity is treated as tampering. A missing
// file replays as empty — a crash between snapshot rename and segment
// creation legitimately leaves no segment.
//
// A torn tail ends replay without error (recorded in the info); if repair
// is true the file is truncated to its valid prefix so appends can resume.
// MAC or sequence violations return a *secmem.IntegrityError and replay no
// further records.
func Replay(path string, opt Options, firstLSN uint64, repair bool, fn func(Record) error) (ReplayInfo, error) {
	return replayRange(path, opt, firstLSN, firstLSN, repair, fn)
}

// ReplayRange decodes the segment at path exactly like Replay — the whole
// prefix is CRC-, MAC-, and sequence-validated starting at firstLSN — but
// only records with LSN >= fromLSN are delivered to fn. This is the
// replication cursor path: a replica whose durable watermark is mid-segment
// receives just the suffix it is missing, while the primary still refuses
// to serve from a tampered or spliced log. A torn tail ends delivery
// without error (recorded in the info; never repaired — the cursor read
// must not mutate the live segment the committer is appending to).
func ReplayRange(path string, opt Options, firstLSN, fromLSN uint64, fn func(Record) error) (ReplayInfo, error) {
	if fromLSN < firstLSN {
		fromLSN = firstLSN
	}
	return replayRange(path, opt, firstLSN, fromLSN, false, fn)
}

// ReplayTail is Replay restricted to records with LSN >= fromLSN: the
// whole segment prefix is still CRC-, MAC-, and sequence-validated from
// firstLSN, but only the suffix is delivered. Unlike ReplayRange it may
// repair a torn tail — this is the recovery path for delta checkpoints,
// where the segment starts at the base snapshot's watermark but the delta
// chain already covers everything below fromLSN.
func ReplayTail(path string, opt Options, firstLSN, fromLSN uint64, repair bool, fn func(Record) error) (ReplayInfo, error) {
	if fromLSN < firstLSN {
		fromLSN = firstLSN
	}
	return replayRange(path, opt, firstLSN, fromLSN, repair, fn)
}

func replayRange(path string, opt Options, firstLSN, fromLSN uint64, repair bool, fn func(Record) error) (ReplayInfo, error) {
	info := ReplayInfo{LastLSN: firstLSN - 1}
	k, err := deriveKeys(opt)
	if err != nil {
		return info, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	next := firstLSN
	off := int64(0)
	torn := func(reason string) {
		info.TornTail = &TornTailError{Path: path, Offset: off, Reason: reason}
	}
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHdrBytes {
			torn(fmt.Sprintf("%d trailing bytes, want a %d-byte frame header", len(rest), frameHdrBytes))
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		if n < recFixedBytes+macBytes || n > maxBody {
			torn(fmt.Sprintf("frame length %d outside [%d, %d]", n, recFixedBytes+macBytes, maxBody))
			break
		}
		if len(rest) < frameHdrBytes+int(n) {
			torn(fmt.Sprintf("frame body cut short: %d of %d bytes", len(rest)-frameHdrBytes, n))
			break
		}
		body := rest[frameHdrBytes : frameHdrBytes+int(n)]
		if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(rest[4:]); got != want {
			torn(fmt.Sprintf("frame CRC %#x, want %#x", got, want))
			break
		}
		rec, err := decodeBody(k, body, path, next)
		if err != nil {
			return info, err
		}
		if rec.LSN >= fromLSN {
			if err := fn(rec); err != nil {
				return info, err
			}
			info.Delivered++
		}
		info.Records++
		if rec.Kind == KindWrite {
			info.Writes++
		}
		info.LastLSN = rec.LSN
		next = rec.LSN + 1
		off += frameHdrBytes + int64(n)
	}
	info.ValidBytes = off
	if info.TornTail != nil && repair {
		if err := os.Truncate(path, off); err != nil {
			return info, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		info.Truncated = true
	}
	return info, nil
}

// decodeBody authenticates and unseals one CRC-valid body. The CRC having
// matched, any failure here means deliberate modification, not a crash —
// so failures are *secmem.IntegrityError, the same fail-closed type the
// engine raises for tampered memory.
func decodeBody(k keys, body []byte, path string, wantLSN uint64) (Record, error) {
	macOff := len(body) - macBytes
	got := binary.LittleEndian.Uint64(body[macOff:])
	want := k.mac(body[:macOff])
	rec := Record{
		Kind:  body[0],
		LSN:   binary.LittleEndian.Uint64(body[1:]),
		Addr:  binary.LittleEndian.Uint64(body[9:]),
		Count: binary.LittleEndian.Uint64(body[17:]),
	}
	if !hmac.Equal(u64le(got), u64le(want)) {
		return Record{}, &secmem.IntegrityError{Level: -1, Index: rec.LSN,
			Reason: fmt.Sprintf("wal record MAC mismatch in %s (at-rest tampering)", path)}
	}
	if rec.LSN != wantLSN {
		return Record{}, &secmem.IntegrityError{Level: -1, Index: rec.LSN,
			Reason: fmt.Sprintf("wal record LSN %d in %s, want %d (spliced or replayed log)", rec.LSN, path, wantLSN)}
	}
	payload := body[recFixedBytes:macOff]
	switch rec.Kind {
	case KindWrite:
		if len(payload) != secmem.LineBytes {
			return Record{}, &secmem.IntegrityError{Level: -1, Index: rec.LSN,
				Reason: fmt.Sprintf("wal write record payload is %d bytes, want %d", len(payload), secmem.LineBytes)}
		}
		rec.Line = make([]byte, secmem.LineBytes)
		if err := k.cipher.XOR(rec.Line, payload, rec.LSN, 0); err != nil {
			return Record{}, fmt.Errorf("wal: unseal record %d: %w", rec.LSN, err)
		}
	case KindOverflow, KindRebase:
		if len(payload) != 0 {
			return Record{}, &secmem.IntegrityError{Level: -1, Index: rec.LSN,
				Reason: fmt.Sprintf("wal audit record carries %d payload bytes, want 0", len(payload))}
		}
	default:
		return Record{}, &secmem.IntegrityError{Level: -1, Index: rec.LSN,
			Reason: fmt.Sprintf("wal record kind %#x unknown", rec.Kind)}
	}
	return rec, nil
}

func u64le(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// SyncDir fsyncs a directory so renames and creates within it are durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close dir %s: %w", dir, closeErr)
	}
	return nil
}

var _ io.Closer = (*Log)(nil)
