package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"github.com/securemem/morphtree/internal/secmem"
)

// TestReplayRangeEveryCursor replays a segment from every possible cursor
// position and checks that exactly the suffix at or past the cursor is
// delivered, while the whole prefix is still validated (Records counts all).
func TestReplayRangeEveryCursor(t *testing.T) {
	const n = 6
	path := writeLog(t, t.TempDir(), n, true) // LSNs 1..n writes + n+1, n+2 audits
	total := n + 2
	for from := uint64(0); from <= uint64(total)+2; from++ {
		var got []uint64
		info, err := ReplayRange(path, testOpts(), 1, from, func(r Record) error {
			got = append(got, r.LSN)
			return nil
		})
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if info.Records != total {
			t.Fatalf("from=%d: Records = %d, want %d", from, info.Records, total)
		}
		if info.LastLSN != uint64(total) {
			t.Fatalf("from=%d: LastLSN = %d, want %d", from, info.LastLSN, total)
		}
		start := from
		if start < 1 {
			start = 1
		}
		wantN := 0
		if start <= uint64(total) {
			wantN = total - int(start) + 1
		}
		if len(got) != wantN || info.Delivered != wantN {
			t.Fatalf("from=%d: delivered %d (info %d), want %d", from, len(got), info.Delivered, wantN)
		}
		for i, lsn := range got {
			if lsn != start+uint64(i) {
				t.Fatalf("from=%d: delivered LSN %d at %d, want %d", from, lsn, i, start+uint64(i))
			}
		}
	}
}

// TestReplayRangeDeliversCorrectPayloads checks the unsealed lines on the
// delivered suffix match what was written.
func TestReplayRangeDeliversCorrectPayloads(t *testing.T) {
	path := writeLog(t, t.TempDir(), 5, false)
	var recs []Record
	if _, err := ReplayRange(path, testOpts(), 1, 4, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("delivered %d records, want 2", len(recs))
	}
	for i, r := range recs {
		wantSeed := byte(r.LSN - 1) // writeLog seeds line(i) at LSN i+1
		if !bytes.Equal(r.Line, line(wantSeed)) {
			t.Fatalf("record %d (LSN %d): payload mismatch", i, r.LSN)
		}
	}
}

// TestReplayRangeTornAtCursor cuts the record exactly at the cursor short
// and checks that replay reports a torn tail, delivers nothing, and — being
// a read-only cursor scan — does NOT truncate the file.
func TestReplayRangeTornAtCursor(t *testing.T) {
	const n = 4
	path := writeLog(t, t.TempDir(), n, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record (LSN n): the cursor points at
	// exactly the record that is torn.
	cut := int64(len(data)) - int64(WriteFrameBytes)/2
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	info, err := ReplayRange(path, testOpts(), 1, uint64(n), func(r Record) error {
		got = append(got, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatalf("torn tail at cursor must not error: %v", err)
	}
	if info.TornTail == nil {
		t.Fatal("expected TornTail to be reported")
	}
	if len(got) != 0 || info.Delivered != 0 {
		t.Fatalf("delivered %d records across a torn cursor, want 0", len(got))
	}
	if info.LastLSN != uint64(n-1) {
		t.Fatalf("LastLSN = %d, want %d", info.LastLSN, n-1)
	}
	if info.Truncated {
		t.Fatal("cursor replay must never repair the segment")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(after)) != cut {
		t.Fatalf("file length changed from %d to %d: cursor replay mutated the segment", cut, len(after))
	}
}

// TestReplayRangeTornBeforeCursor: the torn record sits below the cursor —
// replay still ends at the tear without delivering anything past it.
func TestReplayRangeTornBeforeCursor(t *testing.T) {
	const n = 3
	path := writeLog(t, t.TempDir(), n, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate into record 2 of 3: records 3+ never existed on disk, and
	// the cursor asks for LSN >= 3.
	cut := int64(WriteFrameBytes) + int64(WriteFrameBytes)/3
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := ReplayRange(path, testOpts(), 1, 3, func(r Record) error {
		t.Fatalf("unexpected delivery of LSN %d", r.LSN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail == nil || info.Records != 1 || info.Delivered != 0 {
		t.Fatalf("info = %+v, want torn tail after 1 record, 0 delivered", info)
	}
}

// TestReplayRangeTamperedPrefixFailsClosed: tampering below the cursor must
// still fail the whole scan — the cursor path never serves from a log whose
// skipped prefix does not authenticate.
func TestReplayRangeTamperedPrefixFailsClosed(t *testing.T) {
	path := writeLog(t, t.TempDir(), 4, false)
	flipWithCRCFix(t, path, 0) // tamper record 1; cursor starts at 3
	_, err := ReplayRange(path, testOpts(), 1, 3, func(r Record) error {
		t.Fatalf("unexpected delivery of LSN %d past tampered prefix", r.LSN)
		return nil
	})
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want IntegrityError", err)
	}
}

// TestReplayRangeMissingFile: a missing segment replays empty, same as
// Replay — the caller decides whether that means snapshot bootstrap.
func TestReplayRangeMissingFile(t *testing.T) {
	info, err := ReplayRange(t.TempDir()+"/nope", testOpts(), 5, 9, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Delivered != 0 || info.LastLSN != 4 {
		t.Fatalf("info = %+v, want empty replay with LastLSN 4", info)
	}
}

// TestCodecRoundTrip seals a batch with Codec.AppendRecord and decodes it
// with DecodeAll, checking records and payloads survive.
func TestCodecRoundTrip(t *testing.T) {
	c, err := NewCodec(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindWrite, LSN: 7, Addr: 128, Line: line(9)},
		{Kind: KindOverflow, LSN: 8, Count: 2},
		{Kind: KindWrite, LSN: 9, Addr: 64, Line: line(3)},
	}
	var batch []byte
	for _, r := range recs {
		if batch, err = c.AppendRecord(batch, r); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	n, err := c.DecodeAll(batch, 7, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != len(recs) {
		t.Fatalf("DecodeAll = %d, %v; want %d, nil", n, err, len(recs))
	}
	for i, r := range got {
		if r.Kind != recs[i].Kind || r.LSN != recs[i].LSN || r.Addr != recs[i].Addr || r.Count != recs[i].Count {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if r.Kind == KindWrite && !bytes.Equal(r.Line, recs[i].Line) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

// TestCodecWrongKeyFailsClosed: a batch sealed under one key must not
// decode under another (this is what makes fencing-epoch-bound replication
// keys reject a deposed primary's stream).
func TestCodecWrongKeyFailsClosed(t *testing.T) {
	seal, err := NewCodec(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := seal.AppendRecord(nil, Record{Kind: KindWrite, LSN: 1, Addr: 0, Line: line(1)})
	if err != nil {
		t.Fatal(err)
	}
	open, err := NewCodec(Options{Key: []byte("another-epoch-key")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = open.DecodeAll(batch, 1, func(Record) error { return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want IntegrityError", err)
	}
}

// TestCodecTruncatedBatchErrors: unlike file replay, a cut-short batch is an
// error, not a tolerated torn tail.
func TestCodecTruncatedBatchErrors(t *testing.T) {
	c, err := NewCodec(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := c.AppendRecord(nil, Record{Kind: KindWrite, LSN: 1, Addr: 0, Line: line(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, frameHdrBytes - 1, frameHdrBytes + 3, len(batch) - 1} {
		if _, err := c.DecodeAll(batch[:cut], 1, func(Record) error { return nil }); err == nil {
			t.Fatalf("cut=%d: truncated batch decoded without error", cut)
		}
	}
}

// TestCodecLSNGapFailsClosed: contiguity is enforced on the wire exactly as
// on disk.
func TestCodecLSNGapFailsClosed(t *testing.T) {
	c, err := NewCodec(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := c.AppendRecord(nil, Record{Kind: KindWrite, LSN: 5, Addr: 0, Line: line(1)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.DecodeAll(batch, 4, func(Record) error { return nil })
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want IntegrityError for LSN gap", err)
	}
}
