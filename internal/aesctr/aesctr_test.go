package aesctr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newCipher(t *testing.T) *Cipher {
	t.Helper()
	c, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Error("bad key length must fail")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("AES-%d key rejected: %v", n*8, err)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := newCipher(t)
	pt := make([]byte, LineBytes)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	ct := make([]byte, LineBytes)
	if err := c.XOR(ct, pt, 0x40, 9); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := make([]byte, LineBytes)
	if err := c.XOR(back, ct, 0x40, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

func TestXORInPlace(t *testing.T) {
	c := newCipher(t)
	line := make([]byte, LineBytes)
	copy(line, []byte("hello secure memory"))
	orig := bytes.Clone(line)
	c.XOR(line, line, 1, 2)
	c.XOR(line, line, 1, 2)
	if !bytes.Equal(line, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestLineSizeEnforced(t *testing.T) {
	c := newCipher(t)
	if err := c.XOR(make([]byte, 32), make([]byte, 64), 0, 0); err == nil {
		t.Error("short dst must fail")
	}
	if err := c.XOR(make([]byte, 64), make([]byte, 63), 0, 0); err == nil {
		t.Error("short src must fail")
	}
}

func TestPadsVaryWithCounterAndAddress(t *testing.T) {
	c := newCipher(t)
	p1 := c.Pad(0x1000, 1)
	p2 := c.Pad(0x1000, 2)
	p3 := c.Pad(0x1040, 1)
	if p1 == p2 {
		t.Error("pad ignores counter — temporal pad reuse")
	}
	if p1 == p3 {
		t.Error("pad ignores address — spatial pad reuse")
	}
}

func TestPadBlocksDiffer(t *testing.T) {
	// The four 16-byte AES blocks within one pad must all differ.
	c := newCipher(t)
	p := c.Pad(0, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(p[i*16:(i+1)*16], p[j*16:(j+1)*16]) {
				t.Fatalf("pad blocks %d and %d identical", i, j)
			}
		}
	}
}

// Property: encryption is its own inverse and pads never repeat across
// distinct (addr, counter) pairs.
func TestQuickPadUniqueness(t *testing.T) {
	c := newCipher(t)
	f := func(a1, c1, a2, c2 uint32) bool {
		p1 := c.Pad(uint64(a1)<<6, uint64(c1))
		p2 := c.Pad(uint64(a2)<<6, uint64(c2))
		same := a1 == a2 && c1 == c2
		return (p1 == p2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
