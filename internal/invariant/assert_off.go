//go:build !morphdebug

package invariant

// Enabled reports whether debug assertions are compiled in.
const Enabled = false

// Assertf is a no-op without the morphdebug build tag. The condition is
// still evaluated by the caller; keep assertion expressions cheap.
func Assertf(cond bool, format string, args ...any) {}
