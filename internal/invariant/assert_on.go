//go:build morphdebug

package invariant

import "fmt"

// Enabled reports whether debug assertions are compiled in.
const Enabled = true

// Assertf panics with a *ViolationError if cond is false. Only built under
// the morphdebug tag; release builds compile it to a no-op.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(&ViolationError{Msg: fmt.Sprintf(format, args...)})
	}
}
