// Package invariant is the sanctioned escape hatch for runtime assertion
// of properties the type system cannot express: 64-byte line layouts packing
// to exactly 512 bits, ZCC bit-vector popcounts matching allocated widths,
// counter monotonicity, and similar secure-memory invariants (MICRO 2018
// §IV–V).
//
// morphlint's panicpolicy analyzer forbids bare panic calls in library
// packages; the two constructs this package provides are recognized as
// deliberate:
//
//   - panic(invariant.Violationf(...)) marks a provably-unreachable state
//     (a corrupted enum, a case the constructor already rejected). It
//     always panics — reaching it is a bug no matter the build mode.
//   - invariant.Assertf(cond, ...) is a debug assertion compiled to a no-op
//     unless the `morphdebug` build tag is set. Hot paths (codec packing,
//     bit-level writers) use it so release builds pay nothing while
//     `go test -tags morphdebug ./...` checks every layout invariant.
//
// invariant.Must converts an (value, error) pair whose error was already
// ruled out by prior validation into the value, panicking with a
// *ViolationError otherwise.
package invariant

import "fmt"

// ViolationError is the payload of every invariant panic, so recover-based
// harnesses can distinguish assertion failures from other panics.
type ViolationError struct {
	// Msg describes the violated invariant.
	Msg string
}

// Error implements error.
func (e *ViolationError) Error() string { return "invariant violation: " + e.Msg }

// Violationf builds the panic payload for a provably-unreachable state.
// Intended use: panic(invariant.Violationf("counters: invalid format %v", f)).
func Violationf(format string, args ...any) *ViolationError {
	return &ViolationError{Msg: fmt.Sprintf(format, args...)}
}

// Must unwraps a (value, error) pair whose error path was already excluded
// by prior validation, e.g. replaying a trace that was validated at load
// time. It panics with a *ViolationError if the impossible error occurs.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(&ViolationError{Msg: "Must on validated path: " + err.Error()})
	}
	return v
}
