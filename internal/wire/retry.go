package wire

import (
	"errors"
	"fmt"
	"io"
	"net"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
)

// This file is the client-side error taxonomy: which failures mean "the
// request definitely did not happen" (BusyError), which mean "the
// transport died and the outcome is unknown" (poisoned / truncated /
// net errors), and which are verdicts that must never be retried
// (IntegrityError, RemoteError). ResilientClient's retry policy is
// built entirely on this classification.

// BusyError is a StatusBusy response: the server shed the request under
// overload before executing any of it. Always safe to retry after
// backoff, writes included.
type BusyError struct {
	Msg string
}

// Error implements error.
func (e *BusyError) Error() string { return "wire: server busy: " + e.Msg }

// MovedError is a StatusMoved response: the node that answered is not the
// cluster primary, so the data op was refused before executing any of it.
// Leader, when non-empty, is the advertised primary address; Epoch is the
// responder's fencing epoch (clients keep the route with the highest epoch
// when nodes disagree). Always safe to retry — against the leader.
type MovedError struct {
	Epoch  uint64
	Leader string
}

// Error implements error.
func (e *MovedError) Error() string {
	if e.Leader == "" {
		return fmt.Sprintf("wire: not primary (epoch %d, leader unknown)", e.Epoch)
	}
	return fmt.Sprintf("wire: not primary (epoch %d, leader %s)", e.Epoch, e.Leader)
}

// IsMoved reports whether err is a not-primary redirect; the request had
// no effect and should be retried against the advertised leader.
func IsMoved(err error) bool {
	var me *MovedError
	return errors.As(err, &me)
}

// IsRetryable reports whether err is worth retrying at all. Three tiers:
//
//   - *BusyError and *tenant.QuotaError: retryable for every op — the
//     server promises the shed request had no effect (both are
//     shed-before-execution verdicts; quota sheds just carry the tenant
//     and exhausted resource for client-side accounting).
//   - Transport-class errors (poisoned client, truncated frame, closed
//     or reset connection, deadline): retryable, but the outcome of an
//     in-flight request is unknown, so non-idempotent ops must only be
//     retried when the caller opted in (ResilientConfig.RetryWrites).
//   - Everything else — integrity violations, remote verdicts
//     (*RemoteError), codec errors — is a fact about the request or the
//     memory, not the network. Retrying cannot change it and retrying an
//     IntegrityError would convert a tamper detection into traffic.
func IsRetryable(err error) bool {
	var ie *secmem.IntegrityError
	if errors.As(err, &ie) {
		return false
	}
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		return true
	}
	if IsMoved(err) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return IsTransport(err)
}

// IsShed reports whether err is a shed-before-execution verdict (busy or
// quota): the request had no effect and is safe to retry after backoff.
func IsShed(err error) bool {
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var qe *tenant.QuotaError
	return errors.As(err, &qe)
}

// IsTransport reports whether err means the connection is no longer
// trustworthy (so the op's outcome is unknown and the connection must be
// replaced before any retry).
func IsTransport(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClientPoisoned) || errors.Is(err, ErrTruncated) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
