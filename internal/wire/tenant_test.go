package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/securemem/morphtree/internal/tenant"
)

func TestHelloCodecRoundTrip(t *testing.T) {
	tok := tenant.HelloToken("secret", "alpha")
	p, err := AppendHello(nil, "alpha", tok)
	if err != nil {
		t.Fatal(err)
	}
	id, gotTok, err := DecodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != "alpha" || !bytes.Equal(gotTok, tok[:]) {
		t.Fatalf("round trip gave id=%q token=%x", id, gotTok)
	}
}

func TestHelloCodecRejects(t *testing.T) {
	var tok [tenant.TokenLen]byte
	if _, err := AppendHello(nil, "", tok); err == nil {
		t.Fatal("empty id encoded")
	}
	if _, err := AppendHello(nil, strings.Repeat("x", 256), tok); err == nil {
		t.Fatal("oversized id encoded")
	}
	good, err := AppendHello(nil, "a", tok)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{
		nil,                // empty
		{0},                // zero id length
		good[:len(good)-1], // truncated token
		append(good[:0:0], append(good, 0xFF)...), // trailing garbage
		{5, 'a'}, // id length past end
	} {
		if _, _, err := DecodeHello(bad); err == nil {
			t.Fatalf("DecodeHello(%v) succeeded", bad)
		}
	}
}

func TestQuotaErrorRoundTrip(t *testing.T) {
	in := &tenant.QuotaError{Tenant: "alpha", Resource: "ops", Msg: "rate 100 ops/s exhausted"}
	status, p := EncodeError(in)
	if status != StatusQuota {
		t.Fatalf("status = %#x, want StatusQuota", status)
	}
	out := DecodeError(status, p)
	var qe *tenant.QuotaError
	if !errors.As(out, &qe) {
		t.Fatalf("decoded %T (%v), want *tenant.QuotaError", out, out)
	}
	if *qe != *in {
		t.Fatalf("round trip changed fields: %+v != %+v", qe, in)
	}
}

func TestQuotaErrorOversizedFallsBack(t *testing.T) {
	in := &tenant.QuotaError{Tenant: strings.Repeat("x", 300), Resource: "ops", Msg: "m"}
	status, _ := EncodeError(in)
	if status != StatusError {
		t.Fatalf("status = %#x, want StatusError fallback for unencodable fields", status)
	}
}

func TestDecodeQuotaRejectsTruncated(t *testing.T) {
	for _, bad := range [][]byte{
		nil,              // empty
		{3, 'a'},         // tenant length past end
		{1, 'a', 2, 'o'}, // resource length past end
	} {
		if err := DecodeError(StatusQuota, bad); err == nil {
			t.Fatalf("DecodeError(StatusQuota, %v) = nil", bad)
		} else {
			var qe *tenant.QuotaError
			if errors.As(err, &qe) {
				t.Fatalf("truncated payload decoded to %+v", qe)
			}
		}
	}
}

func TestQuotaErrorRetryTaxonomy(t *testing.T) {
	qe := &tenant.QuotaError{Tenant: "a", Resource: "ops", Msg: "m"}
	if !IsRetryable(qe) {
		t.Fatal("QuotaError not retryable: sheds happen before execution")
	}
	if !IsShed(qe) {
		t.Fatal("IsShed(QuotaError) = false")
	}
	if !IsShed(&BusyError{Msg: "m"}) {
		t.Fatal("IsShed(BusyError) = false")
	}
	if IsShed(errors.New("boom")) {
		t.Fatal("IsShed(plain error) = true")
	}
}
