package wire

import (
	"encoding/binary"
	"fmt"
)

// Payload codec for OpMigrate, the live shard migration op. One opcode
// carries the whole protocol; a phase byte selects the message. The
// recipient drives the donor-side phases (Begin/Chunk/Tail/Cutover/Abort);
// the control plane kicks the recipient with Run.
//
// The shard state itself crosses the wire as an opaque authenticated
// stream (the ckpt codec, keyed off the shared master key), and tail
// records as sealed wal.Codec frames under the epoch-bound replication
// key — this layer only moves bytes, exactly like the replication path.

// Migration phases.
const (
	// MigrateBegin asks the donor to spill Shard and answer its mark (the
	// LSN the spill covers) and the spill's byte size.
	MigrateBegin byte = 1
	// MigrateChunk fetches spill bytes [Cursor, Cursor+chunk) for Shard.
	MigrateChunk byte = 2
	// MigrateTail fetches up to Max sealed WAL records for Shard with
	// LSN > Cursor.
	MigrateTail byte = 3
	// MigrateCutover fences Shard on the donor (writes start answering
	// the MOVED redirect naming Node) and answers the final LSN.
	MigrateCutover byte = 4
	// MigrateAbort discards the donor's spill and unfences Shard.
	MigrateAbort byte = 5
	// MigrateRun asks the receiving node to migrate Shard in from Donor.
	// This is the one phase served by the recipient, and the only one the
	// control plane sends.
	MigrateRun byte = 6
)

// migratePhaseNames maps phases to names for errors and traces.
var migratePhaseNames = map[byte]string{
	MigrateBegin:   "begin",
	MigrateChunk:   "chunk",
	MigrateTail:    "tail",
	MigrateCutover: "cutover",
	MigrateAbort:   "abort",
	MigrateRun:     "run",
}

// MigratePhaseName returns the lowercase name of a migration phase.
func MigratePhaseName(ph byte) string {
	if name, ok := migratePhaseNames[ph]; ok {
		return name
	}
	return fmt.Sprintf("phase_%02x", ph)
}

// MigrateRequest is one OpMigrate message.
type MigrateRequest struct {
	// Phase selects the message (MigrateBegin..MigrateRun).
	Phase byte
	// Epoch is the sender's fencing epoch. Donor-side phases are refused
	// (with the MOVED redirect) on a mismatch, like replication polls.
	Epoch uint64
	// Shard is the shard being migrated.
	Shard uint32
	// Node is the sender's advertised address. On Cutover it is the
	// address the donor's redirects will name as the shard's new home.
	Node string
	// Cursor is the spill byte offset (Chunk) or the LSN tail records
	// must follow (Tail). Unused elsewhere.
	Cursor uint64
	// Max caps the records in a Tail response. Unused elsewhere.
	Max uint32
	// Donor is the address to migrate from (Run only).
	Donor string
}

const migReqFixed = 1 + 8 + 4 + 2 + 8 + 4 + 2 // phase+epoch+shard+nodeLen+cursor+max+donorLen

// EncodeMigrateRequest encodes an OpMigrate request payload:
// | u8 phase | u64 epoch | u32 shard | u16 nodeLen | node |
// | u64 cursor | u32 max | u16 donorLen | donor |
func EncodeMigrateRequest(r *MigrateRequest) ([]byte, error) {
	if len(r.Node) > maxNodeAddr {
		return nil, fmt.Errorf("wire: node address %d bytes, max %d", len(r.Node), maxNodeAddr)
	}
	if len(r.Donor) > maxNodeAddr {
		return nil, fmt.Errorf("wire: donor address %d bytes, max %d", len(r.Donor), maxNodeAddr)
	}
	p := make([]byte, 0, migReqFixed+len(r.Node)+len(r.Donor))
	p = append(p, r.Phase)
	p = binary.BigEndian.AppendUint64(p, r.Epoch)
	p = binary.BigEndian.AppendUint32(p, r.Shard)
	p = binary.BigEndian.AppendUint16(p, uint16(len(r.Node)))
	p = append(p, r.Node...)
	p = binary.BigEndian.AppendUint64(p, r.Cursor)
	p = binary.BigEndian.AppendUint32(p, r.Max)
	p = binary.BigEndian.AppendUint16(p, uint16(len(r.Donor)))
	return append(p, r.Donor...), nil
}

// DecodeMigrateRequest decodes an OpMigrate request payload.
func DecodeMigrateRequest(p []byte) (*MigrateRequest, error) {
	if len(p) < migReqFixed {
		return nil, fmt.Errorf("wire: migrate request is %d bytes, want >= %d", len(p), migReqFixed)
	}
	r := &MigrateRequest{Phase: p[0]}
	r.Epoch = binary.BigEndian.Uint64(p[1:])
	r.Shard = binary.BigEndian.Uint32(p[9:])
	nodeLen := int(binary.BigEndian.Uint16(p[13:]))
	if nodeLen > maxNodeAddr {
		return nil, fmt.Errorf("wire: node address %d bytes, max %d", nodeLen, maxNodeAddr)
	}
	p = p[15:]
	if len(p) < nodeLen+14 {
		return nil, fmt.Errorf("wire: migrate request cut short in node address")
	}
	r.Node = string(p[:nodeLen])
	p = p[nodeLen:]
	r.Cursor = binary.BigEndian.Uint64(p)
	r.Max = binary.BigEndian.Uint32(p[8:])
	donorLen := int(binary.BigEndian.Uint16(p[12:]))
	if donorLen > maxNodeAddr {
		return nil, fmt.Errorf("wire: donor address %d bytes, max %d", donorLen, maxNodeAddr)
	}
	p = p[14:]
	if len(p) != donorLen {
		return nil, fmt.Errorf("wire: migrate request donor is %d bytes, want %d", len(p), donorLen)
	}
	r.Donor = string(p)
	return r, nil
}

// MigrateResponse answers one OpMigrate message. Which fields are
// meaningful depends on the request phase.
type MigrateResponse struct {
	// Epoch is the responder's fencing epoch.
	Epoch uint64
	// Mark is the LSN the spill covers (Begin) or the donor's final LSN
	// for the shard (Cutover).
	Mark uint64
	// Size is the spill's total byte size (Begin).
	Size uint64
	// Data is a run of spill bytes (Chunk) or a sealed record batch
	// (Tail). Empty on an exhausted tail.
	Data []byte
	// Done reports an exhausted cursor: the last Chunk of the spill, or a
	// Tail that delivered every record the donor has.
	Done bool
}

const migRespFixed = 8 + 8 + 8 + 1 + 4 // epoch+mark+size+flags+dataLen

// EncodeMigrateResponse encodes an OpMigrate OK payload:
// | u64 epoch | u64 mark | u64 size | u8 flags | u32 dataLen | data |
func EncodeMigrateResponse(r *MigrateResponse) ([]byte, error) {
	p := make([]byte, 0, migRespFixed+len(r.Data))
	p = binary.BigEndian.AppendUint64(p, r.Epoch)
	p = binary.BigEndian.AppendUint64(p, r.Mark)
	p = binary.BigEndian.AppendUint64(p, r.Size)
	var flags byte
	if r.Done {
		flags |= 1
	}
	p = append(p, flags)
	p = binary.BigEndian.AppendUint32(p, uint32(len(r.Data)))
	return append(p, r.Data...), nil
}

// DecodeMigrateResponse decodes an OpMigrate OK payload. Data is a fresh
// copy, safe to retain.
func DecodeMigrateResponse(p []byte) (*MigrateResponse, error) {
	if len(p) < migRespFixed {
		return nil, fmt.Errorf("wire: migrate response is %d bytes, want >= %d", len(p), migRespFixed)
	}
	r := &MigrateResponse{
		Epoch: binary.BigEndian.Uint64(p),
		Mark:  binary.BigEndian.Uint64(p[8:]),
		Size:  binary.BigEndian.Uint64(p[16:]),
		Done:  p[24]&1 != 0,
	}
	n := binary.BigEndian.Uint32(p[25:])
	p = p[migRespFixed:]
	if uint64(len(p)) != uint64(n) {
		return nil, fmt.Errorf("wire: migrate response data is %d bytes, want %d", len(p), n)
	}
	if n > 0 {
		r.Data = append([]byte(nil), p...)
	}
	return r, nil
}

// Migrate performs one OpMigrate round trip.
func (c *Client) Migrate(req *MigrateRequest) (*MigrateResponse, error) {
	p, err := EncodeMigrateRequest(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpMigrate, p)
	if err != nil {
		return nil, err
	}
	return DecodeMigrateResponse(body)
}
