package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/proof"
)

// proofBody builds a well-formed proof wire body for hostile-server tests.
func proofBody(t *testing.T) []byte {
	t.Helper()
	line := make([]byte, proof.LineBytes)
	p := &proof.Proof{
		Addr:        64,
		Shards:      1,
		Shard:       0,
		Epoch:       1,
		Line:        line,
		LineMAC:     1,
		Chain:       [][]byte{append([]byte(nil), line...)},
		Root:        append([]byte(nil), line...),
		ShardRoots:  []proof.Digest{{1}},
		Attestation: make([]byte, 64),
	}
	body, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// fakeProofServer answers each request with a caller-scripted status+body.
func fakeProofServer(t *testing.T, srv net.Conn, bodies [][]byte) {
	t.Helper()
	go func() {
		for _, body := range bodies {
			if _, _, err := ReadFrame(srv); err != nil {
				return
			}
			_ = WriteFrame(srv, StatusOK, body)
		}
		// Keep answering pings so usability checks pass.
		for {
			if _, _, err := ReadFrame(srv); err != nil {
				return
			}
			_ = WriteFrame(srv, StatusOK, nil)
		}
	}()
}

// TestProofTruncatedMidBody: a server that truncates a proof payload —
// cut inside the chain, inside the digest vector, or to nothing — yields
// a typed decode error, and the connection is NOT poisoned: the frame
// itself arrived intact, only its contents were bad.
func TestProofTruncatedMidBody(t *testing.T) {
	body := proofBody(t)
	cuts := [][]byte{
		body[:0],           // empty body
		body[:8],           // ends inside the fixed header
		body[:30],          // ends inside the data line
		body[:len(body)/2], // ends inside the chain
		body[:len(body)-1], // one byte short of complete
	}
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	defer c.Close()
	fakeProofServer(t, srv, cuts)

	for i := range cuts {
		_, err := c.Proof(64)
		if err == nil {
			t.Fatalf("cut %d: truncated proof decoded successfully", i)
		}
		var te *proof.TruncatedError
		var be *proof.BoundsError
		if !errors.As(err, &te) && !errors.As(err, &be) {
			t.Fatalf("cut %d: got %v, want a typed proof decode error", i, err)
		}
	}
	if c.Poisoned() {
		t.Fatal("payload-level damage must not poison the connection")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after truncated proofs: %v", err)
	}
}

// TestProofOversizedPathLength: a hostile server claiming a path deeper
// than any real tree is rejected by the cap before allocation.
func TestProofOversizedPathLength(t *testing.T) {
	body := proofBody(t)
	// chain length u16 sits after addr(8) + shards(4) + shard(4) +
	// epoch(8) + line flag(1) + line(64) + mac(8).
	const chainOff = 8 + 4 + 4 + 8 + 1 + proof.LineBytes + 8
	forged := append([]byte(nil), body...)
	forged[chainOff] = 0xFF
	forged[chainOff+1] = 0xFF

	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	defer c.Close()
	fakeProofServer(t, srv, [][]byte{forged})

	_, err := c.Proof(64)
	var be *proof.BoundsError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *proof.BoundsError", err)
	}
	if be.Max != proof.MaxChainLines {
		t.Fatalf("bound reported %d, want MaxChainLines=%d", be.Max, proof.MaxChainLines)
	}
	if c.Poisoned() {
		t.Fatal("oversized path must not poison the connection")
	}
}

// TestRootInfoTruncated: the transparency-log position survives the same
// hostile treatment.
func TestRootInfoTruncated(t *testing.T) {
	info := &proof.RootInfo{
		Pub:  make([]byte, 32),
		Head: proof.SignedHead{Size: 1, Sig: make([]byte, 64)},
	}
	body, err := info.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	defer c.Close()
	fakeProofServer(t, srv, [][]byte{body[:len(body)-3]})

	if _, err := c.Root(); err == nil {
		t.Fatal("truncated root info decoded successfully")
	}
	if c.Poisoned() {
		t.Fatal("truncated root info must not poison the connection")
	}
}
