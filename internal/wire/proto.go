package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
)

// Payload codecs for the individual ops. Addresses travel as big-endian
// u64; lines are raw 64-byte cachelines.

// addrBytes is the encoded size of a line address.
const addrBytes = 8

// AppendAddr appends an OpRead / OpTamper payload to dst and returns the
// extended slice: the zero-allocation form for callers that reuse a
// request buffer across calls.
//
//morph:hotpath
func AppendAddr(dst []byte, addr uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, addr)
}

// EncodeAddr encodes an OpRead / OpTamper payload into a fresh slice (the
// one-shot form; hot paths use AppendAddr with a reused buffer).
func EncodeAddr(addr uint64) []byte {
	return AppendAddr(make([]byte, 0, addrBytes), addr)
}

// DecodeAddr decodes an OpRead / OpTamper payload.
//
//morph:hotpath
func DecodeAddr(p []byte) (uint64, error) {
	if len(p) != addrBytes {
		return 0, fmt.Errorf("wire: address payload is %d bytes, want %d", len(p), addrBytes)
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendWrite appends an OpWrite payload — address followed by the line —
// to dst and returns the extended slice.
//
//morph:hotpath
func AppendWrite(dst []byte, addr uint64, line []byte) ([]byte, error) {
	if len(line) != secmem.LineBytes {
		return dst, fmt.Errorf("wire: line is %d bytes, want %d", len(line), secmem.LineBytes)
	}
	return append(AppendAddr(dst, addr), line...), nil
}

// EncodeWrite encodes an OpWrite payload into a fresh slice (the one-shot
// form; hot paths use AppendWrite with a reused buffer).
func EncodeWrite(addr uint64, line []byte) ([]byte, error) {
	return AppendWrite(make([]byte, 0, addrBytes+secmem.LineBytes), addr, line)
}

// DecodeWrite decodes an OpWrite payload. The returned line aliases p.
//
//morph:hotpath
func DecodeWrite(p []byte) (uint64, []byte, error) {
	if len(p) != addrBytes+secmem.LineBytes {
		return 0, nil, fmt.Errorf("wire: write payload is %d bytes, want %d", len(p), addrBytes+secmem.LineBytes)
	}
	return binary.BigEndian.Uint64(p), p[addrBytes:], nil
}

// AppendRootRange appends an OpRootRange payload — the 0-based entry
// range [from, to) — to dst and returns the extended slice.
func AppendRootRange(dst []byte, from, to uint64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, from)
	return binary.BigEndian.AppendUint64(dst, to)
}

// DecodeRootRange decodes an OpRootRange payload.
func DecodeRootRange(p []byte) (from, to uint64, err error) {
	if len(p) != 2*addrBytes {
		return 0, 0, fmt.Errorf("wire: root-range payload is %d bytes, want %d", len(p), 2*addrBytes)
	}
	return binary.BigEndian.Uint64(p), binary.BigEndian.Uint64(p[addrBytes:]), nil
}

// AppendHello appends an OpHello payload — | u8 idLen | id | 32-byte
// token | — to dst and returns the extended slice. The token is the
// HMAC proof of possession (tenant.HelloToken); the secret itself never
// crosses the wire.
func AppendHello(dst []byte, id string, token [tenant.TokenLen]byte) ([]byte, error) {
	if id == "" || len(id) > 255 {
		return dst, fmt.Errorf("wire: tenant id length %d must be 1..255", len(id))
	}
	dst = append(dst, byte(len(id)))
	dst = append(dst, id...)
	return append(dst, token[:]...), nil
}

// DecodeHello decodes an OpHello payload. The returned token slice
// aliases p.
func DecodeHello(p []byte) (id string, token []byte, err error) {
	if len(p) < 1 {
		return "", nil, fmt.Errorf("wire: hello payload is empty")
	}
	n := int(p[0])
	if n == 0 || len(p) != 1+n+tenant.TokenLen {
		return "", nil, fmt.Errorf("wire: hello payload is %d bytes, want %d", len(p), 1+n+tenant.TokenLen)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// EncodeStats encodes an OpStats OK payload.
func EncodeStats(s secmem.Stats) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("wire: encode stats: %w", err)
	}
	return b, nil
}

// DecodeStats decodes an OpStats OK payload.
func DecodeStats(p []byte) (secmem.Stats, error) {
	var s secmem.Stats
	if err := json.Unmarshal(p, &s); err != nil {
		return secmem.Stats{}, fmt.Errorf("wire: decode stats: %w", err)
	}
	return s, nil
}

// EncodeError turns any error into a response (status, payload) pair. An
// *secmem.IntegrityError anywhere in the chain is encoded structurally so
// it survives the trip, a *BusyError becomes StatusBusy, a
// *tenant.QuotaError becomes StatusQuota (tenant and resource encoded
// field-for-field), and everything else collapses to a StatusError
// string.
func EncodeError(err error) (byte, []byte) {
	var ie *secmem.IntegrityError
	if errors.As(err, &ie) {
		p := make([]byte, 16, 16+len(ie.Reason))
		binary.BigEndian.PutUint64(p, uint64(int64(ie.Level)))
		binary.BigEndian.PutUint64(p[8:], ie.Index)
		return StatusIntegrity, append(p, ie.Reason...)
	}
	var be *BusyError
	if errors.As(err, &be) {
		return StatusBusy, []byte(be.Msg)
	}
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		if len(qe.Tenant) <= 255 && len(qe.Resource) <= 255 {
			p := make([]byte, 0, 2+len(qe.Tenant)+len(qe.Resource)+len(qe.Msg))
			p = append(p, byte(len(qe.Tenant)))
			p = append(p, qe.Tenant...)
			p = append(p, byte(len(qe.Resource)))
			p = append(p, qe.Resource...)
			return StatusQuota, append(p, qe.Msg...)
		}
	}
	var me *MovedError
	if errors.As(err, &me) {
		p := make([]byte, 8, 8+len(me.Leader))
		binary.BigEndian.PutUint64(p, me.Epoch)
		return StatusMoved, append(p, me.Leader...)
	}
	return StatusError, []byte(err.Error())
}

// DecodeError reconstructs the error a non-OK response carries:
// *secmem.IntegrityError for StatusIntegrity, *RemoteError for StatusError.
func DecodeError(status byte, p []byte) error {
	switch status {
	case StatusIntegrity:
		if len(p) < 16 {
			return fmt.Errorf("wire: integrity payload is %d bytes, want >= 16", len(p))
		}
		return &secmem.IntegrityError{
			Level:  int(int64(binary.BigEndian.Uint64(p))),
			Index:  binary.BigEndian.Uint64(p[8:]),
			Reason: string(p[16:]),
		}
	case StatusError:
		return &RemoteError{Msg: string(p)}
	case StatusBusy:
		return &BusyError{Msg: string(p)}
	case StatusQuota:
		if len(p) < 1 {
			return fmt.Errorf("wire: quota payload is empty")
		}
		tn := int(p[0])
		if len(p) < 1+tn+1 {
			return fmt.Errorf("wire: quota payload is %d bytes, want >= %d", len(p), 1+tn+1)
		}
		rn := int(p[1+tn])
		if len(p) < 1+tn+1+rn {
			return fmt.Errorf("wire: quota payload is %d bytes, want >= %d", len(p), 1+tn+1+rn)
		}
		return &tenant.QuotaError{
			Tenant:   string(p[1 : 1+tn]),
			Resource: string(p[1+tn+1 : 1+tn+1+rn]),
			Msg:      string(p[1+tn+1+rn:]),
		}
	case StatusMoved:
		if len(p) < 8 {
			return fmt.Errorf("wire: moved payload is %d bytes, want >= 8", len(p))
		}
		return &MovedError{
			Epoch:  binary.BigEndian.Uint64(p),
			Leader: string(p[8:]),
		}
	}
	return fmt.Errorf("wire: unknown response status %#x", status)
}
