package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Payload codecs for the cluster ops (OpReplicate / OpRoute / OpPromote /
// OpFollow). The replication stream itself — the per-shard batches inside a
// ReplicateResponse — is opaque here: each batch is a run of sealed WAL
// frames produced by wal.Codec under a key bound to the sender's fencing
// epoch, so this layer only moves authenticated bytes around.

// Codec sanity caps: a hostile peer must not be able to make a node
// allocate absurd vectors with a tiny frame.
const (
	maxClusterShards = 1 << 16
	maxNodeAddr      = 1024
)

// RouteInfo is a node's view of the cluster, served as JSON by OpRoute.
type RouteInfo struct {
	// Epoch is the responder's fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Self is the responder's advertised address.
	Self string `json:"self"`
	// Role is "primary", "replica", or "fenced".
	Role string `json:"role"`
	// Leader is the primary's advertised address ("" when unknown).
	Leader string `json:"leader"`
	// Nodes lists the known cluster members (on a primary: itself plus
	// every follower currently polling it).
	Nodes []RouteNode `json:"nodes"`
	// ShardNodes maps shard index -> index into Nodes of the node serving
	// it. With full replication every entry names the leader.
	ShardNodes []int `json:"shard_nodes,omitempty"`
	// Marks is the responder's own per-shard durable LSN vector.
	Marks []uint64 `json:"marks"`
	// LeaseRemainingMS is how much of the leader lease is left from this
	// replica's perspective (-1 on a primary). A replica refuses promotion
	// until it reaches 0.
	LeaseRemainingMS int64 `json:"lease_remaining_ms"`
}

// RouteNode is one cluster member in a RouteInfo.
type RouteNode struct {
	Addr string `json:"addr"`
	Role string `json:"role"`
}

// EncodeRouteInfo encodes an OpRoute OK payload.
func EncodeRouteInfo(r *RouteInfo) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wire: encode route: %w", err)
	}
	return b, nil
}

// DecodeRouteInfo decodes an OpRoute OK payload.
func DecodeRouteInfo(p []byte) (*RouteInfo, error) {
	var r RouteInfo
	if err := json.Unmarshal(p, &r); err != nil {
		return nil, fmt.Errorf("wire: decode route: %w", err)
	}
	return &r, nil
}

// ReplicateRequest is a follower's replication poll.
type ReplicateRequest struct {
	// Epoch is the follower's fencing epoch; a primary at a lower epoch
	// steps down on seeing it, a follower polling a higher-epoch primary
	// gets a MovedError carrying the current epoch.
	Epoch uint64
	// Node is the follower's advertised address (the primary keys its
	// replica-acknowledgement state by it).
	Node string
	// Marks is the follower's per-shard durable watermark vector; the
	// response streams records strictly past these.
	Marks []uint64
	// Bootstrap forces a full snapshot response regardless of Marks — a
	// deposed ex-primary rejoining must discard its possibly-divergent log.
	Bootstrap bool
}

const replReqFixed = 8 + 1 + 2 + 4 // epoch + flags + nodeLen + nshards

// EncodeReplicateRequest encodes an OpReplicate request payload:
// | u64 epoch | u8 flags | u16 nodeLen | node | u32 nshards | u64 marks… |
func EncodeReplicateRequest(r *ReplicateRequest) ([]byte, error) {
	if len(r.Node) > maxNodeAddr {
		return nil, fmt.Errorf("wire: node address %d bytes, max %d", len(r.Node), maxNodeAddr)
	}
	if len(r.Marks) > maxClusterShards {
		return nil, fmt.Errorf("wire: %d shard marks, max %d", len(r.Marks), maxClusterShards)
	}
	p := make([]byte, 0, replReqFixed+len(r.Node)+8*len(r.Marks))
	p = binary.BigEndian.AppendUint64(p, r.Epoch)
	var flags byte
	if r.Bootstrap {
		flags |= 1
	}
	p = append(p, flags)
	p = binary.BigEndian.AppendUint16(p, uint16(len(r.Node)))
	p = append(p, r.Node...)
	p = binary.BigEndian.AppendUint32(p, uint32(len(r.Marks)))
	for _, m := range r.Marks {
		p = binary.BigEndian.AppendUint64(p, m)
	}
	return p, nil
}

// DecodeReplicateRequest decodes an OpReplicate request payload.
func DecodeReplicateRequest(p []byte) (*ReplicateRequest, error) {
	if len(p) < replReqFixed {
		return nil, fmt.Errorf("wire: replicate request is %d bytes, want >= %d", len(p), replReqFixed)
	}
	r := &ReplicateRequest{Epoch: binary.BigEndian.Uint64(p)}
	r.Bootstrap = p[8]&1 != 0
	nodeLen := int(binary.BigEndian.Uint16(p[9:]))
	if nodeLen > maxNodeAddr {
		return nil, fmt.Errorf("wire: node address %d bytes, max %d", nodeLen, maxNodeAddr)
	}
	p = p[11:]
	if len(p) < nodeLen+4 {
		return nil, fmt.Errorf("wire: replicate request cut short in node address")
	}
	r.Node = string(p[:nodeLen])
	n := binary.BigEndian.Uint32(p[nodeLen:])
	if n > maxClusterShards {
		return nil, fmt.Errorf("wire: %d shard marks, max %d", n, maxClusterShards)
	}
	p = p[nodeLen+4:]
	if uint64(len(p)) != uint64(n)*8 {
		return nil, fmt.Errorf("wire: replicate request marks are %d bytes, want %d", len(p), n*8)
	}
	r.Marks = make([]uint64, n)
	for i := range r.Marks {
		r.Marks[i] = binary.BigEndian.Uint64(p[i*8:])
	}
	return r, nil
}

// ReplicateResponse is the primary's answer to a replication poll: either
// per-shard sealed record batches past the follower's watermarks, or a full
// snapshot bootstrap when the cursor predates the retained log.
type ReplicateResponse struct {
	// Epoch is the responder's fencing epoch; batches are sealed under the
	// replication key bound to it.
	Epoch uint64
	// Marks is the responder's own durable watermark vector (followers
	// compute replication lag from it).
	Marks []uint64
	// Batches holds one sealed wal.Codec frame run per shard (nil/empty =
	// nothing new). Empty when Snapshot is set.
	Batches [][]byte
	// Snapshot, when non-nil, is a full-state blob (shard.Save format)
	// covering SnapMarks; the follower must discard its local state and
	// InstallSnapshot instead of applying batches.
	Snapshot []byte
	// SnapMarks is the per-shard LSN vector Snapshot covers.
	SnapMarks []uint64
}

const replRespFixed = 8 + 1 + 4 // epoch + flags + nshards

// EncodeReplicateResponse encodes an OpReplicate OK payload:
// | u64 epoch | u8 flags | u32 nshards | u64 marks… |
// then, snapshot (flags bit0): | u64 snapMarks… | blob |
// else: per shard | u32 batchLen | batch |.
func EncodeReplicateResponse(r *ReplicateResponse) ([]byte, error) {
	if len(r.Marks) > maxClusterShards {
		return nil, fmt.Errorf("wire: %d shard marks, max %d", len(r.Marks), maxClusterShards)
	}
	size := replRespFixed + 8*len(r.Marks)
	snapshot := r.Snapshot != nil
	if snapshot {
		if len(r.SnapMarks) != len(r.Marks) {
			return nil, fmt.Errorf("wire: snapshot covers %d shards, marks %d", len(r.SnapMarks), len(r.Marks))
		}
		size += 8*len(r.SnapMarks) + len(r.Snapshot)
	} else {
		if len(r.Batches) != len(r.Marks) {
			return nil, fmt.Errorf("wire: %d batches for %d shards", len(r.Batches), len(r.Marks))
		}
		for _, b := range r.Batches {
			size += 4 + len(b)
		}
	}
	p := make([]byte, 0, size)
	p = binary.BigEndian.AppendUint64(p, r.Epoch)
	var flags byte
	if snapshot {
		flags |= 1
	}
	p = append(p, flags)
	p = binary.BigEndian.AppendUint32(p, uint32(len(r.Marks)))
	for _, m := range r.Marks {
		p = binary.BigEndian.AppendUint64(p, m)
	}
	if snapshot {
		for _, m := range r.SnapMarks {
			p = binary.BigEndian.AppendUint64(p, m)
		}
		return append(p, r.Snapshot...), nil
	}
	for _, b := range r.Batches {
		p = binary.BigEndian.AppendUint32(p, uint32(len(b)))
		p = append(p, b...)
	}
	return p, nil
}

// DecodeReplicateResponse decodes an OpReplicate OK payload. All returned
// slices are fresh copies, safe to retain.
func DecodeReplicateResponse(p []byte) (*ReplicateResponse, error) {
	if len(p) < replRespFixed {
		return nil, fmt.Errorf("wire: replicate response is %d bytes, want >= %d", len(p), replRespFixed)
	}
	r := &ReplicateResponse{Epoch: binary.BigEndian.Uint64(p)}
	snapshot := p[8]&1 != 0
	n := binary.BigEndian.Uint32(p[9:])
	if n > maxClusterShards {
		return nil, fmt.Errorf("wire: %d shard marks, max %d", n, maxClusterShards)
	}
	p = p[replRespFixed:]
	if uint64(len(p)) < uint64(n)*8 {
		return nil, fmt.Errorf("wire: replicate response cut short in marks")
	}
	r.Marks = make([]uint64, n)
	for i := range r.Marks {
		r.Marks[i] = binary.BigEndian.Uint64(p[i*8:])
	}
	p = p[n*8:]
	if snapshot {
		if uint64(len(p)) < uint64(n)*8 {
			return nil, fmt.Errorf("wire: replicate response cut short in snapshot marks")
		}
		r.SnapMarks = make([]uint64, n)
		for i := range r.SnapMarks {
			r.SnapMarks[i] = binary.BigEndian.Uint64(p[i*8:])
		}
		r.Snapshot = append([]byte(nil), p[n*8:]...)
		return r, nil
	}
	r.Batches = make([][]byte, n)
	for i := range r.Batches {
		if len(p) < 4 {
			return nil, fmt.Errorf("wire: replicate response cut short in batch %d length", i)
		}
		bl := binary.BigEndian.Uint32(p)
		p = p[4:]
		if uint64(len(p)) < uint64(bl) {
			return nil, fmt.Errorf("wire: replicate response cut short in batch %d body", i)
		}
		if bl > 0 {
			r.Batches[i] = append([]byte(nil), p[:bl]...)
		}
		p = p[bl:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wire: replicate response has %d trailing bytes", len(p))
	}
	return r, nil
}

// EncodePromote encodes an OpPromote payload:
// | u64 newEpoch | u32 nshards | u64 minMarks… |
func EncodePromote(newEpoch uint64, minMarks []uint64) ([]byte, error) {
	if len(minMarks) > maxClusterShards {
		return nil, fmt.Errorf("wire: %d shard marks, max %d", len(minMarks), maxClusterShards)
	}
	p := make([]byte, 0, 12+8*len(minMarks))
	p = binary.BigEndian.AppendUint64(p, newEpoch)
	p = binary.BigEndian.AppendUint32(p, uint32(len(minMarks)))
	for _, m := range minMarks {
		p = binary.BigEndian.AppendUint64(p, m)
	}
	return p, nil
}

// DecodePromote decodes an OpPromote payload.
func DecodePromote(p []byte) (newEpoch uint64, minMarks []uint64, err error) {
	if len(p) < 12 {
		return 0, nil, fmt.Errorf("wire: promote payload is %d bytes, want >= 12", len(p))
	}
	newEpoch = binary.BigEndian.Uint64(p)
	n := binary.BigEndian.Uint32(p[8:])
	if n > maxClusterShards {
		return 0, nil, fmt.Errorf("wire: %d shard marks, max %d", n, maxClusterShards)
	}
	p = p[12:]
	if uint64(len(p)) != uint64(n)*8 {
		return 0, nil, fmt.Errorf("wire: promote marks are %d bytes, want %d", len(p), n*8)
	}
	minMarks = make([]uint64, n)
	for i := range minMarks {
		minMarks[i] = binary.BigEndian.Uint64(p[i*8:])
	}
	return newEpoch, minMarks, nil
}

// EncodeFollow encodes an OpFollow payload:
// | u64 epoch | u16 leaderLen | leader |
func EncodeFollow(epoch uint64, leader string) ([]byte, error) {
	if len(leader) > maxNodeAddr {
		return nil, fmt.Errorf("wire: leader address %d bytes, max %d", len(leader), maxNodeAddr)
	}
	p := make([]byte, 0, 10+len(leader))
	p = binary.BigEndian.AppendUint64(p, epoch)
	p = binary.BigEndian.AppendUint16(p, uint16(len(leader)))
	return append(p, leader...), nil
}

// DecodeFollow decodes an OpFollow payload.
func DecodeFollow(p []byte) (epoch uint64, leader string, err error) {
	if len(p) < 10 {
		return 0, "", fmt.Errorf("wire: follow payload is %d bytes, want >= 10", len(p))
	}
	epoch = binary.BigEndian.Uint64(p)
	n := int(binary.BigEndian.Uint16(p[8:]))
	if n > maxNodeAddr {
		return 0, "", fmt.Errorf("wire: leader address %d bytes, max %d", n, maxNodeAddr)
	}
	if len(p) != 10+n {
		return 0, "", fmt.Errorf("wire: follow payload is %d bytes, want %d", len(p), 10+n)
	}
	return epoch, string(p[10:]), nil
}

// Route fetches the answering node's cluster view. Non-cluster servers
// answer *RemoteError.
func (c *Client) Route() (*RouteInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpRoute, nil)
	if err != nil {
		return nil, err
	}
	return DecodeRouteInfo(body)
}

// Replicate performs one replication poll. The response is fully decoded
// into fresh allocations, safe to retain.
func (c *Client) Replicate(req *ReplicateRequest) (*ReplicateResponse, error) {
	p, err := EncodeReplicateRequest(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpReplicate, p)
	if err != nil {
		return nil, err
	}
	return DecodeReplicateResponse(body)
}

// Promote asks the node to become primary at newEpoch once its WAL tail
// covers minMarks, returning its post-promotion cluster view.
func (c *Client) Promote(newEpoch uint64, minMarks []uint64) (*RouteInfo, error) {
	p, err := EncodePromote(newEpoch, minMarks)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpPromote, p)
	if err != nil {
		return nil, err
	}
	return DecodeRouteInfo(body)
}

// Follow redirects the node to follow leader at epoch.
func (c *Client) Follow(epoch uint64, leader string) error {
	p, err := EncodeFollow(epoch, leader)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = c.roundTrip(OpFollow, p)
	return err
}
