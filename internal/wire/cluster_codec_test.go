package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestReplicateRequestRoundTrip(t *testing.T) {
	want := &ReplicateRequest{
		Epoch:     7,
		Node:      "127.0.0.1:9999",
		Marks:     []uint64{0, 42, 1 << 40},
		Bootstrap: true,
	}
	p, err := EncodeReplicateRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReplicateRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestReplicateResponseBatchesRoundTrip(t *testing.T) {
	want := &ReplicateResponse{
		Epoch:   3,
		Marks:   []uint64{10, 0, 99},
		Batches: [][]byte{[]byte("sealed-frames-0"), nil, []byte("sealed-frames-2")},
	}
	p, err := EncodeReplicateResponse(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReplicateResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || !reflect.DeepEqual(got.Marks, want.Marks) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Snapshot != nil || got.SnapMarks != nil {
		t.Fatalf("unexpected snapshot fields: %+v", got)
	}
	for i := range want.Batches {
		if !bytes.Equal(got.Batches[i], want.Batches[i]) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

func TestReplicateResponseSnapshotRoundTrip(t *testing.T) {
	want := &ReplicateResponse{
		Epoch:     9,
		Marks:     []uint64{5, 6},
		Snapshot:  []byte("full-state-blob"),
		SnapMarks: []uint64{5, 6},
	}
	p, err := EncodeReplicateResponse(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReplicateResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Snapshot, want.Snapshot) || !reflect.DeepEqual(got.SnapMarks, want.SnapMarks) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got.Batches != nil {
		t.Fatalf("unexpected batches: %+v", got.Batches)
	}
}

// TestClusterCodecsTruncationRobust: every truncation of a valid encoding
// must error cleanly, never panic or decode garbage.
func TestClusterCodecsTruncationRobust(t *testing.T) {
	req, err := EncodeReplicateRequest(&ReplicateRequest{Epoch: 1, Node: "n1", Marks: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := EncodeReplicateResponse(&ReplicateResponse{Epoch: 1, Marks: []uint64{1}, Batches: [][]byte{[]byte("abc")}})
	if err != nil {
		t.Fatal(err)
	}
	prom, err := EncodePromote(2, []uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := EncodeFollow(2, "leader:1")
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		p      []byte
		decode func([]byte) error
	}{
		"request":  {req, func(b []byte) error { _, err := DecodeReplicateRequest(b); return err }},
		"response": {resp, func(b []byte) error { _, err := DecodeReplicateResponse(b); return err }},
		"promote":  {prom, func(b []byte) error { _, _, err := DecodePromote(b); return err }},
		"follow":   {fol, func(b []byte) error { _, _, err := DecodeFollow(b); return err }},
	} {
		for cut := 0; cut < len(tc.p); cut++ {
			if err := tc.decode(tc.p[:cut]); err == nil {
				t.Fatalf("%s: decode of %d/%d bytes succeeded", name, cut, len(tc.p))
			}
		}
		if err := tc.decode(tc.p); err != nil {
			t.Fatalf("%s: full decode failed: %v", name, err)
		}
	}
}

// TestReplicateRequestHostileLengths: absurd claimed vector sizes must be
// rejected before allocation.
func TestReplicateRequestHostileLengths(t *testing.T) {
	p, err := EncodeReplicateRequest(&ReplicateRequest{Epoch: 1, Node: "x", Marks: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	hostile := append([]byte(nil), p...)
	// nshards field sits after epoch(8)+flags(1)+nodeLen(2)+node(1).
	hostile[12], hostile[13], hostile[14], hostile[15] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeReplicateRequest(hostile); err == nil {
		t.Fatal("hostile shard count accepted")
	}
}

func TestMovedErrorCrossesWire(t *testing.T) {
	orig := &MovedError{Epoch: 12, Leader: "10.0.0.2:7000"}
	status, payload := EncodeError(orig)
	if status != StatusMoved {
		t.Fatalf("status = %#x, want StatusMoved", status)
	}
	err := DecodeError(status, payload)
	var me *MovedError
	if !errors.As(err, &me) {
		t.Fatalf("decoded %T, want *MovedError", err)
	}
	if me.Epoch != orig.Epoch || me.Leader != orig.Leader {
		t.Fatalf("decoded %+v, want %+v", me, orig)
	}
	if !IsMoved(err) || !IsRetryable(err) {
		t.Fatal("MovedError must be moved + retryable")
	}
	if IsShed(err) || IsTransport(err) {
		t.Fatal("MovedError is neither shed nor transport")
	}
	// Leaderless form survives too.
	err = DecodeError(EncodeError(&MovedError{Epoch: 3}))
	if !IsMoved(err) {
		t.Fatalf("leaderless moved error lost: %v", err)
	}
}

func TestRouteInfoRoundTrip(t *testing.T) {
	want := &RouteInfo{
		Epoch:            4,
		Self:             "a:1",
		Role:             "primary",
		Leader:           "a:1",
		Nodes:            []RouteNode{{Addr: "a:1", Role: "primary"}, {Addr: "b:2", Role: "replica"}},
		ShardNodes:       []int{0, 0},
		Marks:            []uint64{11, 12},
		LeaseRemainingMS: -1,
	}
	p, err := EncodeRouteInfo(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRouteInfo(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestClusterOpNames(t *testing.T) {
	for op, want := range map[byte]string{
		OpReplicate: "replicate",
		OpRoute:     "route",
		OpPromote:   "promote",
		OpFollow:    "follow",
	} {
		if got := OpName(op); got != want {
			t.Fatalf("OpName(%#x) = %q, want %q", op, got, want)
		}
	}
}
