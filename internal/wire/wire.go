// Package wire is morphserve's length-prefixed binary protocol. A frame is
//
//	| u32 big-endian body length | body |
//
// where a request body is | opcode byte | payload | and a response body is
// | status byte | payload |. Length-prefixing keeps the stream
// self-delimiting, so a malformed payload never desynchronizes the
// connection, and a hard cap on the body length bounds what a hostile peer
// can make the server allocate.
//
// Errors are typed end to end: a secmem.IntegrityError raised inside a
// shard is encoded field-for-field (level, index, reason) and decoded back
// into a *secmem.IntegrityError on the client, so callers' errors.As checks
// work identically in-process and across the wire.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	// OpRead reads one line: payload is a u64 address; OK response
	// carries the 64-byte plaintext.
	OpRead byte = 0x01
	// OpWrite writes one line: payload is a u64 address + 64 bytes.
	OpWrite byte = 0x02
	// OpVerify re-verifies every written line in every shard.
	OpVerify byte = 0x03
	// OpStats returns the aggregated shard stats as JSON.
	OpStats byte = 0x04
	// OpSnapshot returns the full persisted state (shard.Save format).
	OpSnapshot byte = 0x05
	// OpTamper flips a stored ciphertext bit at a u64 address (adversary
	// interface; servers only honor it when started with tampering
	// enabled). Used to demonstrate fail-closed detection end to end.
	OpTamper byte = 0x06
	// OpCheckpoint forces the server to cut a durable checkpoint: an
	// atomic on-disk snapshot that truncates the write-ahead log. Only
	// servers started with a data directory honor it; others answer
	// StatusError. The OK response carries the new u64 snapshot sequence
	// number.
	OpCheckpoint byte = 0x07
	// OpPing is the health check: empty payload, empty OK response. The
	// server answers it without taking an admission slot, so a loaded
	// (shedding) server still proves it is alive — liveness and capacity
	// are separate questions.
	OpPing byte = 0x08
	// OpObs returns the server's obs registry snapshot as JSON (the same
	// body /metricz serves), so protocol-only deployments can pull live
	// telemetry without the admin HTTP plane. Servers without a registry
	// answer StatusError.
	OpObs byte = 0x09
)

// opNames maps opcodes to the names used in per-op metric keys
// (server.op.<name>.latency) and human-readable output.
var opNames = map[byte]string{
	OpRead:       "read",
	OpWrite:      "write",
	OpVerify:     "verify",
	OpStats:      "stats",
	OpSnapshot:   "snapshot",
	OpTamper:     "tamper",
	OpCheckpoint: "checkpoint",
	OpPing:       "ping",
	OpObs:        "obs",
}

// OpName returns the lowercase name of an opcode, or "op_%02x" for
// opcodes this build does not know.
func OpName(op byte) string {
	if name, ok := opNames[op]; ok {
		return name
	}
	return fmt.Sprintf("op_%02x", op)
}

// Response status bytes.
const (
	// StatusOK carries the op-specific result payload.
	StatusOK byte = 0x00
	// StatusIntegrity carries an encoded secmem.IntegrityError: the
	// request touched tampered memory and failed closed.
	StatusIntegrity byte = 0x01
	// StatusError carries a plain error string (bad request, limits,
	// unknown opcode).
	StatusError byte = 0x02
	// StatusBusy carries a plain string and means the server shed this
	// request before executing any of it: admission control was full, or
	// the connection cap was reached. The promise is load-shedding, not
	// failure — the request had no effect, so retrying it after backoff
	// is always safe, writes included.
	StatusBusy byte = 0x03
)

// MaxBody caps a frame's body length. Snapshots of large memories are the
// biggest legitimate frames; anything over this is treated as a hostile or
// corrupt length prefix before any allocation happens.
const MaxBody = 64 << 20

// lenBytes is the size of the frame length prefix.
const lenBytes = 4

// Typed framing errors, matchable with errors.Is.
var (
	// ErrOversized reports a length prefix exceeding MaxBody.
	ErrOversized = errors.New("wire: frame exceeds size limit")
	// ErrTruncated reports a connection that died mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrEmptyFrame reports a zero-length body (no opcode/status byte).
	ErrEmptyFrame = errors.New("wire: empty frame body")
)

// RemoteError is a non-integrity failure reported by the peer
// (StatusError): bad request, server limits, unknown opcode.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// WriteFrame writes one frame whose body is the tag byte (opcode or
// status) followed by payload.
func WriteFrame(w io.Writer, tag byte, payload []byte) error {
	if len(payload)+1 > MaxBody {
		return fmt.Errorf("%w: body %d > %d", ErrOversized, len(payload)+1, MaxBody)
	}
	hdr := make([]byte, lenBytes+1, lenBytes+1+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[lenBytes] = tag
	if _, err := w.Write(append(hdr, payload...)); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame and returns its tag byte and payload. A clean
// close at a frame boundary returns io.EOF; a close or error mid-frame
// returns ErrTruncated; a length prefix over MaxBody returns ErrOversized
// without allocating the claimed size.
func ReadFrame(r io.Reader) (tag byte, payload []byte, err error) {
	var hdr [lenBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading length: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if n > MaxBody {
		return 0, nil, fmt.Errorf("%w: body %d > %d", ErrOversized, n, MaxBody)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrTruncated, n, err)
	}
	return body[0], body[1:], nil
}
