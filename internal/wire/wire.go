// Package wire is morphserve's length-prefixed binary protocol. A frame is
//
//	| u32 big-endian body length | body |
//
// where a request body is | opcode byte | payload | and a response body is
// | status byte | payload |. Length-prefixing keeps the stream
// self-delimiting, so a malformed payload never desynchronizes the
// connection, and a hard cap on the body length bounds what a hostile peer
// can make the server allocate.
//
// Errors are typed end to end: a secmem.IntegrityError raised inside a
// shard is encoded field-for-field (level, index, reason) and decoded back
// into a *secmem.IntegrityError on the client, so callers' errors.As checks
// work identically in-process and across the wire.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

// Request opcodes.
const (
	// OpRead reads one line: payload is a u64 address; OK response
	// carries the 64-byte plaintext.
	OpRead byte = 0x01
	// OpWrite writes one line: payload is a u64 address + 64 bytes.
	OpWrite byte = 0x02
	// OpVerify re-verifies every written line in every shard.
	OpVerify byte = 0x03
	// OpStats returns the aggregated shard stats as JSON.
	OpStats byte = 0x04
	// OpSnapshot returns the full persisted state (shard.Save format).
	OpSnapshot byte = 0x05
	// OpTamper flips a stored ciphertext bit at a u64 address (adversary
	// interface; servers only honor it when started with tampering
	// enabled). Used to demonstrate fail-closed detection end to end.
	OpTamper byte = 0x06
	// OpCheckpoint forces the server to cut a durable checkpoint: an
	// atomic on-disk snapshot that truncates the write-ahead log. Only
	// servers started with a data directory honor it; others answer
	// StatusError. The OK response carries the new u64 snapshot sequence
	// number.
	OpCheckpoint byte = 0x07
	// OpPing is the health check: empty payload, empty OK response. The
	// server answers it without taking an admission slot, so a loaded
	// (shedding) server still proves it is alive — liveness and capacity
	// are separate questions.
	OpPing byte = 0x08
	// OpObs returns the server's obs registry snapshot as JSON (the same
	// body /metricz serves), so protocol-only deployments can pull live
	// telemetry without the admin HTTP plane. Servers without a registry
	// answer StatusError.
	OpObs byte = 0x09
	// OpProof is the verifiable read: payload is a u64 address; the OK
	// response is an encoded proof.Proof — the ciphertext, its MAC, the
	// counter line at every tree level on its path, the shard roots, and
	// the authority's attestation — which proof.Verify recomputes with
	// zero server trust. Servers without a prover answer StatusError.
	OpProof byte = 0x0A
	// OpRoot returns the transparency log's current position: the
	// authority's public key, its latest signed head, and the newest epoch
	// entry (an encoded proof.RootInfo).
	OpRoot byte = 0x0B
	// OpRootRange returns transparency-log entries with 0-based indices
	// [from, to) plus the consistency proof between the size-from and
	// size-to logs (an encoded proof.RangeResult). Payload is two u64s;
	// a range outside the log answers StatusError.
	OpRootRange byte = 0x0C
	// OpHello binds the connection to a tenant: payload is the tenant id
	// (length-prefixed) plus an HMAC proof-of-possession token
	// (tenant.HelloToken). On multi-tenant servers every data op before a
	// successful HELLO — and any HELLO with a bad token — answers
	// StatusError; single-tenant servers reject HELLO the same way. The
	// OK response is empty. PING stays tenant-free on both.
	OpHello byte = 0x0D
	// OpReplicate is the cluster replication long-poll: a follower sends
	// its fencing epoch and per-shard durable watermark vector (an encoded
	// ReplicateRequest) and the primary answers with sealed WAL record
	// batches past those watermarks, or a snapshot bootstrap when the
	// follower's cursor predates the retained log (an encoded
	// ReplicateResponse). Served without an admission slot: replication
	// must not be shed by client load. Non-cluster servers answer
	// StatusError.
	OpReplicate byte = 0x0E
	// OpRoute returns the answering node's view of the cluster as JSON
	// (RouteInfo): role, fencing epoch, leader address, known peers, the
	// shard→node map, and the node's own durable watermarks. Clients use it
	// to find the primary; the control plane uses it to pick a promotion
	// candidate. Served without an admission slot.
	OpRoute byte = 0x0F
	// OpPromote asks a replica to become primary at a new fencing epoch:
	// payload is the epoch plus the minimum per-shard LSN vector the
	// candidate must be caught up to (element-wise max across surviving
	// replicas). The replica refuses while its lease on the current primary
	// is unexpired, catches its WAL tail up from donor peers if needed, and
	// answers with its post-promotion RouteInfo. Served without an
	// admission slot.
	OpPromote byte = 0x10
	// OpFollow redirects a node to follow a (new) leader at a given epoch:
	// payload is the epoch and leader address. A primary receiving a higher
	// epoch steps down (fencing). Served without an admission slot.
	OpFollow byte = 0x11
	// OpMigrate drives live shard migration (an encoded MigrateRequest /
	// MigrateResponse). The control plane sends MigrateRun to the recipient,
	// which then issues the donor-side phases against the current primary:
	// Begin (donor spills the shard and reports its mark), Chunk (stream the
	// spill), Tail (WAL records past the recipient's cursor), Cutover (donor
	// fences the shard and reports the final LSN), Abort (donor discards the
	// spill and unfences). Served without an admission slot: a migration
	// must not be shed by the client load it is trying to relieve.
	OpMigrate byte = 0x12
)

// opNames maps opcodes to the names used in per-op metric keys
// (server.op.<name>.latency) and human-readable output.
var opNames = map[byte]string{
	OpRead:       "read",
	OpWrite:      "write",
	OpVerify:     "verify",
	OpStats:      "stats",
	OpSnapshot:   "snapshot",
	OpTamper:     "tamper",
	OpCheckpoint: "checkpoint",
	OpPing:       "ping",
	OpObs:        "obs",
	OpProof:      "proof",
	OpRoot:       "root",
	OpRootRange:  "root_range",
	OpHello:      "hello",
	OpReplicate:  "replicate",
	OpRoute:      "route",
	OpPromote:    "promote",
	OpFollow:     "follow",
	OpMigrate:    "migrate",
}

// OpName returns the lowercase name of an opcode, or "op_%02x" for
// opcodes this build does not know.
func OpName(op byte) string {
	if name, ok := opNames[op]; ok {
		return name
	}
	return fmt.Sprintf("op_%02x", op)
}

// Response status bytes.
const (
	// StatusOK carries the op-specific result payload.
	StatusOK byte = 0x00
	// StatusIntegrity carries an encoded secmem.IntegrityError: the
	// request touched tampered memory and failed closed.
	StatusIntegrity byte = 0x01
	// StatusError carries a plain error string (bad request, limits,
	// unknown opcode).
	StatusError byte = 0x02
	// StatusBusy carries a plain string and means the server shed this
	// request before executing any of it: admission control was full, or
	// the connection cap was reached. The promise is load-shedding, not
	// failure — the request had no effect, so retrying it after backoff
	// is always safe, writes included.
	StatusBusy byte = 0x03
	// StatusQuota carries an encoded tenant.QuotaError: the bound
	// tenant's quota (rate, inflight cap, or fair-share capacity wait)
	// shed this request before executing any of it. Same
	// shed-before-execution promise as StatusBusy, so retrying after
	// backoff is always safe — but the tenant and exhausted resource
	// survive the trip for client-side accounting.
	StatusQuota byte = 0x04
	// StatusMoved carries an encoded MovedError: the answering node is not
	// the primary (replica, fenced, or deposed), so the data op was refused
	// before executing any of it. The payload names the fencing epoch and,
	// when known, the leader address so the client can re-route. Same
	// refused-before-execution promise as StatusBusy: retrying (against the
	// right node) is always safe, writes included.
	StatusMoved byte = 0x05
)

// MaxBody caps a frame's body length. Snapshots of large memories are the
// biggest legitimate frames; anything over this is treated as a hostile or
// corrupt length prefix before any allocation happens.
const MaxBody = 64 << 20

// lenBytes is the size of the frame length prefix.
const lenBytes = 4

// Typed framing errors, matchable with errors.Is.
var (
	// ErrOversized reports a length prefix exceeding MaxBody.
	ErrOversized = errors.New("wire: frame exceeds size limit")
	// ErrTruncated reports a connection that died mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrEmptyFrame reports a zero-length body (no opcode/status byte).
	ErrEmptyFrame = errors.New("wire: empty frame body")
)

// RemoteError is a non-integrity failure reported by the peer
// (StatusError): bad request, server limits, unknown opcode.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// FrameWriter frames messages onto one stream, reusing a single scratch
// buffer across frames so the steady-state write path allocates nothing
// after warm-up (ROADMAP item 1's B/op goal for the wire layer). Not safe
// for concurrent use; callers serialize per connection.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// WriteFrame writes one frame whose body is the tag byte (opcode or
// status) followed by payload. The frame is assembled in the reused
// scratch buffer and written with a single Write, so a framed message is
// never split across two writes to the underlying stream.
//
//morph:hotpath
func (fw *FrameWriter) WriteFrame(tag byte, payload []byte) error {
	if len(payload)+1 > MaxBody {
		return fmt.Errorf("%w: body %d > %d", ErrOversized, len(payload)+1, MaxBody)
	}
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0, tag)
	binary.BigEndian.PutUint32(fw.buf, uint32(len(payload)+1))
	fw.buf = append(fw.buf, payload...)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// FrameReader reads frames from one stream, reusing a single body buffer
// across frames. The payload returned by ReadFrame aliases that buffer and
// is valid only until the next ReadFrame call; callers that retain it must
// copy. Not safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadFrame reads one frame and returns its tag byte and payload. A clean
// close at a frame boundary returns io.EOF; a close or error mid-frame
// returns ErrTruncated; a length prefix over MaxBody returns ErrOversized
// without growing the buffer to the claimed size. The payload aliases the
// reader's scratch buffer; see FrameReader.
//
//morph:hotpath
func (fr *FrameReader) ReadFrame() (tag byte, payload []byte, err error) {
	var hdr [lenBytes]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading length: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if n > MaxBody {
		return 0, nil, fmt.Errorf("%w: body %d > %d", ErrOversized, n, MaxBody)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = slices.Grow(fr.buf[:0], int(n))
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrTruncated, n, err)
	}
	return body[0], body[1:], nil
}

// WriteFrame writes one frame to w: the one-shot form for cold paths
// (connection rejects, tests). Hot paths hold a FrameWriter instead.
func WriteFrame(w io.Writer, tag byte, payload []byte) error {
	fw := FrameWriter{w: w}
	return fw.WriteFrame(tag, payload)
}

// ReadFrame reads one frame from r: the one-shot form for cold paths. The
// returned payload is freshly allocated and safe to retain.
func ReadFrame(r io.Reader) (tag byte, payload []byte, err error) {
	fr := FrameReader{r: r}
	return fr.ReadFrame()
}
