package wire

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

// TestClientPoisonedAfterMidFrameTimeout is the regression test for the
// framing-desync bug: a response that stalls mid-frame times out the
// round trip, and the *next* call must fail fast with ErrClientPoisoned —
// the pre-fix client would read the late-arriving leftover bytes and
// parse them as a fresh frame header, silently desynchronizing the
// protocol.
func TestClientPoisonedAfterMidFrameTimeout(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli, 100*time.Millisecond)

	// Serve the first request with half a response frame, then stall past
	// the client's deadline before delivering the rest.
	rest := make(chan struct{})
	go func() {
		if _, _, err := ReadFrame(srv); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		// A full OK response to OpRead would be 4+1+64 bytes; send 10.
		full := make([]byte, 0, 69)
		full = append(full, 0, 0, 0, 65, StatusOK)
		full = append(full, make([]byte, secmem.LineBytes)...)
		if _, err := srv.Write(full[:10]); err != nil {
			t.Errorf("server partial write: %v", err)
			return
		}
		<-rest
		// Too late: the client timed out long ago. These bytes are the
		// garbage a desynced reader would misparse as a frame header.
		_, _ = srv.Write(full[10:])
	}()

	_, err := c.Read(0)
	var ne net.Error
	if !errors.As(err, &ne) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-frame stall returned %v, want a deadline/truncation error", err)
	}
	if !c.Poisoned() {
		t.Fatal("client not poisoned after a mid-frame timeout")
	}
	close(rest)
	time.Sleep(20 * time.Millisecond) // let the leftover bytes arrive

	// The next call must refuse the connection, not decode garbage.
	_, err = c.Read(64)
	if !errors.Is(err, ErrClientPoisoned) {
		t.Fatalf("call on poisoned client returned %v, want ErrClientPoisoned", err)
	}
	// And it must classify as retryable transport-class for the
	// resilient layer.
	if !IsRetryable(err) || !IsTransport(err) {
		t.Fatal("poisoned-client error must be retryable transport class")
	}
}

// TestClientPoisonedAfterReset: a connection closed mid-frame poisons the
// client the same way a deadline does.
func TestClientPoisonedAfterReset(t *testing.T) {
	cli, srv := net.Pipe()
	c := NewClient(cli, time.Second)
	go func() {
		_, _, _ = ReadFrame(srv)
		_, _ = srv.Write([]byte{0, 0, 0, 65, StatusOK}) // header + status only
		_ = srv.Close()                                 // dies mid-body
	}()
	_, err := c.Read(0)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("reset mid-frame returned %v, want ErrTruncated", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrClientPoisoned) {
		t.Fatalf("next call returned %v, want ErrClientPoisoned", err)
	}
}

// TestResponseErrorsDoNotPoison: a StatusError (and a busy shed) keeps
// framing intact, so the connection stays usable.
func TestResponseErrorsDoNotPoison(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	go func() {
		for i := 0; i < 3; i++ {
			op, _, err := ReadFrame(srv)
			if err != nil {
				return
			}
			switch i {
			case 0:
				_ = WriteFrame(srv, StatusError, []byte("unaligned address"))
			case 1:
				_ = WriteFrame(srv, StatusBusy, []byte("at capacity"))
			default:
				if op != OpPing {
					t.Errorf("op %#x, want OpPing", op)
				}
				_ = WriteFrame(srv, StatusOK, nil)
			}
		}
	}()
	var re *RemoteError
	if _, err := c.Read(13); !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	var be *BusyError
	if _, err := c.Read(0); !errors.As(err, &be) {
		t.Fatalf("want *BusyError, got %v", err)
	}
	if c.Poisoned() {
		t.Fatal("response-level errors must not poison the connection")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after response-level errors: %v", err)
	}
}

// TestIsRetryableTaxonomy pins the retryable-vs-fatal classification the
// resilient client is built on.
func TestIsRetryableTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
		transport bool
	}{
		{"busy", &BusyError{Msg: "shed"}, true, false},
		{"integrity", &secmem.IntegrityError{Level: 1, Index: 2, Reason: "MAC"}, false, false},
		{"remote", &RemoteError{Msg: "bad request"}, false, false},
		{"truncated", ErrTruncated, true, true},
		{"poisoned", ErrClientPoisoned, true, true},
		{"netclosed", net.ErrClosed, true, true},
		{"timeout", &net.OpError{Op: "read", Err: &timeoutErr{}}, true, true},
		{"nil", nil, false, false},
		{"plain", errors.New("whatever"), false, false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.retryable {
			t.Errorf("IsRetryable(%s) = %v, want %v", tc.name, got, tc.retryable)
		}
		if got := IsTransport(tc.err); got != tc.transport {
			t.Errorf("IsTransport(%s) = %v, want %v", tc.name, got, tc.transport)
		}
	}
	// A wrapped integrity error stays fatal even if delivered over a
	// dying connection path.
	wrapped := &secmem.IntegrityError{Level: 0, Index: 9, Reason: "ctr"}
	if IsRetryable(errWrap{wrapped}) {
		t.Error("wrapped IntegrityError classified retryable")
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "i/o timeout" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }

type errWrap struct{ inner error }

func (e errWrap) Error() string { return "shard 3: " + e.inner.Error() }
func (e errWrap) Unwrap() error { return e.inner }
