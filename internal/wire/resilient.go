package wire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
)

// ResilientConfig tunes a ResilientClient.
type ResilientConfig struct {
	// Addr is the morphserve (or chaos proxy) address to dial.
	Addr string
	// Addrs, when non-empty, is a cluster seed list and supersedes Addr.
	// The client starts at the first seed, rotates to the next on a dial
	// failure (a dead node must not absorb every retry), and re-targets
	// the advertised leader when a node answers StatusMoved. Routes carry
	// fencing epochs; when nodes disagree the highest epoch wins, so a
	// deposed primary cannot pull clients back.
	Addrs []string
	// Timeout bounds each dial and each individual round trip
	// (default 10s).
	Timeout time.Duration
	// MaxAttempts caps how many times one op is tried, first attempt
	// included (default 8).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; each further retry
	// doubles it up to MaxBackoff, and every sleep is jittered into
	// [d/2, d) so a fleet of shed clients does not retry in lockstep
	// (defaults 10ms / 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryWrites opts non-idempotent ops (Write, Tamper) into retrying
	// after transport errors. The protocol has no request IDs, so a write
	// whose connection died mid-round-trip may or may not have been
	// applied; retrying re-applies it. That is only safe when the caller
	// knows re-applying is harmless (morphload and morphchaos rewrite
	// the same content, so it is). Busy sheds and failed dials are always
	// retried — the server promises those requests had no effect.
	RetryWrites bool
	// Seed drives the backoff jitter RNG, keeping fault-matrix runs
	// reproducible.
	Seed int64
	// TenantID, when non-empty, binds every connection (including
	// reconnects) to a tenant with a HELLO exchange right after dialing,
	// proving possession of TenantSecret. A failed HELLO fails the dial,
	// so ops never run unauthenticated after a reconnect.
	TenantID     string
	TenantSecret string
	// Logf, when set, observes reconnects and retries (nil discards).
	Logf func(format string, args ...any)
	// Obs, when non-nil, mirrors the resilience counters into live
	// wire.retries / wire.sheds / wire.reconnects / wire.failures
	// counters (Counters() remains the end-of-run snapshot).
	Obs *obs.Registry
	// Tracer, when non-nil, receives Reconnect and Retry events.
	Tracer *obs.Tracer
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	return c
}

// ResilientStats counts what resilience cost: how often ops were retried,
// connections replaced, and requests shed by the server.
type ResilientStats struct {
	// Ops is the number of top-level calls; Failures those that returned
	// an error after all retries (or a fatal verdict immediately).
	Ops      uint64 `json:"ops"`
	Failures uint64 `json:"failures"`
	// Retries counts every extra attempt; Sheds the attempts answered
	// StatusBusy; Reconnects the replacement dials after the first.
	Retries    uint64 `json:"retries"`
	Sheds      uint64 `json:"sheds"`
	Reconnects uint64 `json:"reconnects"`
	// Reroutes counts not-primary redirects: attempts answered
	// StatusMoved that re-targeted the client at another node.
	Reroutes uint64 `json:"reroutes"`
}

// ResilientClient wraps the single-connection Client with reconnection,
// capped exponential backoff with jitter, and bounded retries governed by
// the IsRetryable taxonomy: busy sheds retry always, transport errors
// retry idempotent ops (and writes only with RetryWrites), integrity
// violations and remote verdicts fail immediately. A poisoned connection
// is discarded and redialed — never reused — so the framing-desync class
// of bug cannot recur. Safe for concurrent use.
type ResilientClient struct {
	cfg ResilientConfig
	// Live obs counters mirroring stats (nil-safe; set at construction).
	cOps, cRetries, cSheds, cReconnects, cFailures, cReroutes *obs.Counter

	mu        sync.Mutex
	cl        *Client // nil when disconnected
	connected bool    // a dial has succeeded at least once
	rng       *rand.Rand
	stats     ResilientStats
	target    string // address the next dial goes to
	seedIdx   int    // position in cfg.Addrs the target came from
	epoch     uint64 // highest fencing epoch seen in MovedError redirects
	tpFails   int    // consecutive transport errors against the current target
}

// NewResilient builds a resilient client; it does not dial until the
// first op (or Ping).
func NewResilient(cfg ResilientConfig) *ResilientClient {
	cfg = cfg.withDefaults()
	target := cfg.Addr
	if len(cfg.Addrs) > 0 {
		target = cfg.Addrs[0]
	}
	return &ResilientClient{
		cfg:         cfg,
		cOps:        cfg.Obs.Counter("wire.ops"),
		cRetries:    cfg.Obs.Counter("wire.retries"),
		cSheds:      cfg.Obs.Counter("wire.sheds"),
		cReconnects: cfg.Obs.Counter("wire.reconnects"),
		cFailures:   cfg.Obs.Counter("wire.failures"),
		cReroutes:   cfg.Obs.Counter("wire.reroutes"),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		target:      target,
	}
}

// Target returns the address the next dial will go to: the configured
// address until a redirect or seed rotation moves it.
func (r *ResilientClient) Target() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// Counters returns a snapshot of the resilience counters.
func (r *ResilientClient) Counters() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close drops the current connection, if any. The client remains usable:
// the next op redials.
func (r *ResilientClient) Close() error {
	r.mu.Lock()
	cl := r.cl
	r.cl = nil
	r.mu.Unlock()
	if cl == nil {
		return nil
	}
	return cl.Close()
}

// logf reports through cfg.Logf, if set.
func (r *ResilientClient) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// conn returns the live connection, dialing a new one if needed.
func (r *ResilientClient) conn() (*Client, error) {
	r.mu.Lock()
	if cl := r.cl; cl != nil {
		r.mu.Unlock()
		return cl, nil
	}
	reconnect := r.connected
	addr := r.target
	r.mu.Unlock()
	cl, err := Dial(addr, r.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	if r.cfg.TenantID != "" {
		// Re-bind the tenant before the connection serves any op: a
		// reconnect must never downgrade to an unauthenticated stream.
		if err := cl.Hello(r.cfg.TenantID, r.cfg.TenantSecret); err != nil {
			_ = cl.Close()
			return nil, fmt.Errorf("wire: hello %q: %w", r.cfg.TenantID, err)
		}
	}
	r.mu.Lock()
	if r.cl != nil {
		// Another goroutine won the redial race; use its connection.
		winner := r.cl
		r.mu.Unlock()
		_ = cl.Close()
		return winner, nil
	}
	r.cl = cl
	r.connected = true
	if reconnect {
		r.stats.Reconnects++
	}
	r.mu.Unlock()
	if reconnect {
		r.cReconnects.Inc()
		r.cfg.Tracer.Emit(obs.KindReconnect, -1, 0, 0, 0)
		r.logf("wire: reconnected to %s", addr)
	}
	return cl, nil
}

// rotate advances the target to the next seed address after a dial
// failure, so a dead node does not absorb every remaining attempt. A
// no-op without a seed list (single-address clients keep redialing the
// one server they have).
func (r *ResilientClient) rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.cfg.Addrs) < 2 {
		return
	}
	r.seedIdx = (r.seedIdx + 1) % len(r.cfg.Addrs)
	r.target = r.cfg.Addrs[r.seedIdx]
	r.tpFails = 0
}

// reroute re-targets the client after a not-primary redirect. A redirect
// naming a leader at an epoch >= the highest seen wins the target; a
// leaderless redirect (the responder does not know who leads) falls back
// to seed rotation so the next attempt at least lands on a different
// node.
func (r *ResilientClient) reroute(me *MovedError) {
	r.mu.Lock()
	if me.Epoch >= r.epoch {
		r.epoch = me.Epoch
	}
	switch {
	case me.Leader != "" && me.Epoch >= r.epoch:
		r.target = me.Leader
	case len(r.cfg.Addrs) >= 2:
		r.seedIdx = (r.seedIdx + 1) % len(r.cfg.Addrs)
		r.target = r.cfg.Addrs[r.seedIdx]
	}
	target := r.target
	r.tpFails = 0
	r.stats.Reroutes++
	r.mu.Unlock()
	r.cReroutes.Inc()
	var known uint64
	if me.Leader != "" {
		known = 1
	}
	r.cfg.Tracer.Emit(obs.KindReroute, -1, me.Epoch, known, 0)
	r.logf("wire: not primary (epoch %d); re-targeting %s", me.Epoch, target)
}

// discard retires a connection after a transport error (it is poisoned or
// otherwise dead). Only the goroutine whose *Client is still current
// clears it, so a concurrent op's fresh connection is never thrown away.
func (r *ResilientClient) discard(cl *Client) {
	r.mu.Lock()
	if r.cl == cl {
		r.cl = nil
	}
	r.mu.Unlock()
	_ = cl.Close()
}

// backoff computes the jittered sleep before retry number n (1-based).
func (r *ResilientClient) backoff(n int) time.Duration {
	d := r.cfg.BaseBackoff << (n - 1)
	if d <= 0 || d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d/2 + 1)))
	r.mu.Unlock()
	return d/2 + j
}

// do runs one op through the retry loop. retryTransport says whether the
// op may be retried after a transport error left its outcome unknown —
// true for idempotent ops, RetryWrites for the rest. The context bounds
// the whole loop: cancellation is honored between attempts and during
// backoff sleeps, never silently outlived.
func (r *ResilientClient) do(ctx context.Context, retryTransport bool, opName string, f func(*Client) error) error {
	r.mu.Lock()
	r.stats.Ops++
	r.mu.Unlock()
	r.cOps.Inc()
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			r.fail()
			return fmt.Errorf("wire: %s canceled: %w", opName, err)
		}
		cl, err := r.conn()
		if err != nil {
			// Dial failure: no request was sent, retrying is safe for
			// every op. With a seed list, try a different node next.
			last = err
			r.rotate()
		} else {
			err = f(cl)
			if err == nil {
				r.mu.Lock()
				r.tpFails = 0
				r.mu.Unlock()
				return nil
			}
			last = err
			var me *MovedError
			switch {
			case IsShed(err):
				// Shed before execution (busy or quota): connection
				// healthy, retry safe.
				r.mu.Lock()
				r.stats.Sheds++
				r.mu.Unlock()
				r.cSheds.Inc()
			case errors.As(err, &me):
				// Not-primary redirect: refused before execution, so
				// retrying is safe for every op (writes included, no
				// RetryWrites opt-in needed) — but against the right
				// node. This connection points at the wrong one; drop
				// it and re-target.
				r.discard(cl)
				r.reroute(me)
			case !IsRetryable(err):
				r.fail()
				return err
			default:
				// Transport error: outcome unknown, connection dead.
				r.discard(cl)
				// A target that keeps accepting dials but failing
				// mid-connection (a proxy whose backend died, a
				// half-broken node) must not absorb every attempt:
				// after two consecutive transport errors, rotate. The
				// streak spans ops, so even a no-retry client escapes a
				// dead target on its next call.
				r.mu.Lock()
				r.tpFails++
				tooMany := r.tpFails >= 2
				if tooMany {
					r.tpFails = 0
				}
				r.mu.Unlock()
				if tooMany {
					r.rotate()
				}
				if !retryTransport {
					r.fail()
					return fmt.Errorf("wire: %s outcome unknown after transport error (not idempotent, RetryWrites off): %w", opName, err)
				}
			}
		}
		if attempt >= r.cfg.MaxAttempts {
			r.fail()
			return fmt.Errorf("wire: %s failed after %d attempts: %w", opName, attempt, last)
		}
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		r.cRetries.Inc()
		var shedBit uint64
		if IsShed(last) {
			shedBit = 1
		}
		r.cfg.Tracer.Emit(obs.KindRetry, -1, uint64(attempt), shedBit, 0)
		sleep := r.backoff(attempt)
		r.logf("wire: %s attempt %d/%d failed (%v); retrying in %v", opName, attempt, r.cfg.MaxAttempts, last, sleep)
		if err := sleepCtx(ctx, sleep); err != nil {
			r.fail()
			return fmt.Errorf("wire: %s canceled during retry backoff (last attempt error: %v): %w", opName, last, err)
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first. A
// context that can never be canceled sleeps without arming a timer.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (r *ResilientClient) fail() {
	r.mu.Lock()
	r.stats.Failures++
	r.mu.Unlock()
	r.cFailures.Inc()
}

// Read fetches and verifies the line at a line-aligned address.
// Idempotent: retried freely; an IntegrityError is surfaced immediately,
// never retried into a false alarm.
func (r *ResilientClient) Read(addr uint64) ([]byte, error) {
	var line []byte
	err := r.do(context.Background(), true, "READ", func(cl *Client) error {
		var err error
		line, err = cl.Read(addr)
		return err
	})
	return line, err
}

// Write stores a 64-byte line. Transport-ambiguous retries only happen
// with RetryWrites (see ResilientConfig); busy sheds always retry.
func (r *ResilientClient) Write(addr uint64, line []byte) error {
	return r.do(context.Background(), r.cfg.RetryWrites, "WRITE", func(cl *Client) error {
		return cl.Write(addr, line)
	})
}

// Verify asks the server to re-verify every written line. Idempotent.
func (r *ResilientClient) Verify() error {
	return r.do(context.Background(), true, "VERIFY", func(cl *Client) error { return cl.Verify() })
}

// Stats fetches the server's aggregated shard stats. Idempotent.
func (r *ResilientClient) Stats() (secmem.Stats, error) {
	var st secmem.Stats
	err := r.do(context.Background(), true, "STATS", func(cl *Client) error {
		var err error
		st, err = cl.Stats()
		return err
	})
	return st, err
}

// Ping checks liveness. Idempotent.
func (r *ResilientClient) Ping() error {
	return r.do(context.Background(), true, "PING", func(cl *Client) error { return cl.Ping() })
}

// Snapshot fetches the server's full persisted state. Idempotent.
func (r *ResilientClient) Snapshot() ([]byte, error) {
	var snap []byte
	err := r.do(context.Background(), true, "SNAPSHOT", func(cl *Client) error {
		var err error
		snap, err = cl.Snapshot()
		return err
	})
	return snap, err
}

// Checkpoint forces a durable checkpoint. Idempotent: cutting an extra
// checkpoint after an ambiguous outcome only shortens replay.
func (r *ResilientClient) Checkpoint() (uint64, error) {
	var seq uint64
	err := r.do(context.Background(), true, "CHECKPOINT", func(cl *Client) error {
		var err error
		seq, err = cl.Checkpoint()
		return err
	})
	return seq, err
}

// Tamper flips a stored ciphertext bit (adversary interface). Not
// idempotent — a double flip restores the bit — so transport retries
// follow RetryWrites like Write does.
func (r *ResilientClient) Tamper(addr uint64) error {
	return r.do(context.Background(), r.cfg.RetryWrites, "TAMPER", func(cl *Client) error { return cl.Tamper(addr) })
}

// Proof fetches the verifiable-read witness for an address. Idempotent.
func (r *ResilientClient) Proof(addr uint64) (*proof.Proof, error) {
	var p *proof.Proof
	err := r.do(context.Background(), true, "PROOF", func(cl *Client) error {
		var err error
		p, err = cl.Proof(addr)
		return err
	})
	return p, err
}

// Root fetches the transparency log's current position. Idempotent.
func (r *ResilientClient) Root() (*proof.RootInfo, error) {
	var ri *proof.RootInfo
	err := r.do(context.Background(), true, "ROOT", func(cl *Client) error {
		var err error
		ri, err = cl.Root()
		return err
	})
	return ri, err
}

// RootRange fetches transparency-log entries [from, to) with the
// consistency proof between the two log sizes. Idempotent.
func (r *ResilientClient) RootRange(from, to uint64) (*proof.RangeResult, error) {
	var rr *proof.RangeResult
	err := r.do(context.Background(), true, "ROOTRANGE", func(cl *Client) error {
		var err error
		rr, err = cl.RootRange(from, to)
		return err
	})
	return rr, err
}

// Obs fetches the server's obs registry snapshot as raw JSON. Idempotent.
func (r *ResilientClient) Obs() ([]byte, error) {
	var body []byte
	err := r.do(context.Background(), true, "OBS", func(cl *Client) error {
		var err error
		body, err = cl.Obs()
		return err
	})
	return body, err
}

// Route fetches the answering node's cluster view. Idempotent, served by
// every role (replicas answer too), so it works for leader discovery and
// for control planes surveying survivors after a node loss.
func (r *ResilientClient) Route() (*RouteInfo, error) {
	var ri *RouteInfo
	err := r.do(context.Background(), true, "ROUTE", func(cl *Client) error {
		var err error
		ri, err = cl.Route()
		return err
	})
	return ri, err
}

// ReadCtx is Read bounded by a context: cancellation is honored between
// attempts and during backoff sleeps.
func (r *ResilientClient) ReadCtx(ctx context.Context, addr uint64) ([]byte, error) {
	var line []byte
	err := r.do(ctx, true, "READ", func(cl *Client) error {
		var err error
		line, err = cl.Read(addr)
		return err
	})
	return line, err
}

// WriteCtx is Write bounded by a context: cancellation is honored between
// attempts and during backoff sleeps.
func (r *ResilientClient) WriteCtx(ctx context.Context, addr uint64, line []byte) error {
	return r.do(ctx, r.cfg.RetryWrites, "WRITE", func(cl *Client) error {
		return cl.Write(addr, line)
	})
}

// PingCtx is Ping bounded by a context: cancellation is honored between
// attempts and during backoff sleeps.
func (r *ResilientClient) PingCtx(ctx context.Context) error {
	return r.do(ctx, true, "PING", func(cl *Client) error { return cl.Ping() })
}
