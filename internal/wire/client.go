package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/proof"
	"github.com/securemem/morphtree/internal/secmem"
	"github.com/securemem/morphtree/internal/tenant"
)

// ErrClientPoisoned reports a Client whose connection suffered a
// transport error earlier (deadline, reset, truncated frame). The stream
// may have stopped mid-frame, so the reader's next bytes could be the
// tail of an old response; parsing them as a frame header would
// silently desynchronize the protocol. A poisoned client fails every
// subsequent call fast — the only recovery is a new connection
// (ResilientClient does this automatically).
var ErrClientPoisoned = errors.New("wire: connection poisoned by earlier transport error")

// Client speaks the morphserve protocol over one connection, one request
// in flight at a time (the closed-loop model morphload measures).
type Client struct {
	conn    net.Conn
	timeout time.Duration

	mu sync.Mutex
	bw *bufio.Writer
	fw *FrameWriter
	fr *FrameReader
	// req is the reused request-payload scratch: one buffer serves every
	// call, so the steady-state request path allocates nothing.
	req []byte
	// poisoned records the first transport error; once set, the stream's
	// framing can no longer be trusted and every call fails fast.
	poisoned error
}

// Dial connects to a morphserve address. timeout, if nonzero, bounds the
// dial and every subsequent round trip.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	bw := bufio.NewWriter(conn)
	return &Client{
		conn:    conn,
		timeout: timeout,
		bw:      bw,
		fw:      NewFrameWriter(bw),
		fr:      NewFrameReader(bufio.NewReader(conn)),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Poisoned reports whether an earlier transport error made this client
// refuse further use of its connection.
func (c *Client) Poisoned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned != nil
}

// poison marks the connection unusable and returns err. Must be called
// with c.mu held. The connection is closed eagerly so a server-side slot
// frees immediately instead of waiting for the peer's idle deadline.
func (c *Client) poison(err error) error {
	c.poisoned = err
	_ = c.conn.Close()
	return err
}

// roundTrip sends one request and decodes the response, surfacing
// StatusIntegrity as *secmem.IntegrityError, StatusBusy as *BusyError,
// and StatusError as *RemoteError.
//
// Any transport failure — deadline, short write, reset, truncated or
// garbled response frame — poisons the client: the stream may have died
// mid-frame, so leftover bytes must never be parsed as the next frame
// header. Response-level errors (non-OK statuses, payload decode
// failures) leave the connection healthy: framing stayed intact.
//
// The returned body aliases the client's reused frame buffer: it is valid
// only while c.mu is held and until the next round trip. Callers decode or
// copy it before unlocking; nothing aliasing it may escape to the user.
func (c *Client) roundTrip(op byte, payload []byte) ([]byte, error) {
	if c.poisoned != nil {
		return nil, fmt.Errorf("%w (cause: %v)", ErrClientPoisoned, c.poisoned)
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, c.poison(fmt.Errorf("wire: set deadline: %w", err))
		}
	}
	if err := c.fw.WriteFrame(op, payload); err != nil {
		if errors.Is(err, ErrOversized) {
			// Local validation failure: nothing touched the wire.
			return nil, err
		}
		return nil, c.poison(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.poison(fmt.Errorf("wire: flush: %w", err))
	}
	status, body, err := c.fr.ReadFrame()
	if err != nil {
		return nil, c.poison(err)
	}
	if status != StatusOK {
		return nil, DecodeError(status, body)
	}
	return body, nil
}

// Read fetches and verifies the line at a line-aligned address. The
// returned line is a fresh copy, safe to retain.
func (c *Client) Read(addr uint64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.req = AppendAddr(c.req[:0], addr)
	body, err := c.roundTrip(OpRead, c.req)
	if err != nil {
		return nil, err
	}
	if len(body) != secmem.LineBytes {
		return nil, fmt.Errorf("wire: read returned %d bytes, want %d", len(body), secmem.LineBytes)
	}
	return append([]byte(nil), body...), nil
}

// Write stores a 64-byte line at a line-aligned address.
func (c *Client) Write(addr uint64, line []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	req, err := AppendWrite(c.req[:0], addr, line)
	c.req = req
	if err != nil {
		return err
	}
	_, err = c.roundTrip(OpWrite, c.req)
	return err
}

// Verify asks the server to re-verify every written line in every shard.
func (c *Client) Verify() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(OpVerify, nil)
	return err
}

// Stats fetches the server's aggregated shard stats.
func (c *Client) Stats() (secmem.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpStats, nil)
	if err != nil {
		return secmem.Stats{}, err
	}
	return DecodeStats(body)
}

// Snapshot fetches the server's full persisted state (shard.Save format).
// The returned bytes are a fresh copy, safe to retain.
func (c *Client) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpSnapshot, nil)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), body...), nil
}

// Checkpoint forces the server to cut a durable checkpoint (atomic
// snapshot + WAL truncation) and returns the new snapshot sequence
// number. Servers running without a data directory answer *RemoteError.
func (c *Client) Checkpoint() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpCheckpoint, nil)
	if err != nil {
		return 0, err
	}
	seq, err := DecodeAddr(body)
	if err != nil {
		return 0, fmt.Errorf("wire: checkpoint response: %w", err)
	}
	return seq, nil
}

// Hello binds the connection to a tenant, proving possession of the
// tenant's secret with an HMAC token (the secret never crosses the wire).
// Multi-tenant servers reject every data op until a Hello succeeds; a bad
// id or token answers *RemoteError.
func (c *Client) Hello(id, secret string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	token := tenant.HelloToken(secret, id)
	req, err := AppendHello(c.req[:0], id, token)
	c.req = req
	if err != nil {
		return err
	}
	_, err = c.roundTrip(OpHello, c.req)
	return err
}

// Ping checks the server is alive. The server answers it even while
// shedding load, so Ping succeeding says nothing about capacity.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(OpPing, nil)
	return err
}

// Obs fetches the server's obs registry snapshot as raw JSON (the same
// body /metricz serves; decode with obs.DecodeSnapshot). Servers running
// without a registry answer *RemoteError. The returned bytes are a fresh
// copy, safe to retain.
func (c *Client) Obs() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpObs, nil)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), body...), nil
}

// Proof fetches the verifiable-read witness for a line-aligned address.
// The returned proof is fully decoded into fresh allocations, safe to
// retain; verify it with proof.Proof.Verify. Servers without a prover
// answer *RemoteError.
func (c *Client) Proof(addr uint64) (*proof.Proof, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.req = AppendAddr(c.req[:0], addr)
	body, err := c.roundTrip(OpProof, c.req)
	if err != nil {
		return nil, err
	}
	return proof.DecodeProof(body)
}

// Root fetches the transparency log's current position: the authority's
// public key, latest signed head, and newest entry. Fully decoded, safe
// to retain.
func (c *Client) Root() (*proof.RootInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpRoot, nil)
	if err != nil {
		return nil, err
	}
	return proof.DecodeRootInfo(body)
}

// RootRange fetches transparency-log entries with 0-based indices
// [from, to) plus the consistency proof between the size-from and size-to
// logs. Fully decoded, safe to retain.
func (c *Client) RootRange(from, to uint64) (*proof.RangeResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.req = AppendRootRange(c.req[:0], from, to)
	body, err := c.roundTrip(OpRootRange, c.req)
	if err != nil {
		return nil, err
	}
	return proof.DecodeRangeResult(body)
}

// Tamper asks the server to flip a stored ciphertext bit at an address —
// honored only by servers started with tampering enabled.
func (c *Client) Tamper(addr uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.req = AppendAddr(c.req[:0], addr)
	_, err := c.roundTrip(OpTamper, c.req)
	return err
}
