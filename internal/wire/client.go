package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

// Client speaks the morphserve protocol over one connection, one request
// in flight at a time (the closed-loop model morphload measures).
type Client struct {
	conn    net.Conn
	timeout time.Duration

	mu sync.Mutex
	bw *bufio.Writer
	br *bufio.Reader
}

// Dial connects to a morphserve address. timeout, if nonzero, bounds the
// dial and every subsequent round trip.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn, timeout), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{
		conn:    conn,
		timeout: timeout,
		bw:      bufio.NewWriter(conn),
		br:      bufio.NewReader(conn),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response, surfacing
// StatusIntegrity as *secmem.IntegrityError and StatusError as
// *RemoteError.
func (c *Client) roundTrip(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("wire: set deadline: %w", err)
		}
	}
	if err := WriteFrame(c.bw, op, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("wire: flush: %w", err)
	}
	status, body, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, DecodeError(status, body)
	}
	return body, nil
}

// Read fetches and verifies the line at a line-aligned address.
func (c *Client) Read(addr uint64) ([]byte, error) {
	body, err := c.roundTrip(OpRead, EncodeAddr(addr))
	if err != nil {
		return nil, err
	}
	if len(body) != secmem.LineBytes {
		return nil, fmt.Errorf("wire: read returned %d bytes, want %d", len(body), secmem.LineBytes)
	}
	return body, nil
}

// Write stores a 64-byte line at a line-aligned address.
func (c *Client) Write(addr uint64, line []byte) error {
	payload, err := EncodeWrite(addr, line)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(OpWrite, payload)
	return err
}

// Verify asks the server to re-verify every written line in every shard.
func (c *Client) Verify() error {
	_, err := c.roundTrip(OpVerify, nil)
	return err
}

// Stats fetches the server's aggregated shard stats.
func (c *Client) Stats() (secmem.Stats, error) {
	body, err := c.roundTrip(OpStats, nil)
	if err != nil {
		return secmem.Stats{}, err
	}
	return DecodeStats(body)
}

// Snapshot fetches the server's full persisted state (shard.Save format).
func (c *Client) Snapshot() ([]byte, error) {
	return c.roundTrip(OpSnapshot, nil)
}

// Checkpoint forces the server to cut a durable checkpoint (atomic
// snapshot + WAL truncation) and returns the new snapshot sequence
// number. Servers running without a data directory answer *RemoteError.
func (c *Client) Checkpoint() (uint64, error) {
	body, err := c.roundTrip(OpCheckpoint, nil)
	if err != nil {
		return 0, err
	}
	seq, err := DecodeAddr(body)
	if err != nil {
		return 0, fmt.Errorf("wire: checkpoint response: %w", err)
	}
	return seq, nil
}

// Tamper asks the server to flip a stored ciphertext bit at an address —
// honored only by servers started with tampering enabled.
func (c *Client) Tamper(addr uint64) error {
	_, err := c.roundTrip(OpTamper, EncodeAddr(addr))
	return err
}
