package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, OpWrite, payload); err != nil {
		t.Fatal(err)
	}
	tag, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != OpWrite || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: tag=%#x payload=%q", tag, got)
	}
	// Empty payload is legal: the body is just the tag byte.
	buf.Reset()
	if err := WriteFrame(&buf, OpVerify, nil); err != nil {
		t.Fatal(err)
	}
	tag, got, err = ReadFrame(&buf)
	if err != nil || tag != OpVerify || len(got) != 0 {
		t.Fatalf("empty payload round trip: tag=%#x payload=%q err=%v", tag, got, err)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// TestReadFrameTruncated covers every way a frame can be cut off: inside
// the length prefix, and inside the body. Both must return ErrTruncated —
// never a clean EOF, never a panic.
func TestReadFrameTruncated(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, OpRead, EncodeAddr(0x1000)); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d bytes: got %v, want ErrTruncated", cut, err)
		}
	}
}

// TestReadFrameOversized sends a hostile length prefix claiming a body far
// over MaxBody; ReadFrame must reject it before allocating.
func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxBody+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("got %v, want ErrOversized", err)
	}
	binary.BigEndian.PutUint32(hdr[:], ^uint32(0))
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrOversized) {
		t.Fatalf("max u32 length: got %v, want ErrOversized", err)
	}
}

func TestReadFrameEmptyBody(t *testing.T) {
	var hdr [4]byte // length 0: no opcode byte at all
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("got %v, want ErrEmptyFrame", err)
	}
}

// TestMidFrameConnectionDrop writes half a frame over a real duplex pipe
// and closes: the reader must surface ErrTruncated promptly, not hang.
func TestMidFrameConnectionDrop(t *testing.T) {
	client, srv := net.Pipe()
	defer srv.Close()
	errc := make(chan error, 1)
	go func() {
		_, _, err := ReadFrame(srv)
		errc <- err
	}()
	var full bytes.Buffer
	if err := WriteFrame(&full, OpWrite, make([]byte, 72)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(full.Bytes()[:10]); err != nil {
		t.Fatal(err)
	}
	client.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadFrame hung on a mid-frame connection drop")
	}
}

// TestStalledPeerDeadline checks that a reader guarded by a deadline
// returns a timeout instead of hanging when the peer goes silent
// mid-frame.
func TestStalledPeerDeadline(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	if err := srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Send only the length prefix, then stall forever.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		_, _ = client.Write(hdr[:])
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := ReadFrame(srv)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated (deadline-driven)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadFrame ignored the read deadline")
	}
}

func TestAddrAndWriteCodecs(t *testing.T) {
	addr, err := DecodeAddr(EncodeAddr(0xdeadbeef40))
	if err != nil || addr != 0xdeadbeef40 {
		t.Fatalf("addr round trip: %#x, %v", addr, err)
	}
	if _, err := DecodeAddr([]byte{1, 2, 3}); err == nil {
		t.Fatal("short address payload accepted")
	}
	line := bytes.Repeat([]byte{0xab}, secmem.LineBytes)
	p, err := EncodeWrite(0x80, line)
	if err != nil {
		t.Fatal(err)
	}
	gotAddr, gotLine, err := DecodeWrite(p)
	if err != nil || gotAddr != 0x80 || !bytes.Equal(gotLine, line) {
		t.Fatalf("write round trip: %#x, %v", gotAddr, err)
	}
	if _, _, err := DecodeWrite(p[:20]); err == nil {
		t.Fatal("short write payload accepted")
	}
	if _, err := EncodeWrite(0, []byte("short")); err == nil {
		t.Fatal("short line accepted")
	}
}

func TestIntegrityErrorCrossesTheWire(t *testing.T) {
	orig := &secmem.IntegrityError{Level: 2, Index: 77, Reason: "MAC mismatch"}
	status, payload := EncodeError(orig)
	if status != StatusIntegrity {
		t.Fatalf("status %#x, want StatusIntegrity", status)
	}
	err := DecodeError(status, payload)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("decoded %T, want *secmem.IntegrityError", err)
	}
	if ie.Level != orig.Level || ie.Index != orig.Index || ie.Reason != orig.Reason {
		t.Fatalf("fields lost in transit: %+v != %+v", ie, orig)
	}
	// A data-line violation (Level -1) must survive the signed encoding.
	neg := &secmem.IntegrityError{Level: -1, Index: 3, Reason: "data"}
	st, p := EncodeError(neg)
	var ie2 *secmem.IntegrityError
	if !errors.As(DecodeError(st, p), &ie2) || ie2.Level != -1 {
		t.Fatalf("negative level mangled: %+v", ie2)
	}
	// Wrapped integrity errors are still recognized.
	st, _ = EncodeError(fmt.Errorf("shard 3: %w", orig))
	if st != StatusIntegrity {
		t.Fatalf("wrapped integrity error encoded as %#x", st)
	}
	// Plain errors come back as *RemoteError.
	st, p = EncodeError(errors.New("nope"))
	var re *RemoteError
	if st != StatusError || !errors.As(DecodeError(st, p), &re) || re.Msg != "nope" {
		t.Fatalf("plain error round trip failed: %#x %v", st, DecodeError(st, p))
	}
	// Busy sheds round-trip as *BusyError.
	st, p = EncodeError(&BusyError{Msg: "at capacity"})
	var be *BusyError
	if st != StatusBusy || !errors.As(DecodeError(st, p), &be) || be.Msg != "at capacity" {
		t.Fatalf("busy round trip failed: %#x %v", st, DecodeError(st, p))
	}
	// Truncated integrity payloads must error, not panic.
	if err := DecodeError(StatusIntegrity, []byte{1, 2}); err == nil {
		t.Fatal("short integrity payload accepted")
	}
	if err := DecodeError(0x7f, nil); err == nil {
		t.Fatal("unknown status accepted")
	}
}

func TestStatsCodec(t *testing.T) {
	in := secmem.Stats{Reads: 5, Writes: 7, Increments: []uint64{7, 1}, Overflows: []uint64{1, 0}, Rebases: []uint64{2, 0}, Reencryptions: 3, VerifiedFetches: 9}
	p, err := EncodeStats(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Writes != in.Writes || out.Reencryptions != in.Reencryptions || len(out.Increments) != 2 || out.Increments[0] != 7 {
		t.Fatalf("stats round trip: %+v", out)
	}
	if _, err := DecodeStats([]byte("{not json")); err == nil {
		t.Fatal("bad stats payload accepted")
	}
}

// respondOnce serves exactly one request on the server half of a pipe with
// a fixed status + body, then keeps the connection open.
func respondOnce(t *testing.T, srv net.Conn, wantOp byte, status byte, body []byte) {
	t.Helper()
	go func() {
		op, _, err := ReadFrame(srv)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if op != wantOp {
			t.Errorf("server got op %#x, want %#x", op, wantOp)
		}
		if err := WriteFrame(srv, status, body); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
}

func TestCheckpointRoundTrip(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	respondOnce(t, srv, OpCheckpoint, StatusOK, EncodeAddr(7))
	seq, err := c.Checkpoint()
	if err != nil || seq != 7 {
		t.Fatalf("Checkpoint() = %d, %v, want 7, nil", seq, err)
	}
}

func TestCheckpointMalformedResponse(t *testing.T) {
	// A short OK body must be a decode error, never a panic or a bogus
	// sequence number.
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	respondOnce(t, srv, OpCheckpoint, StatusOK, []byte{1, 2, 3})
	if seq, err := c.Checkpoint(); err == nil {
		t.Fatalf("short checkpoint body accepted, seq=%d", seq)
	}
}

func TestCheckpointRemoteError(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	c := NewClient(cli, time.Second)
	respondOnce(t, srv, OpCheckpoint, StatusError, []byte("checkpoint: server has no durable store (start with -data-dir)"))
	_, err := c.Checkpoint()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *RemoteError", err)
	}
}
