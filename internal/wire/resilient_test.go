package wire

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

// flakyServer accepts connections and hands each to handler with its
// accept index, so tests script per-connection misbehavior.
func flakyServer(t *testing.T, handler func(i int, conn net.Conn)) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(i int, conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				handler(i, conn)
			}(i, conn)
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		wg.Wait()
	}
}

func testResilient(addr string, retryWrites bool) *ResilientClient {
	return NewResilient(ResilientConfig{
		Addr:        addr,
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		RetryWrites: retryWrites,
		Seed:        1,
	})
}

// TestResilientRetriesBusySheds: StatusBusy answers are retried on the
// same connection until the server admits the request.
func TestResilientRetriesBusySheds(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		for {
			op, _, err := ReadFrame(conn)
			if err != nil {
				return
			}
			mu.Lock()
			requests++
			n := requests
			mu.Unlock()
			if n <= 2 {
				_ = WriteFrame(conn, StatusBusy, []byte("at capacity"))
				continue
			}
			if op != OpVerify {
				t.Errorf("op %#x, want OpVerify", op)
			}
			_ = WriteFrame(conn, StatusOK, nil)
		}
	})
	defer stop()

	r := testResilient(addr, false)
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("verify through sheds: %v", err)
	}
	st := r.Counters()
	if st.Sheds != 2 || st.Retries != 2 || st.Reconnects != 0 || st.Failures != 0 {
		t.Fatalf("counters = %+v, want 2 sheds, 2 retries, 0 reconnects", st)
	}
}

// TestResilientReconnectsAfterReset: a connection killed mid-round-trip
// is replaced, and the idempotent op succeeds on the new one.
func TestResilientReconnectsAfterReset(t *testing.T) {
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		if i == 0 {
			_, _, _ = ReadFrame(conn) // swallow the request, die silently
			return
		}
		for {
			op, payload, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if op != OpRead {
				t.Errorf("op %#x, want OpRead", op)
			}
			if _, err := DecodeAddr(payload); err != nil {
				t.Error(err)
			}
			_ = WriteFrame(conn, StatusOK, make([]byte, secmem.LineBytes))
		}
	})
	defer stop()

	r := testResilient(addr, false)
	defer r.Close()
	line, err := r.Read(128)
	if err != nil {
		t.Fatalf("read after reset: %v", err)
	}
	if len(line) != secmem.LineBytes {
		t.Fatalf("read returned %d bytes", len(line))
	}
	st := r.Counters()
	if st.Reconnects != 1 || st.Retries != 1 {
		t.Fatalf("counters = %+v, want 1 reconnect, 1 retry", st)
	}
}

// TestResilientWritePolicy: a write whose connection dies before the ack
// is NOT retried by default (outcome unknown, no request IDs); with
// RetryWrites it is.
func TestResilientWritePolicy(t *testing.T) {
	handler := func(i int, conn net.Conn) {
		if i == 0 {
			_, _, _ = ReadFrame(conn) // write arrives, ack never sent
			return
		}
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			_ = WriteFrame(conn, StatusOK, nil)
		}
	}

	addr, stop := flakyServer(t, handler)
	line := make([]byte, secmem.LineBytes)

	r := testResilient(addr, false)
	err := r.Write(0, line)
	if err == nil {
		t.Fatal("ambiguous write retried without RetryWrites")
	}
	if !strings.Contains(err.Error(), "outcome unknown") {
		t.Fatalf("error %q does not explain the ambiguity", err)
	}
	if st := r.Counters(); st.Failures != 1 {
		t.Fatalf("counters = %+v, want 1 failure", st)
	}
	r.Close()
	stop()

	addr, stop = flakyServer(t, handler)
	defer stop()
	r2 := testResilient(addr, true)
	defer r2.Close()
	if err := r2.Write(0, line); err != nil {
		t.Fatalf("opted-in write retry failed: %v", err)
	}
	if st := r2.Counters(); st.Reconnects != 1 || st.Failures != 0 {
		t.Fatalf("counters = %+v, want 1 reconnect, 0 failures", st)
	}
}

// TestResilientNeverRetriesIntegrity: an IntegrityError is a verdict, not
// a network condition — exactly one request reaches the server.
func TestResilientNeverRetriesIntegrity(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			mu.Lock()
			requests++
			mu.Unlock()
			status, body := EncodeError(&secmem.IntegrityError{Level: 2, Index: 7, Reason: "MAC mismatch"})
			_ = WriteFrame(conn, status, body)
		}
	})
	defer stop()

	r := testResilient(addr, false)
	defer r.Close()
	_, err := r.Read(0)
	var ie *secmem.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *secmem.IntegrityError", err)
	}
	mu.Lock()
	n := requests
	mu.Unlock()
	if n != 1 {
		t.Fatalf("integrity error retried: server saw %d requests", n)
	}
	if st := r.Counters(); st.Retries != 0 || st.Failures != 1 {
		t.Fatalf("counters = %+v, want 0 retries, 1 failure", st)
	}
}

// TestResilientBoundedRetries: a server that never answers exhausts
// MaxAttempts and the error says so.
func TestResilientBoundedRetries(t *testing.T) {
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		_, _, _ = ReadFrame(conn)
	})
	defer stop()

	r := testResilient(addr, false)
	defer r.Close()
	_, err := r.Read(0)
	if err == nil {
		t.Fatal("read against a dead server succeeded")
	}
	if !strings.Contains(err.Error(), "after 5 attempts") {
		t.Fatalf("error %q does not report the attempt budget", err)
	}
	st := r.Counters()
	if st.Retries != 4 || st.Failures != 1 || st.Reconnects != 4 {
		t.Fatalf("counters = %+v, want 4 retries, 4 reconnects, 1 failure", st)
	}
}
