package wire

import (
	"reflect"
	"strings"
	"testing"
)

func TestMigrateRequestRoundTrip(t *testing.T) {
	for _, want := range []*MigrateRequest{
		{Phase: MigrateBegin, Epoch: 3, Shard: 1, Node: "10.0.0.9:7000"},
		{Phase: MigrateChunk, Epoch: 3, Shard: 1, Node: "10.0.0.9:7000", Cursor: 1 << 20},
		{Phase: MigrateTail, Epoch: 3, Shard: 7, Node: "r:1", Cursor: 42, Max: 512},
		{Phase: MigrateCutover, Epoch: 9, Shard: 0, Node: "r:1"},
		{Phase: MigrateAbort, Epoch: 9, Shard: 0, Node: "r:1"},
		{Phase: MigrateRun, Epoch: 1, Shard: 1, Donor: "p:1"},
		{Phase: MigrateRun}, // all-zero message survives too
	} {
		p, err := EncodeMigrateRequest(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMigrateRequest(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

func TestMigrateResponseRoundTrip(t *testing.T) {
	for _, want := range []*MigrateResponse{
		{Epoch: 3, Mark: 77, Size: 1 << 22},
		{Epoch: 3, Data: []byte("chunk bytes"), Done: true},
		{Epoch: 1, Mark: 99, Done: false},
	} {
		p, err := EncodeMigrateResponse(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMigrateResponse(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
}

// TestMigrateCodecRejectsMalformed: every truncation of a valid payload
// (and an oversized length field) decodes to an error, never a panic or
// a silently wrong message.
func TestMigrateCodecRejectsMalformed(t *testing.T) {
	req, err := EncodeMigrateRequest(&MigrateRequest{
		Phase: MigrateTail, Epoch: 3, Shard: 1, Node: "node:1", Cursor: 42, Max: 8, Donor: "p:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(req); cut++ {
		if _, err := DecodeMigrateRequest(req[:cut]); err == nil {
			t.Fatalf("truncated request (%d of %d bytes) decoded", cut, len(req))
		}
	}
	resp, err := EncodeMigrateResponse(&MigrateResponse{Epoch: 3, Data: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(resp); cut++ {
		if _, err := DecodeMigrateResponse(resp[:cut]); err == nil {
			t.Fatalf("truncated response (%d of %d bytes) decoded", cut, len(resp))
		}
	}
	// Length fields claiming more than the frame holds.
	if _, err := DecodeMigrateRequest(append(append([]byte{MigrateBegin}, make([]byte, 12)...), 0xFF, 0xFF)); err == nil {
		t.Fatal("oversized node length decoded")
	}
	huge := &MigrateRequest{Phase: MigrateBegin, Node: strings.Repeat("x", maxNodeAddr+1)}
	if _, err := EncodeMigrateRequest(huge); err == nil {
		t.Fatal("oversized node address encoded")
	}
	huge = &MigrateRequest{Phase: MigrateRun, Donor: strings.Repeat("x", maxNodeAddr+1)}
	if _, err := EncodeMigrateRequest(huge); err == nil {
		t.Fatal("oversized donor address encoded")
	}
}

func TestMigratePhaseNames(t *testing.T) {
	if got := OpName(OpMigrate); got != "migrate" {
		t.Fatalf("OpName(OpMigrate) = %q", got)
	}
	for ph, want := range map[byte]string{
		MigrateBegin:   "begin",
		MigrateChunk:   "chunk",
		MigrateTail:    "tail",
		MigrateCutover: "cutover",
		MigrateAbort:   "abort",
		MigrateRun:     "run",
	} {
		if got := MigratePhaseName(ph); got != want {
			t.Fatalf("MigratePhaseName(%d) = %q, want %q", ph, got, want)
		}
	}
	if got := MigratePhaseName(0xEE); got != "phase_ee" {
		t.Fatalf("unknown phase name = %q", got)
	}
}
