package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/securemem/morphtree/internal/secmem"
)

// TestResilientBackoffHonorsContext is the regression test for the
// backoff-ignores-cancellation bug: with an hour-long backoff and a
// server that always sheds, canceling the context must unblock the op
// immediately instead of sleeping out the backoff.
func TestResilientBackoffHonorsContext(t *testing.T) {
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			_ = WriteFrame(conn, StatusBusy, []byte("always busy"))
		}
	})
	defer stop()

	r := NewResilient(ResilientConfig{
		Addr:        addr,
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: time.Hour,
		MaxBackoff:  time.Hour,
		Seed:        1,
	})
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.PingCtx(ctx) }()
	time.Sleep(50 * time.Millisecond) // let the op reach its first backoff
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("cancel took %v to unblock the backoff", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PingCtx still blocked after cancel: backoff sleep ignores the context")
	}
}

// TestResilientCtxCanceledBeforeAttempt: an already-dead context fails
// the op before any dial happens.
func TestResilientCtxCanceledBeforeAttempt(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	addr, stop := flakyServer(t, func(i int, conn net.Conn) {
		mu.Lock()
		conns++
		mu.Unlock()
	})
	defer stop()

	r := testResilient(addr, true)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.WriteCtx(ctx, 0, make([]byte, secmem.LineBytes)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if conns != 0 {
		t.Fatalf("%d connections after a pre-canceled ctx, want 0", conns)
	}
}

// TestResilientMovedFailover: a StatusMoved answer naming the leader
// re-targets the client, and the write succeeds there without the
// RetryWrites opt-in (moved is a refused-before-execution promise).
func TestResilientMovedFailover(t *testing.T) {
	primary, stopP := flakyServer(t, func(i int, conn net.Conn) {
		for {
			op, _, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if op != OpWrite {
				t.Errorf("primary saw op %#x, want OpWrite", op)
			}
			_ = WriteFrame(conn, StatusOK, nil)
		}
	})
	defer stopP()
	replica, stopR := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			status, payload := EncodeError(&MovedError{Epoch: 2, Leader: primary})
			_ = WriteFrame(conn, status, payload)
		}
	})
	defer stopR()

	r := NewResilient(ResilientConfig{
		Addrs:       []string{replica, primary},
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
		// RetryWrites deliberately off: the moved retry must not need it.
	})
	defer r.Close()

	if err := r.Write(0, bytes.Repeat([]byte{0xAB}, secmem.LineBytes)); err != nil {
		t.Fatalf("write through redirect: %v", err)
	}
	st := r.Counters()
	if st.Reroutes != 1 || st.Failures != 0 {
		t.Fatalf("counters = %+v, want 1 reroute, 0 failures", st)
	}
	if got := r.Target(); got != primary {
		t.Fatalf("target = %q, want leader %q", got, primary)
	}
}

// TestResilientLeaderlessMovedRotates: a StatusMoved without a leader
// address still makes progress by rotating to the next seed.
func TestResilientLeaderlessMovedRotates(t *testing.T) {
	primary, stopP := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			_ = WriteFrame(conn, StatusOK, nil)
		}
	})
	defer stopP()
	lost, stopL := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			status, payload := EncodeError(&MovedError{Epoch: 1})
			_ = WriteFrame(conn, status, payload)
		}
	})
	defer stopL()

	r := NewResilient(ResilientConfig{
		Addrs:       []string{lost, primary},
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	})
	defer r.Close()

	if err := r.Write(0, make([]byte, secmem.LineBytes)); err != nil {
		t.Fatalf("write through leaderless redirect: %v", err)
	}
	if got := r.Target(); got != primary {
		t.Fatalf("target = %q, want %q", got, primary)
	}
}

// TestResilientSeedRotationOnDialFailure: a dead first seed costs one
// attempt, not the whole budget — the next dial goes to a live seed.
func TestResilientSeedRotationOnDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close() // nothing listens here anymore: dials are refused
	live, stop := flakyServer(t, func(i int, conn net.Conn) {
		for {
			if _, _, err := ReadFrame(conn); err != nil {
				return
			}
			_ = WriteFrame(conn, StatusOK, nil)
		}
	})
	defer stop()

	r := NewResilient(ResilientConfig{
		Addrs:       []string{dead, live},
		Timeout:     2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	})
	defer r.Close()

	if err := r.Ping(); err != nil {
		t.Fatalf("ping with dead first seed: %v", err)
	}
	if got := r.Target(); got != live {
		t.Fatalf("target = %q, want rotation to %q", got, live)
	}
}

// TestResilientRerouteEpochMonotonic: a stale-epoch redirect cannot drag
// the client back to a deposed primary.
func TestResilientRerouteEpochMonotonic(t *testing.T) {
	r := NewResilient(ResilientConfig{Addr: "seed:1"})
	r.reroute(&MovedError{Epoch: 5, Leader: "new:1"})
	if got := r.Target(); got != "new:1" {
		t.Fatalf("target = %q, want new:1", got)
	}
	r.reroute(&MovedError{Epoch: 3, Leader: "old:1"})
	if got := r.Target(); got != "new:1" {
		t.Fatalf("stale epoch moved target to %q", got)
	}
	if st := r.Counters(); st.Reroutes != 2 {
		t.Fatalf("reroutes = %d, want 2", st.Reroutes)
	}
}
