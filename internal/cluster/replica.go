package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/securemem/morphtree/internal/durable"
	"github.com/securemem/morphtree/internal/obs"
	"github.com/securemem/morphtree/internal/wal"
	"github.com/securemem/morphtree/internal/wire"
)

// LeaseError refuses a promotion while the candidate still trusts its
// leader: the lease from the last successful poll has not expired, so a
// slow-but-alive primary must not be usurped.
type LeaseError struct {
	Remaining time.Duration
}

// Error implements error.
func (e *LeaseError) Error() string {
	return fmt.Sprintf("cluster: leader lease unexpired (%v remaining); refusing promotion", e.Remaining)
}

// puller is the follower's replication loop: long-poll the leader, apply
// what arrives, repeat. Errors back off PollRetry; non-replica roles
// idle until a Follow (or Promote) changes the role.
func (n *Node) puller() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopc:
			return
		default:
		}
		n.mu.Lock()
		role, leader := n.role, n.leader
		n.mu.Unlock()
		if role != RoleReplica || leader == "" {
			n.sleep(n.cfg.PollRetry)
			continue
		}
		progress, err := n.pollLeader()
		switch {
		case err != nil:
			n.sleep(n.cfg.PollRetry)
		case !progress:
			// Empty long poll: the leader paced us, loop right away.
		}
	}
}

// sleep waits d, returning early on Close.
func (n *Node) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-n.stopc:
	case <-t.C:
	}
}

// leaderConn returns the cached connection to addr, dialing if needed.
func (n *Node) leaderConn(addr string) (*wire.Client, error) {
	n.mu.Lock()
	if n.pullCl != nil && n.pullAddr == addr {
		cl := n.pullCl
		n.mu.Unlock()
		return cl, nil
	}
	stale := n.pullCl
	n.pullCl = nil
	n.mu.Unlock()
	if stale != nil {
		_ = stale.Close()
	}
	cl, err := wire.Dial(addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = cl.Close()
		return nil, fmt.Errorf("cluster: node closed")
	}
	n.pullCl = cl
	n.pullAddr = addr
	n.mu.Unlock()
	return cl, nil
}

// dropLeaderConn retires the cached connection after an error.
func (n *Node) dropLeaderConn(cl *wire.Client) {
	n.mu.Lock()
	if n.pullCl == cl {
		n.pullCl = nil
	}
	n.mu.Unlock()
	_ = cl.Close()
}

// pollLeader runs one replication poll against the current leader and
// applies the result. It reports whether anything was applied.
func (n *Node) pollLeader() (bool, error) {
	n.mu.Lock()
	leader, epoch, bootstrap := n.leader, n.epoch, n.bootstrap
	mem := n.mem
	n.mu.Unlock()
	cl, err := n.leaderConn(leader)
	if err != nil {
		return false, err
	}
	req := &wire.ReplicateRequest{
		Epoch:     epoch,
		Node:      n.cfg.Self,
		Marks:     mem.SyncedLSNs(),
		Bootstrap: bootstrap,
	}
	resp, err := cl.Replicate(req)
	if err != nil {
		var me *wire.MovedError
		if errors.As(err, &me) {
			// The node we polled is not (or no longer) the leader at our
			// epoch. Adopt anything newer it knows.
			n.mu.Lock()
			if me.Epoch > n.epoch {
				n.epoch = me.Epoch
				if me.Leader != "" && me.Leader != n.cfg.Self {
					n.leader = me.Leader
				}
				if err := n.saveMetaLocked(); err != nil {
					n.logf("cluster: %s persist meta: %v", n.cfg.Self, err)
				}
			}
			n.mu.Unlock()
			return false, err
		}
		if wire.IsTransport(err) {
			n.dropLeaderConn(cl)
		}
		return false, err
	}
	// Pre-check the claimed epoch BEFORE touching any sealed bytes: a
	// mismatched batch would fail its MAC (the key is epoch-bound), and
	// that failure must stay reserved for genuine tampering.
	if resp.Epoch != epoch {
		return false, fmt.Errorf("cluster: poll answered at epoch %d, asked at %d", resp.Epoch, epoch)
	}
	return n.applyResponse(mem, epoch, req.Marks, resp)
}

// applyResponse installs a snapshot or applies the per-shard batches.
// Batches for a shard being migrated in (or already owned) are skipped: a
// replicated apply racing the install would corrupt the adopted state, and
// an owned shard's journal answers to this node alone.
func (n *Node) applyResponse(mem *durable.Memory, epoch uint64, marks []uint64, resp *wire.ReplicateResponse) (bool, error) {
	n.mu.Lock()
	skip := make(map[int]bool, len(n.owned)+1)
	if n.migIn != nil {
		skip[n.migIn.shard] = true
	}
	for s := range n.owned {
		skip[s] = true
	}
	n.mu.Unlock()
	if resp.Snapshot != nil {
		if len(skip) > 0 {
			// A full bootstrap would wipe the migrated shard — the only
			// copy of its acked writes. Fail loudly; the migration (or an
			// operator) must resolve this, not a silent data loss.
			return false, fmt.Errorf("cluster: refusing snapshot bootstrap while serving migrated shards %v", keys(skip))
		}
		if err := n.installSnapshot(mem, resp); err != nil {
			return false, err
		}
		n.touchLease(resp)
		return true, nil
	}
	progress := false
	for i, batch := range resp.Batches {
		if len(batch) == 0 || skip[i] {
			continue
		}
		codec, err := n.codec(epoch, i)
		if err != nil {
			return progress, err
		}
		recs := make([]wal.Record, 0, n.cfg.BatchRecords)
		start := time.Now()
		if _, err := codec.DecodeAll(batch, marks[i]+1, func(r wal.Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			return progress, fmt.Errorf("cluster: shard %d batch from %s: %w", i, n.pullAddrSnapshot(), err)
		}
		if err := mem.ApplyReplicated(i, recs); err != nil {
			return progress, err
		}
		n.cBatches.Inc()
		n.cRecords.Add(uint64(len(recs)))
		n.cfg.Tracer.Emit(obs.KindReplBatch, int32(i), uint64(len(recs)), 0, time.Since(start))
		progress = true
	}
	n.touchLease(resp)
	return progress, nil
}

// keys lists a set's members (error messages).
func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func (n *Node) pullAddrSnapshot() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pullAddr
}

// touchLease refreshes the leader lease and the replication-lag gauge
// after a successful poll.
func (n *Node) touchLease(resp *wire.ReplicateResponse) {
	var lag uint64
	mine := n.memory().SyncedLSNs()
	for i, theirs := range resp.Marks {
		if i < len(mine) && theirs > mine[i] && theirs-mine[i] > lag {
			lag = theirs - mine[i]
		}
	}
	n.gLag.Set(int64(lag))
	n.mu.Lock()
	n.lastContact = time.Now()
	n.mu.Unlock()
}

// installSnapshot replaces the node's durable state with the leader's
// full-state blob: the old memory is closed, the data directory is
// re-bootstrapped, and replication resumes at exactly the snapshot's
// marks.
func (n *Node) installSnapshot(old *durable.Memory, resp *wire.ReplicateResponse) error {
	n.logf("cluster: %s bootstrapping from snapshot (%d bytes, marks %v)", n.cfg.Self, len(resp.Snapshot), resp.SnapMarks)
	if err := old.Close(); err != nil {
		n.logf("cluster: %s closing pre-bootstrap state: %v", n.cfg.Self, err)
	}
	fresh, err := durable.InstallSnapshot(n.shcfg, n.dcfg, bytes.NewReader(resp.Snapshot), resp.SnapMarks)
	if err != nil {
		return fmt.Errorf("cluster: install snapshot: %w", err)
	}
	n.mu.Lock()
	n.mem = fresh
	n.bootstrap = false
	if n.onCkpt != nil {
		fresh.OnCheckpoint(n.onCkpt)
	}
	n.mu.Unlock()
	n.cBootstraps.Inc()
	return nil
}

// Promote asks this node to become primary at newEpoch, provided its
// leader lease has expired and it can catch its WAL tail up to minMarks
// (the element-wise max durable vector across survivors) by pulling from
// donor peers. Idempotent: a re-sent Promote at the epoch this node
// already leads returns its route.
func (n *Node) Promote(newEpoch uint64, minMarks []uint64) (*wire.RouteInfo, error) {
	n.mu.Lock()
	if n.role == RolePrimary && n.epoch >= newEpoch {
		n.mu.Unlock()
		return n.Route(), nil
	}
	if newEpoch <= n.epoch {
		err := fmt.Errorf("cluster: promote to epoch %d refused: node already at %d", newEpoch, n.epoch)
		n.mu.Unlock()
		return nil, err
	}
	if n.bootstrap {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: promote refused: node needs a snapshot bootstrap (possibly divergent journal)")
	}
	if remaining := n.cfg.Lease - time.Since(n.lastContact); remaining > 0 {
		n.mu.Unlock()
		return nil, &LeaseError{Remaining: remaining}
	}
	oldEpoch := n.epoch
	mem := n.mem
	n.mu.Unlock()

	if len(minMarks) != mem.NumShards() {
		return nil, fmt.Errorf("cluster: promote carries %d shard marks, node has %d shards", len(minMarks), mem.NumShards())
	}
	start := time.Now()
	if err := n.catchUp(mem, oldEpoch, minMarks); err != nil {
		return nil, err
	}

	n.mu.Lock()
	if n.epoch >= newEpoch {
		// Someone promoted past us while we were catching up.
		err := n.movedLocked()
		n.mu.Unlock()
		return nil, err
	}
	n.epoch = newEpoch
	n.role = RolePrimary
	n.leader = n.cfg.Self
	n.replicas = map[string]*replicaState{}
	n.bootstrap = false
	n.notifyAckLocked()
	cl := n.pullCl
	n.pullCl = nil
	if err := n.saveMetaLocked(); err != nil {
		n.mu.Unlock()
		if cl != nil {
			_ = cl.Close()
		}
		return nil, err
	}
	n.mu.Unlock()
	if cl != nil {
		_ = cl.Close()
	}
	n.cPromotes.Inc()
	n.cfg.Tracer.Emit(obs.KindPromote, -1, newEpoch, 0, time.Since(start))
	n.logf("cluster: %s promoted to primary at epoch %d (catch-up %v)", n.cfg.Self, newEpoch, time.Since(start))
	return n.Route(), nil
}

// catchUp pulls missing WAL suffixes from donor peers until the node's
// durable marks cover minMarks. Donors serve Replicate read-only at the
// current epoch regardless of role, so any surviving replica works. The
// round that makes no progress while marks still fall short fails the
// promotion (the control plane computed minMarks from live nodes, so
// this means a donor died mid-catch-up).
func (n *Node) catchUp(mem *durable.Memory, epoch uint64, minMarks []uint64) error {
	covered := func() bool {
		marks := mem.SyncedLSNs()
		for i, min := range minMarks {
			if marks[i] < min {
				return false
			}
		}
		return true
	}
	if covered() {
		return nil
	}
	n.mu.Lock()
	peers := append([]string(nil), n.cfg.Peers...)
	n.mu.Unlock()
	for {
		progress := false
		for _, peer := range peers {
			if peer == n.cfg.Self || covered() {
				continue
			}
			cl, err := wire.Dial(peer, n.cfg.DialTimeout)
			if err != nil {
				continue // dead donor; others may still cover us
			}
			resp, err := cl.Replicate(&wire.ReplicateRequest{
				Epoch: epoch,
				// Node is empty: a donor poll must not register us as an
				// ack-bearing replica of the peer.
				Marks: mem.SyncedLSNs(),
			})
			if err == nil && resp.Epoch == epoch && resp.Snapshot == nil {
				marks := mem.SyncedLSNs()
				applied, applyErr := n.applyResponse(mem, epoch, marks, resp)
				progress = progress || applied
				err = applyErr
			}
			if err != nil {
				n.logf("cluster: %s catch-up from %s: %v", n.cfg.Self, peer, err)
			}
			_ = cl.Close()
		}
		if covered() {
			return nil
		}
		if !progress {
			return fmt.Errorf("cluster: catch-up stalled below %v at %v (donors gone?)", minMarks, mem.SyncedLSNs())
		}
	}
}

// Follow redirects the node to a (new) leader. An epoch below the node's
// own is a stale control-plane message and refused with the redirect; a
// primary told to follow at a higher epoch is thereby deposed, and its
// journal's unacked suffix forces a snapshot rejoin.
func (n *Node) Follow(epoch uint64, leader string) error {
	if leader == "" {
		return fmt.Errorf("cluster: follow needs a leader address")
	}
	n.mu.Lock()
	if epoch < n.epoch {
		err := n.movedLocked()
		n.mu.Unlock()
		return err
	}
	if leader == n.cfg.Self {
		n.mu.Unlock()
		return fmt.Errorf("cluster: refusing to follow myself; promotion is explicit (OpPromote)")
	}
	if epoch == n.epoch && n.role == RoleReplica && leader == n.leader {
		n.mu.Unlock()
		return nil
	}
	wasPrimary := n.role == RolePrimary
	if wasPrimary {
		n.cFences.Inc()
		n.cfg.Tracer.Emit(obs.KindFence, -1, epoch, n.epoch, 0)
		n.bootstrap = true
	}
	n.epoch = epoch
	n.role = RoleReplica
	n.leader = leader
	n.lastContact = time.Now() // fresh lease on the new leader
	n.notifyAckLocked()
	cl := n.pullCl
	n.pullCl = nil
	err := n.saveMetaLocked()
	n.mu.Unlock()
	if cl != nil {
		_ = cl.Close()
	}
	n.logf("cluster: %s following %s at epoch %d (was primary: %v)", n.cfg.Self, leader, epoch, wasPrimary)
	return err
}
